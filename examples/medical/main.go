// Medical-imaging scenario (paper §I): hospitals collaboratively train a
// diagnostic classifier under HIPAA/GDPR-style constraints — raw scans must
// never leave a site. The aggregation server turns dishonest and plants a
// CAH trap layer to steal scans from gradient updates; the example contrasts
// an undefended federation with one whose sites run OASIS (MR+SH).
//
//	go run ./examples/medical
package main

import (
	"context"
	"fmt"
	"log"

	oasis "github.com/oasisfl/oasis"
)

const (
	numHospitals = 4
	rounds       = 3
	batchSize    = 8
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthetic single-channel "scans", 6 diagnostic classes, 48×48.
	scans := oasis.NewSynthDataset("ct-scans", 6, 1, 48, 48, 512, 7)
	rng := oasis.NewRand(7, 1)
	shards, err := oasis.ShardDataset(scans, numHospitals, rng)
	if err != nil {
		return err
	}
	// Cache every hospital's raw scans once: the evaluation below compares
	// each reconstruction against the whole federation corpus.
	var originals []*oasis.Image
	for _, shard := range shards {
		for i := 0; i < shard.Len(); i++ {
			im, _ := shard.Sample(i)
			originals = append(originals, im)
		}
	}

	scenarios := []struct {
		label   string
		defense string
		batch   int
	}{
		{"UNDEFENDED sites (B=8)", "", batchSize},
		{"sites running OASIS MR+SH (B=8)", "MR+SH", batchSize},
		{"sites running OASIS MR+SH (B=16)", "MR+SH", 2 * batchSize},
	}
	for _, sc := range scenarios {
		var def *oasis.Defense
		if sc.defense != "" {
			if def, err = oasis.NewDefense(sc.defense); err != nil {
				return err
			}
		}
		fmt.Printf("--- federation with %s ---\n", sc.label)

		roster := oasis.NewMemoryRoster()
		for i, shard := range shards {
			client := oasis.NewFLClient(fmt.Sprintf("hospital-%d", i+1), shard, sc.batch, oasis.NewRand(7, uint64(i+10)))
			if def != nil {
				client.Pre = def
			}
			roster.Add(client)
		}

		// The dishonest aggregation server plants a CAH trap layer.
		atk, err := oasis.NewCAHAttack(scans, 300, 16, rng)
		if err != nil {
			return err
		}
		dishonest, err := oasis.NewCAHServer(atk, rng)
		if err != nil {
			return err
		}
		server := oasis.NewFLServer(
			oasis.FLServerConfig{Rounds: rounds, ClientsPerRound: 2, LearningRate: 0.05, Seed: 7},
			oasis.NewMLP(scans, 64, rng),
			roster,
		)
		server.Modifier = dishonest
		server.Observer = dishonest

		if _, err := server.Run(context.Background()); err != nil {
			return err
		}

		// How much did the server learn? Compare reconstructions against
		// each hospital's full shard.
		captures := dishonest.Captures()
		leaked := map[int]bool{} // distinct original scans recovered verbatim
		total := 0
		bestPSNR := 0.0
		for _, cap := range captures {
			for _, recon := range cap.Reconstructions {
				total++
				idx, p := bestAgainst(recon, originals)
				if p > bestPSNR {
					bestPSNR = p
				}
				if p > 100 {
					leaked[idx] = true
				}
			}
		}
		fmt.Printf("server inverted %d gradient updates → %d reconstructions\n", len(captures), total)
		fmt.Printf("distinct private scans recovered verbatim: %d (best PSNR %.1f dB)\n\n", len(leaked), bestPSNR)
	}
	return nil
}

// bestAgainst scans the cached federation corpus for the closest original,
// returning its index and PSNR.
func bestAgainst(recon *oasis.Image, originals []*oasis.Image) (int, float64) {
	bestIdx, best := -1, 0.0
	for i, im := range originals {
		if im.C != recon.C || im.H != recon.H || im.W != recon.W {
			continue
		}
		if p := oasis.PSNR(recon, im); p > best {
			best, bestIdx = p, i
		}
	}
	return bestIdx, best
}
