// Attacker's-eye view: this example plays the dishonest server of the
// paper's threat model step by step — plant a malicious layer, receive one
// honest gradient update, invert it with Eq. 6, and write the reconstructed
// images next to the client's private originals.
//
//	go run ./examples/dishonestserver
//
// PNG montages land in ./recon_out: one for the undefended client (verbatim
// copies) and one for the OASIS-defended client (unrecognizable blends).
package main

import (
	"fmt"
	"log"
	"path/filepath"

	oasis "github.com/oasisfl/oasis"
	"github.com/oasisfl/oasis/internal/imaging"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds := oasis.NewSynthImageNet(3)
	rng := oasis.NewRand(3, 1)

	// Step 1 — the server crafts the trap: a CAH layer of 400 neurons,
	// calibrated against public data statistics.
	atk, err := oasis.NewCAHAttack(ds, 400, 16, rng)
	if err != nil {
		return err
	}

	// Step 2 — a victim client holds 6 private images.
	private, err := oasis.RandomBatch(ds, rng, 6)
	if err != nil {
		return err
	}

	outDir := "recon_out"
	for _, scenario := range []struct {
		name    string
		defense string
	}{
		{"undefended", ""},
		{"oasis_mr_sh", "MR+SH"},
	} {
		clientBatch := private
		if scenario.defense != "" {
			def, err := oasis.NewDefense(scenario.defense)
			if err != nil {
				return err
			}
			if clientBatch, err = def.Apply(private); err != nil {
				return err
			}
		}

		// Step 3 — the client honestly computes gradients on the model it
		// was given; the server captures them and inverts.
		ev, recons, err := atk.Run(clientBatch, private.Images, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %3d reconstructions, mean PSNR %6.2f dB, best %6.2f dB\n",
			scenario.name, ev.NumReconstructions, ev.MeanPSNR(), ev.MaxPSNR())

		// Step 4 — dump original vs best reconstruction, side by side.
		tiles := make([]*oasis.Image, 0, 2*private.Size())
		for _, orig := range private.Images {
			best := orig.Clone()
			bestPSNR := -1.0
			for _, r := range recons {
				if p := oasis.PSNR(r, orig); p > bestPSNR {
					best, bestPSNR = r, p
				}
			}
			tiles = append(tiles, orig.Clone().Clamp(), best)
		}
		m, err := imaging.Montage(tiles, 2)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, scenario.name+".png")
		if err := m.WritePNG(path); err != nil {
			return err
		}
		fmt.Println("  wrote", path)
	}
	fmt.Println("left column: client's private images; right: what the server recovered")
	return nil
}
