// Quickstart: run an active reconstruction attack against one client batch,
// with and without the OASIS defense, and compare reconstruction quality.
//
//	go run ./examples/quickstart
//
// Expected output: without OASIS the RTF attack recovers every image
// essentially verbatim (PSNR at the 150 dB cap); with OASIS major rotation
// the reconstructions collapse to unrecognizable blends around 15–20 dB.
package main

import (
	"fmt"
	"log"

	oasis "github.com/oasisfl/oasis"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds := oasis.NewSynthCIFAR100(42)
	rng := oasis.NewRand(1, 2)

	// The client's private batch D.
	batch, err := oasis.RandomBatch(ds, rng, 8)
	if err != nil {
		return err
	}

	// The dishonest server plants an RTF imprint layer with 500 neurons.
	atk, err := oasis.NewRTFAttack(ds, 500, rng)
	if err != nil {
		return err
	}

	// Attack the raw batch: the client trains on D as-is.
	evRaw, _, err := atk.Run(batch, batch.Images, rng)
	if err != nil {
		return err
	}
	fmt.Printf("without OASIS: %d reconstructions, mean PSNR %.2f dB (max %.2f)\n",
		evRaw.NumReconstructions, evRaw.MeanPSNR(), evRaw.MaxPSNR())

	// Defend with OASIS major rotation: D′ = D ∪ rotations (Eq. 7).
	def, err := oasis.NewDefense("MR")
	if err != nil {
		return err
	}
	defended, err := def.Apply(batch)
	if err != nil {
		return err
	}
	evDef, _, err := atk.Run(defended, batch.Images, rng)
	if err != nil {
		return err
	}
	fmt.Printf("with OASIS %s: %d reconstructions, mean PSNR %.2f dB (max %.2f)\n",
		def.Name(), evDef.NumReconstructions, evDef.MeanPSNR(), evDef.MaxPSNR())

	if evDef.MaxPSNR() < 100 && evRaw.MeanPSNR() > 100 {
		fmt.Println("OASIS offset the attack: no image was recovered verbatim.")
	}
	return nil
}
