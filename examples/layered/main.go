// Layered defense: compose a batch-stage and a gradient-stage countermeasure
// into one pipeline via the public registry API, attach it to federated
// clients, and watch a dishonest server fail against the stack.
//
//	go run ./examples/layered
//
// The pipeline "oasis:MR|dpsgd:1,0.1" first expands every batch with OASIS
// major rotations (so a malicious neuron can extract at best a blend of an
// image and its transforms), then clips and noises the uploaded gradients —
// the §V layering the paper argues real deployments need against
// population-scale attacks.
package main

import (
	"context"
	"fmt"
	"log"

	oasis "github.com/oasisfl/oasis"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const spec = "oasis:MR|dpsgd:1,0.1"

	// Parse the spec once to show the resolved chain (any rng works for
	// display; each client below gets its own pipeline instance).
	display, err := oasis.NewDefensePipeline(spec, nil)
	if err != nil {
		return err
	}
	fmt.Printf("defense pipeline %q resolves to %s\n", spec, display.Name())
	for i, stage := range display.StageNames() {
		fmt.Printf("  stage %d: %s\n", i+1, stage)
	}

	// A small federated population where every client runs the full stack.
	ds := oasis.NewSynthDataset("layered", 6, 1, 16, 16, 360, 42)
	shards, err := oasis.ShardDataset(ds, 3, oasis.NewRand(42, 1))
	if err != nil {
		return err
	}
	roster := oasis.NewMemoryRoster()
	for i, shard := range shards {
		client := oasis.NewFLClient(fmt.Sprintf("site-%d", i), shard, 8, oasis.NewRand(42, uint64(i)+10))
		// One pipeline per client: the DPSGD stage keeps per-client noise
		// state and must not be shared.
		def, err := oasis.NewDefensePipeline(spec, oasis.NewRand(7, uint64(i)))
		if err != nil {
			return err
		}
		oasis.AttachDefense(client, def)
		roster.Add(client)
	}

	// The dishonest server plants an RTF imprint layer and inverts uploads.
	rng := oasis.NewRand(42, 99)
	atk, err := oasis.NewAttack("rtf", ds, 64, 8, rng)
	if err != nil {
		return err
	}
	dishonest, err := oasis.NewAttackServer(atk, rng)
	if err != nil {
		return err
	}
	model := oasis.NewMLP(ds, 32, rng)
	server := oasis.NewFLServer(oasis.FLServerConfig{Rounds: 3, LearningRate: 0.05, Seed: 42}, model, roster)
	server.Modifier = dishonest
	server.Observer = dishonest

	if _, err := server.Run(context.Background()); err != nil {
		return err
	}
	recon := 0
	for _, cap := range dishonest.Captures() {
		recon += len(cap.Reconstructions)
	}
	fmt.Printf("dishonest server captured %d uploads, reconstructed %d images\n",
		len(dishonest.Captures()), recon)
	fmt.Println("every upload passed both stages: augmented batches, then clipped+noised gradients")
	return nil
}
