// Urban-environment sensing scenario (paper §I): UAVs from different
// companies federate a ground-imagery classifier over a real network link.
// Each UAV connects to the coordinator over TCP, preprocesses its batches
// with OASIS, and streams gradient updates; the coordinator is honest here,
// so the run demonstrates the plain protocol plus the defense's training
// behaviour (loss still decreases under augmentation).
//
//	go run ./examples/uavsensing
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	oasis "github.com/oasisfl/oasis"
)

const (
	numUAVs   = 3
	rounds    = 8
	batchSize = 6
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Aerial imagery: 8 land-use classes at 32×32 RGB.
	imagery := oasis.NewSynthDataset("aerial", 8, 3, 32, 32, 2048, 11)
	rng := oasis.NewRand(11, 1)
	shards, err := oasis.ShardDataset(imagery, numUAVs, rng)
	if err != nil {
		return err
	}

	// Coordinator listens on an ephemeral TCP port.
	roster, err := oasis.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer roster.Close()
	fmt.Printf("coordinator listening on %s\n", roster.Addr())

	// Each UAV runs OASIS shearing locally and dials in.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	clientCtx, stopClients := context.WithCancel(ctx)
	defer stopClients()
	var wg sync.WaitGroup
	for i := 0; i < numUAVs; i++ {
		def, err := oasis.NewDefense("SH")
		if err != nil {
			return err
		}
		uav := oasis.NewFLClient(fmt.Sprintf("uav-%d", i+1), shards[i], batchSize, oasis.NewRand(11, uint64(i+20)))
		uav.Pre = def
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := oasis.ServeTCP(clientCtx, roster.Addr(), uav); err != nil {
				log.Printf("uav client: %v", err)
			}
		}()
	}
	if err := roster.WaitForClients(ctx, numUAVs); err != nil {
		return err
	}
	fmt.Printf("%d UAVs connected\n", numUAVs)

	model := oasis.NewMLP(imagery, 96, rng)
	server := oasis.NewFLServer(
		oasis.FLServerConfig{Rounds: rounds, LearningRate: 0.02, Seed: 11},
		model, roster,
	)
	hist, err := server.Run(ctx)
	if err != nil {
		return err
	}
	for _, r := range hist.Rounds {
		fmt.Printf("round %d: clients=%v loss=%.4f |g|=%.3f\n", r.Round, r.Clients, r.MeanLoss, r.GradNorm)
	}
	if n := len(hist.Rounds); n >= 2 && hist.Rounds[n-1].MeanLoss < hist.Rounds[0].MeanLoss {
		fmt.Println("training progressed under OASIS preprocessing (loss decreased)")
	}
	stopClients()
	wg.Wait()
	return nil
}
