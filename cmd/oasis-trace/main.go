// Command oasis-trace renders a recorded observability stream (the JSONL file
// an oasis CLI writes under -trace) as human-readable tables: the per-phase
// duration rollup, the final counters/gauges, and the histogram means. It
// also validates the stream's structural invariants, so CI can use it as a
// trace smoke check:
//
//	oasis-sweep -quick -trace sweep-trace.jsonl
//	oasis-trace sweep-trace.jsonl
//	oasis-trace -csv sweep-trace.jsonl > phases.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	csv := flag.Bool("csv", false, "emit the phase table as CSV instead of the full report")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: oasis-trace [-csv] trace.jsonl")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		return err
	}
	roots, err := obs.SpanTreeValid(events)
	if err != nil {
		return fmt.Errorf("%s: %w", flag.Arg(0), err)
	}
	sum := obs.SummarizeSpans(events)
	if *csv {
		fmt.Print(phaseTable(sum).CSV())
		return nil
	}
	spans := 0
	for _, ev := range events {
		if ev.Type == "span" {
			spans++
		}
	}
	fmt.Printf("trace %s: program %s, %d events, %d spans (%d roots)\n",
		flag.Arg(0), orUnknown(sum.Program), len(events), spans, roots)
	fmt.Print(phaseTable(sum).String())
	if len(sum.Counters) > 0 || len(sum.Gauges) > 0 {
		fmt.Print(valueTable(sum).String())
	}
	if len(sum.Histograms) > 0 {
		fmt.Print(histTable(sum).String())
	}
	return nil
}

// phaseTable is the per-phase duration rollup, slowest total first.
func phaseTable(sum *obs.TraceSummary) *metrics.Table {
	t := metrics.NewTable("Phases (span durations)",
		"phase", "count", "total ms", "mean ms", "max ms")
	phases := append([]obs.PhaseSummary(nil), sum.Phases...)
	sort.Slice(phases, func(i, j int) bool { return phases[i].TotalMS > phases[j].TotalMS })
	for _, p := range phases {
		t.AddRow(p.Name,
			fmt.Sprintf("%d", p.Count),
			fmt.Sprintf("%.3f", p.TotalMS),
			fmt.Sprintf("%.3f", p.MeanMS),
			fmt.Sprintf("%.3f", p.MaxMS))
	}
	return t
}

// valueTable lists the final counter and gauge values, name-sorted.
func valueTable(sum *obs.TraceSummary) *metrics.Table {
	t := metrics.NewTable("Counters and gauges (final)", "metric", "value")
	for _, name := range sortedKeys(sum.Counters) {
		t.AddRow(name, fmt.Sprintf("%d", sum.Counters[name]))
	}
	for _, name := range sortedKeys(sum.Gauges) {
		t.AddRow(name, fmt.Sprintf("%g", sum.Gauges[name]))
	}
	return t
}

// histTable summarizes each histogram's count/mean/sum.
func histTable(sum *obs.TraceSummary) *metrics.Table {
	t := metrics.NewTable("Histograms (final)", "metric", "count", "mean", "sum")
	for _, name := range sortedKeys(sum.Histograms) {
		h := sum.Histograms[name]
		t.AddRow(name,
			fmt.Sprintf("%d", h.Count),
			fmt.Sprintf("%.3f", h.Mean),
			fmt.Sprintf("%.3f", h.Sum))
	}
	return t
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}
