// Command oasis-datagen previews the synthetic datasets: it writes a PNG
// contact sheet per dataset (rows = classes, columns = samples) so the
// procedural "ImageNet"/"CIFAR100" stand-ins can be inspected visually.
//
//	oasis-datagen -out results [-per-class 6] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	oasis "github.com/oasisfl/oasis"
	"github.com/oasisfl/oasis/internal/imaging"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir   = flag.String("out", "results", "output directory")
		perClass = flag.Int("per-class", 6, "samples per class row")
		seed     = flag.Uint64("seed", 42, "dataset seed")
		maxRows  = flag.Int("max-classes", 10, "number of class rows to render")
	)
	flag.Parse()

	sets := []oasis.Dataset{
		oasis.NewSynthImageNet(*seed),
		oasis.NewSynthCIFAR100(*seed),
	}
	for _, ds := range sets {
		sheet, err := contactSheet(ds, *perClass, *maxRows)
		if err != nil {
			return fmt.Errorf("%s: %w", ds.Name(), err)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("dataset_%s.png", ds.Name()))
		if err := sheet.WritePNG(path); err != nil {
			return err
		}
		c, h, w := ds.Shape()
		fmt.Printf("%s: %d classes, %d samples, %dx%dx%d → %s\n",
			ds.Name(), ds.NumClasses(), ds.Len(), c, h, w, path)
	}
	return nil
}

// contactSheet collects perClass samples for each of the first maxRows
// classes into one montage.
func contactSheet(ds oasis.Dataset, perClass, maxRows int) (*oasis.Image, error) {
	rows := min(ds.NumClasses(), maxRows)
	var tiles []*imaging.Image
	counts := make([]int, ds.NumClasses())
	// Samples are generated label = index mod classes, so a linear scan
	// fills rows deterministically.
	byClass := make([][]*imaging.Image, ds.NumClasses())
	for i := 0; i < ds.Len(); i++ {
		im, y := ds.Sample(i)
		if y < rows && counts[y] < perClass {
			byClass[y] = append(byClass[y], im)
			counts[y]++
		}
		done := true
		for y := 0; y < rows; y++ {
			if counts[y] < perClass {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	for y := 0; y < rows; y++ {
		tiles = append(tiles, byClass[y]...)
	}
	return imaging.Montage(tiles, perClass)
}
