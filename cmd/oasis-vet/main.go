// Command oasis-vet is the multichecker for the repository's contract
// analyzers (see internal/analysis): rngdiscipline, walltime, mapiter,
// poolpair, and spanpair. It is built on unitchecker, so it is driven by
// the go command rather than run directly:
//
//	go build -o oasis-vet ./cmd/oasis-vet
//	go vet -vettool=./oasis-vet ./...
//
// Diagnostics print as file:line:col so they are clickable in CI logs.
// Analyzer flags pass through go vet, e.g.
// `go vet -vettool=./oasis-vet -walltime.exempt=... ./...`.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/oasisfl/oasis/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.Suite()...)
}
