// Command oasis-bench regenerates the paper's tables and figures, and owns
// the repo's performance-trajectory baselines.
//
// Usage:
//
//	oasis-bench -list
//	oasis-bench -run fig5 -out results
//	oasis-bench -run all -quick
//	oasis-bench -round                 # refresh BENCH_round.json / BENCH_tensor.json
//	oasis-bench -sweep                 # refresh BENCH_sweep.json (grid engine)
//	oasis-bench -round -sweep -gate    # CI: compare fresh run vs committed, fail on >15%
//
// Every experiment prints the same rows/series the paper reports; -out
// additionally writes CSV tables and PNG figures.
//
// -round times the tensor kernel suite and the full round engine on the
// cross-device-1k preset; -sweep times the sweep grid engine on a fixed
// quick grid. Each writes its BENCH files (committed at the repo root).
// With -gate they instead measure fresh numbers and compare the
// calibration-normalized ratios against the committed files, printing the
// trajectory delta per entry and exiting nonzero when any entry regressed
// beyond -gate-tol. See internal/perf for the normalization contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/perf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		runID   = flag.String("run", "all", "experiment id to run, or 'all'")
		quick   = flag.Bool("quick", false, "reduced grid sizes (CI scale)")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		outDir  = flag.String("out", "", "directory for CSV/PNG artifacts (empty = stdout only)")
		verbose = flag.Bool("v", false, "log progress while running")
		workers = flag.Int("workers", 0, "max concurrent clients in FL-round experiments (0 = NumCPU)")

		roundBench = flag.Bool("round", false, "measure the kernel+round perf-trajectory suites and write BENCH_round.json / BENCH_tensor.json")
		sweepBench = flag.Bool("sweep", false, "measure the sweep-engine perf-trajectory suite and write BENCH_sweep.json (combines with -round)")
		gate       = flag.Bool("gate", false, "with -round/-sweep: compare fresh measurements against the committed BENCH files instead of rewriting them")
		gateTol    = flag.Float64("gate-tol", 0.15, "with -gate: maximum allowed fractional regression of a calibration-normalized ratio")
		benchDir   = flag.String("bench-dir", ".", "directory holding the BENCH files")
		repeats    = flag.Int("bench-repeats", 0, "repetitions per measurement, best-of (0 = suite defaults)")
	)
	flag.Parse()

	if *roundBench || *sweepBench {
		return runPerf(*benchDir, *roundBench, *sweepBench, *gate, *gateTol, *repeats)
	}

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", s.ID, s.Title)
		}
		return nil
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, OutDir: *outDir, Workers: *workers}
	if *verbose {
		cfg.Log = os.Stderr
	}

	var specs []experiments.Spec
	if *runID == "all" {
		specs = experiments.Registry()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			s, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			specs = append(specs, s)
		}
	}

	for _, s := range specs {
		start := time.Now() //oasis:allow-walltime bench prints human-facing elapsed time
		fmt.Printf("### %s — %s\n", s.ID, s.Title)
		res, err := s.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		fmt.Print(res.String())
		for _, a := range res.Artifacts {
			fmt.Printf("artifact: %s\n", a)
		}
		fmt.Printf("(%s in %s)\n\n", s.ID, time.Since(start).Round(time.Millisecond)) //oasis:allow-walltime bench prints human-facing elapsed time
	}
	return nil
}

// runPerf measures the selected perf-trajectory suites and either rewrites
// the committed BENCH files (refresh mode) or gates fresh ratios against
// them.
func runPerf(dir string, round, sweep, gate bool, tol float64, repeats int) error {
	type suite struct {
		path  string
		fresh *perf.Report
	}
	var suites []suite
	if round {
		fmt.Println("measuring tensor kernel suite…")
		tensorRep := perf.TensorSuite(repeats)
		fmt.Println("measuring round engine (cross-device-1k, quick)…")
		roundRep, err := perf.RoundSuite(repeats)
		if err != nil {
			return err
		}
		suites = append(suites,
			suite{filepath.Join(dir, "BENCH_tensor.json"), tensorRep},
			suite{filepath.Join(dir, "BENCH_round.json"), roundRep})
	}
	if sweep {
		fmt.Println("measuring sweep engine (rtf,qbi × none,prune, quick)…")
		sweepRep, err := perf.SweepSuite(repeats)
		if err != nil {
			return err
		}
		suites = append(suites, suite{filepath.Join(dir, "BENCH_sweep.json"), sweepRep})
	}
	for _, s := range suites {
		rep := s.fresh
		fmt.Printf("%s: calib %.3fms on %d-cpu %s/%s\n", rep.Kind, rep.CalibMS, rep.CPUs, rep.GOOS, rep.GOARCH)
		for _, e := range rep.Entries {
			fmt.Printf("  %-36s serial %9.3fms  ratio %8.3f  parallel %9.3fms\n",
				e.Name, e.SerialMS, e.Ratio, e.ParallelMS)
		}
	}

	if !gate {
		var written []string
		for _, s := range suites {
			if err := s.fresh.Write(s.path); err != nil {
				return err
			}
			written = append(written, s.path)
		}
		fmt.Printf("wrote %s — commit to update the trajectory baseline\n", strings.Join(written, ", "))
		return nil
	}

	var firstErr error
	for _, s := range suites {
		baseline, err := perf.Load(s.path)
		if err != nil {
			return fmt.Errorf("gate needs a committed baseline: %w", err)
		}
		results, err := perf.Gate(baseline, s.fresh, tol)
		fmt.Printf("trajectory vs %s (tolerance %.0f%%):\n", s.path, tol*100)
		for _, g := range results {
			fmt.Println("  " + g.String())
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
