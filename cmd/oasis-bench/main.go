// Command oasis-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	oasis-bench -list
//	oasis-bench -run fig5 -out results
//	oasis-bench -run all -quick
//
// Every experiment prints the same rows/series the paper reports; -out
// additionally writes CSV tables and PNG figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/oasisfl/oasis/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		runID   = flag.String("run", "all", "experiment id to run, or 'all'")
		quick   = flag.Bool("quick", false, "reduced grid sizes (CI scale)")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		outDir  = flag.String("out", "", "directory for CSV/PNG artifacts (empty = stdout only)")
		verbose = flag.Bool("v", false, "log progress while running")
		workers = flag.Int("workers", 0, "max concurrent clients in FL-round experiments (0 = NumCPU)")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", s.ID, s.Title)
		}
		return nil
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, OutDir: *outDir, Workers: *workers}
	if *verbose {
		cfg.Log = os.Stderr
	}

	var specs []experiments.Spec
	if *runID == "all" {
		specs = experiments.Registry()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			s, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			specs = append(specs, s)
		}
	}

	for _, s := range specs {
		start := time.Now()
		fmt.Printf("### %s — %s\n", s.ID, s.Title)
		res, err := s.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		fmt.Print(res.String())
		for _, a := range res.Artifacts {
			fmt.Printf("artifact: %s\n", a)
		}
		fmt.Printf("(%s in %s)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
