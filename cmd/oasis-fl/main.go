// Command oasis-fl runs a federated-learning deployment over the TCP
// transport: one server process and N client processes (or all roles in a
// single process with -demo).
//
// Honest run (-defense takes a defense pipeline spec; a bare OASIS policy
// label like "MR" is shorthand for "oasis:MR"):
//
//	oasis-fl -role server -addr :7070 -clients 4 -rounds 20
//	oasis-fl -role client -addr host:7070 -name hospital-1 -defense oasis:MR
//	oasis-fl -role client -addr host:7070 -name hospital-2 -defense "oasis:MR|dpsgd:1,0.1"
//
// Dishonest-server demonstration (the paper's threat model):
//
//	oasis-fl -role server -addr :7070 -clients 2 -attack rtf -out results
//
// Demo mode spawns the server and clients in-process over real TCP sockets:
//
//	oasis-fl -demo -clients 3 -rounds 5 -attack rtf -defense "oasis:MR|prune:0.3"
//
// The round engine is concurrent and its aggregation policy is pluggable:
//
//	oasis-fl -demo -clients 8 -workers 8 -agg trimmed:0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	oasis "github.com/oasisfl/oasis"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-fl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role     = flag.String("role", "", "server | client (empty with -demo)")
		demo     = flag.Bool("demo", false, "run server and clients in one process")
		addr     = flag.String("addr", "127.0.0.1:7070", "server listen / dial address")
		name     = flag.String("name", "client-1", "client name")
		clients  = flag.Int("clients", 2, "clients the server waits for / demo spawns")
		rounds   = flag.Int("rounds", 5, "FL rounds")
		batch    = flag.Int("batch", 8, "client batch size")
		defName  = flag.String("defense", "", "client defense pipeline ('|'-chain of "+strings.Join(oasis.DefenseNames(), " | ")+" specs, e.g. oasis:MR|dpsgd:1,0.1; a bare policy label means oasis:<label>; empty = undefended)")
		attackID = flag.String("attack", "", "dishonest server attack ("+strings.Join(oasis.AttackNames(), " | ")+"; empty = honest)")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		outDir   = flag.String("out", "", "directory for reconstruction montages (server side)")
		workers  = flag.Int("workers", 0, "max clients trained concurrently per round (0 = NumCPU, 1 = sequential)")
		aggName  = flag.String("agg", "mean", "aggregation policy: mean | median | trimmed[:frac] | normclip[:max]")
		trace    = flag.String("trace", "", "write a JSONL observability trace here (see internal/obs)")
		httpAddr = flag.String("http", "", "serve the obs debug endpoint (metrics + pprof) on this address, e.g. :6060")
	)
	flag.Parse()

	finish, err := obs.EnableCLI("oasis-fl", *trace, *httpAddr)
	if err != nil {
		return err
	}
	defer func() {
		if _, terr := finish(); terr != nil {
			fmt.Fprintln(os.Stderr, "oasis-fl:", terr)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Fail a typo'd -agg before the server starts listening and waiting for
	// clients, not minutes later when the round engine first needs it.
	if (*demo || *role == "server") && *aggName != "" {
		if _, err := oasis.NewAggregator(*aggName); err != nil {
			return err
		}
	}
	// Resolve -defense before any role starts: it is a registry pipeline
	// spec, with a bare OASIS policy label ("MR") kept as shorthand for
	// "oasis:<label>" for pre-registry invocations.
	defSpec, err := resolveDefense(*defName)
	if err != nil {
		return err
	}
	opts := driveOptions{
		rounds:   *rounds,
		attackID: *attackID,
		seed:     *seed,
		outDir:   *outDir,
		workers:  *workers,
		aggName:  *aggName,
	}
	switch {
	case *demo:
		return runDemo(ctx, *clients, *batch, defSpec, opts)
	case *role == "server":
		return runServer(ctx, *addr, *clients, opts)
	case *role == "client":
		return runClient(ctx, *addr, *name, *batch, defSpec, *seed)
	default:
		return fmt.Errorf("pass -demo, or -role server|client")
	}
}

// resolveDefense normalizes the -defense flag to a registry pipeline spec.
func resolveDefense(spec string) (string, error) {
	if spec == "" {
		return "", nil
	}
	_, err := oasis.NewDefensePipeline(spec, nil)
	if err == nil {
		return spec, nil
	}
	// Legacy shorthand: "-defense MR" meant the OASIS policy MR.
	legacy := "oasis:" + spec
	if _, err2 := oasis.NewDefensePipeline(legacy, nil); err2 == nil {
		return legacy, nil
	}
	return "", err
}

// driveOptions carries the server-side round-engine knobs.
type driveOptions struct {
	rounds   int
	attackID string
	seed     uint64
	outDir   string
	workers  int
	aggName  string
}

// newClient assembles a local client with an optional defense pipeline.
func newClient(name string, batch int, defSpec string, seed uint64) (*oasis.FLLocalClient, error) {
	shard := oasis.NewSynthDataset("site-"+name, 10, 3, 32, 32, 512, seed)
	client := oasis.NewFLClient(name, shard, batch, oasis.NewRand(seed, hash(name)))
	if defSpec != "" {
		// Each client owns its pipeline: stochastic stages (DPSGD, ATS)
		// keep per-client state and must not be shared.
		def, err := oasis.NewDefensePipeline(defSpec, oasis.NewRand(seed^0xdef, hash(name)))
		if err != nil {
			return nil, err
		}
		oasis.AttachDefense(client, def)
	}
	return client, nil
}

func runClient(ctx context.Context, addr, name string, batch int, defSpec string, seed uint64) error {
	client, err := newClient(name, batch, defSpec, seed)
	if err != nil {
		return err
	}
	fmt.Printf("client %s connecting to %s (defense=%q)\n", name, addr, defSpec)
	return oasis.ServeTCP(ctx, addr, client)
}

func runServer(ctx context.Context, addr string, clients int, opts driveOptions) error {
	roster, err := oasis.ListenTCP(addr)
	if err != nil {
		return err
	}
	defer roster.Close()
	fmt.Printf("server listening on %s, waiting for %d clients…\n", roster.Addr(), clients)
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := roster.WaitForClients(waitCtx, clients); err != nil {
		return err
	}
	return drive(ctx, roster, opts)
}

// drive runs the FL rounds over any roster and reports results.
func drive(ctx context.Context, roster oasis.FLRoster, opts driveOptions) error {
	seed, attackID, outDir := opts.seed, opts.attackID, opts.outDir
	rng := oasis.NewRand(seed, 0xf1)
	ds := oasis.NewSynthDataset("server-arch", 10, 3, 32, 32, 512, seed)
	model := oasis.NewMLP(ds, 64, rng)

	cfg := oasis.FLServerConfig{Rounds: opts.rounds, LearningRate: 0.05, Seed: seed, Workers: opts.workers}
	server := oasis.NewFLServer(cfg, model, roster)
	if opts.aggName != "" {
		agg, err := oasis.NewAggregator(opts.aggName)
		if err != nil {
			return err
		}
		server.Aggregator = agg
		fmt.Printf("aggregation policy: %s\n", agg.Name())
	}

	var dishonest *oasis.DishonestServer
	if attackID != "" {
		// The registry resolves the kind; unknown kinds error with the
		// current list of families, so this never goes stale.
		atk, err := oasis.NewAttack(attackID, ds, 300, 16, rng)
		if err != nil {
			return err
		}
		dishonest, err = oasis.NewAttackServer(atk, rng)
		if err != nil {
			return err
		}
	}
	if dishonest != nil {
		server.Modifier = dishonest
		server.Observer = dishonest
		fmt.Printf("server is DISHONEST: %s\n", dishonest.Name())
	}

	hist, err := server.Run(ctx)
	if err != nil {
		return err
	}
	for _, r := range hist.Rounds {
		fmt.Printf("round %d: %d clients, mean loss %.4f\n", r.Round, len(r.Clients), r.MeanLoss)
	}
	if dishonest != nil {
		total := 0
		for _, cap := range dishonest.Captures() {
			total += len(cap.Reconstructions)
			if outDir != "" && len(cap.Reconstructions) > 0 {
				m, err := imaging.Montage(cap.Reconstructions, 8)
				if err != nil {
					return err
				}
				path := filepath.Join(outDir, fmt.Sprintf("capture_r%d_%s.png", cap.Round, cap.ClientID))
				if err := m.WritePNG(path); err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
		fmt.Printf("dishonest server reconstructed %d images across %d captures\n",
			total, len(dishonest.Captures()))
	}
	return nil
}

func runDemo(ctx context.Context, clients, batch int, defSpec string, opts driveOptions) error {
	roster, err := oasis.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer roster.Close()
	fmt.Printf("demo: server on %s with %d in-process TCP clients\n", roster.Addr(), clients)

	clientCtx, stopClients := context.WithCancel(ctx)
	defer stopClients()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		name := fmt.Sprintf("client-%d", i+1)
		c, err := newClient(name, batch, defSpec, opts.seed+uint64(i))
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := oasis.ServeTCP(clientCtx, roster.Addr(), c); err != nil {
				fmt.Fprintf(os.Stderr, "demo client %s: %v\n", name, err)
			}
		}()
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := roster.WaitForClients(waitCtx, clients); err != nil {
		return err
	}
	if err := drive(ctx, roster, opts); err != nil {
		return err
	}
	stopClients()
	wg.Wait()
	return nil
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
