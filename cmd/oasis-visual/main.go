// Command oasis-visual regenerates the paper's visual-reconstruction
// figures (2, 7–12 and 14) as PNG montages: raw input images on the left,
// the dishonest server's reconstructions on the right.
//
// Usage:
//
//	oasis-visual -out results [-seed 42] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/oasisfl/oasis/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-visual:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir = flag.String("out", "results", "directory for PNG artifacts")
		seed   = flag.Uint64("seed", 42, "experiment seed")
		quick  = flag.Bool("quick", false, "smaller montages")
	)
	flag.Parse()
	cfg := experiments.Config{Quick: *quick, Seed: *seed, OutDir: *outDir, Log: os.Stderr}
	for _, id := range []string{"fig2", "visual", "fig14"} {
		spec, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("experiment %q missing from registry", id)
		}
		res, err := spec.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(res.String())
		for _, a := range res.Artifacts {
			fmt.Println("wrote", a)
		}
	}
	return nil
}
