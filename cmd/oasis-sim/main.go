// Command oasis-sim runs declarative federated-learning scenarios: large
// non-IID populations with dropout, stragglers, partial defense coverage and
// scheduled dishonest-server attacks, described in JSON or picked from the
// named presets.
//
//	oasis-sim -list
//	oasis-sim -preset cross-device-1k
//	oasis-sim -scenario myscenario.json -workers 8 -out results
//	oasis-sim -preset smoke -quick -dump        # print the resolved spec JSON
//
// The report is deterministic for a fixed seed: the same scenario produces a
// bit-identical report for every -workers value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/oasisfl/oasis/internal/obs"
	"github.com/oasisfl/oasis/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarioPath = flag.String("scenario", "", "path to a JSON scenario spec")
		preset       = flag.String("preset", "", "named preset scenario (see -list)")
		list         = flag.Bool("list", false, "list preset scenarios")
		dump         = flag.Bool("dump", false, "print the scenario spec JSON instead of running it")
		quick        = flag.Bool("quick", false, "CI scale: cap rounds, shrink eval, never sleep")
		workers      = flag.Int("workers", 0, "max clients trained concurrently per round (0 = cost-model cap)")
		seed         = flag.Uint64("seed", 0, "override the scenario seed (0 = keep the spec's)")
		rounds       = flag.Int("rounds", 0, "override the scenario round count (0 = keep the spec's)")
		outDir       = flag.String("out", "", "directory for report.json and report.csv")
		quiet        = flag.Bool("q", false, "suppress per-round progress")
		tracePath    = flag.String("trace", "", "write a JSONL observability trace here (see internal/obs)")
		httpAddr     = flag.String("http", "", "serve the obs debug endpoint (metrics + pprof) on this address, e.g. :6060")
	)
	flag.Parse()

	if *list {
		for _, sc := range sim.Presets() {
			fmt.Printf("%-18s %4d clients × %2d rounds  %s\n", sc.Name, sc.Clients, sc.Rounds, sc.Description)
		}
		return nil
	}

	var (
		sc  sim.Scenario
		err error
	)
	switch {
	case *scenarioPath != "" && *preset != "":
		return fmt.Errorf("pass -scenario or -preset, not both")
	case *scenarioPath != "":
		sc, err = sim.Load(*scenarioPath)
		if err != nil {
			return err
		}
	case *preset != "":
		var ok bool
		sc, ok = sim.Preset(*preset)
		if !ok {
			return fmt.Errorf("unknown preset %q (have %v)", *preset, sim.PresetNames())
		}
	default:
		return fmt.Errorf("pass -scenario file.json or -preset name (see -list)")
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}

	if *dump {
		resolved, err := sc.Normalize()
		if err != nil {
			return err
		}
		// Stream straight to stdout instead of materializing the spec bytes;
		// the encoder's indent + trailing newline match the historical
		// Println(MarshalIndent) output exactly.
		return encodeJSON(os.Stdout, resolved)
	}

	opts := sim.Options{Quick: *quick, Workers: *workers}
	if !*quiet {
		opts.Log = os.Stderr
	}
	finish, err := obs.EnableCLI("oasis-sim", *tracePath, *httpAddr)
	if err != nil {
		return err
	}
	report, err := sim.Run(sc, opts)
	if err != nil {
		finish() //nolint:errcheck // the run error takes precedence
		return err
	}
	// The summary lands in the report only on traced runs: untraced report
	// JSON stays byte-identical to pre-observability builds.
	sum, traceErr := finish()
	if traceErr != nil {
		return traceErr
	}
	report.Trace = sum
	fmt.Print(report.String())

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		jsonPath := filepath.Join(*outDir, "report.json")
		if err := writeJSONFile(jsonPath, report); err != nil {
			return err
		}
		csvPath := filepath.Join(*outDir, "report.csv")
		if err := os.WriteFile(csvPath, []byte(report.Table().CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", jsonPath, csvPath)
	}
	return nil
}

// encodeJSON streams v as two-space-indented JSON so a large report (a
// million-client scenario carries per-round stats for every round) never
// exists as one contiguous byte slice on top of the encoder's buffers.
func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeJSONFile streams v into path via encodeJSON.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encodeJSON(f, v); err != nil {
		f.Close() //nolint:errcheck // the encode error takes precedence
		return err
	}
	return f.Close()
}
