// Command oasis-sweep evaluates the full attack × defense grid: every
// registered reconstruction attack (rtf, cah, qbi, loki, …) against the
// undefended baseline, the §V defense families, and composed defense
// pipelines, one scenario run per (cell, replicate), reported as mean±std
// PSNR/SSIM per cell.
//
// -attacks and -defenses select grid subsets; a defense column is any
// registry pipeline spec, so layered cells are one flag away. -replicates
// re-runs every cell at derived seeds and -cell-workers bounds how many
// cell runs execute concurrently (distinct from -workers, the per-cell
// client concurrency):
//
//	oasis-sweep                                  # default grid (incl. a composed column)
//	oasis-sweep -attacks rtf,qbi -defenses none,prune:0.3
//	oasis-sweep -defenses "none;oasis:MR|dpsgd:1,0.1;ats:SH|prune:0.5"
//	oasis-sweep -replicates 5 -cell-workers 8    # mean±std over 5 seeds, 8 cells in flight
//	oasis-sweep -scenario base.json -workers 8 -out results
//	oasis-sweep -quick -bench bench.json         # sequential-vs-parallel wall-clock
//
// The grid also runs across processes (see internal/dist): -serve turns the
// process into the coordinator, leasing (cell, replicate) jobs to workers
// and re-leasing when one dies; -worker turns it into a thin worker that
// dials, runs leased cells, and streams results back. -checkpoint (serving
// or single-process) appends every completed job to a JSONL file so an
// interrupted sweep resumes without re-running finished work:
//
//	oasis-sweep -serve 127.0.0.1:9444 -checkpoint sweep.ckpt -out results
//	oasis-sweep -worker 127.0.0.1:9444            # × as many processes as you like
//
// The report is deterministic: for a fixed seed the JSON is byte-identical
// for every -workers and -cell-workers value, for every worker-process
// count, and across checkpoint resumes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/dist"
	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/obs"
	"github.com/oasisfl/oasis/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarioPath = flag.String("scenario", "", "JSON base scenario for every cell (default: built-in sweep base)")
		attacks      = flag.String("attacks", "", "comma-separated attack kinds (default: all registered: "+strings.Join(attack.Names(), ",")+")")
		defenses     = flag.String("defenses", "", "defense pipeline specs, ';'-separated (',' also works when no spec needs a comma); each is a '|'-chain of "+strings.Join(defense.Names(), "/")+" segments (default: "+strings.Join(experiments.DefaultSweepDefenses(), " ; ")+")")
		neurons      = flag.Int("neurons", 0, "override the base scenario's attacked neurons (0 = keep)")
		seed         = flag.Uint64("seed", 0, "override the base scenario seed (0 = keep)")
		replicates   = flag.Int("replicates", 1, "re-run every cell at this many derived seeds, reporting mean±std")
		workers      = flag.Int("workers", 0, "max clients trained concurrently per cell (0 = NumCPU)")
		cellWorkers  = flag.Int("cell-workers", 0, "max cell×replicate runs in flight (0 = NumCPU, 1 = sequential)")
		quick        = flag.Bool("quick", false, "CI scale: cap rounds and eval per cell")
		outDir       = flag.String("out", "", "directory for sweep.json and sweep.csv")
		benchPath    = flag.String("bench", "", "benchmark mode: run the grid at -cell-workers 1 vs NumCPU and write wall-clock/cells-per-sec JSON here")
		quiet        = flag.Bool("q", false, "suppress per-cell progress")
		tracePath    = flag.String("trace", "", "write a JSONL observability trace here (see internal/obs)")
		httpAddr     = flag.String("http", "", "serve the obs debug endpoint (metrics + pprof) on this address, e.g. :6060")
		serveAddr    = flag.String("serve", "", "coordinator mode: serve the grid to -worker processes on this TCP address")
		workerAddr   = flag.String("worker", "", "worker mode: dial this coordinator and run leased cells (grid flags are ignored)")
		ckptPath     = flag.String("checkpoint", "", "append completed jobs to this JSONL file and resume from it (serving or single-process)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "coordinator: re-queue a leased job after this long without a result (0 = 2m)")
	)
	flag.Parse()
	if *serveAddr != "" && *workerAddr != "" {
		return fmt.Errorf("-serve and -worker are mutually exclusive")
	}

	base := experiments.DefaultSweepScenario()
	if *scenarioPath != "" {
		var err error
		base, err = sim.Load(*scenarioPath)
		if err != nil {
			return err
		}
	}
	if *seed != 0 {
		base.Seed = *seed
	}
	if *neurons != 0 {
		base.Attack.Neurons = *neurons
	}

	cfg := experiments.SweepConfig{
		Base:        base,
		Attacks:     splitList(*attacks, ","),
		Defenses:    splitDefenses(*defenses),
		Replicates:  *replicates,
		Workers:     *workers,
		CellWorkers: *cellWorkers,
		Quick:       *quick,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	finish, err := obs.EnableCLI("oasis-sweep", *tracePath, *httpAddr)
	if err != nil {
		return err
	}
	if *workerAddr != "" {
		wcfg := dist.WorkerConfig{Addr: *workerAddr, Workers: *workers}
		if !*quiet {
			wcfg.Log = os.Stderr
		}
		err := dist.RunWorker(context.Background(), wcfg)
		if _, traceErr := finish(); err == nil {
			err = traceErr
		}
		return err
	}
	if *benchPath != "" {
		if *ckptPath != "" {
			return fmt.Errorf("-bench and -checkpoint are mutually exclusive (bench re-runs the grid twice)")
		}
		// Bench mode byte-compares the sequential and parallel legs, so the
		// summary is never embedded — the trace file still records both legs.
		err := runBench(cfg, *benchPath, *outDir)
		if _, traceErr := finish(); err == nil {
			err = traceErr
		}
		return err
	}
	var report *experiments.SweepReport
	if *serveAddr != "" {
		ccfg := dist.CoordinatorConfig{
			Sweep: cfg, Addr: *serveAddr,
			Checkpoint: *ckptPath, LeaseTimeout: *leaseTimeout,
		}
		if !*quiet {
			ccfg.Log = os.Stderr
		}
		report, err = dist.RunCoordinator(context.Background(), ccfg)
	} else {
		report, err = runLocal(cfg, *ckptPath)
	}
	if err != nil {
		finish() //nolint:errcheck // the sweep error takes precedence
		dumpPartial(report, err)
		return err
	}
	// The summary lands in the report only on traced runs: untraced sweep
	// JSON stays byte-identical to pre-observability builds.
	sum, traceErr := finish()
	if traceErr != nil {
		return traceErr
	}
	report.Trace = sum
	fmt.Print(report.Table().String())
	fmt.Print(report.CellTable().String())
	return writeArtifacts(report, *outDir)
}

// runLocal executes the sweep in-process. With a checkpoint path it resumes
// completed jobs from the file and streams every fresh result back into it —
// the same JSONL format the dist coordinator writes — so a sweep that dies
// on a cell failure (or a crash) resumes without re-running finished work.
func runLocal(cfg experiments.SweepConfig, ckptPath string) (*experiments.SweepReport, error) {
	if ckptPath == "" {
		return experiments.RunSweep(cfg)
	}
	grid, err := experiments.NewSweepGrid(cfg)
	if err != nil {
		return nil, err
	}
	pre, err := dist.LoadCheckpoint(ckptPath, grid)
	if err != nil {
		return nil, err
	}
	ckpt, err := dist.OpenCheckpoint(ckptPath, grid)
	if err != nil {
		return nil, err
	}
	if len(pre) > 0 && cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "sweep: resumed %d/%d jobs from %s\n", len(pre), grid.NumJobs(), ckptPath)
	}
	cfg.Preloaded = pre
	cfg.OnResult = func(r experiments.SweepJobResult) {
		_ = ckpt.Append(r) // the first failure sticks; Close re-reports it
	}
	report, err := experiments.RunSweep(cfg)
	if cerr := ckpt.Close(); err == nil {
		err = cerr
	}
	return report, err
}

// dumpPartial prints the completed cells a failed sweep still returned, so
// the grid work done before the failure is not lost with the exit.
func dumpPartial(report *experiments.SweepReport, err error) {
	if err == nil || report == nil || len(report.Cells) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "oasis-sweep: %d cell(s) completed before the failure:\n", len(report.Cells))
	fmt.Fprint(os.Stderr, report.CellTable().String())
}

// writeArtifacts saves sweep.json and sweep.csv when an -out directory was
// given.
func writeArtifacts(report *experiments.SweepReport, outDir string) error {
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	raw, err := report.JSON()
	if err != nil {
		return err
	}
	jsonPath := filepath.Join(outDir, "sweep.json")
	if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
		return err
	}
	csvPath := filepath.Join(outDir, "sweep.csv")
	if err := os.WriteFile(csvPath, []byte(report.Table().CSV()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", jsonPath, csvPath)
	return nil
}

// benchRun is one timed grid evaluation at a fixed cell-level worker count.
type benchRun struct {
	CellWorkers int     `json:"cell_workers"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// runBench times the configured grid sequentially (cell-workers 1) and in
// parallel (NumCPU), checks the two reports are byte-identical, and writes
// the wall-clock comparison as JSON — the repo's sweep perf trajectory. An
// -out directory is honored too (artifacts from the identical reports).
func runBench(cfg experiments.SweepConfig, path, outDir string) error {
	cfg.Log = nil // progress noise would be timed
	out := struct {
		Scenario   string     `json:"scenario"`
		Cells      int        `json:"cells"`
		Replicates int        `json:"replicates"`
		Runs       []benchRun `json:"runs"`
		Speedup    float64    `json:"speedup"`
	}{}
	var golden []byte
	var goldenReport *experiments.SweepReport
	// max(2, NumCPU) keeps the parallel leg a real pool even on one core.
	for _, cw := range []int{1, max(2, runtime.NumCPU())} {
		cfg.CellWorkers = cw
		start := time.Now() //oasis:allow-walltime sweep CLI reports human-facing elapsed seconds
		report, err := experiments.RunSweep(cfg)
		if err != nil {
			dumpPartial(report, err)
			return err
		}
		secs := time.Since(start).Seconds() //oasis:allow-walltime sweep CLI reports human-facing elapsed seconds
		raw, err := report.JSON()
		if err != nil {
			return err
		}
		if golden == nil {
			golden = raw
			goldenReport = report
			out.Scenario = report.Scenario
			out.Cells = len(report.Cells)
			out.Replicates = report.Replicates
		} else if string(golden) != string(raw) {
			return fmt.Errorf("bench: report JSON diverges between cell-workers 1 and %d", cw)
		}
		runs := float64(len(report.Cells) * report.Replicates)
		out.Runs = append(out.Runs, benchRun{CellWorkers: cw, Seconds: secs, CellsPerSec: runs / secs})
	}
	out.Speedup = out.Runs[0].Seconds / out.Runs[1].Seconds
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep bench: %d cell runs — sequential %.2fs, %d cell-workers %.2fs (%.2fx); wrote %s\n",
		out.Cells*out.Replicates, out.Runs[0].Seconds, out.Runs[1].CellWorkers, out.Runs[1].Seconds,
		out.Speedup, path)
	return writeArtifacts(goldenReport, outDir)
}

// splitList parses a separated flag into its non-empty items.
func splitList(s, sep string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, sep) {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitDefenses parses the -defenses flag: items are ';'-separated when a
// semicolon is present (the unambiguous form — dpsgd's argument itself
// contains a comma); otherwise a string that already parses as one pipeline
// spec is a single item (so a lone -defenses dpsgd:1,0.1 works), and only
// then is ',' treated as the list separator.
func splitDefenses(s string) []string {
	if s == "" {
		return nil
	}
	if strings.Contains(s, ";") {
		return splitList(s, ";")
	}
	if strings.Contains(s, ",") {
		if _, err := defense.NewPipeline(s, defense.Config{}); err == nil {
			return []string{s}
		}
	}
	return splitList(s, ",")
}
