// Command oasis-sweep evaluates the full attack × defense grid: every
// registered reconstruction attack (rtf, cah, qbi, loki, …) against the
// undefended baseline, the §V defense families, and composed defense
// pipelines, one scenario run per cell, reported as mean PSNR/SSIM per cell.
//
// -attacks and -defenses select grid subsets; a defense column is any
// registry pipeline spec, so layered cells are one flag away:
//
//	oasis-sweep                                  # default grid (incl. a composed column)
//	oasis-sweep -attacks rtf,qbi -defenses none,prune:0.3
//	oasis-sweep -defenses "none;oasis:MR|dpsgd:1,0.1;ats:SH|prune:0.5"
//	oasis-sweep -scenario base.json -workers 8 -out results
//
// The report is deterministic: for a fixed seed the JSON is byte-identical
// for every -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarioPath = flag.String("scenario", "", "JSON base scenario for every cell (default: built-in sweep base)")
		attacks      = flag.String("attacks", "", "comma-separated attack kinds (default: all registered: "+strings.Join(attack.Names(), ",")+")")
		defenses     = flag.String("defenses", "", "defense pipeline specs, ';'-separated (',' also works when no spec needs a comma); each is a '|'-chain of "+strings.Join(defense.Names(), "/")+" segments (default: "+strings.Join(experiments.DefaultSweepDefenses(), " ; ")+")")
		neurons      = flag.Int("neurons", 0, "override the base scenario's attacked neurons (0 = keep)")
		seed         = flag.Uint64("seed", 0, "override the base scenario seed (0 = keep)")
		workers      = flag.Int("workers", 0, "max clients trained concurrently per cell (0 = NumCPU)")
		quick        = flag.Bool("quick", false, "CI scale: cap rounds and eval per cell")
		outDir       = flag.String("out", "", "directory for sweep.json and sweep.csv")
		quiet        = flag.Bool("q", false, "suppress per-cell progress")
	)
	flag.Parse()

	base := experiments.DefaultSweepScenario()
	if *scenarioPath != "" {
		var err error
		base, err = sim.Load(*scenarioPath)
		if err != nil {
			return err
		}
	}
	if *seed != 0 {
		base.Seed = *seed
	}
	if *neurons != 0 {
		base.Attack.Neurons = *neurons
	}

	cfg := experiments.SweepConfig{
		Base:     base,
		Attacks:  splitList(*attacks, ","),
		Defenses: splitDefenses(*defenses),
		Workers:  *workers,
		Quick:    *quick,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	report, err := experiments.RunSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.Table().String())
	fmt.Print(report.CellTable().String())

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		raw, err := report.JSON()
		if err != nil {
			return err
		}
		jsonPath := filepath.Join(*outDir, "sweep.json")
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			return err
		}
		csvPath := filepath.Join(*outDir, "sweep.csv")
		if err := os.WriteFile(csvPath, []byte(report.Table().CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", jsonPath, csvPath)
	}
	return nil
}

// splitList parses a separated flag into its non-empty items.
func splitList(s, sep string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, sep) {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitDefenses parses the -defenses flag: items are ';'-separated when a
// semicolon is present (the unambiguous form — dpsgd's argument itself
// contains a comma); otherwise a string that already parses as one pipeline
// spec is a single item (so a lone -defenses dpsgd:1,0.1 works), and only
// then is ',' treated as the list separator.
func splitDefenses(s string) []string {
	if s == "" {
		return nil
	}
	if strings.Contains(s, ";") {
		return splitList(s, ";")
	}
	if strings.Contains(s, ",") {
		if _, err := defense.NewPipeline(s, defense.Config{}); err == nil {
			return []string{s}
		}
	}
	return splitList(s, ",")
}
