// Package oasis is the public API of this repository: a reproduction of
// "OASIS: Offsetting Active Reconstruction Attacks in Federated Learning"
// (Jeter, Nguyen, Alharbi, Thai — ICDCS 2024).
//
// The package re-exports the pieces a downstream user composes:
//
//   - datasets (synthetic stand-ins for the paper's ImageNet/CIFAR100),
//   - the OASIS defense (batch augmentation per Eq. 7 of the paper),
//   - the active reconstruction attacks it offsets (RTF, CAH, and the
//     single-layer gradient inversion),
//   - the federated-learning protocol with dishonest-server hooks,
//   - PSNR-based attack evaluation, and
//   - the experiment registry that regenerates every table and figure.
//
// # Quick start
//
//	ds := oasis.NewSynthCIFAR100(42)
//	rng := oasis.NewRand(1, 2)
//	batch, _ := oasis.RandomBatch(ds, rng, 8)
//
//	atk, _ := oasis.NewRTFAttack(ds, 500, rng)      // dishonest server
//	def, _ := oasis.NewDefense("MR")                 // client-side OASIS
//
//	defended, _ := def.Apply(batch)
//	ev, _, _ := atk.Run(defended, batch.Images, rng)
//	fmt.Printf("mean PSNR %.1f dB\n", ev.MeanPSNR()) // ~17 dB: unrecognizable
//
// See examples/ for complete programs, DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
package oasis

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/nn"
)

// Core data types.
type (
	// Image is a C×H×W float64 raster in [0, 1].
	Image = imaging.Image
	// Batch is one client's local training batch D.
	Batch = data.Batch
	// Dataset is an indexable labeled image collection.
	Dataset = data.Dataset
	// Policy produces the augmented counterparts X′_t of an image.
	Policy = augment.Policy
	// Defense is the OASIS batch preprocessor (D → D′, Eq. 7).
	Defense = core.Defense
	// Prop1Report quantifies the Proposition-1 condition for a defense.
	Prop1Report = core.Prop1Report
	// Evaluation summarizes attack success against the original batch.
	Evaluation = attack.Evaluation
	// ImageDims is the raster geometry used by the attacks.
	ImageDims = attack.ImageDims
	// RTFAttack is the "Robbing the Fed" imprint attack.
	RTFAttack = attack.RTF
	// CAHAttack is the "Curious Abandon Honesty" trap-weight attack.
	CAHAttack = attack.CAH
	// LinearAttack is the single-layer gradient inversion of §IV-D.
	LinearAttack = attack.LinearInversion
)

// NewRand returns a deterministic PCG generator; all randomness in this
// library is threaded through explicit generators.
func NewRand(seed1, seed2 uint64) *rand.Rand { return nn.RandSource(seed1, seed2) }

// NewSynthImageNet returns the 10-class 64×64×3 synthetic stand-in for the
// paper's ImageNet subset.
func NewSynthImageNet(seed uint64) Dataset { return data.NewSynthImageNet(seed) }

// NewSynthCIFAR100 returns the 100-class 32×32×3 synthetic stand-in for
// CIFAR100.
func NewSynthCIFAR100(seed uint64) Dataset { return data.NewSynthCIFAR100(seed) }

// NewSynthDataset builds a custom synthetic dataset (classes, channels,
// height, width, size).
func NewSynthDataset(name string, classes, c, h, w, n int, seed uint64) Dataset {
	return data.NewSynthCustom(name, classes, c, h, w, n, seed)
}

// RandomBatch draws a batch of the given size without replacement.
func RandomBatch(ds Dataset, rng *rand.Rand, size int) (*Batch, error) {
	return data.RandomBatch(ds, rng, size)
}

// UniqueLabelBatch draws one sample per distinct label (the linear-attack
// setting of §IV-D).
func UniqueLabelBatch(ds Dataset, rng *rand.Rand, size int) (*Batch, error) {
	return data.UniqueLabelBatch(ds, rng, size)
}

// NewDefense builds the OASIS defense for a policy label: "MR" (major
// rotation), "mR" (minor rotation), "SH" (shearing), "HFlip", "VFlip", or
// "MR+SH". The label "WO" (without OASIS) is rejected — use a nil defense.
func NewDefense(label string) (*Defense, error) {
	p, err := augment.ByName(label)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("oasis: %q is the no-defense baseline; use a nil *Defense instead", label)
	}
	return core.New(p), nil
}

// NewDefenseWithPolicy builds the OASIS defense around a custom policy.
func NewDefenseWithPolicy(p Policy) *Defense { return core.New(p) }

// PolicyNames lists the standard policy labels in the order the paper's
// tables use them.
func PolicyNames() []string { return []string{"MR", "mR", "SH", "HFlip", "VFlip", "MR+SH"} }

// PSNR returns the peak signal-to-noise ratio (dB) between a reconstruction
// and a reference image; see the paper's Figure 2.
func PSNR(recon, ref *Image) float64 { return imaging.PSNR(recon, ref) }

// dims extracts attack geometry from a dataset.
func dims(ds Dataset) ImageDims {
	c, h, w := ds.Shape()
	return ImageDims{C: c, H: h, W: w}
}

// NewRTFAttack calibrates a "Robbing the Fed" attack with n attacked neurons
// against the dataset's public statistics.
func NewRTFAttack(ds Dataset, n int, rng *rand.Rand) (*RTFAttack, error) {
	return attack.NewRTF(dims(ds), ds.NumClasses(), n, ds, rng, 256)
}

// NewCAHAttack calibrates a "Curious Abandon Honesty" attack with n trap
// neurons, tuned for the given anticipated batch size.
func NewCAHAttack(ds Dataset, n, anticipatedBatch int, rng *rand.Rand) (*CAHAttack, error) {
	return attack.NewCAH(dims(ds), ds.NumClasses(), n, ds, rng, 256, anticipatedBatch)
}

// NewLinearAttack builds the single-layer gradient inversion for a dataset.
func NewLinearAttack(ds Dataset) *LinearAttack {
	return attack.NewLinearInversion(dims(ds), ds.NumClasses())
}

// AnalyzeProp1 measures how well a defense satisfies Proposition 1 against a
// malicious layer (w, b as produced by an attack's Layer method).
var AnalyzeProp1 = core.AnalyzeProp1

// Composable defense registry. Every client-side defense — OASIS, the §V
// baselines, and custom registered families — sits behind one two-stage
// contract (rewrite the batch before training, transform the gradients
// before upload) and resolves from a "kind[:arg]" spec, or an ordered
// '|'-chain of them, e.g. "oasis:MR|dpsgd:1,0.1".
type (
	// ClientDefense is the unified two-stage defense contract
	// (ApplyBatch/ApplyGrads/Name); pipelines and every registered kind
	// implement it.
	ClientDefense = defense.Defense
	// DefensePipeline chains registered defenses in order; its Name() is
	// the deterministic composite label, e.g. "oasis(MR)|dpsgd(σ=0.1)".
	DefensePipeline = defense.Pipeline
	// DefenseConfig seeds stochastic defense stages (per-client streams).
	DefenseConfig = defense.Config
	// DefenseConstructor builds one registered defense kind from its spec
	// argument.
	DefenseConstructor = defense.Constructor
)

// NewDefensePipeline parses a defense pipeline spec ("prune:0.3", or a chain
// like "oasis:MR|dpsgd:1,0.1") into an ordered two-stage chain. Stochastic
// stages draw from rng; give every client its own generator (nil is allowed
// for parse-only validation). Unknown kinds error with DefenseNames().
func NewDefensePipeline(spec string, rng *rand.Rand) (*DefensePipeline, error) {
	return defense.NewPipeline(spec, defense.Config{Rng: rng})
}

// ComposeDefenses builds a pipeline directly from constructed defenses.
func ComposeDefenses(stages ...ClientDefense) *DefensePipeline { return defense.Compose(stages...) }

// DefenseNames lists the registered defense kinds NewDefensePipeline accepts
// as pipeline segments.
func DefenseNames() []string { return defense.Names() }

// RegisterDefense adds a custom defense family to the registry; it then
// becomes a valid scenario defense kind, sweep grid column, and pipeline
// segment.
func RegisterDefense(kind string, ctor DefenseConstructor) error {
	return defense.Register(kind, ctor)
}

// AttachDefense wires a defense's two stages into a federated client: the
// batch stage becomes the client's preprocessor and the gradient stage its
// upload transform. Stateful defenses (DPSGD, ATS) must not be attached to
// more than one client; build one pipeline per client.
func AttachDefense(c *FLLocalClient, d ClientDefense) {
	c.Pre = defense.BatchAdapter{D: d}
	c.GradDef = defense.GradAdapter{D: d}
}

// Baseline defenses (§V comparisons), kept as thin shims over the registry
// kinds "dpsgd", "prune", and "ats".
type (
	// DPSGDDefense clips and noises gradients (Abadi et al.).
	DPSGDDefense = defense.DPSGD
	// PruningDefense zeroes small-magnitude gradients.
	PruningDefense = defense.Pruning
	// ATSDefense is the replacement defense of Gao et al. [41].
	ATSDefense = defense.ATS
)

// NewDPSGD builds the DP baseline defense.
func NewDPSGD(clip, sigma float64, rng *rand.Rand) (*DPSGDDefense, error) {
	return defense.NewDPSGD(clip, sigma, rng)
}

// NewPruning builds the gradient-sparsification baseline defense.
func NewPruning(keep float64) (*PruningDefense, error) { return defense.NewPruning(keep) }

// NewATS builds the transformation-replacement baseline defense.
func NewATS(p Policy, rng *rand.Rand) (*ATSDefense, error) { return defense.NewATS(p, rng) }

// Experiment access.
type (
	// ExperimentConfig scales and seeds an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentResult carries an experiment's tables and artifacts.
	ExperimentResult = experiments.Result
	// SweepConfig shapes a parallel multi-seed attack×defense grid
	// evaluation: Replicates re-runs every cell at derived seeds,
	// CellWorkers bounds grid-level concurrency (distinct from the per-cell
	// client Workers), and results merge in deterministic grid order.
	SweepConfig = experiments.SweepConfig
	// SweepReport is the structured sweep outcome — byte-identical across
	// Workers and CellWorkers values for a fixed seed.
	SweepReport = experiments.SweepReport
	// SweepCell is one (attack, defense) grid entry with mean±std
	// PSNR/SSIM/accuracy over the replicate seeds.
	SweepCell = experiments.SweepCell
)

// RunSweep evaluates the attack×defense grid under the given config. On a
// cell failure the partial report (every completed cell in grid order) is
// returned alongside the error.
func RunSweep(cfg SweepConfig) (*SweepReport, error) { return experiments.RunSweep(cfg) }

// SweepReplicateSeeds derives the per-replicate scenario seeds a sweep runs:
// the base seed first, then distinct seeds from a dedicated keyed stream
// (stable — growing n never changes earlier seeds).
func SweepReplicateSeeds(base uint64, n int) []uint64 { return experiments.ReplicateSeeds(base, n) }

// DefaultSweepDefenses lists the default defense axis of the sweep grid.
func DefaultSweepDefenses() []string { return experiments.DefaultSweepDefenses() }

// DefaultSweepScenario returns the default base population sweep cells run.
func DefaultSweepScenario() Scenario { return experiments.DefaultSweepScenario() }

// Experiments lists the registered experiment IDs (fig2…fig14, table1, …).
func Experiments() []string { return experiments.IDs() }

// RunExperiment executes one registered experiment by ID.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	spec, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("oasis: unknown experiment %q (have %v)", id, experiments.IDs())
	}
	return spec.Run(cfg)
}
