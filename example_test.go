package oasis_test

import (
	"fmt"

	oasis "github.com/oasisfl/oasis"
)

// The package example mirrors the README quickstart: one attack, one
// defense, compared on the same private batch.
func Example() {
	ds := oasis.NewSynthCIFAR100(42)
	rng := oasis.NewRand(1, 2)
	batch, _ := oasis.RandomBatch(ds, rng, 8)

	atk, _ := oasis.NewRTFAttack(ds, 500, rng)
	evRaw, _, _ := atk.Run(batch, batch.Images, rng)

	def, _ := oasis.NewDefense("MR")
	defended, _ := def.Apply(batch)
	evDef, _, _ := atk.Run(defended, batch.Images, rng)

	fmt.Println("undefended verbatim:", evRaw.MeanPSNR() > 100)
	fmt.Println("defended verbatim:  ", evDef.MaxPSNR() > 100)
	// Output:
	// undefended verbatim: true
	// defended verbatim:   false
}

// ExampleDefense_Apply shows the Eq. 7 batch expansion.
func ExampleDefense_Apply() {
	ds := oasis.NewSynthImageNet(7)
	rng := oasis.NewRand(7, 7)
	batch, _ := oasis.RandomBatch(ds, rng, 4)

	def, _ := oasis.NewDefense("MR+SH")
	defended, _ := def.Apply(batch)
	fmt.Printf("|D| = %d, |D'| = %d\n", batch.Size(), defended.Size())
	// Output: |D| = 4, |D'| = 28
}

// ExampleAnalyzeProp1 checks the Proposition-1 condition directly against a
// calibrated malicious layer.
func ExampleAnalyzeProp1() {
	ds := oasis.NewSynthCIFAR100(5)
	rng := oasis.NewRand(5, 5)
	atk, _ := oasis.NewRTFAttack(ds, 200, rng)
	batch, _ := oasis.RandomBatch(ds, rng, 4)

	def, _ := oasis.NewDefense("MR")
	w, b := atk.Layer()
	rep, _ := oasis.AnalyzeProp1(def, batch, w, b)
	fmt.Printf("same-set fraction: %.0f%%\n", rep.SameSetFraction*100)
	// Output: same-set fraction: 100%
}
