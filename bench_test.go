package oasis

// Benchmark harness: one testing.B benchmark per table/figure of the paper,
// running the corresponding experiment at quick scale so `go test -bench=.`
// regenerates every artifact's reduced form. Use `go run ./cmd/oasis-bench`
// for the full-scale grids.
//
// Additional micro-benchmarks cover the load-bearing primitives: the
// malicious-layer gradient computation, attack inversion, OASIS batch
// expansion, and the FL round loop — the pieces whose cost dominates the
// experiments above.

import (
	"context"
	"fmt"
	"testing"

	"github.com/oasisfl/oasis/internal/experiments"
)

// benchExperiment runs a registered experiment once per iteration at quick
// scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Quick: true, Seed: uint64(42 + i)}
		if _, err := spec.Run(cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig2PSNRIllustration(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig3RTFGrid(b *testing.B)             { benchExperiment(b, "fig3") }
func BenchmarkFig4CAHGrid(b *testing.B)             { benchExperiment(b, "fig4") }
func BenchmarkFig5RTFTransforms(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6CAHTransforms(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7to12Visual(b *testing.B)          { benchExperiment(b, "visual") }
func BenchmarkFig13LinearInversion(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14ATSComparison(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkTable1ModelAccuracy(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkProp1ActivationAnalysis(b *testing.B) { benchExperiment(b, "prop1") }
func BenchmarkDPTradeoffAblation(b *testing.B)      { benchExperiment(b, "dp") }
func BenchmarkPreserveMeanAblation(b *testing.B)    { benchExperiment(b, "pm") }
func BenchmarkRobustAggregation(b *testing.B)       { benchExperiment(b, "robust") }

// BenchmarkClientGradients measures one client-side gradient computation
// against a planted RTF layer (the inner loop of Figures 3 and 5).
func BenchmarkClientGradients(b *testing.B) {
	ds := NewSynthCIFAR100(42)
	rng := NewRand(1, 2)
	atk, err := NewRTFAttack(ds, 500, rng)
	if err != nil {
		b.Fatal(err)
	}
	victim, err := atk.BuildVictim(rng)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := RandomBatch(ds, rng, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = victim.Gradients(batch)
	}
}

// BenchmarkRTFInversion measures the server-side reconstruction step alone.
func BenchmarkRTFInversion(b *testing.B) {
	ds := NewSynthCIFAR100(42)
	rng := NewRand(1, 2)
	atk, err := NewRTFAttack(ds, 500, rng)
	if err != nil {
		b.Fatal(err)
	}
	victim, err := atk.BuildVictim(rng)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := RandomBatch(ds, rng, 8)
	if err != nil {
		b.Fatal(err)
	}
	gw, gb, _ := victim.Gradients(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = atk.Reconstruct(gw, gb)
	}
}

// BenchmarkOASISExpansion measures the client-side cost of the defense
// itself (building D′ from D), per policy.
func BenchmarkOASISExpansion(b *testing.B) {
	ds := NewSynthCIFAR100(42)
	rng := NewRand(1, 2)
	batch, err := RandomBatch(ds, rng, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range PolicyNames() {
		def, err := NewDefense(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := def.Apply(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRoster builds n OASIS-defended clients over disjoint shards of a
// shared synthetic dataset.
func benchRoster(b *testing.B, n int) *MemoryRoster {
	b.Helper()
	ds := NewSynthDataset("bench-fl", 10, 3, 32, 32, 128*n, 42)
	rng := NewRand(9, 9)
	shards, err := ShardDataset(ds, n, rng)
	if err != nil {
		b.Fatal(err)
	}
	def, err := NewDefense("MR")
	if err != nil {
		b.Fatal(err)
	}
	roster := NewMemoryRoster()
	for i, shard := range shards {
		c := NewFLClient(fmt.Sprintf("c%d", i), shard, 8, NewRand(9, uint64(i)))
		c.Pre = def
		roster.Add(c)
	}
	return roster
}

// benchModel builds the global MLP used by the FL round benchmarks.
func benchModel() *Model {
	ds := NewSynthDataset("bench-fl", 10, 3, 32, 32, 32, 42)
	return NewMLP(ds, 64, NewRand(9, 9))
}

// BenchmarkFLRound measures one full federated round (dispatch, client
// gradients with OASIS, aggregation) over the in-memory transport.
func BenchmarkFLRound(b *testing.B) {
	roster := benchRoster(b, 4)
	model := benchModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server := NewFLServer(FLServerConfig{Rounds: 1, LearningRate: 0.05, Seed: uint64(i)}, model, roster)
		if _, err := server.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundSequentialVsConcurrent pits the sequential engine
// (Workers=1) against the concurrent worker pool at increasing fan-out over
// a 16-client roster, so the dispatcher's speedup lands in the bench
// trajectory. (The bit-identical-History guarantee itself is asserted by
// TestConcurrentHistoryDeterminism in internal/fl.)
func BenchmarkRoundSequentialVsConcurrent(b *testing.B) {
	const clients = 16
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			roster := benchRoster(b, clients)
			model := benchModel()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				server := NewFLServer(FLServerConfig{
					Rounds: 1, LearningRate: 0.05, Seed: uint64(i), Workers: workers,
				}, model, roster)
				if _, err := server.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
