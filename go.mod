module github.com/oasisfl/oasis

go 1.24
