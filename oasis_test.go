package oasis

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the exact flow the README advertises.
func TestPublicAPIQuickstart(t *testing.T) {
	ds := NewSynthCIFAR100(42)
	rng := NewRand(1, 2)
	batch, err := RandomBatch(ds, rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := NewRTFAttack(ds, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewDefense("MR")
	if err != nil {
		t.Fatal(err)
	}
	defended, err := def.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	evRaw, _, err := atk.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatal(err)
	}
	evDef, _, err := atk.Run(defended, batch.Images, rng)
	if err != nil {
		t.Fatal(err)
	}
	if evRaw.MeanPSNR() < 100 {
		t.Errorf("undefended mean PSNR %.1f", evRaw.MeanPSNR())
	}
	if evDef.MeanPSNR() > 40 {
		t.Errorf("defended mean PSNR %.1f", evDef.MeanPSNR())
	}
}

func TestNewDefenseValidation(t *testing.T) {
	for _, label := range PolicyNames() {
		def, err := NewDefense(label)
		if err != nil {
			t.Errorf("NewDefense(%q): %v", label, err)
			continue
		}
		if def.Name() != label {
			t.Errorf("defense name %q != %q", def.Name(), label)
		}
	}
	if _, err := NewDefense("WO"); err == nil {
		t.Error("NewDefense(WO) should direct users to a nil defense")
	}
	if _, err := NewDefense("bogus"); err == nil {
		t.Error("NewDefense(bogus) accepted")
	}
}

func TestExperimentRegistryAccessible(t *testing.T) {
	ids := Experiments()
	if len(ids) != 15 {
		t.Errorf("%d experiments exposed, want 15", len(ids))
	}
	if _, err := RunExperiment("definitely-not-real", ExperimentConfig{Quick: true}); err == nil {
		t.Error("unknown experiment accepted")
	}
	res, err := RunExperiment("prop1", ExperimentConfig{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "Proposition-1") {
		t.Error("prop1 output missing its table")
	}
}

func TestPSNRFacade(t *testing.T) {
	ds := NewSynthImageNet(1)
	im, _ := ds.Sample(0)
	if got := PSNR(im, im); got != 150 {
		t.Errorf("PSNR(identical) = %g", got)
	}
}

func TestAnalyzeProp1Facade(t *testing.T) {
	ds := NewSynthCIFAR100(5)
	rng := NewRand(5, 5)
	atk, err := NewRTFAttack(ds, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RandomBatch(ds, rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewDefense("MR")
	if err != nil {
		t.Fatal(err)
	}
	w, b := atk.Layer()
	rep, err := AnalyzeProp1(def, batch, w, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SameSetFraction != 1 {
		t.Errorf("same-set fraction %g, want 1 for MR vs RTF", rep.SameSetFraction)
	}
}

// TestFLIntegrationWithDishonestServer runs the full public-API pipeline:
// shards, OASIS clients, a CAH dishonest server, in-memory transport.
func TestFLIntegrationWithDishonestServer(t *testing.T) {
	ds := NewSynthDataset("fl-int", 6, 3, 16, 16, 256, 9)
	rng := NewRand(9, 1)
	shards, err := ShardDataset(ds, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewDefense("MR+SH")
	if err != nil {
		t.Fatal(err)
	}
	roster := NewMemoryRoster()
	for i, shard := range shards {
		c := NewFLClient(fmt.Sprintf("c%d", i), shard, 6, NewRand(9, uint64(i+2)))
		c.Pre = def
		roster.Add(c)
	}
	atk, err := NewCAHAttack(ds, 200, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	dishonest, err := NewCAHServer(atk, rng)
	if err != nil {
		t.Fatal(err)
	}
	server := NewFLServer(FLServerConfig{Rounds: 2, LearningRate: 0.05, Seed: 9}, NewMLP(ds, 32, rng), roster)
	server.Modifier = dishonest
	server.Observer = dishonest
	if _, err := server.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	caps := dishonest.Captures()
	if len(caps) != 6 { // 3 clients × 2 rounds
		t.Fatalf("%d captures, want 6", len(caps))
	}
	for _, cap := range caps {
		if cap.ClientID == "" {
			t.Error("capture missing client id")
		}
	}
}

func TestTrainCentralizedFacade(t *testing.T) {
	ds := NewSynthDataset("train-api", 4, 3, 12, 12, 256, 3)
	rng := NewRand(3, 3)
	shards, err := ShardDataset(ds, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewClassifier(ds, 4, rng)
	acc, err := TrainCentralized(model, shards[0], shards[1], nil, 3, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0.25 { // must beat random (4 classes)
		t.Errorf("accuracy %.2f not above chance", acc)
	}
}

func TestBaselineDefenseConstructors(t *testing.T) {
	rng := NewRand(4, 4)
	if _, err := NewDPSGD(1, 0.1, rng); err != nil {
		t.Error(err)
	}
	if _, err := NewPruning(0.5); err != nil {
		t.Error(err)
	}
	def, err := NewDefense("MR")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewATS(def.Policy, rng); err != nil {
		t.Error(err)
	}
}

func TestDefensePipelineFacade(t *testing.T) {
	pl, err := NewDefensePipeline("oasis:MR|dpsgd:1,0.1", NewRand(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if want := "oasis(MR)|dpsgd(σ=0.1)"; pl.Name() != want {
		t.Errorf("pipeline name %q, want %q", pl.Name(), want)
	}
	if n := len(pl.StageNames()); n != 2 {
		t.Errorf("%d stages, want 2", n)
	}
	if _, err := NewDefensePipeline("oasis:MR|tinfoil", nil); err == nil {
		t.Error("malformed pipeline accepted")
	}

	names := DefenseNames()
	for _, want := range []string{"oasis", "dpsgd", "prune", "ats"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("DefenseNames() %v missing built-in %q", names, want)
		}
	}

	// The pipeline attaches to a federated client and the client still
	// trains: the batch stage expands D, the gradient stage noises uploads.
	ds := NewSynthDataset("def-api", 4, 1, 8, 8, 64, 9)
	client := NewFLClient("c0", ds, 4, NewRand(9, 1))
	AttachDefense(client, pl)
	if client.Pre == nil || client.GradDef == nil {
		t.Fatal("AttachDefense left a stage unwired")
	}
	if client.Pre.Name() != pl.Name() || client.GradDef.Name() != pl.Name() {
		t.Error("attached stages do not carry the pipeline label")
	}

	// Custom registration flows through the public surface into pipelines.
	if err := RegisterDefense("facade-test", func(arg string, cfg DefenseConfig) (ClientDefense, error) {
		return ComposeDefenses(), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDefensePipeline("facade-test|prune:0.5", nil); err != nil {
		t.Errorf("registered custom kind rejected in a pipeline: %v", err)
	}
	if err := RegisterDefense("facade-test", nil); err == nil {
		t.Error("duplicate/nil registration accepted")
	}
}

func TestUniqueLabelBatchFacade(t *testing.T) {
	ds := NewSynthCIFAR100(6)
	rng := NewRand(6, 6)
	b, err := UniqueLabelBatch(ds, rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	atk := NewLinearAttack(ds)
	ev, recons, err := atk.Run(b, b.Images, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(recons) != 16 {
		t.Errorf("%d linear reconstructions, want 16", len(recons))
	}
	if ev.MeanPSNR() < 20 {
		t.Errorf("undefended linear inversion mean PSNR %.1f", ev.MeanPSNR())
	}
}

func TestModelCheckpointFacade(t *testing.T) {
	ds := NewSynthDataset("ckpt-api", 4, 3, 8, 8, 64, 2)
	rng := NewRand(2, 2)
	model := NewClassifier(ds, 4, rng)
	path := t.TempDir() + "/model.ckpt"
	if err := SaveModel(model, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParams() != model.NumParams() {
		t.Errorf("restored model has %d params, want %d", back.NumParams(), model.NumParams())
	}
}
