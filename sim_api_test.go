package oasis

import (
	"testing"
)

// TestShardDatasetRemainders: remainder samples are distributed instead of
// dropped, and oversharding errors instead of panicking on zero-size shards.
func TestShardDatasetRemainders(t *testing.T) {
	ds := NewSynthDataset("shards", 4, 1, 8, 8, 10, 1)
	shards, err := ShardDataset(ds, 3, NewRand(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	total, maxLen, minLen := 0, 0, ds.Len()
	for _, s := range shards {
		total += s.Len()
		maxLen = max(maxLen, s.Len())
		minLen = min(minLen, s.Len())
	}
	if total != ds.Len() {
		t.Errorf("shards cover %d of %d samples; remainders dropped", total, ds.Len())
	}
	if maxLen-minLen > 1 {
		t.Errorf("shard sizes spread %d–%d; want near-equal", minLen, maxLen)
	}
	if _, err := ShardDataset(ds, 11, NewRand(1, 2)); err == nil {
		t.Error("expected error for more shards than samples")
	}
	if _, err := ShardDataset(ds, 0, NewRand(1, 2)); err == nil {
		t.Error("expected error for zero shards")
	}
}

// TestPartitionDatasetFacade drives a non-IID partition through the public
// surface.
func TestPartitionDatasetFacade(t *testing.T) {
	ds := NewSynthDataset("noniid", 5, 1, 8, 8, 200, 2)
	p, err := NewPartitioner("dirichlet:0.2")
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionDataset(ds, 8, p, NewRand(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("got %d shards, want 8", len(shards))
	}
	total := 0
	for _, s := range shards {
		if s.Len() == 0 {
			t.Error("empty shard from PartitionDataset")
		}
		total += s.Len()
	}
	if total != ds.Len() {
		t.Errorf("partition covers %d of %d samples", total, ds.Len())
	}
	if len(PartitionerNames()) == 0 || len(ClientSamplerNames()) == 0 {
		t.Error("name listings empty")
	}
}

// TestRunScenarioFacade runs a preset scenario through the public API.
func TestRunScenarioFacade(t *testing.T) {
	names := ScenarioPresets()
	if len(names) == 0 {
		t.Fatal("no scenario presets")
	}
	sc, ok := PresetScenario("smoke")
	if !ok {
		t.Fatal("smoke preset missing")
	}
	rep, err := RunScenario(sc, ScenarioOptions{Quick: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clients != sc.Clients || len(rep.Rounds) == 0 {
		t.Errorf("report shape wrong: %d clients, %d rounds", rep.Clients, len(rep.Rounds))
	}
	if _, ok := PresetScenario("nope"); ok {
		t.Error("PresetScenario(nope) found")
	}
}

// TestRunSweepFacade drives the multi-seed sweep engine through the public
// API: a tiny replicated grid with bounded cell-level workers, checking the
// replicate seeds and aggregated cells come back.
func TestRunSweepFacade(t *testing.T) {
	rep, err := RunSweep(SweepConfig{
		Attacks:     []string{"rtf"},
		Defenses:    []string{"none"},
		Replicates:  2,
		CellWorkers: 2,
		Workers:     2,
		Quick:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicates != 2 || len(rep.Cells) != 1 {
		t.Fatalf("report shape wrong: %d replicates, %d cells", rep.Replicates, len(rep.Cells))
	}
	seeds := SweepReplicateSeeds(rep.Seed, 2)
	if len(rep.Seeds) != 2 || rep.Seeds[0] != seeds[0] || rep.Seeds[1] != seeds[1] {
		t.Errorf("report seeds %v do not match SweepReplicateSeeds %v", rep.Seeds, seeds)
	}
	if base := DefaultSweepScenario(); base.Seed != rep.Seed {
		t.Errorf("default base seed %d, report seed %d", base.Seed, rep.Seed)
	}
	if len(DefaultSweepDefenses()) == 0 {
		t.Error("no default sweep defenses")
	}
}
