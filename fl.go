package oasis

import (
	"context"
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/dist"
	"github.com/oasisfl/oasis/internal/fl"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/opt"
	"github.com/oasisfl/oasis/internal/sim"
)

// Federated-learning surface: the protocol types a downstream user touches
// when simulating (or actually running) the paper's setting.
type (
	// FLServer coordinates rounds per §II-A of the paper.
	FLServer = fl.Server
	// FLServerConfig parametrizes rounds, client sampling and η.
	FLServerConfig = fl.ServerConfig
	// FLClient is one federated participant.
	FLClient = fl.Client
	// FLLocalClient is the standard client over a local data shard.
	FLLocalClient = fl.LocalClient
	// FLHistory traces a completed run.
	FLHistory = fl.History
	// FLUpdate is a client's uploaded gradient payload.
	FLUpdate = fl.Update
	// FLRoster abstracts how the server reaches its clients.
	FLRoster = fl.Roster
	// FLAggregator folds one round's client updates into the applied
	// gradient (streaming Add/Finalize; see fl.Aggregator for the
	// contract). Assign to FLServer.Aggregator; nil means FedAvg mean.
	FLAggregator = fl.Aggregator
	// FLClientSampler picks each round's participants (uniform or
	// size-weighted; assign to FLServer.Sampler, nil means uniform).
	FLClientSampler = fl.ClientSampler
	// Partitioner splits a dataset's index space into disjoint client
	// shards (IID, Dirichlet label skew, quantity skew).
	Partitioner = data.Partitioner
	// Scenario declaratively describes a full federated population:
	// size, partitioning, reliability, defenses, and attack schedule.
	Scenario = sim.Scenario
	// ScenarioReport is the structured, deterministic outcome of a
	// scenario run.
	ScenarioReport = sim.Report
	// ScenarioOptions tunes scenario execution (quick mode, workers).
	ScenarioOptions = sim.Options
	// MemoryRoster is the in-process transport.
	MemoryRoster = fl.MemoryRoster
	// TCPServer is the TCP/gob transport's listener side.
	TCPServer = fl.TCPServer
	// Attack is the common interface of every registered reconstruction
	// attack family (rtf, cah, qbi, loki, …); resolve one with NewAttack.
	Attack = attack.Attack
	// AttackConfig parametrizes registry attack calibration (dims, neuron
	// budget, probe data, anticipated batch).
	AttackConfig = attack.Config
	// DishonestServer plants malicious models and inverts updates; it
	// implements both server hooks of the threat model.
	DishonestServer = attack.DishonestServer
	// Capture is one reconstruction event observed by a dishonest server.
	Capture = attack.Capture
	// Model is a runnable network (the global model being trained).
	Model = nn.Sequential
)

// NewMemoryRoster creates the in-process client roster.
func NewMemoryRoster() *MemoryRoster { return fl.NewMemoryRoster() }

// SaveModel checkpoints a model (architecture + weights + normalization
// state) to disk; LoadModel restores a functionally identical network.
func SaveModel(model *Model, path string) error { return fl.SaveModel(model, path) }

// LoadModel restores a model saved with SaveModel.
func LoadModel(path string) (*Model, error) { return fl.LoadModel(path) }

// NewFLClient constructs a client over a dataset shard. Assign a *Defense to
// the client's Pre field to turn on OASIS, and a gradient defense (DPSGD,
// pruning) to GradDef for the §V baselines.
func NewFLClient(name string, shard Dataset, batchSize int, rng *rand.Rand) *FLLocalClient {
	return fl.NewLocalClient(name, shard, batchSize, rng)
}

// NewFLServer builds a server over a global model and roster. Set
// cfg.Workers to bound the round engine's client concurrency (0 = NumCPU; 1
// = sequential) and assign server.Aggregator to change the aggregation
// policy — the History is bit-identical across worker counts for the same
// seed.
func NewFLServer(cfg FLServerConfig, model *Model, roster FLRoster) *FLServer {
	return fl.NewServer(cfg, model, roster)
}

// NewAggregator resolves an aggregation policy by name: "mean" (FedAvg,
// Eq. 1), "median" (coordinate-wise), "trimmed[:frac]" (coordinate-wise
// trimmed mean), or "normclip[:max]" (per-update L2 clipping before mean).
func NewAggregator(name string) (FLAggregator, error) {
	return fl.NewAggregatorByName(name)
}

// AggregatorNames lists the aggregation policies NewAggregator accepts.
func AggregatorNames() []string { return fl.AggregatorNames() }

// NewPartitioner resolves a data-partitioning policy from its spec: "iid",
// "dirichlet[:alpha]" (label skew), or "quantity[:sigma]" (size skew).
func NewPartitioner(spec string) (Partitioner, error) { return data.NewPartitioner(spec) }

// PartitionerNames lists the specs NewPartitioner accepts.
func PartitionerNames() []string { return data.PartitionerNames() }

// NewClientSampler resolves a client-sampling strategy by name: "uniform" or
// "size" (probability proportional to local dataset size).
func NewClientSampler(name string) (FLClientSampler, error) { return fl.NewSamplerByName(name) }

// ClientSamplerNames lists the strategies NewClientSampler accepts.
func ClientSamplerNames() []string { return fl.SamplerNames() }

// RunScenario materializes and executes a declarative FL scenario, returning
// its structured report. For a fixed seed the report is bit-identical across
// ScenarioOptions.Workers values.
func RunScenario(sc Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	return sim.Run(sc, opts)
}

// LoadScenario reads a JSON scenario spec (see internal/sim for the schema).
func LoadScenario(path string) (Scenario, error) { return sim.Load(path) }

// ScenarioPresets lists the named example scenarios (cross-device-1k,
// flaky-hospital, adversarial-burst, smoke).
func ScenarioPresets() []string { return sim.PresetNames() }

// PresetScenario returns a named preset scenario to run or customize.
func PresetScenario(name string) (Scenario, bool) { return sim.Preset(name) }

// ListenTCP starts a TCP roster on addr ("127.0.0.1:0" for an ephemeral
// port).
func ListenTCP(addr string) (*TCPServer, error) {
	return fl.ListenTCP(addr, fl.TCPServerOptions{})
}

// ServeTCP connects a client to a remote FL server and blocks until
// shutdown.
func ServeTCP(ctx context.Context, addr string, client FLClient) error {
	return fl.ServeTCP(ctx, addr, client)
}

// Distributed sweep surface: run one sweep grid across processes. The
// coordinator leases (cell, replicate) jobs to workers over TCP, re-leases
// on worker death or timeout, streams completed results to a JSONL
// checkpoint for crash/resume, and merges in deterministic grid order — the
// final SweepReport is byte-identical to an in-process RunSweep of the same
// config, regardless of worker count, join order, or resume history.
type (
	// SweepCoordinatorConfig shapes the serving side of a distributed
	// sweep: the grid, the listen address, the checkpoint path, and the
	// lease timeout.
	SweepCoordinatorConfig = dist.CoordinatorConfig
	// SweepWorkerConfig shapes one worker process: the coordinator address
	// and the deterministic dial/lease retry backoff.
	SweepWorkerConfig = dist.WorkerConfig
)

// RunSweepCoordinator serves a sweep grid to remote workers until every job
// completes (or ctx ends, returning the partial report with the context
// error), then merges and returns the deterministic report.
func RunSweepCoordinator(ctx context.Context, cfg SweepCoordinatorConfig) (*SweepReport, error) {
	return dist.RunCoordinator(ctx, cfg)
}

// RunSweepWorker dials a sweep coordinator and runs leased jobs until the
// grid completes (nil), ctx ends, or the bounded retry budget exhausts.
func RunSweepWorker(ctx context.Context, cfg SweepWorkerConfig) error {
	return dist.RunWorker(ctx, cfg)
}

// NewAttack calibrates a registered attack family by kind against a probe
// dataset: neurons sizes the planted layer and anticipatedBatch tunes bias
// placement (0 = default 8). Unknown kinds error with the list of registered
// families (AttackNames).
func NewAttack(kind string, ds Dataset, neurons, anticipatedBatch int, rng *rand.Rand) (Attack, error) {
	return attack.New(kind, attack.Config{
		Dims:    dims(ds),
		Classes: ds.NumClasses(),
		Neurons: neurons,
		Probe:   ds,
		Batch:   anticipatedBatch,
		Rng:     rng,
	})
}

// AttackNames lists the registered attack families NewAttack accepts.
func AttackNames() []string { return attack.Names() }

// RegisterAttack adds a custom attack family to the registry; it then
// becomes a valid scenario attack kind and sweep grid row.
func RegisterAttack(kind string, ctor func(AttackConfig) (Attack, error)) error {
	return attack.Register(kind, ctor)
}

// NewAttackServer wraps any calibrated registry attack as dishonest-server
// hooks (assign to FLServer.Modifier and FLServer.Observer).
func NewAttackServer(a Attack, rng *rand.Rand) (*DishonestServer, error) {
	return attack.NewAttackServer(a, rng)
}

// NewRTFServer wraps a calibrated RTF attack as dishonest-server hooks.
func NewRTFServer(a *RTFAttack, rng *rand.Rand) (*DishonestServer, error) {
	return attack.NewRTFServer(a, rng)
}

// NewCAHServer wraps a calibrated CAH attack as dishonest-server hooks.
func NewCAHServer(a *CAHAttack, rng *rand.Rand) (*DishonestServer, error) {
	return attack.NewCAHServer(a, rng)
}

// NewClassifier builds the ResNet-lite classifier used as the honest global
// model (width controls capacity; see nn.NewResNetLite).
func NewClassifier(ds Dataset, width int, rng *rand.Rand) *Model {
	c, _, _ := ds.Shape()
	return nn.NewResNetLite(nn.ResNetLiteConfig{
		InChannels: c, NumClasses: ds.NumClasses(), Width: width,
	}, rng)
}

// NewMLP builds a small fully-connected classifier (flat input), the model
// family the malicious layers of the attacks are planted in.
func NewMLP(ds Dataset, hidden int, rng *rand.Rand) *Model {
	c, h, w := ds.Shape()
	d := c * h * w
	return nn.NewSequential(
		nn.NewLinear("fc1", d, hidden, rng),
		nn.NewReLU("relu1"),
		nn.NewLinear("fc2", hidden, ds.NumClasses(), rng),
	)
}

// ShardDataset splits a dataset into n disjoint client shards covering every
// sample: near-equal sizes, with the first len%n shards one sample larger.
// It errors when n exceeds the dataset size (a zero-size shard cannot
// train).
func ShardDataset(ds Dataset, n int, rng *rand.Rand) ([]Dataset, error) {
	return PartitionDataset(ds, n, data.IID{}, rng)
}

// PartitionDataset splits a dataset into n client shards under an arbitrary
// partitioning policy — data.IID, data.Dirichlet{Alpha} label skew,
// data.Quantity{Sigma} size skew, or anything NewPartitioner resolves.
func PartitionDataset(ds Dataset, n int, p Partitioner, rng *rand.Rand) ([]Dataset, error) {
	parts, err := p.Partition(ds, n, rng)
	if err != nil {
		return nil, err
	}
	out := make([]Dataset, len(parts))
	for i, idx := range parts {
		out[i] = data.NewSubset(ds, idx, fmt.Sprintf("%s-shard-%d", ds.Name(), i))
	}
	return out, nil
}

// TrainCentralized runs plain centralized training (used by Table I and the
// examples): epochs over trainSet with Adam, returning test accuracy.
func TrainCentralized(model *Model, trainSet, testSet Dataset, def *Defense, epochs, batchSize int, rng *rand.Rand) (float64, error) {
	optimizer := opt.NewAdam(1e-3, 1e-4)
	loss := nn.SoftmaxCrossEntropy{}
	n := trainSet.Len()
	for ep := 0; ep < epochs; ep++ {
		perm := rng.Perm(n)
		for off := 0; off+batchSize <= n; off += batchSize {
			batch, err := data.TakeBatch(trainSet, perm[off:off+batchSize])
			if err != nil {
				return 0, err
			}
			if def != nil {
				batch, err = def.Apply(batch)
				if err != nil {
					return 0, err
				}
			}
			model.ZeroGrad()
			logits := model.Forward(batch.Tensor4D(), true)
			_, g := loss.Compute(logits, batch.Labels)
			model.Backward(g)
			optimizer.Step(model.Params())
		}
	}
	return EvaluateAccuracy(model, testSet, batchSize)
}

// EvaluateAccuracy computes classification accuracy over a dataset in
// inference mode.
func EvaluateAccuracy(model *Model, testSet Dataset, batchSize int) (float64, error) {
	correct, total := 0.0, 0
	for off := 0; off < testSet.Len(); off += batchSize {
		end := min(off+batchSize, testSet.Len())
		idx := make([]int, 0, end-off)
		for i := off; i < end; i++ {
			idx = append(idx, i)
		}
		batch, err := data.TakeBatch(testSet, idx)
		if err != nil {
			return 0, err
		}
		logits := model.Forward(batch.Tensor4D(), false)
		correct += nn.Accuracy(logits, batch.Labels) * float64(batch.Size())
		total += batch.Size()
	}
	if total == 0 {
		return 0, nil
	}
	return correct / float64(total), nil
}
