package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPresetsNormalize(t *testing.T) {
	names := PresetNames()
	want := []string{"smoke", "cross-device-1k", "flaky-hospital", "qbi-probe", "loki-population", "cross-device-1M", "adversarial-burst"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("preset names %v, want %v", names, want)
	}
	for _, sc := range Presets() {
		if _, err := sc.Normalize(); err != nil {
			t.Errorf("preset %s does not validate: %v", sc.Name, err)
		}
	}
	if _, ok := Preset("nope"); ok {
		t.Error("Preset(nope) found")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc, _ := Preset("cross-device-1k")
	raw, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Errorf("JSON round trip changed the scenario:\n in: %+v\nout: %+v", sc, back)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"name":"x","clients":2,"rounds":1,"dropuot":0.5}`))
	if err == nil || !strings.Contains(err.Error(), "dropuot") {
		t.Fatalf("expected unknown-field error naming the typo, got %v", err)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	base := func() Scenario {
		sc, _ := Preset("smoke")
		return sc
	}
	cases := map[string]func(*Scenario){
		"no clients":         func(s *Scenario) { s.Clients = 0 },
		"no rounds":          func(s *Scenario) { s.Rounds = 0 },
		"dropout 1":          func(s *Scenario) { s.Dropout = 1 },
		"tiny dataset":       func(s *Scenario) { s.Dataset.Samples = s.Clients - 1 },
		"bad partition":      func(s *Scenario) { s.Partition = "zipf" },
		"bad sampler":        func(s *Scenario) { s.Sampling = "roulette" },
		"bad aggregator":     func(s *Scenario) { s.Aggregator = "blockchain" },
		"bad defense":        func(s *Scenario) { s.Defense.Kind = "prayer" },
		"bad attack":         func(s *Scenario) { s.Attack.Kind = "dos" },
		"attack never fires": func(s *Scenario) { s.Attack.Rounds = []int{99} },
		"bad model":          func(s *Scenario) { s.Model.Kind = "transformer" },
		"negative hidden":    func(s *Scenario) { s.Model.Hidden = -5 },
		"negative lr":        func(s *Scenario) { s.LearningRate = -0.05 },
	}
	for name, mutate := range cases {
		sc := base()
		mutate(&sc)
		if _, err := sc.Normalize(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestAttackSchedule(t *testing.T) {
	burst := AttackSpec{Kind: "rtf", FirstRound: 2, LastRound: 4}
	for r, want := range map[int]bool{0: false, 1: false, 2: true, 3: true, 4: true, 5: false} {
		if burst.Active(r) != want {
			t.Errorf("burst Active(%d) = %v, want %v", r, burst.Active(r), want)
		}
	}
	explicit := AttackSpec{Kind: "cah", Rounds: []int{1, 5}}
	for r, want := range map[int]bool{0: false, 1: true, 2: false, 5: true} {
		if explicit.Active(r) != want {
			t.Errorf("explicit Active(%d) = %v, want %v", r, explicit.Active(r), want)
		}
	}
	if (AttackSpec{}).Active(0) {
		t.Error("empty attack spec must never be active")
	}
}

// runPreset executes a preset in quick mode at the given worker count.
func runPreset(t *testing.T, name string, workers int) *Report {
	t.Helper()
	sc, ok := Preset(name)
	if !ok {
		t.Fatalf("no preset %s", name)
	}
	rep, err := Run(sc, Options{Quick: true, Workers: workers})
	if err != nil {
		t.Fatalf("preset %s: %v", name, err)
	}
	return rep
}

// TestSmokePresetEndToEnd is the CI smoke tier's scenario: the tiny preset
// must run end to end with every subsystem engaged.
func TestSmokePresetEndToEnd(t *testing.T) {
	rep := runPreset(t, "smoke", 4)
	if len(rep.Rounds) != 4 {
		t.Fatalf("%d rounds recorded, want 4", len(rep.Rounds))
	}
	if rep.MeanParticipation <= 0 || rep.MeanParticipation > 1 {
		t.Errorf("mean participation %.2f out of (0, 1]", rep.MeanParticipation)
	}
	if !rep.Rounds[1].AttackActive {
		t.Error("round 1 should be the attack round")
	}
	if rep.AttackCaptures == 0 {
		t.Error("the RTF strike captured nothing")
	}
	if !rep.Rounds[len(rep.Rounds)-1].Evaluated {
		t.Error("final round must carry an accuracy evaluation")
	}
	if rep.ShardSizes.Min < 1 {
		t.Errorf("shard min %d; every client needs data", rep.ShardSizes.Min)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	var round map[string]any
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatalf("report JSON does not parse back: %v", err)
	}
	if !strings.Contains(rep.String(), "participation") {
		t.Error("String() missing summary")
	}
	if rows := rep.Table().Rows; len(rows) != len(rep.Rounds) {
		t.Errorf("table has %d rows for %d rounds", len(rows), len(rep.Rounds))
	}
}

// TestCrossDevice1kAcceptance is the subsystem's acceptance scenario: 1000
// clients, Dirichlet(0.1) label skew, 10% dropout, stragglers against a
// deadline, and an RTF burst — to completion in quick mode, with dropped and
// late clients degrading rounds instead of stalling them.
func TestCrossDevice1kAcceptance(t *testing.T) {
	rep := runPreset(t, "cross-device-1k", 8)
	if rep.Clients != 1000 {
		t.Fatalf("population %d, want 1000", rep.Clients)
	}
	if rep.Partition != "dirichlet:0.1" {
		t.Errorf("partition %s, want dirichlet:0.1", rep.Partition)
	}
	if len(rep.Rounds) != quickMaxRounds {
		t.Fatalf("%d rounds, want quick cap %d", len(rep.Rounds), quickMaxRounds)
	}
	if rep.TotalDropped == 0 {
		t.Error("10%% dropout over 5×50 selections produced no dropouts")
	}
	if rep.TotalLate == 0 {
		t.Error("straggler tail vs 120ms deadline produced no late clients")
	}
	attacked := false
	for _, rr := range rep.Rounds {
		if rr.Selected != 50 {
			t.Errorf("round %d selected %d clients, want 50", rr.Round, rr.Selected)
		}
		if rr.Completed+rr.Dropped+rr.Late+rr.Failed != rr.Selected {
			t.Errorf("round %d outcome accounting does not add up: %+v", rr.Round, rr)
		}
		if rr.Completed == 0 {
			t.Errorf("round %d lost every client", rr.Round)
		}
		attacked = attacked || rr.AttackActive
	}
	if !attacked {
		t.Error("the attack burst never fired")
	}
	if rep.AttackReconstructions == 0 {
		t.Error("the RTF burst reconstructed nothing")
	}
	if rep.AttackMeanPSNR <= 0 {
		t.Error("attack PSNR was never scored against recorded originals")
	}
	if rep.TotalVirtualMS <= 0 {
		t.Error("virtual clock never advanced")
	}
}

// TestReportDeterministicAcrossWorkers is the acceptance bar for the
// engine: a fixed seed must yield a bit-identical report (JSON and all) for
// every worker count, including the full 1000-client scenario.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	for _, preset := range []string{"smoke", "cross-device-1k", "flaky-hospital", "adversarial-burst"} {
		t.Run(preset, func(t *testing.T) {
			seq := runPreset(t, preset, 1)
			con := runPreset(t, preset, 8)
			if !reflect.DeepEqual(seq, con) {
				t.Fatalf("workers=1 and workers=8 reports diverge:\n seq: %+v\n con: %+v", seq, con)
			}
			a, _ := seq.JSON()
			b, _ := con.JSON()
			if !bytes.Equal(a, b) {
				t.Fatal("report JSON differs across worker counts")
			}
		})
	}
}

// TestDefenseLowersAttackPSNR ties the subsystem back to the paper: the same
// scenario with full OASIS coverage must reconstruct worse than undefended.
func TestDefenseLowersAttackPSNR(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative sweep; run without -short")
	}
	sc, _ := Preset("smoke")
	sc.Dropout = 0
	sc.Straggler = StragglerSpec{}
	sc.DeadlineMS = 0

	sc.Defense = DefenseSpec{}
	undefended, err := Run(sc, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	sc.Defense = DefenseSpec{Kind: "oasis:MR", Fraction: 1}
	defended, err := Run(sc, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if undefended.AttackMeanPSNR == 0 || defended.AttackMeanPSNR == 0 {
		t.Fatalf("PSNR not scored: undefended %.1f, defended %.1f",
			undefended.AttackMeanPSNR, defended.AttackMeanPSNR)
	}
	if defended.AttackMeanPSNR >= undefended.AttackMeanPSNR {
		t.Errorf("OASIS did not lower reconstruction PSNR: defended %.1f ≥ undefended %.1f",
			defended.AttackMeanPSNR, undefended.AttackMeanPSNR)
	}
}

// TestReportDefenseLabelResolved pins the label bugfix: Report.Defense must
// carry the constructed pipeline's Name() — resolved parameters, not the raw
// spec string — for single defenses and composed pipelines alike.
func TestReportDefenseLabelResolved(t *testing.T) {
	sc, _ := Preset("smoke")
	sc.Defense = DefenseSpec{Kind: "oasis:MR|dpsgd:1,0.1", Fraction: 0.5}
	rep, err := Run(sc, Options{Quick: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := "oasis(MR)|dpsgd(σ=0.1)"; rep.Defense != want {
		t.Errorf("composed report label = %q, want %q", rep.Defense, want)
	}
	if !strings.Contains(rep.String(), "oasis(MR)|dpsgd(σ=0.1)") {
		t.Error("report summary does not show the resolved pipeline label")
	}

	sc.Defense = DefenseSpec{Kind: "prune:0.3", Fraction: 1}
	rep, err = Run(sc, Options{Quick: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := "prune(keep=0.3)"; rep.Defense != want {
		t.Errorf("single-stage report label = %q, want %q", rep.Defense, want)
	}
}

// TestQuickModeRejectsOutOfWindowAttack: quick's round cap must not silently
// drop a scheduled attack.
func TestQuickModeRejectsOutOfWindowAttack(t *testing.T) {
	sc, _ := Preset("smoke")
	sc.Rounds = 12
	sc.Attack.Rounds = []int{10}
	if _, err := Run(sc, Options{Quick: true}); err == nil {
		t.Fatal("expected quick-mode validation error for an attack beyond the round cap")
	}
}

// TestLoadScenarioFile drives the -scenario file path: dump the 1000-client
// preset to JSON, load it back, and run it in quick mode.
func TestLoadScenarioFile(t *testing.T) {
	sc, _ := Preset("cross-device-1k")
	raw, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(loaded, Options{Quick: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clients != 1000 || rep.Partition != "dirichlet:0.1" {
		t.Errorf("loaded scenario ran wrong: %d clients, partition %s", rep.Clients, rep.Partition)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
}
