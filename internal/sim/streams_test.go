package sim

import (
	"reflect"
	"testing"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

// flagsScenario is a population with both a defended fraction and a straggler
// tail, the two scenario-level membership draws.
func flagsScenario() Scenario {
	return Scenario{
		Name: "flags", Seed: 7, Clients: 40, Rounds: 2,
		Dataset:   DatasetSpec{Classes: 4, Channels: 1, Height: 8, Width: 8, Samples: 160},
		Defense:   DefenseSpec{Kind: "oasis:MR", Fraction: 0.5},
		Straggler: StragglerSpec{Fraction: 0.3, MeanDelayMS: 50, BaseDelayMS: 5},
	}
}

// TestStragglerSetIndependentOfDefense is the regression test for the stream
// isolation bugfix: straggler membership used to be drawn from the same
// scenario-level stream as the defense assignment, so toggling Defense.Kind
// on an otherwise identical scenario silently reshuffled which clients
// straggle — exactly the cross-cell confound the sweep isolates. Each draw
// now has its own keyed stream.
func TestStragglerSetIndependentOfDefense(t *testing.T) {
	defendedOn := flagsScenario()
	defendedOff := flagsScenario()
	defendedOff.Defense = DefenseSpec{}

	_, _, stragglersOn := populationFlags(defendedOn)
	_, _, stragglersOff := populationFlags(defendedOff)
	if !reflect.DeepEqual(stragglersOn, stragglersOff) {
		t.Errorf("toggling the defense reshuffled the straggler set:\n  on: %v\n off: %v",
			stragglersOn, stragglersOff)
	}

	// And the converse: the defended set must not depend on the straggler
	// spec either.
	noTail := flagsScenario()
	noTail.Straggler = StragglerSpec{}
	defendedA, nA, _ := populationFlags(flagsScenario())
	defendedB, nB, _ := populationFlags(noTail)
	if nA != nB || !reflect.DeepEqual(defendedA, defendedB) {
		t.Errorf("dropping the straggler tail reshuffled the defended set:\n with: %v\n  w/o: %v",
			defendedA, defendedB)
	}
}

// TestPopulationFlagsCounts pins the membership sizes to the rounded spec
// fractions for both draws.
func TestPopulationFlagsCounts(t *testing.T) {
	sc := flagsScenario()
	defended, nDefended, stragglers := populationFlags(sc)
	if nDefended != 20 {
		t.Errorf("defended count %d, want 20 (0.5 of 40)", nDefended)
	}
	if got := defended.Count(); got != nDefended {
		t.Errorf("defended membership count %d, want %d", got, nDefended)
	}
	if got := stragglers.Count(); got != 12 {
		t.Errorf("straggler membership count %d, want 12 (0.3 of 40)", got)
	}
}

// TestMembershipMatchesLegacyFlags is the regression test for the O(cohort)
// membership bugfix: the sorted-index sets must mark exactly the clients the
// historical []bool slices did. The legacy draw is reimplemented inline
// (Perm prefix over the same keyed streams) and compared client by client.
func TestMembershipMatchesLegacyFlags(t *testing.T) {
	sc := flagsScenario()
	legacy := func(salt uint64, count int) []bool {
		flags := make([]bool, sc.Clients)
		rng := nn.RandSource(sc.Seed, salt)
		for _, idx := range rng.Perm(sc.Clients)[:count] {
			flags[idx] = true
		}
		return flags
	}
	defended, nDefended, stragglers := populationFlags(sc)
	wantDefended := legacy(saltDefense, nDefended)
	wantStragglers := legacy(saltStraggler, 12)
	for i := 0; i < sc.Clients; i++ {
		if got := defended.Contains(i); got != wantDefended[i] {
			t.Errorf("defended.Contains(%d) = %v, legacy flag %v", i, got, wantDefended[i])
		}
		if got := stragglers.Contains(i); got != wantStragglers[i] {
			t.Errorf("stragglers.Contains(%d) = %v, legacy flag %v", i, got, wantStragglers[i])
		}
	}
	if defended.Contains(-1) || defended.Contains(sc.Clients) {
		t.Error("membership claims out-of-range clients")
	}
}

// TestReliabilityDrawsPrefixStable pins the keyed-stream property behind
// growing populations: a client's per-round reliability stream depends only
// on (seed, index, round), so adding clients to a scenario never changes the
// fate of the clients that were already there.
func TestReliabilityDrawsPrefixStable(t *testing.T) {
	outcome := func(clients, index, round int) (bool, bool, float64) {
		sc := flagsScenario()
		sc.Clients = clients
		sc.Dropout = 0.2
		sc.DeadlineMS = 60
		sc.Dataset.Samples = clients * 4
		d := sc.Dataset
		ds := data.NewSynthCustom("prefix", d.Classes, d.Channels, d.Height, d.Width, d.Samples, sc.Seed)
		parts, err := data.PartitionLazy(data.IID{}, ds, clients, nn.RandSource(sc.Seed, saltPartition))
		if err != nil {
			t.Fatal(err)
		}
		vp := newVirtualPopulation(sc, ds, parts)
		c, err := vp.instantiate(virtualClient{index: index, straggler: true})
		if err != nil {
			t.Fatal(err)
		}
		o := c.draw(round)
		return o.dropped, o.late, o.delayMS
	}
	for _, index := range []int{0, 7, 39} {
		for round := 0; round < 3; round++ {
			d1, l1, ms1 := outcome(40, index, round)
			d2, l2, ms2 := outcome(4000, index, round)
			if d1 != d2 || l1 != l2 || ms1 != ms2 {
				t.Errorf("client %d round %d fate changed when the population grew 40→4000: (%v,%v,%g) vs (%v,%v,%g)",
					index, round, d1, l1, ms1, d2, l2, ms2)
			}
		}
	}
}

// TestScenarioCloneIsolation: Clone must deep-copy the one sliced field so a
// per-cell copy mutated by one sweep worker can never alias another's.
func TestScenarioCloneIsolation(t *testing.T) {
	sc, _ := Preset("smoke")
	sc.Attack.Rounds = []int{1, 3}
	clone := sc.Clone()
	if !reflect.DeepEqual(clone, sc) {
		t.Fatalf("clone differs from the original:\n orig: %+v\nclone: %+v", sc, clone)
	}
	clone.Attack.Rounds[0] = 99
	if sc.Attack.Rounds[0] != 1 {
		t.Error("mutating the clone's attack rounds wrote through to the original")
	}
}

// TestScenarioWithSeed: the replicate helper must change only the seed, on a
// fully isolated copy.
func TestScenarioWithSeed(t *testing.T) {
	sc, _ := Preset("smoke")
	sc.Attack.Rounds = []int{1}
	rep := sc.WithSeed(1234)
	if rep.Seed != 1234 {
		t.Fatalf("WithSeed seed = %d, want 1234", rep.Seed)
	}
	rep.Seed = sc.Seed
	if !reflect.DeepEqual(rep, sc) {
		t.Errorf("WithSeed changed more than the seed:\n orig: %+v\n rep: %+v", sc, rep)
	}
	rep.Attack.Rounds[0] = 42
	if sc.Attack.Rounds[0] != 1 {
		t.Error("WithSeed copy aliases the original's attack rounds")
	}
}
