package sim

import (
	"reflect"
	"testing"
)

// flagsScenario is a population with both a defended fraction and a straggler
// tail, the two scenario-level membership draws.
func flagsScenario() Scenario {
	return Scenario{
		Name: "flags", Seed: 7, Clients: 40, Rounds: 2,
		Dataset:   DatasetSpec{Classes: 4, Channels: 1, Height: 8, Width: 8, Samples: 160},
		Defense:   DefenseSpec{Kind: "oasis:MR", Fraction: 0.5},
		Straggler: StragglerSpec{Fraction: 0.3, MeanDelayMS: 50, BaseDelayMS: 5},
	}
}

// TestStragglerSetIndependentOfDefense is the regression test for the stream
// isolation bugfix: straggler membership used to be drawn from the same
// scenario-level stream as the defense assignment, so toggling Defense.Kind
// on an otherwise identical scenario silently reshuffled which clients
// straggle — exactly the cross-cell confound the sweep isolates. Each draw
// now has its own keyed stream.
func TestStragglerSetIndependentOfDefense(t *testing.T) {
	defendedOn := flagsScenario()
	defendedOff := flagsScenario()
	defendedOff.Defense = DefenseSpec{}

	_, _, stragglersOn := populationFlags(defendedOn)
	_, _, stragglersOff := populationFlags(defendedOff)
	if !reflect.DeepEqual(stragglersOn, stragglersOff) {
		t.Errorf("toggling the defense reshuffled the straggler set:\n  on: %v\n off: %v",
			stragglersOn, stragglersOff)
	}

	// And the converse: the defended set must not depend on the straggler
	// spec either.
	noTail := flagsScenario()
	noTail.Straggler = StragglerSpec{}
	defendedA, nA, _ := populationFlags(flagsScenario())
	defendedB, nB, _ := populationFlags(noTail)
	if nA != nB || !reflect.DeepEqual(defendedA, defendedB) {
		t.Errorf("dropping the straggler tail reshuffled the defended set:\n with: %v\n  w/o: %v",
			defendedA, defendedB)
	}
}

// TestPopulationFlagsCounts pins the membership sizes to the rounded spec
// fractions for both draws.
func TestPopulationFlagsCounts(t *testing.T) {
	sc := flagsScenario()
	defended, nDefended, stragglers := populationFlags(sc)
	if nDefended != 20 {
		t.Errorf("defended count %d, want 20 (0.5 of 40)", nDefended)
	}
	count := func(bs []bool) int {
		n := 0
		for _, b := range bs {
			if b {
				n++
			}
		}
		return n
	}
	if got := count(defended); got != nDefended {
		t.Errorf("defended flags count %d, want %d", got, nDefended)
	}
	if got := count(stragglers); got != 12 {
		t.Errorf("straggler flags count %d, want 12 (0.3 of 40)", got)
	}
}

// TestScenarioCloneIsolation: Clone must deep-copy the one sliced field so a
// per-cell copy mutated by one sweep worker can never alias another's.
func TestScenarioCloneIsolation(t *testing.T) {
	sc, _ := Preset("smoke")
	sc.Attack.Rounds = []int{1, 3}
	clone := sc.Clone()
	if !reflect.DeepEqual(clone, sc) {
		t.Fatalf("clone differs from the original:\n orig: %+v\nclone: %+v", sc, clone)
	}
	clone.Attack.Rounds[0] = 99
	if sc.Attack.Rounds[0] != 1 {
		t.Error("mutating the clone's attack rounds wrote through to the original")
	}
}

// TestScenarioWithSeed: the replicate helper must change only the seed, on a
// fully isolated copy.
func TestScenarioWithSeed(t *testing.T) {
	sc, _ := Preset("smoke")
	sc.Attack.Rounds = []int{1}
	rep := sc.WithSeed(1234)
	if rep.Seed != 1234 {
		t.Fatalf("WithSeed seed = %d, want 1234", rep.Seed)
	}
	rep.Seed = sc.Seed
	if !reflect.DeepEqual(rep, sc) {
		t.Errorf("WithSeed changed more than the seed:\n orig: %+v\n rep: %+v", sc, rep)
	}
	rep.Attack.Rounds[0] = 42
	if sc.Attack.Rounds[0] != 1 {
		t.Error("WithSeed copy aliases the original's attack rounds")
	}
}
