package sim

import (
	"bytes"
	rand "math/rand/v2"
	"strings"
	"testing"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/tensor"
)

// validBase is a minimal scenario every corpus entry mutates from.
func validBase() Scenario {
	return Scenario{
		Name: "corpus", Seed: 7,
		Clients: 8, Rounds: 4, BatchSize: 4,
		Dataset: DatasetSpec{Classes: 4, Channels: 1, Height: 8, Width: 8, Samples: 64},
		Attack:  AttackSpec{Kind: "qbi", Neurons: 16, Rounds: []int{1}},
	}
}

// TestScenarioValidationCorpus is the table-driven validation corpus for the
// registry-era spec: every registered attack kind must pass, and the classic
// spec mistakes (unknown kinds, bad rounds windows, negative neurons, bad
// defenses) must fail with a message naming the problem.
func TestScenarioValidationCorpus(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string // "" = must validate
	}{
		{"base", func(*Scenario) {}, ""},
		{"attack-rtf", func(s *Scenario) { s.Attack.Kind = "rtf" }, ""},
		{"attack-cah", func(s *Scenario) { s.Attack.Kind = "cah" }, ""},
		{"attack-loki", func(s *Scenario) { s.Attack.Kind = "loki" }, ""},
		{"honest", func(s *Scenario) { s.Attack = AttackSpec{} }, ""},
		{"unknown-attack", func(s *Scenario) { s.Attack.Kind = "gradient-wizard" }, "unknown attack kind"},
		{"negative-neurons", func(s *Scenario) { s.Attack.Neurons = -3 }, "neurons must be > 0"},
		{"zero-neurons", func(s *Scenario) { s.Attack.Neurons = 0 }, "neurons must be > 0"},
		{"window-after-run", func(s *Scenario) {
			s.Attack.Rounds = nil
			s.Attack.FirstRound, s.Attack.LastRound = 10, 12
		}, "never strikes"},
		{"inverted-window", func(s *Scenario) {
			s.Attack.Rounds = nil
			s.Attack.FirstRound, s.Attack.LastRound = 3, 1
		}, "never strikes"},
		{"explicit-round-outside", func(s *Scenario) { s.Attack.Rounds = []int{9} }, "never strikes"},
		{"defense-prune", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "prune:0.3"} }, ""},
		{"defense-ats", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "ats:MR"} }, ""},
		{"defense-prune-bad-keep", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "prune:1.5"} }, "pruning"},
		{"defense-ats-bad-policy", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "ats:bogus"} }, "ats:bogus"},
		{"defense-unknown", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "tinfoil"} }, "unknown kind"},
		{"defense-pipeline", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "oasis:MR|dpsgd:1,0.1"} }, ""},
		{"defense-pipeline-triple", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "ats:SH|prune:0.5|dpsgd:2,0.3"} }, ""},
		{"defense-pipeline-duplicate-stage", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "prune:0.3|prune:0.3"} }, ""},
		{"defense-pipeline-empty-segment", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "oasis:MR||prune:0.5"} }, "segment 2 is empty"},
		{"defense-pipeline-trailing-bar", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "oasis:MR|"} }, "segment 2 is empty"},
		{"defense-pipeline-only-bar", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "|"} }, "segment 1 is empty"},
		{"defense-pipeline-bad-tail", func(s *Scenario) { s.Defense = DefenseSpec{Kind: "oasis:MR|dpsgd:1"} }, "segment 2"},
		{"no-clients", func(s *Scenario) { s.Clients = 0 }, "clients must be > 0"},
		{"negative-rounds", func(s *Scenario) { s.Rounds = -1 }, "rounds must be > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validBase()
			tc.mutate(&sc)
			_, err := sc.Normalize()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("want valid, got %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("want error containing %q, got none", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestUnknownAttackErrorListsRegistry pins the stale-message fix: the
// validation error must name every registered family, not a hard-coded pair.
func TestUnknownAttackErrorListsRegistry(t *testing.T) {
	sc := validBase()
	sc.Attack.Kind = "nope"
	_, err := sc.Normalize()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, kind := range attack.Names() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("validation error %q does not list registered kind %q", err, kind)
		}
	}
	if strings.Contains(err.Error(), "want rtf or cah") {
		t.Error("validation error still hard-codes the pre-registry kinds")
	}
}

// TestUnknownDefenseErrorListsRegistry pins the defense counterpart of the
// stale-message fix: the validation error must name every registered defense
// family dynamically, not a hard-coded list.
func TestUnknownDefenseErrorListsRegistry(t *testing.T) {
	sc := validBase()
	sc.Defense = DefenseSpec{Kind: "tinfoil"}
	_, err := sc.Normalize()
	if err == nil {
		t.Fatal("unknown defense kind accepted")
	}
	for _, kind := range defense.Names() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("validation error %q does not list registered kind %q", err, kind)
		}
	}
	if strings.Contains(err.Error(), "want oasis:<policy>, dpsgd:<clip>,<sigma>") {
		t.Error("validation error still hard-codes the pre-registry kinds")
	}
}

// TestCustomDefenseAcceptedInScenario is the open-extension acceptance bar:
// a defense registered by a library user must immediately be a valid
// scenario kind — standalone and as a pipeline segment — with no sim-side
// switch to update, and must run end to end.
func TestCustomDefenseAcceptedInScenario(t *testing.T) {
	err := defense.Register("halve", func(arg string, cfg defense.Config) (defense.Defense, error) {
		return halveDefense{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := validBase()
	sc.Defense = DefenseSpec{Kind: "halve"}
	if _, err := sc.Normalize(); err != nil {
		t.Fatalf("custom defense kind rejected: %v", err)
	}
	sc.Defense = DefenseSpec{Kind: "oasis:MR|halve", Fraction: 1}
	norm, err := sc.Normalize()
	if err != nil {
		t.Fatalf("custom defense rejected as pipeline segment: %v", err)
	}
	rep, err := Run(norm, Options{Quick: true, Workers: 2})
	if err != nil {
		t.Fatalf("scenario with custom defense failed to run: %v", err)
	}
	if rep.Defense != "oasis(MR)|halve" {
		t.Errorf("report label %q, want resolved pipeline name oasis(MR)|halve", rep.Defense)
	}
}

// halveDefense is the custom test defense: a gradient-stage scaler.
type halveDefense struct{}

func (halveDefense) Name() string                         { return "halve" }
func (halveDefense) ApplyBatch(b *data.Batch) *data.Batch { return b }
func (halveDefense) ApplyGrads(grads []*tensor.Tensor) {
	for _, g := range grads {
		g.ScaleInPlace(0.5)
	}
}

// TestScenarioRandomSpecCorpus drives Normalize over seeded-random attack
// and schedule mutations: validation must accept exactly the specs whose
// kind is registered, neurons positive, and window live — and must never
// panic regardless of the draw.
func TestScenarioRandomSpecCorpus(t *testing.T) {
	kinds := append([]string{"", "bogus", "RTF", "qbi ", "loki"}, attack.Names()...)
	rng := rand.New(rand.NewPCG(0xc0ffee, 1))
	for i := 0; i < 500; i++ {
		sc := validBase()
		sc.Rounds = 1 + rng.IntN(8)
		sc.Attack.Kind = kinds[rng.IntN(len(kinds))]
		sc.Attack.Neurons = rng.IntN(40) - 8
		sc.Attack.Rounds = nil
		sc.Attack.FirstRound = rng.IntN(10) - 2
		sc.Attack.LastRound = rng.IntN(10) - 2
		if rng.IntN(3) == 0 {
			sc.Attack.Rounds = []int{rng.IntN(12) - 2}
		}

		wantOK := true
		if sc.Attack.Kind != "" {
			if !attack.Known(sc.Attack.Kind) || sc.Attack.Neurons <= 0 {
				wantOK = false
			} else {
				live := false
				for r := 0; r < sc.Rounds; r++ {
					if sc.Attack.Active(r) {
						live = true
						break
					}
				}
				wantOK = live
			}
		}
		_, err := sc.Normalize()
		if wantOK && err != nil {
			t.Fatalf("draw %d (%+v): want valid, got %v", i, sc.Attack, err)
		}
		if !wantOK && err == nil {
			t.Fatalf("draw %d (%+v, rounds %d): invalid spec accepted", i, sc.Attack, sc.Rounds)
		}
	}
}

// FuzzScenarioDecode hardens the JSON front door: whatever bytes arrive,
// Decode and Normalize must fail cleanly instead of panicking, and a spec
// that normalizes must survive a JSON round trip to the same resolved form.
func FuzzScenarioDecode(f *testing.F) {
	seed := func(sc Scenario) {
		raw, err := sc.JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	base := validBase()
	seed(base)
	loki := validBase()
	loki.Attack = AttackSpec{Kind: "loki", Neurons: 32, FirstRound: 1, LastRound: 2}
	seed(loki)
	bad := validBase()
	bad.Attack.Neurons = -5
	seed(bad)
	window := validBase()
	window.Attack.Rounds = []int{99}
	seed(window)
	composed := validBase()
	composed.Defense = DefenseSpec{Kind: "oasis:MR|dpsgd:1,0.1", Fraction: 0.5}
	seed(composed)
	duplicate := validBase()
	duplicate.Defense = DefenseSpec{Kind: "prune:0.3|prune:0.3"}
	seed(duplicate)
	f.Add([]byte(`{"name":"x","attack":{"kind":"qbi","neurons":1e9}}`))
	f.Add([]byte(`{"clients":1,"rounds":1,"dataset":{"classes":2,"channels":1,"height":1,"width":1,"samples":1}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{"name":"p","clients":2,"rounds":1,"dataset":{"classes":2,"channels":1,"height":4,"width":4,"samples":8},"defense":{"kind":"|"}}`))
	f.Add([]byte(`{"name":"p","clients":2,"rounds":1,"dataset":{"classes":2,"channels":1,"height":4,"width":4,"samples":8},"defense":{"kind":"oasis:MR||ats:SH"}}`))
	f.Add([]byte(`{"name":"p","clients":2,"rounds":1,"dataset":{"classes":2,"channels":1,"height":4,"width":4,"samples":8},"defense":{"kind":"dpsgd:1,0.1|dpsgd:1,0.1|dpsgd:1,0.1"}}`))
	f.Add([]byte(`{"name":"p","clients":2,"rounds":1,"dataset":{"classes":2,"channels":1,"height":4,"width":4,"samples":8},"defense":{"kind":"oasis:MR|"}}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		sc, err := Decode(bytes.NewReader(raw))
		if err != nil {
			return // malformed JSON must simply error
		}
		norm, err := sc.Normalize()
		if err != nil {
			return // invalid specs must simply error
		}
		round, err := norm.JSON()
		if err != nil {
			t.Fatalf("normalized scenario does not marshal: %v", err)
		}
		again, err := Decode(bytes.NewReader(round))
		if err != nil {
			t.Fatalf("normalized scenario does not re-decode: %v", err)
		}
		norm2, err := again.Normalize()
		if err != nil {
			t.Fatalf("normalized scenario does not re-validate: %v", err)
		}
		a, _ := norm.JSON()
		b, _ := norm2.JSON()
		if !bytes.Equal(a, b) {
			t.Fatalf("normalization is not a fixed point:\n%s\nvs\n%s", a, b)
		}
	})
}
