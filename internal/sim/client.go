package sim

import (
	"context"
	"errors"
	"fmt"
	rand "math/rand/v2"
	"time"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/fl"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/obs"
)

// Failure classes a simulated client reports to the server. The engine also
// keeps its own per-round records, so reports never need to parse errors.
var (
	// ErrDropout marks a client that vanished for the round.
	ErrDropout = errors.New("sim: client dropped out of round")
	// ErrDeadline marks a straggler whose simulated delay exceeded the
	// round deadline.
	ErrDeadline = errors.New("sim: client missed the round deadline")
)

// roundOutcome is what happened to one client in one round, written by the
// client's own HandleRound and read by the engine after the run completes
// (Server.Run's worker barrier orders the accesses).
type roundOutcome struct {
	dropped   bool
	late      bool
	delayMS   float64
	completed bool
	originals []*imaging.Image // pre-defense batch, recorded on attack rounds
}

// simClient wraps a LocalClient with the scenario's reliability model:
// per-round dropout, straggler delays against a virtual deadline, and
// original-batch recording on attack rounds (for post-hoc PSNR scoring).
//
// Reliability draws come from a PCG stream keyed by (seed, client index,
// round) — not from the shared training RNG and not from wall clock — so a
// population's fate is identical for every worker count and every execution
// order.
type simClient struct {
	inner  *fl.LocalClient
	index  int
	seed   uint64
	record *batchRecorder

	dropout      float64
	straggler    bool
	baseMS       float64
	meanMS       float64
	deadlineMS   float64
	realTime     bool
	attackActive func(round int) bool

	outcomes map[int]*roundOutcome
}

var (
	_ fl.Client      = (*simClient)(nil)
	_ fl.SizedClient = (*simClient)(nil)
)

// ID returns the wrapped client's identifier.
func (c *simClient) ID() string { return c.inner.ID() }

// NumSamples reports the shard size for size-weighted sampling.
func (c *simClient) NumSamples() int { return c.inner.NumSamples() }

// HandleRound applies the reliability model, then delegates to the wrapped
// client. Dropped and late rounds return typed errors without training.
func (c *simClient) HandleRound(ctx context.Context, req fl.RoundRequest) (fl.Update, error) {
	out := c.draw(req.Round)
	c.outcomes[req.Round] = out
	if out.dropped {
		obsDropouts.Inc()
		return fl.Update{}, fmt.Errorf("%w (client %s, round %d)", ErrDropout, c.ID(), req.Round)
	}
	if out.delayMS > 0 {
		// Virtual-clock value: deterministic by construction, so recording it
		// cannot perturb the run it describes.
		obsStragglerWait.Observe(out.delayMS)
	}
	if c.deadlineMS > 0 && out.delayMS > c.deadlineMS {
		out.late = true
		obsLate.Inc()
		return fl.Update{}, fmt.Errorf("%w (client %s, round %d: %.0f ms > %.0f ms)",
			ErrDeadline, c.ID(), req.Round, out.delayMS, c.deadlineMS)
	}
	if c.realTime && out.delayMS > 0 {
		select {
		case <-ctx.Done():
			return fl.Update{}, ctx.Err()
		case <-time.After(time.Duration(out.delayMS * float64(time.Millisecond))):
		}
	}
	c.record.arm(c.attackActive != nil && c.attackActive(req.Round))
	u, err := c.inner.HandleRound(ctx, req)
	if err == nil {
		out.completed = true
		out.originals = c.record.take()
	}
	return u, err
}

// draw derives this round's reliability state deterministically.
func (c *simClient) draw(round int) *roundOutcome {
	rng := rand.New(rand.NewPCG(
		c.seed^0x51D0_C1EA_7E55_0000+uint64(c.index)*0x9e3779b97f4a7c15,
		uint64(round)*0xbf58476d1ce4e5b9+1,
	))
	out := &roundOutcome{delayMS: c.baseMS}
	if c.dropout > 0 && rng.Float64() < c.dropout {
		out.dropped = true
		out.delayMS = 0
		return out
	}
	if c.straggler && c.meanMS > 0 {
		out.delayMS += rng.ExpFloat64() * c.meanMS
	}
	return out
}

// waitedMS is what the server's virtual clock charges for this client: a
// dropout is known immediately, a straggler past the deadline costs the full
// deadline, everyone else costs their delay.
func (o *roundOutcome) waitedMS(deadlineMS float64) float64 {
	switch {
	case o.dropped:
		return 0
	case o.late:
		return deadlineMS
	default:
		return o.delayMS
	}
}

// batchRecorder sits in the LocalClient's preprocessor slot: when armed it
// clones the raw (pre-defense) batch for later PSNR ground truth, then hands
// the batch to the real defense (if any). Unarmed it adds one branch per
// batch — cheap enough to leave in place on every client.
type batchRecorder struct {
	inner fl.BatchPreprocessor
	armed bool
	batch *data.Batch
}

var _ fl.BatchPreprocessor = (*batchRecorder)(nil)

// Name labels the wrapped defense (or "none").
func (r *batchRecorder) Name() string {
	if r.inner != nil {
		return r.inner.Name()
	}
	return "none"
}

// Apply records the first raw batch of an armed round, then delegates.
//
//oasis:allow-walltime measures real defense latency for the obs histogram; never feeds results
func (r *batchRecorder) Apply(b *data.Batch) (*data.Batch, error) {
	if r.armed && r.batch == nil {
		r.batch = b.Clone()
	}
	if r.inner == nil {
		return b, nil
	}
	if !obs.Enabled() {
		return r.inner.Apply(b)
	}
	obsDefenseApply.Inc()
	start := time.Now()
	out, err := r.inner.Apply(b)
	obsDefenseApplyMS.Observe(float64(time.Since(start).Microseconds()) / 1000)
	return out, err
}

// arm resets the recorder for a new round.
func (r *batchRecorder) arm(on bool) {
	r.armed, r.batch = on, nil
}

// take returns the recorded originals (nil when unarmed) and clears them.
func (r *batchRecorder) take() []*imaging.Image {
	if r.batch == nil {
		return nil
	}
	ims := r.batch.Images
	r.batch = nil
	return ims
}
