package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/oasisfl/oasis/internal/obs"
)

// TestReportGoldenBytes pins the observability determinism contract at its
// sharpest edge: with no obs session enabled, the smoke preset's report JSON
// must be byte-identical to the golden file generated before the
// instrumentation existed. Any RNG contact, field reordering, or accidental
// summary embedding breaks this test.
func TestReportGoldenBytes(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden-smoke-report.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := Preset("smoke")
	if !ok {
		t.Fatal("smoke preset not registered")
	}
	report, err := Run(sc, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, golden) {
		t.Errorf("smoke report JSON diverged from the pre-instrumentation golden (%d vs %d bytes):\n%s",
			len(raw), len(golden), diffHint(raw, golden))
	}
}

// TestReportBytesTraceOnVsOff is the differential leg of the same contract:
// running the identical scenario with a live obs session (spans, counters,
// histograms all firing) must leave the engine-produced report bytes
// untouched — only CLIs may embed a summary, and only into their own copy.
func TestReportBytesTraceOnVsOff(t *testing.T) {
	sc, ok := Preset("smoke")
	if !ok {
		t.Fatal("smoke preset not registered")
	}
	runJSON := func() []byte {
		report, err := Run(sc, Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	off := runJSON()
	var trace bytes.Buffer
	if _, err := obs.Enable(obs.Config{Program: "sim-test", Trace: &trace}); err != nil {
		t.Fatal(err)
	}
	on := runJSON()
	if _, err := obs.Disable(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off, on) {
		t.Errorf("report JSON differs with tracing enabled:\n%s", diffHint(on, off))
	}
	if trace.Len() == 0 {
		t.Error("traced run emitted no events — instrumentation is dead")
	}
	events, err := obs.ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.SpanTreeValid(events); err != nil {
		t.Error(err)
	}
}

// diffHint locates the first differing byte for a readable failure message.
func diffHint(got, want []byte) string {
	n := min(len(got), len(want))
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := max(0, i-80)
			return "first divergence at byte " + itoa(i) +
				"\n got: …" + string(got[lo:min(len(got), i+80)]) +
				"\nwant: …" + string(want[lo:min(len(want), i+80)])
		}
	}
	return "one report is a prefix of the other"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
