package sim

import "github.com/oasisfl/oasis/internal/obs"

// Scenario-engine instruments. Values are virtual-clock or count based where
// the quantity itself is deterministic (dropouts, waits), wall-clock where
// it measures real cost (defense/reconstruction timing); all self-gate on
// the obs session and never touch an RNG stream.
var (
	obsDropouts       = obs.NewCounter("sim_dropout_total", "client-rounds lost to dropout")
	obsLate           = obs.NewCounter("sim_late_total", "client-rounds lost to the virtual deadline")
	obsStragglerWait  = obs.NewHistogram("sim_straggler_wait_ms", "virtual per-client round delay (stragglers + base latency)", obs.DefDurationBucketsMS)
	obsDefenseApply   = obs.NewCounter("sim_defense_apply_total", "batches run through a client defense pipeline")
	obsDefenseApplyMS = obs.NewHistogram("sim_defense_apply_ms", "wall-clock per defended batch transformation", obs.DefDurationBucketsMS)
	obsAttackObserve  = obs.NewCounter("sim_attack_observe_total", "updates tapped by the dishonest server on strike rounds")
	obsReconstructMS  = obs.NewHistogram("sim_attack_reconstruct_ms", "wall-clock per dishonest-server update inversion", obs.DefDurationBucketsMS)
)
