package sim

import (
	"runtime"

	"github.com/oasisfl/oasis/internal/obs"
)

// Scenario-engine instruments. Values are virtual-clock or count based where
// the quantity itself is deterministic (dropouts, waits), wall-clock where
// it measures real cost (defense/reconstruction timing); all self-gate on
// the obs session and never touch an RNG stream.
var (
	obsDropouts       = obs.NewCounter("sim_dropout_total", "client-rounds lost to dropout")
	obsLate           = obs.NewCounter("sim_late_total", "client-rounds lost to the virtual deadline")
	obsStragglerWait  = obs.NewHistogram("sim_straggler_wait_ms", "virtual per-client round delay (stragglers + base latency)", obs.DefDurationBucketsMS)
	obsDefenseApply   = obs.NewCounter("sim_defense_apply_total", "batches run through a client defense pipeline")
	obsDefenseApplyMS = obs.NewHistogram("sim_defense_apply_ms", "wall-clock per defended batch transformation", obs.DefDurationBucketsMS)
	obsAttackObserve  = obs.NewCounter("sim_attack_observe_total", "updates tapped by the dishonest server on strike rounds")
	obsReconstructMS  = obs.NewHistogram("sim_attack_reconstruct_ms", "wall-clock per dishonest-server update inversion", obs.DefDurationBucketsMS)
	obsHeapPeak       = obs.NewGauge("sim_heap_peak_bytes", "high-water runtime HeapAlloc observed at round boundaries")
)

// recordHeapPeak samples HeapAlloc at a round boundary and keeps the
// high-water mark in the sim_heap_peak_bytes gauge, which obs.Disable folds
// into the trace's final metrics event — the number the CI memory-ceiling
// job inspects. Self-gated: an untraced run never calls ReadMemStats.
func recordHeapPeak() {
	if !obs.Enabled() {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if v := float64(ms.HeapAlloc); v > obsHeapPeak.Value() {
		obsHeapPeak.Set(v)
	}
}
