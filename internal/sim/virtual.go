package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/fl"
	"github.com/oasisfl/oasis/internal/nn"
)

// membership is a population subset stored as the sorted indices of its
// members. It replaces the historical []bool flag slices: a million-client
// population with 1% stragglers retains ~10k int32s instead of a megabyte of
// bools, and lookup stays O(log members).
type membership struct {
	idx []int32
}

// Contains reports whether client i belongs to the set.
func (m membership) Contains(i int) bool {
	p := sort.Search(len(m.idx), func(j int) bool { return m.idx[j] >= int32(i) })
	return p < len(m.idx) && m.idx[p] == int32(i)
}

// Count returns the set's cardinality.
func (m membership) Count() int { return len(m.idx) }

// drawMembership draws a count-member subset of [0, n) from the keyed stream
// (seed, salt), consuming exactly the rng operations the historical []bool
// draw performed — one Perm(n) — so membership is identical bit for bit. The
// permutation is O(n) transient scratch; only the sorted selection is kept.
func drawMembership(seed, salt uint64, n, count int) membership {
	if count <= 0 {
		return membership{}
	}
	rng := nn.RandSource(seed, salt)
	idx := make([]int32, count)
	for i, v := range rng.Perm(n)[:count] {
		idx[i] = int32(v)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return membership{idx: idx}
}

// populationFlags draws the defended and straggler membership sets, each on
// its own keyed stream so the two assignments never perturb one another: the
// straggler set is a function of (seed, straggler spec) alone, and the
// defended set of (seed, defense spec) alone. Any future population-level
// draw must follow the same pattern with a fresh salt.
func populationFlags(sc Scenario) (defended membership, nDefended int, stragglers membership) {
	if sc.Defense.Kind != "" {
		nDefended = int(math.Round(sc.Defense.Fraction * float64(sc.Clients)))
		defended = drawMembership(sc.Seed, saltDefense, sc.Clients, nDefended)
	}
	nStragglers := int(math.Round(sc.Straggler.Fraction * float64(sc.Clients)))
	stragglers = drawMembership(sc.Seed, saltStraggler, sc.Clients, nStragglers)
	return defended, nDefended, stragglers
}

// virtualClient is the lightweight descriptor the engine keeps for a client
// that has never been sampled: everything needed to instantiate it is a pure
// function of the scenario's keyed streams, so the "table" of a million
// virtual clients is this struct computed on demand, not an array.
type virtualClient struct {
	index     int
	defended  bool
	straggler bool
	shardLen  int
}

// virtualPopulation implements fl.VirtualRoster over a scenario: the full
// population exists only as keyed-stream descriptors (lazy partition, sorted
// membership sets), and real simClient state is instantiated per sampled
// cohort. Instantiated clients stay resident for the rest of the run —
// cross-round state (training-rng position, stateful defense pipelines like
// DPSGD) must advance exactly as an eagerly materialized client's would —
// but the heavy per-round buffers (decoded models, upload gradients) are
// leased from the tensor arena and recycled inside the round, so steady-state
// memory is O(instantiated descriptors + workers × model), not O(population).
type virtualPopulation struct {
	sc      Scenario
	trainDS data.Dataset
	parts   *data.LazyPartition

	defended   membership
	stragglers membership
	// attackActive is copied onto clients at instantiation; the engine sets
	// it (before the first round) only when the scenario schedules an attack.
	attackActive func(round int) bool

	// resident holds every client instantiated so far, keyed by index. All
	// access is on the server goroutine (Lease/Release run there).
	resident map[int]*simClient
}

var _ fl.VirtualRoster = (*virtualPopulation)(nil)

// newVirtualPopulation wraps the scenario's lazily partitioned population.
func newVirtualPopulation(sc Scenario, trainDS data.Dataset, parts *data.LazyPartition) *virtualPopulation {
	defended, _, stragglers := populationFlags(sc)
	return &virtualPopulation{
		sc:         sc,
		trainDS:    trainDS,
		parts:      parts,
		defended:   defended,
		stragglers: stragglers,
		resident:   make(map[int]*simClient),
	}
}

// NumClients returns the virtual population size.
func (vp *virtualPopulation) NumClients() int { return vp.sc.Clients }

// NumSamples reports client i's shard size straight from the lazy partition
// — no instantiation, O(1).
func (vp *virtualPopulation) NumSamples(i int) int { return vp.parts.ShardLen(i) }

// describe resolves the virtual-client descriptor for index i from the keyed
// streams.
func (vp *virtualPopulation) describe(i int) virtualClient {
	return virtualClient{
		index:     i,
		defended:  vp.defended.Contains(i),
		straggler: vp.stragglers.Contains(i),
		shardLen:  vp.parts.ShardLen(i),
	}
}

// Lease instantiates the round's cohort in index-argument order, reusing
// residents from earlier rounds so their cross-round state continues.
func (vp *virtualPopulation) Lease(round int, indices []int) ([]fl.Client, error) {
	cohort := make([]fl.Client, len(indices))
	for j, i := range indices {
		c, ok := vp.resident[i]
		if !ok {
			var err error
			c, err = vp.instantiate(vp.describe(i))
			if err != nil {
				return nil, err
			}
			vp.resident[i] = c
		}
		cohort[j] = c
	}
	return cohort, nil
}

// Release ends the cohort's round. Clients stay resident — their training
// rng and defense pipelines must resume where they stopped if resampled —
// so this only returns when the lease bookkeeping is done; the round's heavy
// buffers were already recycled by the client and server release paths.
func (vp *virtualPopulation) Release(int, []fl.Client) {}

// instantiate builds the real simClient for one descriptor, drawing from the
// same keyed streams in the same way the eager population loop did, so a
// client's behavior is independent of when (or whether) it is materialized.
func (vp *virtualPopulation) instantiate(d virtualClient) (*simClient, error) {
	sc := vp.sc
	shard := data.NewSubset(vp.trainDS, vp.parts.Shard(d.index), fmt.Sprintf("%s-shard-%d", sc.Name, d.index))
	lc := fl.NewLocalClient(fmt.Sprintf("client-%04d", d.index), shard, sc.BatchSize, nn.RandSource(sc.Seed+1, uint64(d.index)))
	lc.LocalSteps = sc.LocalSteps
	rec := &batchRecorder{}
	if d.defended {
		// Each defended client gets its own pipeline instance over a
		// per-client seeded stream: stochastic stages (DPSGD, ATS) are
		// stateful and must not be shared across concurrent clients.
		pl, err := defense.NewPipeline(sc.Defense.Kind,
			defense.Config{Rng: nn.RandSource(sc.Seed+2, uint64(d.index))})
		if err != nil {
			return nil, err
		}
		rec.inner = defense.BatchAdapter{D: pl}
		lc.GradDef = defense.GradAdapter{D: pl}
	}
	lc.Pre = rec
	return &simClient{
		inner:        lc,
		index:        d.index,
		seed:         sc.Seed,
		record:       rec,
		dropout:      sc.Dropout,
		straggler:    d.straggler,
		baseMS:       sc.Straggler.BaseDelayMS,
		meanMS:       sc.Straggler.MeanDelayMS,
		deadlineMS:   sc.DeadlineMS,
		realTime:     sc.RealTime,
		attackActive: vp.attackActive,
		outcomes:     make(map[int]*roundOutcome, sc.Rounds),
	}, nil
}

// residents returns every instantiated client in ascending index order — the
// iteration order the eager engine's population slice gave collectRound and
// scoreAttack. Clients never sampled have no outcomes and would contribute
// nothing, so iterating residents only is an exact optimization.
func (vp *virtualPopulation) residents() []*simClient {
	out := make([]*simClient, 0, len(vp.resident))
	for _, c := range vp.resident {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].index < out[b].index })
	return out
}

// roundStateBudgetBytes bounds the per-round transient state the cost-model
// worker cap is willing to keep in flight at once (decoded cohort models,
// upload gradients, parked results).
const roundStateBudgetBytes = 256 << 20

// costModelWorkers picks the round concurrency from a cost model instead of
// blindly using NumCPU: each in-flight client pins roughly four model-sized
// float64 buffer sets (decoded weights + gradients, upload clone, parked
// result), so the cap is the largest worker count whose in-flight state fits
// the budget — still clamped to NumCPU and the cohort. Reports are
// worker-count invariant, so the cap only shapes memory and wall clock,
// never results.
func costModelWorkers(cohort, modelParams int) int {
	perClient := modelParams * 8 * 4
	w := runtime.NumCPU()
	if perClient > 0 {
		if byBudget := roundStateBudgetBytes / perClient; byBudget < w {
			w = byBudget
		}
	}
	if cohort > 0 && w > cohort {
		w = cohort
	}
	return max(w, 1)
}
