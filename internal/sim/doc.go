// Package sim is the declarative scenario engine: it turns a Scenario spec
// (constructed in Go or decoded from JSON) into a federated population —
// thousands to millions of clients over non-IID shards, with dropout,
// stragglers, partial defense coverage and a scheduled dishonest server —
// drives the concurrent fl round engine over it, and emits a structured,
// deterministic Report. Populations are virtual: per-client state is
// materialized only for the clients a round actually touches, so the
// population size bounds addressing, not memory.
//
// # Spec schema
//
// A scenario is one JSON object; omitted fields take the defaults noted:
//
//	{
//	  "name": "my-scenario",
//	  "seed": 42,
//	  "clients": 1000,                 // population size
//	  "rounds": 8,
//	  "clients_per_round": 50,         // 0 = all clients every round
//	  "batch_size": 4,                 // default 8
//	  "local_steps": 1,                // >1 = FedAvg local training
//	  "learning_rate": 0.05,
//	  "dataset": {                     // synthetic dataset geometry
//	    "classes": 10, "channels": 1, "height": 8, "width": 8, "samples": 4000
//	  },
//	  "partition": "dirichlet:0.1",    // iid | dirichlet[:alpha] | quantity[:sigma]
//	  "sampling": "size",              // uniform | size (weighted by shard size)
//	  "aggregator": "mean",            // mean | median | trimmed[:f] | normclip[:m]
//	  "deadline_ms": 120,              // virtual round deadline; 0 = wait forever
//	  "dropout": 0.1,                  // per-client per-round dropout probability
//	  "straggler": {                   // slow-tail model
//	    "fraction": 0.2,               // share of clients that straggle
//	    "mean_delay_ms": 60,           // exponential mean extra delay
//	    "base_delay_ms": 5             // floor everyone pays
//	  },
//	  "defense": {
//	    "kind": "oasis:MR",            // any defense.Names() kind[:arg], or a
//	                                   //   '|'-chained pipeline, e.g.
//	                                   //   "oasis:MR|dpsgd:1,0.1"
//	    "fraction": 0.3
//	  },
//	  "attack": {
//	    "kind": "rtf",                 // any attack.Names() kind (rtf | cah |
//	                                   //   qbi | loki) or "" (honest server)
//	    "neurons": 48,
//	    "first_round": 1, "last_round": 2,   // burst window (inclusive), or
//	    "rounds": [1, 3]                     // explicit strike rounds
//	  },
//	  "model": {"kind": "mlp", "hidden": 32},    // mlp | resnet
//	  "eval_every": 4,                 // accuracy eval cadence; 0 = final only
//	  "test_samples": 128,
//	  "real_time": false               // sleep straggler delays for real
//	}
//
// Unknown fields are rejected, so typos fail instead of silently running a
// different experiment.
//
// # Determinism
//
// Every stochastic choice — partitioning, defense and straggler assignment,
// per-round dropout and delays, attack calibration, client sampling, local
// batches — is drawn from PCG streams keyed by the scenario seed and stable
// identities (client index, round number), never by scheduling order or
// wall clock, and timing in the Report is a virtual clock computed from the
// drawn delays. A scenario therefore produces a bit-identical Report for
// every Options.Workers value; only real elapsed time changes.
//
// Scenario-level population draws are additionally isolated from one
// another on independent keyed sub-streams: the straggler set is a function
// of (seed, straggler spec) alone and the defended set of (seed, defense
// spec) alone, so toggling one knob — say, switching Defense.Kind between
// sweep cells — can never reshuffle an unrelated draw.
//
// # Virtual clients and memory
//
// The engine never allocates O(population) training state. Each client
// exists first as a cheap descriptor — index, defended/straggler membership
// (sorted-index sets drawn once per scenario, O(count) retained), and a
// shard length resolved from a lazy partition (data.PartitionLazy computes
// any Shard(k) on demand from the same keyed stream the eager partitioner
// consumes, so lazy and eager shards are element-identical). A client is
// instantiated only when a round's cohort leases it:
//
//	SampleIndices → Lease(round, indices) → train/observe → aggregate → Release
//
// Lease materializes the cohort in index order; Release runs after the
// server step. Instantiated clients stay resident across rounds — their
// training rng and stateful defense pipelines (e.g. dpsgd) must continue,
// and residency is bounded by rounds × cohort, not population — while the
// heavy per-round buffers recycle through the internal/tensor pool: decoded
// model parameters are released by the client after gradients are cloned
// out, and uploaded gradients are released by the server once aggregated
// (fl.ServerConfig.ReleaseUpdates), holding live tensor memory to
// O(workers × model) instead of O(cohort × model).
//
// When Options.Workers is zero the per-round concurrency cap comes from a
// cost model, min(NumCPU, budget/footprint, cohort) with a fixed round-state
// budget and a per-client footprint proportional to the model size, rather
// than NumCPU alone — reports are worker-invariant, so the cap only shapes
// memory and wall clock. The cross-device-1M preset (one million clients,
// 1024-client cohorts) exercises exactly this regime and backs the CI
// memory-ceiling job.
//
// # Failure semantics
//
// Dropped clients, stragglers past the virtual deadline, and erroring
// clients degrade a round — their updates are skipped, participation is
// recorded, and aggregation proceeds over what arrived — and a round lost
// entirely is recorded with zero participants rather than aborting the run
// (fl.ServerConfig.TolerateFailures + AllowEmptyRounds underneath).
//
// See cmd/oasis-sim for the CLI and Presets for ready-made populations.
package sim
