package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	rand "math/rand/v2"
	"time"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/fl"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/obs"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Options tunes how a scenario executes without changing what it describes.
type Options struct {
	// Quick caps the run for CI: at most quickMaxRounds rounds, small eval
	// sets, and no real-time sleeping. Presets keep their attack bursts
	// inside the first five rounds so Quick still exercises them.
	Quick bool
	// Workers bounds client concurrency per round (fl.ServerConfig.Workers);
	// the Report is bit-identical for every value.
	Workers int
	// Log receives per-round progress lines; nil discards them.
	Log io.Writer
}

// quickMaxRounds is the round cap Options.Quick applies.
const quickMaxRounds = 5

// Scenario-level population draws each get their own keyed sub-stream.
// Sharing one stream would let one knob shift every later draw — toggling
// Defense.Kind on an otherwise identical scenario used to reshuffle which
// clients straggle, exactly the cross-cell confound an attack×defense sweep
// must isolate. With independent salts, each draw depends only on the seed
// and its own spec fields.
const (
	saltPartition = 0x5c3a_12f0 // historical scenario-stream salt, kept for the partition
	saltDefense   = 0xdef3_a551
	saltStraggler = 0x57a6_6139
)

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Run materializes the scenario's population, drives the concurrent round
// engine over it, and returns the structured report. For a fixed scenario
// the report is bit-identical across Options.Workers values: all randomness
// is drawn from seeded streams keyed by stable identities and all timing is
// virtual.
func Run(sc Scenario, opts Options) (*Report, error) {
	return RunContext(context.Background(), sc, opts)
}

// RunContext is Run under a caller context. The context's cancellation
// reaches the round engine, and any obs span it carries (e.g. a sweep cell)
// parents the run's span tree — the report content is identical either way.
func RunContext(ctx context.Context, sc Scenario, opts Options) (*Report, error) {
	sc, err := sc.Normalize()
	if err != nil {
		return nil, err
	}
	if opts.Quick {
		if sc.Rounds > quickMaxRounds {
			sc.Rounds = quickMaxRounds
		}
		if sc.TestSamples > 64 {
			sc.TestSamples = 64
		}
		sc.RealTime = false
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("sim: quick mode (≤%d rounds): %w", quickMaxRounds, err)
		}
	}
	return run(ctx, sc, opts)
}

func run(ctx context.Context, sc Scenario, opts Options) (*Report, error) {
	ctx, runSpan := obs.Start(ctx, "sim.run",
		obs.String("scenario", sc.Name), obs.Uint64("seed", sc.Seed), obs.Int("clients", sc.Clients))
	defer runSpan.End()

	// Materialization covers everything before the first round: datasets,
	// the lazy partition, membership sets, and the global model. No client
	// state exists yet — cohorts are instantiated per round. The span closes
	// early on success and the deferred End is then a no-op (End is nil-safe).
	_, matSpan := obs.Start(ctx, "sim.materialize", obs.Int("clients", sc.Clients))
	defer func() { matSpan.End() }()
	d := sc.Dataset
	trainDS := data.NewSynthCustom(sc.Name+"-train", d.Classes, d.Channels, d.Height, d.Width, d.Samples, sc.Seed)
	testDS := data.NewSynthCustom(sc.Name+"-test", d.Classes, d.Channels, d.Height, d.Width, sc.TestSamples, sc.Seed^0x7e57)

	// Population construction draws from independent keyed streams (see the
	// salt constants above); per-client training streams are keyed by client
	// index at instantiation time.
	partitioner, err := data.NewPartitioner(sc.Partition)
	if err != nil {
		return nil, err
	}
	parts, err := data.PartitionLazy(partitioner, trainDS, sc.Clients, nn.RandSource(sc.Seed, saltPartition))
	if err != nil {
		return nil, err
	}

	defenseLabel := ""
	if sc.Defense.Kind != "" {
		// A parse-only pipeline resolves the report label (its composite
		// Name shows resolved parameters) and rejects malformed specs before
		// any round runs; per-client instances with their own seeded streams
		// are built when a defended client is first instantiated.
		label, err := defense.NewPipeline(sc.Defense.Kind, defense.Config{})
		if err != nil {
			return nil, err
		}
		defenseLabel = label.Name()
	}
	vp := newVirtualPopulation(sc, trainDS, parts)

	model, flatInput, err := buildModel(sc, trainDS)
	if err != nil {
		return nil, err
	}
	matSpan.End()
	matSpan = nil

	cohort := sc.ClientsPerRound
	if cohort <= 0 || cohort > sc.Clients {
		cohort = sc.Clients
	}
	workers := opts.Workers
	if workers == 0 {
		// Unspecified concurrency resolves through the cost model rather
		// than raw NumCPU, so huge-cohort × huge-model rounds do not pin
		// O(NumCPU × model) buffers on a small box.
		workers = costModelWorkers(cohort, model.NumParams())
	}
	cfg := fl.ServerConfig{
		Rounds:           sc.Rounds,
		ClientsPerRound:  sc.ClientsPerRound,
		LearningRate:     sc.LearningRate,
		Seed:             sc.Seed,
		Workers:          workers,
		TolerateFailures: true,
		AllowEmptyRounds: true,
		// Upload gradients are folded and released inside the round; combined
		// with cohort leasing this keeps live tensors at O(workers × model).
		ReleaseUpdates: true,
	}
	if sc.RealTime && sc.DeadlineMS > 0 {
		// Wall-clock safety net, well above the virtual deadline so it only
		// fires for genuinely wedged clients, never for simulated delays.
		cfg.RoundDeadline = time.Duration(4*sc.DeadlineMS) * time.Millisecond
	}
	server := fl.NewServer(cfg, model, nil)
	server.Virtual = vp
	server.Sampler, err = fl.NewSamplerByName(sc.Sampling)
	if err != nil {
		return nil, err
	}
	server.Aggregator, err = fl.NewAggregatorByName(sc.Aggregator)
	if err != nil {
		return nil, err
	}

	var sched *scheduledAttack
	if sc.Attack.Kind != "" {
		_, calSpan := obs.Start(ctx, "sim.calibrate_attack", obs.String("attack", sc.Attack.Kind))
		sched, err = buildAttack(sc, trainDS, nn.RandSource(sc.Seed+3, 0xa77ac))
		calSpan.End()
		if err != nil {
			return nil, err
		}
		// Copied onto every client at instantiation; no cohort exists yet.
		vp.attackActive = sc.Attack.Active
		server.Modifier = sched
		server.Observer = sched
	}

	report := &Report{
		Scenario:   sc.Name,
		Seed:       sc.Seed,
		Clients:    sc.Clients,
		Partition:  partitioner.Name(),
		Sampler:    server.Sampler.Name(),
		Aggregator: server.Aggregator.Name(),
		Defense:    defenseLabel,
		Defended:   vp.defended.Count(),
		Attack:     sc.Attack.Kind,
		ShardSizes: shardStats(parts),
	}
	server.AfterRound = func(round int, stats fl.RoundStats) {
		recordHeapPeak()
		rr := collectRound(round, stats, vp.residents(), sc.DeadlineMS)
		rr.AttackActive = sc.Attack.Active(round)
		if round == sc.Rounds-1 || (sc.EvalEvery > 0 && (round+1)%sc.EvalEvery == 0) {
			rr.Evaluated = true
			_, evSpan := obs.Start(ctx, "sim.eval", obs.Int("round", round))
			rr.Accuracy = evalAccuracy(model, testDS, flatInput, 32)
			evSpan.End()
		}
		report.Rounds = append(report.Rounds, rr)
		opts.logf("sim %s round %d/%d: %d/%d ok (%d drop, %d late), loss %.4f%s",
			sc.Name, round+1, sc.Rounds, rr.Completed, rr.Selected, rr.Dropped, rr.Late,
			rr.MeanLoss, attackMark(rr.AttackActive))
	}

	if _, err := server.Run(ctx); err != nil {
		return nil, err
	}
	_, scSpan := obs.Start(ctx, "sim.score")
	scoreAttack(report, sched, vp.residents())
	summarize(report)
	scSpan.End()
	return report, nil
}

func attackMark(active bool) string {
	if active {
		return "  [ATTACK]"
	}
	return ""
}

// buildModel constructs the scenario's global model and reports whether it
// consumes flattened input.
func buildModel(sc Scenario, ds data.Dataset) (*nn.Sequential, bool, error) {
	rng := nn.RandSource(sc.Seed+4, 0x30de1)
	c, h, w := ds.Shape()
	switch sc.Model.Kind {
	case "mlp":
		return nn.NewSequential(
			nn.NewLinear("fc1", c*h*w, sc.Model.Hidden, rng),
			nn.NewReLU("relu1"),
			nn.NewLinear("fc2", sc.Model.Hidden, ds.NumClasses(), rng),
		), true, nil
	case "resnet":
		return nn.NewResNetLite(nn.ResNetLiteConfig{
			InChannels: c, NumClasses: ds.NumClasses(), Width: sc.Model.Hidden,
		}, rng), false, nil
	default:
		return nil, false, fmt.Errorf("sim: unknown model kind %q", sc.Model.Kind)
	}
}

// buildAttack calibrates the scheduled dishonest server through the attack
// registry, so every registered family is a valid scenario kind.
func buildAttack(sc Scenario, ds data.Dataset, rng *rand.Rand) (*scheduledAttack, error) {
	c, h, w := ds.Shape()
	atk, err := attack.New(sc.Attack.Kind, attack.Config{
		Dims:    attack.ImageDims{C: c, H: h, W: w},
		Classes: ds.NumClasses(),
		Neurons: sc.Attack.Neurons,
		Probe:   ds,
		Batch:   sc.Attack.AnticipatedBatch,
		Rng:     rng,
	})
	var srv *attack.DishonestServer
	if err == nil {
		srv, err = attack.NewAttackServer(atk, rng)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: calibrate %s attack: %w", sc.Attack.Kind, err)
	}
	return &scheduledAttack{inner: srv, active: sc.Attack.Active}, nil
}

// scheduledAttack gates a DishonestServer behind the scenario's attack
// schedule: outside active rounds the server is perfectly honest.
type scheduledAttack struct {
	inner  *attack.DishonestServer
	active func(round int) bool
}

var (
	_ fl.ModelModifier  = (*scheduledAttack)(nil)
	_ fl.UpdateObserver = (*scheduledAttack)(nil)
)

// Modify swaps in the malicious model only on scheduled rounds.
func (s *scheduledAttack) Modify(round int, spec fl.ModelSpec) (fl.ModelSpec, error) {
	if !s.active(round) {
		return spec, nil
	}
	return s.inner.Modify(round, spec)
}

// Name labels the scheduled attack.
func (s *scheduledAttack) Name() string { return s.inner.Name() + "-scheduled" }

// Observe inverts updates only on scheduled rounds.
//
//oasis:allow-walltime measures real reconstruction latency for the obs histogram; never feeds results
func (s *scheduledAttack) Observe(round int, u fl.Update) {
	if !s.active(round) {
		return
	}
	if !obs.Enabled() {
		s.inner.Observe(round, u)
		return
	}
	obsAttackObserve.Inc()
	start := time.Now()
	s.inner.Observe(round, u)
	obsReconstructMS.Observe(float64(time.Since(start).Microseconds()) / 1000)
}

// collectRound assembles one RoundReport from the server stats and the
// population's per-round outcome records (iterated in client-index order,
// so the result is scheduling-independent).
func collectRound(round int, stats fl.RoundStats, population []*simClient, deadlineMS float64) RoundReport {
	rr := RoundReport{
		Round:    round,
		MeanLoss: stats.MeanLoss,
		GradNorm: stats.GradNorm,
	}
	for _, c := range population {
		o, ok := c.outcomes[round]
		if !ok {
			continue // not selected this round
		}
		rr.Selected++
		switch {
		case o.dropped:
			rr.Dropped++
		case o.late:
			rr.Late++
		case o.completed:
			rr.Completed++
		default:
			rr.Failed++
		}
		rr.VirtualMS = math.Max(rr.VirtualMS, o.waitedMS(deadlineMS))
	}
	// In RealTime mode the wall-clock safety net can cancel selected clients
	// before their HandleRound ever runs, leaving no outcome record; the
	// server still counted them in RoundStats.Failed. Reconcile so they stay
	// visible instead of silently inflating participation. (Virtual-clock
	// runs never hit this: every selected client records an outcome.)
	if serverSelected := len(stats.Clients) + len(stats.Failed); serverSelected > rr.Selected {
		missing := serverSelected - rr.Selected
		rr.Selected += missing
		rr.Failed += missing
		if deadlineMS > 0 {
			rr.VirtualMS = math.Max(rr.VirtualMS, deadlineMS)
		}
	}
	return rr
}

// scoreAttack pairs the dishonest server's captures with the recorded
// pre-defense batches and fills the per-round and total PSNR fields.
func scoreAttack(report *Report, sched *scheduledAttack, population []*simClient) {
	if sched == nil {
		return
	}
	byID := make(map[string]*simClient, len(population))
	for _, c := range population {
		byID[c.ID()] = c
	}
	perRound := make(map[int][]float64)
	reconPerRound := make(map[int]int)
	var all, ssims []float64
	caps := sched.inner.Captures()
	for _, cap := range caps {
		reconPerRound[cap.Round] += len(cap.Reconstructions)
		report.AttackReconstructions += len(cap.Reconstructions)
		c := byID[cap.ClientID]
		if c == nil || len(cap.Reconstructions) == 0 {
			continue
		}
		o := c.outcomes[cap.Round]
		if o == nil || len(o.originals) == 0 {
			continue
		}
		ev := attack.Evaluate(cap.Reconstructions, o.originals)
		perRound[cap.Round] = append(perRound[cap.Round], ev.PSNRs...)
		all = append(all, ev.PSNRs...)
		for _, r := range cap.Reconstructions {
			ssims = append(ssims, imaging.BestSSIM(r, o.originals))
		}
	}
	report.AttackCaptures = len(caps)
	report.AttackMeanPSNR = metrics.Mean(all)
	report.AttackMeanSSIM = metrics.Mean(ssims)
	for i := range report.Rounds {
		r := report.Rounds[i].Round
		report.Rounds[i].Reconstructions = reconPerRound[r]
		report.Rounds[i].MeanPSNR = metrics.Mean(perRound[r])
	}
}

// summarize fills the report's whole-run aggregates from its rounds.
func summarize(report *Report) {
	partSum := 0.0
	for _, rr := range report.Rounds {
		if rr.Selected > 0 {
			partSum += float64(rr.Completed) / float64(rr.Selected)
		}
		report.TotalDropped += rr.Dropped
		report.TotalLate += rr.Late
		report.TotalFailed += rr.Failed
		report.TotalVirtualMS += rr.VirtualMS
	}
	if n := len(report.Rounds); n > 0 {
		report.MeanParticipation = partSum / float64(n)
		last := report.Rounds[n-1]
		report.FinalLoss = last.MeanLoss
		report.FinalAccuracy = last.Accuracy
	}
}

// shardStats summarizes the partition's shard sizes without materializing
// any shard.
func shardStats(parts *data.LazyPartition) ShardStats {
	if parts.Shards() == 0 {
		return ShardStats{}
	}
	mn, mx, mean := parts.Stats()
	return ShardStats{Min: mn, Max: mx, Mean: mean}
}

// evalAccuracy measures held-out classification accuracy in inference mode.
func evalAccuracy(model *nn.Sequential, ds data.Dataset, flat bool, batchSize int) float64 {
	correct, total := 0.0, 0
	for off := 0; off < ds.Len(); off += batchSize {
		end := min(off+batchSize, ds.Len())
		idx := make([]int, 0, end-off)
		for i := off; i < end; i++ {
			idx = append(idx, i)
		}
		batch, err := data.TakeBatch(ds, idx)
		if err != nil {
			return 0
		}
		var logits = model.Forward(batchInput(batch, flat), false)
		correct += nn.Accuracy(logits, batch.Labels) * float64(batch.Size())
		total += batch.Size()
	}
	if total == 0 {
		return 0
	}
	return correct / float64(total)
}

func batchInput(b *data.Batch, flat bool) *tensor.Tensor {
	if flat {
		return b.Flatten()
	}
	return b.Tensor4D()
}
