package sim

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/obs"
)

// RoundReport is one round of a scenario run, as the server experienced it.
type RoundReport struct {
	Round     int `json:"round"`
	Selected  int `json:"selected"`
	Completed int `json:"completed"`
	Dropped   int `json:"dropped"`
	Late      int `json:"late"`
	Failed    int `json:"failed"` // failures other than dropout/lateness

	MeanLoss float64 `json:"mean_loss"`
	GradNorm float64 `json:"grad_norm"`
	// VirtualMS is the round's simulated wall time: the slowest wait the
	// server endured (stragglers up to the deadline), in milliseconds.
	VirtualMS float64 `json:"virtual_ms"`

	// Evaluated marks rounds where held-out accuracy was measured.
	Evaluated bool    `json:"evaluated,omitempty"`
	Accuracy  float64 `json:"accuracy,omitempty"`

	// AttackActive marks rounds where the dishonest server struck.
	AttackActive    bool    `json:"attack_active,omitempty"`
	Reconstructions int     `json:"reconstructions,omitempty"`
	MeanPSNR        float64 `json:"mean_psnr,omitempty"`
}

// ShardStats summarizes the materialized population's shard sizes.
type ShardStats struct {
	Min  int     `json:"min"`
	Max  int     `json:"max"`
	Mean float64 `json:"mean"`
}

// Report is the structured outcome of a scenario run. For a fixed scenario
// seed it is bit-identical across worker counts: every stochastic choice is
// drawn from seeded streams and every timing figure is virtual.
type Report struct {
	Scenario   string `json:"scenario"`
	Seed       uint64 `json:"seed"`
	Clients    int    `json:"clients"`
	Partition  string `json:"partition"`
	Sampler    string `json:"sampler"`
	Aggregator string `json:"aggregator"`
	Defense    string `json:"defense,omitempty"`
	Defended   int    `json:"defended_clients,omitempty"`
	Attack     string `json:"attack,omitempty"`

	ShardSizes ShardStats    `json:"shard_sizes"`
	Rounds     []RoundReport `json:"rounds"`

	FinalLoss         float64 `json:"final_loss"`
	FinalAccuracy     float64 `json:"final_accuracy"`
	MeanParticipation float64 `json:"mean_participation"` // completed / selected, averaged over rounds
	TotalDropped      int     `json:"total_dropped"`
	TotalLate         int     `json:"total_late"`
	TotalFailed       int     `json:"total_failed"`
	TotalVirtualMS    float64 `json:"total_virtual_ms"`

	AttackCaptures        int     `json:"attack_captures,omitempty"`
	AttackReconstructions int     `json:"attack_reconstructions,omitempty"`
	AttackMeanPSNR        float64 `json:"attack_mean_psnr,omitempty"`
	// AttackMeanSSIM averages the structural similarity of each
	// reconstruction against its best-PSNR original (0 without captures).
	AttackMeanSSIM float64 `json:"attack_mean_ssim,omitempty"`

	// Trace is the run's observability summary. The engine never sets it —
	// only CLIs do, and only when tracing was requested — so report JSON is
	// byte-identical to older builds whenever observability is off.
	Trace *obs.TraceSummary `json:"trace,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the per-round trace as a metrics table.
func (r *Report) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Scenario %s: %d clients, partition %s, sampler %s, aggregator %s",
			r.Scenario, r.Clients, r.Partition, r.Sampler, r.Aggregator),
		"round", "selected", "ok", "drop", "late", "fail", "loss", "‖ḡ‖", "virt ms", "acc", "attack", "recon", "psnr")
	for _, rr := range r.Rounds {
		acc, att, psnr := "", "", ""
		if rr.Evaluated {
			acc = fmt.Sprintf("%.3f", rr.Accuracy)
		}
		if rr.AttackActive {
			att = "strike"
			psnr = fmt.Sprintf("%.1f", rr.MeanPSNR)
		}
		t.AddRow(
			fmt.Sprintf("%d", rr.Round),
			fmt.Sprintf("%d", rr.Selected),
			fmt.Sprintf("%d", rr.Completed),
			fmt.Sprintf("%d", rr.Dropped),
			fmt.Sprintf("%d", rr.Late),
			fmt.Sprintf("%d", rr.Failed),
			fmt.Sprintf("%.4f", rr.MeanLoss),
			fmt.Sprintf("%.4f", rr.GradNorm),
			fmt.Sprintf("%.1f", rr.VirtualMS),
			acc, att,
			fmt.Sprintf("%d", rr.Reconstructions),
			psnr,
		)
	}
	return t
}

// String renders the table plus a summary block.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Table().String())
	fmt.Fprintf(&b, "shards: min %d / mean %.1f / max %d samples\n",
		r.ShardSizes.Min, r.ShardSizes.Mean, r.ShardSizes.Max)
	fmt.Fprintf(&b, "participation: %.1f%% mean (%d dropped, %d late, %d failed)\n",
		100*r.MeanParticipation, r.TotalDropped, r.TotalLate, r.TotalFailed)
	fmt.Fprintf(&b, "final: loss %.4f, accuracy %.3f, %.1f virtual s total\n",
		r.FinalLoss, r.FinalAccuracy, r.TotalVirtualMS/1000)
	if r.Attack != "" {
		fmt.Fprintf(&b, "attack %s: %d captures, %d reconstructions, mean PSNR %.1f dB, mean SSIM %.3f (defense %s on %d/%d clients)\n",
			r.Attack, r.AttackCaptures, r.AttackReconstructions, r.AttackMeanPSNR, r.AttackMeanSSIM,
			orNone(r.Defense), r.Defended, r.Clients)
	}
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
