package sim

import (
	"testing"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

// scaleScenario is a population two hundred times larger than the largest
// eager-engine preset, with a tiny cohort — the shape the virtual engine
// exists for. Cheap to run (two rounds of 64 clients) precisely because
// population size no longer implies materialization cost.
func scaleScenario() Scenario {
	return Scenario{
		Name: "virtual-scale", Seed: 11,
		Clients: 200_000, Rounds: 2, ClientsPerRound: 64, BatchSize: 2,
		Dataset:     DatasetSpec{Classes: 10, Channels: 1, Height: 8, Width: 8, Samples: 400_000},
		Partition:   "iid",
		Sampling:    "uniform",
		Dropout:     0.1,
		Straggler:   StragglerSpec{Fraction: 0.1, MeanDelayMS: 50, BaseDelayMS: 5},
		DeadlineMS:  100,
		Defense:     DefenseSpec{Kind: "oasis:MR", Fraction: 0.1},
		Model:       ArchSpec{Kind: "mlp", Hidden: 16},
		TestSamples: 16,
	}
}

// TestVirtualPopulationScale runs a 200k-client population end to end — a
// scenario the eager engine would spend gigabytes materializing — and checks
// the cohort accounting. It doubles as the in-tree stand-in for the CI
// memory-ceiling job's cross-device-1M run.
func TestVirtualPopulationScale(t *testing.T) {
	sc := scaleScenario()
	report, err := Run(sc, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rounds) != 2 {
		t.Fatalf("got %d rounds, want 2", len(report.Rounds))
	}
	for _, rr := range report.Rounds {
		if rr.Selected != 64 {
			t.Errorf("round %d selected %d clients, want 64", rr.Round, rr.Selected)
		}
		if rr.Completed+rr.Dropped+rr.Late+rr.Failed != rr.Selected {
			t.Errorf("round %d outcome classes sum to %d, want %d",
				rr.Round, rr.Completed+rr.Dropped+rr.Late+rr.Failed, rr.Selected)
		}
	}
	if report.Defended != 20_000 {
		t.Errorf("defended count %d, want 20000 (0.1 of 200k)", report.Defended)
	}
	if report.ShardSizes.Min != 2 || report.ShardSizes.Max != 2 {
		t.Errorf("iid 400k/200k shard sizes = %+v, want min=max=2", report.ShardSizes)
	}
}

// TestVirtualLeaseSemantics pins the lease contract directly: cohort order
// follows the index arguments, a resampled client is the same instance (its
// cross-round rng/defense state must continue), and descriptors resolve
// without instantiation.
func TestVirtualLeaseSemantics(t *testing.T) {
	sc := scaleScenario()
	sc.Clients = 1000
	sc.Dataset.Samples = 3000
	d := sc.Dataset
	ds := data.NewSynthCustom("lease", d.Classes, d.Channels, d.Height, d.Width, d.Samples, sc.Seed)
	parts, err := data.PartitionLazy(data.IID{}, ds, sc.Clients, nn.RandSource(sc.Seed, saltPartition))
	if err != nil {
		t.Fatal(err)
	}
	vp := newVirtualPopulation(sc, ds, parts)
	if got := vp.NumClients(); got != 1000 {
		t.Fatalf("NumClients = %d, want 1000", got)
	}
	if got := vp.NumSamples(7); got != parts.ShardLen(7) {
		t.Fatalf("NumSamples(7) = %d, want %d", got, parts.ShardLen(7))
	}

	first, err := vp.Lease(0, []int{42, 7, 999})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"client-0042", "client-0007", "client-0999"}
	for j, c := range first {
		if c.ID() != wantIDs[j] {
			t.Errorf("cohort[%d] = %s, want %s", j, c.ID(), wantIDs[j])
		}
	}
	vp.Release(0, first)

	second, err := vp.Lease(1, []int{7, 13})
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != first[1] {
		t.Error("re-leasing client 7 built a new instance; cross-round state would restart")
	}
	if len(vp.resident) != 4 {
		t.Errorf("%d residents after leasing 4 distinct clients, want 4", len(vp.resident))
	}

	res := vp.residents()
	for j := 1; j < len(res); j++ {
		if res[j-1].index >= res[j].index {
			t.Fatal("residents() not in ascending index order")
		}
	}

	// The descriptor table is a pure function of the keyed streams: asking
	// about clients never leased must not instantiate them.
	desc := vp.describe(500_000 % sc.Clients)
	if desc.shardLen != parts.ShardLen(desc.index) {
		t.Errorf("describe shardLen %d, want %d", desc.shardLen, parts.ShardLen(desc.index))
	}
	if len(vp.resident) != 4 {
		t.Error("describe() instantiated a client")
	}
}

// TestCostModelWorkers pins the worker-cap cost model's envelope: never more
// than NumCPU or the cohort, never zero, and shrinking as the model grows.
func TestCostModelWorkers(t *testing.T) {
	if got := costModelWorkers(4, 1000); got > 4 {
		t.Errorf("cap %d exceeds cohort 4", got)
	}
	if got := costModelWorkers(1024, 1000); got < 1 {
		t.Errorf("cap %d below 1", got)
	}
	// A model so large one in-flight client blows the budget still yields 1.
	if got := costModelWorkers(1024, 1<<30); got != 1 {
		t.Errorf("huge-model cap = %d, want 1", got)
	}
	small := costModelWorkers(1024, 1000)
	huge := costModelWorkers(1024, 50_000_000)
	if huge > small {
		t.Errorf("cap grew with model size: %d → %d", small, huge)
	}
}
