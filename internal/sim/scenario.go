package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/fl"
)

// Scenario declaratively describes the full shape of a federated run: who
// the clients are, what data they hold, how reliable they are, who defends,
// and when the dishonest server strikes. Construct it in Go or decode it
// from JSON (Load/Decode); Run materializes and executes it.
//
// Zero values mean "default" wherever a default is sensible; Normalize
// resolves them and Validate reports what is wrong with an explicit spec.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Seed        uint64 `json:"seed"`

	// Population and pacing.
	Clients         int     `json:"clients"`
	Rounds          int     `json:"rounds"`
	ClientsPerRound int     `json:"clients_per_round,omitempty"` // 0 = all clients every round
	BatchSize       int     `json:"batch_size,omitempty"`        // default 8
	LocalSteps      int     `json:"local_steps,omitempty"`       // ≤1 = FedSGD
	LearningRate    float64 `json:"learning_rate,omitempty"`     // default 0.05

	// Data and its distribution across clients.
	Dataset   DatasetSpec `json:"dataset"`
	Partition string      `json:"partition,omitempty"` // iid | dirichlet[:a] | quantity[:s]; default iid

	// Server-side policy.
	Sampling   string  `json:"sampling,omitempty"`    // uniform | size; default uniform
	Aggregator string  `json:"aggregator,omitempty"`  // mean | median | trimmed[:f] | normclip[:m]
	DeadlineMS float64 `json:"deadline_ms,omitempty"` // virtual per-round deadline; 0 = wait forever

	// Client reliability.
	Dropout   float64       `json:"dropout,omitempty"` // per-client per-round dropout probability
	Straggler StragglerSpec `json:"straggler,omitempty"`

	// Defense and threat model.
	Defense DefenseSpec `json:"defense,omitempty"`
	Attack  AttackSpec  `json:"attack,omitempty"`

	// Global model and evaluation cadence.
	Model       ArchSpec `json:"model,omitempty"`
	EvalEvery   int      `json:"eval_every,omitempty"`   // rounds between accuracy evals; 0 = final only
	TestSamples int      `json:"test_samples,omitempty"` // held-out eval set size; default 128

	// RealTime makes straggler delays actual sleeps (for demos over real
	// transports). Off, delays only advance the virtual clock, so large
	// populations simulate at full speed and reports stay deterministic.
	RealTime bool `json:"real_time,omitempty"`
}

// Clone returns a deep copy of the scenario. The value is mostly plain data,
// but Attack.Rounds is a slice a plain value copy would alias; harnesses that
// customize per-cell copies concurrently (the sweep engine) need full
// isolation.
func (s Scenario) Clone() Scenario {
	c := s
	if s.Attack.Rounds != nil {
		c.Attack.Rounds = append([]int(nil), s.Attack.Rounds...)
	}
	return c
}

// WithSeed returns an isolated deep copy of the scenario running at the given
// seed — the replicate axis of a multi-seed sweep.
func (s Scenario) WithSeed(seed uint64) Scenario {
	c := s.Clone()
	c.Seed = seed
	return c
}

// DatasetSpec sizes the synthetic dataset the population trains on.
type DatasetSpec struct {
	Classes  int `json:"classes"`
	Channels int `json:"channels"`
	Height   int `json:"height"`
	Width    int `json:"width"`
	Samples  int `json:"samples"`
}

// StragglerSpec shapes the slow tail of the population: Fraction of the
// clients are stragglers whose per-round extra delay is exponential with
// mean MeanDelayMS, on top of the BaseDelayMS every client pays.
type StragglerSpec struct {
	Fraction    float64 `json:"fraction,omitempty"`
	MeanDelayMS float64 `json:"mean_delay_ms,omitempty"`
	BaseDelayMS float64 `json:"base_delay_ms,omitempty"`
}

// DefenseSpec assigns a client-side defense to a fraction of the population
// (chosen uniformly at the scenario seed). Kind is a defense pipeline spec
// resolved by the internal/defense registry: one "kind[:arg]" segment or an
// ordered '|'-chain of them, e.g.
//
//	oasis:<policy>         OASIS batch augmentation (MR, mR, SH, HFlip, VFlip, MR+SH)
//	dpsgd:<clip>,<sigma>   DP-SGD gradient clipping + noise (per-client state)
//	prune:<keep>           gradient sparsification keeping the top fraction
//	ats:<policy>           transformation replacement (Gao et al.); per-client RNG
//	oasis:MR|dpsgd:1,0.1   stacked: batch augmentation plus gradient noise
//
// Any kind added via defense.Register is equally valid; validation errors
// list defense.Names() dynamically.
type DefenseSpec struct {
	Kind     string  `json:"kind,omitempty"`
	Fraction float64 `json:"fraction,omitempty"` // default 1 when Kind is set
}

// AttackSpec schedules the dishonest server. On active rounds the server
// swaps the dispatched model for the attack's malicious victim model and
// inverts every uploaded gradient; on all other rounds it behaves honestly.
// Active rounds are the explicit Rounds list when given, else the inclusive
// burst window [FirstRound, LastRound].
type AttackSpec struct {
	// Kind is "" (honest server) or any registered attack family
	// (attack.Names(): rtf, cah, qbi, loki, …).
	Kind             string `json:"kind,omitempty"`
	Neurons          int    `json:"neurons,omitempty"`
	AnticipatedBatch int    `json:"anticipated_batch,omitempty"` // CAH tuning; default BatchSize
	Rounds           []int  `json:"rounds,omitempty"`
	FirstRound       int    `json:"first_round,omitempty"`
	LastRound        int    `json:"last_round,omitempty"`
}

// Active reports whether the dishonest server strikes in the given round.
func (a AttackSpec) Active(round int) bool {
	if a.Kind == "" {
		return false
	}
	if len(a.Rounds) > 0 {
		for _, r := range a.Rounds {
			if r == round {
				return true
			}
		}
		return false
	}
	return round >= a.FirstRound && round <= a.LastRound
}

// ArchSpec selects the global model family.
type ArchSpec struct {
	Kind   string `json:"kind,omitempty"`   // mlp (default) | resnet
	Hidden int    `json:"hidden,omitempty"` // MLP hidden units / ResNet width; default 32
}

// Normalize fills defaults and validates, returning the resolved scenario.
func (s Scenario) Normalize() (Scenario, error) {
	if s.Name == "" {
		s.Name = "unnamed"
	}
	if s.BatchSize == 0 {
		s.BatchSize = 8
	}
	if s.LearningRate == 0 {
		s.LearningRate = 0.05
	}
	if s.Partition == "" {
		s.Partition = "iid"
	}
	if s.Sampling == "" {
		s.Sampling = "uniform"
	}
	if s.Aggregator == "" {
		s.Aggregator = "mean"
	}
	if s.TestSamples == 0 {
		s.TestSamples = 128
	}
	if s.Model.Kind == "" {
		s.Model.Kind = "mlp"
	}
	if s.Model.Hidden == 0 {
		s.Model.Hidden = 32
	}
	if s.Defense.Kind != "" && s.Defense.Fraction == 0 {
		s.Defense.Fraction = 1
	}
	if s.Attack.Kind != "" && s.Attack.AnticipatedBatch == 0 {
		s.Attack.AnticipatedBatch = s.BatchSize
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Validate reports the first problem with the spec, or nil.
func (s Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("sim: scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Clients <= 0 {
		return fail("clients must be > 0, got %d", s.Clients)
	}
	if s.Rounds <= 0 {
		return fail("rounds must be > 0, got %d", s.Rounds)
	}
	if s.ClientsPerRound < 0 || s.ClientsPerRound > s.Clients {
		return fail("clients_per_round %d out of range [0, %d]", s.ClientsPerRound, s.Clients)
	}
	d := s.Dataset
	if d.Classes < 2 || d.Channels <= 0 || d.Height <= 0 || d.Width <= 0 || d.Samples <= 0 {
		return fail("dataset needs classes ≥ 2 and positive channels/height/width/samples, got %+v", d)
	}
	if d.Samples < s.Clients {
		return fail("dataset has %d samples for %d clients; every client needs at least one", d.Samples, s.Clients)
	}
	if s.BatchSize <= 0 {
		return fail("batch_size must be > 0, got %d", s.BatchSize)
	}
	if s.LearningRate < 0 {
		return fail("learning_rate must be ≥ 0, got %g", s.LearningRate)
	}
	if s.Model.Hidden < 0 {
		return fail("model.hidden must be ≥ 0, got %d", s.Model.Hidden)
	}
	if s.Dropout < 0 || s.Dropout >= 1 {
		return fail("dropout must be in [0, 1), got %g", s.Dropout)
	}
	if s.Straggler.Fraction < 0 || s.Straggler.Fraction > 1 {
		return fail("straggler.fraction must be in [0, 1], got %g", s.Straggler.Fraction)
	}
	if s.Straggler.MeanDelayMS < 0 || s.Straggler.BaseDelayMS < 0 || s.DeadlineMS < 0 {
		return fail("delays and deadline must be ≥ 0")
	}
	if _, err := data.NewPartitioner(s.Partition); err != nil {
		return fail("%v", err)
	}
	if _, err := fl.NewSamplerByName(s.Sampling); err != nil {
		return fail("%v", err)
	}
	if _, err := fl.NewAggregatorByName(s.Aggregator); err != nil {
		return fail("%v", err)
	}
	if s.Defense.Kind != "" {
		if s.Defense.Fraction < 0 || s.Defense.Fraction > 1 {
			return fail("defense.fraction must be in [0, 1], got %g", s.Defense.Fraction)
		}
		// The registry resolves the pipeline spec, so every registered
		// defense kind — built-in or custom — is a valid scenario defense
		// and unknown-kind errors list defense.Names() without going stale.
		if _, err := defense.NewPipeline(s.Defense.Kind, defense.Config{}); err != nil {
			return fail("%v", err)
		}
	}
	if s.Attack.Kind != "" && !attack.Known(s.Attack.Kind) {
		// The valid list comes from the attack registry, so this message
		// can never go stale as families are added.
		return fail("unknown attack kind %q (want one of %s)",
			s.Attack.Kind, strings.Join(attack.Names(), ", "))
	}
	if s.Attack.Kind != "" {
		if s.Attack.Neurons <= 0 {
			return fail("attack.neurons must be > 0 for a %s attack", s.Attack.Kind)
		}
		active := false
		for r := 0; r < s.Rounds; r++ {
			if s.Attack.Active(r) {
				active = true
				break
			}
		}
		if !active {
			return fail("attack %q never strikes within %d rounds (check rounds/first_round/last_round)",
				s.Attack.Kind, s.Rounds)
		}
	}
	switch s.Model.Kind {
	case "", "mlp", "resnet":
	default:
		return fail("unknown model kind %q (want mlp or resnet)", s.Model.Kind)
	}
	if s.EvalEvery < 0 || s.TestSamples < 0 {
		return fail("eval_every and test_samples must be ≥ 0")
	}
	return nil
}

// Decode reads a JSON scenario; unknown fields are errors so typos in specs
// fail loudly instead of silently running a different experiment.
func Decode(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("sim: decode scenario: %w", err)
	}
	return s, nil
}

// Load reads a JSON scenario file.
func Load(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %s: %w", path, err)
	}
	return s, nil
}

// JSON renders the scenario as indented JSON (the same schema Load reads).
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Presets returns the named example scenarios, smallest first. Attack bursts
// sit inside the first five rounds so quick mode (which caps rounds at five)
// still exercises them.
func Presets() []Scenario {
	return []Scenario{
		{
			Name:        "smoke",
			Description: "Tiny end-to-end scenario for CI: a dozen flaky clients, label skew, one attack round.",
			Seed:        42,
			Clients:     12, Rounds: 4, ClientsPerRound: 6, BatchSize: 4,
			Dataset:    DatasetSpec{Classes: 4, Channels: 1, Height: 8, Width: 8, Samples: 240},
			Partition:  "dirichlet:0.5",
			Dropout:    0.1,
			Straggler:  StragglerSpec{Fraction: 0.25, MeanDelayMS: 40, BaseDelayMS: 5},
			DeadlineMS: 80,
			Defense:    DefenseSpec{Kind: "oasis:MR", Fraction: 0.5},
			Attack:     AttackSpec{Kind: "rtf", Neurons: 24, Rounds: []int{1}},
			Model:      ArchSpec{Kind: "mlp", Hidden: 16},
			EvalEvery:  2, TestSamples: 64,
		},
		{
			Name:        "cross-device-1k",
			Description: "1000-device population with Dirichlet(0.1) label skew, 10% dropout, stragglers, and an early RTF burst.",
			Seed:        42,
			Clients:     1000, Rounds: 8, ClientsPerRound: 50, BatchSize: 4,
			Dataset:    DatasetSpec{Classes: 10, Channels: 1, Height: 8, Width: 8, Samples: 4000},
			Partition:  "dirichlet:0.1",
			Sampling:   "size",
			Dropout:    0.1,
			Straggler:  StragglerSpec{Fraction: 0.2, MeanDelayMS: 60, BaseDelayMS: 5},
			DeadlineMS: 120,
			Defense:    DefenseSpec{Kind: "oasis:MR", Fraction: 0.3},
			Attack:     AttackSpec{Kind: "rtf", Neurons: 48, FirstRound: 1, LastRound: 2},
			Model:      ArchSpec{Kind: "mlp", Hidden: 32},
			EvalEvery:  4, TestSamples: 128,
		},
		{
			Name:        "flaky-hospital",
			Description: "20 hospitals with wildly unequal cohorts, heavy dropout and stragglers, median aggregation, OASIS everywhere.",
			Seed:        42,
			Clients:     20, Rounds: 10, ClientsPerRound: 10, BatchSize: 8,
			Dataset:    DatasetSpec{Classes: 6, Channels: 1, Height: 16, Width: 16, Samples: 800},
			Partition:  "quantity:1",
			Sampling:   "size",
			Aggregator: "median",
			Dropout:    0.3,
			Straggler:  StragglerSpec{Fraction: 0.5, MeanDelayMS: 200, BaseDelayMS: 20},
			DeadlineMS: 250,
			Defense:    DefenseSpec{Kind: "oasis:MR", Fraction: 1},
			Model:      ArchSpec{Kind: "mlp", Hidden: 32},
			EvalEvery:  5, TestSamples: 128,
		},
		{
			Name:        "qbi-probe",
			Description: "60 clients facing a QBI bias-initialization burst; gradient pruning on half the population.",
			Seed:        42,
			Clients:     60, Rounds: 6, ClientsPerRound: 15, BatchSize: 8,
			Dataset:   DatasetSpec{Classes: 6, Channels: 1, Height: 8, Width: 8, Samples: 960},
			Partition: "dirichlet:0.3",
			Dropout:   0.05,
			Defense:   DefenseSpec{Kind: "prune:0.3", Fraction: 0.5},
			Attack:    AttackSpec{Kind: "qbi", Neurons: 48, AnticipatedBatch: 8, FirstRound: 1, LastRound: 3},
			Model:     ArchSpec{Kind: "mlp", Hidden: 32},
			EvalEvery: 3, TestSamples: 128,
		},
		{
			Name:        "loki-population",
			Description: "300-client sampled population under a sustained LOKI-style scaled-kernel attack; ATS replacement on half.",
			Seed:        42,
			Clients:     300, Rounds: 6, ClientsPerRound: 30, BatchSize: 4,
			Dataset:   DatasetSpec{Classes: 8, Channels: 1, Height: 8, Width: 8, Samples: 2400},
			Partition: "quantity:0.5",
			Sampling:  "size",
			Dropout:   0.1,
			Defense:   DefenseSpec{Kind: "ats:MR", Fraction: 0.5},
			Attack:    AttackSpec{Kind: "loki", Neurons: 64, FirstRound: 1, LastRound: 4},
			Model:     ArchSpec{Kind: "mlp", Hidden: 32},
			EvalEvery: 3, TestSamples: 128,
		},
		{
			Name:        "cross-device-1M",
			Description: "One million virtual devices, 1024 sampled per round — the OASIS cross-device regime at honest scale.",
			Seed:        42,
			Clients:     1_000_000, Rounds: 3, ClientsPerRound: 1024, BatchSize: 2,
			Dataset:    DatasetSpec{Classes: 10, Channels: 1, Height: 8, Width: 8, Samples: 2_000_000},
			Partition:  "iid",
			Sampling:   "uniform",
			Dropout:    0.05,
			Straggler:  StragglerSpec{Fraction: 0.1, MeanDelayMS: 80, BaseDelayMS: 5},
			DeadlineMS: 150,
			Defense:    DefenseSpec{Kind: "oasis:MR", Fraction: 0.2},
			Attack:     AttackSpec{Kind: "rtf", Neurons: 32, FirstRound: 1, LastRound: 1},
			Model:      ArchSpec{Kind: "mlp", Hidden: 32},
			EvalEvery:  0, TestSamples: 128,
		},
		{
			Name:        "adversarial-burst",
			Description: "100 clients training honestly until a mid-run CAH burst; half the population runs DP-SGD.",
			Seed:        42,
			Clients:     100, Rounds: 10, ClientsPerRound: 20, BatchSize: 8,
			Dataset:   DatasetSpec{Classes: 8, Channels: 1, Height: 8, Width: 8, Samples: 1600},
			Partition: "dirichlet:0.5",
			Dropout:   0.05,
			Defense:   DefenseSpec{Kind: "dpsgd:1,0.1", Fraction: 0.5},
			Attack:    AttackSpec{Kind: "cah", Neurons: 32, AnticipatedBatch: 8, FirstRound: 2, LastRound: 4},
			Model:     ArchSpec{Kind: "mlp", Hidden: 32},
			EvalEvery: 5, TestSamples: 128,
		},
	}
}

// Preset returns the named preset scenario.
func Preset(name string) (Scenario, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// PresetNames lists the preset identifiers in order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
