package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
)

// obsPkg is the package whose Start spans spanpair tracks.
var obsPkg = newPathList(modulePath + "/internal/obs")

// SpanPair verifies that every obs.Start is paired with (*Span).End on all
// paths, directly or deferred. A span that never ends corrupts the trace
// tree (oasis-trace validates parent/child nesting) and drops its phase
// from the duration summary.
var SpanPair = &analysis.Analyzer{
	Name: spanpairName,
	Doc: "pair every obs.Start with a Span.End on all paths\n\n" +
		"obs.Start opens a tracing interval that only End closes; a span leaked\n" +
		"on an early return never folds into the phase aggregates and leaves a\n" +
		"dangling node in the trace tree. Spans must End on every path (directly\n" +
		"or deferred) or visibly hand off to another owner.",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runSpanPair,
}

func init() {
	SpanPair.Flags.Var(obsPkg, "pkg", "import path(s) of the obs package providing Start/End")
}

func runSpanPair(pass *analysis.Pass) (any, error) {
	return runPairFlow(pass, pairRule{
		name:    spanpairName,
		what:    "tracing span",
		release: "End",
		remedy:  "call End (usually `defer sp.End()`), or annotate //oasis:allow-spanpair <reason>",
		acquire: func(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
			fn := typeutilCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !obsPkg.matches(fn.Pkg().Path()) {
				return 0, false
			}
			if fn.Name() != "Start" {
				return 0, false
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && sig.Results().Len() == 2 {
				return 1, true // the *Span is the second result
			}
			return 0, false
		},
	})
}
