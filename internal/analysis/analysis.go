package analysis

import "golang.org/x/tools/go/analysis"

// Analyzer names, shared by the Analyzer declarations and their run
// functions (a direct reference would be an initialization cycle).
const (
	rngName      = "rngdiscipline"
	walltimeName = "walltime"
	mapiterName  = "mapiter"
	poolpairName = "poolpair"
	spanpairName = "spanpair"
)

// Suite returns the five oasis-vet analyzers in a stable order. cmd/oasis-vet
// hands them to unitchecker; the tests run them individually.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		RNGDiscipline,
		Walltime,
		MapIter,
		PoolPair,
		SpanPair,
	}
}
