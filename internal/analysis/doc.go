// Package analysis is oasis-vet: a go/analysis suite that enforces, at
// compile time, the contracts every determinism guarantee in this repository
// rests on. Byte-identical SweepReports across worker counts, crash/resume,
// and distributed workers are all consequences of a small set of coding
// disciplines; these analyzers turn each discipline from a convention that
// differential tests catch after the fact into a property `go vet` rejects
// before merge.
//
// The suite ships five analyzers, run together by cmd/oasis-vet via
// `go vet -vettool`:
//
//   - rngdiscipline: forbids the global math/rand (and math/rand/v2)
//     top-level functions and time-seeded RNG sources inside the
//     deterministic core (internal/{sim,data,attack,defense,fl,experiments,
//     dist} by default; -rngdiscipline.scope overrides). Randomness must
//     flow from the keyed sub-stream constructors so every draw is a pure
//     function of the scenario key.
//
//   - walltime: forbids time.Now and time.Since outside internal/obs and
//     internal/perf (-walltime.exempt overrides). Wall-clock reads in a
//     report path make output depend on the machine, not the scenario.
//     Genuine deadline/backoff code opts out per site with the directive
//     described below, which must carry a justification.
//
//   - mapiter: flags `range` over a map whose body feeds an order-sensitive
//     sink — appending to a slice, fmt printing, io writes, or JSON/gob
//     encoding — without the appended slice being sorted afterwards in the
//     same function. This is the exact bug class that silently breaks
//     report byte-identity. Collect-then-sort is recognized and not
//     flagged; iterating a pre-sorted key slice never triggers it at all.
//
//   - poolpair: flow-sensitive check that every tensor acquired from the
//     workspace arena (tensor.NewPooled / (*Tensor).ClonePooled) reaches a
//     Release on every path, is deferred, or visibly transfers ownership
//     (returned, stored, or passed to another function). A pooled tensor
//     that leaks on an early-return path defeats the arena.
//
//   - spanpair: the same flow check for tracing spans — every obs.Start
//     must be paired with (*Span).End on every path, directly or deferred.
//     Discarding the span (`ctx, _ := obs.Start(...)`) is always an error.
//     An unterminated span corrupts the trace tree oasis-trace validates.
//
// # Directive grammar
//
// Every analyzer honors a line-scoped escape hatch:
//
//	//oasis:allow-<analyzer> <justification>
//
// e.g. `//oasis:allow-walltime lease expiry is wall-clock by design`.
// The directive suppresses that analyzer's diagnostics when it appears at
// the end of the flagged line, alone on the line immediately above it, or
// in the doc comment of the enclosing function (which exempts the whole
// function). The justification is mandatory: a directive without one does
// not suppress anything and is itself reported, so the tree can never
// accumulate silent opt-outs.
//
// All five analyzers skip _test.go files and generated files: the
// contracts protect production report paths, and tests routinely need ad
// hoc clocks and randomness.
//
// # Running
//
//	go build -o oasis-vet ./cmd/oasis-vet
//	go vet -vettool=./oasis-vet ./...
//
// CI runs exactly this in the smoke tier and fails on any diagnostic.
// Each analyzer has an analysistest-style golden suite under testdata/src,
// and testdata/vetmodule is a self-contained fixture module the e2e test
// vets through the real `go vet -vettool` pipeline.
//
// The rules these analyzers enforce are written out as the determinism
// contract in the README ("Determinism contract" section); internal/obs
// and internal/tensor document the span and arena halves of it.
package analysis
