package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// rngScope limits rngdiscipline to the deterministic core. Everything under
// these prefixes must draw randomness from keyed sub-streams.
var rngScope = newPathList(
	modulePath+"/internal/sim",
	modulePath+"/internal/data",
	modulePath+"/internal/attack",
	modulePath+"/internal/defense",
	modulePath+"/internal/fl",
	modulePath+"/internal/experiments",
	modulePath+"/internal/dist",
)

// RNGDiscipline rejects the global math/rand source and time-seeded RNG
// construction inside the deterministic core.
var RNGDiscipline = &analysis.Analyzer{
	Name: rngName,
	Doc: "forbid global math/rand and time-seeded RNG sources in the deterministic core\n\n" +
		"Report byte-identity requires every random draw to be a pure function of\n" +
		"the scenario key. Top-level math/rand functions share one mutable global\n" +
		"source, and clock-seeded sources differ per run; both are rejected inside\n" +
		"the packages listed by -rngdiscipline.scope.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRNGDiscipline,
}

func init() {
	RNGDiscipline.Flags.Var(rngScope, "scope", "comma-separated import-path prefixes the check applies to")
}

// rngConstructors are the math/rand(/v2) package-level functions that build
// explicit sources/generators rather than touching the global source.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runRNGDiscipline(pass *analysis.Pass) (any, error) {
	if !rngScope.matches(pass.Pkg.Path()) {
		return nil, nil
	}
	dir := parseDirectives(pass, rngName)
	defer dir.reportBare()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods on rand.Rand/Zipf etc. operate on an explicit stream
		}
		if skippablePos(pass, sel.Pos()) || dir.allowed(sel.Pos()) {
			return
		}
		if !rngConstructors[fn.Name()] {
			pass.Reportf(sel.Pos(), "use of global %s.%s: derive randomness from the scenario's keyed RNG sub-streams", path, fn.Name())
		}
	})

	// Time-seeded construction: rand.NewSource(time.Now().UnixNano()) and
	// friends. The constructor itself is fine; a clock in its arguments is
	// what breaks replayability.
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutilCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !rngConstructors[fn.Name()] {
			return
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return
		}
		for _, arg := range call.Args {
			if clock := findClockRead(pass.TypesInfo, arg); clock != nil {
				if skippablePos(pass, call.Pos()) || dir.allowed(call.Pos()) {
					return
				}
				pass.Reportf(call.Pos(), "time-seeded RNG source: seeds must derive from the scenario key, not the clock")
				return
			}
		}
	})
	return nil, nil
}

// typeutilCallee resolves the *types.Func a call invokes, or nil.
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// findClockRead returns the first use of time.Now (or time.Since) inside
// expr, or nil.
func findClockRead(info *types.Info, expr ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && isClockFunc(fn) {
			found = sel
			return false
		}
		return true
	})
	return found
}

// isClockFunc reports whether fn is time.Now or time.Since.
func isClockFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
		(fn.Name() == "Now" || fn.Name() == "Since")
}
