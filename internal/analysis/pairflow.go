package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// pairRule parameterizes the acquire/release flow check shared by poolpair
// and spanpair: an acquire call produces a value that must reach a release
// method on every path, be deferred, or visibly transfer ownership.
type pairRule struct {
	name    string // analyzer name, for directives
	what    string // e.g. "pooled tensor", "tracing span"
	release string // release method name, e.g. "Release", "End"
	remedy  string // tail of the diagnostic message
	// acquire reports whether call acquires a tracked value and which
	// result index carries it.
	acquire func(pass *analysis.Pass, call *ast.CallExpr) (int, bool)
}

// useKind classifies how a tracked variable is used after acquisition.
type useKind int

const (
	useNeutral  useKind = iota // receiver of non-release method, comparison, field read
	useRelease                 // receiver of the release method
	useEscape                  // returned, stored, or passed — ownership transfer
	useReassign                // variable rebound; tracking stops
)

// pairUse is one classified use of the tracked variable. pos points at the
// covering statement (the DeferStmt for deferred releases), which is what
// the CFG walk tests against.
type pairUse struct {
	kind useKind
	pos  token.Pos
}

func runPairFlow(pass *analysis.Pass, rule pairRule) (any, error) {
	dir := parseDirectives(pass, rule.name)
	defer dir.reportBare()

	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		resultIdx, ok := rule.acquire(pass, call)
		if !ok || skippablePos(pass, call.Pos()) || dir.allowed(call.Pos()) {
			return true
		}
		checkAcquire(pass, rule, cfgs, call, resultIdx, stack)
		return true
	})
	return nil, nil
}

// checkAcquire inspects how one acquire call's result is bound and, when it
// lands in a local variable, verifies the release pairing on all paths.
func checkAcquire(pass *analysis.Pass, rule pairRule, cfgs *ctrlflow.CFGs, call *ast.CallExpr, resultIdx int, stack []ast.Node) {
	parent := stack[len(stack)-2]
	var target *ast.Ident
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for j, rhs := range p.Rhs {
			if ast.Unparen(rhs) != call {
				continue
			}
			// `a, b := f()` (tuple) binds LHS[resultIdx]; a parallel
			// assign `a, b := f(), g()` binds LHS[j] (resultIdx is then 0).
			i := resultIdx
			if len(p.Rhs) > 1 {
				i = j
			}
			if i < len(p.Lhs) {
				target, _ = ast.Unparen(p.Lhs[i]).(*ast.Ident)
			}
		}
	case *ast.ValueSpec:
		if resultIdx < len(p.Names) {
			target = p.Names[resultIdx]
		}
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "%s from %s is discarded: %s", rule.what, callName(call), rule.remedy)
		return
	default:
		// Returned, passed as an argument, or embedded in a composite
		// literal: ownership visibly moves to someone else.
		return
	}
	if target == nil {
		return // non-ident destination (field, index): stored — a transfer
	}
	if target.Name == "_" {
		pass.Reportf(call.Pos(), "%s from %s is discarded: %s", rule.what, callName(call), rule.remedy)
		return
	}
	obj := pass.TypesInfo.ObjectOf(target)
	if obj == nil {
		return
	}

	fn, body := enclosingFunc(stack)
	if body == nil {
		return
	}
	uses := classifyUses(pass.TypesInfo, body, target, obj, rule.release)

	var hasRelease, hasEscape bool
	for _, u := range uses {
		switch u.kind {
		case useRelease:
			hasRelease = true
		case useEscape, useReassign:
			hasEscape = true
		}
	}
	if !hasRelease && !hasEscape {
		pass.Reportf(call.Pos(), "%s %q from %s never reaches %s: %s", rule.what, target.Name, callName(call), rule.release, rule.remedy)
		return
	}
	if !hasRelease {
		return // pure transfer
	}

	g := funcCFG(cfgs, fn)
	if g == nil {
		return
	}
	var covers []token.Pos
	for _, u := range uses {
		if u.kind != useNeutral {
			covers = append(covers, u.pos)
		}
	}
	if leakPath(g, call.Pos(), covers) {
		pass.Reportf(call.Pos(), "%s %q from %s does not reach %s on every path (an early return or branch can skip it): %s", rule.what, target.Name, callName(call), rule.release, rule.remedy)
	}
}

// enclosingFunc returns the innermost enclosing function node and body.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// funcCFG fetches the control-flow graph ctrlflow built for fn.
func funcCFG(cfgs *ctrlflow.CFGs, fn ast.Node) *cfg.CFG {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		if f.Body != nil {
			return cfgs.FuncDecl(f)
		}
	case *ast.FuncLit:
		return cfgs.FuncLit(f)
	}
	return nil
}

// classifyUses walks body and classifies every use of obj (other than its
// defining occurrence) for the pairing check.
func classifyUses(info *types.Info, body *ast.BlockStmt, def *ast.Ident, obj types.Object, release string) []pairUse {
	var uses []pairUse
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		if id, ok := n.(*ast.Ident); ok && id != def && info.ObjectOf(id) == obj {
			uses = append(uses, classifyUse(id, stack, release))
		}
		stack = append(stack, n)
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			walk(c)
			return false
		})
		stack = stack[:len(stack)-1]
	}
	walk(body)
	return uses
}

// classifyUse decides what one occurrence of the tracked variable means.
// stack is the ancestor chain (innermost last, not including id).
func classifyUse(id *ast.Ident, stack []ast.Node, release string) pairUse {
	pos := id.Pos()
	// Deferred operations cover the paths that flow through the defer
	// statement, so a use inside a DeferStmt (directly or via a function
	// literal) is anchored at the defer.
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.DeferStmt); ok {
			pos = d.Pos()
			break
		}
	}

	parent := innermostParent(stack)
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		// Receiver: v.Release() / v.End() releases; any other selector
		// (method call, field read) neither releases nor transfers.
		if call, ok := grandParentCall(stack, sel); ok && call.Fun == sel && sel.Sel.Name == release {
			return pairUse{kind: useRelease, pos: pos}
		}
		return pairUse{kind: useNeutral, pos: pos}
	}
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		return pairUse{kind: useNeutral, pos: pos} // comparison / arithmetic
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return pairUse{kind: useReassign, pos: pos}
			}
		}
		return pairUse{kind: useEscape, pos: pos} // RHS: aliased elsewhere
	}
	// Call argument, return value, composite literal, &v, channel send,
	// map/slice store, ...: ownership visibly moves.
	return pairUse{kind: useEscape, pos: pos}
}

// innermostParent returns the closest ancestor, unwrapping parens.
func innermostParent(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// grandParentCall finds the CallExpr directly wrapping sel, if any.
func grandParentCall(stack []ast.Node, sel *ast.SelectorExpr) (*ast.CallExpr, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == sel {
			continue
		}
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		call, ok := stack[i].(*ast.CallExpr)
		return call, ok
	}
	return nil, false
}

// leakPath reports whether some path from the acquire site reaches a
// function exit without passing any cover position (a release, a deferred
// release, or an ownership transfer).
func leakPath(g *cfg.CFG, acquire token.Pos, covers []token.Pos) bool {
	covered := func(n ast.Node) bool {
		for _, p := range covers {
			if n.Pos() <= p && p < n.End() {
				return true
			}
		}
		return false
	}
	// Locate the block and node index holding the acquire call.
	var start *cfg.Block
	startIdx := 0
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= acquire && acquire < n.End() {
				start, startIdx = b, i+1
			}
		}
	}
	if start == nil {
		return false // acquire not in the CFG (dead code)
	}
	visited := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block, from int) bool
	walk = func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			if covered(b.Nodes[i]) {
				return false // this path pairs up
			}
		}
		if len(b.Succs) == 0 {
			return isExitBlock(b) // fell off an exit uncovered → leak
		}
		for _, s := range b.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(start, startIdx)
}

// isExitBlock distinguishes genuine function exits from blocks whose
// successors were pruned because they end in panic/Fatal-style calls —
// leaking on a path that dies with the process is not a pairing bug.
func isExitBlock(b *cfg.Block) bool {
	if b.Return() != nil {
		return true
	}
	if len(b.Nodes) == 0 {
		return true
	}
	if stmt, ok := b.Nodes[len(b.Nodes)-1].(*ast.ExprStmt); ok {
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok && isNoReturnCall(call) {
			return false
		}
	}
	return true
}

// isNoReturnCall matches the calls the CFG builder treats as not
// returning: panic and the conventional Fatal/Exit family.
func isNoReturnCall(call *ast.CallExpr) bool {
	var name string
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	switch name {
	case "panic", "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit", "Panic", "Panicf", "Panicln":
		return true
	}
	return false
}

// callName renders the acquire call for diagnostics ("tensor.NewPooled").
func callName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
