package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// walltimeExempt lists the packages whose whole job is measuring wall time.
var walltimeExempt = newPathList(
	modulePath+"/internal/obs",
	modulePath+"/internal/perf",
)

// Walltime rejects time.Now/time.Since outside the observability and perf
// layers; deadline-handling code opts out per site with a justified
// //oasis:allow-walltime directive.
var Walltime = &analysis.Analyzer{
	Name: walltimeName,
	Doc: "forbid wall-clock reads outside internal/obs and internal/perf\n\n" +
		"A time.Now in a report path makes output depend on the machine rather\n" +
		"than the scenario. Timing belongs to the obs/perf layers; genuine\n" +
		"deadline and backoff code annotates each site with\n" +
		"//oasis:allow-walltime <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWalltime,
}

func init() {
	Walltime.Flags.Var(walltimeExempt, "exempt", "comma-separated import-path prefixes exempt from the check")
}

func runWalltime(pass *analysis.Pass) (any, error) {
	if walltimeExempt.matches(pass.Pkg.Path()) {
		return nil, nil
	}
	dir := parseDirectives(pass, walltimeName)
	defer dir.reportBare()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !isClockFunc(fn) {
			return
		}
		if skippablePos(pass, sel.Pos()) || dir.allowed(sel.Pos()) {
			return
		}
		pass.Reportf(sel.Pos(), "wall-clock time.%s outside obs/perf: route timing through internal/obs or annotate deadline code with //oasis:allow-walltime <reason>", fn.Name())
	})
	return nil, nil
}
