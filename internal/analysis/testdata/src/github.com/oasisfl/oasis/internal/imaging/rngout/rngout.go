// Package rngout sits outside the deterministic core: rngdiscipline's
// scope does not cover internal/imaging, so nothing here is flagged.
package rngout

import "math/rand"

func Jitter() float64 { return rand.Float64() }
