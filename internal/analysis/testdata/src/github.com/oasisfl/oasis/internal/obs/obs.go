// Package obs is a stub of the real internal/obs tracing API, placed at
// the real import path so spanpair's defaults apply unchanged.
package obs

import "context"

type Attr struct {
	Key   string
	Value any
}

func String(k, v string) Attr { return Attr{Key: k, Value: v} }

type Span struct{}

func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return ctx, nil
}

func (sp *Span) End() {}

func (sp *Span) SetAttr(attrs ...Attr) {}
