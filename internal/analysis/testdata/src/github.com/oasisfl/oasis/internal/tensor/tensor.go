// Package tensor is a stub of the real internal/tensor arena API, placed
// at the real import path so poolpair's defaults apply unchanged.
package tensor

type Tensor struct{ data []float64 }

func NewPooled(shape ...int) *Tensor { return &Tensor{} }

func New(shape ...int) *Tensor { return &Tensor{} }

func (t *Tensor) ClonePooled() *Tensor { return &Tensor{} }

func (t *Tensor) Release() {}

func (t *Tensor) Sum() float64 { return 0 }

func (t *Tensor) Scale(f float64) {}
