// Package wtexempt lives under internal/obs, which walltime exempts
// wholesale: its job is measuring wall time. Nothing here is flagged.
package wtexempt

import "time"

func Stamp() time.Time { return time.Now() }

func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
