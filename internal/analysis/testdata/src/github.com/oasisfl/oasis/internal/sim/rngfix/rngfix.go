// Package rngfix exercises rngdiscipline inside the deterministic core
// (its import path is under internal/sim, which the default scope covers).
package rngfix

import (
	"math/rand"
	"time"
)

func badGlobalCall() int {
	return rand.Intn(10) // want `use of global math/rand.Intn`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `use of global math/rand.Shuffle`
}

func badGlobalValue() func() float64 {
	return rand.Float64 // want `use of global math/rand.Float64`
}

func badTimeSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `time-seeded RNG source`
}

// okKeyed is the blessed pattern: an explicit source derived from the
// scenario key. No diagnostic.
func okKeyed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// okStream draws from an explicit stream. No diagnostic.
func okStream(r *rand.Rand) int {
	return r.Intn(10)
}

func allowDirective() int {
	return rand.Intn(3) //oasis:allow-rngdiscipline demo shim outside any report path
}
