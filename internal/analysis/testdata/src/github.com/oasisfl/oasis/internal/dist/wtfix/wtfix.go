// Package wtfix exercises walltime and its directive grammar.
package wtfix

import "time"

func badNow() time.Time {
	return time.Now() // want `wall-clock time.Now`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time.Since`
}

func okSameLine() time.Time {
	return time.Now() //oasis:allow-walltime lease deadlines are wall-clock by design
}

func okLineAbove() time.Time {
	//oasis:allow-walltime exchange timeout arithmetic
	return time.Now()
}

//oasis:allow-walltime the whole poller is deadline code
func okFuncDoc() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

func badBareDirective() time.Time {
	return time.Now() //oasis:allow-walltime // want `wall-clock time.Now` `needs a justification`
}
