// Package poolfix exercises poolpair: arena tensors must reach Release on
// every path or visibly transfer ownership.
package poolfix

import "github.com/oasisfl/oasis/internal/tensor"

func consume(t *tensor.Tensor) {}

// okDefer releases via defer; every path is covered.
func okDefer(n int) float64 {
	t := tensor.NewPooled(n)
	defer t.Release()
	return t.Sum()
}

// okStraightLine releases on the only path.
func okStraightLine(n int) float64 {
	t := tensor.NewPooled(n)
	s := t.Sum()
	t.Release()
	return s
}

// okBothBranches releases on each branch before returning.
func okBothBranches(n int) float64 {
	t := tensor.NewPooled(n)
	if n > 3 {
		t.Release()
		return 0
	}
	s := t.Sum()
	t.Release()
	return s
}

// okTransferReturn hands ownership to the caller.
func okTransferReturn(n int) *tensor.Tensor {
	t := tensor.NewPooled(n)
	t.Scale(2)
	return t
}

// okTransferArg hands ownership to another function.
func okTransferArg(n int) {
	t := tensor.NewPooled(n)
	consume(t)
}

// okDeferHelper releases inside a deferred function literal — the
// "deferred Release in helper" false-positive guard.
func okDeferHelper(n int) float64 {
	t := tensor.NewPooled(n)
	defer func() { t.Release() }()
	return t.Sum()
}

func badNeverReleased(n int) float64 {
	t := tensor.NewPooled(n) // want `pooled tensor "t" from tensor.NewPooled never reaches Release`
	return t.Sum()
}

func badEarlyReturn(n int) float64 {
	t := tensor.NewPooled(n) // want `does not reach Release on every path`
	if n > 3 {
		return 0
	}
	s := t.Sum()
	t.Release()
	return s
}

func badDiscard(n int) {
	tensor.NewPooled(n) // want `pooled tensor from tensor.NewPooled is discarded`
}

func badClone(src *tensor.Tensor) float64 {
	c := src.ClonePooled() // want `pooled tensor "c" from src.ClonePooled never reaches Release`
	return c.Sum()
}

func allowDirective(n int) float64 {
	t := tensor.NewPooled(n) //oasis:allow-poolpair ownership documented elsewhere
	return t.Sum()
}
