// Package spanfix exercises spanpair: every obs.Start must pair with
// Span.End on all paths.
package spanfix

import (
	"context"

	"github.com/oasisfl/oasis/internal/obs"
)

func work(ctx context.Context) {}

// okDefer is the canonical pattern.
func okDefer(ctx context.Context) {
	ctx, sp := obs.Start(ctx, "round")
	defer sp.End()
	work(ctx)
}

// okAllPaths ends the span explicitly on each branch.
func okAllPaths(ctx context.Context, n int) {
	_, sp := obs.Start(ctx, "round")
	if n > 0 {
		sp.End()
		return
	}
	sp.End()
}

// okHandoff visibly transfers the span to another owner.
func okHandoff(ctx context.Context) (context.Context, *obs.Span) {
	ctx, sp := obs.Start(ctx, "lease")
	return ctx, sp
}

func badEarlyReturn(ctx context.Context, n int) {
	_, sp := obs.Start(ctx, "round") // want `does not reach End on every path`
	if n > 0 {
		return
	}
	sp.End()
}

func badNeverEnded(ctx context.Context) {
	ctx, sp := obs.Start(ctx, "round") // want `tracing span "sp" from obs.Start never reaches End`
	sp.SetAttr(obs.String("k", "v"))
	work(ctx)
}

func badDiscard(ctx context.Context) context.Context {
	ctx, _ = obs.Start(ctx, "round") // want `tracing span from obs.Start is discarded`
	return ctx
}

func allowDirective(ctx context.Context) {
	_, sp := obs.Start(ctx, "shutdown") //oasis:allow-spanpair ended by the session teardown
	sp.SetAttr(obs.String("k", "v"))
}
