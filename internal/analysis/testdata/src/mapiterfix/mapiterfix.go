// Package mapiterfix exercises mapiter: order-sensitive sinks inside map
// ranges, the collect-then-sort idiom, and the directive escape.
package mapiterfix

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration`
	}
	return out
}

// okCollectSort is the blessed idiom: collect, then sort before anything
// observes the order. No diagnostic.
func okCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// okSortSlice is the same idiom with sort.Slice over struct rows.
func okSortSlice(m map[string]float64) []row {
	rows := make([]row, 0, len(m))
	for k, v := range m {
		rows = append(rows, row{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	return rows
}

type row struct {
	key string
	val float64
}

// okSortedBeforeRange iterates a pre-sorted key slice and indexes the map;
// no map range is involved, so nothing fires.
func okSortedBeforeRange(m map[string]int) []int {
	keys := okCollectSort(m)
	var vals []int
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	return vals
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside map iteration`
	}
}

func badEncode(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k := range m {
		_ = enc.Encode(k) // want `Encode inside map iteration`
	}
}

func badWrite(w io.Writer, m map[string][]byte) {
	for _, v := range m {
		_, _ = w.Write(v) // want `Write inside map iteration`
	}
}

// okAggregate folds commutatively; order cannot be observed.
func okAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func allowDirective(m map[string]int) []string {
	var out []string
	//oasis:allow-mapiter order is folded into a set afterwards
	for k := range m {
		out = append(out, k)
	}
	return out
}
