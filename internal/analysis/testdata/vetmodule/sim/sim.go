// Package sim carries one violation per analyzer so the e2e test can assert
// that the real `go vet -vettool` pipeline reports each of them with a
// file:line position.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"vetfixture/obs"
	"vetfixture/tensor"
)

// BadRand uses the global math/rand stream. (rngdiscipline)
func BadRand() int {
	return rand.Intn(10)
}

// BadClock reads the wall clock outside obs. (walltime)
func BadClock() time.Time {
	return time.Now()
}

// BadMapIter prints in map order. (mapiter)
func BadMapIter(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// BadPool leaks a pooled tensor. (poolpair)
func BadPool() float64 {
	t := tensor.NewPooled(8)
	return t.Sum()
}

// BadSpan never ends its span. (spanpair)
func BadSpan(ctx context.Context) string {
	_, sp := obs.Start(ctx, "round")
	return sp.Name()
}
