// Package clean follows every contract; the e2e test asserts that vetting
// it alone succeeds with no diagnostics.
package clean

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"vetfixture/obs"
	"vetfixture/tensor"
)

// Keyed draws from an explicit seeded stream.
func Keyed(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// SortedIter sorts keys before emitting.
func SortedIter(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// PooledRoundTrip releases what it acquires.
func PooledRoundTrip() float64 {
	t := tensor.NewPooled(8)
	defer t.Release()
	return t.Sum()
}

// Traced pairs Start with End.
func Traced(ctx context.Context) {
	_, sp := obs.Start(ctx, "round")
	defer sp.End()
}
