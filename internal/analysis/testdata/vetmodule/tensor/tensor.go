// Package tensor is a stdlib-only stand-in for the real pooled tensor
// package, selected in the e2e test via -poolpair.pkg=vetfixture/tensor.
package tensor

// Tensor is a minimal pooled buffer.
type Tensor struct {
	Data []float64
}

// NewPooled acquires a tensor that must be Released.
func NewPooled(n int) *Tensor { return &Tensor{Data: make([]float64, n)} }

// Release returns the tensor to the pool.
func (t *Tensor) Release() {}

// Sum is an arbitrary read so fixtures can "use" a tensor.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}
