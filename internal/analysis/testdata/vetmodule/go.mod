module vetfixture

go 1.24
