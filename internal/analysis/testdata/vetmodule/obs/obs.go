// Package obs is a stdlib-only stand-in for the real tracing package,
// selected in the e2e test via -spanpair.pkg=vetfixture/obs (and exempted
// from walltime via -walltime.exempt=vetfixture/obs).
package obs

import (
	"context"
	"time"
)

// Span is a minimal tracing span.
type Span struct {
	name  string
	start time.Time
}

// Start opens a span. The exempt flag makes this package's own clock reads
// legal; everyone else must pair Start with End.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name, start: time.Now()}
}

// End closes the span.
func (s *Span) End() {}

// Name returns the span name.
func (s *Span) Name() string { return s.name }
