package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The e2e test exercises the real delivery vehicle: it builds cmd/oasis-vet
// and drives it through `go vet -vettool` over the self-contained fixture
// module in testdata/vetmodule, exactly as CI does over the repo. The
// fixture module is stdlib-only, so the child go command needs no network
// and no access to this repo's vendor tree.

func buildVetTool(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "oasis-vet")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/oasis-vet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building oasis-vet: %v\n%s", err, out)
	}
	return tool
}

// runVet runs `go vet -vettool` over pkgs inside testdata/vetmodule with
// the analyzer scopes re-pointed at the fixture module's import paths.
func runVet(t *testing.T, tool string, pkgs ...string) (string, error) {
	t.Helper()
	args := []string{
		"vet", "-vettool=" + tool,
		"-rngdiscipline.scope=vetfixture",
		"-walltime.exempt=vetfixture/obs",
		"-poolpair.pkg=vetfixture/tensor",
		"-spanpair.pkg=vetfixture/obs",
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = filepath.Join("testdata", "vetmodule")
	// Neutralize any flags inherited from the parent build (-mod=vendor
	// would break the standalone fixture module).
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GOWORK=off")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestVetE2EReportsEveryAnalyzer(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	tool := buildVetTool(t)
	out, err := runVet(t, tool, "./...")
	if err == nil {
		t.Fatalf("go vet succeeded over a module with known violations; output:\n%s", out)
	}
	// One diagnostic per analyzer, each anchored to a file:line:col position
	// in the violating package.
	for name, frag := range map[string]string{
		"rngdiscipline": `use of global math/rand\.Intn`,
		"walltime":      `wall-clock time\.Now`,
		"mapiter":       `fmt\.Println inside map iteration`,
		"poolpair":      `pooled tensor .* never reaches Release`,
		"spanpair":      `tracing span .* never reaches End`,
	} {
		rx := regexp.MustCompile(`sim[/\\]sim\.go:\d+:\d+: ` + frag)
		if !rx.MatchString(out) {
			t.Errorf("%s: no diagnostic matching %q with a file:line position; output:\n%s", name, rx, out)
		}
	}
	if strings.Contains(out, "clean.go") {
		t.Errorf("clean package was flagged:\n%s", out)
	}
}

func TestVetE2ECleanPackagePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	tool := buildVetTool(t)
	out, err := runVet(t, tool, "./clean")
	if err != nil {
		t.Fatalf("go vet over the clean package failed: %v\n%s", err, out)
	}
}
