// Package analysistest is a self-contained, offline reimplementation of
// the golang.org/x/tools/go/analysis/analysistest harness: it loads
// GOPATH-style fixture packages from a testdata directory, runs an
// analyzer (and its transitive Requires) over them, and compares the
// diagnostics against `// want "regexp"` comments in the fixture sources.
//
// The real analysistest depends on go/packages, which is not part of the
// toolchain's vendored x/tools subset this repository builds against, so
// this package reimplements the subset the oasis-vet suites need:
//
//   - fixtures live under <testdata>/src/<import/path>/*.go, and may
//     import each other by that path (stub tensor/obs packages live at
//     their real import paths so analyzer defaults apply unchanged);
//   - standard-library imports are type-checked from GOROOT source via
//     go/importer's "source" compiler, so no network or export data is
//     required;
//   - a `// want` comment holds one or more quoted regular expressions,
//     each of which must match a diagnostic reported on that line, and
//     every diagnostic must be matched by some want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory, mirroring the real analysistest API.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package below dir/src, applies a (running its
// Requires first), and checks diagnostics against want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := runAnalyzer(l, pkg, a)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, l.fset, pkg, diags)
	}
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves fixture packages from testdata/src and everything else
// from GOROOT source.
type loader struct {
	dir    string // testdata root
	fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*loadedPkg
	loadin map[string]bool // import cycle guard
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		dir:    dir,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:   make(map[string]*loadedPkg),
		loadin: make(map[string]bool),
	}
}

// Import implements types.Importer over the fixture tree with a
// standard-library fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(l.fixtureDir(path)); err == nil && fi.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

func (l *loader) fixtureDir(path string) string {
	return filepath.Join(l.dir, "src", filepath.FromSlash(path))
}

// load parses and type-checks one fixture package (memoized).
func (l *loader) load(path string) (*loadedPkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loadin[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loadin[path] = true
	defer delete(l.loadin, path)

	dir := l.fixtureDir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &loadedPkg{path: path, files: files, types: tpkg, info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// runAnalyzer executes a and its transitive Requires over pkg, returning
// a's diagnostics.
func runAnalyzer(l *loader, pkg *loadedPkg, a *analysis.Analyzer) ([]analysis.Diagnostic, error) {
	results := make(map[*analysis.Analyzer]any)
	var diags []analysis.Diagnostic
	objFacts := make(map[types.Object]analysis.Fact)

	var run func(a *analysis.Analyzer) error
	run = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pkg.files,
			Pkg:        pkg.types,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   make(map[*analysis.Analyzer]any),
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
			ReadFile: os.ReadFile,
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				_, ok := objFacts[obj]
				return ok
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				objFacts[obj] = fact
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool { return false },
			ExportPackageFact: func(fact analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}

	// Dependency diagnostics are discarded: only the analyzer under test
	// reports into the collected set.
	var keep []analysis.Diagnostic
	collect := func(target *analysis.Analyzer) error {
		for _, req := range target.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		diags = nil
		if err := run(target); err != nil {
			return err
		}
		keep = diags
		return nil
	}
	if err := collect(a); err != nil {
		return nil, err
	}
	return keep, nil
}

// wantRx extracts the quoted regexps from a `// want` comment.
var wantRx = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// wantMarkerRx locates the `want` marker within a comment.
var wantMarkerRx = regexp.MustCompile(`(?:^//|\s)want\s`)

// checkWants matches diagnostics against the fixture's want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkg *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may trail other comment text (e.g. after a
				// bare directive under test), so find it anywhere.
				idx := wantMarkerRx.FindStringIndex(c.Text)
				if idx == nil {
					continue
				}
				p := fset.Position(c.Pos())
				for _, q := range wantRx.FindAllString(c.Text[idx[1]:], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", p.Filename, p.Line, q, err)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pat, err)
						continue
					}
					k := key{p.Filename, p.Line}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}

	var missed []string
	for k, rxs := range wants {
		for _, rx := range rxs {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, rx))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
