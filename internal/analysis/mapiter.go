package analysis

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapIter flags map iteration whose body feeds an order-sensitive sink
// (slice append, printing, io writes, JSON/gob encoding) without a
// subsequent sort — the bug class that silently breaks report
// byte-identity.
var MapIter = &analysis.Analyzer{
	Name: mapiterName,
	Doc: "flag map iteration that feeds order-sensitive sinks unsorted\n\n" +
		"Go randomizes map iteration order, so a range over a map that appends\n" +
		"to a slice, prints, writes, or encodes produces different bytes on\n" +
		"every run unless the collected data is sorted afterwards. The\n" +
		"collect-keys-then-sort idiom is recognized and not flagged.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapIter,
}

// mapSink is one order-sensitive operation found in a map-range body.
type mapSink struct {
	pos  ast.Node
	desc string // human-readable sink description
	// appendTo is the printed form of the append target when the sink is
	// an append; sorting that expression later in the function clears it.
	appendTo string
}

func runMapIter(pass *analysis.Pass) (any, error) {
	dir := parseDirectives(pass, mapiterName)
	defer dir.reportBare()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		if skippablePos(pass, rs.Pos()) {
			return true
		}
		body := enclosingFuncBody(stack)
		for _, sink := range mapSinks(pass.TypesInfo, rs) {
			if sink.appendTo != "" && sortedAfter(pass.TypesInfo, body, rs, sink.appendTo) {
				continue
			}
			if dir.allowed(sink.pos.Pos()) || dir.allowed(rs.Pos()) {
				continue
			}
			pass.Reportf(sink.pos.Pos(), "%s inside map iteration: order is nondeterministic; sort first (or annotate //oasis:allow-mapiter <reason>)", sink.desc)
		}
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function on the
// inspector stack, or nil at file scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// mapSinks collects the order-sensitive operations in a map-range body.
// Nested map ranges report through their own visit, but their bodies are
// still order-sensitive parts of the outer loop, so they are not excluded.
func mapSinks(info *types.Info, rs *ast.RangeStmt) []mapSink {
	var sinks []mapSink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(n.Lhs) {
					continue
				}
				target := types.ExprString(n.Lhs[i])
				sinks = append(sinks, mapSink{pos: n, desc: "append to " + target, appendTo: target})
			}
		case *ast.CallExpr:
			if desc, ok := orderSensitiveCall(info, n); ok {
				sinks = append(sinks, mapSink{pos: n, desc: desc})
			}
		}
		return true
	})
	return sinks
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderSensitiveCall classifies calls that emit bytes whose order the
// caller observes: fmt printing, JSON/gob encoding, and io-style writes.
func orderSensitiveCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := typeutilCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case pkg == "fmt" && !isMethod:
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "fmt." + name, true
		}
	case pkg == "encoding/json" && !isMethod && (name == "Marshal" || name == "MarshalIndent"):
		return "json." + name, true
	case (pkg == "encoding/json" || pkg == "encoding/gob") && isMethod && name == "Encode":
		return pkg + " Encode", true
	case isMethod && (name == "Write" || name == "WriteString"):
		return fmt.Sprintf("(%s).%s", sig.Recv().Type(), name), true
	}
	return "", false
}

// sortedAfter reports whether target (the printed form of an append
// destination) is passed to a sort/slices call after the range statement in
// the same function — the collect-then-sort idiom.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, target string) bool {
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rs.End() {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutilCallee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(sub ast.Node) bool {
				if e, ok := sub.(ast.Expr); ok && types.ExprString(e) == target {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}
