package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
)

// poolPkg is the package whose arena constructors poolpair tracks.
var poolPkg = newPathList(modulePath + "/internal/tensor")

// PoolPair verifies that every tensor drawn from the workspace arena
// (tensor.NewPooled, (*Tensor).ClonePooled) reaches Release on every path
// or visibly transfers ownership.
var PoolPair = &analysis.Analyzer{
	Name: poolpairName,
	Doc: "pair every tensor.NewPooled/ClonePooled with a Release on all paths\n\n" +
		"A pooled tensor that leaks on an early-return path silently defeats the\n" +
		"workspace arena: allocation volume starts scaling with population size\n" +
		"again. Acquired tensors must be Released (directly or deferred) on every\n" +
		"path, or ownership must visibly transfer (returned, stored, or passed).",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runPoolPair,
}

func init() {
	PoolPair.Flags.Var(poolPkg, "pkg", "import path(s) of the tensor package providing NewPooled/ClonePooled/Release")
}

func runPoolPair(pass *analysis.Pass) (any, error) {
	return runPairFlow(pass, pairRule{
		name:    poolpairName,
		what:    "pooled tensor",
		release: "Release",
		remedy:  "call Release (or defer it), transfer ownership, or annotate //oasis:allow-poolpair <reason>",
		acquire: func(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
			fn := typeutilCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !poolPkg.matches(fn.Pkg().Path()) {
				return 0, false
			}
			switch fn.Name() {
			case "NewPooled":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					return 0, true
				}
			case "ClonePooled":
				return 0, true
			}
			return 0, false
		},
	})
}
