package analysis_test

import (
	"testing"

	oasisvet "github.com/oasisfl/oasis/internal/analysis"
	"github.com/oasisfl/oasis/internal/analysis/analysistest"
)

// Each analyzer gets a golden fixture suite: at least one true positive,
// one false-positive guard, and directive handling where applicable. The
// fixtures live in GOPATH-style layout under testdata/src; the stub
// tensor/obs packages sit at their real import paths so the analyzers run
// with production defaults.

func TestRNGDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), oasisvet.RNGDiscipline,
		"github.com/oasisfl/oasis/internal/sim/rngfix",
		// Out-of-scope package: same violations, zero diagnostics.
		"github.com/oasisfl/oasis/internal/imaging/rngout",
	)
}

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), oasisvet.Walltime,
		"github.com/oasisfl/oasis/internal/dist/wtfix",
		// Exempt package: wall-clock reads are its job.
		"github.com/oasisfl/oasis/internal/obs/wtexempt",
	)
}

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), oasisvet.MapIter, "mapiterfix")
}

func TestPoolPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), oasisvet.PoolPair, "poolfix")
}

func TestSpanPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), oasisvet.SpanPair, "spanfix")
}
