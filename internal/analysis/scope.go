package analysis

import "strings"

// modulePath anchors the default scopes; the flags exist so the
// analysistest fixtures (and any future rename) can point elsewhere.
const modulePath = "github.com/oasisfl/oasis"

// pathList is a flag.Value holding comma-separated import-path prefixes.
type pathList struct {
	prefixes []string
}

func newPathList(prefixes ...string) *pathList { return &pathList{prefixes: prefixes} }

func (p *pathList) String() string { return strings.Join(p.prefixes, ",") }

func (p *pathList) Set(v string) error {
	p.prefixes = nil
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			p.prefixes = append(p.prefixes, s)
		}
	}
	return nil
}

// matches reports whether pkgPath is one of the prefixes or nested below
// one. Go vet analyzes a package's test variant under the same import path,
// so no special-casing is needed for in-package tests; external test
// packages contain only _test.go files, which the analyzers skip anyway.
func (p *pathList) matches(pkgPath string) bool {
	for _, pre := range p.prefixes {
		if pkgPath == pre || strings.HasPrefix(pkgPath, pre+"/") {
			return true
		}
	}
	return false
}
