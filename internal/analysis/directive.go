package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// directivePrefix is the comment marker all escape directives share:
// //oasis:allow-<analyzer> <justification>.
const directivePrefix = "oasis:allow-"

// A directive is one parsed //oasis:allow-* comment.
type directive struct {
	check  string // analyzer name, e.g. "walltime"
	reason string // justification text; "" means the directive is invalid
	pos    token.Pos
	line   int
}

// directiveIndex holds, for one pass and one analyzer, every matching
// directive plus the source ranges it exempts.
type directiveIndex struct {
	pass       *analysis.Pass
	check      string
	lines      map[string]map[int]bool // filename -> set of directive lines with a reason
	funcRanges [][2]token.Pos          // [start,end) of functions exempted via doc comment
	bare       []directive             // directives missing a justification
}

// parseDirectives scans the pass's files for //oasis:allow-<check>
// directives and returns an index the analyzer queries with allowed.
func parseDirectives(pass *analysis.Pass, check string) *directiveIndex {
	idx := &directiveIndex{pass: pass, check: check, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirectiveComment(c)
				if !ok || d.check != check {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if d.reason == "" {
					d.pos, d.line = c.Pos(), p.Line
					idx.bare = append(idx.bare, d)
					continue
				}
				m := idx.lines[p.Filename]
				if m == nil {
					m = make(map[int]bool)
					idx.lines[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
		// A directive in a function's doc comment exempts the whole body.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if d, ok := parseDirectiveComment(c); ok && d.check == check && d.reason != "" {
					idx.funcRanges = append(idx.funcRanges, [2]token.Pos{fd.Pos(), fd.End()})
				}
			}
		}
	}
	return idx
}

// parseDirectiveComment splits one comment into (check, reason) if it is an
// oasis:allow directive.
func parseDirectiveComment(c *ast.Comment) (directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	check, reason, _ := strings.Cut(rest, " ")
	if check == "" {
		return directive{}, false
	}
	// The justification runs to the end of the comment, but stops at an
	// embedded "//" so trailing annotations don't read as a reason.
	reason, _, _ = strings.Cut(reason, "//")
	return directive{check: check, reason: strings.TrimSpace(reason)}, true
}

// allowed reports whether a diagnostic at pos is suppressed by a directive:
// same line, the line immediately above, or an exempted enclosing function.
func (idx *directiveIndex) allowed(pos token.Pos) bool {
	p := idx.pass.Fset.Position(pos)
	if m := idx.lines[p.Filename]; m != nil && (m[p.Line] || m[p.Line-1]) {
		return true
	}
	for _, r := range idx.funcRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

// reportBare emits one diagnostic per directive that names this analyzer
// but carries no justification — such directives suppress nothing, so the
// tree cannot accumulate silent opt-outs.
func (idx *directiveIndex) reportBare() {
	for _, d := range idx.bare {
		idx.pass.Reportf(d.pos, "oasis:allow-%s directive needs a justification: //oasis:allow-%s <reason>", idx.check, idx.check)
	}
}

// skippableFile reports whether diagnostics in f should be suppressed
// wholesale: test files and generated files are outside the contract.
func skippableFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go") || ast.IsGenerated(f)
}

// skippablePos is skippableFile keyed by a position inside the file.
func skippablePos(pass *analysis.Pass, pos token.Pos) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) == tf {
			return skippableFile(pass, f)
		}
	}
	return false
}
