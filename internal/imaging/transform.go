package imaging

import (
	"fmt"
	"math"
)

// Rotate90, Rotate180 and Rotate270 are the paper's "major rotation" angles.
// They are implemented as exact pixel permutations so that scalar statistics
// (in particular the mean pixel value that the RTF attack measures) are
// preserved to the last bit. Rotations require square images, which all
// datasets in this repository use.

// Rotate90 returns the image rotated 90° counter-clockwise.
func Rotate90(im *Image) *Image {
	mustSquare(im, "Rotate90")
	n := im.H
	out := NewImage(im.C, n, n)
	for c := 0; c < im.C; c++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				out.Set(c, n-1-x, y, im.At(c, y, x))
			}
		}
	}
	return out
}

// Rotate180 returns the image rotated 180°.
func Rotate180(im *Image) *Image {
	out := NewImage(im.C, im.H, im.W)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, im.H-1-y, im.W-1-x, im.At(c, y, x))
			}
		}
	}
	return out
}

// Rotate270 returns the image rotated 270° counter-clockwise.
func Rotate270(im *Image) *Image {
	mustSquare(im, "Rotate270")
	n := im.H
	out := NewImage(im.C, n, n)
	for c := 0; c < im.C; c++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				out.Set(c, x, n-1-y, im.At(c, y, x))
			}
		}
	}
	return out
}

// FlipH returns the horizontal mirror (reflection across the vertical axis),
// Eq. 3 of the paper.
func FlipH(im *Image) *Image {
	out := NewImage(im.C, im.H, im.W)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, y, im.W-1-x, im.At(c, y, x))
			}
		}
	}
	return out
}

// FlipV returns the vertical mirror (reflection across the horizontal axis),
// Eq. 4 of the paper.
func FlipV(im *Image) *Image {
	out := NewImage(im.C, im.H, im.W)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, im.H-1-y, x, im.At(c, y, x))
			}
		}
	}
	return out
}

// Rotate returns the image rotated by theta radians counter-clockwise about
// its center (Eq. 2 of the paper) using inverse mapping with bilinear
// sampling and zero fill, matching torchvision's default behaviour for
// arbitrary ("minor") angles.
func Rotate(im *Image, theta float64) *Image {
	cos, sin := math.Cos(theta), math.Sin(theta)
	cy, cx := float64(im.H-1)/2, float64(im.W-1)/2
	out := NewImage(im.C, im.H, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			// Inverse rotation of the destination coordinate.
			dy, dx := float64(y)-cy, float64(x)-cx
			sy := cy + (dx*sin + dy*cos)
			sx := cx + (dx*cos - dy*sin)
			for c := 0; c < im.C; c++ {
				out.Set(c, y, x, bilinear(im, c, sy, sx))
			}
		}
	}
	return out
}

// Shear returns the image sheared along x by factor mu (Eq. 5 of the paper:
// I'(i,j) = I(i + mu*j, j)), centered, with bilinear sampling and zero fill.
func Shear(im *Image, mu float64) *Image {
	cy := float64(im.H-1) / 2
	out := NewImage(im.C, im.H, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sy := float64(y)
			sx := float64(x) + mu*(float64(y)-cy) // shift columns by row offset
			for c := 0; c < im.C; c++ {
				out.Set(c, y, x, bilinear(im, c, sy, sx))
			}
		}
	}
	return out
}

// bilinear samples channel c of im at fractional coordinates (y, x) with
// zero fill outside the raster.
func bilinear(im *Image, c int, y, x float64) float64 {
	y0 := int(math.Floor(y))
	x0 := int(math.Floor(x))
	fy := y - float64(y0)
	fx := x - float64(x0)
	get := func(yy, xx int) float64 {
		if yy < 0 || yy >= im.H || xx < 0 || xx >= im.W {
			return 0
		}
		return im.At(c, yy, xx)
	}
	v00 := get(y0, x0)
	v01 := get(y0, x0+1)
	v10 := get(y0+1, x0)
	v11 := get(y0+1, x0+1)
	return v00*(1-fy)*(1-fx) + v01*(1-fy)*fx + v10*fy*(1-fx) + v11*fy*fx
}

func mustSquare(im *Image, op string) {
	if im.H != im.W {
		panic(fmt.Sprintf("imaging: %s requires a square image, got %dx%d", op, im.H, im.W))
	}
}
