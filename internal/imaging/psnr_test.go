package imaging

import (
	"math"
	rand "math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPSNRIdenticalHitsCap(t *testing.T) {
	im := randImage(1, 3, 8, 8)
	if got := PSNR(im, im.Clone()); got != PSNRCap {
		t.Errorf("PSNR(identical) = %g, want cap %g", got, PSNRCap)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := NewImage(1, 2, 2)
	b := NewImage(1, 2, 2)
	for i := range b.Pix {
		b.Pix[i] = 0.1 // uniform error of 0.1 ⇒ MSE = 0.01 ⇒ PSNR = 20 dB
	}
	if got := PSNR(a, b); math.Abs(got-20) > 1e-9 {
		t.Errorf("PSNR = %g, want 20", got)
	}
}

func TestPSNRSymmetric(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		a := randImage(seed, 3, 6, 6)
		b := randImage(seed+1, 3, 6, 6)
		return PSNR(a, b) == PSNR(b, a)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestPSNRMonotoneInNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	ref := randImage(3, 3, 8, 8)
	prev := math.Inf(1)
	for _, std := range []float64{0.01, 0.05, 0.2} {
		noisy := ref.Clone()
		for i := range noisy.Pix {
			noisy.Pix[i] += rng.NormFloat64() * std
		}
		p := PSNR(noisy, ref)
		if p >= prev {
			t.Errorf("PSNR did not decrease with noise: %g then %g", prev, p)
		}
		prev = p
	}
}

func TestMSEDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MSE across dimensions did not panic")
		}
	}()
	MSE(NewImage(1, 2, 2), NewImage(1, 3, 3))
}

func TestBestMatchFindsClosest(t *testing.T) {
	refs := []*Image{randImage(10, 3, 6, 6), randImage(11, 3, 6, 6), randImage(12, 3, 6, 6)}
	probe := refs[1].Clone()
	probe.Pix[0] += 0.001
	idx, p := BestMatch(probe, refs)
	if idx != 1 {
		t.Errorf("BestMatch index = %d, want 1", idx)
	}
	if p < 50 {
		t.Errorf("BestMatch PSNR = %g, suspiciously low", p)
	}
}

func TestBestMatchSkipsMismatchedDims(t *testing.T) {
	refs := []*Image{NewImage(1, 4, 4), NewImage(3, 6, 6)}
	probe := NewImage(3, 6, 6)
	idx, _ := BestMatch(probe, refs)
	if idx != 1 {
		t.Errorf("BestMatch index = %d, want 1 (dims filter)", idx)
	}
	if idx, _ := BestMatch(NewImage(2, 2, 2), refs); idx != -1 {
		t.Errorf("BestMatch with no candidates = %d, want -1", idx)
	}
}

func TestBlendIsAverage(t *testing.T) {
	a := NewImage(1, 1, 2)
	a.Pix[0], a.Pix[1] = 0.2, 0.4
	b := NewImage(1, 1, 2)
	b.Pix[0], b.Pix[1] = 0.6, 0.8
	m := Blend(a, b)
	if math.Abs(m.Pix[0]-0.4) > 1e-12 || math.Abs(m.Pix[1]-0.6) > 1e-12 {
		t.Errorf("Blend = %v", m.Pix)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := randImage(20, 3, 4, 4)
	b := randImage(21, 3, 4, 4)
	if !imagesEqual(Lerp(a, b, 0), a) {
		t.Error("Lerp(0) != a")
	}
	if !imagesEqual(Lerp(a, b, 1), b) {
		t.Error("Lerp(1) != b")
	}
}

// TestBlendPSNRMatchesAttackIntuition codifies the paper's Figure 2: a blend
// of an image with unrelated content has drastically lower PSNR than a
// verbatim copy.
func TestBlendPSNRMatchesAttackIntuition(t *testing.T) {
	orig := randImage(30, 3, 16, 16)
	other := randImage(31, 3, 16, 16)
	blend := Blend(orig, other)
	if p := PSNR(blend, orig); p > 30 {
		t.Errorf("blend PSNR = %g dB, expected unrecognizable (< 30)", p)
	}
	if p := PSNR(orig.Clone(), orig); p != PSNRCap {
		t.Errorf("verbatim PSNR = %g, want cap", p)
	}
}

func TestImageVectorRoundTrip(t *testing.T) {
	im := randImage(40, 3, 4, 5)
	v := im.Vector()
	back, err := FromVector(v.Data(), 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(im, back) {
		t.Error("Vector/FromVector round trip failed")
	}
	if _, err := FromVector([]float64{1, 2}, 1, 2, 2); err == nil {
		t.Error("FromVector length mismatch did not error")
	}
}

func TestClampBounds(t *testing.T) {
	im := NewImage(1, 1, 3)
	im.Pix[0], im.Pix[1], im.Pix[2] = -0.5, 0.5, 1.5
	im.Clamp()
	if im.Pix[0] != 0 || im.Pix[1] != 0.5 || im.Pix[2] != 1 {
		t.Errorf("Clamp = %v", im.Pix)
	}
}
