package imaging

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"
)

// ToNRGBA converts the float image to an 8-bit NRGBA raster, clamping to
// [0,1]. 1-channel images are rendered as grayscale; 3-channel images as RGB.
func (im *Image) ToNRGBA() (*image.NRGBA, error) {
	if im.C != 1 && im.C != 3 {
		return nil, fmt.Errorf("imaging: cannot render %d-channel image", im.C)
	}
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	to8 := func(v float64) uint8 {
		if v <= 0 {
			return 0
		}
		if v >= 1 {
			return 255
		}
		return uint8(v*255 + 0.5)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var r, g, b uint8
			if im.C == 1 {
				v := to8(im.At(0, y, x))
				r, g, b = v, v, v
			} else {
				r = to8(im.At(0, y, x))
				g = to8(im.At(1, y, x))
				b = to8(im.At(2, y, x))
			}
			out.SetNRGBA(x, y, color.NRGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return out, nil
}

// WritePNG encodes the image to a PNG file, creating parent directories.
func (im *Image) WritePNG(path string) error {
	raster, err := im.ToNRGBA()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("imaging: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imaging: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, raster); err != nil {
		return fmt.Errorf("imaging: encode %s: %w", path, err)
	}
	return f.Close()
}

// Montage tiles images into a grid with cols columns and a 2-pixel white
// gutter, for the paper's side-by-side original/reconstruction figures.
// All images must share dimensions.
func Montage(imgs []*Image, cols int) (*Image, error) {
	if len(imgs) == 0 {
		return nil, fmt.Errorf("imaging: montage of zero images")
	}
	if cols <= 0 {
		cols = len(imgs)
	}
	c, h, w := imgs[0].C, imgs[0].H, imgs[0].W
	for i, im := range imgs {
		if !im.SameDims(imgs[0]) {
			return nil, fmt.Errorf("imaging: montage image %d has mismatched dimensions", i)
		}
	}
	rows := (len(imgs) + cols - 1) / cols
	const gut = 2
	out := NewImage(c, rows*h+(rows+1)*gut, cols*w+(cols+1)*gut)
	for i := range out.Pix {
		out.Pix[i] = 1 // white background
	}
	for i, im := range imgs {
		r, cl := i/cols, i%cols
		oy := gut + r*(h+gut)
		ox := gut + cl*(w+gut)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					out.Set(ch, oy+y, ox+x, clamp01(im.At(ch, y, x)))
				}
			}
		}
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
