// Package imaging provides the image representation and the geometric
// transforms of the paper's Equations 2–5 (rotation, flipping, shearing),
// plus the PSNR reconstruction-quality metric and PNG export for the visual
// figures.
//
// Images are channel-major float64 planes with values nominally in [0, 1].
// Major rotations (90°/180°/270°) and flips are exact pixel permutations;
// this exactness is load-bearing: the RTF attack bins samples by mean pixel
// value, and the paper's observation that major rotation "does not change the
// average of pixel values" only defeats the attack if the mean is preserved
// exactly.
package imaging

import (
	"fmt"
	"math"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Image is a C×H×W float64 raster with values nominally in [0, 1].
type Image struct {
	C, H, W int
	Pix     []float64 // len C*H*W, channel-major row-major
}

// NewImage returns a black image of the given dimensions.
func NewImage(c, h, w int) *Image {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("imaging: invalid dimensions %dx%dx%d", c, h, w))
	}
	return &Image{C: c, H: h, W: w, Pix: make([]float64, c*h*w)}
}

// FromVector wraps a flat pixel vector (C*H*W) as an image, copying it.
func FromVector(v []float64, c, h, w int) (*Image, error) {
	if len(v) != c*h*w {
		return nil, fmt.Errorf("imaging: vector length %d != %d×%d×%d", len(v), c, h, w)
	}
	img := NewImage(c, h, w)
	copy(img.Pix, v)
	return img, nil
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.C, im.H, im.W)
	copy(c.Pix, im.Pix)
	return c
}

// At returns the pixel value at channel c, row y, column x.
func (im *Image) At(c, y, x int) float64 { return im.Pix[(c*im.H+y)*im.W+x] }

// Set assigns the pixel value at channel c, row y, column x.
func (im *Image) Set(c, y, x int, v float64) { im.Pix[(c*im.H+y)*im.W+x] = v }

// Vector returns the image as a flat tensor of length C*H*W (a copy).
func (im *Image) Vector() *tensor.Tensor {
	return tensor.MustFromSlice(append([]float64(nil), im.Pix...), im.C*im.H*im.W)
}

// Mean returns the mean pixel value over all channels.
func (im *Image) Mean() float64 {
	s := 0.0
	for _, v := range im.Pix {
		s += v
	}
	return s / float64(len(im.Pix))
}

// Clamp limits every pixel to [0, 1] in place and returns the image.
func (im *Image) Clamp() *Image {
	for i, v := range im.Pix {
		im.Pix[i] = math.Max(0, math.Min(1, v))
	}
	return im
}

// SameDims reports whether the two images have identical dimensions.
func (im *Image) SameDims(o *Image) bool {
	return im.C == o.C && im.H == o.H && im.W == o.W
}

// Lerp returns (1−t)·im + t·o; both images must have identical dimensions.
func Lerp(a, b *Image, t float64) *Image {
	if !a.SameDims(b) {
		panic("imaging: Lerp dimension mismatch")
	}
	out := NewImage(a.C, a.H, a.W)
	for i := range out.Pix {
		out.Pix[i] = (1-t)*a.Pix[i] + t*b.Pix[i]
	}
	return out
}

// Blend returns the unweighted average of the given images, which is exactly
// what gradient inversion reconstructs when several samples share a neuron
// (paper §III-A); used in tests and the Figure 2 illustration.
func Blend(imgs ...*Image) *Image {
	if len(imgs) == 0 {
		panic("imaging: Blend of zero images")
	}
	out := NewImage(imgs[0].C, imgs[0].H, imgs[0].W)
	for _, im := range imgs {
		if !im.SameDims(out) {
			panic("imaging: Blend dimension mismatch")
		}
		for i, v := range im.Pix {
			out.Pix[i] += v
		}
	}
	inv := 1.0 / float64(len(imgs))
	for i := range out.Pix {
		out.Pix[i] *= inv
	}
	return out
}
