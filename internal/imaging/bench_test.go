package imaging

import "testing"

func benchImage() *Image { return randImage(1, 3, 64, 64) }

func BenchmarkRotate90(b *testing.B) {
	im := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Rotate90(im)
	}
}

func BenchmarkRotateBilinear45(b *testing.B) {
	im := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Rotate(im, 0.785398)
	}
}

func BenchmarkShear(b *testing.B) {
	im := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Shear(im, 0.55)
	}
}

func BenchmarkPSNR(b *testing.B) {
	x := benchImage()
	y := randImage(2, 3, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PSNR(x, y)
	}
}
