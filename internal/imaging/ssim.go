package imaging

// SSIM stabilization constants for a unit dynamic range (images in [0,1]):
// C1 = (0.01·L)², C2 = (0.03·L)² with L = 1, per Wang et al. 2004.
const (
	ssimC1 = 0.01 * 0.01
	ssimC2 = 0.03 * 0.03
)

// SSIM returns the structural similarity index between a reconstruction and
// a reference of identical dimensions, computed over the whole image as a
// single window (the evaluation images here are small crops, so the global
// statistics are the windowed statistics). The result lies in [-1, 1];
// 1 means structurally identical. Unlike PSNR, SSIM compares luminance,
// contrast and structure jointly, so a reconstruction that is a blended
// mean of several samples (the OASIS failure mode for attacks) scores low
// even when its pixel-wise error is moderate.
func SSIM(recon, ref *Image) float64 {
	if !recon.SameDims(ref) {
		panic("imaging: SSIM dimension mismatch")
	}
	n := float64(len(recon.Pix))
	muA, muB := 0.0, 0.0
	for i := range recon.Pix {
		muA += recon.Pix[i]
		muB += ref.Pix[i]
	}
	muA /= n
	muB /= n
	varA, varB, cov := 0.0, 0.0, 0.0
	for i := range recon.Pix {
		da := recon.Pix[i] - muA
		db := ref.Pix[i] - muB
		varA += da * da
		varB += db * db
		cov += da * db
	}
	varA /= n
	varB /= n
	cov /= n
	return ((2*muA*muB + ssimC1) * (2*cov + ssimC2)) /
		((muA*muA + muB*muB + ssimC1) * (varA + varB + ssimC2))
}

// BestSSIM returns the SSIM between recon and its best-PSNR match among
// refs, following the attack evaluation protocol (reconstructions arrive in
// arbitrary order, so each is paired with its closest original first). It
// returns 0 when no reference shares recon's dimensions.
func BestSSIM(recon *Image, refs []*Image) float64 {
	idx, _ := BestMatch(recon, refs)
	if idx < 0 {
		return 0
	}
	return SSIM(recon, refs[idx])
}

// MeanSSIM averages BestSSIM over a set of reconstructions; it returns 0
// when there are none.
func MeanSSIM(recons, refs []*Image) float64 {
	if len(recons) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range recons {
		s += BestSSIM(r, refs)
	}
	return s / float64(len(recons))
}
