package imaging

import (
	"math"
)

// PSNRCap is the reporting ceiling in dB for (near-)perfect reconstructions.
// PSNR diverges as MSE → 0; the paper's "perfect reconstruction" values top
// out around 148 dB, so we floor the MSE at 1e-15, capping PSNR at 150 dB.
const PSNRCap = 150.0

// mseFloor corresponds to the 150 dB cap with a unit dynamic range.
const mseFloor = 1e-15

// MSE returns the mean squared error between two images of identical
// dimensions.
func MSE(a, b *Image) float64 {
	if !a.SameDims(b) {
		panic("imaging: MSE dimension mismatch")
	}
	s := 0.0
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		s += d * d
	}
	return s / float64(len(a.Pix))
}

// PSNR returns the peak signal-to-noise ratio in dB between a reconstruction
// and a reference, with dynamic range 1.0 (images live in [0,1]) and the MSE
// floored so the result never exceeds PSNRCap. Higher PSNR means better
// reconstruction, i.e. a more successful attack.
func PSNR(recon, ref *Image) float64 {
	mse := MSE(recon, ref)
	if mse <= mseFloor {
		return PSNRCap
	}
	return 10 * math.Log10(1.0/mse)
}

// BestMatch returns the index of the reference image with the highest PSNR
// against recon, along with that PSNR. Gradient inversion recovers images in
// arbitrary order, so attack evaluation matches each reconstruction to its
// closest original, as in the paper's evaluation protocol.
func BestMatch(recon *Image, refs []*Image) (int, float64) {
	bestIdx, bestPSNR := -1, math.Inf(-1)
	for i, ref := range refs {
		if !recon.SameDims(ref) {
			continue
		}
		p := PSNR(recon, ref)
		if p > bestPSNR {
			bestIdx, bestPSNR = i, p
		}
	}
	return bestIdx, bestPSNR
}
