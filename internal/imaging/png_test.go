package imaging

import (
	"image/png"
	"os"
	"path/filepath"
	"testing"
)

func TestWritePNGRoundTrip(t *testing.T) {
	im := randImage(50, 3, 8, 8)
	path := filepath.Join(t.TempDir(), "sub", "test.png")
	if err := im.WritePNG(path); err != nil {
		t.Fatalf("WritePNG: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := png.Decode(f)
	if err != nil {
		t.Fatalf("png.Decode: %v", err)
	}
	if b := decoded.Bounds(); b.Dx() != 8 || b.Dy() != 8 {
		t.Errorf("decoded bounds %v", b)
	}
}

func TestWritePNGGrayscale(t *testing.T) {
	im := randImage(51, 1, 4, 4)
	path := filepath.Join(t.TempDir(), "gray.png")
	if err := im.WritePNG(path); err != nil {
		t.Fatalf("WritePNG 1-channel: %v", err)
	}
}

func TestToNRGBARejectsOddChannels(t *testing.T) {
	if _, err := NewImage(2, 4, 4).ToNRGBA(); err == nil {
		t.Error("2-channel render succeeded")
	}
}

func TestToNRGBAQuantization(t *testing.T) {
	im := NewImage(1, 1, 3)
	im.Pix[0], im.Pix[1], im.Pix[2] = -1, 0.5, 2 // clamps to 0, 127/128, 255
	raster, err := im.ToNRGBA()
	if err != nil {
		t.Fatal(err)
	}
	if c := raster.NRGBAAt(0, 0); c.R != 0 {
		t.Errorf("negative pixel quantized to %d", c.R)
	}
	if c := raster.NRGBAAt(2, 0); c.R != 255 {
		t.Errorf("overflow pixel quantized to %d", c.R)
	}
	if c := raster.NRGBAAt(1, 0); c.R != 128 {
		t.Errorf("0.5 quantized to %d, want 128", c.R)
	}
}

func TestMontageGeometry(t *testing.T) {
	imgs := []*Image{randImage(1, 3, 4, 4), randImage(2, 3, 4, 4), randImage(3, 3, 4, 4)}
	m, err := Montage(imgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 columns × 2 rows of 4px tiles with 2px gutters: 2*4+3*2 = 14 wide,
	// same tall.
	if m.W != 14 || m.H != 14 {
		t.Errorf("montage dims %dx%d, want 14x14", m.H, m.W)
	}
	// First tile's top-left pixel lands at (2,2).
	if m.At(0, 2, 2) != clamp01(imgs[0].At(0, 0, 0)) {
		t.Error("first tile misplaced")
	}
}

func TestMontageErrors(t *testing.T) {
	if _, err := Montage(nil, 2); err == nil {
		t.Error("empty montage succeeded")
	}
	if _, err := Montage([]*Image{NewImage(1, 2, 2), NewImage(1, 3, 3)}, 2); err == nil {
		t.Error("mixed-dimension montage succeeded")
	}
}

func TestMontageDefaultColumns(t *testing.T) {
	imgs := []*Image{randImage(4, 1, 2, 2), randImage(5, 1, 2, 2)}
	m, err := Montage(imgs, 0) // cols <= 0 means one row
	if err != nil {
		t.Fatal(err)
	}
	if m.H != 2+2*2 { // one row: 2px tile + 2 gutters
		t.Errorf("montage height %d, want 6", m.H)
	}
}

func TestWritePGM(t *testing.T) {
	im := randImage(60, 3, 5, 7)
	path := filepath.Join(t.TempDir(), "gray.pgm")
	if err := im.WritePGM(path); err != nil {
		t.Fatalf("WritePGM: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := "P5\n7 5\n255\n"
	if string(raw[:len(wantHeader)]) != wantHeader {
		t.Errorf("PGM header = %q", raw[:len(wantHeader)])
	}
	if len(raw) != len(wantHeader)+5*7 {
		t.Errorf("PGM payload %d bytes, want %d", len(raw)-len(wantHeader), 35)
	}
}

func TestWritePGMGrayscalePassthrough(t *testing.T) {
	im := NewImage(1, 1, 2)
	im.Pix[0], im.Pix[1] = 0, 1
	path := filepath.Join(t.TempDir(), "bw.pgm")
	if err := im.WritePGM(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := raw[len(raw)-2:]
	if payload[0] != 0 || payload[1] != 255 {
		t.Errorf("PGM bytes = %v", payload)
	}
}
