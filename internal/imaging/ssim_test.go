package imaging

import (
	"math"
	rand "math/rand/v2"
	"testing"
)

func ssimTestImage(rng *rand.Rand, c, h, w int) *Image {
	im := NewImage(c, h, w)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

func TestSSIMIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	im := ssimTestImage(rng, 1, 8, 8)
	if got := SSIM(im, im.Clone()); math.Abs(got-1) > 1e-12 {
		t.Errorf("SSIM(x, x) = %g, want 1", got)
	}
}

func TestSSIMRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 50; i++ {
		a := ssimTestImage(rng, 1, 8, 8)
		b := ssimTestImage(rng, 1, 8, 8)
		s := SSIM(a, b)
		if s < -1-1e-12 || s > 1+1e-12 || math.IsNaN(s) {
			t.Fatalf("SSIM outside [-1, 1]: %g", s)
		}
	}
}

func TestSSIMOrdersDegradation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	ref := ssimTestImage(rng, 1, 8, 8)
	slight := ref.Clone()
	heavy := ref.Clone()
	for i := range slight.Pix {
		slight.Pix[i] = clamp01(slight.Pix[i] + 0.02*rng.NormFloat64())
		heavy.Pix[i] = clamp01(heavy.Pix[i] + 0.5*rng.NormFloat64())
	}
	s1, s2 := SSIM(slight, ref), SSIM(heavy, ref)
	if s1 <= s2 {
		t.Errorf("slight noise SSIM %.3f not above heavy noise %.3f", s1, s2)
	}
	if s1 < 0.8 {
		t.Errorf("slight noise SSIM %.3f unexpectedly low", s1)
	}
}

// TestSSIMPenalizesBlending ties the metric to the defense story: the mean
// of two images (what a multiply-activated neuron reconstructs) scores
// clearly below either original.
func TestSSIMPenalizesBlending(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := ssimTestImage(rng, 1, 8, 8)
	b := ssimTestImage(rng, 1, 8, 8)
	blend := Blend(a, b)
	if s := SSIM(blend, a); s > 0.9 {
		t.Errorf("blended reconstruction SSIM %.3f vs original; expected a clear penalty", s)
	}
}

func TestSSIMDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	SSIM(NewImage(1, 2, 2), NewImage(1, 3, 3))
}

func TestBestSSIMAndMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	a := ssimTestImage(rng, 1, 8, 8)
	b := ssimTestImage(rng, 1, 8, 8)
	refs := []*Image{a, b}
	if got := BestSSIM(a.Clone(), refs); math.Abs(got-1) > 1e-12 {
		t.Errorf("BestSSIM of an exact copy = %g, want 1", got)
	}
	if got := BestSSIM(ssimTestImage(rng, 1, 3, 3), refs); got != 0 {
		t.Errorf("BestSSIM with no matching dims = %g, want 0", got)
	}
	if got := MeanSSIM(nil, refs); got != 0 {
		t.Errorf("MeanSSIM of nothing = %g, want 0", got)
	}
	m := MeanSSIM([]*Image{a.Clone(), b.Clone()}, refs)
	if math.Abs(m-1) > 1e-12 {
		t.Errorf("MeanSSIM of exact copies = %g, want 1", m)
	}
}
