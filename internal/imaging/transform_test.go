package imaging

import (
	"math"
	rand "math/rand/v2"
	"testing"
	"testing/quick"
)

func randImage(seed uint64, c, h, w int) *Image {
	rng := rand.New(rand.NewPCG(seed, 99))
	im := NewImage(c, h, w)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

func imagesEqual(a, b *Image) bool {
	if !a.SameDims(b) {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

func TestRotate90FourTimesIsIdentity(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		n := 2 + int(seed%9)
		im := randImage(seed, 3, n, n)
		out := Rotate90(Rotate90(Rotate90(Rotate90(im))))
		return imagesEqual(im, out)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestRotate180IsRotate90Twice(t *testing.T) {
	im := randImage(1, 3, 8, 8)
	if !imagesEqual(Rotate180(im), Rotate90(Rotate90(im))) {
		t.Error("Rotate180 != Rotate90∘Rotate90")
	}
}

func TestRotate270IsInverseOfRotate90(t *testing.T) {
	im := randImage(2, 1, 7, 7)
	if !imagesEqual(Rotate270(Rotate90(im)), im) {
		t.Error("Rotate270∘Rotate90 != identity")
	}
}

// TestMajorRotationsPreserveMean is the load-bearing property behind the
// paper's §IV-B claim: RTF bins samples by mean brightness, and major
// rotation "does not change the average of pixel values". The permutations
// preserve the pixel multiset, so the mean matches up to float64 summation
// reordering (~1e-15) — ten orders of magnitude below RTF's bin widths.
func TestMajorRotationsPreserveMean(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		n := 2 + int(seed%16)
		im := randImage(seed, 3, n, n)
		m := im.Mean()
		const tol = 1e-12
		close := func(v float64) bool { return math.Abs(v-m) <= tol }
		return close(Rotate90(im).Mean()) &&
			close(Rotate180(im).Mean()) &&
			close(Rotate270(im).Mean()) &&
			close(FlipH(im).Mean()) &&
			close(FlipV(im).Mean())
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestFlipsAreInvolutions(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		h, w := 2+int(seed%7), 2+int((seed>>3)%9)
		im := randImage(seed, 3, h, w)
		return imagesEqual(FlipH(FlipH(im)), im) && imagesEqual(FlipV(FlipV(im)), im)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestFlipHMirrorsColumns(t *testing.T) {
	im := NewImage(1, 1, 3)
	im.Set(0, 0, 0, 0.1)
	im.Set(0, 0, 1, 0.5)
	im.Set(0, 0, 2, 0.9)
	f := FlipH(im)
	if f.At(0, 0, 0) != 0.9 || f.At(0, 0, 2) != 0.1 || f.At(0, 0, 1) != 0.5 {
		t.Errorf("FlipH wrong: %v", f.Pix)
	}
}

func TestFlipVMirrorsRows(t *testing.T) {
	im := NewImage(1, 3, 1)
	im.Set(0, 0, 0, 0.1)
	im.Set(0, 1, 0, 0.5)
	im.Set(0, 2, 0, 0.9)
	f := FlipV(im)
	if f.At(0, 0, 0) != 0.9 || f.At(0, 2, 0) != 0.1 {
		t.Errorf("FlipV wrong: %v", f.Pix)
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	im := randImage(5, 3, 9, 9)
	out := Rotate(im, 0)
	for i := range im.Pix {
		if math.Abs(im.Pix[i]-out.Pix[i]) > 1e-12 {
			t.Fatal("Rotate(0) altered the image")
		}
	}
}

func TestRotateBilinear90MatchesExactInterior(t *testing.T) {
	// A continuous 90° rotation should agree with the exact permutation
	// (bilinear weights collapse to a single pixel at integer coords).
	im := randImage(6, 1, 9, 9)
	cont := Rotate(im, math.Pi/2)
	exact := Rotate90(im)
	for y := 1; y < 8; y++ {
		for x := 1; x < 8; x++ {
			if math.Abs(cont.At(0, y, x)-exact.At(0, y, x)) > 1e-9 {
				t.Fatalf("90° continuous rotation differs from exact at (%d,%d)", y, x)
			}
		}
	}
}

func TestRotateMinorKeepsCenterPixel(t *testing.T) {
	im := randImage(7, 1, 9, 9)
	out := Rotate(im, 0.7)
	if math.Abs(out.At(0, 4, 4)-im.At(0, 4, 4)) > 1e-9 {
		t.Error("rotation about center moved the center pixel")
	}
}

func TestShearZeroIsIdentity(t *testing.T) {
	im := randImage(8, 3, 6, 6)
	out := Shear(im, 0)
	for i := range im.Pix {
		if math.Abs(im.Pix[i]-out.Pix[i]) > 1e-12 {
			t.Fatal("Shear(0) altered the image")
		}
	}
}

func TestShearShiftsRowsOppositeDirections(t *testing.T) {
	// A centered shear moves top rows one way and bottom rows the other.
	im := NewImage(1, 5, 5)
	// single bright column in the middle
	for y := 0; y < 5; y++ {
		im.Set(0, y, 2, 1)
	}
	out := Shear(im, 1.0)
	// Center row keeps its bright pixel at x=2.
	if out.At(0, 2, 2) < 0.9 {
		t.Error("center row moved under centered shear")
	}
	// Top row sources from x = 2 + mu·(0−2) = 0 → bright pixel appears at x=4.
	if out.At(0, 0, 4) < 0.9 {
		t.Errorf("top row not sheared as expected: %v", out.Pix[:5])
	}
	// Bottom row sources from x = 2 + mu·(4−2) = 4 → bright pixel at x=0.
	if out.At(0, 4, 0) < 0.9 {
		t.Errorf("bottom row not sheared as expected")
	}
}

func TestRotationRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Rotate90 on non-square image did not panic")
		}
	}()
	Rotate90(NewImage(1, 2, 3))
}

func TestTransformsDoNotMutateInput(t *testing.T) {
	im := randImage(11, 3, 8, 8)
	orig := im.Clone()
	Rotate90(im)
	Rotate180(im)
	Rotate270(im)
	FlipH(im)
	FlipV(im)
	Rotate(im, 0.5)
	Shear(im, 0.7)
	if !imagesEqual(im, orig) {
		t.Error("a transform mutated its input")
	}
}
