package imaging

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// WritePGM encodes the image as a binary PGM (P5) grayscale file —
// convenient for quick terminal-side inspection with tooling that predates
// PNG. Multi-channel images are converted with the Rec. 601 luma weights.
func (im *Image) WritePGM(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("imaging: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imaging: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P5\n%d %d\n255\n", im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if err := w.WriteByte(lumaByte(im, y, x)); err != nil {
				return fmt.Errorf("imaging: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("imaging: %w", err)
	}
	return f.Close()
}

// lumaByte converts the pixel at (y, x) to an 8-bit gray value.
func lumaByte(im *Image, y, x int) byte {
	var v float64
	if im.C >= 3 {
		v = 0.299*im.At(0, y, x) + 0.587*im.At(1, y, x) + 0.114*im.At(2, y, x)
	} else {
		v = im.At(0, y, x)
	}
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v*255 + 0.5)
}
