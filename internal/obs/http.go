package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts the debug endpoint on addr (":0" picks a free port) and
// returns the bound address. The mux serves:
//
//	/debug/metrics  — the current MetricsSnapshot as JSON
//	/debug/summary  — the live TraceSummary (404 while disabled)
//	/debug/pprof/…  — the standard runtime profilers (CPU, heap, block, …)
//
// The server runs on its own mux (nothing leaks onto http.DefaultServeMux)
// in a background goroutine for the life of the process; it exists to
// observe long runs, so there is no shutdown plumbing.
func ServeDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // endpoint dies with the process
	return ln.Addr(), nil
}

// DebugHandler returns the debug mux (exposed separately so tests and
// embedding servers can mount it without opening a listener).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Snapshot())
	})
	mux.HandleFunc("/debug/summary", func(w http.ResponseWriter, r *http.Request) {
		sum := Summary()
		if sum == nil {
			http.Error(w, "obs: no session enabled", http.StatusNotFound)
			return
		}
		writeJSON(w, sum)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort debug output
}
