package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// The wire types of the JSONL stream, and the offline reader that turns a
// recorded stream back into the summary a live session would have produced.
// The same schema is what a future distributed-sweep coordinator streams
// between processes, so it changes only with a Schema bump.

// metaEvent opens every stream.
type metaEvent struct {
	Type    string `json:"t"`
	Schema  int    `json:"schema"`
	Program string `json:"program,omitempty"`
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	CPUs    int    `json:"cpus"`
	Start   string `json:"start"`
}

// spanEvent records one closed span.
type spanEvent struct {
	Type    string         `json:"t"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// metricsEvent carries a metric snapshot; the stream's last event is the
// final snapshot written by Disable.
type metricsEvent struct {
	Type       string                       `json:"t"`
	Final      bool                         `json:"final,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Event is one decoded trace line; Type discriminates which fields are
// meaningful ("meta", "span", "metrics").
type Event struct {
	Type    string `json:"t"`
	Schema  int    `json:"schema,omitempty"`
	Program string `json:"program,omitempty"`
	CPUs    int    `json:"cpus,omitempty"`

	ID      uint64         `json:"id,omitempty"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name,omitempty"`
	StartUS int64          `json:"start_us,omitempty"`
	DurUS   int64          `json:"dur_us,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`

	Final      bool                         `json:"final,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// ReadTrace decodes a JSONL stream. It validates the schema of the leading
// meta event (when present) and fails on the first malformed line, reporting
// its 1-based line number.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if ev.Type == "meta" && ev.Schema != Schema {
			return nil, fmt.Errorf("obs: trace line %d: schema %d, want %d", line, ev.Schema, Schema)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

// PhaseSummary aggregates every span sharing one name.
type PhaseSummary struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// TraceSummary is the per-phase duration rollup plus the final metric
// values — what Report/SweepReport embed when tracing is enabled.
type TraceSummary struct {
	Program    string                       `json:"program,omitempty"`
	Phases     []PhaseSummary               `json:"phases,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// SummarizeSpans rebuilds a TraceSummary from decoded events: span phases
// are re-aggregated and the last metrics event (the final snapshot) supplies
// the metric values.
func SummarizeSpans(events []Event) *TraceSummary {
	type agg struct {
		count int64
		total time.Duration
		max   time.Duration
	}
	phases := make(map[string]*agg)
	sum := &TraceSummary{}
	for _, ev := range events {
		switch ev.Type {
		case "meta":
			sum.Program = ev.Program
		case "span":
			p := phases[ev.Name]
			if p == nil {
				p = &agg{}
				phases[ev.Name] = p
			}
			d := time.Duration(ev.DurUS) * time.Microsecond
			p.count++
			p.total += d
			if d > p.max {
				p.max = d
			}
		case "metrics":
			sum.Counters = ev.Counters
			sum.Gauges = ev.Gauges
			sum.Histograms = ev.Histograms
		}
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := phases[name]
		sum.Phases = append(sum.Phases, PhaseSummary{
			Name:    name,
			Count:   p.count,
			TotalMS: durMS(p.total),
			MeanMS:  durMS(p.total / time.Duration(p.count)),
			MaxMS:   durMS(p.max),
		})
	}
	return sum
}

// SpanTreeValid checks the structural invariants a well-formed stream
// satisfies — every span's parent was allocated before it and IDs are unique
// — and returns the root count. Tests and oasis-trace use it to validate
// recorded streams.
func SpanTreeValid(events []Event) (roots int, err error) {
	seen := make(map[uint64]bool)
	maxID := uint64(0)
	for _, ev := range events {
		if ev.Type != "span" {
			continue
		}
		if ev.ID == 0 {
			return 0, fmt.Errorf("obs: span %q has id 0", ev.Name)
		}
		if seen[ev.ID] {
			return 0, fmt.Errorf("obs: duplicate span id %d (%q)", ev.ID, ev.Name)
		}
		seen[ev.ID] = true
		if ev.ID > maxID {
			maxID = ev.ID
		}
		if ev.Parent == 0 {
			roots++
		}
	}
	for _, ev := range events {
		if ev.Type != "span" || ev.Parent == 0 {
			continue
		}
		// Parents end after their children, so the parent's own span event
		// may appear later in the stream; it must at least be an allocated ID.
		if ev.Parent > maxID {
			return 0, fmt.Errorf("obs: span %d (%q) references unallocated parent %d", ev.ID, ev.Name, ev.Parent)
		}
	}
	return roots, nil
}
