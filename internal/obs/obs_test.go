package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// disable tears the active session down between tests regardless of outcome.
func disable(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { Disable() }) //nolint:errcheck
}

func TestDisabledIsInert(t *testing.T) {
	if Enabled() {
		t.Fatal("no session should be active at test start")
	}
	ctx := context.Background()
	ctx2, sp := Start(ctx, "phantom", Int("x", 1))
	if sp != nil {
		t.Fatal("disabled Start must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled Start must return the context unchanged")
	}
	sp.SetAttr(String("k", "v"))
	sp.End() // must not panic
	c := NewCounter("test_disabled_counter", "")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("disabled counter accumulated %d", c.Value())
	}
	h := NewHistogram("test_disabled_hist", "", DefDurationBucketsMS)
	h.Observe(3)
	if got := Snapshot(); len(got.Counters) != 0 || len(got.Histograms) != 0 {
		t.Fatalf("disabled snapshot not empty: %+v", got)
	}
	if Summary() != nil {
		t.Fatal("disabled Summary must be nil")
	}
	if sum, err := Disable(); sum != nil || err != nil {
		t.Fatalf("Disable without session = (%v, %v), want (nil, nil)", sum, err)
	}
}

func TestSpanTreeAndStream(t *testing.T) {
	disable(t)
	var buf bytes.Buffer
	if _, err := Enable(Config{Program: "obs-test", Trace: &buf}); err != nil {
		t.Fatal(err)
	}
	if _, err := Enable(Config{}); err == nil {
		t.Fatal("double Enable must fail")
	}

	c := NewCounter("test_stream_counter", "")
	h := NewHistogram("test_stream_hist_ms", "", DefDurationBucketsMS)
	g := NewGauge("test_stream_gauge", "")
	g.Set(4)

	ctx, root := Start(context.Background(), "root", String("kind", "test"))
	for i := 0; i < 3; i++ {
		cctx, child := Start(ctx, "child", Int("i", i))
		_, leaf := Start(cctx, "leaf")
		c.Inc()
		h.Observe(float64(i) + 0.4)
		leaf.End()
		child.End()
	}
	root.End()

	sum, err := Disable()
	if err != nil {
		t.Fatal(err)
	}
	if sum == nil {
		t.Fatal("Disable after Enable must return a summary")
	}
	byName := map[string]PhaseSummary{}
	for _, p := range sum.Phases {
		byName[p.Name] = p
	}
	if byName["root"].Count != 1 || byName["child"].Count != 3 || byName["leaf"].Count != 3 {
		t.Fatalf("phase counts wrong: %+v", sum.Phases)
	}
	if sum.Counters["test_stream_counter"] != 3 {
		t.Fatalf("counter final = %d, want 3", sum.Counters["test_stream_counter"])
	}
	if sum.Gauges["test_stream_gauge"] != 4 {
		t.Fatalf("gauge final = %v, want 4", sum.Gauges["test_stream_gauge"])
	}
	if hs := sum.Histograms["test_stream_hist_ms"]; hs.Count != 3 {
		t.Fatalf("histogram count = %d, want 3", hs.Count)
	}

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Type != "meta" || events[0].Program != "obs-test" {
		t.Fatalf("stream must open with the meta event, got %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "metrics" || !last.Final {
		t.Fatalf("stream must close with the final metrics event, got %+v", last)
	}
	roots, err := SpanTreeValid(events)
	if err != nil {
		t.Fatal(err)
	}
	if roots != 1 {
		t.Fatalf("expected 1 root span, got %d", roots)
	}
	// Children must parent to the root's ID, and the leaf to its child.
	var rootID uint64
	for _, ev := range events {
		if ev.Type == "span" && ev.Name == "root" {
			rootID = ev.ID
		}
	}
	childIDs := map[uint64]bool{}
	for _, ev := range events {
		if ev.Type == "span" && ev.Name == "child" {
			if ev.Parent != rootID {
				t.Fatalf("child parent = %d, want root %d", ev.Parent, rootID)
			}
			childIDs[ev.ID] = true
		}
	}
	for _, ev := range events {
		if ev.Type == "span" && ev.Name == "leaf" && !childIDs[ev.Parent] {
			t.Fatalf("leaf parent %d is not a child span", ev.Parent)
		}
	}
	// Offline re-aggregation matches the live phase summary.
	resum := SummarizeSpans(events)
	for _, p := range resum.Phases {
		if p.Count != byName[p.Name].Count {
			t.Fatalf("replayed phase %q count %d != live %d", p.Name, p.Count, byName[p.Name].Count)
		}
	}
	if resum.Counters["test_stream_counter"] != 3 {
		t.Fatal("replayed final metrics lost the counter")
	}
}

func TestEnableResetsMetrics(t *testing.T) {
	disable(t)
	c := NewCounter("test_reset_counter", "")
	if _, err := Enable(Config{}); err != nil {
		t.Fatal(err)
	}
	c.Add(7)
	if _, err := Disable(); err != nil {
		t.Fatal(err)
	}
	if _, err := Enable(Config{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 {
		t.Fatalf("Enable must zero metrics, counter = %d", c.Value())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	a := NewCounter("test_idem", "first")
	b := NewCounter("test_idem", "second")
	if a != b {
		t.Fatal("re-registering a name must return the same instrument")
	}
}

func TestHistogramBuckets(t *testing.T) {
	disable(t)
	if _, err := Enable(Config{}); err != nil {
		t.Fatal(err)
	}
	h := NewHistogram("test_buckets", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 10, 11, 1e9} {
		h.Observe(v)
	}
	snap := h.snapshot()
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	want := map[string]int64{"1": 2, "10": 2, "+Inf": 2} // bounds are inclusive upper edges
	for _, b := range snap.Buckets {
		if b.N != want[b.LE] {
			t.Fatalf("bucket le=%s n=%d, want %d (all: %+v)", b.LE, b.N, want[b.LE], snap.Buckets)
		}
	}
}

func TestTraceWriteErrorSurfaces(t *testing.T) {
	disable(t)
	if _, err := Enable(Config{Trace: failingWriter{}}); err != nil {
		t.Fatal(err)
	}
	_, sp := Start(context.Background(), "x")
	sp.End()
	if _, err := Disable(); err == nil {
		t.Fatal("Disable must surface the write error")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestDebugHandler(t *testing.T) {
	disable(t)
	if _, err := Enable(Config{Program: "handler-test"}); err != nil {
		t.Fatal(err)
	}
	NewCounter("test_http_counter", "").Add(2)
	_, sp := Start(context.Background(), "served")
	sp.End()

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(get("/debug/metrics")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test_http_counter"] != 2 {
		t.Fatalf("metrics endpoint counter = %d, want 2", snap.Counters["test_http_counter"])
	}
	var sum TraceSummary
	if err := json.Unmarshal([]byte(get("/debug/summary")), &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Phases) == 0 || sum.Phases[0].Name != "served" {
		t.Fatalf("summary endpoint phases = %+v", sum.Phases)
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("pprof index not served")
	}
}

// TestConcurrentEmission hammers span and metric emission from NumCPU
// goroutines (the sweep's CellWorkers shape) and validates the resulting
// stream — this is the obs half of the race-tier coverage the sweep
// differential test exercises end to end.
func TestConcurrentEmission(t *testing.T) {
	disable(t)
	var buf syncBuffer
	if _, err := Enable(Config{Program: "race", Trace: &buf}); err != nil {
		t.Fatal(err)
	}
	c := NewCounter("test_race_counter", "")
	h := NewHistogram("test_race_hist", "", DefDurationBucketsMS)
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, outer := Start(context.Background(), "worker", Int("w", w))
			for i := 0; i < perWorker; i++ {
				_, sp := Start(ctx, "unit")
				c.Inc()
				h.Observe(float64(i % 7))
				sp.End()
			}
			outer.End()
		}(w)
	}
	wg.Wait()
	sum, err := Disable()
	if err != nil {
		t.Fatal(err)
	}
	wantUnits := int64(workers * perWorker)
	if sum.Counters["test_race_counter"] != wantUnits {
		t.Fatalf("counter = %d, want %d", sum.Counters["test_race_counter"], wantUnits)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("concurrent stream is corrupt: %v", err)
	}
	if _, err := SpanTreeValid(events); err != nil {
		t.Fatal(err)
	}
	var units int64
	for _, ev := range events {
		if ev.Type == "span" && ev.Name == "unit" {
			units++
		}
	}
	if units != wantUnits {
		t.Fatalf("stream holds %d unit spans, want %d", units, wantUnits)
	}
}

// syncBuffer is an io.Writer safe for the session's serialized writes while
// also being readable afterwards from the test goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Read(p)
}
