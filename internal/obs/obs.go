package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Schema identifies the trace event layout; bump when fields change meaning.
const Schema = 1

// current holds the active session; nil means observability is disabled.
// Every hot-path guard is one load of this pointer.
var current atomic.Pointer[Session]

// Enabled reports whether a session is active. Call sites that need to do
// preparatory work before emitting (e.g. take a timestamp for a histogram)
// should guard on it; plain Start/Add/Observe calls self-guard.
func Enabled() bool { return current.Load() != nil }

// Config shapes a session.
type Config struct {
	// Program labels the stream's meta event (usually the CLI name).
	Program string
	// Trace receives the JSONL event stream; nil records metrics and the
	// in-memory phase summary only (the -http endpoint still works).
	Trace io.Writer
}

// Session is one enabled observability window: a span ID allocator, a phase
// aggregator, and an optional JSONL sink. At most one session is active at a
// time.
type Session struct {
	program string
	start   time.Time
	nextID  atomic.Uint64

	mu     sync.Mutex
	out    io.Writer
	closed bool
	phases map[string]*phaseStat
	werr   error // first write error, surfaced by Disable
}

// phaseStat aggregates all spans sharing one name.
type phaseStat struct {
	count int64
	total time.Duration
	max   time.Duration
}

// Enable activates observability: metrics are zeroed, the meta event is
// written, and subsequent Start/Add/Observe calls record into the session.
// It fails if a session is already active — nested enablement would make the
// stream's ownership ambiguous.
func Enable(cfg Config) (*Session, error) {
	s := &Session{
		program: cfg.Program,
		start:   time.Now(),
		out:     cfg.Trace,
		phases:  make(map[string]*phaseStat),
	}
	if !current.CompareAndSwap(nil, s) {
		return nil, fmt.Errorf("obs: a session is already enabled")
	}
	resetMetrics()
	s.emit(metaEvent{
		Type: "meta", Schema: Schema, Program: cfg.Program,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Start: s.start.Format(time.RFC3339Nano),
	})
	return s, nil
}

// Disable ends the active session: a final metrics event is appended to the
// stream and the phase summary is returned (nil if nothing was enabled). The
// error is the first trace-write failure, if any — callers that persist
// traces to disk should check it.
func Disable() (*TraceSummary, error) {
	s := current.Swap(nil)
	if s == nil {
		return nil, nil
	}
	snap := Snapshot()
	sum := s.summary(snap)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.emitLocked(metricsEvent{Type: "metrics", Final: true,
		Counters: snap.Counters, Gauges: snap.Gauges, Histograms: snap.Histograms})
	return sum, s.werr
}

// Summary returns the active session's phase aggregates and metric values,
// or nil when disabled. It may be called while spans are still being
// recorded (the sweep CLIs call it between the run and the report write).
func Summary() *TraceSummary {
	s := current.Load()
	if s == nil {
		return nil
	}
	return s.summary(Snapshot())
}

func (s *Session) summary(snap MetricsSnapshot) *TraceSummary {
	s.mu.Lock()
	names := make([]string, 0, len(s.phases))
	for name := range s.phases {
		names = append(names, name)
	}
	sort.Strings(names)
	sum := &TraceSummary{Program: s.program}
	for _, name := range names {
		p := s.phases[name]
		sum.Phases = append(sum.Phases, PhaseSummary{
			Name:    name,
			Count:   p.count,
			TotalMS: durMS(p.total),
			MeanMS:  durMS(p.total / time.Duration(p.count)),
			MaxMS:   durMS(p.max),
		})
	}
	s.mu.Unlock()
	sum.Counters = snap.Counters
	sum.Gauges = snap.Gauges
	sum.Histograms = snap.Histograms
	return sum
}

// Attr is one span annotation. Values must be JSON-encodable; the helpers
// below cover the types instrumentation actually uses.
type Attr struct {
	Key   string
	Value any
}

// String annotates a span with a string value.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int annotates a span with an integer value.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Uint64 annotates a span with a uint64 value (seeds, IDs).
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Value: v} }

// Float annotates a span with a float value.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool annotates a span with a boolean value.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Span is one open tracing interval. A nil *Span (what Start returns while
// disabled) is a valid receiver for every method, so call sites need no
// guards.
type Span struct {
	s      *Session
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]any
}

// spanCtxKey carries the enclosing span's ID through a context.
type spanCtxKey struct{}

// Start opens a span under the span carried by ctx (root when none) and
// returns a derived context that parents nested spans. While no session is
// enabled it is one atomic load: ctx comes back unchanged and the nil span
// makes every later call a no-op.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	s := current.Load()
	if s == nil {
		return ctx, nil
	}
	sp := &Span{s: s, id: s.nextID.Add(1), name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanCtxKey{}).(uint64); ok {
		sp.parent = parent
	}
	sp.setAttrs(attrs)
	return context.WithValue(ctx, spanCtxKey{}, sp.id), sp
}

// SetAttr annotates an open span (no-op on nil). Not goroutine-safe against
// a concurrent End of the same span — annotate before handing a span off.
func (sp *Span) SetAttr(attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.setAttrs(attrs)
}

func (sp *Span) setAttrs(attrs []Attr) {
	if len(attrs) == 0 {
		return
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		sp.attrs[a.Key] = a.Value
	}
}

// End closes the span: its duration folds into the session's per-phase
// aggregate and one span event is appended to the trace stream. End on a nil
// span is a no-op; End after the session was disabled only drops the event.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	dur := time.Since(sp.start)
	s := sp.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	p := s.phases[sp.name]
	if p == nil {
		p = &phaseStat{}
		s.phases[sp.name] = p
	}
	p.count++
	p.total += dur
	if dur > p.max {
		p.max = dur
	}
	s.emitLocked(spanEvent{
		Type: "span", ID: sp.id, Parent: sp.parent, Name: sp.name,
		StartUS: sp.start.Sub(s.start).Microseconds(),
		DurUS:   dur.Microseconds(),
		Attrs:   sp.attrs,
	})
}

// emit serializes one event onto the stream (lock taken here).
func (s *Session) emit(ev any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emitLocked(ev)
}

// emitLocked writes one JSONL line; the caller holds s.mu.
func (s *Session) emitLocked(ev any) {
	if s.out == nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err == nil {
		raw = append(raw, '\n')
		_, err = s.out.Write(raw)
	}
	if err != nil && s.werr == nil {
		s.werr = err
	}
}

// durMS converts a duration to milliseconds with microsecond resolution.
func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
