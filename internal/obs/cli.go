package obs

import (
	"bufio"
	"fmt"
	"os"
)

// EnableCLI wires the standard CLI observability surface behind the -trace
// and -http flags: when either is set it enables a session (writing the JSONL
// stream to tracePath if given, serving the debug endpoint on httpAddr if
// given) and returns a finish func that disables the session, flushes and
// closes the trace file, and hands back the summary. With both flags empty it
// enables nothing and finish returns (nil, nil), so callers need no branches.
//
// The bound debug address (":0" picks a free port) is printed to stderr so
// scripted callers can discover it.
func EnableCLI(program, tracePath, httpAddr string) (finish func() (*TraceSummary, error), err error) {
	if tracePath == "" && httpAddr == "" {
		return func() (*TraceSummary, error) { return nil, nil }, nil
	}
	var f *os.File
	var bw *bufio.Writer
	cfg := Config{Program: program}
	if tracePath != "" {
		f, err = os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: create trace file: %w", err)
		}
		bw = bufio.NewWriterSize(f, 1<<16)
		cfg.Trace = bw
	}
	if _, err := Enable(cfg); err != nil {
		if f != nil {
			f.Close()
		}
		return nil, err
	}
	if httpAddr != "" {
		addr, err := ServeDebug(httpAddr)
		if err != nil {
			Disable()
			if f != nil {
				f.Close()
			}
			return nil, fmt.Errorf("obs: debug endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: obs debug endpoint on http://%s/debug/metrics\n", program, addr)
	}
	return func() (*TraceSummary, error) {
		sum, werr := Disable()
		if bw != nil {
			if err := bw.Flush(); werr == nil {
				werr = err
			}
		}
		if f != nil {
			if err := f.Close(); werr == nil {
				werr = err
			}
		}
		if werr != nil {
			werr = fmt.Errorf("obs: trace %s: %w", tracePath, werr)
		}
		return sum, werr
	}, nil
}
