// Package obs is the repo's structured runtime observability layer: span
// tracing and a typed metric registry, zero external dependencies, built so
// that instrumentation can live permanently inside the hot paths (round
// engine, sim engine, sweep pool, tensor kernels) without perturbing them.
//
// # Tracing
//
// A Session is enabled process-wide with Enable and torn down with Disable.
// While a session is active, Start opens a span and returns a context that
// parents any span started beneath it, so one sweep produces a tree
//
//	sweep.run → sweep.cell → sim.run → fl.round → fl.client → tensor kernels
//
// Ending a span appends one JSONL event to the session's trace writer:
//
//	{"t":"meta","schema":1,"program":"oasis-sweep","goos":"linux","cpus":8,"start":"…"}
//	{"t":"span","id":7,"parent":3,"name":"fl.round","start_us":1042,"dur_us":3567,"attrs":{"round":2}}
//	{"t":"metrics","counters":{…},"gauges":{…},"histograms":{…}}
//
// Events are written on span end (the stream is end-time ordered); Disable
// appends a final "metrics" event with every registered metric's last value.
// Span emission is goroutine-safe: IDs come from one atomic counter and the
// writer is serialized under the session mutex, so any io.Writer may back a
// trace. ReadTrace parses a stream back into events and SummarizeSpans
// rebuilds the per-phase aggregate a live Summary would have produced —
// cmd/oasis-trace is a thin wrapper over the two.
//
// # Metrics
//
// NewCounter, NewGauge, and NewHistogram register named instruments in a
// process-global registry (registration is idempotent by name, so package-
// level instrument variables are safe under repeated test binaries).
// Histograms use fixed, declared bucket layouts (DefDurationBucketsMS for
// millisecond durations), so two machines' streams aggregate cell-for-cell.
// Snapshot returns every instrument's current value; Enable zeroes them all,
// giving each session a clean window.
//
// # The determinism contract
//
// Instrumentation is safe to leave in simulation code because the package
// guarantees, by construction:
//
//   - Off-by-default and nil-cheap. With no session enabled, Start performs
//     one atomic pointer load and returns a nil *Span whose methods are
//     no-ops; Counter.Add / Gauge.Set / Histogram.Observe perform one atomic
//     load and return. No time.Now, no allocation, no lock. The measured
//     disabled-path cost of a fully instrumented round is committed in
//     BENCH_obs.json (< 2% of round wall-clock).
//   - No RNG contact. The package never reads math/rand (v1 or v2) streams,
//     never seeds anything, and instrumented call sites must not move any
//     RNG draw across an Enable boundary; reports therefore stay
//     bit-identical whether or not a trace is being recorded.
//   - Report bytes are untouched. Report/SweepReport gain trace content only
//     through their *TraceSummary field, which the CLIs populate only while
//     a session is enabled; with tracing disabled the emitted JSON is
//     byte-identical to a build without this package (pinned by golden tests
//     in internal/sim and internal/experiments).
//
// Wall-clock span durations are inherently machine-dependent: a trace stream
// is diagnostic output, not part of any determinism guarantee. Everything
// that is compared across runs (reports, replicate seeds, histories) stays
// outside it.
//
// That split is enforced mechanically: this package (with internal/perf) is
// the only place allowed to read the wall clock, and every Start must reach
// End on all paths so trace streams stay well-formed span trees. The
// walltime and spanpair analyzers in internal/analysis check both rules in
// CI; the full determinism contract is written up in the "Static analysis"
// section of the repository README.
//
// # Debug endpoint
//
// ServeDebug exposes /debug/metrics (the Snapshot as JSON), /debug/summary
// (the live TraceSummary), and the standard /debug/pprof/ handlers on a
// dedicated mux, so a long sweep can be profiled (CPU, heap, blocking)
// without restarting it. The oasis-sim, oasis-sweep, and oasis-fl commands
// wire it to their -http flag.
package obs
