package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The typed metric registry. Instruments are package-level variables at
// their call sites, registered once by name; values accumulate only while a
// session is enabled (every mutation self-guards on the session pointer, one
// atomic load) and Enable zeroes them so each session is a clean window.

var registry = struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}{
	counters: make(map[string]*Counter),
	gauges:   make(map[string]*Gauge),
	hists:    make(map[string]*Histogram),
}

// Counter is a monotonically increasing int64 instrument.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// NewCounter registers (or returns the already-registered) counter.
func NewCounter(name, help string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	registry.counters[name] = c
	return c
}

// Add increments the counter while a session is enabled (one atomic load
// otherwise).
func (c *Counter) Add(n int64) {
	if current.Load() == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a set-to-current-value float64 instrument (worker counts, pool
// sizes).
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// NewGauge registers (or returns the already-registered) gauge.
func NewGauge(name, help string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	registry.gauges[name] = g
	return g
}

// Set records the gauge's current value while a session is enabled.
func (g *Gauge) Set(v float64) {
	if current.Load() == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefDurationBucketsMS is the fixed bucket layout for millisecond-duration
// histograms. The layout is part of the trace schema: streams from different
// machines aggregate cell-for-cell only because every build buckets
// identically.
var DefDurationBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket distribution instrument. Bounds are upper
// bucket edges in ascending order; observations above the last bound land in
// an implicit overflow bucket.
type Histogram struct {
	name    string
	help    string
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, cumulative at snapshot time only
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bit pattern, CAS-accumulated
}

// NewHistogram registers (or returns the already-registered) histogram over
// the given ascending bucket bounds.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if h, ok := registry.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name: name, help: help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	registry.hists[name] = h
	return h
}

// Observe records one value while a session is enabled.
func (h *Histogram) Observe(v float64) {
	if current.Load() == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// BucketCount is one histogram cell in a snapshot. LE is the bucket's upper
// bound rendered as a string ("+Inf" for the overflow bucket) so the layout
// survives JSON, which cannot encode infinities.
type BucketCount struct {
	LE string `json:"le"`
	N  int64  `json:"n"`
}

// HistogramSnapshot is one histogram's state: total count, sum, mean, and
// the non-empty buckets.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{Count: h.count.Load(), Sum: math.Float64frombits(h.sumBits.Load())}
	if snap.Count > 0 {
		snap.Mean = snap.Sum / float64(snap.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		snap.Buckets = append(snap.Buckets, BucketCount{LE: le, N: n})
	}
	return snap
}

// MetricsSnapshot is every registered instrument's current value. Maps are
// keyed by instrument name; encoding/json renders them key-sorted.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Zero-valued instruments are
// omitted so a snapshot shows what actually happened, not the registry.
func Snapshot() MetricsSnapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	snap := MetricsSnapshot{}
	for name, c := range registry.counters {
		if v := c.Value(); v != 0 {
			if snap.Counters == nil {
				snap.Counters = make(map[string]int64)
			}
			snap.Counters[name] = v
		}
	}
	for name, g := range registry.gauges {
		if v := g.Value(); v != 0 {
			if snap.Gauges == nil {
				snap.Gauges = make(map[string]float64)
			}
			snap.Gauges[name] = v
		}
	}
	for name, h := range registry.hists {
		if h.count.Load() == 0 {
			continue
		}
		if snap.Histograms == nil {
			snap.Histograms = make(map[string]HistogramSnapshot)
		}
		snap.Histograms[name] = h.snapshot()
	}
	return snap
}

// resetMetrics zeroes every registered instrument (session start).
func resetMetrics() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.bits.Store(0)
	}
	for _, h := range registry.hists {
		h.count.Store(0)
		h.sumBits.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}
