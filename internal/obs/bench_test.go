package obs

import (
	"context"
	"testing"
)

// The disabled path is the one that matters: instrumentation lives
// permanently inside the round engine and the tensor dispatch layer, so its
// cost with no session enabled must stay at one atomic load (single-digit
// nanoseconds). BENCH_obs.json commits the measured end-to-end consequence
// (instrumented vs pre-instrumentation round wall-clock); these benchmarks
// pin the per-operation costs the model rests on.

func BenchmarkDisabledStartEnd(b *testing.B) {
	if Enabled() {
		b.Fatal("session must be disabled")
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	if Enabled() {
		b.Fatal("session must be disabled")
	}
	c := NewCounter("bench_disabled_counter", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	if Enabled() {
		b.Fatal("session must be disabled")
	}
	h := NewHistogram("bench_disabled_hist", "", DefDurationBucketsMS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkEnabledStartEnd(b *testing.B) {
	if _, err := Enable(Config{}); err != nil {
		b.Fatal(err)
	}
	defer Disable() //nolint:errcheck
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	if _, err := Enable(Config{}); err != nil {
		b.Fatal(err)
	}
	defer Disable() //nolint:errcheck
	c := NewCounter("bench_enabled_counter", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
