package attack

import (
	"fmt"
	rand "math/rand/v2"
	"sort"
	"strings"
	"sync"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Attack is the common contract every registered reconstruction attack
// implements: it can build the malicious victim model a dishonest server
// dispatches, invert an uploaded (∂W, ∂b) pair of the planted layer, and run
// the complete measurement loop against a batch.
type Attack interface {
	// Name returns the registry kind ("rtf", "cah", "qbi", "loki", …).
	Name() string
	// BuildVictim assembles the malicious model around the planted layer.
	BuildVictim(rng *rand.Rand) (*Victim, error)
	// Reconstruct inverts the planted layer's uploaded gradients into images.
	Reconstruct(gw, gb *tensor.Tensor) []*imaging.Image
	// Run executes the complete attack against a (possibly defended) batch
	// and evaluates the reconstructions against the original images.
	Run(clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (Evaluation, []*imaging.Image, error)
}

var (
	_ Attack = (*RTF)(nil)
	_ Attack = (*CAH)(nil)
	_ Attack = (*QBI)(nil)
	_ Attack = (*LOKI)(nil)
)

// Config carries everything a registered constructor may need to calibrate
// an attack. Zero values resolve to defaults where one is sensible.
type Config struct {
	// Dims is the raster geometry of the inputs the victim layer sees.
	Dims ImageDims
	// Classes is the classification head width.
	Classes int
	// Neurons sizes the planted malicious layer.
	Neurons int
	// Probe is the attacker's public data used for calibration.
	Probe data.Dataset
	// ProbeSize bounds how many probe samples calibration reads (default
	// 256, clamped to the probe size).
	ProbeSize int
	// Batch is the batch size the attacker anticipates; bias placement
	// targets ~1/Batch activations per neuron (default 8).
	Batch int
	// Rng drives every random draw of calibration.
	Rng *rand.Rand
}

// withDefaults resolves the Config's zero values.
func (c Config) withDefaults() Config {
	if c.ProbeSize == 0 {
		c.ProbeSize = 256
	}
	if c.Batch == 0 {
		c.Batch = 8
	}
	return c
}

// Constructor calibrates one attack family from a resolved Config.
type Constructor func(cfg Config) (Attack, error)

// registry maps attack kinds to their constructors, guarded by registryMu
// so Register is safe against concurrent New/Names/Known lookups (scenario
// validation may run while a library user registers a custom family).
// Access it through Register/New/Names so the lookup and its error message
// stay consistent.
var registryMu sync.RWMutex

var registry = map[string]Constructor{
	"rtf": func(cfg Config) (Attack, error) {
		return NewRTF(cfg.Dims, cfg.Classes, cfg.Neurons, cfg.Probe, cfg.Rng, cfg.ProbeSize)
	},
	"cah": func(cfg Config) (Attack, error) {
		return NewCAH(cfg.Dims, cfg.Classes, cfg.Neurons, cfg.Probe, cfg.Rng, cfg.ProbeSize, cfg.Batch)
	},
	"qbi": func(cfg Config) (Attack, error) {
		return NewQBI(cfg.Dims, cfg.Classes, cfg.Neurons, cfg.Probe, cfg.Rng, cfg.ProbeSize, cfg.Batch)
	},
	"loki": func(cfg Config) (Attack, error) {
		return NewLOKI(cfg.Dims, cfg.Classes, cfg.Neurons, cfg.Probe, cfg.Rng, cfg.ProbeSize, DefaultLOKIScale)
	},
}

// Register adds an attack family to the registry. It errors on empty or
// duplicate kinds so callers cannot silently shadow a built-in.
func Register(kind string, ctor Constructor) error {
	if kind == "" || ctor == nil {
		return fmt.Errorf("attack: Register needs a non-empty kind and constructor")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		return fmt.Errorf("attack: kind %q already registered", kind)
	}
	registry[kind] = ctor
	return nil
}

// Names lists the registered attack kinds in sorted order.
func Names() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// Known reports whether kind is a registered attack family.
func Known(kind string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[kind]
	return ok
}

// New calibrates the named attack. Unknown kinds error with the full list of
// registered families, so validation messages never go stale.
func New(kind string, cfg Config) (Attack, error) {
	registryMu.RLock()
	ctor, ok := registry[kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attack: unknown kind %q (want one of %s)",
			kind, strings.Join(Names(), ", "))
	}
	return ctor(cfg.withDefaults())
}
