package attack

import (
	"fmt"
	"math"
	rand "math/rand/v2"
	"sort"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// RTF implements the "Robbing the Fed" imprint attack (Fowl et al., ICLR
// 2022; paper reference [18]).
//
// Every malicious neuron computes z_i = h(x) − c_i where h(x) = mean pixel
// brightness and c_1 < … < c_n are thresholds placed at quantiles of the
// brightness distribution, which the attacker estimates from public data. A
// sample with brightness h activates exactly the neurons {i : c_i < h}, so
// the difference between adjacent neurons' gradients isolates the samples in
// brightness bin (c_i, c_{i+1}]:
//
//	x̂ = (∂W_i − ∂W_{i+1}) / (∂b_i − ∂b_{i+1})
//
// which is a verbatim copy when the bin holds a single sample. OASIS defeats
// this by inserting mean-preserving transforms of every sample into its bin.
type RTF struct {
	Neurons    int
	Dims       ImageDims
	Classes    int
	Thresholds []float64 // ascending bin edges c_i
}

// Name returns the registry kind "rtf".
func (a *RTF) Name() string { return "rtf" }

// NewRTF calibrates an RTF attack: thresholds are the empirical quantiles of
// mean brightness over the probe dataset (the attacker's public data),
// covering the central mass of the distribution.
func NewRTF(dims ImageDims, classes, neurons int, probe data.Dataset, rng *rand.Rand, probeSize int) (*RTF, error) {
	if neurons < 2 {
		return nil, fmt.Errorf("attack: RTF needs at least 2 neurons, got %d", neurons)
	}
	if probeSize > probe.Len() {
		probeSize = probe.Len()
	}
	means := make([]float64, 0, probeSize)
	for _, idx := range rng.Perm(probe.Len())[:probeSize] {
		im, _ := probe.Sample(idx)
		means = append(means, im.Mean())
	}
	sort.Float64s(means)
	thresholds := make([]float64, neurons)
	for i := range thresholds {
		q := (float64(i) + 0.5) / float64(neurons)
		thresholds[i] = quantile(means, q)
	}
	// Enforce strictly ascending edges (duplicated probe values would
	// otherwise create empty zero-width bins that break the differencing).
	for i := 1; i < neurons; i++ {
		if thresholds[i] <= thresholds[i-1] {
			thresholds[i] = thresholds[i-1] + 1e-12
		}
	}
	return &RTF{Neurons: neurons, Dims: dims, Classes: classes, Thresholds: thresholds}, nil
}

// quantile returns the q-quantile of sorted values with linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Layer materializes the malicious layer parameters: every weight row is the
// mean-measurement vector (1/d, …, 1/d) and bias_i = −c_i.
func (a *RTF) Layer() (w, b *tensor.Tensor) {
	d := a.Dims.Dim()
	w = tensor.New(a.Neurons, d)
	inv := 1.0 / float64(d)
	wd := w.Data()
	for i := range wd {
		wd[i] = inv
	}
	b = tensor.New(a.Neurons)
	for i, c := range a.Thresholds {
		b.Data()[i] = -c
	}
	return w, b
}

// BuildVictim assembles the full malicious model the server would dispatch.
func (a *RTF) BuildVictim(rng *rand.Rand) (*Victim, error) {
	w, b := a.Layer()
	return NewVictim(a.Dims, a.Classes, w, b, rng)
}

// Reconstruct inverts uploaded gradients into images using adjacent-bin
// differencing. gw is [n×d], gb is [n].
func (a *RTF) Reconstruct(gw, gb *tensor.Tensor) []*imaging.Image {
	if gw.Dim(0) != a.Neurons || gb.Dim(0) != a.Neurons {
		panic(fmt.Sprintf("attack: RTF gradients %vx%v do not match %d neurons", gw.Shape(), gb.Shape(), a.Neurons))
	}
	var out []*imaging.Image
	gbd := gb.Data()
	d := a.Dims.Dim()
	diff := make([]float64, d)
	for i := 0; i < a.Neurons-1; i++ {
		rowI := gw.RowView(i)
		rowN := gw.RowView(i + 1)
		for k := 0; k < d; k++ {
			diff[k] = rowI[k] - rowN[k]
		}
		if im, ok := ratioReconstruct(diff, gbd[i]-gbd[i+1], a.Dims); ok {
			out = append(out, im)
		}
	}
	// Top bin: samples brighter than the last threshold.
	if im, ok := ratioReconstruct(gw.RowView(a.Neurons-1), gbd[a.Neurons-1], a.Dims); ok {
		out = append(out, im)
	}
	return out
}

// Run executes the complete attack against a (possibly defended) batch: the
// victim model is built, client gradients are computed on clientBatch, and
// the reconstructions are evaluated against originals — the paper's
// measurement loop for Figures 3 and 5.
func (a *RTF) Run(clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (Evaluation, []*imaging.Image, error) {
	return runPlanted(a, clientBatch, originals, rng)
}
