package attack

import (
	"fmt"
	rand "math/rand/v2"
	"sort"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// DefaultLOKIScale is the kernel amplification γ the registry constructor
// uses: large enough that the malicious layer dominates the uploaded
// gradient (the "model manipulation" knob of the published attack, which is
// what lets it survive norm-bounding defenses), small enough not to blow up
// training numerics.
const DefaultLOKIScale = 4.0

// lokiTargetBins is the preferred number of quantile bins per measurement
// group; the constructor splits the neuron budget into groups of roughly
// this size.
const lokiTargetBins = 8

// LOKI implements a scaled identity/kernel-manipulation attack in the style
// of Zhao et al., "LOKI: Large-scale Data Reconstruction Attack against
// Federated Learning through Model Manipulation" (arXiv:2303.12233).
//
// The published attack scales reconstruction to large sampled populations by
// giving clients structurally manipulated models (convolutional identity
// kernels plus customized dense layers) so per-client leakage stays
// separable. This reproduction keeps the two load-bearing ideas in the
// repo's fully-connected substrate:
//
//   - Kernel diversity: the planted neurons are split into groups, each
//     measuring the scaled mean over a different random pixel subset (a
//     random "kernel"). Samples — and sampled clients — that collide under
//     one scalar measurement (the RTF failure mode at population scale) are
//     separated by another group, so coverage grows with the neuron budget
//     instead of saturating.
//   - Scaling: every kernel is amplified by γ (Scale), inflating the
//     malicious layer's share of the uploaded gradient norm. Inversion is
//     unaffected (the Eq. 6 ratio is scale-invariant) but norm-clipping
//     style defenses spend their budget on the planted layer.
//
// Within each group, biases sit at empirical quantiles of the group's
// measurement over the probe set and adjacent-bin gradient differencing
// inverts occupied bins, exactly as in RTF.
type LOKI struct {
	Neurons int // total planted neurons (= Groups × Bins)
	Groups  int // independent measurement kernels
	Bins    int // quantile bins per group
	Dims    ImageDims
	Classes int
	Scale   float64 // kernel amplification γ

	masks   [][]int        // per-group pixel subset
	weights *tensor.Tensor // [Neurons, d]
	bias    *tensor.Tensor // [Neurons]
}

// Name returns the registry kind "loki".
func (a *LOKI) Name() string { return "loki" }

// NewLOKI calibrates a LOKI-style attack: the neuron budget is split into
// groups of ~lokiTargetBins quantile bins, each group draws a random
// half-support pixel kernel, and thresholds are placed at empirical
// quantiles of the scaled kernel measurement over the probe set.
func NewLOKI(dims ImageDims, classes, neurons int, probe data.Dataset, rng *rand.Rand, probeSize int, scale float64) (*LOKI, error) {
	if neurons < 2 {
		return nil, fmt.Errorf("attack: LOKI needs at least 2 neurons, got %d", neurons)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("attack: LOKI scale %g must be positive", scale)
	}
	// With neurons ≥ 2, groups = max(1, n/8) always leaves bins = n/groups
	// ≥ 2: small budgets collapse to one group, large ones keep ~8 bins.
	groups := max(1, neurons/lokiTargetBins)
	bins := neurons / groups
	d := dims.Dim()
	kernel := max(1, d/2)

	masks := make([][]int, groups)
	for g := range masks {
		m := append([]int(nil), rng.Perm(d)[:kernel]...)
		sort.Ints(m)
		masks[g] = m
	}

	if probeSize > probe.Len() {
		probeSize = probe.Len()
	}
	// One pass over the probe set: every group's scaled kernel measurement.
	projs := make([][]float64, groups)
	for g := range projs {
		projs[g] = make([]float64, 0, probeSize)
	}
	for _, idx := range rng.Perm(probe.Len())[:probeSize] {
		im, _ := probe.Sample(idx)
		for g, mask := range masks {
			s := 0.0
			for _, j := range mask {
				s += im.Pix[j]
			}
			projs[g] = append(projs[g], scale*s/float64(len(mask)))
		}
	}

	total := groups * bins
	w := tensor.New(total, d)
	b := tensor.New(total)
	amp := scale / float64(kernel)
	for g, mask := range masks {
		sort.Float64s(projs[g])
		for i := 0; i < bins; i++ {
			row := w.RowView(g*bins + i)
			for _, j := range mask {
				row[j] = amp
			}
			c := quantile(projs[g], (float64(i)+0.5)/float64(bins))
			// Strictly ascending edges within the group (duplicated probe
			// values would create empty zero-width bins that break the
			// differencing).
			if i > 0 {
				prev := -b.Data()[g*bins+i-1]
				if c <= prev {
					c = prev + 1e-12
				}
			}
			b.Data()[g*bins+i] = -c
		}
	}
	return &LOKI{
		Neurons: total, Groups: groups, Bins: bins,
		Dims: dims, Classes: classes, Scale: scale,
		masks: masks, weights: w, bias: b,
	}, nil
}

// Layer returns copies of the malicious parameters.
func (a *LOKI) Layer() (w, b *tensor.Tensor) { return a.weights.Clone(), a.bias.Clone() }

// BuildVictim assembles the full malicious model the server would dispatch.
func (a *LOKI) BuildVictim(rng *rand.Rand) (*Victim, error) {
	w, b := a.Layer()
	return NewVictim(a.Dims, a.Classes, w, b, rng)
}

// Reconstruct inverts each group independently by adjacent-bin differencing
// (plus the open top bin), then de-duplicates across groups — different
// kernels frequently recover the same sample, which is the point.
func (a *LOKI) Reconstruct(gw, gb *tensor.Tensor) []*imaging.Image {
	if gw.Dim(0) != a.Neurons || gb.Dim(0) != a.Neurons {
		panic(fmt.Sprintf("attack: LOKI gradients %vx%v do not match %d neurons", gw.Shape(), gb.Shape(), a.Neurons))
	}
	var out []*imaging.Image
	gbd := gb.Data()
	d := a.Dims.Dim()
	diff := make([]float64, d)
	for g := 0; g < a.Groups; g++ {
		base := g * a.Bins
		for i := 0; i < a.Bins-1; i++ {
			rowI := gw.RowView(base + i)
			rowN := gw.RowView(base + i + 1)
			for k := 0; k < d; k++ {
				diff[k] = rowI[k] - rowN[k]
			}
			if im, ok := ratioReconstruct(diff, gbd[base+i]-gbd[base+i+1], a.Dims); ok {
				out = append(out, im)
			}
		}
		if im, ok := ratioReconstruct(gw.RowView(base+a.Bins-1), gbd[base+a.Bins-1], a.Dims); ok {
			out = append(out, im)
		}
	}
	return DedupeReconstructions(out, 1e-8)
}

// Run executes the complete attack against a (possibly defended) batch and
// evaluates the reconstructions against the original images.
func (a *LOKI) Run(clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (Evaluation, []*imaging.Image, error) {
	return runPlanted(a, clientBatch, originals, rng)
}
