package attack

import (
	"context"
	"fmt"
	"math"
	"testing"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/fl"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

func TestVictimGradientsAreExact(t *testing.T) {
	// The whole attack story rests on the victim's uploaded gradients
	// being the exact analytic gradients; check against finite
	// differences on a small instance.
	ds := data.NewSynthCustom("gc", 4, 1, 4, 4, 32, 1)
	dims := ImageDims{C: 1, H: 4, W: 4}
	rng := nn.RandSource(1, 1)
	w := tensor.New(6, 16)
	w.FillRandn(rng, 0.3)
	b := tensor.New(6)
	b.FillRandn(rng, 0.1)
	victim, err := NewVictim(dims, 4, w, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := data.RandomBatch(ds, rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nn.CheckGradients(victim.Net, nn.SoftmaxCrossEntropy{}, batch.Flatten(), batch.Labels, 1e-5)
	if err != nil {
		t.Fatalf("victim gradients not exact: %v", err)
	}
	if res.MaxRelErr > 1e-4 {
		t.Fatalf("victim gradient error %.2e", res.MaxRelErr)
	}
}

func TestNewVictimValidatesShapes(t *testing.T) {
	rng := nn.RandSource(2, 1)
	dims := ImageDims{C: 1, H: 4, W: 4}
	if _, err := NewVictim(dims, 3, tensor.New(5, 99), tensor.New(5), rng); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := NewVictim(dims, 3, tensor.New(5, 16), tensor.New(4), rng); err == nil {
		t.Error("bias mismatch accepted")
	}
}

func TestRTFThresholdsAscending(t *testing.T) {
	ds := data.NewSynthCIFAR100(3)
	c, h, w := ds.Shape()
	rng := nn.RandSource(3, 1)
	rtf, err := NewRTF(ImageDims{C: c, H: h, W: w}, 100, 300, ds, rng, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rtf.Thresholds); i++ {
		if rtf.Thresholds[i] <= rtf.Thresholds[i-1] {
			t.Fatalf("thresholds not strictly ascending at %d", i)
		}
	}
}

func TestRTFNeedsTwoNeurons(t *testing.T) {
	ds := data.NewSynthCIFAR100(3)
	c, h, w := ds.Shape()
	rng := nn.RandSource(3, 2)
	if _, err := NewRTF(ImageDims{C: c, H: h, W: w}, 100, 1, ds, rng, 16); err == nil {
		t.Error("single-neuron RTF accepted")
	}
}

func TestRTFReconstructionCountMatchesBatch(t *testing.T) {
	// With fine bins and a small batch, RTF recovers exactly one image
	// per occupied bin.
	ds := data.NewSynthCIFAR100(4)
	c, h, w := ds.Shape()
	dims := ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(4, 1)
	rtf, err := NewRTF(dims, ds.NumClasses(), 400, ds, rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := data.RandomBatch(ds, rng, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, recons, err := rtf.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(recons) < 5 || len(recons) > 7 {
		t.Errorf("%d reconstructions for 6 samples", len(recons))
	}
}

func TestCAHSliceValidation(t *testing.T) {
	ds := data.NewSynthCIFAR100(5)
	c, h, w := ds.Shape()
	rng := nn.RandSource(5, 1)
	cah, err := NewCAH(ImageDims{C: c, H: h, W: w}, 100, 50, ds, rng, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cah.Slice(0); err == nil {
		t.Error("slice 0 accepted")
	}
	if _, err := cah.Slice(51); err == nil {
		t.Error("oversize slice accepted")
	}
	small, err := cah.Slice(10)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix property: the small attack's layer is the big one's prefix.
	bw, bb := cah.Layer()
	sw, sb := small.Layer()
	for i := 0; i < 10*c*h*w; i++ {
		if sw.Data()[i] != bw.Data()[i] {
			t.Fatal("sliced weights are not a prefix")
		}
	}
	for i := 0; i < 10; i++ {
		if sb.Data()[i] != bb.Data()[i] {
			t.Fatal("sliced biases are not a prefix")
		}
	}
}

func TestCAHValidation(t *testing.T) {
	ds := data.NewSynthCIFAR100(5)
	c, h, w := ds.Shape()
	rng := nn.RandSource(5, 2)
	dims := ImageDims{C: c, H: h, W: w}
	if _, err := NewCAH(dims, 100, 0, ds, rng, 64, 8); err == nil {
		t.Error("0 neurons accepted")
	}
	if _, err := NewCAH(dims, 100, 10, ds, rng, 64, 1); err == nil {
		t.Error("batch 1 accepted")
	}
}

func TestDedupeReconstructions(t *testing.T) {
	a := imaging.NewImage(1, 2, 2)
	a.Pix[0] = 0.5
	b := a.Clone() // duplicate
	c := imaging.NewImage(1, 2, 2)
	c.Pix[3] = 0.9 // distinct
	out := DedupeReconstructions([]*imaging.Image{a, b, c}, 1e-8)
	if len(out) != 2 {
		t.Errorf("dedupe kept %d, want 2", len(out))
	}
}

func TestEvaluationStats(t *testing.T) {
	orig := imaging.NewImage(1, 2, 2)
	orig.Pix[0] = 1
	near := orig.Clone()
	near.Pix[1] = 0.01
	far := imaging.NewImage(1, 2, 2)
	far.Pix[2] = 1
	ev := Evaluate([]*imaging.Image{near, far}, []*imaging.Image{orig})
	if ev.NumReconstructions != 2 || len(ev.PSNRs) != 2 {
		t.Fatalf("eval = %+v", ev)
	}
	if ev.MaxPSNR() < ev.MeanPSNR() {
		t.Error("max < mean")
	}
	if ev.PerOriginalBest[0] != ev.MaxPSNR() {
		t.Error("per-original best should track the closest reconstruction")
	}
	empty := Evaluate(nil, []*imaging.Image{orig})
	if empty.MeanPSNR() != 0 || empty.MaxPSNR() != 0 {
		t.Error("empty evaluation should report zeros")
	}
}

func TestRatioReconstructSkipsDeadNeuron(t *testing.T) {
	dims := ImageDims{C: 1, H: 2, W: 2}
	if _, ok := ratioReconstruct(make([]float64, 4), 0, dims); ok {
		t.Error("zero bias gradient inverted")
	}
	im, ok := ratioReconstruct([]float64{1, 2, 3, 4}, 2, dims)
	if !ok {
		t.Fatal("valid neuron skipped")
	}
	if math.Abs(im.Pix[3]-1) > 1e-12 { // 4/2 = 2 clamps to 1
		t.Errorf("clamped ratio = %g", im.Pix[3])
	}
	if math.Abs(im.Pix[0]-0.5) > 1e-12 {
		t.Errorf("ratio = %g, want 0.5", im.Pix[0])
	}
}

// TestDishonestServerHooks runs the FL-integration path: the hook swaps the
// model and captures per-client reconstructions.
func TestDishonestServerHooks(t *testing.T) {
	ds := data.NewSynthCustom("hooks", 4, 1, 8, 8, 128, 6)
	dims := ImageDims{C: 1, H: 8, W: 8}
	rng := nn.RandSource(6, 1)
	rtf, err := NewRTF(dims, 4, 100, ds, rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	hook, err := NewRTFServer(rtf, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hook.Name() != "dishonest-rtf" {
		t.Errorf("name = %q", hook.Name())
	}

	roster := fl.NewMemoryRoster()
	roster.Add(fl.NewLocalClient("victim", ds, 4, nn.RandSource(6, 2)))
	honest := nn.NewSequential(nn.NewLinear("fc", 64, 4, nn.RandSource(6, 3)))
	server := fl.NewServer(fl.ServerConfig{Rounds: 3, LearningRate: 0.1, Seed: 6}, honest, roster)
	server.Modifier = hook
	server.Observer = hook
	if _, err := server.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	caps := hook.Captures()
	if len(caps) != 3 {
		t.Fatalf("%d captures, want 3", len(caps))
	}
	for _, cap := range caps {
		if cap.ClientID != "victim" {
			t.Errorf("capture client = %q", cap.ClientID)
		}
		if len(cap.Reconstructions) == 0 {
			t.Error("capture holds no reconstructions")
		}
	}
}

// TestObserveIgnoresForeignPayloads guards the hook against updates from
// models that are not the malicious layout.
func TestObserveIgnoresForeignPayloads(t *testing.T) {
	ds := data.NewSynthCustom("foreign", 4, 1, 8, 8, 64, 7)
	dims := ImageDims{C: 1, H: 8, W: 8}
	rng := nn.RandSource(7, 1)
	rtf, err := NewRTF(dims, 4, 50, ds, rng, 32)
	if err != nil {
		t.Fatal(err)
	}
	hook, err := NewRTFServer(rtf, rng)
	if err != nil {
		t.Fatal(err)
	}
	hook.Observe(0, fl.Update{Grads: []*tensor.Tensor{tensor.New(3)}})
	hook.Observe(0, fl.Update{Grads: []*tensor.Tensor{tensor.New(2, 2), tensor.New(3)}})
	if got := len(hook.Captures()); got != 0 {
		t.Errorf("foreign payloads produced %d captures", got)
	}
}

func TestLinearInversionClassCoverage(t *testing.T) {
	ds := data.NewSynthCustom("lin", 8, 1, 6, 6, 128, 8)
	dims := ImageDims{C: 1, H: 6, W: 6}
	rng := nn.RandSource(8, 1)
	atk := NewLinearInversion(dims, 8)
	batch, err := data.UniqueLabelBatch(ds, rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, recons, err := atk.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Only present-class rows are kept.
	if len(recons) != 4 {
		t.Errorf("%d reconstructions, want 4 (one per present class)", len(recons))
	}
}

func TestVictimGradientsClonesPayload(t *testing.T) {
	ds := data.NewSynthCustom("clone", 4, 1, 4, 4, 32, 9)
	dims := ImageDims{C: 1, H: 4, W: 4}
	rng := nn.RandSource(9, 1)
	w := tensor.New(5, 16)
	w.FillRandn(rng, 0.3)
	victim, err := NewVictim(dims, 4, w, tensor.New(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := data.RandomBatch(ds, rng, 2)
	if err != nil {
		t.Fatal(err)
	}
	gw1, _, _ := victim.Gradients(batch)
	gw1.Fill(0) // mutating the returned tensor…
	gw2, _, _ := victim.Gradients(batch)
	if gw2.L2Norm() == 0 {
		t.Error("Gradients returned live references to parameter state")
	}
}

func TestImageDimsDim(t *testing.T) {
	if (ImageDims{C: 3, H: 4, W: 5}).Dim() != 60 {
		t.Error("Dim product")
	}
}

func ExampleRTF_Run() {
	ds := data.NewSynthCIFAR100(42)
	c, h, w := ds.Shape()
	rng := nn.RandSource(1, 2)
	rtf, _ := NewRTF(ImageDims{C: c, H: h, W: w}, ds.NumClasses(), 400, ds, rng, 128)
	batch, _ := data.RandomBatch(ds, rng, 4)
	ev, _, _ := rtf.Run(batch, batch.Images, rng)
	fmt.Println(ev.MeanPSNR() > 100) // undefended: essentially verbatim
	// Output: true
}
