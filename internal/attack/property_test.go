package attack

import (
	mrand "math/rand"
	"testing"
	"testing/quick"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

// quickCfg pins the generator so the properties are deterministic across
// runs (testing/quick defaults to a time-based seed).
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: mrand.New(mrand.NewSource(424242))}
}

// TestRTFSingleImageExactnessProperty is the Eq. 6 invariant at its
// sharpest: for any single-image batch, inverting the summed gradients
// recovers the image exactly (up to float64), regardless of the image or
// the attack seed. This is the degenerate case the paper's attack principle
// builds on — one sample per neuron ⇒ verbatim reconstruction.
func TestRTFSingleImageExactnessProperty(t *testing.T) {
	ds := data.NewSynthCustom("prop-rtf", 8, 1, 8, 8, 256, 99)
	dims := ImageDims{C: 1, H: 8, W: 8}
	err := quick.Check(func(seed uint64) bool {
		rng := nn.RandSource(seed, 77)
		rtf, err := NewRTF(dims, ds.NumClasses(), 64, ds, rng, 64)
		if err != nil {
			return false
		}
		batch, err := data.RandomBatch(ds, rng, 1)
		if err != nil {
			return false
		}
		ev, recons, err := rtf.Run(batch, batch.Images, rng)
		if err != nil {
			return false
		}
		if len(recons) == 0 {
			// The image's brightness fell below every bin threshold: the
			// attacker misses entirely — allowed, just not inexact.
			return true
		}
		return ev.MaxPSNR() >= 149
	}, quickCfg(10))
	if err != nil {
		t.Error(err)
	}
}

// TestCAHSoloActivationExactnessProperty: whenever a trap neuron is
// activated by exactly one sample, Eq. 6 on that neuron reproduces the
// sample verbatim. Verified constructively: single-image batches make every
// activated neuron a solo neuron.
func TestCAHSoloActivationExactnessProperty(t *testing.T) {
	ds := data.NewSynthCustom("prop-cah", 8, 1, 8, 8, 256, 98)
	dims := ImageDims{C: 1, H: 8, W: 8}
	err := quick.Check(func(seed uint64) bool {
		rng := nn.RandSource(seed, 78)
		cah, err := NewCAH(dims, ds.NumClasses(), 64, ds, rng, 64, 4)
		if err != nil {
			return false
		}
		batch, err := data.RandomBatch(ds, rng, 1)
		if err != nil {
			return false
		}
		ev, recons, err := cah.Run(batch, batch.Images, rng)
		if err != nil {
			return false
		}
		if len(recons) == 0 {
			// The lone image may trip no trap at all; that is a miss for
			// the attacker, not a property violation.
			return true
		}
		return ev.MaxPSNR() >= 149
	}, quickCfg(10))
	if err != nil {
		t.Error(err)
	}
}

// TestGradientSumProperty checks the linearity the whole attack class
// exploits (§III-A): gradients of a batch are the sum of per-sample
// gradients (cross-entropy means are rescaled to sums for comparison).
func TestGradientSumProperty(t *testing.T) {
	ds := data.NewSynthCustom("prop-sum", 4, 1, 6, 6, 64, 97)
	dims := ImageDims{C: 1, H: 6, W: 6}
	err := quick.Check(func(seed uint64) bool {
		rng := nn.RandSource(seed, 79)
		rtf, err := NewRTF(dims, ds.NumClasses(), 16, ds, rng, 32)
		if err != nil {
			return false
		}
		victim, err := rtf.BuildVictim(rng)
		if err != nil {
			return false
		}
		batch, err := data.RandomBatch(ds, rng, 3)
		if err != nil {
			return false
		}
		// Batch gradients are the mean over samples; scale to a sum.
		gwB, gbB, _ := victim.Gradients(batch)
		gwB.ScaleInPlace(float64(batch.Size()))
		gbB.ScaleInPlace(float64(batch.Size()))
		// Sum of single-sample gradients.
		var gwS, gbS = gwB.Clone(), gbB.Clone()
		gwS.Zero()
		gbS.Zero()
		for i := range batch.Images {
			single := &data.Batch{}
			single.Append(batch.Images[i], batch.Labels[i])
			gw, gb, _ := victim.Gradients(single)
			gwS.AddInPlace(gw)
			gbS.AddInPlace(gb)
		}
		return gwB.EqualApprox(gwS, 1e-9) && gbB.EqualApprox(gbS, 1e-9)
	}, quickCfg(8))
	if err != nil {
		t.Error(err)
	}
}
