package attack

import (
	"fmt"
	"math"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// QBI implements the quantile-based bias-initialization attack (Nowak et
// al., "QBI: Quantile-based Bias Initialization for Efficient Private Data
// Reconstruction in Federated Learning", arXiv:2406.18745).
//
// Like CAH, every malicious neuron projects the input onto an independent
// random direction r_i and aims to fire for ≈ one sample per batch so Eq. 6
// inverts its gradients verbatim. The difference is how the bias is placed:
// CAH sorts the empirical projections of the whole probe set through every
// neuron (O(neurons·probe·d)); QBI estimates each neuron's pre-activation
// distribution analytically from per-pixel probe moments,
//
//	m_i = r_i·μ,   v_i = Σ_j r_ij²·σ_j²,
//
// and sets b_i = −(m_i + z·√v_i) with z = Φ⁻¹(1 − 1/B) — one O(probe·d)
// pass over the probe data regardless of neuron count, which is what lets
// the published attack scale to wide layers.
type QBI struct {
	Neurons int
	Dims    ImageDims
	Classes int
	// TargetActivation is the desired per-sample activation probability
	// (1/B for the anticipated batch size B).
	TargetActivation float64

	weights *tensor.Tensor // [n, d] random projection directions
	bias    *tensor.Tensor // [n]
}

// Name returns the registry kind "qbi".
func (a *QBI) Name() string { return "qbi" }

// NewQBI calibrates a QBI layer of n neurons against probe data.
// expectedBatch is the batch size the attacker anticipates.
func NewQBI(dims ImageDims, classes, neurons int, probe data.Dataset, rng *rand.Rand, probeSize, expectedBatch int) (*QBI, error) {
	if neurons < 1 {
		return nil, fmt.Errorf("attack: QBI needs at least 1 neuron, got %d", neurons)
	}
	if expectedBatch < 2 {
		return nil, fmt.Errorf("attack: QBI expected batch must be ≥ 2, got %d", expectedBatch)
	}
	d := dims.Dim()
	w := tensor.New(neurons, d)
	w.FillRandn(rng, 1/math.Sqrt(float64(d)))

	if probeSize > probe.Len() {
		probeSize = probe.Len()
	}
	if probeSize < 1 {
		return nil, fmt.Errorf("attack: QBI needs at least 1 probe sample, got %d", probeSize)
	}
	// One pass over the probe set: per-pixel mean and variance.
	mean := make([]float64, d)
	m2 := make([]float64, d)
	for _, idx := range rng.Perm(probe.Len())[:probeSize] {
		im, _ := probe.Sample(idx)
		for j, v := range im.Pix {
			mean[j] += v
			m2[j] += v * v
		}
	}
	inv := 1.0 / float64(probeSize)
	variance := make([]float64, d)
	for j := range mean {
		mean[j] *= inv
		variance[j] = math.Max(0, m2[j]*inv-mean[j]*mean[j])
	}

	target := 1.0 / float64(expectedBatch)
	z := probitUpper(target) // Φ⁻¹(1 − target)
	b := tensor.New(neurons)
	for i := 0; i < neurons; i++ {
		row := w.RowView(i)
		m, v := 0.0, 0.0
		for j, r := range row {
			m += r * mean[j]
			v += r * r * variance[j]
		}
		b.Data()[i] = -(m + z*math.Sqrt(v))
	}
	return &QBI{
		Neurons: neurons, Dims: dims, Classes: classes,
		TargetActivation: target,
		weights:          w, bias: b,
	}, nil
}

// probitUpper returns Φ⁻¹(1 − p) for the standard normal distribution using
// the Acklam rational approximation (relative error below 1.15e-9), which is
// all the bias placement needs.
func probitUpper(p float64) float64 {
	q := 1 - p // the lower-tail probability
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	bb := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	dd := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const low, high = 0.02425, 1 - 0.02425
	switch {
	case q < low:
		r := math.Sqrt(-2 * math.Log(q))
		return (((((c[0]*r+c[1])*r+c[2])*r+c[3])*r+c[4])*r + c[5]) /
			((((dd[0]*r+dd[1])*r+dd[2])*r+dd[3])*r + 1)
	case q > high:
		r := math.Sqrt(-2 * math.Log(1-q))
		return -(((((c[0]*r+c[1])*r+c[2])*r+c[3])*r+c[4])*r + c[5]) /
			((((dd[0]*r+dd[1])*r+dd[2])*r+dd[3])*r + 1)
	default:
		r := q - 0.5
		s := r * r
		return (((((a[0]*s+a[1])*s+a[2])*s+a[3])*s+a[4])*s + a[5]) * r /
			(((((bb[0]*s+bb[1])*s+bb[2])*s+bb[3])*s+bb[4])*s + 1)
	}
}

// Layer returns copies of the malicious parameters.
func (a *QBI) Layer() (w, b *tensor.Tensor) { return a.weights.Clone(), a.bias.Clone() }

// BuildVictim assembles the full malicious model the server would dispatch.
func (a *QBI) BuildVictim(rng *rand.Rand) (*Victim, error) {
	w, b := a.Layer()
	return NewVictim(a.Dims, a.Classes, w, b, rng)
}

// Reconstruct applies Eq. 6 to every neuron with a usable bias gradient and
// de-duplicates the results, exactly as CAH does — the families differ only
// in calibration.
func (a *QBI) Reconstruct(gw, gb *tensor.Tensor) []*imaging.Image {
	if gw.Dim(0) != a.Neurons || gb.Dim(0) != a.Neurons {
		panic(fmt.Sprintf("attack: QBI gradients %vx%v do not match %d neurons", gw.Shape(), gb.Shape(), a.Neurons))
	}
	var out []*imaging.Image
	gbd := gb.Data()
	for i := 0; i < a.Neurons; i++ {
		if im, ok := ratioReconstruct(gw.RowView(i), gbd[i], a.Dims); ok {
			out = append(out, im)
		}
	}
	return DedupeReconstructions(out, 1e-8)
}

// Run executes the complete attack against a (possibly defended) batch and
// evaluates the reconstructions against the original images.
func (a *QBI) Run(clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (Evaluation, []*imaging.Image, error) {
	return runPlanted(a, clientBatch, originals, rng)
}
