package attack

import (
	"fmt"
	"math"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// ImageDims carries the raster geometry needed to fold flat gradient rows
// back into images.
type ImageDims struct {
	C, H, W int
}

// Dim returns the flattened input dimensionality C*H*W.
func (d ImageDims) Dim() int { return d.C * d.H * d.W }

// Victim is the model a dishonest server hands to a client: a malicious
// fully-connected layer placed directly after the input (the strongest
// placement per the paper's threat model), a ReLU, and a benign
// classification head.
type Victim struct {
	Net     *nn.Sequential
	Mal     *nn.Linear
	Dims    ImageDims
	Classes int
}

// NewVictim assembles a victim model around a planted malicious layer
// (W [n×d], b [n]). The head is built with identical columns so that
// ∂L/∂z_i is the same for every neuron i of one sample — the construction
// both published attacks use so that per-neuron gradient arithmetic isolates
// samples cleanly.
func NewVictim(dims ImageDims, classes int, w, b *tensor.Tensor, rng *rand.Rand) (*Victim, error) {
	return NewVictimGain(dims, classes, w, b, rng, 1)
}

// NewVictimGain is NewVictim with an explicit head gain. Gain multiplies the
// head columns, which scales ∂L/∂z_i — and therefore the malicious layer's
// share of the (clipped) gradient norm — without changing the inversion
// arithmetic (Eq. 6 ratios are scale-invariant). A dishonest server raises
// the gain to survive DP-style gradient noise; the dp ablation quantifies
// this arms race.
func NewVictimGain(dims ImageDims, classes int, w, b *tensor.Tensor, rng *rand.Rand, gain float64) (*Victim, error) {
	if w.Dim(1) != dims.Dim() {
		return nil, fmt.Errorf("attack: malicious layer width %d != input dim %d", w.Dim(1), dims.Dim())
	}
	if gain <= 0 {
		return nil, fmt.Errorf("attack: head gain %g must be positive", gain)
	}
	n := w.Dim(0)
	mal, err := nn.NewLinearFrom("malicious", w, b)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	// Head with identical columns: headW[k][i] = gain·v[k]/n.
	headW := tensor.New(classes, n)
	for k := 0; k < classes; k++ {
		v := rng.NormFloat64() * gain
		row := headW.RowView(k)
		for i := range row {
			row[i] = v / float64(n)
		}
	}
	head, err := nn.NewLinearFrom("head", headW, tensor.New(classes))
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return &Victim{
		Net:     nn.NewSequential(mal, nn.NewReLU("malicious.relu"), head),
		Mal:     mal,
		Dims:    dims,
		Classes: classes,
	}, nil
}

// Gradients runs one local training step on the batch exactly as an honest
// FL client would and returns the malicious layer's weight and bias
// gradients — the payload the dishonest server inverts. The returned loss is
// the client's training loss.
func (v *Victim) Gradients(b *data.Batch) (gw, gb *tensor.Tensor, loss float64) {
	v.Net.ZeroGrad()
	x := b.Flatten()
	logits := v.Net.Forward(x, true)
	loss, g := nn.SoftmaxCrossEntropy{}.Compute(logits, b.Labels)
	v.Net.Backward(g)
	return v.Mal.Weight.G.Clone(), v.Mal.Bias.G.Clone(), loss
}

// VectorToImage folds a flat reconstruction vector into a clamped image.
func VectorToImage(vec []float64, dims ImageDims) (*imaging.Image, error) {
	im, err := imaging.FromVector(vec, dims.C, dims.H, dims.W)
	if err != nil {
		return nil, err
	}
	return im.Clamp(), nil
}

// gradEps is the threshold below which a bias gradient is treated as zero
// (no sample activated the neuron/bin).
const gradEps = 1e-12

// DedupeReconstructions drops reconstructions that are near-duplicates
// (MSE below tol) of an earlier one; trap-weight attacks frequently recover
// the same sample through several neurons.
func DedupeReconstructions(recons []*imaging.Image, tol float64) []*imaging.Image {
	var out []*imaging.Image
	for _, r := range recons {
		dup := false
		for _, seen := range out {
			if imaging.MSE(r, seen) < tol {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return out
}

// Evaluation summarizes attack success against the original (pre-defense)
// batch, following the paper's protocol: each reconstruction is matched to
// its best-PSNR original.
type Evaluation struct {
	// PSNRs holds one entry per reconstruction: the PSNR against its
	// best-matching original.
	PSNRs []float64
	// PerOriginalBest holds, for every original image, the best PSNR any
	// reconstruction achieved against it (0 when nothing matched).
	PerOriginalBest []float64
	// NumReconstructions is len(PSNRs).
	NumReconstructions int
}

// MeanPSNR is the paper's headline metric: the average PSNR over the images
// reconstructed by the attack. It returns 0 when nothing was reconstructed.
func (e Evaluation) MeanPSNR() float64 {
	if len(e.PSNRs) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range e.PSNRs {
		s += p
	}
	return s / float64(len(e.PSNRs))
}

// MaxPSNR returns the single best reconstruction quality — the worst-case
// privacy leak.
func (e Evaluation) MaxPSNR() float64 {
	m := 0.0
	for _, p := range e.PSNRs {
		if p > m {
			m = p
		}
	}
	return m
}

// Evaluate matches reconstructions against originals and computes PSNRs.
func Evaluate(recons []*imaging.Image, originals []*imaging.Image) Evaluation {
	ev := Evaluation{
		PerOriginalBest:    make([]float64, len(originals)),
		NumReconstructions: len(recons),
	}
	for _, r := range recons {
		idx, p := imaging.BestMatch(r, originals)
		ev.PSNRs = append(ev.PSNRs, p)
		if idx >= 0 && p > ev.PerOriginalBest[idx] {
			ev.PerOriginalBest[idx] = p
		}
	}
	return ev
}

// runPlanted executes a planted-layer attack end to end: the victim model is
// built, client gradients are computed on clientBatch, and the
// reconstructions are evaluated against originals — the paper's measurement
// loop shared by every registered attack family.
func runPlanted(a Attack, clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (Evaluation, []*imaging.Image, error) {
	victim, err := a.BuildVictim(rng)
	if err != nil {
		return Evaluation{}, nil, err
	}
	gw, gb, _ := victim.Gradients(clientBatch)
	recons := a.Reconstruct(gw, gb)
	return Evaluate(recons, originals), recons, nil
}

// ratioReconstruct converts a (row of ∂W, scalar ∂b) pair into an image when
// the bias gradient is usable.
func ratioReconstruct(gwRow []float64, gb float64, dims ImageDims) (*imaging.Image, bool) {
	if math.Abs(gb) < gradEps {
		return nil, false
	}
	vec := make([]float64, len(gwRow))
	inv := 1 / gb
	for i, v := range gwRow {
		vec[i] = v * inv
	}
	im, err := VectorToImage(vec, dims)
	if err != nil {
		return nil, false
	}
	return im, true
}
