package attack

import (
	"math"
	"testing"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

// TestQBIActivationRate checks the analytic bias placement does its job:
// over held-out samples, neurons fire at roughly the 1/B target rate.
func TestQBIActivationRate(t *testing.T) {
	ds := data.NewSynthCustom("qbi-rate", 4, 1, 8, 8, 512, 21)
	rng := nn.RandSource(21, 1)
	const batch = 8
	qbi, err := NewQBI(ImageDims{C: 1, H: 8, W: 8}, 4, 128, ds, rng, 256, batch)
	if err != nil {
		t.Fatal(err)
	}
	w, b := qbi.Layer()
	fired, total := 0, 0
	for idx := 0; idx < 256; idx++ {
		im, _ := ds.Sample(idx)
		for i := 0; i < qbi.Neurons; i++ {
			row := w.RowView(i)
			s := b.Data()[i]
			for j, v := range row {
				s += v * im.Pix[j]
			}
			if s > 0 {
				fired++
			}
			total++
		}
	}
	rate := float64(fired) / float64(total)
	target := 1.0 / batch
	// The Gaussian moment approximation is not exact; accept a generous
	// band around the target. What matters is the order of magnitude: a
	// miscalibrated bias fires for ~all or ~no samples.
	if rate < target/4 || rate > target*4 {
		t.Errorf("activation rate %.3f outside [%.3f, %.3f] around target %.3f",
			rate, target/4, target*4, target)
	}
}

// TestQBIValidation mirrors the CAH construction guards.
func TestQBIValidation(t *testing.T) {
	ds := data.NewSynthCustom("qbi-bad", 4, 1, 8, 8, 64, 22)
	rng := nn.RandSource(22, 1)
	dims := ImageDims{C: 1, H: 8, W: 8}
	if _, err := NewQBI(dims, 4, 0, ds, rng, 64, 8); err == nil {
		t.Error("0 neurons accepted")
	}
	if _, err := NewQBI(dims, 4, 10, ds, rng, 64, 1); err == nil {
		t.Error("batch 1 accepted")
	}
}

// TestProbitUpper pins the inverse-CDF approximation against known values.
func TestProbitUpper(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{1.0 / 8, 1.1503},  // Φ⁻¹(0.875)
		{1.0 / 64, 2.1539}, // Φ⁻¹(1−1/64)
		{0.01, 2.3263},
	}
	for _, c := range cases {
		if got := probitUpper(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("probitUpper(%g) = %.4f, want %.4f", c.p, got, c.want)
		}
	}
}

// TestLOKIGroupStructure checks the neuron budget folds into groups of
// ascending within-group thresholds over disjoint kernel supports.
func TestLOKIGroupStructure(t *testing.T) {
	ds := data.NewSynthCustom("loki-groups", 4, 1, 8, 8, 256, 23)
	rng := nn.RandSource(23, 1)
	loki, err := NewLOKI(ImageDims{C: 1, H: 8, W: 8}, 4, 64, ds, rng, 128, DefaultLOKIScale)
	if err != nil {
		t.Fatal(err)
	}
	if loki.Groups*loki.Bins != loki.Neurons {
		t.Fatalf("groups %d × bins %d != neurons %d", loki.Groups, loki.Bins, loki.Neurons)
	}
	if loki.Groups < 2 {
		t.Fatalf("64 neurons should split into several kernels, got %d", loki.Groups)
	}
	w, b := loki.Layer()
	for g := 0; g < loki.Groups; g++ {
		base := g * loki.Bins
		// Thresholds (−bias) strictly ascend within the group.
		for i := 1; i < loki.Bins; i++ {
			if -b.Data()[base+i] <= -b.Data()[base+i-1] {
				t.Fatalf("group %d thresholds not ascending at bin %d", g, i)
			}
		}
		// All rows of one group share the same kernel support.
		first := w.RowView(base)
		for i := 1; i < loki.Bins; i++ {
			row := w.RowView(base + i)
			for j := range row {
				if (row[j] == 0) != (first[j] == 0) {
					t.Fatalf("group %d rows disagree on kernel support at pixel %d", g, j)
				}
			}
		}
	}
}

// TestLOKISeparatesBrightnessCollisions is the scaling story: two samples
// with (near-)identical mean brightness collide in every RTF bin, but LOKI's
// kernel diversity still separates them.
func TestLOKISeparatesBrightnessCollisions(t *testing.T) {
	ds := data.NewSynthCustom("loki-coll", 4, 1, 8, 8, 512, 24)
	rng := nn.RandSource(24, 1)
	dims := ImageDims{C: 1, H: 8, W: 8}

	// Find two distinct samples whose global means nearly coincide.
	imA, _ := ds.Sample(0)
	bestJ, bestGap := -1, math.Inf(1)
	for j := 1; j < ds.Len(); j++ {
		im, _ := ds.Sample(j)
		if gap := math.Abs(im.Mean() - imA.Mean()); gap < bestGap {
			bestJ, bestGap = j, gap
		}
	}
	imB, _ := ds.Sample(bestJ)
	batch := &data.Batch{}
	batch.Append(imA, 0)
	batch.Append(imB, 1)

	loki, err := NewLOKI(dims, ds.NumClasses(), 96, ds, rng, 256, DefaultLOKIScale)
	if err != nil {
		t.Fatal(err)
	}
	ev, _, err := loki.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatal(err)
	}
	sep := 0
	for _, p := range ev.PerOriginalBest {
		if p > 40 {
			sep++
		}
	}
	if sep < 2 {
		t.Errorf("LOKI separated %d/2 brightness-colliding samples (per-original best %v)",
			sep, ev.PerOriginalBest)
	}
}

// TestLOKIValidation covers the constructor guards.
func TestLOKIValidation(t *testing.T) {
	ds := data.NewSynthCustom("loki-bad", 4, 1, 8, 8, 64, 25)
	rng := nn.RandSource(25, 1)
	dims := ImageDims{C: 1, H: 8, W: 8}
	if _, err := NewLOKI(dims, 4, 1, ds, rng, 64, DefaultLOKIScale); err == nil {
		t.Error("single neuron accepted")
	}
	if _, err := NewLOKI(dims, 4, 32, ds, rng, 64, 0); err == nil {
		t.Error("zero scale accepted")
	}
}
