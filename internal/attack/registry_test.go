package attack

import (
	"math"
	"strings"
	"testing"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

// TestRegistryEveryKindRuns is the registry's contract test: every
// registered name constructs from one shared Config, builds a victim, and
// Run returns a sane Evaluation against an undefended batch (several
// reconstructions, near-verbatim quality).
func TestRegistryEveryKindRuns(t *testing.T) {
	ds := data.NewSynthCustom("registry", 4, 1, 8, 8, 240, 11)
	for _, kind := range Names() {
		t.Run(kind, func(t *testing.T) {
			rng := nn.RandSource(11, 1)
			atk, err := New(kind, Config{
				Dims:    ImageDims{C: 1, H: 8, W: 8},
				Classes: ds.NumClasses(),
				Neurons: 64,
				Probe:   ds,
				Batch:   4,
				Rng:     rng,
			})
			if err != nil {
				t.Fatalf("New(%q): %v", kind, err)
			}
			if atk.Name() != kind {
				t.Errorf("Name() = %q, want the registry kind %q", atk.Name(), kind)
			}
			victim, err := atk.BuildVictim(rng)
			if err != nil {
				t.Fatalf("BuildVictim: %v", err)
			}
			if victim.Mal == nil || victim.Mal.Weight.W.Dim(1) != 64 {
				t.Fatal("victim's planted layer has the wrong input width")
			}
			batch, err := data.RandomBatch(ds, rng, 4)
			if err != nil {
				t.Fatal(err)
			}
			ev, recons, err := atk.Run(batch, batch.Images, rng)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(recons) == 0 || ev.NumReconstructions != len(recons) {
				t.Fatalf("Run returned %d reconstructions, evaluation counts %d",
					len(recons), ev.NumReconstructions)
			}
			if len(ev.PerOriginalBest) != batch.Size() {
				t.Errorf("PerOriginalBest has %d entries for a batch of %d",
					len(ev.PerOriginalBest), batch.Size())
			}
			for _, p := range ev.PSNRs {
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
					t.Fatalf("insane PSNR %g", p)
				}
			}
			// Undefended, small batch, generous neuron budget: every family
			// must recover at least one essentially verbatim sample.
			if ev.MaxPSNR() < 40 {
				t.Errorf("undefended max PSNR %.1f dB; expected a near-verbatim reconstruction", ev.MaxPSNR())
			}
		})
	}
}

// TestRegistryUnknownKind asserts the error lists every valid family, which
// is what keeps validation messages from going stale.
func TestRegistryUnknownKind(t *testing.T) {
	_, err := New("gradient-wizard", Config{})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, kind := range Names() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not mention registered kind %q", err, kind)
		}
	}
}

// TestRegistryNames pins the built-in families and their sorted order.
func TestRegistryNames(t *testing.T) {
	want := []string{"cah", "loki", "qbi", "rtf"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
		if !Known(want[i]) {
			t.Errorf("Known(%q) = false", want[i])
		}
	}
	if Known("nope") {
		t.Error("Known(nope) = true")
	}
}

// TestRegisterRejectsBadRegistrations guards against shadowing built-ins.
func TestRegisterRejectsBadRegistrations(t *testing.T) {
	if err := Register("rtf", func(Config) (Attack, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register("", func(Config) (Attack, error) { return nil, nil }); err == nil {
		t.Error("empty kind accepted")
	}
	if err := Register("x", nil); err == nil {
		t.Error("nil constructor accepted")
	}
}

// TestConfigDefaults checks the zero Config resolves probe size and batch.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ProbeSize != 256 || cfg.Batch != 8 {
		t.Errorf("defaults = probe %d batch %d, want 256/8", cfg.ProbeSize, cfg.Batch)
	}
	// Explicit values survive.
	cfg = Config{ProbeSize: 7, Batch: 3}.withDefaults()
	if cfg.ProbeSize != 7 || cfg.Batch != 3 {
		t.Errorf("explicit values overridden: %+v", cfg)
	}
}

// TestConstructorValidationPropagates: every family rejects a nonsensical
// neuron budget through the registry path.
func TestConstructorValidationPropagates(t *testing.T) {
	ds := data.NewSynthCustom("registry-bad", 4, 1, 8, 8, 64, 12)
	for _, kind := range Names() {
		_, err := New(kind, Config{
			Dims:    ImageDims{C: 1, H: 8, W: 8},
			Classes: 4,
			Neurons: 0,
			Probe:   ds,
			Rng:     nn.RandSource(12, 1),
		})
		if err == nil {
			t.Errorf("%s accepted 0 neurons", kind)
		}
	}
}

// TestNewAttackServerDispatches runs the generic hook builder for every
// family and checks the label follows the attack name.
func TestNewAttackServerDispatches(t *testing.T) {
	ds := data.NewSynthCustom("registry-srv", 4, 1, 8, 8, 128, 13)
	for _, kind := range Names() {
		rng := nn.RandSource(13, 1)
		atk, err := New(kind, Config{
			Dims: ImageDims{C: 1, H: 8, W: 8}, Classes: 4, Neurons: 32,
			Probe: ds, Batch: 4, Rng: rng,
		})
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		srv, err := NewAttackServer(atk, rng)
		if err != nil {
			t.Fatalf("NewAttackServer(%q): %v", kind, err)
		}
		if srv.Name() != "dishonest-"+kind {
			t.Errorf("server name %q, want dishonest-%s", srv.Name(), kind)
		}
	}
}
