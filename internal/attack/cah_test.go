package attack

import (
	"testing"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

func TestCAHReconstructsWithoutDefense(t *testing.T) {
	ds := data.NewSynthCIFAR100(9)
	c, h, w := ds.Shape()
	dims := ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(17, 2)
	cah, err := NewCAH(dims, ds.NumClasses(), 300, ds, rng, 256, 8)
	if err != nil {
		t.Fatalf("NewCAH: %v", err)
	}
	batch := synthBatch(t, ds, 21, 8)
	ev, recons, err := cah.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recons) == 0 {
		t.Fatal("CAH reconstructed nothing on an undefended batch")
	}
	// With 300 trap neurons at activation probability 1/8, most of the 8
	// samples should be the sole activator of at least one neuron and be
	// recovered verbatim.
	recovered := 0
	for _, p := range ev.PerOriginalBest {
		if p > 100 {
			recovered++
		}
	}
	if recovered < 5 {
		t.Errorf("undefended CAH perfectly recovered %d/8 originals, want ≥ 5", recovered)
	}
}

func TestCAHDegradedByMajorRotationPlusShear(t *testing.T) {
	ds := data.NewSynthCIFAR100(9)
	c, h, w := ds.Shape()
	dims := ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(19, 2)
	cah, err := NewCAH(dims, ds.NumClasses(), 300, ds, rng, 256, 8)
	if err != nil {
		t.Fatalf("NewCAH: %v", err)
	}
	batch := synthBatch(t, ds, 23, 8)

	mrsh := core.New(augment.NewCompose(augment.MajorRotation{}, augment.Shearing{}))
	defended, err := mrsh.Apply(batch)
	if err != nil {
		t.Fatalf("defense: %v", err)
	}
	evDef, _, err := cah.Run(defended, batch.Images, rng)
	if err != nil {
		t.Fatalf("Run defended: %v", err)
	}
	evRaw, _, err := cah.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatalf("Run raw: %v", err)
	}
	if evDef.MeanPSNR() >= evRaw.MeanPSNR() {
		t.Errorf("MR+SH did not reduce CAH mean PSNR: defended %.2f vs raw %.2f",
			evDef.MeanPSNR(), evRaw.MeanPSNR())
	}
	// Paper Fig. 6: MR+SH drags the average PSNR of CAH reconstructions
	// below ~25 dB (individual outliers remain, visible in the paper's
	// own box plots).
	if got := evDef.MeanPSNR(); got > 30 {
		t.Errorf("MR+SH-defended CAH mean PSNR = %.2f dB, want < 30", got)
	}
	perfect := func(ev Evaluation) int {
		n := 0
		for _, p := range ev.PerOriginalBest {
			if p > 100 {
				n++
			}
		}
		return n
	}
	if pd, pr := perfect(evDef), perfect(evRaw); pd >= pr {
		t.Errorf("MR+SH did not reduce verbatim recoveries: defended %d vs raw %d", pd, pr)
	}
}

func TestLinearInversionShape(t *testing.T) {
	ds := data.NewSynthCIFAR100(31)
	c, h, w := ds.Shape()
	dims := ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(37, 2)
	attackObj := NewLinearInversion(dims, ds.NumClasses())

	batch, err := data.UniqueLabelBatch(ds, rng, 8)
	if err != nil {
		t.Fatalf("UniqueLabelBatch: %v", err)
	}
	evRaw, recons, err := attackObj.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatalf("Run raw: %v", err)
	}
	if len(recons) != 8 {
		t.Fatalf("linear attack produced %d reconstructions, want 8", len(recons))
	}
	defended, err := core.New(augment.MajorRotation{}).Apply(batch)
	if err != nil {
		t.Fatalf("defense: %v", err)
	}
	evDef, _, err := attackObj.Run(defended, batch.Images, rng)
	if err != nil {
		t.Fatalf("Run defended: %v", err)
	}
	if evDef.MeanPSNR() >= evRaw.MeanPSNR() {
		t.Errorf("MR did not reduce linear-inversion PSNR: defended %.2f vs raw %.2f",
			evDef.MeanPSNR(), evRaw.MeanPSNR())
	}
	// §IV-D: in the single-layer model the transformed copies share the
	// class neuron by construction, so no image should be recovered
	// verbatim under the defense.
	if evDef.MaxPSNR() > 100 {
		t.Errorf("linear inversion under MR still found a perfect reconstruction (%.2f dB)", evDef.MaxPSNR())
	}
}
