package attack

import (
	"fmt"
	rand "math/rand/v2"
	"sync"

	"github.com/oasisfl/oasis/internal/fl"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Reconstructor inverts malicious-layer gradients into images. Both RTF and
// CAH satisfy this.
type Reconstructor interface {
	Reconstruct(gw, gb *tensor.Tensor) []*imaging.Image
}

var (
	_ Reconstructor = (*RTF)(nil)
	_ Reconstructor = (*CAH)(nil)
)

// Capture is one reconstruction event: what the dishonest server recovered
// from one client in one round.
type Capture struct {
	Round           int
	ClientID        string
	Reconstructions []*imaging.Image
}

// DishonestServer implements both fl.ModelModifier and fl.UpdateObserver: it
// swaps every dispatched model for the attack's malicious victim model and
// inverts every uploaded gradient. Plug it into fl.Server.Modifier and
// fl.Server.Observer to run the paper's threat model end to end.
//
// The fl.Server serializes Observe calls in deterministic client-selection
// order even with a concurrent round engine (Workers > 1), so the capture
// sequence is reproducible under a fixed seed. The mutex below additionally
// makes Captures safe to poll from other goroutines while a run is live.
type DishonestServer struct {
	label string
	spec  fl.ModelSpec
	recon Reconstructor

	mu       sync.Mutex
	captures []Capture
}

var (
	_ fl.ModelModifier  = (*DishonestServer)(nil)
	_ fl.UpdateObserver = (*DishonestServer)(nil)
)

// NewDishonestServer wraps a calibrated attack (its victim model and its
// reconstructor) as FL server hooks.
func NewDishonestServer(label string, victim *Victim, recon Reconstructor) (*DishonestServer, error) {
	spec, err := fl.EncodeModel(victim.Net)
	if err != nil {
		return nil, fmt.Errorf("attack: encode malicious model: %w", err)
	}
	return &DishonestServer{label: label, spec: spec, recon: recon}, nil
}

// NewAttackServer builds the dishonest-server hooks for any calibrated
// registry attack: one victim model is built up front and dispatched on
// every round the hooks are active.
func NewAttackServer(a Attack, rng *rand.Rand) (*DishonestServer, error) {
	victim, err := a.BuildVictim(rng)
	if err != nil {
		return nil, err
	}
	return NewDishonestServer(a.Name(), victim, a)
}

// NewRTFServer builds the dishonest-server hooks for a calibrated RTF attack.
func NewRTFServer(a *RTF, rng *rand.Rand) (*DishonestServer, error) {
	return NewAttackServer(a, rng)
}

// NewCAHServer builds the dishonest-server hooks for a calibrated CAH attack.
func NewCAHServer(a *CAH, rng *rand.Rand) (*DishonestServer, error) {
	return NewAttackServer(a, rng)
}

// Modify discards the honest global model and dispatches the malicious one —
// the paper's §III-A capability ("changing and/or adding model parameters").
func (d *DishonestServer) Modify(_ int, _ fl.ModelSpec) (fl.ModelSpec, error) {
	return d.spec, nil
}

// Name labels the modifier for logs.
func (d *DishonestServer) Name() string { return "dishonest-" + d.label }

// Observe inverts one client's uploaded gradients. The victim model's
// parameter order puts the malicious layer's weight and bias first.
func (d *DishonestServer) Observe(round int, u fl.Update) {
	if len(u.Grads) < 2 {
		return
	}
	gw, gb := u.Grads[0], u.Grads[1]
	if gw.Dims() != 2 || gb.Dims() != 1 || gw.Dim(0) != gb.Dim(0) {
		return // client returned something that is not our malicious layout
	}
	recons := d.recon.Reconstruct(gw, gb)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.captures = append(d.captures, Capture{
		Round:           round,
		ClientID:        u.ClientID,
		Reconstructions: recons,
	})
}

// Captures returns a snapshot of everything reconstructed so far.
func (d *DishonestServer) Captures() []Capture {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Capture, len(d.captures))
	copy(out, d.captures)
	return out
}
