package attack

import (
	"fmt"
	"math"
	rand "math/rand/v2"
	"sort"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// CAH implements the "Curious Abandon Honesty" trap-weight attack (Boenisch
// et al., EuroS&P 2023; paper reference [17]).
//
// Each malicious neuron projects the input onto an independent random
// direction r_i; its bias is calibrated (from the attacker's public data) so
// the neuron fires for a target fraction of samples — the attack aims for
// roughly one activation per neuron per batch so that Eq. 6 inverts the
// neuron's gradients to a verbatim training image. Neurons hit by several
// samples reconstruct only their weighted mean, which is how OASIS (more
// samples per batch + transforms correlated with their originals) destroys
// reconstruction quality.
type CAH struct {
	Neurons int
	Dims    ImageDims
	Classes int
	// TargetActivation is the desired per-sample activation probability;
	// the attack calibrates for 1/B of the batch size it expects.
	TargetActivation float64

	weights *tensor.Tensor // [n, d] trap directions
	bias    *tensor.Tensor // [n]
}

// Name returns the registry kind "cah".
func (a *CAH) Name() string { return "cah" }

// NewCAH builds a trap-weight layer of n neurons calibrated against probe
// data. expectedBatch is the batch size the attacker anticipates; the bias
// of every neuron is the (1 − 1/expectedBatch) quantile of its projection
// distribution over the probe set.
func NewCAH(dims ImageDims, classes, neurons int, probe data.Dataset, rng *rand.Rand, probeSize, expectedBatch int) (*CAH, error) {
	if neurons < 1 {
		return nil, fmt.Errorf("attack: CAH needs at least 1 neuron, got %d", neurons)
	}
	if expectedBatch < 2 {
		return nil, fmt.Errorf("attack: CAH expected batch must be ≥ 2, got %d", expectedBatch)
	}
	d := dims.Dim()
	w := tensor.New(neurons, d)
	w.FillRandn(rng, 1/math.Sqrt(float64(d)))

	if probeSize > probe.Len() {
		probeSize = probe.Len()
	}
	// Project the probe set through every trap direction to place biases.
	probeVecs := make([][]float64, 0, probeSize)
	for _, idx := range rng.Perm(probe.Len())[:probeSize] {
		im, _ := probe.Sample(idx)
		probeVecs = append(probeVecs, im.Pix)
	}
	target := 1.0 / float64(expectedBatch)
	b := tensor.New(neurons)
	projs := make([]float64, len(probeVecs))
	for i := 0; i < neurons; i++ {
		row := w.RowView(i)
		for j, pv := range probeVecs {
			s := 0.0
			for k, v := range row {
				s += v * pv[k]
			}
			projs[j] = s
		}
		sort.Float64s(projs)
		theta := quantile(projs, 1-target)
		b.Data()[i] = -theta
	}
	return &CAH{
		Neurons: neurons, Dims: dims, Classes: classes,
		TargetActivation: target,
		weights:          w, bias: b,
	}, nil
}

// Layer returns copies of the malicious parameters.
func (a *CAH) Layer() (w, b *tensor.Tensor) { return a.weights.Clone(), a.bias.Clone() }

// Slice derives a smaller attack using the first n trap neurons. Trap rows
// are i.i.d., so the prefix of a calibrated layer is itself a calibrated
// layer; neuron-count sweeps (Figure 4) reuse one expensive calibration.
func (a *CAH) Slice(n int) (*CAH, error) {
	if n < 1 || n > a.Neurons {
		return nil, fmt.Errorf("attack: CAH slice %d outside [1,%d]", n, a.Neurons)
	}
	d := a.Dims.Dim()
	w := tensor.New(n, d)
	copy(w.Data(), a.weights.Data()[:n*d])
	b := tensor.New(n)
	copy(b.Data(), a.bias.Data()[:n])
	return &CAH{
		Neurons: n, Dims: a.Dims, Classes: a.Classes,
		TargetActivation: a.TargetActivation,
		weights:          w, bias: b,
	}, nil
}

// BuildVictim assembles the full malicious model the server would dispatch.
func (a *CAH) BuildVictim(rng *rand.Rand) (*Victim, error) {
	w, b := a.Layer()
	return NewVictim(a.Dims, a.Classes, w, b, rng)
}

// Reconstruct applies Eq. 6 to every neuron with a usable bias gradient and
// de-duplicates the results (one sample often trips several trap neurons).
func (a *CAH) Reconstruct(gw, gb *tensor.Tensor) []*imaging.Image {
	if gw.Dim(0) != a.Neurons || gb.Dim(0) != a.Neurons {
		panic(fmt.Sprintf("attack: CAH gradients %vx%v do not match %d neurons", gw.Shape(), gb.Shape(), a.Neurons))
	}
	var out []*imaging.Image
	gbd := gb.Data()
	for i := 0; i < a.Neurons; i++ {
		if im, ok := ratioReconstruct(gw.RowView(i), gbd[i], a.Dims); ok {
			out = append(out, im)
		}
	}
	return DedupeReconstructions(out, 1e-8)
}

// Run executes the complete attack against a (possibly defended) batch and
// evaluates reconstructions against the original images — the measurement
// loop for Figures 4 and 6.
func (a *CAH) Run(clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (Evaluation, []*imaging.Image, error) {
	return runPlanted(a, clientBatch, originals, rng)
}
