package attack

import (
	"testing"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

func synthBatch(t *testing.T, ds data.Dataset, seed uint64, size int) *data.Batch {
	t.Helper()
	rng := nn.RandSource(seed, 1)
	b, err := data.RandomBatch(ds, rng, size)
	if err != nil {
		t.Fatalf("RandomBatch: %v", err)
	}
	return b
}

func TestRTFPerfectReconstructionWithoutDefense(t *testing.T) {
	ds := data.NewSynthCIFAR100(7)
	c, h, w := ds.Shape()
	dims := ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(11, 2)
	rtf, err := NewRTF(dims, ds.NumClasses(), 500, ds, rng, 256)
	if err != nil {
		t.Fatalf("NewRTF: %v", err)
	}
	batch := synthBatch(t, ds, 3, 8)
	ev, recons, err := rtf.Run(batch, batch.Images, rng)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recons) == 0 {
		t.Fatal("RTF reconstructed nothing on an undefended batch")
	}
	// Paper: undefended RTF at B=8 yields near-perfect reconstructions
	// (>100 dB). Every sample should be recovered essentially verbatim.
	if got := ev.MeanPSNR(); got < 100 {
		t.Errorf("undefended RTF mean PSNR = %.2f dB, want > 100", got)
	}
	recovered := 0
	for _, p := range ev.PerOriginalBest {
		if p > 100 {
			recovered++
		}
	}
	if recovered < 7 { // allow one bin collision among 8 samples
		t.Errorf("undefended RTF perfectly recovered %d/8 originals, want ≥ 7", recovered)
	}
}

func TestRTFDefeatedByMajorRotation(t *testing.T) {
	ds := data.NewSynthCIFAR100(7)
	c, h, w := ds.Shape()
	dims := ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(13, 2)
	rtf, err := NewRTF(dims, ds.NumClasses(), 500, ds, rng, 256)
	if err != nil {
		t.Fatalf("NewRTF: %v", err)
	}
	batch := synthBatch(t, ds, 5, 8)
	defended, err := core.New(augment.MajorRotation{}).Apply(batch)
	if err != nil {
		t.Fatalf("defense: %v", err)
	}
	ev, _, err := rtf.Run(defended, batch.Images, rng)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Paper Fig. 5: major rotation drives RTF reconstructions to ~15–20 dB.
	if got := ev.MeanPSNR(); got > 40 {
		t.Errorf("MR-defended RTF mean PSNR = %.2f dB, want < 40", got)
	}
	if got := ev.MaxPSNR(); got > 100 {
		t.Errorf("MR-defended RTF still produced a perfect reconstruction (max %.2f dB)", got)
	}
}
