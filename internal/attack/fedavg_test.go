package attack

import (
	"testing"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// TestRTFExtendsToFedAvgPseudoGradients goes beyond the paper's FedSGD
// setting: when clients run several local SGD steps and upload the weight
// displacement (w₀ − w_k)/η, the displacement of the malicious layer is the
// sum of the per-step gradients at slightly drifted thresholds — and
// adjacent-bin differencing still isolates individual samples. OASIS must
// therefore be applied in FedAvg deployments too, and the companion test
// shows it still works there.
func TestRTFExtendsToFedAvgPseudoGradients(t *testing.T) {
	ds := data.NewSynthCIFAR100(11)
	c, h, w := ds.Shape()
	dims := ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(40, 1)
	rtf, err := NewRTF(dims, ds.NumClasses(), 400, ds, rng, 256)
	if err != nil {
		t.Fatal(err)
	}

	runTwoLocalSteps := func(defend bool) (Evaluation, int) {
		victim, err := rtf.BuildVictim(rng)
		if err != nil {
			t.Fatal(err)
		}
		const lr = 0.01
		var originals []*imaging.Image
		var pgw, pgb *tensor.Tensor
		for step := 0; step < 2; step++ {
			batch, err := data.RandomBatch(ds, rng, 8)
			if err != nil {
				t.Fatal(err)
			}
			originals = append(originals, batch.Images...)
			client := batch
			if defend {
				client, err = core.New(augment.MajorRotation{}).Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
			}
			gw, gb, _ := victim.Gradients(client)
			if pgw == nil {
				pgw, pgb = gw, gb
			} else {
				pgw.AddInPlace(gw)
				pgb.AddInPlace(gb)
			}
			// Local SGD step: the next gradient is computed at w₁.
			for _, p := range victim.Net.Params() {
				p.W.AddScaledInPlace(-lr, p.G)
			}
		}
		ev := Evaluate(rtf.Reconstruct(pgw, pgb), originals)
		verbatim := 0
		for _, p := range ev.PerOriginalBest {
			if p > 100 {
				verbatim++
			}
		}
		return ev, verbatim
	}

	evRaw, verbatimRaw := runTwoLocalSteps(false)
	if verbatimRaw < 3 {
		t.Errorf("FedAvg pseudo-gradient inversion recovered only %d/16 verbatim — attack should extend", verbatimRaw)
	}
	recognizable := 0
	for _, p := range evRaw.PerOriginalBest {
		if p > 30 {
			recognizable++
		}
	}
	if recognizable < 12 {
		t.Errorf("only %d/16 originals recognizable from FedAvg updates", recognizable)
	}

	evDef, verbatimDef := runTwoLocalSteps(true)
	if verbatimDef != 0 {
		t.Errorf("OASIS-defended FedAvg still leaked %d verbatim images", verbatimDef)
	}
	if evDef.MeanPSNR() >= evRaw.MeanPSNR() {
		t.Errorf("defense did not reduce FedAvg inversion quality: %.1f vs %.1f",
			evDef.MeanPSNR(), evRaw.MeanPSNR())
	}
}
