package attack

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// LinearInversion is the gradient-inversion attack on single-layer logistic
// models (paper §IV-D, following [18], [30]). The setting is restrictive:
// the model is one fully-connected layer trained with softmax cross-entropy
// and every image in a batch carries a unique label. The server inverts the
// gradient row of class k:
//
//	x̂_k = ∂L/∂W_k ÷ ∂L/∂b_k
//
// which is dominated by the single sample with label k. With OASIS the
// transformed copies share the class row by construction (a single layer has
// one "neuron" per class), so the inversion yields only the linear
// combination of an image and its transforms.
type LinearInversion struct {
	Dims    ImageDims
	Classes int
}

// NewLinearInversion constructs the attack for the given geometry.
func NewLinearInversion(dims ImageDims, classes int) *LinearInversion {
	return &LinearInversion{Dims: dims, Classes: classes}
}

// BuildModel returns the single-layer victim model with small random
// initialization, as an honest server would initialize logistic regression.
func (a *LinearInversion) BuildModel(rng *rand.Rand) *nn.Sequential {
	lin := nn.NewLinear("logistic", a.Dims.Dim(), a.Classes, rng)
	// Small weights keep early-training softmax outputs near uniform,
	// the regime analyzed in [30].
	lin.Weight.W.ScaleInPlace(0.01)
	return nn.NewSequential(lin)
}

// Gradients computes the model gradients a client would upload for batch b.
func (a *LinearInversion) Gradients(model *nn.Sequential, b *data.Batch) (gw, gb *tensor.Tensor, loss float64) {
	model.ZeroGrad()
	logits := model.Forward(b.Flatten(), true)
	loss, g := nn.SoftmaxCrossEntropy{}.Compute(logits, b.Labels)
	model.Backward(g)
	params := model.Params()
	return params[0].G.Clone(), params[1].G.Clone(), loss
}

// Reconstruct inverts each class row with a usable bias gradient.
func (a *LinearInversion) Reconstruct(gw, gb *tensor.Tensor) []*imaging.Image {
	if gw.Dim(0) != a.Classes || gb.Dim(0) != a.Classes {
		panic(fmt.Sprintf("attack: linear gradients %vx%v do not match %d classes", gw.Shape(), gb.Shape(), a.Classes))
	}
	var out []*imaging.Image
	gbd := gb.Data()
	for k := 0; k < a.Classes; k++ {
		if im, ok := ratioReconstruct(gw.RowView(k), gbd[k], a.Dims); ok {
			out = append(out, im)
		}
	}
	return out
}

// Run executes the attack end to end: model dispatch, client gradients on
// clientBatch, inversion, evaluation against originals (Figure 13 loop).
// Rows whose class had no sample in the batch invert to noise and naturally
// score near-zero PSNR; they are excluded, matching the paper's evaluation
// of reconstructed training images only.
func (a *LinearInversion) Run(clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (Evaluation, []*imaging.Image, error) {
	model := a.BuildModel(rng)
	gw, gb, _ := a.Gradients(model, clientBatch)
	recons := a.Reconstruct(gw, gb)
	// Keep only rows for classes present in the client batch: absent
	// classes produce pure-noise inversions the attacker discards.
	present := make(map[int]bool, len(clientBatch.Labels))
	for _, y := range clientBatch.Labels {
		present[y] = true
	}
	var kept []*imaging.Image
	idx := 0
	gbd := gb.Data()
	for k := 0; k < a.Classes; k++ {
		if absf(gbd[k]) < gradEps {
			continue
		}
		if present[k] {
			kept = append(kept, recons[idx])
		}
		idx++
	}
	return Evaluate(kept, originals), kept, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
