// Package attack implements the active reconstruction attacks the paper
// defends against, behind a common [Attack] interface and a named-constructor
// [Registry] (mirroring the aggregator/partitioner/sampler dispatch used
// across the repo). The registered families are:
//
//   - "rtf" — RTF ("Robbing the Fed", Fowl et al., ICLR 2022; paper
//     reference [18], arXiv:2110.13057): an imprint layer whose neurons bin a
//     scalar measurement of the input (mean brightness); adjacent-bin
//     gradient differences invert to single images.
//   - "cah" — CAH ("Curious Abandon Honesty", Boenisch et al., EuroS&P 2023;
//     paper reference [17], arXiv:2112.02918): trap weights projecting onto
//     random directions, biases placed at empirical quantiles of the probe
//     projections so each neuron fires for ≈ one sample per batch; each
//     singly-activated neuron inverts to its sample via Eq. 6.
//   - "qbi" — QBI ("Quantile-based Bias Initialization", Nowak et al.,
//     arXiv:2406.18745): the CAH trap geometry with analytically placed
//     biases. Instead of projecting the whole probe set through every
//     neuron, QBI estimates each neuron's pre-activation distribution from
//     per-pixel probe moments and sets the bias at the Gaussian
//     (1 − 1/B)-quantile, so calibration is O(probe·d) instead of
//     O(neurons·probe·d) while target neurons still fire for ~1/B of
//     samples.
//   - "loki" — LOKI-style ("LOKI: Large-scale Data Reconstruction Attack
//     ... through Model Manipulation", Zhao et al., arXiv:2303.12233):
//     scaled identity/kernel manipulation aimed at large sampled
//     populations. Neurons are split into groups; each group measures a
//     different random pixel kernel (scaled by an amplification factor γ
//     that inflates the malicious layer's share of the gradient), with
//     within-group quantile bins inverted by adjacent differencing.
//     Measurement diversity across groups separates samples — and sampled
//     clients — that collide under any single scalar measurement.
//
// [LinearInversion] (the single-layer logistic-model inversion of §IV-D) is
// deliberately not registered: it attacks a different victim architecture
// (no planted layer) and is driven directly by the Figure 13 experiment.
//
// All families follow the paper's attack principle (§III-A): for a
// fully-connected layer z = Wx + b, per-neuron gradients are
// ∂L/∂W_i = Σ_j g_ij·x_j and ∂L/∂b_i = Σ_j g_ij, so whenever one sample's
// contribution can be isolated, x̂ = (∂L/∂b_i)⁻¹·∂L/∂W_i is a verbatim copy.
package attack
