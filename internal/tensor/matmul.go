package tensor

import "fmt"

// Matrix kernels: cache-blocked, goroutine-tiled, and bit-identical to the
// historical serial implementations retained in ref.go.
//
// Three rules keep results reproducible while everything else about the
// loops is rearranged for locality:
//
//  1. Fixed summation order. Every output element accumulates its k products
//     in ascending-k order (MatMulTransB through the same 4-way unrolled dot
//     the serial kernel used), so no tiling choice changes a rounding step.
//     The inner dimension is never split across partial sums.
//  2. Exclusive ownership. Goroutines receive disjoint row spans of the
//     output (parallelRows); each element is computed start-to-finish by
//     exactly one goroutine. No atomics, no reductions, no races.
//  3. Dense inner loops. The historical `av == 0` sparse-skip branches are
//     gone: operands here are dense Gaussian activations, so the branch was
//     a mispredict tax on every innermost iteration, and for finite inputs
//     adding the ±0.0 terms it skipped cannot change an IEEE-754 sum (the
//     differential tests assert exact equality against the branchy refs).
//
// Blocking scheme: the output is tiled into column panels (mulColBlock wide);
// operands whose panel columns stride across wide rows (MatMul, MatMulTransA)
// are packed into a contiguous pooled buffer once per panel and reused across
// the whole row span, so steady-state traffic is panel-sized instead of
// operand-sized. MatMulTransB's B rows are already contiguous, so it tiles
// without packing and amortizes each B row over two A rows per pass (dot2).
const (
	// mulColBlock is the output-column panel width for the packed kernels:
	// 512 float64s keep a packed panel row plus the matching output chunk
	// inside L1 while a whole k×512 panel stays L2-resident for reuse.
	mulColBlock = 512
	// transBRowBlock is how many B rows (output columns) MatMulTransB holds
	// hot per pass over a row span; 32 rows of a 3072-wide B is 768 KiB,
	// sized for the L2 the attack-shaped matmuls stream through.
	transBRowBlock = 32
	// transASmallOut: below this many output elements MatMulTransA keeps the
	// historical kk-outer order (the whole output stays cache-resident, so
	// panel packing would only add copies).
	transASmallOut = 1 << 14
	// transposeTile is the square tile edge for Transpose2D: 32×32 float64
	// tiles (8 KiB) keep both the row-major reads and the column-major
	// writes inside L1 while a tile is live.
	transposeTile = 32
)

// MatMul returns the matrix product a·b for 2-D tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := NewPooled(m, n)
	ad, bd, od := a.data, b.data, out.data
	parallelRows("matmul", m, m*k*n, func(lo, hi int) {
		w0 := min(mulColBlock, n)
		panel := getBuf(k * w0)
		for jb := 0; jb < n; jb += mulColBlock {
			je := min(jb+mulColBlock, n)
			w := je - jb
			// Pack B's column panel b[:, jb:je] contiguously so the
			// accumulation loop streams it without striding across n.
			for kk := 0; kk < k; kk++ {
				copy(panel[kk*w:(kk+1)*w], bd[kk*n+jb:kk*n+je])
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n+jb : i*n+je]
				for kk := 0; kk < k; kk++ {
					axpy(orow, arow[kk], panel[kk*w:(kk+1)*w])
				}
			}
		}
		putBuf(panel)
	})
	return out
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	out := NewPooled(m, n)
	matMulTransBInto(out.data, a.data, b.data, m, k, n)
	return out
}

// matMulTransBInto computes out = a·bᵀ into a caller-provided m×n buffer.
func matMulTransBInto(od, ad, bd []float64, m, k, n int) {
	parallelRows("matmul_tb", m, m*k*n, func(lo, hi int) {
		for jb := 0; jb < n; jb += transBRowBlock {
			je := min(jb+transBRowBlock, n)
			// Two A rows per pass over the hot B panel: halves panel reads
			// per output element; dot2 preserves each row's dot order.
			i := lo
			for ; i+2 <= hi; i += 2 {
				a0 := ad[i*k : (i+1)*k]
				a1 := ad[(i+1)*k : (i+2)*k]
				o0 := od[i*n : (i+1)*n]
				o1 := od[(i+1)*n : (i+2)*n]
				for j := jb; j < je; j++ {
					o0[j], o1[j] = dot2(a0, a1, bd[j*k:(j+1)*k])
				}
			}
			if i < hi {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n : (i+1)*n]
				for j := jb; j < je; j++ {
					orow[j] = dot(arow, bd[j*k:(j+1)*k])
				}
			}
		}
	})
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires 2-D operands, got %vᵀ × %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	out := NewPooled(m, n)
	ad, bd, od := a.data, b.data, out.data
	flops := k * m * n
	if m*n <= transASmallOut {
		// Small output (conv weight gradients): the whole m×n result is
		// cache-resident, so keep the historical kk-outer sweep — minus the
		// sparse-skip branch — and split the output rows across workers.
		parallelRows("matmul_ta", m, flops, func(lo, hi int) {
			for kk := 0; kk < k; kk++ {
				arow := ad[kk*m : (kk+1)*m]
				brow := bd[kk*n : (kk+1)*n]
				for i := lo; i < hi; i++ {
					axpy(od[i*n:(i+1)*n], arow[i], brow)
				}
			}
		})
		return out
	}
	// Large output (malicious-layer weight gradients, e.g. 3072×500): tile
	// output columns and pack B's panel once per span so each output tile
	// accumulates from L1/L2-resident data. Per element the k products still
	// fold in ascending-k order.
	parallelRows("matmul_ta", m, flops, func(lo, hi int) {
		w0 := min(mulColBlock, n)
		panel := getBuf(k * w0)
		for jb := 0; jb < n; jb += mulColBlock {
			je := min(jb+mulColBlock, n)
			w := je - jb
			for kk := 0; kk < k; kk++ {
				copy(panel[kk*w:(kk+1)*w], bd[kk*n+jb:kk*n+je])
			}
			for i := lo; i < hi; i++ {
				orow := od[i*n+jb : i*n+je]
				for kk := 0; kk < k; kk++ {
					axpy(orow, ad[kk*m+i], panel[kk*w:(kk+1)*w])
				}
			}
		}
		putBuf(panel)
	})
	return out
}

// Transpose2D returns the transpose of a 2-D tensor, copying tile-wise so
// both the reads and the column-strided writes stay cache-resident (the
// element-at-a-time loop thrashed on the 3072-wide attack matrices).
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires 2-D operand, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := NewPooled(n, m)
	ad, od := a.data, out.data
	parallelRows("transpose2d", m, 8*m*n, func(lo, hi int) {
		for ib := lo; ib < hi; ib += transposeTile {
			ie := min(ib+transposeTile, hi)
			for jb := 0; jb < n; jb += transposeTile {
				je := min(jb+transposeTile, n)
				for j := jb; j < je; j++ {
					for i := ib; i < ie; i++ {
						od[j*m+i] = ad[i*n+j]
					}
				}
			}
		}
	})
	return out
}

// dot is a 4-way unrolled inner product; the unroll breaks the loop-carried
// dependence that otherwise serializes FP adds on the scalar backend. Its
// exact accumulation pattern (four strided partials, folded s0+s1+s2+s3,
// then the ragged tail) is part of the package's determinism contract: dot2
// and any future variant must reproduce it per row.
func dot(a, b []float64) float64 {
	b = b[:len(a)] // bounds-check elimination for the k-indexed loads below
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	s := s0 + s1 + s2 + s3
	for ; k < len(a); k++ {
		s += a[k] * b[k]
	}
	return s
}

// dot2 computes a·c and b·c in one pass over c, each with exactly dot's
// accumulation pattern, so pairing rows for panel reuse cannot perturb a bit.
func dot2(a, b, c []float64) (float64, float64) {
	a = a[:len(c)] // bounds-check elimination for the k-indexed loads below
	b = b[:len(c)]
	var s0, s1, s2, s3 float64
	var t0, t1, t2, t3 float64
	k := 0
	for ; k+4 <= len(c); k += 4 {
		c0, c1, c2, c3 := c[k], c[k+1], c[k+2], c[k+3]
		s0 += a[k] * c0
		s1 += a[k+1] * c1
		s2 += a[k+2] * c2
		s3 += a[k+3] * c3
		t0 += b[k] * c0
		t1 += b[k+1] * c1
		t2 += b[k+2] * c2
		t3 += b[k+3] * c3
	}
	s := s0 + s1 + s2 + s3
	t := t0 + t1 + t2 + t3
	for ; k < len(c); k++ {
		s += a[k] * c[k]
		t += b[k] * c[k]
	}
	return s, t
}

// axpy computes y[j] += a*x[j]. Each element gets exactly one fused
// multiply-add per call, so the 4-way unroll is order-neutral: accumulation
// order across calls is fixed by the caller's k loop.
func axpy(y []float64, a float64, x []float64) {
	y = y[:len(x)]
	j := 0
	for ; j+4 <= len(x); j += 4 {
		y[j] += a * x[j]
		y[j+1] += a * x[j+1]
		y[j+2] += a * x[j+2]
		y[j+3] += a * x[j+3]
	}
	for ; j < len(x); j++ {
		y[j] += a * x[j]
	}
}

// MatVec returns the matrix-vector product a·x for a (m×k) and x of length k.
func MatVec(a *Tensor, x []float64) []float64 {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVec requires 2-D matrix, got %v", a.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec length mismatch %v · vec(%d)", a.shape, len(x)))
	}
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		out[i] = dot(a.data[i*k:(i+1)*k], x)
	}
	return out
}

// Row returns a copy of row i of a 2-D tensor. Call sites that only read the
// row should use RowView and skip the copy.
func (t *Tensor) Row(i int) []float64 {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Row requires 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	out := make([]float64, n)
	copy(out, t.data[i*n:(i+1)*n])
	return out
}

// SetRow copies v into row i of a 2-D tensor.
func (t *Tensor) SetRow(i int, v []float64) {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SetRow requires 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	if len(v) != n {
		panic(fmt.Sprintf("tensor: SetRow length %d != row width %d", len(v), n))
	}
	copy(t.data[i*n:(i+1)*n], v)
}

// RowView returns row i of a 2-D tensor as a slice sharing t's storage.
func (t *Tensor) RowView(i int) []float64 {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: RowView requires 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	return t.data[i*n : (i+1)*n]
}
