package tensor

import "fmt"

// MatMul returns the matrix product a·b for 2-D tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	// ikj loop order keeps the inner loop contiguous over both b and out,
	// which matters on the single-core runners this repo targets.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			orow[j] = dot(arow, brow)
		}
	}
	return out
}

// dot is a 4-way unrolled inner product; the unroll breaks the loop-carried
// dependence that otherwise serializes FP adds on the scalar backend.
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	s := s0 + s1 + s2 + s3
	for ; k < len(a); k++ {
		s += a[k] * b[k]
	}
	return s
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires 2-D operands, got %vᵀ × %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : (kk+1)*m]
		brow := b.data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires 2-D operand, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// MatVec returns the matrix-vector product a·x for a (m×k) and x of length k.
func MatVec(a *Tensor, x []float64) []float64 {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVec requires 2-D matrix, got %v", a.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec length mismatch %v · vec(%d)", a.shape, len(x)))
	}
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		out[i] = dot(a.data[i*k:(i+1)*k], x)
	}
	return out
}

// Row returns a copy of row i of a 2-D tensor.
func (t *Tensor) Row(i int) []float64 {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Row requires 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	out := make([]float64, n)
	copy(out, t.data[i*n:(i+1)*n])
	return out
}

// SetRow copies v into row i of a 2-D tensor.
func (t *Tensor) SetRow(i int, v []float64) {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SetRow requires 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	if len(v) != n {
		panic(fmt.Sprintf("tensor: SetRow length %d != row width %d", len(v), n))
	}
	copy(t.data[i*n:(i+1)*n], v)
}

// RowView returns row i of a 2-D tensor as a slice sharing t's storage.
func (t *Tensor) RowView(i int) []float64 {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: RowView requires 2-D tensor, got %v", t.shape))
	}
	n := t.shape[1]
	return t.data[i*n : (i+1)*n]
}
