package tensor

import (
	"fmt"
	"math"
	rand "math/rand/v2"
)

// Tensor is a dense row-major float64 array with an explicit shape.
// The zero value is an empty scalar-less tensor; use New or FromSlice.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. Every dimension must
// be positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps a copy of data in a tensor of the given shape. The length
// of data must equal the product of the dimensions.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := checkShape(shape)
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n)
	}
	t := New(shape...)
	copy(t.data, data)
	return t, nil
}

// MustFromSlice is FromSlice for static literals in tests and examples; it
// panics on length mismatch.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; callers
// that need isolation should Clone first.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view sharing t's backing data with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := checkShape(shape)
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// MustReshape is Reshape that panics on size mismatch; for internal use where
// shapes are statically known.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// FillRandn fills the tensor with N(0, std²) samples from rng.
func (t *Tensor) FillRandn(rng *rand.Rand, std float64) {
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
}

// FillUniform fills the tensor with uniform samples in [lo, hi).
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustMatch(o, "Add")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] += v
	}
	return r
}

// AddInPlace adds o into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustMatch(o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// AddScaledInPlace adds s*o into t and returns t.
func (t *Tensor) AddScaledInPlace(s float64, o *Tensor) *Tensor {
	t.mustMatch(o, "AddScaledInPlace")
	for i, v := range o.data {
		t.data[i] += s * v
	}
	return t
}

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustMatch(o, "Sub")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] -= v
	}
	return r
}

// Mul returns the elementwise (Hadamard) product t ⊙ o.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustMatch(o, "Mul")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] *= v
	}
	return r
}

// Scale returns s * t.
func (t *Tensor) Scale(s float64) *Tensor {
	r := t.Clone()
	for i := range r.data {
		r.data[i] *= s
	}
	return r
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

func (t *Tensor) mustMatch(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// EqualApprox reports whether t and o have the same shape and every element
// differs by at most tol.
func (t *Tensor) EqualApprox(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description for debugging.
func (t *Tensor) String() string {
	if len(t.data) <= 8 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%.4g %.4g ... %.4g]", t.shape, t.data[0], t.data[1], t.data[len(t.data)-1])
}
