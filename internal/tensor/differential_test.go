package tensor

import (
	"fmt"
	"math"
	rand "math/rand/v2"
	"runtime"
	"testing"
)

// Differential suite: the blocked, goroutine-tiled kernels must be
// bit-identical to the retained pre-blocking reference implementations in
// ref.go — over randomized shapes (including ragged tails smaller than every
// block size), with operands containing exact zeros (the refs take their
// sparse-skip branch, the new kernels do not), and across worker counts.
// CI runs this under -race, which also certifies the row-span ownership
// discipline of parallelRows.

// workerCounts are the fan-outs each differential case runs under; results
// must not differ by a single bit between any of them.
func workerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// withWorkers runs f under each worker count, restoring the previous setting.
func withWorkers(t *testing.T, f func(t *testing.T, workers int)) {
	t.Helper()
	for _, w := range workerCounts() {
		prev := SetWorkers(w)
		f(t, w)
		SetWorkers(prev)
	}
}

// fillMixed fills t with Gaussian values, then plants exact zeros (and a few
// negative zeros) so the reference kernels' av == 0 branches actually fire.
func fillMixed(t *Tensor, rng *rand.Rand) {
	t.FillRandn(rng, 1)
	for i := range t.data {
		switch rng.IntN(16) {
		case 0:
			t.data[i] = 0
		case 1:
			t.data[i] = math.Copysign(0, -1)
		}
	}
}

// mustBitIdentical fails unless got and want agree in shape and every
// element's exact bit pattern.
func mustBitIdentical(t *testing.T, op string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v != reference %v", op, got.shape, want.shape)
	}
	for i := range want.data {
		if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
			t.Fatalf("%s: element %d = %x (%g), reference %x (%g)",
				op, i, math.Float64bits(got.data[i]), got.data[i],
				math.Float64bits(want.data[i]), want.data[i])
		}
	}
}

// differentialShapes covers the blocking edge cases: dimensions of 1, sizes
// straddling transBRowBlock, mulColBlock, transposeTile and the dot unroll
// width, plus ragged tails and an odd row count (the dot2 pairing tail).
func differentialShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{1, 1, 1},
		{1, 5, 3},
		{3, 4, 1},
		{7, 9, 5},               // everything smaller than every block
		{8, 33, transBRowBlock}, // ragged k tail for the 4-way dot unroll
		{5, 64, transBRowBlock + 1},
		{transBRowBlock + 3, 17, 2*transBRowBlock - 1},
		{2, mulColBlock + 7, 3},
		{3, 130, mulColBlock + 9}, // n straddling the packed panel width
		{transposeTile + 1, 8, transposeTile*2 + 5},
		{63, 31, 65}, // odd m: dot2 pairing leaves a tail row
	}
	// A few fully random shapes for luck.
	for i := 0; i < 4; i++ {
		shapes = append(shapes, [3]int{1 + rng.IntN(70), 1 + rng.IntN(600), 1 + rng.IntN(550)})
	}
	return shapes
}

func TestMatMulBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, sh := range differentialShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		fillMixed(a, rng)
		b := New(k, n)
		fillMixed(b, rng)
		want := matMulRef(a, b)
		withWorkers(t, func(t *testing.T, w int) {
			mustBitIdentical(t, fmt.Sprintf("MatMul %dx%dx%d workers=%d", m, k, n, w), MatMul(a, b), want)
		})
	}
}

func TestMatMulTransBBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for _, sh := range differentialShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		fillMixed(a, rng)
		b := New(n, k)
		fillMixed(b, rng)
		want := matMulTransBRef(a, b)
		withWorkers(t, func(t *testing.T, w int) {
			mustBitIdentical(t, fmt.Sprintf("MatMulTransB %dx%dx%d workers=%d", m, k, n, w), MatMulTransB(a, b), want)
		})
	}
}

func TestMatMulTransABitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	shapes := differentialShapes(rng)
	// Force both TransA regimes: a small output (kk-outer path) with large k,
	// and an output big enough for the packed-panel path.
	shapes = append(shapes, [3]int{24, 2048, 96}, [3]int{300, 40, 400})
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(k, m) // transA layout
		fillMixed(a, rng)
		b := New(k, n)
		fillMixed(b, rng)
		want := matMulTransARef(a, b)
		withWorkers(t, func(t *testing.T, w int) {
			mustBitIdentical(t, fmt.Sprintf("MatMulTransA %dx%dx%d workers=%d", m, k, n, w), MatMulTransA(a, b), want)
		})
	}
}

func TestTranspose2DBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	for _, sh := range differentialShapes(rng) {
		m, n := sh[0], sh[2]
		a := New(m, n)
		fillMixed(a, rng)
		want := transpose2DRef(a)
		withWorkers(t, func(t *testing.T, w int) {
			mustBitIdentical(t, fmt.Sprintf("Transpose2D %dx%d workers=%d", m, n, w), Transpose2D(a), want)
		})
	}
}

// TestConvOutMatchesUnfusedPath checks the fused matmul+rearrange+bias kernel
// against the historical three-step lowering, bit for bit.
func TestConvOutMatchesUnfusedPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	cases := []struct{ b, c, h, w, outC, k, stride, pad int }{
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 1, 5, 7, 1, 3, 2, 0},
		{3, 2, 9, 9, 7, 3, 1, 1}, // odd outC: dot2 pairing leaves a tail
		{2, 4, 6, 6, 16, 5, 1, 2},
	}
	for _, cse := range cases {
		x := New(cse.b, cse.c, cse.h, cse.w)
		fillMixed(x, rng)
		wt := New(cse.outC, cse.c*cse.k*cse.k)
		fillMixed(wt, rng)
		bias := make([]float64, cse.outC)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		cols, oh, ow := Im2Col(x, cse.k, cse.k, cse.stride, cse.pad)
		// Unfused reference: serial matmul, then rearrange + bias add.
		prod := matMulTransBRef(cols, wt)
		want := New(cse.b, cse.outC, oh, ow)
		pd, wd := prod.data, want.data
		for bi := 0; bi < cse.b; bi++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := pd[((bi*oh+oy)*ow+ox)*cse.outC:]
					for oc := 0; oc < cse.outC; oc++ {
						wd[((bi*cse.outC+oc)*oh+oy)*ow+ox] = row[oc] + bias[oc]
					}
				}
			}
		}
		withWorkers(t, func(t *testing.T, w int) {
			got := ConvOut(cols, wt, bias, cse.b, oh, ow)
			mustBitIdentical(t, fmt.Sprintf("ConvOut %+v workers=%d", cse, w), got, want)
			got.Release()
		})
		// And without bias.
		prodOnly := New(cse.b, cse.outC, oh, ow)
		for bi := 0; bi < cse.b; bi++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := pd[((bi*oh+oy)*ow+ox)*cse.outC:]
					for oc := 0; oc < cse.outC; oc++ {
						prodOnly.data[((bi*cse.outC+oc)*oh+oy)*ow+ox] = row[oc]
					}
				}
			}
		}
		mustBitIdentical(t, "ConvOut nil bias", ConvOut(cols, wt, nil, cse.b, oh, ow), prodOnly)
	}
}

// TestIm2ColIntoOverwritesStaleWorkspace reuses one dirty workspace across
// different inputs; every element, padding included, must be rewritten.
func TestIm2ColIntoOverwritesStaleWorkspace(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 53))
	x1 := New(2, 3, 8, 8)
	fillMixed(x1, rng)
	x2 := New(2, 3, 8, 8)
	fillMixed(x2, rng)
	want, _, _ := Im2Col(x2, 3, 3, 1, 1)
	ws, _, _ := Im2Col(x1, 3, 3, 1, 1)
	ws.Fill(math.NaN()) // poison: any skipped element is caught below
	withWorkers(t, func(t *testing.T, w int) {
		Im2ColInto(ws, x2, 3, 3, 1, 1)
		mustBitIdentical(t, fmt.Sprintf("Im2ColInto workers=%d", w), ws, want)
		ws.Fill(math.NaN())
	})
}

// TestCol2ImIntoZeroesDirtyDst mirrors the workspace test for the adjoint.
func TestCol2ImIntoZeroesDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewPCG(59, 61))
	x := New(3, 2, 9, 9)
	fillMixed(x, rng)
	cols, _, _ := Im2Col(x, 3, 3, 2, 1)
	fillMixed(cols, rng)
	want := Col2Im(cols, 3, 2, 9, 9, 3, 3, 2, 1)
	dst := New(3, 2, 9, 9)
	withWorkers(t, func(t *testing.T, w int) {
		dst.Fill(math.NaN())
		Col2ImInto(dst, cols, 3, 3, 2, 1)
		mustBitIdentical(t, fmt.Sprintf("Col2ImInto workers=%d", w), dst, want)
	})
}

func TestSetWorkersRoundTrip(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	if old := SetWorkers(0); old != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", old)
	}
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d after reset, want NumCPU = %d", got, runtime.NumCPU())
	}
}

// TestPooledTensorsAreZeroed drives buffers through the arena with garbage in
// them and checks NewPooled is indistinguishable from New.
func TestPooledTensorsAreZeroed(t *testing.T) {
	for i := 0; i < 8; i++ {
		p := NewPooled(70, 30) // 2100 floats: above the pooling threshold
		for j := range p.Data() {
			if p.Data()[j] != 0 {
				t.Fatalf("iteration %d: NewPooled buffer not zeroed at %d", i, j)
			}
		}
		p.Fill(math.NaN())
		p.Release()
	}
}

func TestReleaseIsIdempotentAndNilSafe(t *testing.T) {
	var nilT *Tensor
	nilT.Release() // must not panic
	p := NewPooled(64, 64)
	p.Release()
	p.Release() // double release must be a no-op
	if p.Data() != nil {
		t.Fatal("released tensor still exposes data")
	}
}

// TestMatVecMatchesBatchedTransB pins the equivalence the core package's
// ActivationSets batching relies on: one MatMulTransB row equals the per-row
// MatVec, bit for bit.
func TestMatVecMatchesBatchedTransB(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 71))
	w := New(37, 53)
	fillMixed(w, rng)
	inputs := New(9, 53)
	fillMixed(inputs, rng)
	z := MatMulTransB(inputs, w)
	for j := 0; j < inputs.Dim(0); j++ {
		mv := MatVec(w, inputs.RowView(j))
		zr := z.RowView(j)
		for i := range mv {
			if math.Float64bits(mv[i]) != math.Float64bits(zr[i]) {
				t.Fatalf("row %d neuron %d: MatVec %g != batched %g", j, i, mv[i], zr[i])
			}
		}
	}
}
