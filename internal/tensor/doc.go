// Package tensor implements the small dense float64 tensor used by every
// other subsystem in this repository: the neural-network substrate, the
// gradient inversion attacks, and the OASIS defense.
//
// Tensors are row-major and always own their backing slice unless a method is
// explicitly documented as returning a view (Reshape and RowView). Randomized
// fills take an explicit *rand.Rand so experiments stay deterministic.
//
// # Kernel blocking and parallelism
//
// The matmul family (MatMul, MatMulTransA, MatMulTransB) and Transpose2D are
// cache-blocked and goroutine-tiled:
//
//   - MatMul packs B into contiguous column panels of mulColBlock columns so
//     the inner axpy streams the panel instead of striding across B's full
//     row length, and accumulates C row by row in ascending-k order.
//   - MatMulTransB walks B in transBRowBlock-row panels that stay hot in L1
//     across A's rows, processing two A rows per panel pass (dot2) to halve
//     panel reads per output element.
//   - MatMulTransA uses the historical kk-outer order while the whole output
//     fits in cache (transASmallOut) and switches to packed panels beyond it.
//   - Transpose2D copies transposeTile×transposeTile squares so both the
//     row-major reads and the column-major writes stay inside L1.
//
// Work is distributed over goroutines by parallelRows: the output rows are
// split into at most Workers() contiguous disjoint spans, and only when the
// kernel's FLOP count clears parallelMinFlops — small products always run
// inline. SetWorkers bounds the fan-out process-wide (default NumCPU);
// SetWorkers(1) forces every kernel serial, which the perf-trajectory gate
// uses to compare machines with different core counts.
//
// # Determinism contract
//
// Every kernel is bit-identical to its naive triple-loop ancestor (retained
// in ref.go and enforced by differential_test.go) and across every worker
// count: each output element is accumulated in ascending-k order by exactly
// one goroutine, so the float64 rounding sequence never depends on blocking,
// scheduling, or Workers(). Two deliberate consequences:
//
//   - The old kernels skipped multiply-adds when an A element was exactly
//     zero. The blocked kernels do not: adding a ±0.0 term never changes a
//     finite IEEE-754 running sum (and a running sum that started at +0.0
//     cannot become -0.0), so dropping the branch is bit-identical on finite
//     inputs while removing a data-dependent mispredict from the innermost
//     loop (~8% of MatMulTransB's serial runtime on dense Gaussian operands
//     when toggled in isolation; BenchmarkMatMulTransB_Ref_64x3072x500 keeps
//     the branch-bearing reference measurable next to the blocked kernel).
//   - dot2 computes two output elements per B-panel pass but evaluates each
//     one with exactly the same 4-way unrolled partial-sum pattern as dot,
//     so pairing rows changes nothing in either row's rounding.
//
// Simulation reports therefore stay byte-identical for a fixed seed across
// tensor.SetWorkers values, machine core counts, and this PR's kernel
// rewrite.
//
// # Workspace arena
//
// pool.go maintains size-bucketed sync.Pools of float64 slices (capacity
// 2^b, smallest pooled class 8 KiB). NewPooled draws a zeroed tensor from
// the arena; Release hands the backing array back and clears the tensor so
// stale use panics instead of aliasing recycled memory. Kernel outputs and
// the conv lowering workspaces are arena-backed: a Conv2D's im2col matrix
// lives from Forward(train) to the end of the matching Backward, gradient
// scratch is released within the call that created it, and anything a
// caller keeps (layer outputs, accumulated gradients) is simply never
// released and gets collected like an ordinary allocation. Steady-state
// allocation per training step stays O(model outputs) instead of
// O(batch·OH·OW) — see the ReportAllocs benchmarks in nn/bench_test.go.
//
// # Performance trajectory
//
// The shapes that dominate the experiment harness are benchmarked in
// bench_test.go, and internal/perf freezes calibration-normalized timings
// of the same kernels (plus the full round engine) into BENCH_tensor.json /
// BENCH_round.json at the repo root. CI re-measures and fails on >15%
// regression; refresh the baselines with `go run ./cmd/oasis-bench -round`
// whenever a change intentionally shifts kernel cost.
//
// The pooling discipline is enforced mechanically: the poolpair analyzer in
// internal/analysis verifies that every NewPooled/ClonePooled value reaches
// Release or visibly transfers ownership on all paths, as part of the
// repo-wide determinism contract written up in the "Static analysis"
// section of the repository README.
package tensor
