package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerLimit caps how many goroutines a single kernel invocation may fan out
// to. 0 means runtime.NumCPU(), resolved at call time.
var workerLimit atomic.Int64

// SetWorkers sets the maximum number of goroutines one kernel call may use
// and returns the previous setting. n < 1 resets to the default
// (runtime.NumCPU()). It is safe to call concurrently with running kernels;
// in-flight calls keep the limit they started with.
//
// The setting changes wall-clock time only: every kernel computes each output
// element with a fixed summation order on exactly one goroutine, so results
// are bit-identical for every worker count.
func SetWorkers(n int) int {
	if n < 1 {
		n = 0
	}
	return int(workerLimit.Swap(int64(n)))
}

// Workers returns the current worker cap (resolving the 0 default).
func Workers() int {
	if n := int(workerLimit.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// parallelMinFlops is the work threshold (multiply-adds per call) below which
// kernels stay serial: goroutine startup costs more than the loop for small
// operands, and the FL round engine already runs whole clients in parallel,
// so tiny per-client matmuls must not fan out further.
const parallelMinFlops = 1 << 21

// parallelRows partitions [0, rows) into at most Workers() contiguous spans
// and runs body on each span, one goroutine per span. Spans are disjoint, so
// a body that writes only its own rows races with nothing; every span sees
// the same per-element arithmetic a serial pass would perform. Small jobs
// (flops below parallelMinFlops) run inline on the caller's goroutine.
func parallelRows(rows, flops int, body func(lo, hi int)) {
	w := Workers()
	if w > rows {
		w = rows
	}
	if w <= 1 || flops < parallelMinFlops {
		body(0, rows)
		return
	}
	chunk, rem := rows/w, rows%w
	var wg sync.WaitGroup
	lo := 0
	for g := 0; g < w; g++ {
		hi := lo + chunk
		if g < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}
