package tensor

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oasisfl/oasis/internal/obs"
)

// workerLimit caps how many goroutines a single kernel invocation may fan out
// to. 0 means runtime.NumCPU(), resolved at call time.
var workerLimit atomic.Int64

// SetWorkers sets the maximum number of goroutines one kernel call may use
// and returns the previous setting. n < 1 resets to the default
// (runtime.NumCPU()). It is safe to call concurrently with running kernels;
// in-flight calls keep the limit they started with.
//
// The setting changes wall-clock time only: every kernel computes each output
// element with a fixed summation order on exactly one goroutine, so results
// are bit-identical for every worker count.
func SetWorkers(n int) int {
	if n < 1 {
		n = 0
	}
	return int(workerLimit.Swap(int64(n)))
}

// Workers returns the current worker cap (resolving the 0 default).
func Workers() int {
	if n := int(workerLimit.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// parallelMinFlops is the work threshold (multiply-adds per call) below which
// kernels stay serial: goroutine startup costs more than the loop for small
// operands, and the FL round engine already runs whole clients in parallel,
// so tiny per-client matmuls must not fan out further.
const parallelMinFlops = 1 << 21

// Dispatch-layer observability. Counters see every kernel call (self-gated,
// one atomic load while obs is disabled); spans would flood a trace at one
// per matmul, so serial dispatches are sampled 1-in-kernelSpanSample while
// genuine fan-outs — rare and big by construction — are always recorded.
var (
	obsDispatchSerial   = obs.NewCounter("tensor_dispatch_serial_total", "kernel dispatches run inline on the caller's goroutine")
	obsDispatchParallel = obs.NewCounter("tensor_dispatch_parallel_total", "kernel dispatches fanned out over a goroutine tile pool")
	obsKernelMS         = obs.NewHistogram("tensor_kernel_ms", "wall-clock per kernel dispatch", obs.DefDurationBucketsMS)
	kernelSeq           atomic.Uint64
)

const kernelSpanSample = 64

// parallelRows partitions [0, rows) into at most Workers() contiguous spans
// and runs body on each span, one goroutine per span. Spans are disjoint, so
// a body that writes only its own rows races with nothing; every span sees
// the same per-element arithmetic a serial pass would perform. Small jobs
// (flops below parallelMinFlops) run inline on the caller's goroutine.
// kernel names the operation for the observability layer; it does not affect
// execution.
//
//oasis:allow-walltime measures real kernel latency for the obs histogram; never feeds results
func parallelRows(kernel string, rows, flops int, body func(lo, hi int)) {
	w := Workers()
	if w > rows {
		w = rows
	}
	serial := w <= 1 || flops < parallelMinFlops
	if !obs.Enabled() { // disabled hot path: one atomic load, nothing else
		runRowSpans(serial, w, rows, body)
		return
	}
	var sp *obs.Span
	if serial {
		obsDispatchSerial.Inc()
		if kernelSeq.Add(1)%kernelSpanSample == 0 {
			_, sp = obs.Start(context.Background(), "tensor."+kernel,
				obs.Int("rows", rows), obs.Int("flops", flops),
				obs.Int("sampled_1_in", kernelSpanSample))
		}
	} else {
		obsDispatchParallel.Inc()
		_, sp = obs.Start(context.Background(), "tensor."+kernel,
			obs.Int("rows", rows), obs.Int("flops", flops), obs.Int("workers", w))
	}
	t0 := time.Now()
	runRowSpans(serial, w, rows, body)
	obsKernelMS.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	sp.End()
}

// runRowSpans executes the row partition: inline when serial, otherwise one
// goroutine per contiguous span.
func runRowSpans(serial bool, w, rows int, body func(lo, hi int)) {
	if serial {
		body(0, rows)
		return
	}
	chunk, rem := rows/w, rows%w
	var wg sync.WaitGroup
	lo := 0
	for g := 0; g < w; g++ {
		hi := lo + chunk
		if g < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}
