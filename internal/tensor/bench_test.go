package tensor

import (
	rand "math/rand/v2"
	"testing"
)

// Micro-benchmarks for the kernels that dominate the experiment harness:
// the malicious-layer matmuls and the conv lowering.

func benchPair(m, k, n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := New(m, k)
	a.FillRandn(rng, 1)
	b := New(n, k) // transB layout
	b.FillRandn(rng, 1)
	return a, b
}

func BenchmarkMatMulTransB_8x3072x500(b *testing.B) {
	x, w := benchPair(8, 3072, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransB(x, w)
	}
}

func BenchmarkMatMulTransB_64x3072x500(b *testing.B) {
	x, w := benchPair(64, 3072, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransB(x, w)
	}
}

func BenchmarkMatMulTransA_64x3072x500(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := New(64, 500)
	g.FillRandn(rng, 1)
	x := New(64, 3072)
	x.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransA(g, x)
	}
}

func BenchmarkIm2Col32x32(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := New(8, 3, 32, 32)
	x.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = Im2Col(x, 3, 3, 1, 1)
	}
}

func BenchmarkGobRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 8))
	t := New(500, 3072)
	t.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := t.GobEncode()
		if err != nil {
			b.Fatal(err)
		}
		var back Tensor
		if err := back.GobDecode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
