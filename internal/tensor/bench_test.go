package tensor

import (
	rand "math/rand/v2"
	"testing"
)

// Micro-benchmarks for the kernels that dominate the experiment harness:
// the malicious-layer matmuls and the conv lowering.

func benchPair(m, k, n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := New(m, k)
	a.FillRandn(rng, 1)
	b := New(n, k) // transB layout
	b.FillRandn(rng, 1)
	return a, b
}

func BenchmarkMatMulTransB_8x3072x500(b *testing.B) {
	x, w := benchPair(8, 3072, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransB(x, w)
	}
}

func BenchmarkMatMulTransB_64x3072x500(b *testing.B) {
	x, w := benchPair(64, 3072, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransB(x, w)
	}
}

func BenchmarkMatMulTransA_64x3072x500(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := New(64, 500)
	g.FillRandn(rng, 1)
	x := New(64, 3072)
	x.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulTransA(g, x)
	}
}

func BenchmarkMatMul_64x3072x500(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 10))
	x := New(64, 3072)
	x.FillRandn(rng, 1)
	w := New(3072, 500)
	w.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, w)
	}
}

// BenchmarkMatMulTransB_Ref pins the retained serial reference (with its
// av == 0 sparse-skip branch) next to the production kernel, so the
// branch-removal justification stays measurable: on dense operands the
// branch is pure mispredict cost.
func BenchmarkMatMulTransB_Ref_64x3072x500(b *testing.B) {
	x, w := benchPair(64, 3072, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = matMulTransBRef(x, w)
	}
}

func BenchmarkTranspose2D_768x3072(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 12))
	x := New(768, 3072)
	x.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Transpose2D(x)
	}
}

// BenchmarkConvLowering measures the fused Im2ColInto+ConvOut pipeline with
// a reused workspace; ReportAllocs shows the arena holding steady-state
// allocations near zero.
func BenchmarkConvLowering_8x3x32x32(b *testing.B) {
	rng := rand.New(rand.NewPCG(13, 14))
	x := New(8, 3, 32, 32)
	x.FillRandn(rng, 1)
	wmat := New(16, 3*3*3)
	wmat.FillRandn(rng, 1)
	bias := make([]float64, 16)
	cols := New(8*32*32, 3*3*3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(cols, x, 3, 3, 1, 1)
		out := ConvOut(cols, wmat, bias, 8, 32, 32)
		out.Release()
	}
}

func BenchmarkIm2Col32x32(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := New(8, 3, 32, 32)
	x.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = Im2Col(x, 3, 3, 1, 1)
	}
}

func BenchmarkGobRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 8))
	t := New(500, 3072)
	t.FillRandn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := t.GobEncode()
		if err != nil {
			b.Fatal(err)
		}
		var back Tensor
		if err := back.GobDecode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
