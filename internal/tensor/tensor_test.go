package tensor

import (
	"math"
	rand "math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if got := tt.Len(); got != 24 {
		t.Errorf("Len = %d, want 24", got)
	}
	if got := tt.Dims(); got != 3 {
		t.Errorf("Dims = %d, want 3", got)
	}
	if got := tt.Dim(1); got != 3 {
		t.Errorf("Dim(1) = %d, want 3", got)
	}
	sh := tt.Shape()
	sh[0] = 99 // mutating the copy must not affect the tensor
	if tt.Dim(0) != 2 {
		t.Error("Shape() returned a view instead of a copy")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	tt, err := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %g, want 6", got)
	}
	if _, err := FromSlice([]float64{1, 2}, 3); err == nil {
		t.Error("FromSlice length mismatch did not error")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4)
	tt.Set(7.5, 2, 1)
	if got := tt.At(2, 1); got != 7.5 {
		t.Errorf("At = %g, want 7.5", got)
	}
	if got := tt.At(0, 0); got != 0 {
		t.Errorf("untouched element = %g, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Data()[0] = 99
	if a.Data()[0] != 1 {
		t.Error("Clone shares backing data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v, err := a.Reshape(4)
	if err != nil {
		t.Fatal(err)
	}
	v.Data()[0] = 42
	if a.At(0, 0) != 42 {
		t.Error("Reshape did not return a view")
	}
	if _, err := a.Reshape(3); err == nil {
		t.Error("Reshape size mismatch did not error")
	}
}

func TestArithmetic(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data(); got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 10 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Sum(); got != 6 {
		t.Errorf("Sum = %g", got)
	}
	if got := a.Mean(); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := a.Max(); got != 3 {
		t.Errorf("Max = %g", got)
	}
	if got := a.Min(); got != 1 {
		t.Errorf("Min = %g", got)
	}
	if got := a.L2Norm(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Errorf("L2Norm = %g", got)
	}
	// In-place variants.
	c := a.Clone()
	c.AddInPlace(b)
	if c.Data()[0] != 5 {
		t.Errorf("AddInPlace = %v", c.Data())
	}
	c = a.Clone()
	c.AddScaledInPlace(2, b)
	if c.Data()[0] != 9 {
		t.Errorf("AddScaledInPlace = %v", c.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(4)
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched shapes did not panic")
		}
	}()
	a.Add(b)
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := MustFromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.EqualApprox(want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		n := 1 + int(seed%7)
		a := New(n, n)
		a.FillRandn(r, 1)
		eye := New(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		return MatMul(a, eye).EqualApprox(a, 1e-12) && MatMul(eye, a).EqualApprox(a, 1e-12)
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		m, k, n := 1+int(seed%5), 2+int(seed%4), 1+int((seed>>3)%6)
		a := New(m, k)
		a.FillRandn(r, 1)
		b := New(k, n)
		b.FillRandn(r, 1)
		ref := MatMul(a, b)
		viaTransB := MatMulTransB(a, Transpose2D(b))
		viaTransA := MatMulTransA(Transpose2D(a), b)
		return ref.EqualApprox(viaTransB, 1e-10) && ref.EqualApprox(viaTransA, 1e-10)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		m, n := 1+int(seed%6), 1+int((seed>>4)%6)
		a := New(m, n)
		a.FillRandn(r, 1)
		return Transpose2D(Transpose2D(a)).EqualApprox(a, 0)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	a := New(4, 6)
	a.FillRandn(rng, 1)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xt := MustFromSlice(x, 6, 1)
	want := MatMul(a, xt)
	got := MatVec(a, x)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MatVec[%d] = %g, want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestRowOperations(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	row := a.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 99 // Row returns a copy
	if a.At(1, 0) != 4 {
		t.Error("Row returned a view")
	}
	a.SetRow(0, []float64{7, 8, 9})
	if a.At(0, 2) != 9 {
		t.Errorf("SetRow failed: %v", a.Data())
	}
	view := a.RowView(0)
	view[0] = 100
	if a.At(0, 0) != 100 {
		t.Error("RowView did not return a view")
	}
}

func TestFillHelpers(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := New(1000)
	a.FillUniform(rng, 2, 3)
	if a.Min() < 2 || a.Max() >= 3 {
		t.Errorf("FillUniform out of range: [%g, %g]", a.Min(), a.Max())
	}
	a.FillRandn(rng, 0.5)
	if m := math.Abs(a.Mean()); m > 0.1 {
		t.Errorf("FillRandn mean = %g, want ≈ 0", m)
	}
	a.Fill(3)
	if a.Sum() != 3000 {
		t.Errorf("Fill: sum = %g", a.Sum())
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Errorf("Zero: sum = %g", a.Sum())
	}
}

func TestEqualApprox(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := MustFromSlice([]float64{1, 2.0001}, 2)
	if !a.EqualApprox(b, 1e-3) {
		t.Error("EqualApprox(1e-3) = false")
	}
	if a.EqualApprox(b, 1e-6) {
		t.Error("EqualApprox(1e-6) = true")
	}
	c := MustFromSlice([]float64{1, 2}, 1, 2)
	if a.EqualApprox(c, 1) {
		t.Error("EqualApprox across shapes = true")
	}
}
