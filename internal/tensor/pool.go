package tensor

import (
	"math/bits"
	"sync"

	"github.com/oasisfl/oasis/internal/obs"
)

// The workspace arena: size-bucketed sync.Pools of float64 slices. Hot-path
// code (conv lowering workspaces, per-round gradient scratch) allocates
// tensors whose lifetime it fully controls from here via NewPooled and hands
// the backing array back with Release, so per-round allocation volume stops
// scaling with batch·OH·OW and the garbage collector sees a near-constant
// live set at 1000-client populations.
//
// Buckets hold slices with capacity 2^b ≤ cap < 2^(b+1); a Get reslices a
// recycled array to the requested length and zeroes it, so a pooled tensor is
// indistinguishable from a New one.

// minPoolBucket is the smallest pooled capacity class (2^10 floats = 8 KiB);
// smaller buffers are cheaper to allocate than to pool.
const minPoolBucket = 10

var bufPools [64]sync.Pool

// Arena observability: hit rate (hits / (hits+misses)) is the number that
// tells whether pooling is actually absorbing a workload's allocation
// volume. Counters self-gate on the obs session (one atomic load when
// disabled), so they are safe on this hot path. Sub-bucket requests (< 8 KiB)
// are never pooled and are not counted.
var (
	obsPoolHit     = obs.NewCounter("tensor_pool_hit_total", "arena Gets served from a recycled array")
	obsPoolMiss    = obs.NewCounter("tensor_pool_miss_total", "pool-eligible arena Gets that had to allocate")
	obsPoolRelease = obs.NewCounter("tensor_pool_release_total", "arrays returned to the arena")
)

// getBuf returns a zeroed []float64 of length n, reusing a pooled array when
// one is available.
func getBuf(n int) []float64 {
	if n == 0 {
		return nil
	}
	b := bits.Len(uint(n - 1)) // bucket whose arrays have cap ≥ n
	if b >= minPoolBucket {
		if v := bufPools[b].Get(); v != nil {
			obsPoolHit.Inc()
			s := v.([]float64)[:n]
			for i := range s {
				s[i] = 0
			}
			return s
		}
		obsPoolMiss.Inc()
	}
	return make([]float64, n, 1<<b)
}

// putBuf recycles a buffer into its size bucket. The caller must not retain
// any reference (including subslices or Reshape views) to s afterwards.
func putBuf(s []float64) {
	c := cap(s)
	if c < 1<<minPoolBucket {
		return
	}
	b := bits.Len(uint(c)) - 1 // bucket whose arrays have cap ≥ 2^b
	obsPoolRelease.Inc()
	bufPools[b].Put(s[:0:c])
}

// NewPooled returns a zero-filled tensor like New, drawing the backing array
// from the workspace arena. The caller owns the tensor's lifetime and should
// hand the array back with Release once no reference to it remains; a pooled
// tensor that is never released is simply collected like any other.
func NewPooled(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: getBuf(n)}
}

// ClonePooled returns a deep copy like Clone, with the backing array drawn
// from the workspace arena. Use it for copies whose lifetime the caller
// controls (upload payloads, per-round snapshots) so they can be handed back
// with Release instead of feeding the collector.
func (t *Tensor) ClonePooled() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: getBuf(len(t.data))}
	copy(c.data, t.data)
	return c
}

// Release returns t's backing array to the workspace arena and clears t so
// any later use panics instead of aliasing recycled memory. It must only be
// called by the tensor's owner, and only when no view of the data (Reshape,
// RowView, Data) is still live. Releasing a nil or already-released tensor is
// a no-op, so cleanup paths need no guards.
func (t *Tensor) Release() {
	if t == nil || t.data == nil {
		return
	}
	putBuf(t.data)
	t.data = nil
	t.shape = nil
}
