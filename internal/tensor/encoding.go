package tensor

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// wireTensor is the gob wire representation of a Tensor.
type wireTensor struct {
	Shape []int
	Data  []float64
}

// GobEncode implements gob.GobEncoder so tensors can cross the federated
// learning transport.
func (t *Tensor) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireTensor{Shape: t.shape, Data: t.data}); err != nil {
		return nil, fmt.Errorf("tensor: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(p []byte) error {
	var w wireTensor
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&w); err != nil {
		return fmt.Errorf("tensor: gob decode: %w", err)
	}
	n := 1
	for _, d := range w.Shape {
		if d <= 0 {
			return fmt.Errorf("tensor: gob decode: invalid shape %v", w.Shape)
		}
		n *= d
	}
	if len(w.Shape) == 0 || n != len(w.Data) {
		return fmt.Errorf("tensor: gob decode: shape %v does not match %d elements", w.Shape, len(w.Data))
	}
	t.shape = w.Shape
	t.data = w.Data
	return nil
}
