package tensor

import "fmt"

// Im2Col lowers a 4-D activation tensor x of shape [B, C, H, W] into a 2-D
// matrix of shape [B*OH*OW, C*KH*KW] so convolution becomes one matrix
// product. Padding is zero-fill; stride applies to both axes.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, int, int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires [B,C,H,W], got %v", x.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output collapsed for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	cols := New(b*oh*ow, c*kh*kw)
	row := 0
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := cols.data[row*c*kh*kw : (row+1)*c*kh*kw]
				di := 0
				for ci := 0; ci < c; ci++ {
					base := ((bi * c) + ci) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dst[di] = x.data[base+iy*w+ix]
							}
							di++
						}
					}
				}
				row++
			}
		}
	}
	return cols, oh, ow
}

// Col2Im is the adjoint of Im2Col: it scatters the 2-D column gradient back
// into a 4-D tensor of shape [B, C, H, W], accumulating overlaps.
func Col2Im(cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.Dims() != 2 || cols.shape[0] != b*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch cols %v for output [%d,%d,%d,%d]", cols.shape, b, c, h, w))
	}
	out := New(b, c, h, w)
	row := 0
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols.data[row*c*kh*kw : (row+1)*c*kh*kw]
				si := 0
				for ci := 0; ci < c; ci++ {
					base := ((bi * c) + ci) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.data[base+iy*w+ix] += src[si]
							}
							si++
						}
					}
				}
				row++
			}
		}
	}
	return out
}
