package tensor

import "fmt"

// Conv lowering kernels. Im2Col/Col2Im translate between 4-D activations and
// the 2-D column matrix that turns convolution into one matrix product;
// ConvOut fuses the product's strided rearrange back to [B, outC, OH, OW]
// (plus the bias add) into the lowering itself, so the [B*OH*OW, outC]
// intermediate never materializes.

// convOutDims computes the spatial output extent of a lowering.
func convOutDims(h, w, kh, kw, stride, pad int) (oh, ow int) {
	return (h+2*pad-kh)/stride + 1, (w+2*pad-kw)/stride + 1
}

// Im2Col lowers a 4-D activation tensor x of shape [B, C, H, W] into a 2-D
// matrix of shape [B*OH*OW, C*KH*KW] so convolution becomes one matrix
// product. Padding is zero-fill; stride applies to both axes.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, int, int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires [B,C,H,W], got %v", x.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := convOutDims(h, w, kh, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output collapsed for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	cols := New(b*oh*ow, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols, oh, ow
}

// Im2ColInto performs the Im2Col lowering into a caller-provided matrix of
// shape [B*OH*OW, C*KH*KW], writing every element (zero-padding included) so
// dst may be a reused workspace holding stale values from an earlier call.
// This is the allocation-free core of Conv2D's forward pass: a layer keeps
// one pooled cols workspace alive across rounds instead of allocating
// B·OH·OW-sized garbage per batch.
func Im2ColInto(dst, x *Tensor, kh, kw, stride, pad int) (int, int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires [B,C,H,W], got %v", x.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := convOutDims(h, w, kh, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output collapsed for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	if dst.Dims() != 2 || dst.shape[0] != b*oh*ow || dst.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v, want [%d,%d]", dst.shape, b*oh*ow, c*kh*kw))
	}
	colW := c * kh * kw
	// Rows partition cleanly across goroutines: row (bi, oy, ox) touches only
	// its own dst slice, and reads of x are shared and immutable.
	parallelRows("im2col", b*oh*ow, b*oh*ow*colW, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			ox := row % ow
			oy := (row / ow) % oh
			bi := row / (oh * ow)
			dstRow := dst.data[row*colW : (row+1)*colW]
			di := 0
			for ci := 0; ci < c; ci++ {
				base := ((bi * c) + ci) * h * w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for kx := 0; kx < kw; kx++ {
							dstRow[di] = 0
							di++
						}
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							dstRow[di] = x.data[base+iy*w+ix]
						} else {
							dstRow[di] = 0
						}
						di++
					}
				}
			}
		}
	})
	return oh, ow
}

// ConvOut fuses the three tail steps of the im2col convolution —
// prod = cols·wmatᵀ, the strided rearrange [B*OH*OW, outC] → [B, outC, OH, OW],
// and the bias add — into one kernel. cols is [B*OH*OW, C*KH*KW], wmat is
// [outC, C*KH*KW], bias has outC elements (nil means no bias). Each output
// element is dot(cols row, wmat row) + bias — the same 4-way unrolled dot and
// trailing bias add the unfused path performed, so results are bit-identical
// while the [B*OH*OW, outC] intermediate and its full rewrite pass disappear.
func ConvOut(cols, wmat *Tensor, bias []float64, b, oh, ow int) *Tensor {
	if cols.Dims() != 2 || wmat.Dims() != 2 {
		panic(fmt.Sprintf("tensor: ConvOut requires 2-D operands, got %v × %v", cols.shape, wmat.shape))
	}
	rows, colW := cols.shape[0], cols.shape[1]
	outC, k2 := wmat.shape[0], wmat.shape[1]
	if colW != k2 {
		panic(fmt.Sprintf("tensor: ConvOut inner dimension mismatch %v × %vᵀ", cols.shape, wmat.shape))
	}
	if rows != b*oh*ow {
		panic(fmt.Sprintf("tensor: ConvOut cols rows %d != B*OH*OW = %d*%d*%d", rows, b, oh, ow))
	}
	if bias != nil && len(bias) != outC {
		panic(fmt.Sprintf("tensor: ConvOut bias length %d != outC %d", len(bias), outC))
	}
	out := NewPooled(b, outC, oh, ow)
	cd, wd, od := cols.data, wmat.data, out.data
	ohw := oh * ow
	// Partition by cols row: row r = (bi, oy, ox) owns output elements
	// od[(bi*outC+oc)*ohw + oy*ow+ox] for every oc — disjoint across rows.
	parallelRows("conv_out", rows, rows*colW*outC, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			crow := cd[r*colW : (r+1)*colW]
			bi := r / ohw
			spatial := r % ohw
			pos := bi*outC*ohw + spatial
			oc := 0
			for ; oc+2 <= outC; oc += 2 {
				v0, v1 := dot2(wd[oc*colW:(oc+1)*colW], wd[(oc+1)*colW:(oc+2)*colW], crow)
				if bias != nil {
					v0 += bias[oc]
					v1 += bias[oc+1]
				}
				od[pos+oc*ohw] = v0
				od[pos+(oc+1)*ohw] = v1
			}
			if oc < outC {
				v := dot(crow, wd[oc*colW:(oc+1)*colW])
				if bias != nil {
					v += bias[oc]
				}
				od[pos+oc*ohw] = v
			}
		}
	})
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters the 2-D column gradient back
// into a 4-D tensor of shape [B, C, H, W], accumulating overlaps.
func Col2Im(cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	out := NewPooled(b, c, h, w)
	Col2ImInto(out, cols, kh, kw, stride, pad)
	return out
}

// Col2ImInto scatters the column gradient into a caller-provided [B, C, H, W]
// tensor, zeroing it first (overlapping windows accumulate). Batches
// partition across goroutines: every window of cols row (bi, oy, ox) lands in
// batch bi's image, so batch spans own disjoint output regions.
func Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) {
	if out.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Col2ImInto requires [B,C,H,W] dst, got %v", out.shape))
	}
	b, c, h, w := out.shape[0], out.shape[1], out.shape[2], out.shape[3]
	oh, ow := convOutDims(h, w, kh, kw, stride, pad)
	if cols.Dims() != 2 || cols.shape[0] != b*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch cols %v for output [%d,%d,%d,%d]", cols.shape, b, c, h, w))
	}
	colW := c * kh * kw
	imSize := c * h * w
	parallelRows("col2im", b, b*oh*ow*colW, func(blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			for i := bi * imSize; i < (bi+1)*imSize; i++ {
				out.data[i] = 0
			}
			row := bi * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					src := cols.data[row*colW : (row+1)*colW]
					si := 0
					for ci := 0; ci < c; ci++ {
						base := ((bi * c) + ci) * h * w
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride - pad + ky
							if iy < 0 || iy >= h {
								si += kw
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride - pad + kx
								if ix >= 0 && ix < w {
									out.data[base+iy*w+ix] += src[si]
								}
								si++
							}
						}
					}
					row++
				}
			}
		}
	})
}
