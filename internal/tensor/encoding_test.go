package tensor

import (
	"bytes"
	"encoding/gob"
	rand "math/rand/v2"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	orig := New(3, 4, 5)
	orig.FillRandn(rng, 1)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Tensor
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !orig.EqualApprox(&back, 0) {
		t.Error("gob round trip lost data")
	}
	if back.Dims() != 3 || back.Dim(2) != 5 {
		t.Errorf("gob round trip lost shape: %v", back.Shape())
	}
}

func TestGobDecodeRejectsCorruptShape(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireTensor{Shape: []int{2, 2}, Data: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if err := back.GobDecode(buf.Bytes()); err == nil {
		t.Error("decode of inconsistent shape/data succeeded")
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(wireTensor{Shape: []int{-1}, Data: nil}); err != nil {
		t.Fatal(err)
	}
	if err := back.GobDecode(buf.Bytes()); err == nil {
		t.Error("decode of negative dimension succeeded")
	}
}

func TestGobInsideSlice(t *testing.T) {
	// The FL transport ships []*Tensor payloads; make sure pointers inside
	// composite values round-trip.
	rng := rand.New(rand.NewPCG(9, 9))
	in := []*Tensor{New(2, 2), New(3)}
	in[0].FillRandn(rng, 1)
	in[1].FillRandn(rng, 1)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out []*Tensor
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !out[0].EqualApprox(in[0], 0) || !out[1].EqualApprox(in[1], 0) {
		t.Error("slice-of-tensor round trip failed")
	}
}
