package tensor

// Reference kernels: the pre-blocking serial implementations, retained
// verbatim so the differential test suite can assert that the tiled parallel
// kernels in matmul.go are bit-identical to what every experiment ran before
// they landed. They are not exported and must not be "optimized" — their
// value is being the fixed point the fast kernels are measured against.
//
// The sparse-skip `av == 0` branches are kept here exactly as they shipped.
// For finite operands they are pure control flow: skipping a zero term and
// adding av*bv = ±0.0 produce the same IEEE-754 sum (+0.0 + -0.0 = +0.0, and
// a running sum that ever held a nonzero value is unaffected by adding a
// signed zero), which is why the production kernels could drop the branch —
// measured at ~8% of MatMul wall clock in mispredictions — without changing a
// single output bit. The differential tests exercise exactly this equality.

// matMulRef is the historical MatMul: ikj loop order, sparse-skip branch.
func matMulRef(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// matMulTransBRef is the historical MatMulTransB: one 4-way unrolled dot per
// output element.
func matMulTransBRef(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			orow[j] = dot(arow, brow)
		}
	}
	return out
}

// matMulTransARef is the historical MatMulTransA: kk-outer accumulation with
// the sparse-skip branch.
func matMulTransARef(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : (kk+1)*m]
		brow := b.data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// transpose2DRef is the historical element-at-a-time Transpose2D.
func transpose2DRef(a *Tensor) *Tensor {
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
