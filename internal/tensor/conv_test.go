package tensor

import (
	"math"
	rand "math/rand/v2"
	"testing"
	"testing/quick"
)

// naiveConv is the direct O(B·C·K²·OH·OW) convolution used as a reference
// for the im2col lowering.
func naiveConv(x *Tensor, w *Tensor, stride, pad int) *Tensor {
	b, c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oc, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	out := New(b, oc, oh, ow)
	for bi := 0; bi < b; bi++ {
		for o := 0; o < oc; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy := oy*stride - pad + ky
								ix := ox*stride - pad + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								s += x.At(bi, ci, iy, ix) * w.At(o, ci, ky, kx)
							}
						}
					}
					out.Set(s, bi, o, oy, ox)
				}
			}
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		b := 1 + int(seed%2)
		c := 1 + int((seed>>1)%3)
		h := 4 + int((seed>>3)%4)
		k := 1 + 2*int((seed>>5)%2) // 1 or 3
		stride := 1 + int((seed>>6)%2)
		pad := int((seed >> 7) % 2)
		oc := 1 + int((seed>>8)%3)

		x := New(b, c, h, h)
		x.FillRandn(r, 1)
		w := New(oc, c, k, k)
		w.FillRandn(r, 1)

		cols, oh, ow := Im2Col(x, k, k, stride, pad)
		wmat := w.MustReshape(oc, c*k*k)
		prod := MatMulTransB(cols, wmat) // [b*oh*ow, oc]
		want := naiveConv(x, w, stride, pad)
		for bi := 0; bi < b; bi++ {
			for o := 0; o < oc; o++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						got := prod.At((bi*oh+oy)*ow+ox, o)
						if math.Abs(got-want.At(bi, o, oy, ox)) > 1e-9 {
							return false
						}
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

// TestCol2ImAdjoint verifies the defining adjoint property
// ⟨Im2Col(x), y⟩ = ⟨x, Col2Im(y)⟩, which is exactly what makes the conv
// backward pass correct.
func TestCol2ImAdjoint(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 23))
		b, c, h := 1+int(seed%2), 1+int((seed>>1)%2), 5+int((seed>>2)%3)
		k, stride, pad := 3, 1+int((seed>>5)%2), int((seed>>6)%2)

		x := New(b, c, h, h)
		x.FillRandn(r, 1)
		cols, _, _ := Im2Col(x, k, k, stride, pad)
		y := New(cols.Dim(0), cols.Dim(1))
		y.FillRandn(r, 1)

		lhs := 0.0
		for i, v := range cols.Data() {
			lhs += v * y.Data()[i]
		}
		back := Col2Im(y, b, c, h, h, k, k, stride, pad)
		rhs := 0.0
		for i, v := range x.Data() {
			rhs += v * back.Data()[i]
		}
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(lhs))
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestIm2ColShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Im2Col on 2-D input did not panic")
		}
	}()
	Im2Col(New(2, 2), 3, 3, 1, 1)
}
