package core

import (
	"errors"
	"math"
	rand "math/rand/v2"
	"testing"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

func testBatch(seed uint64, n int) *data.Batch {
	rng := rand.New(rand.NewPCG(seed, 1))
	b := &data.Batch{}
	for i := 0; i < n; i++ {
		im := imaging.NewImage(3, 8, 8)
		for j := range im.Pix {
			im.Pix[j] = rng.Float64()
		}
		b.Append(im, i%4)
	}
	return b
}

func TestApplyBuildsEq7Union(t *testing.T) {
	b := testBatch(1, 4)
	def := New(augment.MajorRotation{})
	out, err := def.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	// |D′| = |D|·(1 + 3 rotations)
	if out.Size() != 16 {
		t.Fatalf("|D′| = %d, want 16", out.Size())
	}
	// The first |D| entries are the originals, untouched.
	for i := 0; i < 4; i++ {
		if imaging.MSE(out.Images[i], b.Images[i]) != 0 {
			t.Errorf("original %d was modified", i)
		}
	}
	// Every transform copies its source label (Eq. 7: X′_t labeled as x_t).
	for i := 4; i < 16; i++ {
		src := (i - 4) / 3
		if out.Labels[i] != b.Labels[src] {
			t.Errorf("transform %d has label %d, want %d", i, out.Labels[i], b.Labels[src])
		}
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	b := testBatch(2, 3)
	before := b.Clone()
	def := New(augment.Shearing{})
	if _, err := def.Apply(b); err != nil {
		t.Fatal(err)
	}
	if b.Size() != before.Size() {
		t.Fatal("Apply mutated the input batch size")
	}
	for i := range b.Images {
		if imaging.MSE(b.Images[i], before.Images[i]) != 0 {
			t.Fatal("Apply mutated an input image")
		}
	}
}

func TestApplyPreservesMean(t *testing.T) {
	// With PreserveMean on (the default), every transformed copy has the
	// same mean brightness as its source — the RTF bin-membership
	// guarantee.
	b := testBatch(3, 2)
	def := New(augment.NewCompose(augment.Shearing{}, augment.MinorRotation{}))
	out, err := def.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	kPer := (out.Size() - b.Size()) / b.Size()
	for ti := 0; ti < b.Size(); ti++ {
		want := b.Images[ti].Mean()
		for k := 0; k < kPer; k++ {
			got := out.Images[b.Size()+ti*kPer+k].Mean()
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("transform mean %.12f != source mean %.12f", got, want)
			}
		}
	}
}

func TestApplyWithoutPreserveMeanShiftsShears(t *testing.T) {
	b := testBatch(4, 1)
	def := &Defense{Policy: augment.Shearing{}, PreserveMean: false}
	out, err := def.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-fill shearing loses bright mass; without restoration the means
	// must differ noticeably.
	src := b.Images[0].Mean()
	moved := false
	for _, im := range out.Images[1:] {
		if math.Abs(im.Mean()-src) > 1e-3 {
			moved = true
		}
	}
	if !moved {
		t.Error("expected zero-fill shear to change mean when PreserveMean is off")
	}
}

func TestApplyNilPolicy(t *testing.T) {
	def := &Defense{}
	if _, err := def.Apply(testBatch(5, 2)); !errors.Is(err, ErrNoPolicy) {
		t.Errorf("err = %v, want ErrNoPolicy", err)
	}
	if def.Name() != "WO" {
		t.Errorf("nil-policy name = %q, want WO", def.Name())
	}
}

func TestExpansionFactor(t *testing.T) {
	def := New(augment.NewCompose(augment.MajorRotation{}, augment.Shearing{}))
	f, err := def.ExpansionFactor(3, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f != 7 {
		t.Errorf("expansion factor = %g, want 7", f)
	}
}

func TestActivationSets(t *testing.T) {
	// Toy malicious layer: neuron 0 fires when x0 > 0.5, neuron 1 when
	// x1 > 0.5.
	w := tensor.MustFromSlice([]float64{
		1, 0,
		0, 1,
	}, 2, 2)
	bias := tensor.MustFromSlice([]float64{-0.5, -0.5}, 2)
	inputs := tensor.MustFromSlice([]float64{
		0.9, 0.1, // activates neuron 0 only
		0.1, 0.9, // activates neuron 1 only
		0.9, 0.9, // both
		0.1, 0.1, // neither
	}, 4, 2)
	sets := ActivationSets(w, bias, inputs)
	want := [][]bool{{true, false}, {false, true}, {true, true}, {false, false}}
	for i := range want {
		for j := range want[i] {
			if sets[i][j] != want[i][j] {
				t.Errorf("sets[%d][%d] = %v, want %v", i, j, sets[i][j], want[i][j])
			}
		}
	}
}

func TestAnalyzeProp1MeanMeasurementLayer(t *testing.T) {
	// A mean-brightness imprint layer (RTF-style): all weight rows equal
	// 1/d, ascending thresholds. With PreserveMean transforms, every
	// original must share its activation set with its transforms exactly.
	b := testBatch(6, 4)
	d := 3 * 8 * 8
	n := 32
	w := tensor.New(n, d)
	for i := range w.Data() {
		w.Data()[i] = 1.0 / float64(d)
	}
	bias := tensor.New(n)
	for i := 0; i < n; i++ {
		bias.Data()[i] = -(0.3 + 0.4*float64(i)/float64(n))
	}
	def := New(augment.MajorRotation{})
	rep, err := AnalyzeProp1(def, b, w, bias)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SameSetFraction != 1 {
		t.Errorf("same-set fraction = %g, want 1 (Proposition 1 exact)", rep.SameSetFraction)
	}
	if rep.SoloNeuronFraction != 0 {
		t.Errorf("solo fraction = %g, want 0", rep.SoloNeuronFraction)
	}
	if rep.MeanJaccard != 1 {
		t.Errorf("jaccard = %g, want 1", rep.MeanJaccard)
	}
}

func TestAnalyzeProp1WOBaseline(t *testing.T) {
	b := testBatch(7, 3)
	w := tensor.New(4, 3*8*8)
	rng := rand.New(rand.NewPCG(9, 9))
	w.FillRandn(rng, 0.1)
	bias := tensor.New(4)
	rep, err := AnalyzeProp1(&Defense{}, b, w, bias)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "WO" {
		t.Errorf("policy = %q", rep.Policy)
	}
	if rep.SameSetFraction != 0 || rep.MeanJaccard != 0 {
		t.Error("WO baseline should report zero transform overlap")
	}
}

func TestStandardDefenses(t *testing.T) {
	defs := StandardDefenses()
	if len(defs) != 6 {
		t.Fatalf("%d standard defenses, want 6", len(defs))
	}
	names := map[string]bool{}
	for _, d := range defs {
		names[d.Name()] = true
		if !d.PreserveMean {
			t.Errorf("defense %s does not preserve mean by default", d.Name())
		}
	}
	for _, want := range []string{"MR", "mR", "SH", "HFlip", "VFlip", "MR+SH"} {
		if !names[want] {
			t.Errorf("missing standard defense %s", want)
		}
	}
}

func TestRandomizedDefense(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	def, err := RandomizedDefense("SH", 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := def.Apply(testBatch(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 6 {
		t.Errorf("|D′| = %d, want 6", out.Size())
	}
	if _, err := RandomizedDefense("nope", 2, rng); err == nil {
		t.Error("invalid randomized kind accepted")
	}
}
