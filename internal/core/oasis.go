// Package core implements the OASIS defense (paper §III-B): before a
// federated-learning client computes gradients on its local batch D, it
// expands the batch to D′ = D ∪ ⋃_t X′_t (Eq. 7), where X′_t contains
// augmented counterparts of image x_t that share the image's label.
//
// When x_t and every x′ ∈ X′_t activate the same set of neurons in a
// malicious layer, Proposition 1 shows the server can extract at best the
// *sum* of their gradients, so gradient inversion reconstructs only a linear
// combination of x_t and its transforms — an unrecognizable overlap.
//
// This package also provides the activation-set analyzer that quantifies how
// often the Proposition-1 condition holds for a given malicious layer, the
// mechanism behind the PSNR results in Figures 5, 6 and 13.
package core

import (
	"errors"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Defense is the OASIS batch preprocessor.
//
// PreserveMean controls whether each transformed copy is shifted so its mean
// pixel value equals the original's. Exact major rotations and flips already
// preserve the mean; shearing and minor rotation vacate pixels (zero fill)
// and would otherwise lower it. The paper's mechanism for defeating the RTF
// attack is precisely that the transforms "impose minimal change" to the
// scalar quantity the attacked neurons measure (§IV-B); restoring the mean —
// itself a standard photometric augmentation — enforces that property
// exactly for every geometric transform, making the Proposition-1 condition
// hold by construction for scalar-measurement imprint layers.
type Defense struct {
	Policy       augment.Policy
	PreserveMean bool
}

// ErrNoPolicy is returned when a Defense without a policy is applied.
var ErrNoPolicy = errors.New("core: defense has no augmentation policy")

// New constructs an OASIS defense with the given augmentation policy and
// mean preservation enabled.
func New(policy augment.Policy) *Defense {
	return &Defense{Policy: policy, PreserveMean: true}
}

// Apply expands batch D into D′ per Eq. 7: the original samples followed by
// every transformed counterpart, each labeled as its source image. The input
// batch is not mutated.
func (d *Defense) Apply(b *data.Batch) (*data.Batch, error) {
	if d.Policy == nil {
		return nil, ErrNoPolicy
	}
	out := b.Clone()
	for t, im := range b.Images {
		for _, tr := range d.Policy.Expand(im) {
			if d.PreserveMean {
				shiftMean(tr, im.Mean())
			}
			out.Append(tr, b.Labels[t])
		}
	}
	return out, nil
}

// ExpansionFactor returns |D′|/|D| for this defense's policy applied to a
// probe image of the given dimensions.
func (d *Defense) ExpansionFactor(c, h, w int) (float64, error) {
	if d.Policy == nil {
		return 1, ErrNoPolicy
	}
	probe := imaging.NewImage(c, h, w)
	return float64(1 + len(d.Policy.Expand(probe))), nil
}

// shiftMean adds a constant so im's mean equals target.
func shiftMean(im *imaging.Image, target float64) {
	delta := target - im.Mean()
	for i := range im.Pix {
		im.Pix[i] += delta
	}
}

// Name returns the policy label (paper table notation), or "WO" when no
// policy is configured.
func (d *Defense) Name() string {
	if d.Policy == nil {
		return "WO"
	}
	return d.Policy.Name()
}

// ActivationSets returns, for each row x of inputs [B, d], the boolean
// activation pattern of the malicious layer ReLU(W·x + b): element i is true
// iff neuron i fires. W is [n, d] and bias is [n].
func ActivationSets(w *tensor.Tensor, bias *tensor.Tensor, inputs *tensor.Tensor) [][]bool {
	bN := inputs.Dim(0)
	n := w.Dim(0)
	// One batched inputs·Wᵀ product instead of a per-row MatVec loop: the
	// blocked kernel amortizes W across the whole batch (the row-at-a-time
	// loop re-streamed all of W per image). Each element is the same dot
	// product the per-row path computed, so the sets are unchanged.
	z := tensor.MatMulTransB(inputs, w) // [B, n]
	bd := bias.Data()
	out := make([][]bool, bN)
	for j := 0; j < bN; j++ {
		zrow := z.RowView(j)
		row := make([]bool, n)
		for i := range zrow {
			row[i] = zrow[i]+bd[i] > 0
		}
		out[j] = row
	}
	z.Release()
	return out
}

// Prop1Report quantifies how well a defense satisfies the Proposition-1
// condition against a concrete malicious layer.
type Prop1Report struct {
	Policy string
	// SameSetFraction is the fraction of original images x_t for which at
	// least one x′ ∈ X′_t activates *exactly* the same neuron set.
	SameSetFraction float64
	// MeanJaccard is the mean Jaccard similarity between the activation
	// set of x_t and the closest activation set among X′_t.
	MeanJaccard float64
	// SoloNeuronFraction is the fraction of original images that are the
	// sole activator of at least one neuron within D′ — exactly the
	// condition under which Eq. 6 reveals the image verbatim.
	SoloNeuronFraction float64
}

// AnalyzeProp1 applies the defense to the batch, computes activation sets of
// the malicious layer over D′, and reports the Proposition-1 statistics. A
// nil-policy defense (WO) is allowed and reports on the raw batch.
func AnalyzeProp1(d *Defense, b *data.Batch, w, bias *tensor.Tensor) (Prop1Report, error) {
	expanded := b
	if d.Policy != nil {
		var err error
		expanded, err = d.Apply(b)
		if err != nil {
			return Prop1Report{}, err
		}
	}
	sets := ActivationSets(w, bias, expanded.Flatten())
	orig := b.Size()
	total := expanded.Size()
	kPer := 0
	if d.Policy != nil && orig > 0 {
		kPer = (total - orig) / orig // transforms per original, appended in order
	}

	report := Prop1Report{Policy: d.Name()}
	n := w.Dim(0)
	// Count activators per neuron over the whole D′.
	activators := make([]int, n)
	for _, set := range sets {
		for i, on := range set {
			if on {
				activators[i]++
			}
		}
	}
	sameSet := 0
	sumJaccard := 0.0
	solo := 0
	for t := 0; t < orig; t++ {
		// x_t's transforms occupy rows orig + t*kPer … orig + (t+1)*kPer.
		bestJ := 0.0
		exact := false
		for k := 0; k < kPer; k++ {
			j := jaccard(sets[t], sets[orig+t*kPer+k])
			if j > bestJ {
				bestJ = j
			}
			if j == 1.0 {
				exact = true
			}
		}
		if kPer == 0 {
			bestJ = 0
		}
		if exact {
			sameSet++
		}
		sumJaccard += bestJ
		for i, on := range sets[t] {
			if on && activators[i] == 1 {
				solo++
				break
			}
		}
	}
	if orig > 0 {
		report.SameSetFraction = float64(sameSet) / float64(orig)
		report.MeanJaccard = sumJaccard / float64(orig)
		report.SoloNeuronFraction = float64(solo) / float64(orig)
	}
	return report, nil
}

func jaccard(a, b []bool) float64 {
	inter, union := 0, 0
	for i := range a {
		if a[i] && b[i] {
			inter++
		}
		if a[i] || b[i] {
			union++
		}
	}
	if union == 0 {
		return 1 // both inactive everywhere: identical sets
	}
	return float64(inter) / float64(union)
}

// StandardDefenses returns the defense lineup used across the experiment
// tables: WO (nil policy placeholder is excluded), MR, mR, SH, HFlip, VFlip,
// and MR+SH.
func StandardDefenses() []*Defense {
	return []*Defense{
		New(augment.MajorRotation{}),
		New(augment.MinorRotation{}),
		New(augment.Shearing{}),
		New(augment.HFlip{}),
		New(augment.VFlip{}),
		New(augment.NewCompose(augment.MajorRotation{}, augment.Shearing{})),
	}
}

// RandomizedDefense builds a defense whose parametric transforms are
// re-sampled from rng on every batch, so a server cannot assume fixed
// transformation parameters (paper §IV-C).
func RandomizedDefense(kind string, n int, rng *rand.Rand) (*Defense, error) {
	p, err := augment.NewRandomized(kind, n, rng)
	if err != nil {
		return nil, err
	}
	return New(p), nil
}
