package nn

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Linear is a fully-connected layer y = x·Wᵀ + b with x of shape [B, in],
// W of shape [out, in] and b of shape [out].
//
// The malicious layers planted by the RTF and CAH attacks are instances of
// this type whose weights the (dishonest) server chooses directly.
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	lastX *tensor.Tensor
	name  string
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a fully-connected layer with He-initialized weights
// and zero biases.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	w := tensor.New(out, in)
	w.FillRandn(rng, heStd(in))
	b := tensor.New(out)
	return &Linear{
		In: in, Out: out,
		Weight: &Param{Name: name + ".weight", W: w, G: tensor.New(out, in)},
		Bias:   &Param{Name: name + ".bias", W: b, G: tensor.New(out)},
		name:   name,
	}
}

// NewLinearFrom constructs a fully-connected layer with explicit weights and
// biases; used by the attacks to plant malicious parameters.
func NewLinearFrom(name string, w *tensor.Tensor, b *tensor.Tensor) (*Linear, error) {
	if w.Dims() != 2 {
		return nil, fmt.Errorf("nn: linear weight must be 2-D, got %v", w.Shape())
	}
	out, in := w.Dim(0), w.Dim(1)
	if b.Dims() != 1 || b.Dim(0) != out {
		return nil, fmt.Errorf("nn: linear bias shape %v does not match weight %v", b.Shape(), w.Shape())
	}
	return &Linear{
		In: in, Out: out,
		Weight: &Param{Name: name + ".weight", W: w.Clone(), G: tensor.New(out, in)},
		Bias:   &Param{Name: name + ".bias", W: b.Clone(), G: tensor.New(out)},
		name:   name,
	}, nil
}

// Forward computes x·Wᵀ + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s expects [B,%d], got %v", l.name, l.In, x.Shape()))
	}
	if train {
		// The cached activation comes from the workspace arena and is
		// released by Backward; recycle any orphan from a repeated Forward.
		l.lastX.Release()
		l.lastX = tensor.NewPooled(x.Shape()...)
		copy(l.lastX.Data(), x.Data())
	}
	out := tensor.MatMulTransB(x, l.Weight.W) // [B,out]
	b := l.Bias.W.Data()
	for i := 0; i < out.Dim(0); i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] += b[j]
		}
	}
	return out
}

// Backward accumulates ∂L/∂W = gᵀ·x and ∂L/∂b = Σ_B g, returning ∂L/∂x = g·W.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil {
		panic(fmt.Sprintf("nn: %s Backward called before Forward(train)", l.name))
	}
	// ∂L/∂W (out×in) = gradOutᵀ (out×B) · x (B×in)
	gw := tensor.MatMulTransA(gradOut, l.lastX)
	l.Weight.G.AddInPlace(gw)
	gw.Release()
	l.lastX.Release()
	l.lastX = nil
	gb := l.Bias.G.Data()
	for i := 0; i < gradOut.Dim(0); i++ {
		row := gradOut.RowView(i)
		for j := range row {
			gb[j] += row[j]
		}
	}
	return tensor.MatMul(gradOut, l.Weight.W) // [B,in]
}

// Params returns weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Clone returns a deep copy with zeroed gradients.
func (l *Linear) Clone() Layer {
	c, err := NewLinearFrom(l.name, l.Weight.W, l.Bias.W)
	if err != nil {
		panic(err) // unreachable: shapes come from a valid layer
	}
	return c
}

// Name returns the layer name.
func (l *Linear) Name() string { return l.name }
