package nn

import (
	"fmt"
	"math"

	"github.com/oasisfl/oasis/internal/tensor"
)

// GradCheckResult reports the worst relative error found by CheckGradients.
type GradCheckResult struct {
	MaxRelErr float64
	Param     string // parameter (or "input") where the worst error occurred
	Index     int
}

// CheckGradients compares the analytic gradients of net for (x, labels, loss)
// against central finite differences with step eps. It checks every
// parameter and the input gradient, returning the worst relative error.
//
// This is the correctness anchor of the whole substrate: the inversion
// attacks are only meaningful if the gradients they invert are exact.
func CheckGradients(net *Sequential, loss Loss, x *tensor.Tensor, labels []int, eps float64) (GradCheckResult, error) {
	// Evaluate in training mode: layers like batch norm compute the loss
	// from batch statistics there, which is the function the analytic
	// backward pass differentiates. (Training-mode side effects — caches,
	// running-stat updates — do not influence the returned loss.)
	eval := func() float64 {
		out := net.Forward(x, true)
		l, _ := loss.Compute(out, labels)
		return l
	}
	// Analytic pass.
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, g := loss.Compute(out, labels)
	gx := net.Backward(g)

	worst := GradCheckResult{}
	check := func(name string, values, grads []float64) {
		for i := range values {
			orig := values[i]
			values[i] = orig + eps
			lp := eval()
			values[i] = orig - eps
			lm := eval()
			values[i] = orig
			num := (lp - lm) / (2 * eps)
			// The 1e-6 floor absorbs directions whose true gradient is
			// exactly zero (e.g. a conv bias feeding batch norm, which
			// cancels additive constants): there the finite difference is
			// pure truncation noise of order eps²·f'''.
			den := math.Max(math.Abs(num)+math.Abs(grads[i]), 1e-6)
			rel := math.Abs(num-grads[i]) / den
			if rel > worst.MaxRelErr {
				worst = GradCheckResult{MaxRelErr: rel, Param: name, Index: i}
			}
		}
	}
	for _, p := range net.Params() {
		check(p.Name, p.W.Data(), p.G.Data())
	}
	check("input", x.Data(), gx.Data())
	if worst.MaxRelErr > 1e-4 {
		return worst, fmt.Errorf("nn: gradient check failed: rel err %.3e at %s[%d]", worst.MaxRelErr, worst.Param, worst.Index)
	}
	return worst, nil
}
