package nn

import (
	"fmt"
	"math"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Loss maps network outputs and integer labels to a scalar loss and the
// gradient of that loss with respect to the outputs.
type Loss interface {
	// Compute returns the mean loss over the batch and ∂loss/∂logits.
	Compute(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor)
	Name() string
}

// SoftmaxCrossEntropy is the standard multi-class classification loss
// averaged over the batch. This is the loss the FL clients in the paper
// minimize, and whose gradients the dishonest server inverts.
type SoftmaxCrossEntropy struct{}

var _ Loss = SoftmaxCrossEntropy{}

// Compute returns mean cross-entropy and its gradient (softmax − onehot)/B.
func (SoftmaxCrossEntropy) Compute(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: cross-entropy expects [B,K] logits, got %v", logits.Shape()))
	}
	b, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("nn: cross-entropy got %d labels for batch %d", len(labels), b))
	}
	grad := tensor.New(b, k)
	loss := 0.0
	for i := 0; i < b; i++ {
		row := logits.RowView(i)
		g := grad.RowView(i)
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			g[j] = e
			sum += e
		}
		for j := range g {
			g[j] /= sum
		}
		loss += -math.Log(math.Max(g[y], 1e-300))
		g[y] -= 1
	}
	inv := 1.0 / float64(b)
	grad.ScaleInPlace(inv)
	return loss * inv, grad
}

// Name identifies the loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-cross-entropy" }

// Softmax returns row-wise softmax probabilities of a [B,K] tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	b, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(b, k)
	for i := 0; i < b; i++ {
		row := logits.RowView(i)
		o := out.RowView(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			o[j] = e
			sum += e
		}
		for j := range o {
			o[j] /= sum
		}
	}
	return out
}

// MSE is mean squared error against one-hot targets; used in ablation tests.
type MSE struct{}

var _ Loss = MSE{}

// Compute returns mean squared error to the one-hot encoding of labels.
func (MSE) Compute(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	b, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("nn: mse got %d labels for batch %d", len(labels), b))
	}
	grad := tensor.New(b, k)
	loss := 0.0
	n := float64(b * k)
	for i := 0; i < b; i++ {
		row := logits.RowView(i)
		g := grad.RowView(i)
		for j, v := range row {
			t := 0.0
			if j == labels[i] {
				t = 1
			}
			d := v - t
			loss += d * d / n
			g[j] = 2 * d / n
		}
	}
	return loss, grad
}

// Name identifies the loss.
func (MSE) Name() string { return "mse" }

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	b := logits.Dim(0)
	correct := 0
	for i := 0; i < b; i++ {
		row := logits.RowView(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(b)
}
