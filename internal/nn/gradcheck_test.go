package nn

import (
	"testing"

	"github.com/oasisfl/oasis/internal/tensor"
)

// The gradient checks below are the correctness anchor for the whole
// repository: the attacks invert analytic gradients, so every layer's
// backward pass is verified against central finite differences.

func checkNet(t *testing.T, net *Sequential, loss Loss, x *tensor.Tensor, labels []int) {
	t.Helper()
	res, err := CheckGradients(net, loss, x, labels, 1e-5)
	if err != nil {
		t.Fatalf("gradient check failed: %v", err)
	}
	if res.MaxRelErr > 1e-4 {
		t.Fatalf("max relative error %.3e at %s[%d]", res.MaxRelErr, res.Param, res.Index)
	}
}

func randInput(rng interface{ NormFloat64() float64 }, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64() * 0.7
	}
	return x
}

func TestGradLinear(t *testing.T) {
	rng := RandSource(1, 1)
	net := NewSequential(NewLinear("fc", 6, 4, rng))
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 3, 6), []int{0, 2, 3})
}

func TestGradLinearReLUStack(t *testing.T) {
	rng := RandSource(2, 1)
	net := NewSequential(
		NewLinear("fc1", 5, 8, rng),
		NewReLU("relu1"),
		NewLinear("fc2", 8, 3, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 4, 5), []int{0, 1, 2, 1})
}

func TestGradConv2D(t *testing.T) {
	rng := RandSource(3, 1)
	net := NewSequential(
		NewConv2D("conv", 2, 3, 3, 1, 1, rng),
		NewFlatten("flat"),
		NewLinear("fc", 3*5*5, 3, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 2, 2, 5, 5), []int{0, 2})
}

func TestGradConvStride2NoPad(t *testing.T) {
	rng := RandSource(4, 1)
	net := NewSequential(
		NewConv2D("conv", 1, 2, 3, 2, 0, rng),
		NewFlatten("flat"),
		NewLinear("fc", 2*2*2, 2, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 2, 1, 5, 5), []int{1, 0})
}

func TestGradBatchNorm(t *testing.T) {
	rng := RandSource(5, 1)
	net := NewSequential(
		NewConv2D("conv", 1, 3, 3, 1, 1, rng),
		NewBatchNorm2D("bn", 3),
		NewReLU("relu"),
		NewFlatten("flat"),
		NewLinear("fc", 3*4*4, 2, rng),
	)
	// Batch statistics couple every input element into the normalization;
	// this exercises the full BN backward including the statistic terms.
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 3, 1, 4, 4), []int{0, 1, 1})
}

func TestGradMaxPool(t *testing.T) {
	rng := RandSource(6, 1)
	net := NewSequential(
		NewConv2D("conv", 1, 2, 3, 1, 1, rng),
		NewMaxPool2D("pool", 2),
		NewFlatten("flat"),
		NewLinear("fc", 2*3*3, 2, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 2, 1, 6, 6), []int{0, 1})
}

func TestGradGlobalAvgPool(t *testing.T) {
	rng := RandSource(7, 1)
	net := NewSequential(
		NewConv2D("conv", 2, 4, 3, 1, 1, rng),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 4, 3, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 2, 2, 5, 5), []int{2, 0})
}

func TestGradResidualIdentity(t *testing.T) {
	rng := RandSource(8, 1)
	net := NewSequential(
		NewConv2D("stem", 1, 2, 3, 1, 1, rng),
		NewResidual("block",
			NewConv2D("block.conv", 2, 2, 3, 1, 1, rng),
			NewReLU("block.relu"),
		),
		NewFlatten("flat"),
		NewLinear("fc", 2*4*4, 2, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 2, 1, 4, 4), []int{0, 1})
}

func TestGradResidualProjection(t *testing.T) {
	rng := RandSource(9, 1)
	net := NewSequential(
		NewResidualProj("block",
			NewConv2D("proj", 1, 2, 1, 1, 0, rng),
			NewConv2D("block.conv", 1, 2, 3, 1, 1, rng),
		),
		NewFlatten("flat"),
		NewLinear("fc", 2*4*4, 2, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 2, 1, 4, 4), []int{1, 0})
}

func TestGradMSELoss(t *testing.T) {
	rng := RandSource(10, 1)
	net := NewSequential(NewLinear("fc", 4, 3, rng))
	checkNet(t, net, MSE{}, randInput(rng, 3, 4), []int{0, 1, 2})
}

func TestGradMaliciousVictimShape(t *testing.T) {
	// The exact layer arrangement the attacks plant: wide FC + ReLU + head.
	rng := RandSource(11, 1)
	net := NewSequential(
		NewLinear("malicious", 12, 20, rng),
		NewReLU("malicious.relu"),
		NewLinear("head", 20, 4, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 5, 12), []int{0, 1, 2, 3, 0})
}
