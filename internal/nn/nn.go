// Package nn is the deep-learning substrate of this repository: a layer
// graph with hand-written forward/backward passes over internal/tensor.
//
// The package exists because the gradient-inversion attacks reproduced here
// (RTF, CAH, single-layer inversion) operate on exact analytic gradients of
// model parameters; any correct backprop engine produces the same float64
// gradients, so a small dedicated engine is a faithful substitute for the
// PyTorch stack the paper used. Every layer is covered by numerical gradient
// checks in the test suite.
//
// Layers are stateful: Forward caches the activations Backward needs, so a
// single layer instance must not be shared across concurrent passes. Networks
// are cheap to clone for parallel workers via Sequential.Clone.
package nn

import (
	"fmt"
	"math"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Param is a named learnable parameter with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor // value
	G    *tensor.Tensor // gradient of the loss w.r.t. W, same shape
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for x. When train is false the
	// layer may skip bookkeeping needed only by Backward (and layers such
	// as batch norm use their inference statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output and returns
	// the gradient w.r.t. the layer input, accumulating parameter
	// gradients as a side effect. It must be called after a
	// Forward(…, true) with the matching input.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
	// Clone returns an independent copy of the layer with copied weights
	// and fresh (zero) gradients and caches.
	Clone() Layer
	// Name identifies the layer for diagnostics and parameter naming.
	Name() string
}

// Sequential chains layers; it is itself not a Layer so that it can own
// network-level helpers (parameter flattening, gradient vectors).
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates gradOut through all layers in reverse and returns the
// gradient with respect to the network input.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params returns all learnable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// Clone deep-copies the network (weights copied, gradients zeroed).
func (s *Sequential) Clone() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.W.Len()
	}
	return n
}

// Gradients returns deep copies of all parameter gradients in layer order.
// This is the payload a federated-learning client uploads. The copies are
// pool-backed: a caller done with one may Release it, and one that never
// does simply leaves it to the collector.
func (s *Sequential) Gradients() []*tensor.Tensor {
	ps := s.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.G.ClonePooled()
	}
	return out
}

// SetWeights copies the given tensors into the network parameters. The slice
// must match Params() in length and per-entry shape.
func (s *Sequential) SetWeights(ws []*tensor.Tensor) error {
	ps := s.Params()
	if len(ws) != len(ps) {
		return fmt.Errorf("nn: SetWeights got %d tensors, network has %d params", len(ws), len(ps))
	}
	for i, p := range ps {
		if !p.W.SameShape(ws[i]) {
			return fmt.Errorf("nn: SetWeights param %q shape %v != %v", p.Name, p.W.Shape(), ws[i].Shape())
		}
		copy(p.W.Data(), ws[i].Data())
	}
	return nil
}

// Weights returns deep copies of all parameter values in layer order,
// pool-backed like Gradients.
func (s *Sequential) Weights() []*tensor.Tensor {
	ps := s.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.W.ClonePooled()
	}
	return out
}

// heStd returns the He-initialization standard deviation for fanIn inputs.
func heStd(fanIn int) float64 {
	return math.Sqrt(2.0 / float64(fanIn))
}

// xavierStd returns the Xavier/Glorot standard deviation.
func xavierStd(fanIn, fanOut int) float64 {
	return math.Sqrt(2.0 / float64(fanIn+fanOut))
}

// RandSource derives a deterministic *rand.Rand from a pair of seeds. All
// stochastic components in this repository thread seeds explicitly so every
// experiment is reproducible.
func RandSource(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}
