package nn

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] activations implemented by
// im2col lowering. Weight shape is [outC, inC, KH, KW]; bias is [outC].
//
// Workspace lifecycle: the im2col matrix and the backward scratch buffers are
// drawn from the tensor workspace arena (tensor.NewPooled) and handed back as
// soon as their last reader is done — the cols workspace lives from
// Forward(train) to the end of the matching Backward, everything else within
// a single call. Per-step allocation volume therefore stays O(model) instead
// of O(B·OH·OW) once the arena is warm, which is what keeps GC pressure flat
// when thousands of simulated clients train per round.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	Weight                    *Param
	Bias                      *Param

	lastCols   *tensor.Tensor // pooled; released at the end of Backward
	lastInDims [4]int
	lastOut    [2]int
	name       string
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a square-kernel convolution with He initialization.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	w.FillRandn(rng, heStd(inC*k*k))
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: &Param{Name: name + ".weight", W: w, G: tensor.New(outC, inC, k, k)},
		Bias:   &Param{Name: name + ".bias", W: tensor.New(outC), G: tensor.New(outC)},
		name:   name,
	}
}

// Forward computes the convolution via im2col + the fused ConvOut kernel
// (matmul, [B,outC,OH,OW] rearrange, and bias add in one pass).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s expects [B,%d,H,W], got %v", c.name, c.InC, x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	// The lowering workspace comes from the shared arena: a train-mode
	// Forward hands it to Backward (which releases it), an inference pass
	// releases it immediately. An inference pass between a Forward(train)
	// and its Backward therefore never disturbs the pending pair.
	cols := tensor.NewPooled(b*oh*ow, c.InC*c.K*c.K)
	tensor.Im2ColInto(cols, x, c.K, c.K, c.Stride, c.Pad)
	wmat := c.Weight.W.MustReshape(c.OutC, c.InC*c.K*c.K)
	out := tensor.ConvOut(cols, wmat, c.Bias.W.Data(), b, oh, ow)
	if train {
		// A repeated Forward(train) with no intervening Backward (numerical
		// gradient checks do this) orphans the previous workspace: recycle it.
		c.lastCols.Release()
		c.lastCols = cols
		c.lastInDims = [4]int{b, c.InC, h, w}
		c.lastOut = [2]int{oh, ow}
	} else {
		cols.Release()
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train)", c.name))
	}
	b, h, w := c.lastInDims[0], c.lastInDims[2], c.lastInDims[3]
	oh, ow := c.lastOut[0], c.lastOut[1]
	if gradOut.Dims() != 4 || gradOut.Dim(0) != b || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: %s Backward shape %v, want [%d,%d,%d,%d]", c.name, gradOut.Shape(), b, c.OutC, oh, ow))
	}
	// Rearrange gradOut [B,outC,OH,OW] → gRows [B*OH*OW, outC].
	gRows := tensor.NewPooled(b*oh*ow, c.OutC)
	gd := gradOut.Data()
	gr := gRows.Data()
	for bi := 0; bi < b; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gr[((bi*oh+oy)*ow+ox)*c.OutC+oc] = gd[((bi*c.OutC+oc)*oh+oy)*ow+ox]
				}
			}
		}
	}
	// ∂L/∂W = gRowsᵀ · cols  → [outC, inC*K*K]
	gw := tensor.MatMulTransA(gRows, c.lastCols)
	c.Weight.G.AddInPlace(gw.MustReshape(c.OutC, c.InC, c.K, c.K))
	gw.Release()
	// ∂L/∂b = column sums of gRows
	gb := c.Bias.G.Data()
	for r := 0; r < gRows.Dim(0); r++ {
		row := gRows.RowView(r)
		for oc := range row {
			gb[oc] += row[oc]
		}
	}
	// ∂L/∂cols = gRows · Wmat → scatter back with Col2Im.
	wmat := c.Weight.W.MustReshape(c.OutC, c.InC*c.K*c.K)
	gCols := tensor.MatMul(gRows, wmat)
	gRows.Release()
	dx := tensor.Col2Im(gCols, b, c.InC, h, w, c.K, c.K, c.Stride, c.Pad)
	gCols.Release()
	c.lastCols.Release()
	c.lastCols = nil
	return dx
}

// Params returns weight and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Clone returns a deep copy with zeroed gradients (workspaces are not
// cloned; each instance draws its own from the arena).
func (c *Conv2D) Clone() Layer {
	cp := &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		Weight: &Param{Name: c.Weight.Name, W: c.Weight.W.Clone(), G: tensor.New(c.Weight.W.Shape()...)},
		Bias:   &Param{Name: c.Bias.Name, W: c.Bias.W.Clone(), G: tensor.New(c.Bias.W.Shape()...)},
		name:   c.name,
	}
	return cp
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }
