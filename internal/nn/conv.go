package nn

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] activations implemented by
// im2col lowering. Weight shape is [outC, inC, KH, KW]; bias is [outC].
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	Weight                    *Param
	Bias                      *Param

	lastCols   *tensor.Tensor
	lastInDims [4]int
	lastOut    [2]int
	name       string
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a square-kernel convolution with He initialization.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	w.FillRandn(rng, heStd(inC*k*k))
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: &Param{Name: name + ".weight", W: w, G: tensor.New(outC, inC, k, k)},
		Bias:   &Param{Name: name + ".bias", W: tensor.New(outC), G: tensor.New(outC)},
		name:   name,
	}
}

// Forward computes the convolution via im2col + matmul.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s expects [B,%d,H,W], got %v", c.name, c.InC, x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	cols, oh, ow := tensor.Im2Col(x, c.K, c.K, c.Stride, c.Pad) // [B*OH*OW, inC*K*K]
	wmat := c.Weight.W.MustReshape(c.OutC, c.InC*c.K*c.K)
	prod := tensor.MatMulTransB(cols, wmat) // [B*OH*OW, outC]
	if train {
		c.lastCols = cols
		c.lastInDims = [4]int{b, c.InC, h, w}
		c.lastOut = [2]int{oh, ow}
	}
	// Rearrange [B*OH*OW, outC] → [B, outC, OH, OW] and add bias.
	out := tensor.New(b, c.OutC, oh, ow)
	bias := c.Bias.W.Data()
	pd := prod.Data()
	od := out.Data()
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := pd[((bi*oh+oy)*ow+ox)*c.OutC:]
				for oc := 0; oc < c.OutC; oc++ {
					od[((bi*c.OutC+oc)*oh+oy)*ow+ox] = row[oc] + bias[oc]
				}
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train)", c.name))
	}
	b, h, w := c.lastInDims[0], c.lastInDims[2], c.lastInDims[3]
	oh, ow := c.lastOut[0], c.lastOut[1]
	if gradOut.Dims() != 4 || gradOut.Dim(0) != b || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: %s Backward shape %v, want [%d,%d,%d,%d]", c.name, gradOut.Shape(), b, c.OutC, oh, ow))
	}
	// Rearrange gradOut [B,outC,OH,OW] → gRows [B*OH*OW, outC].
	gRows := tensor.New(b*oh*ow, c.OutC)
	gd := gradOut.Data()
	gr := gRows.Data()
	for bi := 0; bi < b; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gr[((bi*oh+oy)*ow+ox)*c.OutC+oc] = gd[((bi*c.OutC+oc)*oh+oy)*ow+ox]
				}
			}
		}
	}
	// ∂L/∂W = gRowsᵀ · cols  → [outC, inC*K*K]
	gw := tensor.MatMulTransA(gRows, c.lastCols)
	c.Weight.G.AddInPlace(gw.MustReshape(c.OutC, c.InC, c.K, c.K))
	// ∂L/∂b = column sums of gRows
	gb := c.Bias.G.Data()
	for r := 0; r < gRows.Dim(0); r++ {
		row := gRows.RowView(r)
		for oc := range row {
			gb[oc] += row[oc]
		}
	}
	// ∂L/∂cols = gRows · Wmat → scatter back with Col2Im.
	wmat := c.Weight.W.MustReshape(c.OutC, c.InC*c.K*c.K)
	gCols := tensor.MatMul(gRows, wmat)
	return tensor.Col2Im(gCols, b, c.InC, h, w, c.K, c.K, c.Stride, c.Pad)
}

// Params returns weight and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Clone returns a deep copy with zeroed gradients.
func (c *Conv2D) Clone() Layer {
	cp := &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		Weight: &Param{Name: c.Weight.Name, W: c.Weight.W.Clone(), G: tensor.New(c.Weight.W.Shape()...)},
		Bias:   &Param{Name: c.Bias.Name, W: c.Bias.W.Clone(), G: tensor.New(c.Bias.W.Shape()...)},
		name:   c.name,
	}
	return cp
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }
