package nn

import (
	"fmt"
	"math"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Sigmoid is the logistic activation 1/(1+e^{-x}).
type Sigmoid struct {
	lastOut *tensor.Tensor
	name    string
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid constructs a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Forward applies the logistic function elementwise.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = 1 / (1 + math.Exp(-v))
	}
	if train {
		s.lastOut = out.Clone()
	}
	return out
}

// Backward uses σ'(x) = σ(x)(1−σ(x)).
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if s.lastOut == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train)", s.name))
	}
	out := gradOut.Clone()
	d := out.Data()
	y := s.lastOut.Data()
	for i := range d {
		d[i] *= y[i] * (1 - y[i])
	}
	return out
}

// Params returns nil: sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// Clone returns a fresh sigmoid.
func (s *Sigmoid) Clone() Layer { return NewSigmoid(s.name) }

// Name returns the layer name.
func (s *Sigmoid) Name() string { return s.name }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
	name    string
}

var _ Layer = (*Tanh)(nil)

// NewTanh constructs a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = math.Tanh(v)
	}
	if train {
		t.lastOut = out.Clone()
	}
	return out
}

// Backward uses tanh'(x) = 1 − tanh²(x).
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.lastOut == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train)", t.name))
	}
	out := gradOut.Clone()
	d := out.Data()
	y := t.lastOut.Data()
	for i := range d {
		d[i] *= 1 - y[i]*y[i]
	}
	return out
}

// Params returns nil: tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Clone returns a fresh tanh.
func (t *Tanh) Clone() Layer { return NewTanh(t.name) }

// Name returns the layer name.
func (t *Tanh) Name() string { return t.name }

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1−P) (inverted dropout), so inference needs no
// rescaling. The mask is drawn from the layer's own generator; pass a seeded
// generator for reproducible training runs.
type Dropout struct {
	P   float64
	Rng *rand.Rand

	mask []bool
	name string
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with drop probability p in [0, 1).
func NewDropout(name string, p float64, rng *rand.Rand) (*Dropout, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("nn: dropout probability %g outside [0,1)", p)
	}
	return &Dropout{P: p, Rng: rng, name: name}, nil
}

// Forward drops units in training mode and is the identity in inference.
func (dr *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if !train || dr.P == 0 {
		return out
	}
	d := out.Data()
	if cap(dr.mask) < len(d) {
		dr.mask = make([]bool, len(d))
	}
	dr.mask = dr.mask[:len(d)]
	scale := 1 / (1 - dr.P)
	for i := range d {
		keep := dr.Rng.Float64() >= dr.P
		dr.mask[i] = keep
		if keep {
			d[i] *= scale
		} else {
			d[i] = 0
		}
	}
	return out
}

// Backward routes gradients through the surviving units only.
func (dr *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out := gradOut.Clone()
	if dr.P == 0 {
		return out
	}
	d := out.Data()
	if len(dr.mask) != len(d) {
		panic(fmt.Sprintf("nn: %s Backward without matching Forward", dr.name))
	}
	scale := 1 / (1 - dr.P)
	for i := range d {
		if dr.mask[i] {
			d[i] *= scale
		} else {
			d[i] = 0
		}
	}
	return out
}

// Params returns nil: dropout has no parameters.
func (dr *Dropout) Params() []*Param { return nil }

// Clone returns a dropout layer sharing the drop rate and generator.
func (dr *Dropout) Clone() Layer {
	return &Dropout{P: dr.P, Rng: dr.Rng, name: dr.name}
}

// Name returns the layer name.
func (dr *Dropout) Name() string { return dr.name }
