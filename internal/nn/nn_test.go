package nn

import (
	"math"
	"strings"
	"testing"

	"github.com/oasisfl/oasis/internal/tensor"
)

func TestSequentialCloneIsIndependent(t *testing.T) {
	rng := RandSource(1, 2)
	net := NewSequential(
		NewLinear("fc1", 4, 6, rng),
		NewReLU("relu"),
		NewLinear("fc2", 6, 3, rng),
	)
	cl := net.Clone()
	// Same weights initially…
	x := randInput(rng, 2, 4)
	a := net.Forward(x, false)
	b := cl.Forward(x, false)
	if !a.EqualApprox(b, 1e-12) {
		t.Fatal("clone forward differs from original")
	}
	// …but mutating the clone leaves the original untouched.
	cl.Params()[0].W.Fill(0)
	c := net.Forward(x, false)
	if !a.EqualApprox(c, 1e-12) {
		t.Error("mutating clone affected original weights")
	}
}

func TestSequentialWeightsRoundTrip(t *testing.T) {
	rng := RandSource(3, 2)
	net := NewSequential(NewLinear("fc", 3, 2, rng))
	ws := net.Weights()
	ws[0].Fill(7)
	if err := net.SetWeights(ws); err != nil {
		t.Fatal(err)
	}
	if got := net.Params()[0].W.At(1, 2); got != 7 {
		t.Errorf("SetWeights did not copy: %g", got)
	}
	// Error paths.
	if err := net.SetWeights(ws[:1]); err == nil {
		t.Error("SetWeights with missing tensors did not error")
	}
	bad := []*tensor.Tensor{tensor.New(1, 1), tensor.New(2)}
	if err := net.SetWeights(bad); err == nil {
		t.Error("SetWeights with wrong shapes did not error")
	}
}

func TestGradientsAreCopies(t *testing.T) {
	rng := RandSource(5, 2)
	net := NewSequential(NewLinear("fc", 3, 2, rng))
	x := randInput(rng, 2, 3)
	out := net.Forward(x, true)
	_, g := SoftmaxCrossEntropy{}.Compute(out, []int{0, 1})
	net.Backward(g)
	grads := net.Gradients()
	grads[0].Fill(0)
	if net.Params()[0].G.L2Norm() == 0 {
		t.Error("Gradients() returned a view of parameter gradients")
	}
}

func TestGradientAccumulation(t *testing.T) {
	rng := RandSource(6, 2)
	net := NewSequential(NewLinear("fc", 3, 2, rng))
	x := randInput(rng, 2, 3)
	run := func() {
		out := net.Forward(x, true)
		_, g := SoftmaxCrossEntropy{}.Compute(out, []int{0, 1})
		net.Backward(g)
	}
	net.ZeroGrad()
	run()
	once := net.Params()[0].G.Clone()
	run() // no ZeroGrad: gradients must accumulate
	twice := net.Params()[0].G
	if !twice.EqualApprox(once.Scale(2), 1e-9) {
		t.Error("gradients did not accumulate across backward passes")
	}
}

func TestParamNames(t *testing.T) {
	rng := RandSource(7, 2)
	net := NewResNetLite(ResNetLiteConfig{InChannels: 3, NumClasses: 4, Width: 4}, rng)
	seen := map[string]bool{}
	for _, p := range net.Params() {
		if p.Name == "" {
			t.Error("parameter with empty name")
		}
		if seen[p.Name] {
			t.Errorf("duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		if !p.W.SameShape(p.G) {
			t.Errorf("parameter %q gradient shape mismatch", p.Name)
		}
	}
	if len(seen) < 10 {
		t.Errorf("ResNet-lite exposes only %d params", len(seen))
	}
}

func TestNumParamsPositive(t *testing.T) {
	rng := RandSource(8, 2)
	net := NewResNetLite(ResNetLiteConfig{InChannels: 3, NumClasses: 10, Width: 8}, rng)
	if n := net.NumParams(); n < 1000 {
		t.Errorf("NumParams = %d, suspiciously small", n)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := RandSource(9, 2)
	logits := randInput(rng, 4, 7)
	p := Softmax(logits)
	for i := 0; i < 4; i++ {
		s := 0.0
		for _, v := range p.RowView(i) {
			if v < 0 {
				t.Fatalf("negative probability %g", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d sums to %g", i, s)
		}
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over k classes ⇒ loss = ln k.
	k := 5
	logits := tensor.New(1, k)
	loss, grad := SoftmaxCrossEntropy{}.Compute(logits, []int{2})
	if math.Abs(loss-math.Log(float64(k))) > 1e-12 {
		t.Errorf("uniform CE loss = %g, want ln %d", loss, k)
	}
	// Gradient: softmax − onehot = 1/k everywhere except 1/k − 1 at label.
	for j, g := range grad.RowView(0) {
		want := 1.0 / float64(k)
		if j == 2 {
			want -= 1
		}
		if math.Abs(g-want) > 1e-12 {
			t.Errorf("grad[%d] = %g, want %g", j, g, want)
		}
	}
}

func TestCrossEntropyNumericalStability(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{1e4, -1e4, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy{}.Compute(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %g with extreme logits", loss)
	}
	for _, g := range grad.Data() {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient with extreme logits")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{
		2, 1, 0,
		0, 3, 1,
		1, 0, 2,
	}, 3, 3)
	if got := Accuracy(logits, []int{0, 1, 2}); got != 1 {
		t.Errorf("Accuracy = %g, want 1", got)
	}
	if got := Accuracy(logits, []int{1, 1, 1}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Accuracy = %g, want 1/3", got)
	}
}

func TestReLUBackwardRequiresForward(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "ReLU") {
			t.Error("ReLU Backward without Forward did not panic informatively")
		}
	}()
	NewReLU("r").Backward(tensor.New(2, 2))
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := RandSource(10, 2)
	bn := NewBatchNorm2D("bn", 2)
	x := randInput(rng, 4, 2, 3, 3)
	// Train a few passes to move running stats.
	for i := 0; i < 20; i++ {
		bn.Forward(x, true)
	}
	out := bn.Forward(x, false)
	// Inference output should be close to the training normalization once
	// running stats converge to batch stats.
	want := bn.Forward(x, true)
	if !out.EqualApprox(want, 0.2) {
		t.Error("inference-mode output far from converged training normalization")
	}
}

func TestLinearFromValidation(t *testing.T) {
	if _, err := NewLinearFrom("x", tensor.New(2), tensor.New(2)); err == nil {
		t.Error("1-D weight accepted")
	}
	if _, err := NewLinearFrom("x", tensor.New(2, 3), tensor.New(3)); err == nil {
		t.Error("mismatched bias accepted")
	}
	l, err := NewLinearFrom("x", tensor.New(2, 3), tensor.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if l.In != 3 || l.Out != 2 {
		t.Errorf("dims = (%d,%d), want (3,2)", l.In, l.Out)
	}
}
