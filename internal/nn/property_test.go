package nn

import (
	"testing"
	"testing/quick"

	"github.com/oasisfl/oasis/internal/tensor"
)

// TestLinearAffineProperty: a Linear layer is affine, so
// f(x+y) = f(x) + f(y) − f(0) for any inputs.
func TestLinearAffineProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := RandSource(seed, 101)
		in := 2 + int(seed%6)
		out := 1 + int((seed>>3)%5)
		l := NewLinear("fc", in, out, rng)
		x := randInput(rng, 2, in)
		y := randInput(rng, 2, in)
		zero := tensor.New(2, in)
		lhs := l.Forward(x.Add(y), false)
		rhs := l.Forward(x, false).Add(l.Forward(y, false)).Sub(l.Forward(zero, false))
		return lhs.EqualApprox(rhs, 1e-9)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

// TestConvTranslationStructure: convolution with zero padding commutes with
// batch concatenation — each batch element is processed independently.
func TestConvBatchIndependenceProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := RandSource(seed, 103)
		c := NewConv2D("c", 1, 2, 3, 1, 1, rng)
		a := randInput(rng, 1, 1, 5, 5)
		b := randInput(rng, 1, 1, 5, 5)
		both := tensor.New(2, 1, 5, 5)
		copy(both.Data()[:25], a.Data())
		copy(both.Data()[25:], b.Data())
		outBoth := c.Forward(both, false)
		outA := c.Forward(a, false)
		outB := c.Forward(b, false)
		half := outBoth.Len() / 2
		for i := 0; i < half; i++ {
			if diff := outBoth.Data()[i] - outA.Data()[i]; diff > 1e-12 || diff < -1e-12 {
				return false
			}
			if diff := outBoth.Data()[half+i] - outB.Data()[i]; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}

// TestReLUIdempotentProperty: ReLU∘ReLU = ReLU.
func TestReLUIdempotentProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := RandSource(seed, 105)
		r := NewReLU("r")
		x := randInput(rng, 3, 7)
		once := r.Forward(x, false)
		twice := r.Forward(once, false)
		return once.EqualApprox(twice, 0)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

// TestGradResNetLiteFull is the integration gradient check: the full
// residual classifier (every layer type composed) against finite
// differences on a tiny instance.
func TestGradResNetLiteFull(t *testing.T) {
	rng := RandSource(55, 1)
	net := NewResNetLite(ResNetLiteConfig{InChannels: 1, NumClasses: 3, Width: 2}, rng)
	x := randInput(rng, 2, 1, 8, 8)
	res, err := CheckGradients(net, SoftmaxCrossEntropy{}, x, []int{0, 2}, 1e-5)
	if err != nil {
		t.Fatalf("full ResNet-lite gradient check: %v", err)
	}
	if res.MaxRelErr > 1e-4 {
		t.Fatalf("max rel err %.2e at %s", res.MaxRelErr, res.Param)
	}
}
