package nn

import (
	rand "math/rand/v2"
	"testing"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Conv2D train-step benchmarks with ReportAllocs: the point of the workspace
// arena is that steady-state forward/backward allocation stays flat in the
// batch size (the im2col matrix, the gradient scratch and the cached
// activations all come from the pool once it is warm).

func benchConvStep(b *testing.B, batch int) {
	rng := rand.New(rand.NewPCG(21, 22))
	layer := NewConv2D("bench", 3, 16, 3, 1, 1, rng)
	x := tensor.New(batch, 3, 32, 32)
	x.FillRandn(rng, 1)
	g := tensor.New(batch, 16, 32, 32)
	g.FillRandn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = layer.Forward(x, true)
		_ = layer.Backward(g)
	}
}

func BenchmarkConv2DStep_8x3x32x32(b *testing.B)  { benchConvStep(b, 8) }
func BenchmarkConv2DStep_32x3x32x32(b *testing.B) { benchConvStep(b, 32) }

func BenchmarkLinearStep_64x3072x500(b *testing.B) {
	rng := rand.New(rand.NewPCG(23, 24))
	layer := NewLinear("bench", 3072, 500, rng)
	x := tensor.New(64, 3072)
	x.FillRandn(rng, 1)
	g := tensor.New(64, 500)
	g.FillRandn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = layer.Forward(x, true)
		_ = layer.Backward(g)
	}
}
