package nn

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Residual wraps a body of layers with an identity (or 1×1-projection) skip
// connection: y = body(x) + proj(x). It is the building block of the
// ResNet-lite classifier used for the Table I utility experiment.
type Residual struct {
	Body []Layer
	Proj Layer // nil means identity skip

	name string
}

var _ Layer = (*Residual)(nil)

// NewResidual wraps body layers with an identity skip connection.
func NewResidual(name string, body ...Layer) *Residual {
	return &Residual{Body: body, name: name}
}

// NewResidualProj wraps body layers with a projection layer on the skip path
// (used when the body changes channel count or spatial size).
func NewResidualProj(name string, proj Layer, body ...Layer) *Residual {
	return &Residual{Body: body, Proj: proj, name: name}
}

// Forward computes body(x) + skip(x).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for _, l := range r.Body {
		out = l.Forward(out, train)
	}
	skip := x
	if r.Proj != nil {
		skip = r.Proj.Forward(x, train)
	}
	if !out.SameShape(skip) {
		panic(fmt.Sprintf("nn: %s body output %v does not match skip %v", r.name, out.Shape(), skip.Shape()))
	}
	return out.Add(skip)
}

// Backward splits the output gradient between the body and the skip path and
// sums the two input gradients.
func (r *Residual) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := gradOut
	for i := len(r.Body) - 1; i >= 0; i-- {
		g = r.Body[i].Backward(g)
	}
	if r.Proj != nil {
		return g.Add(r.Proj.Backward(gradOut))
	}
	return g.Add(gradOut)
}

// Params returns the parameters of the body and projection.
func (r *Residual) Params() []*Param {
	var ps []*Param
	for _, l := range r.Body {
		ps = append(ps, l.Params()...)
	}
	if r.Proj != nil {
		ps = append(ps, r.Proj.Params()...)
	}
	return ps
}

// Clone deep-copies body and projection.
func (r *Residual) Clone() Layer {
	c := &Residual{name: r.name, Body: make([]Layer, len(r.Body))}
	for i, l := range r.Body {
		c.Body[i] = l.Clone()
	}
	if r.Proj != nil {
		c.Proj = r.Proj.Clone()
	}
	return c
}

// Name returns the block name.
func (r *Residual) Name() string { return r.name }

// ResNetLiteConfig sizes the small residual classifier used in place of the
// paper's ResNet-18 (see DESIGN.md substitution table).
type ResNetLiteConfig struct {
	InChannels int // input image channels
	NumClasses int
	Width      int // channel count of the first stage; later stages double it
}

// NewResNetLite builds a 3-stage residual classifier:
//
//	conv3x3(w) → BN → ReLU
//	stage1: residual block at w
//	stage2: strided conv to 2w + residual block
//	stage3: strided conv to 4w + residual block
//	global average pool → linear head
func NewResNetLite(cfg ResNetLiteConfig, rng *rand.Rand) *Sequential {
	w := cfg.Width
	block := func(name string, c int) Layer {
		return NewResidual(name,
			NewConv2D(name+".conv1", c, c, 3, 1, 1, rng),
			NewBatchNorm2D(name+".bn1", c),
			NewReLU(name+".relu1"),
			NewConv2D(name+".conv2", c, c, 3, 1, 1, rng),
			NewBatchNorm2D(name+".bn2", c),
		)
	}
	down := func(name string, inC, outC int) []Layer {
		return []Layer{
			NewConv2D(name+".down", inC, outC, 3, 2, 1, rng),
			NewBatchNorm2D(name+".dbn", outC),
			NewReLU(name + ".drelu"),
		}
	}
	layers := []Layer{
		NewConv2D("stem.conv", cfg.InChannels, w, 3, 1, 1, rng),
		NewBatchNorm2D("stem.bn", w),
		NewReLU("stem.relu"),
		block("stage1", w),
		NewReLU("stage1.out"),
	}
	layers = append(layers, down("stage2", w, 2*w)...)
	layers = append(layers, block("stage2.block", 2*w), NewReLU("stage2.out"))
	layers = append(layers, down("stage3", 2*w, 4*w)...)
	layers = append(layers, block("stage3.block", 4*w), NewReLU("stage3.out"))
	layers = append(layers,
		NewGlobalAvgPool("head.pool"),
		NewLinear("head.fc", 4*w, cfg.NumClasses, rng),
	)
	return NewSequential(layers...)
}
