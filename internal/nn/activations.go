package nn

import (
	"github.com/oasisfl/oasis/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x). The gradient-inversion
// attacks in this repository rely on the ReLU activation pattern of the
// malicious layer (paper §III-A, Eq. 6).
type ReLU struct {
	mask []bool
	name string
}

var _ Layer = (*ReLU)(nil)

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Forward clamps negatives to zero, recording the activation mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	if train {
		if cap(r.mask) < len(d) {
			r.mask = make([]bool, len(d))
		}
		r.mask = r.mask[:len(d)]
	}
	for i, v := range d {
		active := v > 0
		if !active {
			d[i] = 0
		}
		if train {
			r.mask[i] = active
		}
	}
	return out
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out := gradOut.Clone()
	d := out.Data()
	if len(r.mask) != len(d) {
		panic("nn: ReLU Backward without matching Forward")
	}
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Clone returns a fresh ReLU.
func (r *ReLU) Clone() Layer { return NewReLU(r.name) }

// Name returns the layer name.
func (r *ReLU) Name() string { return r.name }

// Flatten reshapes [B, ...] activations to [B, prod(...)]. It records the
// input shape so Backward can restore it.
type Flatten struct {
	inShape []int
	name    string
}

var _ Layer = (*Flatten)(nil)

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Forward flattens all trailing dimensions into one.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = x.Shape()
	}
	b := x.Dim(0)
	return x.Clone().MustReshape(b, x.Len()/b)
}

// Backward restores the original input shape.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten Backward without Forward")
	}
	return gradOut.Clone().MustReshape(f.inShape...)
}

// Params returns nil: Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// Clone returns a fresh Flatten.
func (f *Flatten) Clone() Layer { return NewFlatten(f.name) }

// Name returns the layer name.
func (f *Flatten) Name() string { return f.name }
