package nn

import (
	"fmt"
	"math"

	"github.com/oasisfl/oasis/internal/tensor"
)

// BatchNorm2D normalizes [B, C, H, W] activations per channel with learnable
// scale (gamma) and shift (beta), tracking running statistics for inference.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64
	Gamma    *Param
	Beta     *Param

	RunningMean []float64
	RunningVar  []float64

	// caches for Backward
	lastXHat *tensor.Tensor
	lastStd  []float64
	name     string
}

var _ Layer = (*BatchNorm2D)(nil)

// NewBatchNorm2D constructs a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	g := tensor.New(c)
	g.Fill(1)
	rv := make([]float64, c)
	for i := range rv {
		rv[i] = 1
	}
	return &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       &Param{Name: name + ".gamma", W: g, G: tensor.New(c)},
		Beta:        &Param{Name: name + ".beta", W: tensor.New(c), G: tensor.New(c)},
		RunningMean: make([]float64, c),
		RunningVar:  rv,
		name:        name,
	}
}

// Forward normalizes per channel. In training mode it uses batch statistics
// and updates the running estimates; in inference mode it uses the running
// estimates.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: %s expects [B,%d,H,W], got %v", bn.name, bn.C, x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	n := float64(b * h * w)
	out := tensor.New(b, bn.C, h, w)
	xd, od := x.Data(), out.Data()
	gamma, beta := bn.Gamma.W.Data(), bn.Beta.W.Data()

	if train {
		xhat := tensor.New(b, bn.C, h, w)
		xh := xhat.Data()
		stds := make([]float64, bn.C)
		for ci := 0; ci < bn.C; ci++ {
			mean, varr := bn.channelStats(xd, b, ci, h, w, n)
			std := math.Sqrt(varr + bn.Eps)
			stds[ci] = std
			bn.RunningMean[ci] = (1-bn.Momentum)*bn.RunningMean[ci] + bn.Momentum*mean
			bn.RunningVar[ci] = (1-bn.Momentum)*bn.RunningVar[ci] + bn.Momentum*varr
			for bi := 0; bi < b; bi++ {
				base := ((bi * bn.C) + ci) * h * w
				for i := 0; i < h*w; i++ {
					v := (xd[base+i] - mean) / std
					xh[base+i] = v
					od[base+i] = gamma[ci]*v + beta[ci]
				}
			}
		}
		bn.lastXHat = xhat
		bn.lastStd = stds
		return out
	}
	for ci := 0; ci < bn.C; ci++ {
		std := math.Sqrt(bn.RunningVar[ci] + bn.Eps)
		mean := bn.RunningMean[ci]
		for bi := 0; bi < b; bi++ {
			base := ((bi * bn.C) + ci) * h * w
			for i := 0; i < h*w; i++ {
				od[base+i] = gamma[ci]*(xd[base+i]-mean)/std + beta[ci]
			}
		}
	}
	return out
}

func (bn *BatchNorm2D) channelStats(xd []float64, b, ci, h, w int, n float64) (mean, varr float64) {
	s := 0.0
	for bi := 0; bi < b; bi++ {
		base := ((bi * bn.C) + ci) * h * w
		for i := 0; i < h*w; i++ {
			s += xd[base+i]
		}
	}
	mean = s / n
	v := 0.0
	for bi := 0; bi < b; bi++ {
		base := ((bi * bn.C) + ci) * h * w
		for i := 0; i < h*w; i++ {
			d := xd[base+i] - mean
			v += d * d
		}
	}
	return mean, v / n
}

// Backward implements the full batch-norm gradient (including the dependence
// of batch statistics on the input).
func (bn *BatchNorm2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if bn.lastXHat == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train)", bn.name))
	}
	b, h, w := gradOut.Dim(0), gradOut.Dim(2), gradOut.Dim(3)
	n := float64(b * h * w)
	gd := gradOut.Data()
	xh := bn.lastXHat.Data()
	gamma := bn.Gamma.W.Data()
	gGamma, gBeta := bn.Gamma.G.Data(), bn.Beta.G.Data()
	out := tensor.New(b, bn.C, h, w)
	od := out.Data()
	for ci := 0; ci < bn.C; ci++ {
		sumG, sumGX := 0.0, 0.0
		for bi := 0; bi < b; bi++ {
			base := ((bi * bn.C) + ci) * h * w
			for i := 0; i < h*w; i++ {
				g := gd[base+i]
				sumG += g
				sumGX += g * xh[base+i]
			}
		}
		gGamma[ci] += sumGX
		gBeta[ci] += sumG
		inv := gamma[ci] / (n * bn.lastStd[ci])
		for bi := 0; bi < b; bi++ {
			base := ((bi * bn.C) + ci) * h * w
			for i := 0; i < h*w; i++ {
				od[base+i] = inv * (n*gd[base+i] - sumG - xh[base+i]*sumGX)
			}
		}
	}
	return out
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Clone returns a deep copy with zeroed gradients and copied running stats.
func (bn *BatchNorm2D) Clone() Layer {
	c := NewBatchNorm2D(bn.name, bn.C)
	copy(c.Gamma.W.Data(), bn.Gamma.W.Data())
	copy(c.Beta.W.Data(), bn.Beta.W.Data())
	copy(c.RunningMean, bn.RunningMean)
	copy(c.RunningVar, bn.RunningVar)
	c.Eps, c.Momentum = bn.Eps, bn.Momentum
	return c
}

// Name returns the layer name.
func (bn *BatchNorm2D) Name() string { return bn.name }
