package nn

import (
	"math"
	"testing"

	"github.com/oasisfl/oasis/internal/tensor"
)

func TestGradSigmoid(t *testing.T) {
	rng := RandSource(20, 1)
	net := NewSequential(
		NewLinear("fc1", 4, 6, rng),
		NewSigmoid("sig"),
		NewLinear("fc2", 6, 3, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 3, 4), []int{0, 1, 2})
}

func TestGradTanh(t *testing.T) {
	rng := RandSource(21, 1)
	net := NewSequential(
		NewLinear("fc1", 4, 6, rng),
		NewTanh("tanh"),
		NewLinear("fc2", 6, 3, rng),
	)
	checkNet(t, net, SoftmaxCrossEntropy{}, randInput(rng, 3, 4), []int{2, 0, 1})
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid("s")
	x := tensor.MustFromSlice([]float64{-100, 0, 100}, 3)
	out := s.Forward(x, false)
	d := out.Data()
	if d[0] > 1e-6 || math.Abs(d[1]-0.5) > 1e-12 || d[2] < 1-1e-6 {
		t.Errorf("sigmoid values %v", d)
	}
}

func TestTanhOddSymmetry(t *testing.T) {
	th := NewTanh("t")
	x := tensor.MustFromSlice([]float64{-2, -1, 0, 1, 2}, 5)
	out := th.Forward(x, false).Data()
	if out[2] != 0 {
		t.Errorf("tanh(0) = %g", out[2])
	}
	if math.Abs(out[0]+out[4]) > 1e-12 || math.Abs(out[1]+out[3]) > 1e-12 {
		t.Errorf("tanh not odd: %v", out)
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := RandSource(22, 1)
	dr, err := NewDropout("d", 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 4, 10)
	out := dr.Forward(x, false)
	if !out.EqualApprox(x, 0) {
		t.Error("dropout altered inference output")
	}
}

func TestDropoutTrainingDropsAndScales(t *testing.T) {
	rng := RandSource(23, 1)
	dr, err := NewDropout("d", 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 10000)
	x.Fill(1)
	out := dr.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // survivor scaled by 1/(1−0.5)
			scaled++
		default:
			t.Fatalf("unexpected dropout output %g", v)
		}
	}
	if zeros < 4500 || zeros > 5500 {
		t.Errorf("dropped %d of 10000 at p=0.5", zeros)
	}
	// Inverted dropout keeps the expectation: mean ≈ 1.
	if m := out.Mean(); math.Abs(m-1) > 0.05 {
		t.Errorf("dropout mean %g, want ≈ 1", m)
	}
	if zeros+scaled != 10000 {
		t.Error("mask accounting broken")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := RandSource(24, 1)
	dr, err := NewDropout("d", 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 100)
	x.Fill(1)
	out := dr.Forward(x, true)
	g := tensor.New(1, 100)
	g.Fill(1)
	back := dr.Backward(g)
	for i := range out.Data() {
		fwdZero := out.Data()[i] == 0
		bwdZero := back.Data()[i] == 0
		if fwdZero != bwdZero {
			t.Fatal("backward mask does not match forward mask")
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	rng := RandSource(25, 1)
	if _, err := NewDropout("d", 1.0, rng); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := NewDropout("d", -0.1, rng); err == nil {
		t.Error("negative p accepted")
	}
}

func TestDropoutZeroProbIsNoop(t *testing.T) {
	rng := RandSource(26, 1)
	dr, err := NewDropout("d", 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 2, 8)
	if !dr.Forward(x, true).EqualApprox(x, 0) {
		t.Error("p=0 dropout altered training output")
	}
}

// TestDropoutGradCheckFixedMask verifies the backward pass against finite
// differences with the mask held fixed (the function is only differentiable
// per-mask).
func TestDropoutGradCheckFixedMask(t *testing.T) {
	rng := RandSource(27, 1)
	dr, err := NewDropout("d", 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 1, 12)
	out := dr.Forward(x, true) // fixes the mask
	// Loss = sum(out); analytic input gradient is the scaled mask.
	g := tensor.New(1, 12)
	g.Fill(1)
	back := dr.Backward(g)
	for i := range out.Data() {
		want := 0.0
		if out.Data()[i] != 0 {
			want = 1 / (1 - dr.P)
		}
		if math.Abs(back.Data()[i]-want) > 1e-12 {
			t.Fatalf("dropout grad[%d] = %g, want %g", i, back.Data()[i], want)
		}
	}
}
