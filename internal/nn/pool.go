package nn

import (
	"fmt"

	"github.com/oasisfl/oasis/internal/tensor"
)

// MaxPool2D applies non-overlapping k×k max pooling over [B, C, H, W].
type MaxPool2D struct {
	K int

	lastArg []int // index of the max element per output cell
	inShape []int
	name    string
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a max-pooling layer with window and stride k.
func NewMaxPool2D(name string, k int) *MaxPool2D { return &MaxPool2D{K: k, name: name} }

// Forward pools each k×k window to its maximum.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s expects [B,C,H,W], got %v", m.name, x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/m.K, w/m.K
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: %s window %d too large for input %v", m.name, m.K, x.Shape()))
	}
	out := tensor.New(b, c, oh, ow)
	xd, od := x.Data(), out.Data()
	var args []int
	if train {
		args = make([]int, out.Len())
	}
	oi := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := ((bi * c) + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := base + (oy*m.K)*w + ox*m.K
					bv := xd[best]
					for ky := 0; ky < m.K; ky++ {
						rowBase := base + (oy*m.K+ky)*w + ox*m.K
						for kx := 0; kx < m.K; kx++ {
							if xd[rowBase+kx] > bv {
								bv = xd[rowBase+kx]
								best = rowBase + kx
							}
						}
					}
					od[oi] = bv
					if train {
						args[oi] = best
					}
					oi++
				}
			}
		}
	}
	if train {
		m.lastArg = args
		m.inShape = x.Shape()
	}
	return out
}

// Backward routes each output gradient to the argmax input location.
func (m *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if m.lastArg == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train)", m.name))
	}
	out := tensor.New(m.inShape...)
	od := out.Data()
	gd := gradOut.Data()
	if len(gd) != len(m.lastArg) {
		panic(fmt.Sprintf("nn: %s Backward gradient length %d != %d", m.name, len(gd), len(m.lastArg)))
	}
	for i, a := range m.lastArg {
		od[a] += gd[i]
	}
	return out
}

// Params returns nil: pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone returns a fresh pool layer.
func (m *MaxPool2D) Clone() Layer { return NewMaxPool2D(m.name, m.K) }

// Name returns the layer name.
func (m *MaxPool2D) Name() string { return m.name }

// GlobalAvgPool reduces [B, C, H, W] to [B, C] by spatial averaging.
type GlobalAvgPool struct {
	inShape []int
	name    string
}

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Forward averages each channel over its spatial extent.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s expects [B,C,H,W], got %v", g.name, x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := tensor.New(b, c)
	xd, od := x.Data(), out.Data()
	hw := float64(h * w)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := ((bi * c) + ci) * h * w
			s := 0.0
			for i := 0; i < h*w; i++ {
				s += xd[base+i]
			}
			od[bi*c+ci] = s / hw
		}
	}
	if train {
		g.inShape = x.Shape()
	}
	return out
}

// Backward spreads each channel gradient uniformly over its spatial extent.
func (g *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if g.inShape == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train)", g.name))
	}
	b, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	out := tensor.New(b, c, h, w)
	od := out.Data()
	gd := gradOut.Data()
	hw := float64(h * w)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			v := gd[bi*c+ci] / hw
			base := ((bi * c) + ci) * h * w
			for i := 0; i < h*w; i++ {
				od[base+i] = v
			}
		}
	}
	return out
}

// Params returns nil: pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Clone returns a fresh pool layer.
func (g *GlobalAvgPool) Clone() Layer { return NewGlobalAvgPool(g.name) }

// Name returns the layer name.
func (g *GlobalAvgPool) Name() string { return g.name }
