// Package metrics provides the summary statistics the experiment harness
// reports: means, standard deviations and the five-number summaries behind
// the paper's box plots (Figures 5, 6 and 13).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Summary is a five-number summary plus mean — the contents of one box in
// the paper's box plots (the green triangle is the mean).
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	Std    float64
}

// Summarize computes the summary of values; it returns a zero Summary for an
// empty input.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	varr := 0.0
	for _, v := range s {
		d := v - mean
		varr += d * d
	}
	std := 0.0
	if len(s) > 1 {
		std = math.Sqrt(varr / float64(len(s)-1))
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		Std:    std,
	}
}

// Quantile returns the q-quantile of an ascending-sorted slice with linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary in one compact row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f±%.2f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.Std)
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Std returns the sample standard deviation of values (0 for fewer than two
// values, matching the "single replicate has no spread" reading).
func Std(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	mean := Mean(values)
	varr := 0.0
	for _, v := range values {
		d := v - mean
		varr += d * d
	}
	return math.Sqrt(varr / float64(len(values)-1))
}

// Table is a simple fixed-column text table for experiment output, printed
// in the same row/series layout as the paper's artifacts.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	colWide []int
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	t := &Table{Title: title, Header: header, colWide: make([]int, len(header))}
	for i, h := range header {
		t.colWide[i] = utf8.RuneCountInString(h)
	}
	return t
}

// AddRow appends a row, padding or truncating to the header width. Column
// widths count runes, not bytes, so multibyte cells ("—", "±") stay aligned.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
		if w := utf8.RuneCountInString(row[i]); w > t.colWide[i] {
			t.colWide[i] = w
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v for strings and %.2f for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := t.colWide[i] - utf8.RuneCountInString(c); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", t.colWide[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values: cells containing
// commas, quotes or newlines are quoted (with inner quotes doubled) so they
// round-trip through standard CSV readers.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// csvCell escapes one CSV field when it needs quoting.
func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
