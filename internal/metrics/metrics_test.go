package metrics

import (
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %g, %g", s.Q1, s.Q3)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %g", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Std != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 {
		t.Error("Summarize sorted the caller's slice")
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			// Skip pathological magnitudes whose sum overflows float64;
			// PSNR/accuracy data lives far below this.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return true
			}
		}
		s := Summarize(vals)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Errorf("median of {0,10} = %g", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Errorf("q1 = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty slice is not NaN")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean({2,4})")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("1", "2")
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

// TestTableCSVEscaping: cells holding commas, quotes, or newlines must be
// quoted so they round-trip through a standard CSV reader.
func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("demo", "name", "note")
	tb.AddRow("dirichlet:0.1, skewed", `she said "go"`)
	tb.AddRow("multi\nline", "plain")
	got := tb.CSV()
	want := "name,note\n" +
		"\"dirichlet:0.1, skewed\",\"she said \"\"go\"\"\"\n" +
		"\"multi\nline\",plain\n"
	if got != want {
		t.Fatalf("CSV escaping wrong:\n got %q\nwant %q", got, want)
	}
	// And the standard library parses it back to the original cells.
	recs, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv cannot parse our output: %v", err)
	}
	wantRecs := [][]string{
		{"name", "note"},
		{"dirichlet:0.1, skewed", `she said "go"`},
		{"multi\nline", "plain"},
	}
	if !reflect.DeepEqual(recs, wantRecs) {
		t.Errorf("round trip mismatch:\n got %q\nwant %q", recs, wantRecs)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}
