package fl

import "github.com/oasisfl/oasis/internal/obs"

// Round-engine instruments. All of them self-gate on the obs session (one
// atomic load while disabled), so the engine carries them permanently; see
// internal/obs for the determinism contract.
var (
	obsRounds         = obs.NewCounter("fl_rounds_total", "FL rounds started")
	obsEmptyRounds    = obs.NewCounter("fl_empty_rounds_total", "rounds in which every selected client failed")
	obsClientOK       = obs.NewCounter("fl_client_ok_total", "client updates merged into aggregation")
	obsClientFailed   = obs.NewCounter("fl_client_failed_total", "client round handlers that returned an error")
	obsClientDeadline = obs.NewCounter("fl_client_deadline_total", "client failures caused by the round deadline expiring")
	obsClientMS       = obs.NewHistogram("fl_client_ms", "wall-clock per client HandleRound (worker-span utilization)", obs.DefDurationBucketsMS)
	obsRoundWorkers   = obs.NewGauge("fl_round_workers", "worker-pool size of the most recent round dispatch")
)
