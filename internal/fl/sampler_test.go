package fl

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/nn"
)

// TestUniformSamplerMatchesDefault pins the compatibility guarantee: setting
// Sampler to UniformSampler must reproduce the nil-Sampler history bit for
// bit (same rng consumption, same selection order).
func TestUniformSamplerMatchesDefault(t *testing.T) {
	run := func(sampler ClientSampler) History {
		roster := buildRoster(t, 8)
		server := NewServer(ServerConfig{
			Rounds: 4, ClientsPerRound: 5, LearningRate: 0.05, Seed: 31,
		}, testModel(nil), roster)
		server.Sampler = sampler
		hist, err := server.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	if a, b := run(nil), run(UniformSampler{}); !reflect.DeepEqual(a, b) {
		t.Errorf("UniformSampler diverges from default selection:\n nil: %+v\n uni: %+v", a, b)
	}
}

func TestSizeWeightedSamplerFavorsLargeShards(t *testing.T) {
	shards := testShards(t, 8)
	roster := NewMemoryRoster()
	for i, s := range shards {
		c := NewLocalClient(fmt.Sprintf("c%d", i), s, 8, nn.RandSource(70, uint64(i)))
		if i == 0 {
			// Blow up c0's apparent size: it should be selected nearly
			// every round.
			c.Shard = &repeatDataset{inner: s, factor: 1000}
		}
		roster.Add(c)
	}
	rng := nn.RandSource(3, 4)
	clients := roster.Clients()
	hits := 0
	const rounds = 50
	for round := 0; round < rounds; round++ {
		sel := (SizeWeightedSampler{}).Sample(round, clients, 2, rng)
		if len(sel) != 2 {
			t.Fatalf("selected %d clients, want 2", len(sel))
		}
		if sel[0].ID() == sel[1].ID() {
			t.Fatal("sampled the same client twice in one round")
		}
		for _, c := range sel {
			if c.ID() == "c0" {
				hits++
			}
		}
	}
	if hits < rounds*9/10 {
		t.Errorf("heavy client selected %d/%d rounds; want nearly always", hits, rounds)
	}
}

func TestNewSamplerByName(t *testing.T) {
	for name, want := range map[string]string{"": "uniform", "uniform": "uniform", "size": "size"} {
		s, err := NewSamplerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != want {
			t.Errorf("NewSamplerByName(%q).Name() = %s, want %s", name, s.Name(), want)
		}
	}
	if _, err := NewSamplerByName("zipf"); err == nil {
		t.Error("expected error for unknown sampler")
	}
}

// repeatDataset inflates a dataset's reported length (indices wrap), to give
// one client a huge apparent shard.
type repeatDataset struct {
	inner  data.Dataset
	factor int
}

func (r *repeatDataset) Name() string           { return r.inner.Name() + "-rep" }
func (r *repeatDataset) NumClasses() int        { return r.inner.NumClasses() }
func (r *repeatDataset) Shape() (int, int, int) { return r.inner.Shape() }
func (r *repeatDataset) Len() int               { return r.inner.Len() * r.factor }
func (r *repeatDataset) Sample(i int) (*imaging.Image, int) {
	return r.inner.Sample(i % r.inner.Len())
}

// stallClient blocks until its context is cancelled — the pathological
// straggler a round deadline exists for.
type stallClient struct{ id string }

func (s *stallClient) ID() string { return s.id }
func (s *stallClient) HandleRound(ctx context.Context, req RoundRequest) (Update, error) {
	<-ctx.Done()
	return Update{}, ctx.Err()
}

// TestRoundDeadlineDegradesRound: with a deadline and TolerateFailures, a
// client that never answers is dropped from the round instead of hanging it.
func TestRoundDeadlineDegradesRound(t *testing.T) {
	roster := buildRoster(t, 4)
	roster.Add(&stallClient{id: "hung"})
	server := NewServer(ServerConfig{
		Rounds: 2, LearningRate: 0.05, Seed: 11, Workers: 4,
		TolerateFailures: true, RoundDeadline: 150 * time.Millisecond,
	}, testModel(nil), roster)
	done := make(chan error, 1)
	var hist History
	go func() {
		var err error
		hist, err = server.Run(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run with a hung client did not finish: deadline not enforced")
	}
	for _, r := range hist.Rounds {
		if len(r.Clients) != 4 {
			t.Errorf("round %d aggregated %d clients, want the 4 healthy ones", r.Round, len(r.Clients))
		}
		if len(r.Failed) != 1 || r.Failed[0] != "hung" {
			t.Errorf("round %d failed list %v, want [hung]", r.Round, r.Failed)
		}
	}
}

// TestAllowEmptyRounds: a round in which everyone fails is recorded and
// skipped, not fatal.
func TestAllowEmptyRounds(t *testing.T) {
	roster := NewMemoryRoster()
	roster.Add(&failingClient{id: "dead1"})
	roster.Add(&failingClient{id: "dead2"})
	server := NewServer(ServerConfig{
		Rounds: 3, LearningRate: 0.05, Seed: 5,
		TolerateFailures: true, AllowEmptyRounds: true,
	}, testModel(nil), roster)
	before := testModel(nil).Weights()
	hist, err := server.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 3 {
		t.Fatalf("recorded %d rounds, want 3", len(hist.Rounds))
	}
	for _, r := range hist.Rounds {
		if len(r.Clients) != 0 || len(r.Failed) != 2 {
			t.Errorf("round %d: clients %v failed %v; want all failed", r.Round, r.Clients, r.Failed)
		}
	}
	after := server.Model.Weights()
	for i := range before {
		if !before[i].EqualApprox(after[i], 0) {
			t.Fatal("empty rounds must not move the model")
		}
	}
	// Without the flag the same roster aborts the run.
	strict := NewServer(ServerConfig{
		Rounds: 3, LearningRate: 0.05, Seed: 5, TolerateFailures: true,
	}, testModel(nil), roster)
	if _, err := strict.Run(context.Background()); err == nil {
		t.Error("expected error without AllowEmptyRounds")
	}
}

// TestAfterRoundHook checks the per-round callback fires in order with the
// recorded stats.
func TestAfterRoundHook(t *testing.T) {
	roster := buildRoster(t, 4)
	server := NewServer(ServerConfig{
		Rounds: 3, LearningRate: 0.05, Seed: 9, Workers: 2,
	}, testModel(nil), roster)
	var rounds []int
	server.AfterRound = func(round int, stats RoundStats) {
		if stats.Round != round {
			t.Errorf("hook round %d got stats for round %d", round, stats.Round)
		}
		rounds = append(rounds, round)
	}
	if _, err := server.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{0, 1, 2}) {
		t.Errorf("hook fired for rounds %v, want [0 1 2]", rounds)
	}
}

// TestAfterRoundHookSerialized pins the documented contract beyond ordering:
// the hook runs strictly serialized (never two invocations in flight) with
// no round dispatched underneath it, even when the round engine itself uses
// a worker pool. The rounds slice needs no lock precisely because of that
// contract — the race detector would flag any violation.
func TestAfterRoundHookSerialized(t *testing.T) {
	roster := buildRoster(t, 6)
	server := NewServer(ServerConfig{
		Rounds: 4, ClientsPerRound: 4, LearningRate: 0.05, Seed: 17, Workers: 4,
	}, testModel(nil), roster)
	var inFlight atomic.Int32
	var rounds []int
	server.AfterRound = func(round int, stats RoundStats) {
		if n := inFlight.Add(1); n != 1 {
			t.Errorf("AfterRound invoked concurrently (%d in flight)", n)
		}
		defer inFlight.Add(-1)
		time.Sleep(2 * time.Millisecond) // widen any overlap window
		rounds = append(rounds, round)
	}
	if _, err := server.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{0, 1, 2, 3}) {
		t.Errorf("hook fired for rounds %v, want [0 1 2 3]", rounds)
	}
}

// TestAfterRoundPanicSurfacesAsError pins the recover-wrap: a panicking hook
// must fail the run with an error naming the round — not hang the worker
// barrier or crash the process — and the rounds completed before the panic
// stay in the returned History.
func TestAfterRoundPanicSurfacesAsError(t *testing.T) {
	roster := buildRoster(t, 4)
	server := NewServer(ServerConfig{
		Rounds: 3, LearningRate: 0.05, Seed: 23, Workers: 2,
	}, testModel(nil), roster)
	server.AfterRound = func(round int, stats RoundStats) {
		if round == 1 {
			panic("hook exploded")
		}
	}
	hist, err := server.Run(context.Background())
	if err == nil {
		t.Fatal("expected the hook panic to surface as a run error")
	}
	for _, want := range []string{"AfterRound hook panicked", "round 1", "hook exploded"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if len(hist.Rounds) != 2 {
		t.Errorf("History has %d rounds, want 2 (rounds 0 and 1 ran before the abort)", len(hist.Rounds))
	}
}
