package fl

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/oasisfl/oasis/internal/nn"
)

// Checkpointing serializes complete models — architecture, weights and
// normalization state — through the same ModelSpec codec the transport uses,
// wrapped in gzip. A checkpoint restores to a functionally identical
// network, so training (centralized or federated) can resume, and the Table
// I models can be inspected offline.

// checkpointMagic guards against feeding arbitrary gzip files to the
// decoder.
const checkpointMagic = "oasis-model-v1"

// checkpointFile is the on-disk layout.
type checkpointFile struct {
	Magic string
	Spec  ModelSpec
}

// SaveModel writes the model to path (directories are created). The format
// is gzip-compressed gob of the model's wire description.
func SaveModel(net *nn.Sequential, path string) error {
	spec, err := EncodeModel(net)
	if err != nil {
		return fmt.Errorf("fl: checkpoint %s: %w", path, err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("fl: checkpoint %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fl: checkpoint %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteModel(f, spec); err != nil {
		return fmt.Errorf("fl: checkpoint %s: %w", path, err)
	}
	return f.Close()
}

// LoadModel reads a checkpoint written by SaveModel.
func LoadModel(path string) (*nn.Sequential, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fl: checkpoint %s: %w", path, err)
	}
	defer f.Close()
	spec, err := ReadModel(f)
	if err != nil {
		return nil, fmt.Errorf("fl: checkpoint %s: %w", path, err)
	}
	net, err := DecodeModel(spec)
	if err != nil {
		return nil, fmt.Errorf("fl: checkpoint %s: %w", path, err)
	}
	return net, nil
}

// WriteModel streams a model spec as a gzip-compressed checkpoint.
func WriteModel(w io.Writer, spec ModelSpec) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(checkpointFile{Magic: checkpointMagic, Spec: spec}); err != nil {
		return fmt.Errorf("fl: encode checkpoint: %w", err)
	}
	return zw.Close()
}

// ReadModel parses a checkpoint stream back into a model spec.
func ReadModel(r io.Reader) (ModelSpec, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return ModelSpec{}, fmt.Errorf("fl: checkpoint is not gzip: %w", err)
	}
	defer zr.Close()
	var file checkpointFile
	if err := gob.NewDecoder(zr).Decode(&file); err != nil {
		return ModelSpec{}, fmt.Errorf("fl: decode checkpoint: %w", err)
	}
	if file.Magic != checkpointMagic {
		return ModelSpec{}, fmt.Errorf("fl: checkpoint magic %q is not %q", file.Magic, checkpointMagic)
	}
	return file.Spec, nil
}

// MarshalModel returns the checkpoint bytes for a network (convenience for
// embedding models in tests or shipping them through other channels).
func MarshalModel(net *nn.Sequential) ([]byte, error) {
	spec, err := EncodeModel(net)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, spec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalModel reverses MarshalModel.
func UnmarshalModel(raw []byte) (*nn.Sequential, error) {
	spec, err := ReadModel(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	return DecodeModel(spec)
}
