package fl

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/oasisfl/oasis/internal/nn"
)

func TestFedAvgPseudoGradientShapes(t *testing.T) {
	shards := testShards(t, 1)
	client := NewLocalClient("fa", shards[0], 8, nn.RandSource(30, 1))
	client.LocalSteps = 4
	client.LocalLR = 0.05
	model := testModel(nil)
	spec, err := EncodeModel(model)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.HandleRound(context.Background(), RoundRequest{Model: spec})
	if err != nil {
		t.Fatal(err)
	}
	params := model.Params()
	if len(u.Grads) != len(params) {
		t.Fatalf("%d pseudo-gradient tensors, want %d", len(u.Grads), len(params))
	}
	for i, g := range u.Grads {
		if !g.SameShape(params[i].W) {
			t.Errorf("pseudo-gradient %d shape %v", i, g.Shape())
		}
	}
	// The pseudo-gradient must be non-trivial: 4 local steps moved weights.
	norm := 0.0
	for _, g := range u.Grads {
		norm += g.L2Norm()
	}
	if norm == 0 {
		t.Error("pseudo-gradient is zero after local training")
	}
}

func TestFedAvgSingleStepMatchesPlainGradient(t *testing.T) {
	// With LocalSteps=1 the pseudo-gradient path is bypassed; both modes
	// must return the plain analytic gradient for the same batch stream.
	shards := testShards(t, 1)
	model := testModel(nil)
	spec, err := EncodeModel(model)
	if err != nil {
		t.Fatal(err)
	}
	a := NewLocalClient("one", shards[0], 8, nn.RandSource(31, 1))
	b := NewLocalClient("one", shards[0], 8, nn.RandSource(31, 1))
	b.LocalSteps = 1
	ua, err := a.HandleRound(context.Background(), RoundRequest{Model: spec})
	if err != nil {
		t.Fatal(err)
	}
	ub, err := b.HandleRound(context.Background(), RoundRequest{Model: spec})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ua.Grads {
		if !ua.Grads[i].EqualApprox(ub.Grads[i], 1e-12) {
			t.Fatalf("gradient %d differs between modes", i)
		}
	}
}

func TestFedAvgTrainingConverges(t *testing.T) {
	shards := testShards(t, 3)
	roster := NewMemoryRoster()
	for i, s := range shards {
		c := NewLocalClient(fmt.Sprintf("fa%d", i), s, 16, nn.RandSource(32, uint64(i)))
		c.LocalSteps = 3
		c.LocalLR = 0.05
		roster.Add(c)
	}
	server := NewServer(ServerConfig{Rounds: 12, LearningRate: 0.05, Seed: 12}, testModel(nil), roster)
	hist, err := server.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hist.FinalLoss() >= hist.Rounds[0].MeanLoss {
		t.Errorf("FedAvg loss did not decrease: %.4f → %.4f", hist.Rounds[0].MeanLoss, hist.FinalLoss())
	}
}

// flakyClient fails on even rounds.
type flakyClient struct {
	inner *LocalClient
}

func (f *flakyClient) ID() string { return f.inner.ID() }
func (f *flakyClient) HandleRound(ctx context.Context, req RoundRequest) (Update, error) {
	if req.Round%2 == 0 {
		return Update{}, errors.New("network glitch")
	}
	return f.inner.HandleRound(ctx, req)
}

func TestTolerateFailuresSkipsFlakyClients(t *testing.T) {
	shards := testShards(t, 2)
	roster := NewMemoryRoster()
	roster.Add(NewLocalClient("steady", shards[0], 8, nn.RandSource(33, 1)))
	roster.Add(&flakyClient{inner: NewLocalClient("flaky", shards[1], 8, nn.RandSource(33, 2))})
	server := NewServer(ServerConfig{Rounds: 4, LearningRate: 0.05, Seed: 13, TolerateFailures: true}, testModel(nil), roster)
	hist, err := server.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if r.Round%2 == 0 {
			if len(r.Failed) != 1 || r.Failed[0] != "flaky" {
				t.Errorf("round %d failed=%v, want [flaky]", r.Round, r.Failed)
			}
			if len(r.Clients) != 1 {
				t.Errorf("round %d aggregated %d clients, want 1", r.Round, len(r.Clients))
			}
		} else if len(r.Failed) != 0 {
			t.Errorf("round %d unexpected failures %v", r.Round, r.Failed)
		}
	}
}

func TestTolerateFailuresStillFailsWhenAllClientsFail(t *testing.T) {
	roster := NewMemoryRoster()
	roster.Add(&failingClient{id: "dead1"})
	roster.Add(&failingClient{id: "dead2"})
	server := NewServer(ServerConfig{Rounds: 1, TolerateFailures: true}, testModel(nil), roster)
	if _, err := server.Run(context.Background()); err == nil {
		t.Error("all-failed round succeeded")
	}
}

func TestWithoutToleranceFailuresAbort(t *testing.T) {
	shards := testShards(t, 1)
	roster := NewMemoryRoster()
	roster.Add(NewLocalClient("steady", shards[0], 8, nn.RandSource(34, 1)))
	roster.Add(&failingClient{id: "dead"})
	server := NewServer(ServerConfig{Rounds: 1, Seed: 1}, testModel(nil), roster)
	if _, err := server.Run(context.Background()); err == nil {
		t.Error("strict mode ignored a failing client")
	}
}
