package fl

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// The TCP transport speaks a minimal gob protocol:
//
//	client → server  hello{ClientID}
//	server → client  serverMsg{Round}    (repeated, one per selected round)
//	client → server  roundReply{Update}  (or roundReply{Err})
//	server → client  serverMsg{Goodbye}  (graceful shutdown)
//
// gob's stream framing handles message boundaries; per-exchange deadlines
// bound the damage of a stalled peer.

type wireHello struct {
	ClientID string
}

// wireServerMsg is the tagged server→client envelope: either one round
// request or a goodbye.
type wireServerMsg struct {
	Goodbye bool
	Round   RoundRequest
}

type wireRoundReply struct {
	Update Update
	Err    string
}

func init() {
	gob.Register(wireHello{})
	gob.Register(wireServerMsg{})
	gob.Register(wireRoundReply{})
}

// TCPServerOptions tune the listener-side transport.
type TCPServerOptions struct {
	// ExchangeTimeout bounds one dispatch+reply round trip per client.
	// Zero means 30 seconds.
	ExchangeTimeout time.Duration
}

// TCPServer accepts FL clients over TCP and exposes them as a Roster. Each
// accepted connection is wrapped in a remoteClient whose HandleRound
// performs one synchronous exchange.
type TCPServer struct {
	ln   net.Listener
	opts TCPServerOptions

	mu      sync.Mutex
	clients map[string]*remoteClient
	closed  bool
}

var _ Roster = (*TCPServer)(nil)

// ListenTCP starts accepting clients on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string, opts TCPServerOptions) (*TCPServer, error) {
	if opts.ExchangeTimeout == 0 {
		opts.ExchangeTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, opts: opts, clients: make(map[string]*remoteClient)}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listener address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.handshake(conn)
	}
}

func (s *TCPServer) handshake(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	_ = conn.SetReadDeadline(time.Now().Add(s.opts.ExchangeTimeout)) //oasis:allow-walltime handshake deadline against a remote peer is real time
	var hello wireHello
	if err := dec.Decode(&hello); err != nil || hello.ClientID == "" {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	rc := &remoteClient{
		id: hello.ClientID, conn: conn, enc: enc, dec: dec,
		timeout: s.opts.ExchangeTimeout,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old, ok := s.clients[hello.ClientID]; ok {
		_ = old.conn.Close() // replace a stale registration
	}
	s.clients[hello.ClientID] = rc
	s.mu.Unlock()
}

// Clients returns the currently registered remote clients, sorted by
// client ID. The roster feeds Server.selectRound's sampler, so its order
// must be a function of the population, not of map iteration or of the
// order in which connections happened to arrive — otherwise the same
// sampler rng draws would select different clients on every run.
func (s *TCPServer) Clients() []Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Client, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.clients[id])
	}
	return out
}

// WaitForClients blocks until at least n clients are connected or ctx ends.
func (s *TCPServer) WaitForClients(ctx context.Context, n int) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		have := len(s.clients)
		s.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fl: waiting for %d clients (have %d): %w", n, have, ctx.Err())
		case <-tick.C:
		}
	}
}

// Close sends goodbyes and tears down all connections and the listener.
// Each goodbye is serialized against any in-flight HandleRound on the same
// connection: gob encoders are not safe for concurrent Encode calls, and
// with a concurrent round engine a worker may still be mid-exchange.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ids := make([]string, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	clients := make([]*remoteClient, 0, len(ids))
	for _, id := range ids {
		clients = append(clients, s.clients[id])
	}
	s.clients = map[string]*remoteClient{}
	s.mu.Unlock()
	for _, c := range clients {
		c.mu.Lock()
		_ = c.enc.Encode(wireServerMsg{Goodbye: true})
		c.mu.Unlock()
		_ = c.conn.Close()
	}
	return s.ln.Close()
}

// remoteClient is the server-side proxy for one TCP client. mu serializes
// every use of the connection's gob encoder/decoder pair — HandleRound
// exchanges and the Close-time goodbye — so a remoteClient satisfies the
// Client concurrency contract even though the worker pool dispatches
// different remote clients from different goroutines.
type remoteClient struct {
	id      string
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
	mu      sync.Mutex
}

var _ Client = (*remoteClient)(nil)

// ID returns the client's self-reported identifier.
func (c *remoteClient) ID() string { return c.id }

// HandleRound performs one synchronous dispatch/reply exchange. Context
// cancellation is honored mid-exchange by forcing an immediate connection
// deadline; the interrupted gob stream is unusable afterwards, which is
// fine — cancellation means the run (or at least this round) is over, and
// a reconnecting client re-registers through the normal handshake.
//
//oasis:allow-walltime exchange deadlines against a remote peer are real-time by design
func (c *remoteClient) HandleRound(ctx context.Context, req RoundRequest) (Update, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return Update{}, fmt.Errorf("fl: dispatch to %s: %w", c.id, err)
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = c.conn.SetDeadline(deadline)
	defer c.conn.SetDeadline(time.Time{})
	stop := context.AfterFunc(ctx, func() { _ = c.conn.SetDeadline(time.Now()) })
	defer stop()
	if err := c.enc.Encode(wireServerMsg{Round: req}); err != nil {
		return Update{}, fmt.Errorf("fl: dispatch to %s: %w", c.id, err)
	}
	var reply wireRoundReply
	if err := c.dec.Decode(&reply); err != nil {
		return Update{}, fmt.Errorf("fl: reply from %s: %w", c.id, err)
	}
	if reply.Err != "" {
		return Update{}, fmt.Errorf("fl: client %s: %s", c.id, reply.Err)
	}
	return reply.Update, nil
}

// ServeTCP connects a local client to an FL server at addr and processes
// round requests until the server says goodbye, the connection drops, or ctx
// is cancelled. It returns nil on graceful shutdown.
func ServeTCP(ctx context.Context, addr string, client Client) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("fl: dial %s: %w", addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(wireHello{ClientID: client.ID()}); err != nil {
		return fmt.Errorf("fl: hello: %w", err)
	}
	// Unblock the read loop when ctx is cancelled.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	for {
		var msg wireServerMsg
		if err := dec.Decode(&msg); err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("fl: receive: %w", err)
		}
		if msg.Goodbye {
			return nil
		}
		update, err := client.HandleRound(ctx, msg.Round)
		reply := wireRoundReply{Update: update}
		if err != nil {
			reply = wireRoundReply{Err: err.Error()}
		}
		if err := enc.Encode(reply); err != nil {
			return fmt.Errorf("fl: reply: %w", err)
		}
	}
}
