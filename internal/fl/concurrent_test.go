package fl

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/oasisfl/oasis/internal/nn"
)

// buildRoster assembles n in-memory LocalClients over disjoint shards with
// per-client RNGs, exactly as a simulation would.
func buildRoster(t *testing.T, n int) *MemoryRoster {
	t.Helper()
	shards := testShards(t, n)
	roster := NewMemoryRoster()
	for i, s := range shards {
		roster.Add(NewLocalClient(fmt.Sprintf("c%d", i), s, 8, nn.RandSource(50, uint64(i))))
	}
	return roster
}

// runWithWorkers executes a fixed-seed run at the given worker count.
func runWithWorkers(t *testing.T, workers int, agg Aggregator) History {
	t.Helper()
	roster := buildRoster(t, 8)
	server := NewServer(ServerConfig{
		Rounds: 5, ClientsPerRound: 5, LearningRate: 0.05, Seed: 99, Workers: workers,
	}, testModel(nil), roster)
	server.Aggregator = agg
	hist, err := server.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return hist
}

// TestConcurrentHistoryDeterminism is the engine's core guarantee: the
// worker count only changes wall-clock time, never the trace. Histories
// must match bit for bit — client order, losses, gradient norms.
func TestConcurrentHistoryDeterminism(t *testing.T) {
	for _, aggName := range []string{"mean", "median", "trimmed:0.2", "normclip:5"} {
		t.Run(aggName, func(t *testing.T) {
			mk := func() Aggregator {
				a, err := NewAggregatorByName(aggName)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			seq := runWithWorkers(t, 1, mk())
			con := runWithWorkers(t, 8, mk())
			if !reflect.DeepEqual(seq, con) {
				t.Errorf("Workers=1 and Workers=8 histories diverge:\n seq: %+v\n con: %+v", seq, con)
			}
		})
	}
}

// TestConcurrentModelDeterminism checks the trained weights themselves, not
// just the recorded history.
func TestConcurrentModelDeterminism(t *testing.T) {
	train := func(workers int) *nn.Sequential {
		roster := buildRoster(t, 8)
		model := testModel(nil)
		server := NewServer(ServerConfig{
			Rounds: 4, LearningRate: 0.05, Seed: 7, Workers: workers,
		}, model, roster)
		if _, err := server.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return model
	}
	a, b := train(1), train(8)
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if !wa[i].EqualApprox(wb[i], 0) {
			t.Fatalf("weight tensor %d differs between Workers=1 and Workers=8", i)
		}
	}
}

// slowClient delays before delegating, forcing real worker overlap.
type slowClient struct {
	inner Client
	delay time.Duration
}

func (s *slowClient) ID() string { return s.inner.ID() }
func (s *slowClient) HandleRound(ctx context.Context, req RoundRequest) (Update, error) {
	time.Sleep(s.delay)
	return s.inner.HandleRound(ctx, req)
}

// TestConcurrentDispatchWithFailures exercises the worker pool under -race:
// 8 healthy clients plus one that always fails, a shared observer, a shared
// (stateless) modifier path, and TolerateFailures accounting.
func TestConcurrentDispatchWithFailures(t *testing.T) {
	shards := testShards(t, 8)
	roster := NewMemoryRoster()
	for i, s := range shards {
		c := NewLocalClient(fmt.Sprintf("c%d", i), s, 8, nn.RandSource(60, uint64(i)))
		roster.Add(&slowClient{inner: c, delay: time.Millisecond})
	}
	roster.Add(&failingClient{id: "dead"})

	obs := &recordingObserver{}
	server := NewServer(ServerConfig{
		Rounds: 3, LearningRate: 0.05, Seed: 21, Workers: 8, TolerateFailures: true,
	}, testModel(nil), roster)
	server.Observer = obs
	hist, err := server.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if len(r.Failed) != 1 || r.Failed[0] != "dead" {
			t.Errorf("round %d failed=%v, want [dead]", r.Round, r.Failed)
		}
		if len(r.Clients) != 8 {
			t.Errorf("round %d aggregated %d clients, want 8", r.Round, len(r.Clients))
		}
	}
	if len(obs.updates) != 24 {
		t.Errorf("observer saw %d updates, want 24", len(obs.updates))
	}
	// Observer order must equal the per-round aggregation order.
	for i, u := range obs.updates {
		if u.ClientID != hist.Rounds[i/8].Clients[i%8] {
			t.Fatalf("observer update %d is %s, history says %s", i, u.ClientID, hist.Rounds[i/8].Clients[i%8])
		}
	}
}

// TestConcurrentStrictModeFailsDeterministically: without failure tolerance
// the round aborts with the earliest-selected failing client's error, no
// matter which worker finished first.
func TestConcurrentStrictModeFailsDeterministically(t *testing.T) {
	roster := buildRoster(t, 6)
	roster.Add(&failingClient{id: "dead"})
	errs := make(map[string]bool)
	for _, workers := range []int{1, 4, 8} {
		server := NewServer(ServerConfig{Rounds: 2, Seed: 33, Workers: workers}, testModel(nil), roster)
		_, err := server.Run(context.Background())
		if err == nil {
			t.Fatalf("Workers=%d: strict mode ignored a failing client", workers)
		}
		errs[err.Error()] = true
	}
	if len(errs) != 1 {
		t.Errorf("strict-mode error differs across worker counts: %v", errs)
	}
}

// TestConcurrentTCPRounds drives the worker pool over the real TCP
// transport under -race: concurrent exchanges on distinct connections plus
// a Close racing nothing (after the run) must be clean.
func TestConcurrentTCPRounds(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", TCPServerOptions{ExchangeTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop := startTCPClients(t, srv.Addr(), 8)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.WaitForClients(ctx, 8); err != nil {
		t.Fatal(err)
	}
	server := NewServer(ServerConfig{Rounds: 3, LearningRate: 0.05, Seed: 17, Workers: 8}, testModel(nil), srv)
	hist, err := server.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if len(r.Clients) != 8 {
			t.Errorf("round %d aggregated %d clients, want 8", r.Round, len(r.Clients))
		}
	}
}

// TestWorkersDefault ensures the zero value resolves to a concurrent pool
// without disturbing determinism (NumCPU may be anything on CI).
func TestWorkersDefault(t *testing.T) {
	def := runWithWorkers(t, 0, nil)
	one := runWithWorkers(t, 1, nil)
	if !reflect.DeepEqual(def, one) {
		t.Error("Workers=0 (NumCPU) history differs from Workers=1")
	}
}

// TestMemoryRosterConcurrentAccess hammers Add and Clients from many
// goroutines (the TCP accept loop registers mid-round in real deployments).
func TestMemoryRosterConcurrentAccess(t *testing.T) {
	roster := NewMemoryRoster()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			roster.Add(&failingClient{id: fmt.Sprintf("g%d", i)})
			_ = roster.Clients()
		}(i)
	}
	wg.Wait()
	if n := len(roster.Clients()); n != 16 {
		t.Errorf("roster has %d clients, want 16", n)
	}
}
