package fl

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/oasisfl/oasis/internal/tensor"
)

// mkUpdate builds a single-tensor update with the given values.
func mkUpdate(id string, vals ...float64) Update {
	t := tensor.New(len(vals))
	copy(t.Data(), vals)
	return Update{ClientID: id, Grads: []*tensor.Tensor{t}}
}

func finalizeOne(t *testing.T, a Aggregator, updates ...Update) []float64 {
	t.Helper()
	a.Reset()
	for _, u := range updates {
		if err := a.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	out, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("finalize returned %d tensors, want 1", len(out))
	}
	return out[0].Data()
}

func TestFedAvgMeanAverages(t *testing.T) {
	got := finalizeOne(t, NewFedAvgMean(),
		mkUpdate("a", 1, 2), mkUpdate("b", 3, 4), mkUpdate("c", 5, 6))
	want := []float64{3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mean[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestCoordinateMedianResistsOutlier(t *testing.T) {
	got := finalizeOne(t, NewCoordinateMedian(),
		mkUpdate("a", 1, 1), mkUpdate("b", 2, 2), mkUpdate("poison", 1e9, -1e9))
	for i, v := range got {
		if v != []float64{2, 1}[i] {
			t.Errorf("median[%d] = %g", i, v)
		}
	}
	// Even count: median of {1,2,3,4} per coordinate.
	got = finalizeOne(t, NewCoordinateMedian(),
		mkUpdate("a", 1), mkUpdate("b", 2), mkUpdate("c", 3), mkUpdate("d", 4))
	if got[0] != 2.5 {
		t.Errorf("even-count median = %g, want 2.5", got[0])
	}
}

func TestTrimmedMeanDropsTails(t *testing.T) {
	agg, err := NewTrimmedMean(0.25)
	if err != nil {
		t.Fatal(err)
	}
	// n=4, k=1: drop min and max, average the middle two.
	got := finalizeOne(t, agg,
		mkUpdate("a", 0), mkUpdate("b", 2), mkUpdate("c", 4), mkUpdate("poison", 1e9))
	if got[0] != 3 {
		t.Errorf("trimmed mean = %g, want 3", got[0])
	}
	if _, err := NewTrimmedMean(0.5); err == nil {
		t.Error("frac 0.5 accepted")
	}
	// Frac=0.3 with n=10 must trim exactly 3 per tail even though
	// 0.3*10 float-truncates to 2: all three colluding outliers per tail
	// must be discarded.
	agg03, err := NewTrimmedMean(0.3)
	if err != nil {
		t.Fatal(err)
	}
	updates := make([]Update, 0, 10)
	for i, v := range []float64{0, 0, 0, 1, 1, 1, 1, 100, 100, 100} {
		updates = append(updates, mkUpdate(fmt.Sprintf("u%d", i), v))
	}
	if got := finalizeOne(t, agg03, updates...); got[0] != 1 {
		t.Errorf("trimmed(0.3) over 10 updates = %g, want 1 (outlier survived the trim)", got[0])
	}
	if _, err := NewTrimmedMean(-0.1); err == nil {
		t.Error("negative frac accepted")
	}
}

func TestNormClippedBoundsOutlierInfluence(t *testing.T) {
	agg, err := NewNormClipped(1)
	if err != nil {
		t.Fatal(err)
	}
	// The honest update (norm 0.5) passes untouched; the poisoned one
	// (norm 1000) is scaled down to norm 1.
	got := finalizeOne(t, agg, mkUpdate("a", 0.5), mkUpdate("poison", 1000))
	if want := (0.5 + 1.0) / 2; math.Abs(got[0]-want) > 1e-12 {
		t.Errorf("clipped mean = %g, want %g", got[0], want)
	}
	if _, err := NewNormClipped(0); err == nil {
		t.Error("zero clip accepted")
	}
}

func TestNormClippedDoesNotMutateUpdate(t *testing.T) {
	agg, err := NewNormClipped(1)
	if err != nil {
		t.Fatal(err)
	}
	agg.Reset()
	u := mkUpdate("big", 3, 4) // norm 5 > 1
	if err := agg.Add(u); err != nil {
		t.Fatal(err)
	}
	if u.Grads[0].Data()[0] != 3 || u.Grads[0].Data()[1] != 4 {
		t.Errorf("Add mutated the caller's gradients: %v", u.Grads[0].Data())
	}
}

func TestAggregatorShapeMismatch(t *testing.T) {
	for _, a := range []Aggregator{NewFedAvgMean(), NewCoordinateMedian()} {
		a.Reset()
		if err := a.Add(mkUpdate("a", 1, 2)); err != nil {
			t.Fatal(err)
		}
		if err := a.Add(mkUpdate("b", 1, 2, 3)); err == nil {
			t.Errorf("%s accepted a mismatched update", a.Name())
		}
	}
}

func TestAggregatorFinalizeEmpty(t *testing.T) {
	for _, a := range []Aggregator{NewFedAvgMean(), NewCoordinateMedian()} {
		a.Reset()
		if _, err := a.Finalize(); err == nil {
			t.Errorf("%s finalized empty without error", a.Name())
		}
	}
}

func TestAggregatorResetClearsState(t *testing.T) {
	a := NewFedAvgMean()
	finalizeOne(t, a, mkUpdate("a", 10))
	got := finalizeOne(t, a, mkUpdate("b", 2), mkUpdate("c", 4))
	if got[0] != 3 {
		t.Errorf("post-Reset mean = %g, want 3 (state leaked across rounds)", got[0])
	}
}

func TestNewAggregatorByName(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"mean", "mean"},
		{"fedavg", "mean"},
		{"median", "median"},
		{"trimmed", "trimmed(0.1)"},
		{"trimmed:0.25", "trimmed(0.25)"},
		{"normclip", "normclip(10)"},
		{"normclip:5", "normclip(5)"},
	}
	for _, c := range cases {
		a, err := NewAggregatorByName(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if a.Name() != c.want {
			t.Errorf("%s resolved to %s, want %s", c.spec, a.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "krum", "trimmed:x", "mean:1", "normclip:-3"} {
		if _, err := NewAggregatorByName(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if names := AggregatorNames(); len(names) < 4 || strings.Join(names, ",") != "mean,median,trimmed,normclip" {
		t.Errorf("AggregatorNames() = %v", names)
	}
}
