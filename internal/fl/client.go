package fl

import (
	"context"
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// RoundRequest is the server→client message for one FL round.
type RoundRequest struct {
	Round int
	Model ModelSpec
}

// Update is the client→server payload: the local gradients of every model
// parameter in layer order, plus bookkeeping.
type Update struct {
	ClientID  string
	Round     int
	Grads     []*tensor.Tensor
	Loss      float64
	BatchSize int
}

// BatchPreprocessor transforms a client's local batch before gradients are
// computed. The OASIS defense (internal/core.Defense) implements this.
// Implementations shared across clients must be goroutine-safe when the
// server runs with Workers > 1; core.Defense is pure — and therefore
// shareable — only when its augmentation policy is deterministic (the
// standard MR/mR/SH/flip policies are; augment.Randomized is not).
type BatchPreprocessor interface {
	Apply(b *data.Batch) (*data.Batch, error)
	Name() string
}

// GradientDefense post-processes gradients before upload (DPSGD, pruning).
// It mirrors internal/defense.GradientDefense without importing it, keeping
// the protocol layer free of defense policy. Stateful implementations
// (DPSGD mutates its RNG) must not be shared across clients when the server
// runs with Workers > 1; give each client its own instance.
type GradientDefense interface {
	Apply(grads []*tensor.Tensor)
	Name() string
}

// Client executes local training rounds.
//
// Concurrency contract: the server never calls HandleRound concurrently on
// the SAME Client — each client handles at most one in-flight round request.
// But when ServerConfig.Workers > 1 DIFFERENT clients run concurrently, so
// any state shared between client instances (a common *rand.Rand, a stateful
// GradientDefense such as DPSGD, a shared network connection) must either be
// synchronized or duplicated per client. State owned exclusively by one
// client needs no locking. An OASIS Defense (internal/core) over a
// deterministic policy is pure and safe to share; one built with
// core.RandomizedDefense draws from its policy's *rand.Rand on every Apply
// and must be per-client. Datasets are read-only and safe to share.
type Client interface {
	ID() string
	HandleRound(ctx context.Context, req RoundRequest) (Update, error)
}

// LocalClient is the standard client: it owns a data shard, samples one
// batch per round, optionally applies OASIS and/or a gradient defense, and
// returns the gradients an honest participant would upload.
//
// Setting LocalSteps > 1 switches the client to FedAvg-style local training:
// it runs that many SGD steps (learning rate LocalLR, fresh defended batch
// per step) and uploads the pseudo-gradient (w₀ − w_k)/LocalLR, which the
// server aggregates exactly like a plain gradient. The reconstruction
// attacks still apply — the first local step's gradient dominates the
// malicious layer's pseudo-gradient — so OASIS matters in this mode too.
//
// A LocalClient satisfies the Client concurrency contract as long as Rng,
// GradDef, and any randomized Pre policy are not shared with other clients:
// Shard is only read, and a deterministic-policy OASIS defense is pure.
type LocalClient struct {
	Name      string
	Shard     data.Dataset
	BatchSize int
	Pre       BatchPreprocessor
	GradDef   GradientDefense
	Loss      nn.Loss
	Rng       *rand.Rand

	LocalSteps int     // ≤ 1 means single-gradient FedSGD (the paper's setting)
	LocalLR    float64 // learning rate for local steps; 0 means 0.01
}

var _ Client = (*LocalClient)(nil)

// NewLocalClient constructs a client over a data shard.
func NewLocalClient(name string, shard data.Dataset, batchSize int, rng *rand.Rand) *LocalClient {
	return &LocalClient{
		Name:      name,
		Shard:     shard,
		BatchSize: batchSize,
		Loss:      nn.SoftmaxCrossEntropy{},
		Rng:       rng,
	}
}

// ID returns the client identifier.
func (c *LocalClient) ID() string { return c.Name }

// NumSamples reports the local shard size (SizedClient, for size-weighted
// client sampling).
func (c *LocalClient) NumSamples() int { return c.Shard.Len() }

// HandleRound materializes the dispatched model, computes gradients (or a
// FedAvg pseudo-gradient) on fresh local batches and returns the update.
func (c *LocalClient) HandleRound(ctx context.Context, req RoundRequest) (Update, error) {
	if err := ctx.Err(); err != nil {
		return Update{}, fmt.Errorf("fl: client %s round %d: %w", c.Name, req.Round, err)
	}
	net, err := DecodeModel(req.Model)
	if err != nil {
		return Update{}, fmt.Errorf("fl: client %s: %w", c.Name, err)
	}
	steps := c.LocalSteps
	if steps < 1 {
		steps = 1
	}
	var initial []*tensor.Tensor
	lr := c.LocalLR
	if steps > 1 {
		if lr == 0 {
			lr = 0.01
		}
		initial = net.Weights()
	}

	var grads []*tensor.Tensor
	lossSum := 0.0
	lastBatch := 0
	for step := 0; step < steps; step++ {
		loss, batchSize, err := c.localStep(net, req.Model.InputKind)
		if err != nil {
			return Update{}, err
		}
		lossSum += loss
		lastBatch = batchSize
		if steps > 1 {
			// Apply the local SGD step; the pseudo-gradient is formed
			// from the cumulative weight displacement below.
			for _, p := range net.Params() {
				p.W.AddScaledInPlace(-lr, p.G)
			}
		}
	}
	if steps > 1 {
		final := net.Weights()
		grads = make([]*tensor.Tensor, len(final))
		for i := range final {
			grads[i] = initial[i].Sub(final[i]).ScaleInPlace(1 / lr)
			// The weight snapshots are round-local scratch; hand them back
			// to the tensor arena now that the pseudo-gradient is formed.
			initial[i].Release()
			final[i].Release()
		}
	} else {
		grads = net.Gradients()
	}
	// The decoded model is round-local: its parameters were cloned out of the
	// spec and the upload gradients cloned out of it, so its buffers can feed
	// the next cohort member instead of the collector.
	for _, p := range net.Params() {
		p.W.Release()
		p.G.Release()
	}
	if c.GradDef != nil {
		c.GradDef.Apply(grads)
	}
	return Update{
		ClientID:  c.Name,
		Round:     req.Round,
		Grads:     grads,
		Loss:      lossSum / float64(steps),
		BatchSize: lastBatch,
	}, nil
}

// localStep draws one defended batch and runs forward/backward, leaving the
// gradients accumulated on the network parameters.
func (c *LocalClient) localStep(net *nn.Sequential, inputKind string) (loss float64, batchSize int, err error) {
	batch, err := data.RandomBatch(c.Shard, c.Rng, min(c.BatchSize, c.Shard.Len()))
	if err != nil {
		return 0, 0, fmt.Errorf("fl: client %s: %w", c.Name, err)
	}
	if c.Pre != nil {
		batch, err = c.Pre.Apply(batch)
		if err != nil {
			return 0, 0, fmt.Errorf("fl: client %s defense: %w", c.Name, err)
		}
	}
	var x *tensor.Tensor
	switch inputKind {
	case "flat":
		x = batch.Flatten()
	case "image", "":
		x = batch.Tensor4D()
	default:
		return 0, 0, fmt.Errorf("fl: client %s: unknown input kind %q", c.Name, inputKind)
	}
	net.ZeroGrad()
	logits := net.Forward(x, true)
	loss, g := c.Loss.Compute(logits, batch.Labels)
	net.Backward(g)
	return loss, batch.Size(), nil
}
