package fl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

func testShards(t *testing.T, n int) []data.Dataset {
	t.Helper()
	ds := data.NewSynthCustom("fltest", 4, 1, 8, 8, 64*n, 7)
	rng := nn.RandSource(7, 7)
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 64
	}
	parts, err := data.Split(ds.Len(), rng, sizes...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]data.Dataset, n)
	for i, idx := range parts {
		out[i] = data.NewSubset(ds, idx, fmt.Sprintf("shard-%d", i))
	}
	return out
}

func testModel(rng interface {
	NormFloat64() float64
	IntN(int) int
}) *nn.Sequential {
	_ = rng
	r := nn.RandSource(11, 11)
	return nn.NewSequential(
		nn.NewLinear("fc1", 64, 16, r),
		nn.NewReLU("relu"),
		nn.NewLinear("fc2", 16, 4, r),
	)
}

func TestHonestTrainingReducesLoss(t *testing.T) {
	shards := testShards(t, 3)
	roster := NewMemoryRoster()
	for i, s := range shards {
		roster.Add(NewLocalClient(fmt.Sprintf("c%d", i), s, 16, nn.RandSource(1, uint64(i))))
	}
	server := NewServer(ServerConfig{Rounds: 25, LearningRate: 0.05, Seed: 3}, testModel(nil), roster)
	hist, err := server.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 25 {
		t.Fatalf("%d rounds recorded", len(hist.Rounds))
	}
	first := hist.Rounds[0].MeanLoss
	last := hist.FinalLoss()
	if last >= first {
		t.Errorf("loss did not decrease: %.4f → %.4f", first, last)
	}
}

func TestClientSampling(t *testing.T) {
	shards := testShards(t, 4)
	roster := NewMemoryRoster()
	for i, s := range shards {
		roster.Add(NewLocalClient(fmt.Sprintf("c%d", i), s, 8, nn.RandSource(2, uint64(i))))
	}
	server := NewServer(ServerConfig{Rounds: 6, ClientsPerRound: 2, LearningRate: 0.05, Seed: 5}, testModel(nil), roster)
	hist, err := server.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	participants := map[string]bool{}
	for _, r := range hist.Rounds {
		if len(r.Clients) != 2 {
			t.Fatalf("round %d selected %d clients, want 2", r.Round, len(r.Clients))
		}
		for _, c := range r.Clients {
			participants[c] = true
		}
	}
	if len(participants) < 3 {
		t.Errorf("only %d distinct clients ever selected across 6 rounds", len(participants))
	}
}

func TestServerNoClients(t *testing.T) {
	server := NewServer(ServerConfig{Rounds: 1}, testModel(nil), NewMemoryRoster())
	if _, err := server.Run(context.Background()); err == nil {
		t.Error("run with empty roster succeeded")
	}
}

// failingClient returns an error on every round.
type failingClient struct{ id string }

func (f *failingClient) ID() string { return f.id }
func (f *failingClient) HandleRound(context.Context, RoundRequest) (Update, error) {
	return Update{}, errors.New("shard corrupted")
}

func TestServerPropagatesClientError(t *testing.T) {
	roster := NewMemoryRoster()
	roster.Add(&failingClient{id: "bad"})
	server := NewServer(ServerConfig{Rounds: 1}, testModel(nil), roster)
	_, err := server.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "shard corrupted") {
		t.Errorf("err = %v", err)
	}
}

// recordingModifier rewrites the model and counts invocations.
type recordingModifier struct {
	calls int
	spec  ModelSpec
}

func (m *recordingModifier) Modify(round int, _ ModelSpec) (ModelSpec, error) {
	m.calls++
	return m.spec, nil
}
func (m *recordingModifier) Name() string { return "recording" }

// recordingObserver collects updates.
type recordingObserver struct {
	mu      sync.Mutex
	updates []Update
}

func (o *recordingObserver) Observe(_ int, u Update) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.updates = append(o.updates, u)
}

func TestDishonestModifierSwapsModelAndSkipsAggregation(t *testing.T) {
	shards := testShards(t, 2)
	roster := NewMemoryRoster()
	for i, s := range shards {
		roster.Add(NewLocalClient(fmt.Sprintf("c%d", i), s, 8, nn.RandSource(3, uint64(i))))
	}
	global := testModel(nil)
	before := global.Weights()

	rng := nn.RandSource(13, 13)
	malicious := nn.NewSequential(
		nn.NewLinear("malicious", 64, 32, rng),
		nn.NewReLU("r"),
		nn.NewLinear("head", 32, 4, rng),
	)
	malSpec, err := EncodeModel(malicious)
	if err != nil {
		t.Fatal(err)
	}
	mod := &recordingModifier{spec: malSpec}
	obs := &recordingObserver{}
	server := NewServer(ServerConfig{Rounds: 2, LearningRate: 0.5, Seed: 1}, global, roster)
	server.Modifier = mod
	server.Observer = obs
	if _, err := server.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if mod.calls != 2 {
		t.Errorf("modifier called %d times, want 2", mod.calls)
	}
	if len(obs.updates) != 4 {
		t.Errorf("observer saw %d updates, want 4", len(obs.updates))
	}
	// The malicious architecture (32-neuron layer) reached the clients.
	for _, u := range obs.updates {
		if u.Grads[0].Dim(0) != 32 {
			t.Errorf("update gradient shape %v — malicious model not dispatched", u.Grads[0].Shape())
		}
	}
	// The global model cannot absorb mismatched updates: weights unchanged.
	after := global.Weights()
	for i := range before {
		if !before[i].EqualApprox(after[i], 0) {
			t.Error("global weights changed despite architecture mismatch")
		}
	}
}

func TestLocalClientAppliesGradientDefense(t *testing.T) {
	shards := testShards(t, 1)
	client := NewLocalClient("c0", shards[0], 8, nn.RandSource(4, 4))
	client.GradDef = zeroingDefense{}
	spec, err := EncodeModel(testModel(nil))
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.HandleRound(context.Background(), RoundRequest{Round: 0, Model: spec})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range u.Grads {
		if g.L2Norm() != 0 {
			t.Fatal("gradient defense was not applied")
		}
	}
}

type zeroingDefense struct{}

func (zeroingDefense) Apply(grads []*tensor.Tensor) {
	for _, g := range grads {
		g.Zero()
	}
}
func (zeroingDefense) Name() string { return "zeroing" }

func TestLocalClientHonoursContext(t *testing.T) {
	shards := testShards(t, 1)
	client := NewLocalClient("c0", shards[0], 8, nn.RandSource(5, 5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, err := EncodeModel(testModel(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleRound(ctx, RoundRequest{Model: spec}); err == nil {
		t.Error("cancelled context not honoured")
	}
}

func TestUpdatePayloadShapes(t *testing.T) {
	shards := testShards(t, 1)
	client := NewLocalClient("c0", shards[0], 8, nn.RandSource(6, 6))
	model := testModel(nil)
	spec, err := EncodeModel(model)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.HandleRound(context.Background(), RoundRequest{Round: 3, Model: spec})
	if err != nil {
		t.Fatal(err)
	}
	if u.Round != 3 || u.ClientID != "c0" || u.BatchSize != 8 {
		t.Errorf("update metadata = %+v", u)
	}
	params := model.Params()
	if len(u.Grads) != len(params) {
		t.Fatalf("%d gradient tensors, want %d", len(u.Grads), len(params))
	}
	for i, g := range u.Grads {
		if !g.SameShape(params[i].W) {
			t.Errorf("gradient %d shape %v != param %v", i, g.Shape(), params[i].W.Shape())
		}
	}
}
