package fl

// VirtualRoster describes an FL population without materializing it: the
// server samples client *indices* over [0, NumClients()) and only the
// round's cohort is ever instantiated. This is the cross-device regime the
// OASIS paper assumes — millions of enrolled devices, a few hundred sampled
// per round — which an eager Roster cannot represent without O(population)
// memory.
//
// Lifecycle per round, all on the server goroutine:
//
//	indices := sampler.SampleIndices(round, NumClients(), m, NumSamples, rng)
//	cohort  := Lease(round, indices)     // instantiate, in index order
//	...dispatch / observe / aggregate / apply step...
//	Release(round, cohort)               // after the step; buffers may be recycled
//
// Lease must return one Client per index, in the given order — the server
// preserves that order for dispatch, observation, and aggregation, which is
// what keeps a virtual run byte-identical to a materialized one. Release is
// the bookend: implementations return pooled buffers there, or keep
// clients resident when cross-round state (training rng position, stateful
// defenses) must survive — the contract only requires that a later Lease of
// the same index observes the state a materialized client would have.
type VirtualRoster interface {
	// NumClients returns the virtual population size.
	NumClients() int
	// NumSamples reports client i's local dataset size for size-weighted
	// sampling (0 means "weigh as one sample"). Must not instantiate the
	// client.
	NumSamples(i int) int
	// Lease instantiates the cohort for the given round, one Client per
	// index, in index-argument order.
	Lease(round int, indices []int) ([]Client, error)
	// Release ends the cohort's round. The server calls it exactly once per
	// successful Lease, after the aggregated step has been applied.
	Release(round int, clients []Client)
}
