package fl

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"github.com/oasisfl/oasis/internal/nn"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	rng := nn.RandSource(60, 1)
	net := nn.NewResNetLite(nn.ResNetLiteConfig{InChannels: 3, NumClasses: 5, Width: 4}, rng)
	// Move batch-norm state off defaults so the checkpoint carries it.
	net.Forward(randInput(rng, 2, 3, 8, 8), true)

	path := filepath.Join(t.TempDir(), "ckpt", "model.gob.gz")
	if err := SaveModel(net, path); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	x := randInput(rng, 2, 3, 8, 8)
	if !net.Forward(x, false).EqualApprox(back.Forward(x, false), 1e-12) {
		t.Error("restored model differs from saved one")
	}
}

func TestCheckpointResumesTraining(t *testing.T) {
	// Save → load → keep training: gradients must flow through the
	// restored network identically.
	rng := nn.RandSource(61, 1)
	net := nn.NewSequential(
		nn.NewLinear("fc1", 8, 12, rng),
		nn.NewReLU("r"),
		nn.NewLinear("fc2", 12, 3, rng),
	)
	raw, err := MarshalModel(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(raw)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 4, 8)
	labels := []int{0, 1, 2, 0}
	run := func(m *nn.Sequential) float64 {
		m.ZeroGrad()
		out := m.Forward(x, true)
		loss, g := nn.SoftmaxCrossEntropy{}.Compute(out, labels)
		m.Backward(g)
		return loss
	}
	if l1, l2 := run(net), run(back); l1 != l2 {
		t.Errorf("restored model loss %g != %g", l2, l1)
	}
	g1, g2 := net.Gradients(), back.Gradients()
	for i := range g1 {
		if !g1[i].EqualApprox(g2[i], 1e-12) {
			t.Fatalf("gradient %d differs after checkpoint round trip", i)
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	// Not gzip at all.
	plain := filepath.Join(dir, "plain")
	if err := os.WriteFile(plain, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(plain); err == nil {
		t.Error("plain-text file loaded as checkpoint")
	}
	// Valid gzip, wrong contents.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode("something else"); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	wrong := filepath.Join(dir, "wrong")
	if err := os.WriteFile(wrong, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(wrong); err == nil {
		t.Error("non-checkpoint gob loaded")
	}
	// Wrong magic.
	buf.Reset()
	zw = gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(checkpointFile{Magic: "other"}); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if _, err := ReadModel(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong magic accepted")
	}
	// Missing file.
	if _, err := LoadModel(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file loaded")
	}
}
