package fl

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/oasisfl/oasis/internal/tensor"
)

// Aggregator folds the selected clients' updates of one round into the
// aggregated gradient ḡ the server applies as wᵗ⁺¹ = wᵗ − η·ḡ.
//
// Contract:
//
//   - The server calls Reset once at the start of every round, then Add once
//     per successful client update in deterministic client-selection order,
//     then Finalize exactly once. Streaming implementations (mean, norm
//     clipping) fold each update immediately; robust statistics (median,
//     trimmed mean) may buffer until Finalize.
//   - Add must not mutate or retain u.Grads: the tensors may still be
//     referenced by the client and by UpdateObserver hooks. Clone before
//     folding in place.
//   - Add reports a shape mismatch against the first update of the round as
//     an error; the round aborts on it.
//   - Implementations are NOT required to be goroutine-safe. The concurrent
//     round engine serializes all Aggregator calls on the server goroutine,
//     which is what keeps aggregation bit-reproducible regardless of
//     ServerConfig.Workers.
type Aggregator interface {
	// Name labels the aggregation policy for logs and experiment tables.
	Name() string
	// Reset clears all per-round state.
	Reset()
	// Add folds one client update into the round.
	Add(u Update) error
	// Finalize returns the aggregated gradient, one tensor per model
	// parameter. It errors when no update was added.
	Finalize() ([]*tensor.Tensor, error)
}

// checkShapes validates an update against the reference tensor list of the
// round's first update.
func checkShapes(ref []*tensor.Tensor, u Update) error {
	if len(u.Grads) != len(ref) {
		return fmt.Errorf("fl: client %s returned %d gradient tensors, want %d",
			u.ClientID, len(u.Grads), len(ref))
	}
	for i, g := range u.Grads {
		if !g.SameShape(ref[i]) {
			return fmt.Errorf("fl: client %s gradient %d shape %v, want %v",
				u.ClientID, i, g.Shape(), ref[i].Shape())
		}
	}
	return nil
}

// FedAvgMean is the paper's Eq. 1 aggregator: the arithmetic mean of all
// client gradients. It streams — memory stays O(model), not O(clients).
type FedAvgMean struct {
	sum   []*tensor.Tensor
	count int
}

var _ Aggregator = (*FedAvgMean)(nil)

// NewFedAvgMean constructs the FedSGD/FedAvg mean aggregator.
func NewFedAvgMean() *FedAvgMean { return &FedAvgMean{} }

// Name returns "mean".
func (a *FedAvgMean) Name() string { return "mean" }

// Reset clears the running sum.
func (a *FedAvgMean) Reset() { a.sum, a.count = nil, 0 }

// Add folds one update into the running sum.
func (a *FedAvgMean) Add(u Update) error {
	if a.sum == nil {
		a.sum = make([]*tensor.Tensor, len(u.Grads))
		for i, g := range u.Grads {
			a.sum[i] = g.Clone()
		}
		a.count = 1
		return nil
	}
	if err := checkShapes(a.sum, u); err != nil {
		return err
	}
	for i, g := range u.Grads {
		a.sum[i].AddInPlace(g)
	}
	a.count++
	return nil
}

// Finalize returns the mean gradient.
func (a *FedAvgMean) Finalize() ([]*tensor.Tensor, error) {
	if a.count == 0 {
		return nil, fmt.Errorf("fl: %s aggregator finalized with no updates", a.Name())
	}
	inv := 1.0 / float64(a.count)
	out := make([]*tensor.Tensor, len(a.sum))
	for i, s := range a.sum {
		out[i] = s.Scale(inv)
	}
	return out, nil
}

// NormClipped bounds each client's influence before averaging: an update
// whose joint L2 norm across all tensors exceeds MaxNorm is scaled down to
// MaxNorm, then the clipped updates are averaged. This is the standard
// defense against magnitude-based poisoning (a single client shipping a huge
// gradient) and also streams in O(model) memory.
type NormClipped struct {
	MaxNorm float64
	mean    FedAvgMean
}

var _ Aggregator = (*NormClipped)(nil)

// NewNormClipped constructs the clipping aggregator; maxNorm must be > 0.
func NewNormClipped(maxNorm float64) (*NormClipped, error) {
	if maxNorm <= 0 {
		return nil, fmt.Errorf("fl: normclip needs max norm > 0, got %g", maxNorm)
	}
	return &NormClipped{MaxNorm: maxNorm}, nil
}

// Name returns a label including the clip bound.
func (a *NormClipped) Name() string { return fmt.Sprintf("normclip(%g)", a.MaxNorm) }

// Reset clears the running sum.
func (a *NormClipped) Reset() { a.mean.Reset() }

// Add clips the update's joint norm to MaxNorm and folds it into the mean.
func (a *NormClipped) Add(u Update) error {
	normSq := 0.0
	for _, g := range u.Grads {
		n := g.L2Norm()
		normSq += n * n
	}
	if normSq <= a.MaxNorm*a.MaxNorm {
		return a.mean.Add(u)
	}
	scale := a.MaxNorm / math.Sqrt(normSq)
	clipped := make([]*tensor.Tensor, len(u.Grads))
	for i, g := range u.Grads {
		clipped[i] = g.Scale(scale)
	}
	return a.mean.Add(Update{ClientID: u.ClientID, Round: u.Round, Grads: clipped})
}

// Finalize returns the mean of the clipped updates.
func (a *NormClipped) Finalize() ([]*tensor.Tensor, error) {
	if a.mean.count == 0 {
		return nil, fmt.Errorf("fl: %s aggregator finalized with no updates", a.Name())
	}
	return a.mean.Finalize()
}

// bufferedAggregator collects whole updates; the robust order statistics
// below need every client's value per coordinate before they can decide.
type bufferedAggregator struct {
	updates [][]*tensor.Tensor
}

func (b *bufferedAggregator) reset() { b.updates = nil }

func (b *bufferedAggregator) add(u Update) error {
	if len(b.updates) > 0 {
		if err := checkShapes(b.updates[0], u); err != nil {
			return err
		}
	}
	grads := make([]*tensor.Tensor, len(u.Grads))
	for i, g := range u.Grads {
		grads[i] = g.Clone()
	}
	b.updates = append(b.updates, grads)
	return nil
}

// reduce computes one output tensor per parameter by applying f to the
// sorted per-coordinate column of values across all buffered updates.
func (b *bufferedAggregator) reduce(f func(sorted []float64) float64) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(b.updates[0]))
	column := make([]float64, len(b.updates))
	datas := make([][]float64, len(b.updates))
	for p, ref := range b.updates[0] {
		for c, upd := range b.updates {
			datas[c] = upd[p].Data()
		}
		agg := ref.Clone()
		dst := agg.Data()
		for i := range dst {
			for c, d := range datas {
				column[c] = d[i]
			}
			sort.Float64s(column)
			dst[i] = f(column)
		}
		out[p] = agg
	}
	return out
}

// CoordinateMedian is the coordinate-wise median aggregator (Yin et al.,
// "Byzantine-Robust Distributed Learning"): each gradient coordinate is the
// median of that coordinate across all client updates, which tolerates up to
// half the clients sending arbitrary values.
type CoordinateMedian struct {
	buf bufferedAggregator
}

var _ Aggregator = (*CoordinateMedian)(nil)

// NewCoordinateMedian constructs the median aggregator.
func NewCoordinateMedian() *CoordinateMedian { return &CoordinateMedian{} }

// Name returns "median".
func (a *CoordinateMedian) Name() string { return "median" }

// Reset drops all buffered updates.
func (a *CoordinateMedian) Reset() { a.buf.reset() }

// Add buffers one update.
func (a *CoordinateMedian) Add(u Update) error { return a.buf.add(u) }

// Finalize returns the coordinate-wise median across the buffered updates.
func (a *CoordinateMedian) Finalize() ([]*tensor.Tensor, error) {
	n := len(a.buf.updates)
	if n == 0 {
		return nil, fmt.Errorf("fl: %s aggregator finalized with no updates", a.Name())
	}
	return a.buf.reduce(func(sorted []float64) float64 {
		if n%2 == 1 {
			return sorted[n/2]
		}
		return 0.5 * (sorted[n/2-1] + sorted[n/2])
	}), nil
}

// TrimmedMean is the coordinate-wise trimmed mean (Yin et al.): per
// coordinate, the lowest and highest ⌊Frac·n⌋ values are discarded and the
// rest averaged, bounding the influence of outlier clients while keeping
// more signal than the median.
type TrimmedMean struct {
	Frac float64 // fraction trimmed from EACH tail, in [0, 0.5)
	buf  bufferedAggregator
}

var _ Aggregator = (*TrimmedMean)(nil)

// NewTrimmedMean constructs the trimmed-mean aggregator; frac is the
// fraction trimmed from each tail and must lie in [0, 0.5).
func NewTrimmedMean(frac float64) (*TrimmedMean, error) {
	if frac < 0 || frac >= 0.5 {
		return nil, fmt.Errorf("fl: trimmed-mean fraction %g outside [0, 0.5)", frac)
	}
	return &TrimmedMean{Frac: frac}, nil
}

// Name returns a label including the trim fraction.
func (a *TrimmedMean) Name() string { return fmt.Sprintf("trimmed(%g)", a.Frac) }

// Reset drops all buffered updates.
func (a *TrimmedMean) Reset() { a.buf.reset() }

// Add buffers one update.
func (a *TrimmedMean) Add(u Update) error { return a.buf.add(u) }

// Finalize returns the coordinate-wise trimmed mean.
func (a *TrimmedMean) Finalize() ([]*tensor.Tensor, error) {
	n := len(a.buf.updates)
	if n == 0 {
		return nil, fmt.Errorf("fl: %s aggregator finalized with no updates", a.Name())
	}
	// ⌊Frac·n⌋ with an epsilon so exact products (0.3×10) don't truncate
	// one short through float error and let an outlier survive the trim.
	k := int(math.Floor(a.Frac*float64(n) + 1e-9))
	if 2*k >= n {
		k = (n - 1) / 2 // always keep at least one value per coordinate
	}
	inv := 1.0 / float64(n-2*k)
	return a.buf.reduce(func(sorted []float64) float64 {
		s := 0.0
		for _, v := range sorted[k : n-k] {
			s += v
		}
		return s * inv
	}), nil
}

// AggregatorNames lists the selectable aggregation policies accepted by
// NewAggregatorByName (without their optional numeric suffixes).
func AggregatorNames() []string { return []string{"mean", "median", "trimmed", "normclip"} }

// NewAggregatorByName resolves an aggregation policy label:
//
//	mean              arithmetic mean (FedSGD Eq. 1; alias "fedavg")
//	median            coordinate-wise median
//	trimmed[:FRAC]    coordinate-wise trimmed mean (default FRAC 0.1 per tail)
//	normclip[:NORM]   per-update L2 clipping to NORM (default 10) before mean
//
// The optional ":value" suffix tunes the policy's parameter, e.g.
// "trimmed:0.25" or "normclip:5".
func NewAggregatorByName(spec string) (Aggregator, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	parse := func(def float64) (float64, error) {
		if !hasArg {
			return def, nil
		}
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return 0, fmt.Errorf("fl: aggregator %q: bad parameter %q", spec, arg)
		}
		return v, nil
	}
	switch name {
	case "mean", "fedavg":
		if hasArg {
			return nil, fmt.Errorf("fl: aggregator %q takes no parameter", name)
		}
		return NewFedAvgMean(), nil
	case "median":
		if hasArg {
			return nil, fmt.Errorf("fl: aggregator %q takes no parameter", name)
		}
		return NewCoordinateMedian(), nil
	case "trimmed":
		frac, err := parse(0.1)
		if err != nil {
			return nil, err
		}
		return NewTrimmedMean(frac)
	case "normclip":
		maxNorm, err := parse(10)
		if err != nil {
			return nil, err
		}
		return NewNormClipped(maxNorm)
	default:
		return nil, fmt.Errorf("fl: unknown aggregator %q (have %v)", spec, AggregatorNames())
	}
}
