package fl

import (
	"fmt"
	rand "math/rand/v2"
)

// ClientSampler picks which of the connected clients participate in a round.
// Assign to Server.Sampler; nil reproduces the historical behavior (uniform
// without replacement), so existing runs stay bit-identical.
//
// Sample is called once per round on the server goroutine with the server's
// own deterministic rng; implementations must draw all randomness from that
// rng (and nothing else) to keep runs reproducible across worker counts.
type ClientSampler interface {
	// Name labels the sampling strategy for logs and reports.
	Name() string
	// Sample returns m clients drawn from clients (0 ≥ m or m > len means
	// all, in an implementation-chosen order).
	Sample(round int, clients []Client, m int, rng *rand.Rand) []Client
}

// SizedClient is optionally implemented by clients that can report how many
// local samples they hold; SizeWeightedSampler uses it for proportional
// selection (clients that don't implement it weigh as 1 sample).
type SizedClient interface {
	NumSamples() int
}

// NewSamplerByName resolves a sampling strategy: "uniform" (each client
// equally likely) or "size" (probability proportional to local dataset
// size, the FedAvg-paper weighting).
func NewSamplerByName(name string) (ClientSampler, error) {
	switch name {
	case "", "uniform":
		return UniformSampler{}, nil
	case "size":
		return SizeWeightedSampler{}, nil
	default:
		return nil, fmt.Errorf("fl: unknown client sampler %q (want uniform or size)", name)
	}
}

// SamplerNames lists the strategies NewSamplerByName accepts.
func SamplerNames() []string { return []string{"uniform", "size"} }

// UniformSampler draws m clients uniformly without replacement — exactly the
// policy the server applies when no Sampler is set.
type UniformSampler struct{}

var _ ClientSampler = UniformSampler{}

// Name returns "uniform".
func (UniformSampler) Name() string { return "uniform" }

// Sample permutes the roster and takes the first m entries.
func (UniformSampler) Sample(_ int, clients []Client, m int, rng *rand.Rand) []Client {
	if m <= 0 || m > len(clients) {
		m = len(clients)
	}
	perm := rng.Perm(len(clients))
	selected := make([]Client, 0, m)
	for _, idx := range perm[:m] {
		selected = append(selected, clients[idx])
	}
	return selected
}

// SizeWeightedSampler draws m clients without replacement with probability
// proportional to their local dataset size (SizedClient), so data-rich
// clients participate more often — the cross-device regime's standard
// counterweight to quantity skew.
type SizeWeightedSampler struct{}

var _ ClientSampler = SizeWeightedSampler{}

// Name returns "size".
func (SizeWeightedSampler) Name() string { return "size" }

// Sample performs successive weighted draws without replacement.
func (SizeWeightedSampler) Sample(_ int, clients []Client, m int, rng *rand.Rand) []Client {
	if m <= 0 || m > len(clients) {
		m = len(clients)
	}
	weights := make([]float64, len(clients))
	remaining := 0.0
	for i, c := range clients {
		w := 1.0
		if sc, ok := c.(SizedClient); ok && sc.NumSamples() > 0 {
			w = float64(sc.NumSamples())
		}
		weights[i] = w
		remaining += w
	}
	selected := make([]Client, 0, m)
	taken := make([]bool, len(clients))
	for len(selected) < m {
		r := rng.Float64() * remaining
		pick := -1
		for i, w := range weights {
			if taken[i] {
				continue
			}
			pick = i
			r -= w
			if r < 0 {
				break
			}
		}
		taken[pick] = true
		remaining -= weights[pick]
		selected = append(selected, clients[pick])
	}
	return selected
}
