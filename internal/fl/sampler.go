package fl

import (
	"fmt"
	rand "math/rand/v2"
)

// ClientSampler picks which of the connected clients participate in a round.
// Assign to Server.Sampler; nil reproduces the historical behavior (uniform
// without replacement), so existing runs stay bit-identical.
//
// Sample is called once per round on the server goroutine with the server's
// own deterministic rng; implementations must draw all randomness from that
// rng (and nothing else) to keep runs reproducible across worker counts.
type ClientSampler interface {
	// Name labels the sampling strategy for logs and reports.
	Name() string
	// Sample returns m clients drawn from clients (0 ≥ m or m > len means
	// all, in an implementation-chosen order).
	Sample(round int, clients []Client, m int, rng *rand.Rand) []Client
}

// IndexSampler is the virtual-population refinement of ClientSampler: it
// draws client *indices* from [0, n) so the caller never has to materialize
// the roster being sampled from. size reports client i's local sample count
// (nil, or a 0 return, weighs the client as 1). Both built-in samplers
// implement it, and their Sample methods delegate to it, so the index and
// client forms consume identical rng streams — the property that keeps a
// virtual-roster run byte-identical to an eager one.
type IndexSampler interface {
	ClientSampler
	// SampleIndices returns m distinct indices drawn from [0, n)
	// (m ≤ 0 or m > n means all, in an implementation-chosen order).
	SampleIndices(round, n, m int, size func(i int) int, rng *rand.Rand) []int
}

// SizedClient is optionally implemented by clients that can report how many
// local samples they hold; SizeWeightedSampler uses it for proportional
// selection (clients that don't implement it weigh as 1 sample).
type SizedClient interface {
	NumSamples() int
}

// clientSize adapts a materialized roster to the size callback of
// SampleIndices.
func clientSize(clients []Client) func(int) int {
	return func(i int) int {
		if sc, ok := clients[i].(SizedClient); ok {
			return sc.NumSamples()
		}
		return 0
	}
}

// NewSamplerByName resolves a sampling strategy: "uniform" (each client
// equally likely) or "size" (probability proportional to local dataset
// size, the FedAvg-paper weighting).
func NewSamplerByName(name string) (ClientSampler, error) {
	switch name {
	case "", "uniform":
		return UniformSampler{}, nil
	case "size":
		return SizeWeightedSampler{}, nil
	default:
		return nil, fmt.Errorf("fl: unknown client sampler %q (want uniform or size)", name)
	}
}

// SamplerNames lists the strategies NewSamplerByName accepts.
func SamplerNames() []string { return []string{"uniform", "size"} }

// UniformSampler draws m clients uniformly without replacement — exactly the
// policy the server applies when no Sampler is set.
type UniformSampler struct{}

var _ ClientSampler = UniformSampler{}

// Name returns "uniform".
func (UniformSampler) Name() string { return "uniform" }

// Sample permutes the roster and takes the first m entries.
func (u UniformSampler) Sample(round int, clients []Client, m int, rng *rand.Rand) []Client {
	indices := u.SampleIndices(round, len(clients), m, nil, rng)
	selected := make([]Client, 0, len(indices))
	for _, idx := range indices {
		selected = append(selected, clients[idx])
	}
	return selected
}

// SampleIndices permutes [0, n) and takes the first m entries.
func (UniformSampler) SampleIndices(_, n, m int, _ func(int) int, rng *rand.Rand) []int {
	if m <= 0 || m > n {
		m = n
	}
	perm := rng.Perm(n)
	return perm[:m:m]
}

// SizeWeightedSampler draws m clients without replacement with probability
// proportional to their local dataset size (SizedClient), so data-rich
// clients participate more often — the cross-device regime's standard
// counterweight to quantity skew.
type SizeWeightedSampler struct{}

var _ ClientSampler = SizeWeightedSampler{}

// Name returns "size".
func (SizeWeightedSampler) Name() string { return "size" }

// Sample performs successive weighted draws without replacement.
func (s SizeWeightedSampler) Sample(round int, clients []Client, m int, rng *rand.Rand) []Client {
	indices := s.SampleIndices(round, len(clients), m, clientSize(clients), rng)
	selected := make([]Client, 0, len(indices))
	for _, idx := range indices {
		selected = append(selected, clients[idx])
	}
	return selected
}

// SampleIndices performs successive weighted draws without replacement over
// [0, n), weighing index i by size(i) when positive and 1 otherwise.
func (SizeWeightedSampler) SampleIndices(_, n, m int, size func(int) int, rng *rand.Rand) []int {
	if m <= 0 || m > n {
		m = n
	}
	weights := make([]float64, n)
	remaining := 0.0
	for i := range weights {
		w := 1.0
		if size != nil {
			if s := size(i); s > 0 {
				w = float64(s)
			}
		}
		weights[i] = w
		remaining += w
	}
	selected := make([]int, 0, m)
	taken := make([]bool, n)
	for len(selected) < m {
		r := rng.Float64() * remaining
		pick := -1
		for i, w := range weights {
			if taken[i] {
				continue
			}
			pick = i
			r -= w
			if r < 0 {
				break
			}
		}
		taken[pick] = true
		remaining -= weights[pick]
		selected = append(selected, pick)
	}
	return selected
}

var (
	_ IndexSampler = UniformSampler{}
	_ IndexSampler = SizeWeightedSampler{}
)
