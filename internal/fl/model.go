// Package fl implements the federated-learning protocol of the paper's §II-A:
// a central server iteratively dispatches the current global model to a
// random subset of clients, each client computes gradients on a local batch
// (Gᵗ_j = ∇L(D_j, wᵗ)) and uploads them, and the server averages the
// gradients into a FedSGD step (Eq. 1).
//
// The threat model (§III-A) is wired in as two server hooks:
//
//   - ModelModifier lets a dishonest server arbitrarily rewrite the model —
//     architecture included — before dispatch (this is how the RTF/CAH
//     malicious layers are planted);
//   - UpdateObserver taps every raw client update before aggregation (this
//     is where the attacker runs gradient inversion).
//
// Clients defend themselves with a BatchPreprocessor (OASIS) and/or a
// GradientDefense (DPSGD, pruning). Transports are pluggable: in-memory for
// simulation and benchmarks, TCP/gob for genuinely distributed runs.
//
// The round engine is concurrent: a bounded worker pool
// (ServerConfig.Workers) runs HandleRound for the selected clients in
// parallel, while all bookkeeping — UpdateObserver taps, failure accounting,
// and aggregation through the pluggable Aggregator (mean, coordinate-wise
// median, trimmed mean, norm clipping; see NewAggregatorByName) — is merged
// on the server goroutine in client-selection order. A run's History is
// therefore bit-identical for every worker count under the same seed. See
// the Client, Aggregator, and UpdateObserver docs for the exact
// goroutine-safety contracts.
package fl

import (
	"fmt"

	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// LayerSpec is the wire description of one network layer. The server ships
// the full architecture every round, which is exactly what gives a dishonest
// server the power the paper analyzes: clients execute whatever model they
// receive.
type LayerSpec struct {
	Kind string // linear | relu | sigmoid | tanh | dropout | flatten | conv | batchnorm | maxpool | gap | residual
	Name string

	// linear / conv parameters
	W *tensor.Tensor
	B *tensor.Tensor

	// conv geometry
	InC, OutC, K, Stride, Pad int

	// batchnorm state
	Gamma, Beta             *tensor.Tensor
	RunningMean, RunningVar []float64
	Eps, Momentum           float64
	Channels                int

	// pooling
	Window int

	// dropout
	DropP float64

	// residual
	Body []LayerSpec
	Proj *LayerSpec
}

// ModelSpec is a complete serializable model: architecture plus weights.
type ModelSpec struct {
	Layers []LayerSpec
	// InputKind tells the client how to shape its batch: "flat" for
	// [B, C·H·W] (fully-connected first layer) or "image" for [B,C,H,W].
	InputKind string
}

// EncodeModel converts a network into its wire description.
func EncodeModel(net *nn.Sequential) (ModelSpec, error) {
	specs, err := encodeLayers(net.Layers)
	if err != nil {
		return ModelSpec{}, err
	}
	kind := "image"
	if len(net.Layers) > 0 {
		if _, ok := net.Layers[0].(*nn.Linear); ok {
			kind = "flat"
		}
	}
	return ModelSpec{Layers: specs, InputKind: kind}, nil
}

func encodeLayers(layers []nn.Layer) ([]LayerSpec, error) {
	out := make([]LayerSpec, 0, len(layers))
	for _, l := range layers {
		spec, err := encodeLayer(l)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func encodeLayer(l nn.Layer) (LayerSpec, error) {
	switch v := l.(type) {
	case *nn.Linear:
		return LayerSpec{Kind: "linear", Name: v.Name(), W: v.Weight.W.Clone(), B: v.Bias.W.Clone()}, nil
	case *nn.ReLU:
		return LayerSpec{Kind: "relu", Name: v.Name()}, nil
	case *nn.Sigmoid:
		return LayerSpec{Kind: "sigmoid", Name: v.Name()}, nil
	case *nn.Tanh:
		return LayerSpec{Kind: "tanh", Name: v.Name()}, nil
	case *nn.Dropout:
		return LayerSpec{Kind: "dropout", Name: v.Name(), DropP: v.P}, nil
	case *nn.Flatten:
		return LayerSpec{Kind: "flatten", Name: v.Name()}, nil
	case *nn.Conv2D:
		return LayerSpec{
			Kind: "conv", Name: v.Name(), W: v.Weight.W.Clone(), B: v.Bias.W.Clone(),
			InC: v.InC, OutC: v.OutC, K: v.K, Stride: v.Stride, Pad: v.Pad,
		}, nil
	case *nn.BatchNorm2D:
		return LayerSpec{
			Kind: "batchnorm", Name: v.Name(), Channels: v.C,
			Gamma: v.Gamma.W.Clone(), Beta: v.Beta.W.Clone(),
			RunningMean: append([]float64(nil), v.RunningMean...),
			RunningVar:  append([]float64(nil), v.RunningVar...),
			Eps:         v.Eps, Momentum: v.Momentum,
		}, nil
	case *nn.MaxPool2D:
		return LayerSpec{Kind: "maxpool", Name: v.Name(), Window: v.K}, nil
	case *nn.GlobalAvgPool:
		return LayerSpec{Kind: "gap", Name: v.Name()}, nil
	case *nn.Residual:
		body, err := encodeLayers(v.Body)
		if err != nil {
			return LayerSpec{}, err
		}
		spec := LayerSpec{Kind: "residual", Name: v.Name(), Body: body}
		if v.Proj != nil {
			p, err := encodeLayer(v.Proj)
			if err != nil {
				return LayerSpec{}, err
			}
			spec.Proj = &p
		}
		return spec, nil
	default:
		return LayerSpec{}, fmt.Errorf("fl: cannot encode layer type %T", l)
	}
}

// DecodeModel reconstructs a runnable network from its wire description.
func DecodeModel(spec ModelSpec) (*nn.Sequential, error) {
	layers, err := decodeLayers(spec.Layers)
	if err != nil {
		return nil, err
	}
	return nn.NewSequential(layers...), nil
}

func decodeLayers(specs []LayerSpec) ([]nn.Layer, error) {
	out := make([]nn.Layer, 0, len(specs))
	for _, s := range specs {
		l, err := decodeLayer(s)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

func decodeLayer(s LayerSpec) (nn.Layer, error) {
	switch s.Kind {
	case "linear":
		return nn.NewLinearFrom(s.Name, s.W, s.B)
	case "relu":
		return nn.NewReLU(s.Name), nil
	case "sigmoid":
		return nn.NewSigmoid(s.Name), nil
	case "tanh":
		return nn.NewTanh(s.Name), nil
	case "dropout":
		// The receiving client supplies its own randomness; dropout masks
		// are inherently local state, not part of the dispatched model.
		return nn.NewDropout(s.Name, s.DropP, nn.RandSource(0xd20b, 1))
	case "flatten":
		return nn.NewFlatten(s.Name), nil
	case "conv":
		if s.W == nil || s.B == nil {
			return nil, fmt.Errorf("fl: conv spec %q missing parameters", s.Name)
		}
		c := nn.NewConv2D(s.Name, s.InC, s.OutC, s.K, s.Stride, s.Pad, nn.RandSource(0, 0))
		if !c.Weight.W.SameShape(s.W) || !c.Bias.W.SameShape(s.B) {
			return nil, fmt.Errorf("fl: conv spec %q parameter shapes %v/%v do not match geometry", s.Name, s.W.Shape(), s.B.Shape())
		}
		copy(c.Weight.W.Data(), s.W.Data())
		copy(c.Bias.W.Data(), s.B.Data())
		return c, nil
	case "batchnorm":
		bn := nn.NewBatchNorm2D(s.Name, s.Channels)
		if !bn.Gamma.W.SameShape(s.Gamma) || !bn.Beta.W.SameShape(s.Beta) ||
			len(s.RunningMean) != s.Channels || len(s.RunningVar) != s.Channels {
			return nil, fmt.Errorf("fl: batchnorm spec %q has inconsistent shapes", s.Name)
		}
		copy(bn.Gamma.W.Data(), s.Gamma.Data())
		copy(bn.Beta.W.Data(), s.Beta.Data())
		copy(bn.RunningMean, s.RunningMean)
		copy(bn.RunningVar, s.RunningVar)
		bn.Eps, bn.Momentum = s.Eps, s.Momentum
		return bn, nil
	case "maxpool":
		return nn.NewMaxPool2D(s.Name, s.Window), nil
	case "gap":
		return nn.NewGlobalAvgPool(s.Name), nil
	case "residual":
		body, err := decodeLayers(s.Body)
		if err != nil {
			return nil, err
		}
		if s.Proj == nil {
			return nn.NewResidual(s.Name, body...), nil
		}
		proj, err := decodeLayer(*s.Proj)
		if err != nil {
			return nil, err
		}
		return nn.NewResidualProj(s.Name, proj, body...), nil
	default:
		return nil, fmt.Errorf("fl: unknown layer kind %q", s.Kind)
	}
}
