package fl

import (
	"fmt"
	"testing"
)

// TestTCPServerClientsSorted pins the determinism fix in TCPServer.Clients:
// the roster must come back sorted by client ID regardless of registration
// (map) order, because it feeds Server.selectRound's sampler — with a
// map-ordered roster the same rng draws would select different clients on
// every run. Registering many clients makes an accidentally-sorted map
// iteration astronomically unlikely.
func TestTCPServerClientsSorted(t *testing.T) {
	s := &TCPServer{clients: make(map[string]*remoteClient)}
	const n = 64
	// Insert in reverse order so insertion order is also wrong.
	for i := n - 1; i >= 0; i-- {
		id := fmt.Sprintf("client-%03d", i)
		s.clients[id] = &remoteClient{id: id}
	}
	got := s.Clients()
	if len(got) != n {
		t.Fatalf("Clients() returned %d clients, want %d", len(got), n)
	}
	for i, c := range got {
		want := fmt.Sprintf("client-%03d", i)
		if c.ID() != want {
			t.Fatalf("Clients()[%d] = %q, want %q (roster must be sorted by ID)", i, c.ID(), want)
		}
	}
}
