package fl

import "sync"

// MemoryRoster is the in-process transport: clients are direct references.
// It backs simulations, tests and benchmarks, and is safe for concurrent
// registration.
type MemoryRoster struct {
	mu      sync.Mutex
	clients []Client
}

var _ Roster = (*MemoryRoster)(nil)

// NewMemoryRoster constructs an empty roster.
func NewMemoryRoster() *MemoryRoster { return &MemoryRoster{} }

// Add registers a client.
func (r *MemoryRoster) Add(c Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients = append(r.clients, c)
}

// Clients returns a snapshot of the registered clients.
func (r *MemoryRoster) Clients() []Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Client(nil), r.clients...)
}
