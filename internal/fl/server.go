package fl

import (
	"context"
	"fmt"
	"math"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// ModelModifier is the dishonest-server hook: it may rewrite the dispatched
// model arbitrarily — changing or adding parameters and layers — before it
// reaches the clients (paper §III-A threat model). Honest servers leave it
// nil.
type ModelModifier interface {
	Modify(round int, spec ModelSpec) (ModelSpec, error)
	Name() string
}

// UpdateObserver taps every raw client update before aggregation; the
// reconstruction attacks live behind this interface.
type UpdateObserver interface {
	Observe(round int, u Update)
}

// Roster abstracts how the server reaches its clients (in-memory or TCP).
type Roster interface {
	// Clients returns the currently connected clients.
	Clients() []Client
}

// ServerConfig parametrizes the FL run.
type ServerConfig struct {
	Rounds          int
	ClientsPerRound int     // M in the paper; 0 means all clients
	LearningRate    float64 // η of Eq. 1
	Seed            uint64
	// TolerateFailures keeps a round going when individual clients error
	// (stragglers, dropped connections): their updates are skipped and the
	// remaining ones are averaged. A round still fails when every selected
	// client errors.
	TolerateFailures bool
}

// RoundStats records one round's aggregate outcome.
type RoundStats struct {
	Round       int
	MeanLoss    float64
	Clients     []string // clients whose updates were aggregated
	Failed      []string // clients that errored (TolerateFailures mode)
	GradNorm    float64  // L2 norm of the aggregated gradient
	UpdateBytes int      // approximate payload size in float64 count
}

// History is the trace of a complete FL run.
type History struct {
	Rounds []RoundStats
}

// FinalLoss returns the last round's mean client loss (0 if no rounds ran).
func (h History) FinalLoss() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	return h.Rounds[len(h.Rounds)-1].MeanLoss
}

// Server coordinates FL training per §II-A.
type Server struct {
	Config   ServerConfig
	Model    *nn.Sequential
	Roster   Roster
	Modifier ModelModifier
	Observer UpdateObserver

	rng *rand.Rand
}

// NewServer constructs a server around a global model and a client roster.
func NewServer(cfg ServerConfig, model *nn.Sequential, roster Roster) *Server {
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 1
	}
	return &Server{
		Config: cfg,
		Model:  model,
		Roster: roster,
		rng:    nn.RandSource(cfg.Seed, 0x5eed),
	}
}

// Run executes the configured number of rounds: sample M clients, dispatch
// the (possibly maliciously modified) model, collect updates, average
// gradients, and apply the FedSGD step wᵗ⁺¹ = wᵗ − η·ḡ (Eq. 1).
func (s *Server) Run(ctx context.Context) (History, error) {
	var hist History
	for round := 0; round < s.Config.Rounds; round++ {
		stats, err := s.runRound(ctx, round)
		if err != nil {
			return hist, err
		}
		hist.Rounds = append(hist.Rounds, stats)
	}
	return hist, nil
}

func (s *Server) runRound(ctx context.Context, round int) (RoundStats, error) {
	clients := s.Roster.Clients()
	if len(clients) == 0 {
		return RoundStats{}, fmt.Errorf("fl: round %d: no clients connected", round)
	}
	m := s.Config.ClientsPerRound
	if m <= 0 || m > len(clients) {
		m = len(clients)
	}
	perm := s.rng.Perm(len(clients))
	selected := make([]Client, 0, m)
	for _, idx := range perm[:m] {
		selected = append(selected, clients[idx])
	}

	spec, err := EncodeModel(s.Model)
	if err != nil {
		return RoundStats{}, fmt.Errorf("fl: round %d: %w", round, err)
	}
	dispatched := spec
	if s.Modifier != nil {
		dispatched, err = s.Modifier.Modify(round, spec)
		if err != nil {
			return RoundStats{}, fmt.Errorf("fl: round %d: dishonest modifier: %w", round, err)
		}
	}

	stats := RoundStats{Round: round}
	var sum []*tensor.Tensor
	lossSum := 0.0
	var firstErr error
	for _, c := range selected {
		update, err := c.HandleRound(ctx, RoundRequest{Round: round, Model: dispatched})
		if err != nil {
			if !s.Config.TolerateFailures {
				return RoundStats{}, fmt.Errorf("fl: round %d client %s: %w", round, c.ID(), err)
			}
			if firstErr == nil {
				firstErr = err
			}
			stats.Failed = append(stats.Failed, c.ID())
			continue
		}
		if s.Observer != nil {
			s.Observer.Observe(round, update)
		}
		stats.Clients = append(stats.Clients, update.ClientID)
		lossSum += update.Loss
		for _, g := range update.Grads {
			stats.UpdateBytes += g.Len()
		}
		if sum == nil {
			sum = make([]*tensor.Tensor, len(update.Grads))
			for i, g := range update.Grads {
				sum[i] = g.Clone()
			}
			continue
		}
		if len(update.Grads) != len(sum) {
			return RoundStats{}, fmt.Errorf("fl: round %d client %s returned %d gradient tensors, want %d",
				round, update.ClientID, len(update.Grads), len(sum))
		}
		for i, g := range update.Grads {
			sum[i].AddInPlace(g)
		}
	}
	ok := len(stats.Clients)
	if ok == 0 {
		return RoundStats{}, fmt.Errorf("fl: round %d: every selected client failed: %w", round, firstErr)
	}
	m = ok
	stats.MeanLoss = lossSum / float64(m)

	// When the dispatched model matches the global architecture, apply the
	// averaged-gradient step (a dishonest server that swapped the model is
	// only pretending to train; its "update" cannot be applied).
	params := s.Model.Params()
	if gradsMatchParams(params, sum) {
		inv := 1.0 / float64(m)
		normSq := 0.0
		for i, p := range params {
			g := sum[i].Scale(inv)
			n := g.L2Norm()
			normSq += n * n
			p.W.AddScaledInPlace(-s.Config.LearningRate, g)
		}
		stats.GradNorm = math.Sqrt(normSq)
	}
	return stats, nil
}

// gradsMatchParams reports whether every aggregated tensor matches the
// corresponding global parameter's shape.
func gradsMatchParams(params []*nn.Param, sum []*tensor.Tensor) bool {
	if len(params) != len(sum) {
		return false
	}
	for i, p := range params {
		if !p.W.SameShape(sum[i]) {
			return false
		}
	}
	return true
}
