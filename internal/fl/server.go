package fl

import (
	"context"
	"errors"
	"fmt"
	"math"
	rand "math/rand/v2"
	"runtime"
	"sync"
	"time"

	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/obs"
	"github.com/oasisfl/oasis/internal/tensor"
)

// ModelModifier is the dishonest-server hook: it may rewrite the dispatched
// model arbitrarily — changing or adding parameters and layers — before it
// reaches the clients (paper §III-A threat model). Honest servers leave it
// nil.
//
// Modify is called at most once per round, always from the server's own
// goroutine, never concurrently. The returned ModelSpec is shared read-only
// by every worker dispatching to clients, so implementations must not retain
// and mutate it after returning.
type ModelModifier interface {
	Modify(round int, spec ModelSpec) (ModelSpec, error)
	Name() string
}

// UpdateObserver taps every raw client update before aggregation; the
// reconstruction attacks live behind this interface.
//
// The round engine serializes all Observe calls on the server goroutine, in
// deterministic client-selection order, regardless of ServerConfig.Workers —
// an Observer therefore does not need internal locking, and its view of a
// run is reproducible under a fixed seed.
type UpdateObserver interface {
	Observe(round int, u Update)
}

// Roster abstracts how the server reaches its clients (in-memory or TCP).
type Roster interface {
	// Clients returns the currently connected clients. Implementations must
	// be safe to call while a previous round's workers are still draining.
	Clients() []Client
}

// ServerConfig parametrizes the FL run.
type ServerConfig struct {
	Rounds          int
	ClientsPerRound int     // M in the paper; 0 means all clients
	LearningRate    float64 // η of Eq. 1
	Seed            uint64
	// TolerateFailures keeps a round going when individual clients error
	// (stragglers, dropped connections): their updates are skipped and the
	// remaining ones are aggregated. A round still fails when every selected
	// client errors.
	TolerateFailures bool
	// Workers bounds how many clients train concurrently inside one round.
	// 0 means runtime.NumCPU(); 1 reproduces the sequential engine. The
	// resulting History is bit-identical for every Workers value under the
	// same seed: only wall-clock time changes. Rosters whose clients share
	// mutable state (a common *rand.Rand, a stateful GradientDefense, a
	// randomized augmentation policy) must set Workers to 1 or synchronize
	// that state — see the Client concurrency contract.
	Workers int
	// RoundDeadline bounds one round's wall-clock time (0 = none): the
	// dispatch context expires after it, so cooperative clients still in
	// flight return ctx errors and are counted as failures instead of
	// stalling the round. Combine with TolerateFailures to aggregate the
	// updates that did arrive in time. Note that a wall-clock deadline makes
	// a run timing-dependent; simulations wanting reproducible lateness
	// should model delays virtually (see internal/sim) and keep this as a
	// safety net only.
	RoundDeadline time.Duration
	// AllowEmptyRounds records a round in which every selected client failed
	// (dropout, deadline, errors) as a zero-participant RoundStats and moves
	// on, rather than aborting the run. The global model is untouched in
	// such a round. Requires TolerateFailures semantics for the individual
	// failures to be tolerated in the first place.
	AllowEmptyRounds bool
	// ReleaseUpdates returns every aggregated update's gradient tensors to
	// the tensor pool right after the Aggregator folds them, bounding a
	// round's live gradient memory at O(workers × model) instead of
	// O(cohort × model). Only enable it when neither the Observer nor the
	// Aggregator retains references into u.Grads beyond their call (all
	// built-in aggregators and attacks copy what they keep); the tensors are
	// recycled the moment Add returns.
	ReleaseUpdates bool
}

// RoundStats records one round's aggregate outcome.
type RoundStats struct {
	Round       int
	MeanLoss    float64
	Clients     []string // clients whose updates were aggregated, in selection order
	Failed      []string // clients that errored (TolerateFailures mode), in selection order
	GradNorm    float64  // L2 norm of the aggregated gradient
	UpdateBytes int      // approximate payload size in float64 count
}

// History is the trace of a complete FL run.
type History struct {
	Rounds []RoundStats
}

// FinalLoss returns the last round's mean client loss (0 if no rounds ran).
func (h History) FinalLoss() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	return h.Rounds[len(h.Rounds)-1].MeanLoss
}

// Server coordinates FL training per §II-A. Each round it samples M clients,
// dispatches the (possibly maliciously modified) model to them through a
// bounded worker pool, and folds their updates through the configured
// Aggregator in deterministic selection order.
type Server struct {
	Config   ServerConfig
	Model    *nn.Sequential
	Roster   Roster
	Modifier ModelModifier
	Observer UpdateObserver
	// Virtual, when set, replaces Roster as the population source: clients
	// are sampled by index over [0, NumClients()) and only the round's
	// cohort is instantiated (leased before dispatch, released after the
	// step is applied). Requires the Sampler to implement IndexSampler; the
	// built-in samplers do, with rng streams identical to their Sample
	// methods, so a virtual run reproduces a materialized one bit for bit.
	Virtual VirtualRoster
	// Sampler picks each round's participants; nil keeps the historical
	// uniform-without-replacement draw bit for bit.
	Sampler ClientSampler
	// AfterRound, when set, is invoked on the server goroutine after each
	// round's step has been applied — a hook for per-round evaluation,
	// logging, or checkpointing. It sees the final RoundStats and may read
	// the Model (no round is in flight while it runs). A panicking hook is
	// recovered and surfaced as the run's error (the completed rounds stay
	// in the returned History) rather than tearing the server down.
	AfterRound func(round int, stats RoundStats)
	// Aggregator folds client updates into the applied gradient; nil means
	// FedAvgMean (the paper's Eq. 1). The server owns its lifecycle: Reset
	// at round start, Add per update, Finalize at round end — all from one
	// goroutine.
	Aggregator Aggregator

	rng *rand.Rand
}

// NewServer constructs a server around a global model and a client roster.
func NewServer(cfg ServerConfig, model *nn.Sequential, roster Roster) *Server {
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 1
	}
	return &Server{
		Config: cfg,
		Model:  model,
		Roster: roster,
		rng:    nn.RandSource(cfg.Seed, 0x5eed),
	}
}

// Run executes the configured number of rounds: sample M clients, dispatch
// the (possibly maliciously modified) model concurrently, aggregate updates,
// and apply the step wᵗ⁺¹ = wᵗ − η·ḡ (Eq. 1 with ḡ from the Aggregator).
func (s *Server) Run(ctx context.Context) (History, error) {
	var hist History
	for round := 0; round < s.Config.Rounds; round++ {
		stats, err := s.runRound(ctx, round)
		if err != nil {
			return hist, err
		}
		hist.Rounds = append(hist.Rounds, stats)
		if s.AfterRound != nil {
			if err := s.fireAfterRound(ctx, round, stats); err != nil {
				return hist, err
			}
		}
	}
	return hist, nil
}

// fireAfterRound invokes the AfterRound hook on the calling (server)
// goroutine, converting a hook panic into an error so a broken evaluation
// callback fails the run visibly instead of crashing or wedging the caller.
func (s *Server) fireAfterRound(ctx context.Context, round int, stats RoundStats) (err error) {
	_, sp := obs.Start(ctx, "fl.after_round", obs.Int("round", round))
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fl: round %d: AfterRound hook panicked: %v", round, r)
		}
	}()
	s.AfterRound(round, stats)
	return nil
}

// selectRound draws the round's participants, from the materialized Roster
// or — when Virtual is set — by index over the virtual population, leasing
// only the sampled cohort. Both paths run the identical sampler rng
// operations on the server goroutine.
func (s *Server) selectRound(round int) ([]Client, error) {
	sampler := s.Sampler
	if sampler == nil {
		// UniformSampler performs exactly the historical rng operations, so
		// the default selection stays bit-identical to older releases.
		sampler = UniformSampler{}
	}
	if s.Virtual == nil {
		clients := s.Roster.Clients()
		if len(clients) == 0 {
			return nil, fmt.Errorf("fl: round %d: no clients connected", round)
		}
		m := s.Config.ClientsPerRound
		if m <= 0 || m > len(clients) {
			m = len(clients)
		}
		selected := sampler.Sample(round, clients, m, s.rng)
		if len(selected) == 0 {
			return nil, fmt.Errorf("fl: round %d: sampler %s selected no clients", round, sampler.Name())
		}
		return selected, nil
	}
	n := s.Virtual.NumClients()
	if n == 0 {
		return nil, fmt.Errorf("fl: round %d: no clients connected", round)
	}
	is, ok := sampler.(IndexSampler)
	if !ok {
		return nil, fmt.Errorf("fl: round %d: sampler %s cannot drive a virtual roster (no SampleIndices)", round, sampler.Name())
	}
	m := s.Config.ClientsPerRound
	if m <= 0 || m > n {
		m = n
	}
	indices := is.SampleIndices(round, n, m, s.Virtual.NumSamples, s.rng)
	if len(indices) == 0 {
		return nil, fmt.Errorf("fl: round %d: sampler %s selected no clients", round, sampler.Name())
	}
	selected, err := s.Virtual.Lease(round, indices)
	if err != nil {
		return nil, fmt.Errorf("fl: round %d: leasing cohort: %w", round, err)
	}
	if len(selected) != len(indices) {
		return nil, fmt.Errorf("fl: round %d: virtual roster leased %d clients for %d indices", round, len(selected), len(indices))
	}
	return selected, nil
}

// roundResult pairs one selected client's outcome with nothing else; the
// slice index carries the selection order.
type roundResult struct {
	update Update
	err    error
}

func (s *Server) runRound(ctx context.Context, round int) (RoundStats, error) {
	ctx, sp := obs.Start(ctx, "fl.round", obs.Int("round", round))
	defer sp.End()
	obsRounds.Inc()
	selected, err := s.selectRound(round)
	if err != nil {
		return RoundStats{}, err
	}
	if s.Virtual != nil {
		// The cohort's release runs after Finalize and the applied step, so
		// leased state lives exactly as long as the round that sampled it.
		defer s.Virtual.Release(round, selected)
	}

	spec, err := EncodeModel(s.Model)
	if err != nil {
		return RoundStats{}, fmt.Errorf("fl: round %d: %w", round, err)
	}
	dispatched := spec
	if s.Modifier != nil {
		dispatched, err = s.Modifier.Modify(round, spec)
		if err != nil {
			return RoundStats{}, fmt.Errorf("fl: round %d: dishonest modifier: %w", round, err)
		}
	}

	// Merge runs on the server goroutine only, in selection order: observer
	// taps, failure accounting, and aggregation all see the same
	// deterministic sequence the sequential engine produced, so History is
	// bit-identical for any Workers value. Streaming the merge (folding
	// each result as soon as its selection-order prefix is complete) keeps
	// peak memory near O(model) for streaming aggregators instead of
	// buffering every selected client's gradients.
	agg := s.Aggregator
	if agg == nil {
		agg = NewFedAvgMean()
	}
	agg.Reset()
	stats := RoundStats{Round: round}
	lossSum := 0.0
	var firstErr, mergeErr error
	// merge folds one selection-order result; returning false aborts the
	// round (dispatch stops feeding results and cancels outstanding work).
	merge := func(i int, res roundResult) bool {
		c := selected[i]
		if res.err != nil {
			obsClientFailed.Inc()
			if errors.Is(res.err, context.DeadlineExceeded) {
				obsClientDeadline.Inc()
			}
			if !s.Config.TolerateFailures {
				mergeErr = fmt.Errorf("fl: round %d client %s: %w", round, c.ID(), res.err)
				return false
			}
			if firstErr == nil {
				firstErr = res.err
			}
			stats.Failed = append(stats.Failed, c.ID())
			return true
		}
		update := res.update
		obsClientOK.Inc()
		if s.Observer != nil {
			s.Observer.Observe(round, update)
		}
		stats.Clients = append(stats.Clients, update.ClientID)
		lossSum += update.Loss
		for _, g := range update.Grads {
			stats.UpdateBytes += g.Len()
		}
		if err := agg.Add(update); err != nil {
			mergeErr = fmt.Errorf("fl: round %d: %w", round, err)
			return false
		}
		if s.Config.ReleaseUpdates {
			// Observer and Aggregator have both seen the update; its gradient
			// buffers go back to the pool now instead of at GC's leisure.
			for _, g := range update.Grads {
				g.Release()
			}
		}
		return true
	}

	s.dispatch(ctx, round, selected, dispatched, merge)
	if mergeErr != nil {
		return RoundStats{}, mergeErr
	}
	ok := len(stats.Clients)
	sp.SetAttr(obs.Int("ok", ok), obs.Int("failed", len(stats.Failed)))
	if ok == 0 {
		if s.Config.AllowEmptyRounds {
			// Degrade instead of aborting: record the wiped-out round (the
			// model is untouched) and let the run continue.
			obsEmptyRounds.Inc()
			return stats, nil
		}
		return RoundStats{}, fmt.Errorf("fl: round %d: every selected client failed: %w", round, firstErr)
	}
	stats.MeanLoss = lossSum / float64(ok)

	_, asp := obs.Start(ctx, "fl.aggregate", obs.Int("updates", ok))
	defer asp.End()
	aggregated, err := agg.Finalize()
	if err != nil {
		return RoundStats{}, fmt.Errorf("fl: round %d: %w", round, err)
	}

	// When the dispatched model matches the global architecture, apply the
	// aggregated-gradient step (a dishonest server that swapped the model is
	// only pretending to train; its "update" cannot be applied).
	params := s.Model.Params()
	if gradsMatchParams(params, aggregated) {
		normSq := 0.0
		for i, p := range params {
			g := aggregated[i]
			n := g.L2Norm()
			normSq += n * n
			p.W.AddScaledInPlace(-s.Config.LearningRate, g)
		}
		stats.GradNorm = math.Sqrt(normSq)
	}
	return stats, nil
}

// indexedResult carries one worker's outcome back to the merging goroutine
// tagged with its selection-order position.
type indexedResult struct {
	i   int
	res roundResult
}

// dispatch runs HandleRound for every selected client through a bounded
// worker pool, calling merge(i, result) on the caller's goroutine in strict
// selection order. Results that complete out of order are parked until
// their selection-order prefix is complete, so a streaming Aggregator folds
// each update as early as determinism allows. When merge returns false the
// round is doomed: the sequential path stops dispatching, and the
// concurrent path cancels the clients still in flight (it still drains
// every worker, discarding their results, before returning) — either way
// the merged prefix, and hence the reported error, is identical.
func (s *Server) dispatch(ctx context.Context, round int, selected []Client, spec ModelSpec,
	merge func(int, roundResult) bool) {
	if d := s.Config.RoundDeadline; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	workers := s.Config.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	obsRoundWorkers.Set(float64(workers))
	if workers <= 1 {
		for i, c := range selected {
			u, err := s.handleClient(ctx, round, c, spec)
			if !merge(i, roundResult{update: u, err: err}) {
				return
			}
		}
		return
	}
	roundCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int, len(selected))
	for i := range selected {
		jobs <- i
	}
	close(jobs)
	// Buffered to len(selected): workers never block on delivery, so the
	// merging goroutine below can drain at its own pace without deadlock.
	done := make(chan indexedResult, len(selected))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Skip jobs still queued after the round aborted; a result
				// is delivered regardless so the drain accounting holds.
				if err := roundCtx.Err(); err != nil {
					done <- indexedResult{i: i, res: roundResult{err: err}}
					continue
				}
				u, err := s.handleClient(roundCtx, round, selected[i], spec)
				done <- indexedResult{i: i, res: roundResult{update: u, err: err}}
			}
		}()
	}
	pending := make(map[int]roundResult, workers)
	next := 0
	aborted := false
	for received := 0; received < len(selected); received++ {
		ir := <-done
		if aborted {
			continue
		}
		pending[ir.i] = ir.res
		for res, ok := pending[next]; ok; res, ok = pending[next] {
			delete(pending, next)
			if !merge(next, res) {
				aborted = true
				cancel() // stop training clients for a doomed round
				break
			}
			next++
		}
	}
	wg.Wait()
}

// handleClient runs one selected client's round, wrapped in a span and a
// duration observation when observability is enabled (plain delegation — no
// timestamps, no allocation — when it is not). The span parents under the
// round span carried by ctx, so worker utilization is readable per round.
//
//oasis:allow-walltime measures real client latency for the obs histogram; never feeds results
func (s *Server) handleClient(ctx context.Context, round int, c Client, spec ModelSpec) (Update, error) {
	if !obs.Enabled() {
		return c.HandleRound(ctx, RoundRequest{Round: round, Model: spec})
	}
	_, sp := obs.Start(ctx, "fl.client", obs.String("client", c.ID()))
	t0 := time.Now()
	u, err := c.HandleRound(ctx, RoundRequest{Round: round, Model: spec})
	obsClientMS.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	sp.SetAttr(obs.Bool("ok", err == nil))
	sp.End()
	return u, err
}

// gradsMatchParams reports whether every aggregated tensor matches the
// corresponding global parameter's shape.
func gradsMatchParams(params []*nn.Param, sum []*tensor.Tensor) bool {
	if len(params) != len(sum) {
		return false
	}
	for i, p := range params {
		if !p.W.SameShape(sum[i]) {
			return false
		}
	}
	return true
}
