package fl

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/nn"
)

// startTCPClients dials n local clients into the server and returns a
// cleanup that cancels them and waits for their loops to exit.
func startTCPClients(t *testing.T, addr string, n int) func() {
	t.Helper()
	shards := testShards(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		client := NewLocalClient(fmt.Sprintf("tcp-c%d", i), shards[i], 8, nn.RandSource(20, uint64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ServeTCP(ctx, addr, client); err != nil {
				t.Errorf("ServeTCP: %v", err)
			}
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

func TestTCPEndToEnd(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", TCPServerOptions{ExchangeTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := startTCPClients(t, srv.Addr(), 3)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitForClients(ctx, 3); err != nil {
		t.Fatal(err)
	}
	server := NewServer(ServerConfig{Rounds: 4, LearningRate: 0.05, Seed: 8}, testModel(nil), srv)
	hist, err := server.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 4 {
		t.Fatalf("%d rounds", len(hist.Rounds))
	}
	for _, r := range hist.Rounds {
		if len(r.Clients) != 3 {
			t.Errorf("round %d had %d clients", r.Round, len(r.Clients))
		}
		if r.UpdateBytes == 0 {
			t.Errorf("round %d reported empty payloads", r.Round)
		}
	}
}

func TestTCPGracefulGoodbye(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", TCPServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shards := testShards(t, 1)
	client := NewLocalClient("solo", shards[0], 8, nn.RandSource(21, 1))
	done := make(chan error, 1)
	go func() {
		done <- ServeTCP(context.Background(), srv.Addr(), client)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.WaitForClients(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("client exited with error after goodbye: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not exit after server goodbye")
	}
}

func TestTCPClientContextCancel(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", TCPServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	shards := testShards(t, 1)
	client := NewLocalClient("cancelme", shards[0], 8, nn.RandSource(22, 1))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- ServeTCP(ctx, srv.Addr(), client)
	}()
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := srv.WaitForClients(wctx, 1); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("cancelled client returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not exit on context cancel")
	}
}

func TestTCPClientErrorSurfacesAtServer(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", TCPServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// A client whose shard is too small to satisfy its batch size errors
	// on every round.
	shards := testShards(t, 1)
	client := NewLocalClient("broken", shards[0], 8, nn.RandSource(23, 1))
	client.BatchSize = 8
	client.Shard = shards[0]
	client.Pre = errPre{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = ServeTCP(ctx, srv.Addr(), client) }()
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := srv.WaitForClients(wctx, 1); err != nil {
		t.Fatal(err)
	}
	server := NewServer(ServerConfig{Rounds: 1}, testModel(nil), srv)
	if _, err := server.Run(context.Background()); err == nil {
		t.Error("client-side error did not surface at the server")
	}
}

type errPre struct{}

func (errPre) Apply(*data.Batch) (*data.Batch, error) { return nil, fmt.Errorf("defense exploded") }
func (errPre) Name() string                           { return "errpre" }

func TestTCPDuplicateClientIDReplacesOld(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", TCPServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	shards := testShards(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		client := NewLocalClient("same-id", shards[i], 8, nn.RandSource(24, uint64(i)))
		go func() { _ = ServeTCP(ctx, srv.Addr(), client) }()
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := srv.WaitForClients(wctx, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let both handshakes land
	if got := len(srv.Clients()); got != 1 {
		t.Errorf("%d clients registered for one ID", got)
	}
}
