package fl

import (
	"testing"

	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

func randInput(rng interface{ NormFloat64() float64 }, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return x
}

// TestModelSpecRoundTripMLP checks that an encoded model decodes to a
// functionally identical network.
func TestModelSpecRoundTripMLP(t *testing.T) {
	rng := nn.RandSource(1, 1)
	net := nn.NewSequential(
		nn.NewLinear("fc1", 6, 8, rng),
		nn.NewReLU("relu"),
		nn.NewLinear("fc2", 8, 4, rng),
	)
	spec, err := EncodeModel(net)
	if err != nil {
		t.Fatal(err)
	}
	if spec.InputKind != "flat" {
		t.Errorf("InputKind = %q, want flat", spec.InputKind)
	}
	back, err := DecodeModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 3, 6)
	if !net.Forward(x, false).EqualApprox(back.Forward(x, false), 1e-12) {
		t.Error("decoded MLP differs from original")
	}
}

// TestModelSpecRoundTripResNet covers every layer kind the codec supports,
// including nested residual blocks with projections and batch-norm state.
func TestModelSpecRoundTripResNet(t *testing.T) {
	rng := nn.RandSource(2, 1)
	net := nn.NewResNetLite(nn.ResNetLiteConfig{InChannels: 3, NumClasses: 5, Width: 4}, rng)
	// Move batch-norm running stats off their defaults first.
	x4 := randInput(rng, 2, 3, 8, 8)
	net.Forward(x4, true)

	spec, err := EncodeModel(net)
	if err != nil {
		t.Fatal(err)
	}
	if spec.InputKind != "image" {
		t.Errorf("InputKind = %q, want image", spec.InputKind)
	}
	back, err := DecodeModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Forward(x4, false).EqualApprox(back.Forward(x4, false), 1e-10) {
		t.Error("decoded ResNet-lite differs from original (inference mode)")
	}
	// Gradients must match too: the attacks depend on exact gradients of
	// the dispatched model.
	lossFn := nn.SoftmaxCrossEntropy{}
	labels := []int{0, 3}
	run := func(m *nn.Sequential) []*tensor.Tensor {
		m.ZeroGrad()
		out := m.Forward(x4, true)
		_, g := lossFn.Compute(out, labels)
		m.Backward(g)
		return m.Gradients()
	}
	ga, gb := run(net), run(back)
	if len(ga) != len(gb) {
		t.Fatalf("gradient counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if !ga[i].EqualApprox(gb[i], 1e-9) {
			t.Fatalf("gradient %d differs after round trip", i)
		}
	}
}

func TestModelSpecRoundTripPooling(t *testing.T) {
	rng := nn.RandSource(3, 1)
	net := nn.NewSequential(
		nn.NewConv2D("c", 1, 2, 3, 1, 1, rng),
		nn.NewMaxPool2D("mp", 2),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", 2*3*3, 2, rng),
	)
	spec, err := EncodeModel(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 2, 1, 6, 6)
	if !net.Forward(x, false).EqualApprox(back.Forward(x, false), 1e-12) {
		t.Error("decoded pooling net differs")
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := DecodeModel(ModelSpec{Layers: []LayerSpec{{Kind: "quantum"}}}); err == nil {
		t.Error("unknown layer kind accepted")
	}
}

func TestDecodeRejectsCorruptConv(t *testing.T) {
	spec := LayerSpec{Kind: "conv", Name: "c", InC: 2, OutC: 2, K: 3, Stride: 1, Pad: 1,
		W: tensor.New(1, 1, 1, 1), B: tensor.New(2)}
	if _, err := decodeLayer(spec); err == nil {
		t.Error("conv with mismatched weight shape accepted")
	}
	spec.W = nil
	if _, err := decodeLayer(spec); err == nil {
		t.Error("conv without parameters accepted")
	}
}

func TestDecodeRejectsCorruptBatchNorm(t *testing.T) {
	spec := LayerSpec{Kind: "batchnorm", Name: "bn", Channels: 3,
		Gamma: tensor.New(2), Beta: tensor.New(3),
		RunningMean: make([]float64, 3), RunningVar: make([]float64, 3)}
	if _, err := decodeLayer(spec); err == nil {
		t.Error("batchnorm with wrong gamma shape accepted")
	}
}

// TestMaliciousSwapIsExpressible is the threat-model property: a dishonest
// server can replace the whole architecture with a different one and the
// client will faithfully run it.
func TestMaliciousSwapIsExpressible(t *testing.T) {
	rng := nn.RandSource(4, 1)
	honest := nn.NewResNetLite(nn.ResNetLiteConfig{InChannels: 3, NumClasses: 4, Width: 4}, rng)
	honestSpec, err := EncodeModel(honest)
	if err != nil {
		t.Fatal(err)
	}
	malicious := nn.NewSequential(
		nn.NewLinear("malicious", 3*8*8, 32, rng),
		nn.NewReLU("r"),
		nn.NewLinear("head", 32, 4, rng),
	)
	malSpec, err := EncodeModel(malicious)
	if err != nil {
		t.Fatal(err)
	}
	if honestSpec.InputKind == malSpec.InputKind {
		t.Error("swap should even change the input kind (image → flat)")
	}
	back, err := DecodeModel(malSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(back.Layers); got != 3 {
		t.Errorf("decoded malicious model has %d layers", got)
	}
}

func TestModelSpecRoundTripExtraLayers(t *testing.T) {
	rng := nn.RandSource(5, 1)
	drop, err := nn.NewDropout("drop", 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewSequential(
		nn.NewLinear("fc1", 6, 8, rng),
		nn.NewSigmoid("sig"),
		nn.NewTanh("tanh"),
		drop,
		nn.NewLinear("fc2", 8, 3, rng),
	)
	spec, err := EncodeModel(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Inference forward must agree exactly (dropout is identity there).
	x := randInput(rng, 4, 6)
	if !net.Forward(x, false).EqualApprox(back.Forward(x, false), 1e-12) {
		t.Error("decoded net with extra layers differs in inference mode")
	}
	// The dropout probability must survive the round trip.
	decoded, ok := back.Layers[3].(*nn.Dropout)
	if !ok {
		t.Fatalf("layer 3 decoded as %T", back.Layers[3])
	}
	if decoded.P != 0.25 {
		t.Errorf("dropout P = %g after round trip", decoded.P)
	}
}
