package perf

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestCalibratePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration takes ~100ms of spin")
	}
	ms := Calibrate()
	if ms <= 0 {
		t.Fatalf("Calibrate() = %v, want > 0", ms)
	}
}

func TestGatePassesIdenticalReports(t *testing.T) {
	r := &Report{Schema: Schema, Kind: "tensor", Entries: []Entry{
		{Name: "a", Ratio: 10},
		{Name: "b", Ratio: 2.5},
	}}
	results, err := Gate(r, r, 0.15)
	if err != nil {
		t.Fatalf("identical reports failed the gate: %v", err)
	}
	for _, g := range results {
		if g.Failed || g.Delta != 0 {
			t.Fatalf("identical entry flagged: %+v", g)
		}
	}
}

func TestGateCatchesRegression(t *testing.T) {
	base := &Report{Entries: []Entry{{Name: "a", Ratio: 10}, {Name: "b", Ratio: 4}}}
	fresh := &Report{Entries: []Entry{{Name: "a", Ratio: 11.6}, {Name: "b", Ratio: 4.1}}}
	results, err := Gate(base, fresh, 0.15)
	if err == nil {
		t.Fatal("16% regression passed a 15% gate")
	}
	if !results[0].Failed || results[1].Failed {
		t.Fatalf("wrong entries flagged: %+v", results)
	}
	if !strings.Contains(err.Error(), "a") {
		t.Fatalf("error does not name the regressed entry: %v", err)
	}
}

func TestGateAllowsSpeedupAndWithinTolerance(t *testing.T) {
	base := &Report{Entries: []Entry{{Name: "a", Ratio: 10}, {Name: "b", Ratio: 4}}}
	fresh := &Report{Entries: []Entry{{Name: "a", Ratio: 5}, {Name: "b", Ratio: 4.5}}}
	if _, err := Gate(base, fresh, 0.15); err != nil {
		t.Fatalf("speedup + 12.5%% slip failed the gate: %v", err)
	}
}

func TestGateSkipsInformationalEntries(t *testing.T) {
	base := &Report{Entries: []Entry{
		{Name: "alu", Ratio: 10},
		{Name: "dram", Ratio: 3, Informational: true},
	}}
	fresh := &Report{Entries: []Entry{
		{Name: "alu", Ratio: 10.2},
		{Name: "dram", Ratio: 9}, // 3x slower: recorded, never fatal
	}}
	results, err := Gate(base, fresh, 0.15)
	if err != nil {
		t.Fatalf("informational blow-up failed the gate: %v", err)
	}
	if !results[1].Info || results[1].Failed {
		t.Fatalf("informational entry mishandled: %+v", results[1])
	}
}

// TestGateTreatsSingleCPUAsInformational pins the cpus:1 rule from either
// direction: a report measured on a single-core machine (baseline or fresh)
// turns every comparison into trajectory information, so a meaningless
// time-sliced ratio can never fail the gate — but a genuinely missing entry
// still does.
func TestGateTreatsSingleCPUAsInformational(t *testing.T) {
	multi := &Report{CPUs: 4, Entries: []Entry{{Name: "a", Ratio: 10}}}
	single := &Report{CPUs: 1, SingleCPU: true, Entries: []Entry{
		{Name: "a", Ratio: 20, Informational: true}, // 2x "regression"
	}}
	for _, tc := range []struct {
		name        string
		base, fresh *Report
	}{
		{"single-cpu fresh", multi, single},
		{"single-cpu baseline", single, multi},
	} {
		results, err := Gate(tc.base, tc.fresh, 0.15)
		if err != nil {
			t.Fatalf("%s: gate failed on a non-authoritative report: %v", tc.name, err)
		}
		if !results[0].Info || results[0].Failed {
			t.Fatalf("%s: entry not downgraded to informational: %+v", tc.name, results[0])
		}
	}
	missing := &Report{CPUs: 4, Entries: []Entry{{Name: "other", Ratio: 1}}}
	if _, err := Gate(single, missing, 0.15); err == nil {
		t.Fatal("missing entry passed the gate because the baseline was single-CPU")
	}
}

// TestSuitesRecordSingleCPU checks the suites stamp the flag consistently
// with the machine they ran on (true on 1-core boxes, false otherwise), and
// that the entries inherit it as Informational.
func TestSuitesRecordSingleCPU(t *testing.T) {
	rep := newReport("tensor", 1)
	want := runtime.NumCPU() < 2
	if rep.SingleCPU != want {
		t.Fatalf("SingleCPU = %v on a %d-CPU machine", rep.SingleCPU, runtime.NumCPU())
	}
}

func TestGateFailsOnMissingEntry(t *testing.T) {
	base := &Report{Entries: []Entry{{Name: "a", Ratio: 10}}}
	fresh := &Report{Entries: []Entry{{Name: "other", Ratio: 1}}}
	if _, err := Gate(base, fresh, 0.15); err == nil {
		t.Fatal("missing baseline entry passed the gate")
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := &Report{Schema: Schema, Kind: "tensor", GOOS: "linux", GOARCH: "amd64",
		CPUs: 4, Repeats: 5, CalibMS: 3.25,
		Entries: []Entry{{Name: "k", SerialMS: 40.1, Ratio: 12.338, ParallelMS: 11.0, GFLOPS: 4.9}}}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CalibMS != r.CalibMS || len(got.Entries) != 1 || got.Entries[0] != r.Entries[0] {
		t.Fatalf("round trip mismatch: %+v != %+v", got, r)
	}
}

func TestLoadRejectsSchemaMismatch(t *testing.T) {
	r := &Report{Schema: Schema + 1, Kind: "tensor"}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

// TestSuitesProduceGateableReports runs tiny-repeat suites end to end and
// gates them against themselves; skipped under -short (the round suite runs
// the cross-device-1k preset twice per measurement mode).
func TestSuitesProduceGateableReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite measurement")
	}
	tr := TensorSuite(1)
	if len(tr.Entries) == 0 || tr.CalibMS <= 0 {
		t.Fatalf("tensor suite empty: %+v", tr)
	}
	for _, e := range tr.Entries {
		if e.SerialMS <= 0 || e.Ratio <= 0 {
			t.Fatalf("non-positive measurement: %+v", e)
		}
	}
	if _, err := Gate(tr, tr, 0.15); err != nil {
		t.Fatalf("self-gate failed: %v", err)
	}
	rr, err := RoundSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Entries) != 1 || rr.Entries[0].SerialMS <= 0 {
		t.Fatalf("round suite malformed: %+v", rr)
	}
}
