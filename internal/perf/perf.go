// Package perf measures the repo's hot-path performance trajectory and gates
// regressions against committed baselines.
//
// Three suites are recorded, each as a JSON report committed at the repo
// root:
//
//   - BENCH_tensor.json — the tensor kernels behind every FL round (matmul
//     family, transpose, the fused conv lowering), at the malicious-layer
//     shapes the paper's attacks use.
//   - BENCH_round.json — the full round engine on the cross-device-1k preset
//     (quick cap), the end-to-end number a kernel regression must not hide
//     behind.
//   - BENCH_sweep.json — the sweep grid engine on a fixed 2×2×2 quick grid
//     (SweepSuite), covering grid dispatch, per-job scenario
//     materialization, and the deterministic merge on top of the round
//     engine.
//
// Cross-hardware comparability: raw wall-clock is meaningless between the
// machine that committed a baseline and the CI runner that checks it. Every
// gated measurement is therefore (a) taken serially (tensor.SetWorkers(1)),
// so core count drops out, and (b) normalized by a scalar calibration
// workload measured in the same process, so clock speed mostly drops out.
// The gate compares these calibration-normalized ratios with a tolerance
// (15% in CI) that absorbs residual microarchitectural skew. Parallel
// wall-clock at NumCPU workers is recorded alongside as trajectory
// information but is not gated.
//
// Refreshing baselines: run `go run ./cmd/oasis-bench -round -sweep` at the
// repo root and commit the rewritten BENCH_round.json / BENCH_tensor.json /
// BENCH_sweep.json. Do this whenever a PR intentionally shifts kernel,
// round-engine, or sweep-engine cost, with the measured before/after in the
// PR description.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/sim"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Schema identifies the report layout; bump when fields change meaning.
const Schema = 1

// Entry is one gated measurement.
type Entry struct {
	Name string `json:"name"`
	// SerialMS is the best-of-N serial wall-clock in milliseconds.
	SerialMS float64 `json:"serial_ms"`
	// Ratio is SerialMS divided by the report's CalibMS — the
	// hardware-normalized number the gate compares.
	Ratio float64 `json:"ratio"`
	// ParallelMS is the best-of-N wall-clock at NumCPU workers.
	// Informational only (depends on the machine's core count).
	ParallelMS float64 `json:"parallel_ms,omitempty"`
	// GFLOPS is the serial arithmetic throughput, when the workload's FLOP
	// count is known. Informational.
	GFLOPS float64 `json:"gflops,omitempty"`
	// Informational entries are recorded and printed in the trajectory but
	// never fail the gate. Used for memory-bandwidth-bound workloads
	// (Transpose2D): the ALU-bound calibration cannot normalize DRAM
	// bandwidth, so their ratio is not comparable across machines.
	Informational bool `json:"informational,omitempty"`
}

// Report is one committed benchmark file.
type Report struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"` // "tensor" or "round"
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// SingleCPU records that the measuring machine had fewer than two cores.
	// Such runs are not authoritative: the lone core time-slices the measured
	// workload against GC and OS background work, and the "parallel" legs are
	// pure scheduling overhead (a committed 1-CPU baseline showed parallel_ms
	// above serial_ms). Every entry of a single-CPU report is marked
	// informational, and the gate never fails against or from one.
	SingleCPU bool    `json:"single_cpu,omitempty"`
	Repeats   int     `json:"repeats"`
	CalibMS   float64 `json:"calib_ms"`
	Entries   []Entry `json:"entries"`
}

// sink defeats dead-code elimination across all workloads.
var sink float64

// Calibrate measures the scalar calibration workload: a fixed-size 4-way
// unrolled dot product, repeated, best of seven. Its runtime tracks the
// machine's scalar floating-point speed — the same resource the serial
// kernels are bound by — so kernel/calibration ratios transfer across
// machines far better than raw milliseconds.
func Calibrate() float64 {
	const n = 4096
	const iters = 2000
	a := make([]float64, n)
	b := make([]float64, n)
	rng := rand.New(rand.NewPCG(2024, 7))
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	// Sampled under the same minBudget floor as the kernels: the calibration
	// is the denominator of every gated ratio, so a single slow sampling
	// window here would shift the whole report.
	return bestOf(7, func() {
		var acc float64
		for it := 0; it < iters; it++ {
			var s0, s1, s2, s3 float64
			for i := 0; i+4 <= n; i += 4 {
				s0 += a[i] * b[i]
				s1 += a[i+1] * b[i+1]
				s2 += a[i+2] * b[i+2]
				s3 += a[i+3] * b[i+3]
			}
			acc += s0 + s1 + s2 + s3
		}
		sink += acc
	})
}

// kernelCase is one tensor-suite workload.
type kernelCase struct {
	name  string
	flops float64 // per run; 0 if not meaningful
	info  bool    // memory-bound: record but do not gate
	run   func()
}

// tensorCases builds the kernel workloads at the shapes the paper's
// malicious fully-connected layers and the CNN lowering actually hit.
func tensorCases() []kernelCase {
	rng := rand.New(rand.NewPCG(11, 22))
	newRand := func(shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		t.FillRandn(rng, 1)
		return t
	}
	const m, k, n = 64, 3072, 500
	a := newRand(m, k)  // batch activations [B, d]
	bT := newRand(n, k) // malicious layer weights [n, d]
	b := newRand(k, n)  // same, untransposed layout
	aT := newRand(k, m) // gradient layout for ∂W accumulation
	tr := newRand(768, 3072)

	// Conv lowering at the CIFAR-ish shape the sim presets train. The batch
	// is sized so one run takes ~10ms serial: short runs bounce enough
	// between scheduler ticks to trip a 15% gate on pure noise.
	const cb, cc, ch, cw, outC, ck = 32, 3, 32, 32, 16, 3
	x := newRand(cb, cc, ch, cw)
	wmat := newRand(outC, cc*ck*ck)
	bias := make([]float64, outC)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	oh := ch + 2 - ck + 1
	ow := cw + 2 - ck + 1
	cols := tensor.New(cb*oh*ow, cc*ck*ck)

	return []kernelCase{
		{name: "MatMul_64x3072x500", flops: 2 * m * k * n, run: func() {
			o := tensor.MatMul(a, b)
			sink += o.Data()[0]
		}},
		{name: "MatMulTransB_64x3072x500", flops: 2 * m * k * n, run: func() {
			o := tensor.MatMulTransB(a, bT)
			sink += o.Data()[0]
		}},
		{name: "MatMulTransA_64x3072x500", flops: 2 * m * k * n, run: func() {
			o := tensor.MatMulTransA(aT, b)
			sink += o.Data()[0]
		}},
		{name: "Transpose2D_768x3072", info: true, run: func() {
			o := tensor.Transpose2D(tr)
			sink += o.Data()[0]
		}},
		{name: "ConvLowering_32x3x32x32_k3x16", flops: float64(2*cb*oh*ow*cc*ck*ck*outC) + float64(cb*oh*ow*cc*ck*ck), run: func() {
			tensor.Im2ColInto(cols, x, ck, ck, 1, 1)
			o := tensor.ConvOut(cols, wmat, bias, cb, oh, ow)
			sink += o.Data()[0]
			o.Release()
		}},
	}
}

// bestOf runs f at least repeats times — and keeps going until minBudget of
// wall-clock has been spent — returning the fastest run in ms. The budget
// floor matters for the cheap workloads: a handful of ~10ms samples on a
// busy machine can all land on noisy ticks, and the gate would read the
// noise as a regression.
const minBudget = 250 * time.Millisecond

func bestOf(repeats int, f func()) float64 {
	return bestOfBudget(repeats, minBudget, f)
}

func bestOfBudget(repeats int, budget time.Duration, f func()) float64 {
	// Pay down any GC debt from earlier workloads before timing starts so a
	// deferred collection doesn't land inside every sample of one suite.
	runtime.GC()
	best := 0.0
	start := time.Now()
	for i := 0; i < repeats || time.Since(start) < budget; i++ {
		t0 := time.Now()
		f()
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		if best == 0 || ms < best {
			best = ms
		}
	}
	return best
}

// TensorSuite measures the kernel workloads, serial (gated) and at NumCPU
// workers (informational). repeats < 1 defaults to 5.
func TensorSuite(repeats int) *Report {
	if repeats < 1 {
		repeats = 5
	}
	rep := newReport("tensor", repeats)
	for _, kc := range tensorCases() {
		prev := tensor.SetWorkers(1)
		serial := bestOf(repeats, kc.run)
		tensor.SetWorkers(runtime.NumCPU())
		par := bestOf(repeats, kc.run)
		tensor.SetWorkers(prev)
		e := Entry{
			Name:          kc.name,
			SerialMS:      round3(serial),
			Ratio:         round3(serial / rep.CalibMS),
			ParallelMS:    round3(par),
			Informational: kc.info || rep.SingleCPU,
		}
		if kc.flops > 0 {
			e.GFLOPS = round3(kc.flops / (serial * 1e6))
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep
}

// RoundSuite measures the full round engine on the cross-device-1k preset
// under the quick cap, serial (gated) and at NumCPU client workers
// (informational). repeats < 1 defaults to 3.
func RoundSuite(repeats int) (*Report, error) {
	if repeats < 1 {
		repeats = 3
	}
	sc, ok := sim.Preset("cross-device-1k")
	if !ok {
		return nil, fmt.Errorf("perf: preset cross-device-1k not registered")
	}
	rep := newReport("round", repeats)
	runOnce := func(workers int) error {
		_, err := sim.Run(sc, sim.Options{Quick: true, Workers: workers})
		return err
	}
	// Warm the tensor arena and page caches once before timing.
	if err := runOnce(1); err != nil {
		return nil, err
	}
	var runErr error
	timed := func(workers int) float64 {
		// The round engine churns allocation, goroutines and GC, so single
		// runs spread much wider than the pure kernels; give its best-of a
		// bigger window to find a clean sample.
		return bestOfBudget(repeats, 4*minBudget, func() {
			if err := runOnce(workers); err != nil && runErr == nil {
				runErr = err
			}
		})
	}
	prev := tensor.SetWorkers(1)
	serial := timed(1)
	tensor.SetWorkers(runtime.NumCPU())
	par := timed(runtime.NumCPU())
	tensor.SetWorkers(prev)
	if runErr != nil {
		return nil, runErr
	}
	rep.Entries = append(rep.Entries, Entry{
		Name:          "round/cross-device-1k/quick",
		SerialMS:      round3(serial),
		Ratio:         round3(serial / rep.CalibMS),
		ParallelMS:    round3(par),
		Informational: rep.SingleCPU,
	})
	return rep, nil
}

func newReport(kind string, repeats int) *Report {
	return &Report{
		Schema:    Schema,
		Kind:      kind,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		SingleCPU: runtime.NumCPU() < 2,
		Repeats:   repeats,
		CalibMS:   round3(Calibrate()),
	}
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// Write stores the report as indented JSON.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a committed report.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: %s: schema %d, want %d (refresh the baseline)", path, r.Schema, Schema)
	}
	return &r, nil
}

// GateResult is the trajectory comparison for one entry.
type GateResult struct {
	Name     string
	Baseline float64 // committed ratio
	Fresh    float64 // measured ratio
	Delta    float64 // fractional change, +0.10 = 10% slower
	Info     bool    // informational entry: trajectory only, never fails
	Failed   bool
}

// String renders one trajectory line for CI logs.
func (g GateResult) String() string {
	verdict := "ok"
	switch {
	case g.Failed:
		verdict = "FAIL"
	case g.Info:
		verdict = "info"
	}
	return fmt.Sprintf("%-36s baseline ratio %8.3f  fresh %8.3f  delta %+6.1f%%  %s",
		g.Name, g.Baseline, g.Fresh, g.Delta*100, verdict)
}

// Gate compares a fresh report against the committed baseline: every baseline
// entry must be present and its calibration-normalized ratio must not exceed
// the baseline by more than tol (0.15 = 15%). Speedups always pass; they show
// up as negative deltas in the trajectory so improvements get recorded in the
// next baseline refresh. Returns per-entry results and an error if any entry
// failed or disappeared.
//
// Single-CPU reports are never authoritative on either side of the
// comparison: when the baseline or the fresh report was measured with fewer
// than two cores, every entry is trajectory information only. (Entry-level
// Informational flags carry the same meaning for older baselines that predate
// the report-level field.)
func Gate(baseline, fresh *Report, tol float64) ([]GateResult, error) {
	freshBy := map[string]Entry{}
	for _, e := range fresh.Entries {
		freshBy[e.Name] = e
	}
	infoOnly := baseline.SingleCPU || fresh.SingleCPU
	var results []GateResult
	var failed []string
	for _, base := range baseline.Entries {
		f, ok := freshBy[base.Name]
		if !ok {
			results = append(results, GateResult{Name: base.Name, Baseline: base.Ratio, Failed: true})
			failed = append(failed, base.Name+" (missing)")
			continue
		}
		g := GateResult{
			Name:     base.Name,
			Baseline: base.Ratio,
			Fresh:    f.Ratio,
			Delta:    f.Ratio/base.Ratio - 1,
			Info:     base.Informational || f.Informational || infoOnly,
		}
		g.Failed = !g.Info && g.Delta > tol
		if g.Failed {
			failed = append(failed, base.Name)
		}
		results = append(results, g)
	}
	if len(failed) > 0 {
		return results, fmt.Errorf("perf: %d entr%s regressed beyond %.0f%%: %v",
			len(failed), plural(len(failed)), tol*100, failed)
	}
	return results, nil
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
