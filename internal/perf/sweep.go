package perf

import (
	"bytes"
	"fmt"
	"runtime"

	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/tensor"
)

// sweepSuiteConfig is the fixed grid the sweep trajectory measures: a 2×2
// grid (one imprint-family and one inversion-family attack against the
// undefended baseline and a gradient defense) at two replicate seeds, quick
// cap, fully serial inside each cell. Small enough for CI, large enough
// (8 scenario runs) that grid-level dispatch, merge, and per-job scenario
// materialization all show up in the number.
func sweepSuiteConfig() experiments.SweepConfig {
	return experiments.SweepConfig{
		Attacks:    []string{"rtf", "qbi"},
		Defenses:   []string{"none", "prune:0.3"},
		Replicates: 2,
		Workers:    1,
		Quick:      true,
	}
}

// SweepSuite measures the sweep grid engine end to end on the fixed 2×2×2
// grid: serial (CellWorkers 1, gated) and at cell-level parallelism
// (informational). Tensor workers stay at 1 in both legs so the parallel
// number isolates grid-level scaling. The two legs' report JSON is
// byte-compared — the determinism contract is asserted on every benchmark
// run, not just in tests. repeats < 1 defaults to 3.
func SweepSuite(repeats int) (*Report, error) {
	if repeats < 1 {
		repeats = 3
	}
	cfg := sweepSuiteConfig()
	rep := newReport("sweep", repeats)
	var runErr error
	var lastJSON []byte
	runOnce := func(cellWorkers int) {
		cfg.CellWorkers = cellWorkers
		report, err := experiments.RunSweep(cfg)
		if err != nil {
			if runErr == nil {
				runErr = err
			}
			return
		}
		if lastJSON, err = report.JSON(); err != nil && runErr == nil {
			runErr = err
		}
	}
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	// Warm arenas and page caches once before timing, like RoundSuite.
	runOnce(1)
	if runErr != nil {
		return nil, runErr
	}
	// The grid engine spreads like the round engine (it is 8 round-engine
	// runs), so give its best-of the same enlarged sampling window.
	serial := bestOfBudget(repeats, 4*minBudget, func() { runOnce(1) })
	serialJSON := lastJSON
	par := bestOfBudget(repeats, 4*minBudget, func() { runOnce(max(2, runtime.NumCPU())) })
	if runErr != nil {
		return nil, runErr
	}
	if !bytes.Equal(serialJSON, lastJSON) {
		return nil, fmt.Errorf("perf: sweep report JSON diverges between cell-workers 1 and %d", max(2, runtime.NumCPU()))
	}
	rep.Entries = append(rep.Entries, Entry{
		Name:          "sweep/rtf,qbi×none,prune/quick",
		SerialMS:      round3(serial),
		Ratio:         round3(serial / rep.CalibMS),
		ParallelMS:    round3(par),
		Informational: rep.SingleCPU,
	})
	return rep, nil
}
