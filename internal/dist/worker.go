package dist

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/obs"
	"github.com/oasisfl/oasis/internal/sim"
)

// WorkerConfig shapes one worker process of a distributed sweep.
type WorkerConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// ID names the worker in coordinator logs; empty derives "<host>-<pid>".
	ID string
	// Attempts bounds consecutive dial/session failures before giving up.
	// Zero means 10. A successful lease resets the count.
	Attempts int
	// BaseBackoff is the first retry delay; it doubles per consecutive
	// failure up to MaxBackoff. Zero means 100ms base, 5s cap. The schedule
	// is deterministic — no jitter — so tests (and operators) can predict
	// exactly when attempt N lands.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Workers overrides the per-cell simulation parallelism carried in each
	// lease; zero defers to the lease (and the lease's zero defers to
	// sim.Options' own default).
	Workers int
	// ExchangeTimeout bounds one non-blocking protocol exchange (dial,
	// hello, result write). Zero means 30 seconds.
	ExchangeTimeout time.Duration
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Backoff is the worker's retry schedule: base<<(attempt-1) capped at max,
// for attempt ≥ 1. Deterministic by design — the dist tests assert exact
// delays, and a jittered schedule buys nothing on a localhost fleet this
// small.
func Backoff(base, maxDelay time.Duration, attempt int) time.Duration {
	if attempt < 1 {
		return 0
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxDelay {
			return maxDelay
		}
	}
	return min(d, maxDelay)
}

// RunWorker dials the coordinator and serves leases until the coordinator
// says goodbye (returns nil), ctx ends, or Attempts consecutive failures
// exhaust the backoff schedule. Dial refusals, broken sessions, and send
// failures all land in the same retry loop; a result the worker could not
// deliver is simply dropped — lease-timeout expiry re-queues the job, and
// the eventual duplicate merges idempotently.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 10
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.ExchangeTimeout <= 0 {
		cfg.ExchangeTimeout = 30 * time.Second
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "dist: worker %s: "+format+"\n", append([]any{cfg.ID}, args...)...)
		}
	}
	attempt := 0
	for {
		done, err := workerSession(ctx, cfg, logf)
		if done {
			return err
		}
		if err == errSessionProgress {
			// A session that completed leases earned a fresh failure budget.
			attempt = 0
		}
		attempt++
		if attempt >= cfg.Attempts {
			return fmt.Errorf("dist: worker %s: giving up after %d attempts: %w", cfg.ID, attempt, err)
		}
		obsWorkerRetries.Inc()
		delay := Backoff(cfg.BaseBackoff, cfg.MaxBackoff, attempt)
		logf("attempt %d failed (%v); retrying in %v", attempt, err, delay)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// errSessionProgress tags a session that broke after completing at least one
// lease: the coordinator is real and reachable, so the failure budget resets.
var errSessionProgress = fmt.Errorf("session made progress before failing")

// workerSession runs one dial→hello→lease-loop session. done=true means
// RunWorker should return err as-is (goodbye or cancellation); done=false
// means retry with backoff.
//
//oasis:allow-walltime connection deadlines against a remote peer are real-time by design
func workerSession(ctx context.Context, cfg WorkerConfig, logf func(string, ...any)) (done bool, err error) {
	if ctx.Err() != nil {
		return true, ctx.Err()
	}
	d := net.Dialer{Timeout: cfg.ExchangeTimeout}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		return false, err
	}
	defer conn.Close()
	// Cancellation mid-decode: poison the conn so blocked reads return.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(cfg.ExchangeTimeout))
	if err := enc.Encode(wireHello{WorkerID: cfg.ID}); err != nil {
		return ctx.Err() != nil, firstErr(ctx.Err(), err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	ran := 0
	for {
		// Waiting for a lease can legitimately take as long as the rest of
		// the grid: no read deadline here — cancellation poisons the conn.
		lctx, lease := obs.Start(ctx, "dist.lease", obs.String("coordinator", cfg.Addr))
		var msg wireCoordMsg
		if err := dec.Decode(&msg); err != nil {
			lease.SetAttr(obs.Bool("ok", false))
			lease.End()
			if ctx.Err() != nil {
				return true, ctx.Err()
			}
			if ran > 0 {
				return false, errSessionProgress
			}
			return false, err
		}
		if msg.Goodbye || msg.Lease == nil {
			lease.SetAttr(obs.Bool("goodbye", true))
			lease.End()
			logf("goodbye after %d jobs", ran)
			return true, nil
		}
		l := *msg.Lease
		lease.SetAttr(obs.Int("job", l.Job.ID), obs.String("attack", l.Job.Attack),
			obs.String("defense", l.Job.Defense))
		lease.End()
		obsWorkerLeases.Inc()
		workers := l.Workers
		if cfg.Workers > 0 {
			workers = cfg.Workers
		}
		cctx, cell := obs.Start(lctx, "dist.cell", obs.Int("job", l.Job.ID))
		res := experiments.RunSweepJob(cctx, l.Job, l.Scenario, sim.Options{Quick: l.Quick, Workers: workers})
		cell.SetAttr(obs.Bool("ok", res.Err == ""))
		cell.End()
		ran++
		logf("job %d (%s × %s, seed %d) done", l.Job.ID, l.Job.Attack, l.Job.Defense, l.Job.Seed)
		_ = conn.SetWriteDeadline(time.Now().Add(cfg.ExchangeTimeout))
		if err := enc.Encode(wireResult{Result: res}); err != nil {
			if ctx.Err() != nil {
				return true, ctx.Err()
			}
			// The result is lost but the lease-timeout watchdog covers it.
			return false, errSessionProgress
		}
		_ = conn.SetWriteDeadline(time.Time{})
	}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
