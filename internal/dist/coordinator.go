package dist

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/obs"
)

// CoordinatorConfig shapes a distributed sweep's serving side.
type CoordinatorConfig struct {
	// Sweep is the grid to evaluate — the same config RunSweep takes.
	// CellWorkers is ignored (the worker fleet is the pool); Workers and
	// Quick travel inside every lease so all workers run cells identically.
	Sweep experiments.SweepConfig
	// Addr is the TCP listen address, e.g. "127.0.0.1:9444" ("127.0.0.1:0"
	// for an ephemeral port — read it back with Coordinator.Addr).
	Addr string
	// Checkpoint is the JSONL file completed jobs stream to; non-empty
	// enables crash/resume. An existing file must describe the same grid;
	// its completed jobs are not re-run.
	Checkpoint string
	// LeaseTimeout bounds how long a worker may hold a job before the
	// coordinator re-queues it for someone else. Zero means 2 minutes.
	// Too short only wastes duplicate work — correctness never depends on
	// it, because results merge idempotently.
	LeaseTimeout time.Duration
	// ExchangeTimeout bounds one non-blocking protocol exchange (hello,
	// lease write). Zero means 30 seconds.
	ExchangeTimeout time.Duration
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Coordinator runs a sweep grid across remote workers: it enumerates the
// grid's jobs, leases them over TCP, re-leases on worker death or timeout,
// streams completed results to the checkpoint, and performs the same
// deterministic grid-order merge as in-process RunSweep.
type Coordinator struct {
	cfg  CoordinatorConfig
	grid *experiments.SweepGrid
	ln   net.Listener
	ckpt *Checkpoint
	span *obs.Span
	ctx  context.Context

	mu       sync.Mutex
	queue    []int             // pending job IDs, FIFO
	leased   map[int]time.Time // job ID → lease expiry
	results  []*experiments.SweepJobResult
	done     int
	workers  int
	cond     *sync.Cond    // guards queue/done transitions
	finished chan struct{} // closed when every job has a result

	handlers sync.WaitGroup
}

// StartCoordinator validates the grid, loads the checkpoint, binds the
// listener, and begins serving workers in the background. Call Wait for the
// final report.
func StartCoordinator(ctx context.Context, cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.ExchangeTimeout <= 0 {
		cfg.ExchangeTimeout = 30 * time.Second
	}
	grid, err := experiments.NewSweepGrid(cfg.Sweep)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		grid:     grid,
		leased:   make(map[int]time.Time),
		results:  make([]*experiments.SweepJobResult, grid.NumJobs()),
		finished: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if cfg.Checkpoint != "" {
		loaded, err := LoadCheckpoint(cfg.Checkpoint, grid)
		if err != nil {
			return nil, err
		}
		for i := range loaded {
			c.results[grid.JobID(loaded[i].Cell, loaded[i].Rep)] = &loaded[i]
			c.done++
		}
		if c.ckpt, err = OpenCheckpoint(cfg.Checkpoint, grid); err != nil {
			return nil, err
		}
		if len(loaded) > 0 {
			c.logf("resumed %d/%d jobs from %s", len(loaded), grid.NumJobs(), cfg.Checkpoint)
		}
	}
	for id := 0; id < grid.NumJobs(); id++ {
		if c.results[id] == nil {
			c.queue = append(c.queue, id)
		}
	}
	ctx, c.span = obs.Start(ctx, "dist.serve",
		obs.String("scenario", grid.Base.Name), obs.Int("jobs", grid.NumJobs()),
		obs.Int("resumed", c.done))
	c.ctx = ctx
	if c.done == grid.NumJobs() {
		close(c.finished) // fully-checkpointed grid: nothing to serve
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		c.closeCkpt()
		c.span.End()
		return nil, fmt.Errorf("dist: listen %s: %w", cfg.Addr, err)
	}
	c.ln = ln
	go c.acceptLoop()
	go c.watchdog(ctx)
	// Wake any handler blocked in acquire when the caller cancels.
	stop := context.AfterFunc(ctx, func() { c.cond.Broadcast() })
	go func() { <-c.finished; stop(); c.cond.Broadcast() }()
	return c, nil
}

// RunCoordinator is StartCoordinator + Wait: serve the grid until every job
// has a result (or ctx ends), then merge and return the report. The report
// is byte-identical to an in-process RunSweep of the same config, regardless
// of worker count, join order, or crash/resume history.
func RunCoordinator(ctx context.Context, cfg CoordinatorConfig) (*experiments.SweepReport, error) {
	c, err := StartCoordinator(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx)
}

// Addr returns the bound listener address (useful with ":0").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait blocks until the grid is complete or ctx ends, then tears the
// listener down (workers get goodbyes) and merges. On cancellation the
// partial report of completed cells is returned with the context error.
func (c *Coordinator) Wait(ctx context.Context) (*experiments.SweepReport, error) {
	var cancelErr error
	select {
	case <-c.finished:
	case <-ctx.Done():
		cancelErr = ctx.Err()
	case <-c.ctx.Done():
		cancelErr = c.ctx.Err()
	}
	c.ln.Close() // stops accepts; handlers drain and say goodbye
	c.cond.Broadcast()
	c.handlers.Wait()
	if err := c.closeCkpt(); err != nil && cancelErr == nil {
		cancelErr = err
	}
	c.span.End()
	c.mu.Lock()
	results := append([]*experiments.SweepJobResult(nil), c.results...)
	c.mu.Unlock()
	report, mergeErr := c.grid.Merge(results)
	if cancelErr != nil {
		return report, fmt.Errorf("dist: coordinator interrupted: %w", cancelErr)
	}
	return report, mergeErr
}

func (c *Coordinator) closeCkpt() error {
	if c.ckpt == nil {
		return nil
	}
	err := c.ckpt.Close()
	c.ckpt = nil
	return err
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "dist: "+format+"\n", args...)
	}
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.handlers.Add(1)
		go func() {
			defer c.handlers.Done()
			c.handle(conn)
		}()
	}
}

// watchdog returns expired leases to the queue. A slow-but-alive worker's
// job may get leased twice; the second result is dropped idempotently, so
// expiry can only waste work, never corrupt the report.
func (c *Coordinator) watchdog(ctx context.Context) {
	tick := time.NewTicker(max(c.cfg.LeaseTimeout/4, 10*time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.finished:
			return
		case now := <-tick.C:
			c.requeueExpired(now)
		}
	}
}

// requeueExpired returns every lease that expired before now to the work
// queue. Expired IDs are sorted before re-queueing: map iteration order
// must never decide which job a worker is handed next, or two runs of the
// same crashed sweep would replay work in different orders.
func (c *Coordinator) requeueExpired(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expired []int
	for id, expiry := range c.leased {
		if now.After(expiry) {
			expired = append(expired, id)
		}
	}
	sort.Ints(expired)
	for _, id := range expired {
		delete(c.leased, id)
		c.queue = append(c.queue, id)
		obsReleased.Inc()
		c.logf("lease on job %d expired; re-queued", id)
	}
	// Broadcast unconditionally: the watchdog tick doubles as a periodic
	// wakeup for waiters re-checking queue/shutdown state.
	c.cond.Broadcast()
}

// acquire blocks until a job can be leased, the grid finishes, or the
// context ends. It returns (-1, false) when the worker should be told
// goodbye.
func (c *Coordinator) acquire(workerID string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.done == c.grid.NumJobs() || c.ctx.Err() != nil {
			return -1, false
		}
		for len(c.queue) > 0 {
			id := c.queue[0]
			c.queue = c.queue[1:]
			if c.results[id] != nil {
				continue // completed while queued (duplicate lease path)
			}
			c.leased[id] = time.Now().Add(c.cfg.LeaseTimeout) //oasis:allow-walltime lease expiry is a real-time deadline, not sim time
			obsLeases.Inc()
			return id, true
		}
		// Everything outstanding is leased to other workers: wait for a
		// completion, an expiry re-queue, or shutdown.
		c.cond.Wait()
	}
}

// release returns an un-completed leased job to the queue (its worker's
// connection broke).
func (c *Coordinator) release(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, held := c.leased[id]; !held || c.results[id] != nil {
		return
	}
	delete(c.leased, id)
	c.queue = append(c.queue, id)
	obsReleased.Inc()
	c.cond.Broadcast()
}

// complete merges one result idempotently: the first result for a job wins
// (and is checkpointed); later duplicates — a re-leased job finished twice —
// are dropped. Results that fail grid validation are discarded.
func (c *Coordinator) complete(res experiments.SweepJobResult, workerID string) {
	if err := c.grid.CheckResult(res); err != nil {
		obsBadResults.Inc()
		c.logf("discarding invalid result from %s: %v", workerID, err)
		return
	}
	id := c.grid.JobID(res.Cell, res.Rep)
	c.mu.Lock()
	if c.results[id] != nil {
		c.mu.Unlock()
		obsDupResults.Inc()
		c.logf("duplicate result for job %d from %s dropped", id, workerID)
		return
	}
	c.results[id] = &res
	delete(c.leased, id)
	c.done++
	finished := c.done == c.grid.NumJobs()
	ckpt := c.ckpt
	c.mu.Unlock()
	if ckpt != nil {
		if err := ckpt.Append(res); err != nil {
			c.logf("%v", err)
		}
	}
	if res.Err == "" {
		c.logf("job %d (%s × %s, seed %d) from %s: %d recon, PSNR %.1f dB",
			id, res.Attack, res.Defense, res.Seed, workerID, res.Reconstructions, res.PSNR)
	} else {
		c.logf("job %d (%s × %s, seed %d) from %s failed: %s",
			id, res.Attack, res.Defense, res.Seed, workerID, res.Err)
	}
	c.mu.Lock()
	if finished {
		close(c.finished)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// handle speaks the protocol with one worker connection: hello, then
// lease/result exchanges until the grid completes. Any decode error — a
// malformed gob stream, a truncated message, a dead peer — drops the
// connection and returns the in-flight lease to the queue.
//
//oasis:allow-walltime connection and lease deadlines are real-time by design
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ExchangeTimeout))
	var hello wireHello
	if err := dec.Decode(&hello); err != nil || hello.WorkerID == "" {
		return // not a worker; nothing was leased
	}
	_ = conn.SetReadDeadline(time.Time{})
	c.mu.Lock()
	c.workers++
	obsWorkersNow.Set(float64(c.workers))
	c.mu.Unlock()
	c.logf("worker %s connected", hello.WorkerID)
	defer func() {
		c.mu.Lock()
		c.workers--
		obsWorkersNow.Set(float64(c.workers))
		c.mu.Unlock()
	}()
	// Unblock a pending exchange when the run is cancelled.
	stop := context.AfterFunc(c.ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()
	for {
		id, ok := c.acquire(hello.WorkerID)
		if !ok {
			_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.ExchangeTimeout))
			_ = enc.Encode(wireCoordMsg{Goodbye: true})
			return
		}
		lease := wireLease{
			Job:      c.grid.Job(id),
			Scenario: c.grid.JobScenario(id),
			Quick:    c.grid.Quick,
			Workers:  c.grid.Workers,
		}
		_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.ExchangeTimeout))
		if err := enc.Encode(wireCoordMsg{Lease: &lease}); err != nil {
			c.release(id)
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
		// The worker is now computing: allow the full lease window plus
		// slack before declaring the connection dead.
		_ = conn.SetReadDeadline(time.Now().Add(c.cfg.LeaseTimeout + c.cfg.ExchangeTimeout))
		var reply wireResult
		if err := dec.Decode(&reply); err != nil {
			c.release(id)
			c.logf("worker %s dropped mid-lease (job %d re-queued): %v", hello.WorkerID, id, err)
			return
		}
		_ = conn.SetReadDeadline(time.Time{})
		c.complete(reply.Result, hello.WorkerID)
		// A result for some other job (a late duplicate) leaves the leased
		// job unanswered — put it straight back rather than waiting for the
		// watchdog.
		if c.grid.JobID(reply.Result.Cell, reply.Result.Rep) != id ||
			c.grid.CheckResult(reply.Result) != nil {
			c.release(id)
		}
	}
}
