package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/sim"
)

// testSweep is the tiny grid every dist test evaluates: 2 attacks × 2
// defenses × 2 replicates = 8 jobs, quick cap, serial inside each cell.
func testSweep() experiments.SweepConfig {
	return experiments.SweepConfig{
		Attacks:    []string{"rtf", "qbi"},
		Defenses:   []string{"none", "prune:0.3"},
		Replicates: 2,
		Workers:    1,
		Quick:      true,
	}
}

// serialGolden runs the grid in-process at CellWorkers 1 — the byte-identity
// reference every distributed run is compared against.
func serialGolden(t *testing.T) []byte {
	t.Helper()
	cfg := testSweep()
	cfg.CellWorkers = 1
	rep, err := experiments.RunSweep(cfg)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func startTestCoordinator(t *testing.T, ctx context.Context, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	if cfg.Sweep.Attacks == nil {
		cfg.Sweep = testSweep()
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	c, err := StartCoordinator(ctx, cfg)
	if err != nil {
		t.Fatalf("StartCoordinator: %v", err)
	}
	return c
}

// TestDistributedByteIdentity is the subsystem's acceptance bar: a
// coordinator with two concurrent workers must produce report JSON
// byte-identical to the serial in-process run.
func TestDistributedByteIdentity(t *testing.T) {
	golden := serialGolden(t)
	ctx := context.Background()
	c := startTestCoordinator(t, ctx, CoordinatorConfig{})
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := RunWorker(ctx, WorkerConfig{Addr: c.Addr(), ID: id, BaseBackoff: time.Millisecond}); err != nil {
				t.Errorf("worker %s: %v", id, err)
			}
		}(id)
	}
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	wg.Wait()
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, raw) {
		t.Fatalf("distributed report diverges from serial:\n%s\nvs\n%s", raw, golden)
	}
}

// rawClient speaks the wire protocol by hand, for protocol-abuse tests.
type rawClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return &rawClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (r *rawClient) hello(t *testing.T, id string) {
	t.Helper()
	if err := r.enc.Encode(wireHello{WorkerID: id}); err != nil {
		t.Fatalf("hello: %v", err)
	}
}

func (r *rawClient) lease(t *testing.T) wireLease {
	t.Helper()
	var msg wireCoordMsg
	if err := r.dec.Decode(&msg); err != nil {
		t.Fatalf("decode lease: %v", err)
	}
	if msg.Goodbye || msg.Lease == nil {
		t.Fatalf("expected a lease, got goodbye")
	}
	return *msg.Lease
}

// TestWorkerKillMidGridReleases kills a worker that holds a lease and checks
// the job is re-leased to a healthy worker, with the final report still
// byte-identical to serial.
func TestWorkerKillMidGridReleases(t *testing.T) {
	golden := serialGolden(t)
	ctx := context.Background()
	c := startTestCoordinator(t, ctx, CoordinatorConfig{})
	// The doomed worker takes one lease and dies without answering.
	doomed := dialRaw(t, c.Addr())
	doomed.hello(t, "doomed")
	_ = doomed.lease(t)
	doomed.conn.Close() // connection break → immediate re-queue
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{Addr: c.Addr(), ID: "healthy", BaseBackoff: time.Millisecond})
	}()
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	raw, _ := rep.JSON()
	if !bytes.Equal(golden, raw) {
		t.Fatalf("report diverges after mid-grid worker kill:\n%s\nvs\n%s", raw, golden)
	}
}

// TestDuplicateResultDropped submits the same job result twice (the second
// time against a lease for a different job) and checks the duplicate is
// dropped, the unanswered lease is re-queued, and the report stays
// byte-identical.
func TestDuplicateResultDropped(t *testing.T) {
	golden := serialGolden(t)
	ctx := context.Background()
	c := startTestCoordinator(t, ctx, CoordinatorConfig{})
	rc := dialRaw(t, c.Addr())
	rc.hello(t, "dup")
	l1 := rc.lease(t)
	res := experiments.RunSweepJob(ctx, l1.Job, l1.Scenario, sim.Options{Quick: l1.Quick, Workers: 1})
	if err := rc.enc.Encode(wireResult{Result: res}); err != nil {
		t.Fatalf("send result: %v", err)
	}
	l2 := rc.lease(t)
	if l2.Job.ID == l1.Job.ID {
		t.Fatalf("second lease re-issued job %d", l1.Job.ID)
	}
	// Answer the second lease with the first job's result again: a duplicate
	// for an already-merged job. The coordinator must drop it and put the
	// second job back in the queue.
	if err := rc.enc.Encode(wireResult{Result: res}); err != nil {
		t.Fatalf("send duplicate: %v", err)
	}
	l3 := rc.lease(t) // protocol continues; the dup did not wedge the session
	if l3.Job.ID == l1.Job.ID {
		t.Fatalf("duplicate result re-opened job %d", l1.Job.ID)
	}
	rc.conn.Close()
	go RunWorker(ctx, WorkerConfig{Addr: c.Addr(), ID: "finisher", BaseBackoff: time.Millisecond}) //nolint:errcheck
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	raw, _ := rep.JSON()
	if !bytes.Equal(golden, raw) {
		t.Fatalf("report diverges after duplicate result:\n%s\nvs\n%s", raw, golden)
	}
}

// TestMalformedStreams throws garbage at the coordinator — before the hello
// and in place of a result — and checks both connections are dropped without
// wedging the grid or corrupting the report.
func TestMalformedStreams(t *testing.T) {
	golden := serialGolden(t)
	ctx := context.Background()
	c := startTestCoordinator(t, ctx, CoordinatorConfig{ExchangeTimeout: time.Second})
	// Garbage instead of a hello: dropped before anything is leased.
	junk, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	junk.Write([]byte("GET / HTTP/1.1\r\n\r\n")) //nolint:errcheck
	junk.Close()
	// Valid hello, then a truncated/garbage reply in place of the result:
	// the lease must return to the queue.
	rc := dialRaw(t, c.Addr())
	rc.hello(t, "garbler")
	_ = rc.lease(t)
	rc.conn.Write([]byte{0xff, 0x00, 0x13, 0x37}) //nolint:errcheck
	rc.conn.Close()
	go RunWorker(ctx, WorkerConfig{Addr: c.Addr(), ID: "cleaner", BaseBackoff: time.Millisecond}) //nolint:errcheck
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	raw, _ := rep.JSON()
	if !bytes.Equal(golden, raw) {
		t.Fatalf("report diverges after malformed streams:\n%s\nvs\n%s", raw, golden)
	}
}

// TestLeaseTimeoutRequeues checks the watchdog path: a worker that accepts a
// lease and stalls (without dying) has its job re-leased after LeaseTimeout,
// and the stalled worker's eventual silence doesn't block completion.
func TestLeaseTimeoutRequeues(t *testing.T) {
	golden := serialGolden(t)
	ctx := context.Background()
	c := startTestCoordinator(t, ctx, CoordinatorConfig{
		LeaseTimeout:    50 * time.Millisecond,
		ExchangeTimeout: 200 * time.Millisecond,
	})
	stalled := dialRaw(t, c.Addr())
	stalled.hello(t, "stalled")
	_ = stalled.lease(t) // hold the lease and never answer
	defer stalled.conn.Close()
	go RunWorker(ctx, WorkerConfig{Addr: c.Addr(), ID: "live", BaseBackoff: time.Millisecond}) //nolint:errcheck
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	raw, _ := rep.JSON()
	if !bytes.Equal(golden, raw) {
		t.Fatalf("report diverges after lease-timeout re-queue:\n%s\nvs\n%s", raw, golden)
	}
}

// TestCheckpointResume interrupts a distributed run after a few completed
// jobs, then resumes from the checkpoint with a fresh coordinator: completed
// jobs are not re-run (the file gains no duplicate lines) and the final
// report is byte-identical to serial.
func TestCheckpointResume(t *testing.T) {
	golden := serialGolden(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	ctx := context.Background()

	// Phase 1: complete exactly 3 of the 8 jobs by hand, then vanish.
	c1 := startTestCoordinator(t, ctx, CoordinatorConfig{Checkpoint: ckpt})
	rc := dialRaw(t, c1.Addr())
	rc.hello(t, "partial")
	for i := 0; i < 3; i++ {
		l := rc.lease(t)
		res := experiments.RunSweepJob(ctx, l.Job, l.Scenario, sim.Options{Quick: l.Quick, Workers: 1})
		if err := rc.enc.Encode(wireResult{Result: res}); err != nil {
			t.Fatalf("send result %d: %v", i, err)
		}
	}
	// Strict alternation means the 3rd result is only known-processed once
	// the next lease arrives.
	l4 := rc.lease(t)
	rc.conn.Close()
	cctx, cancel := context.WithCancel(ctx)
	cancel() // simulate the crash: abandon the run
	if _, err := c1.Wait(cctx); err == nil {
		t.Fatal("interrupted Wait returned nil error")
	}
	_ = l4

	// Phase 2: resume. The 3 checkpointed jobs must not run again.
	c2 := startTestCoordinator(t, ctx, CoordinatorConfig{Checkpoint: ckpt})
	go RunWorker(ctx, WorkerConfig{Addr: c2.Addr(), ID: "resumer", BaseBackoff: time.Millisecond}) //nolint:errcheck
	rep, err := c2.Wait(ctx)
	if err != nil {
		t.Fatalf("resumed Wait: %v", err)
	}
	raw, _ := rep.JSON()
	if !bytes.Equal(golden, raw) {
		t.Fatalf("resumed report diverges from serial:\n%s\nvs\n%s", raw, golden)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if want := 1 + 8; len(lines) != want { // header + one line per job, no duplicates
		t.Fatalf("checkpoint has %d lines, want %d:\n%s", len(lines), want, data)
	}

	// Phase 3: a fully-checkpointed grid needs no workers at all.
	c3 := startTestCoordinator(t, ctx, CoordinatorConfig{Checkpoint: ckpt})
	rep3, err := c3.Wait(ctx)
	if err != nil {
		t.Fatalf("fully-resumed Wait: %v", err)
	}
	raw3, _ := rep3.JSON()
	if !bytes.Equal(golden, raw3) {
		t.Fatalf("fully-resumed report diverges from serial")
	}
}

// TestLoadCheckpointValidation pins the checkpoint loader's failure modes:
// missing file, foreign grid, corrupt interior line, torn final line, failed
// and duplicate result lines.
func TestLoadCheckpointValidation(t *testing.T) {
	grid, err := experiments.NewSweepGrid(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	if res, err := LoadCheckpoint(filepath.Join(dir, "absent.ckpt"), grid); err != nil || res != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", res, err)
	}

	// Build a real checkpoint with two results to splice test files from.
	real := filepath.Join(dir, "real.ckpt")
	ck, err := OpenCheckpoint(real, grid)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res0 := grid.RunJob(ctx, 0)
	res1 := grid.RunJob(ctx, 1)
	if err := ck.Append(res0); err != nil {
		t.Fatal(err)
	}
	if err := ck.Append(res1); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(real)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("seed checkpoint has %d lines, want 3", len(lines))
	}
	write := func(name string, lines ...[]byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	loaded, err := LoadCheckpoint(real, grid)
	if err != nil || len(loaded) != 2 {
		t.Fatalf("real checkpoint: %d results, err %v; want 2, nil", len(loaded), err)
	}

	// A checkpoint from a different grid must be rejected outright.
	other := testSweep()
	other.Replicates = 3
	otherGrid, err := experiments.NewSweepGrid(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(real, otherGrid); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("foreign grid: err %v, want a different-grid rejection", err)
	}

	// Torn final line (mid-append crash) is tolerated; that job re-runs.
	torn := write("torn.ckpt", lines[0], lines[1], lines[2][:len(lines[2])/2])
	if loaded, err := LoadCheckpoint(torn, grid); err != nil || len(loaded) != 1 {
		t.Fatalf("torn final line: %d results, err %v; want 1, nil", len(loaded), err)
	}

	// The same corruption anywhere else is an error.
	corrupt := write("corrupt.ckpt", lines[0], lines[1][:len(lines[1])/2], lines[2])
	if _, err := LoadCheckpoint(corrupt, grid); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt interior line: err %v, want corruption error", err)
	}

	// Failed results are dropped (resume retries them); duplicates keep the
	// first occurrence.
	failed := res0
	failed.Err = "transient"
	failedLine, _ := json.Marshal(checkpointResult{Type: "result", SweepJobResult: failed})
	mixed := write("mixed.ckpt", lines[0], failedLine, lines[2], lines[2])
	if loaded, err := LoadCheckpoint(mixed, grid); err != nil || len(loaded) != 1 || loaded[0].Cell != res1.Cell || loaded[0].Rep != res1.Rep {
		t.Fatalf("failed+duplicate lines: %+v, err %v; want just job 1", loaded, err)
	}
}

// TestBackoffSchedule pins the worker's deterministic retry delays: doubling
// from base, capped at max, no jitter.
func TestBackoffSchedule(t *testing.T) {
	base, maxD := 100*time.Millisecond, 5*time.Second
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
		5 * time.Second, 5 * time.Second, 5 * time.Second,
	}
	for i, w := range want {
		if got := Backoff(base, maxD, i+1); got != w {
			t.Errorf("Backoff(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
	if got := Backoff(base, maxD, 0); got != 0 {
		t.Errorf("Backoff(attempt 0) = %v, want 0", got)
	}
	// A huge attempt count must not overflow past the cap.
	if got := Backoff(base, maxD, 80); got != maxD {
		t.Errorf("Backoff(attempt 80) = %v, want the %v cap", got, maxD)
	}
}

// TestWorkerGivesUpAfterAttempts checks the bounded retry budget against a
// coordinator that refuses every connection.
func TestWorkerGivesUpAfterAttempts(t *testing.T) {
	addr := refusedAddr(t)
	start := time.Now()
	err := RunWorker(context.Background(), WorkerConfig{
		Addr: addr, ID: "hopeless",
		Attempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want a giving-up error after 3 attempts", err)
	}
	// Attempts 1 and 2 sleep 1ms and 2ms before attempt 3 fails for good.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("gave up after %v, before the 3ms the backoff schedule mandates", elapsed)
	}
}

// TestWorkerRetriesUntilCoordinatorUp starts the worker first, lets it burn
// refused connections through the backoff schedule, then brings the
// coordinator up on the promised address: the worker must connect and finish
// the grid, byte-identical to serial.
func TestWorkerRetriesUntilCoordinatorUp(t *testing.T) {
	golden := serialGolden(t)
	addr := refusedAddr(t)
	ctx := context.Background()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, WorkerConfig{
			Addr: addr, ID: "early-bird",
			Attempts: 50, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		})
	}()
	time.Sleep(30 * time.Millisecond) // several refused dials land here
	c := startTestCoordinator(t, ctx, CoordinatorConfig{Addr: addr})
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	raw, _ := rep.JSON()
	if !bytes.Equal(golden, raw) {
		t.Fatalf("report diverges after retried start:\n%s\nvs\n%s", raw, golden)
	}
}

// refusedAddr reserves a localhost port and closes it again, yielding an
// address that refuses connections until a test binds it.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
