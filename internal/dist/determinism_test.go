package dist

import (
	"sync"
	"testing"
	"time"
)

// TestRequeueExpiredSortsJobIDs pins the determinism fix in requeueExpired:
// expired leases must return to the queue in job-ID order, not in map
// iteration order. With map order, two runs of the same crashed sweep would
// hand jobs back to workers in different orders. A map with many entries
// makes an accidental in-order iteration astronomically unlikely.
func TestRequeueExpiredSortsJobIDs(t *testing.T) {
	const n = 64
	c := &Coordinator{leased: make(map[int]time.Time)}
	c.cond = sync.NewCond(&c.mu)
	past := time.Now().Add(-time.Minute)
	for id := 0; id < n; id++ {
		c.leased[id] = past
	}
	// One lease still live: it must survive the sweep untouched.
	c.leased[n] = time.Now().Add(time.Hour)

	c.requeueExpired(time.Now())

	if len(c.queue) != n {
		t.Fatalf("queue has %d jobs, want %d", len(c.queue), n)
	}
	for i, id := range c.queue {
		if id != i {
			t.Fatalf("queue[%d] = %d; expired jobs must re-queue in sorted ID order, got %v", i, id, c.queue)
		}
	}
	if len(c.leased) != 1 {
		t.Fatalf("leased has %d entries after requeue, want 1 (the live lease)", len(c.leased))
	}
	if _, ok := c.leased[n]; !ok {
		t.Fatalf("live lease for job %d was dropped by requeueExpired", n)
	}
}
