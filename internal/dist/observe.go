package dist

import "github.com/oasisfl/oasis/internal/obs"

// Distributed-sweep instruments. Self-gated on the obs session like every
// other instrument in the tree; see internal/obs for the determinism
// contract (none of these ever touch report bytes).
var (
	// Coordinator side.
	obsLeases     = obs.NewCounter("dist_leases_total", "jobs leased to workers")
	obsReleased   = obs.NewCounter("dist_released_total", "leases returned to the queue after a worker died or timed out")
	obsDupResults = obs.NewCounter("dist_duplicate_results_total", "results for already-merged jobs, idempotently dropped")
	obsBadResults = obs.NewCounter("dist_rejected_results_total", "results that failed grid validation and were discarded")
	obsResumed    = obs.NewCounter("dist_checkpoint_resumed_total", "jobs restored from the JSONL checkpoint instead of re-run")
	obsWorkersNow = obs.NewGauge("dist_connected_workers", "workers currently registered with the coordinator")

	// Worker side.
	obsWorkerLeases  = obs.NewCounter("dist_worker_leases_total", "leases this worker accepted and ran")
	obsWorkerRetries = obs.NewCounter("dist_worker_retries_total", "dial/session failures that triggered a backoff retry")
)
