// Package dist runs a sweep grid across processes: a coordinator leases
// (cell, replicate) jobs to thin workers over a gob/TCP protocol, streams
// every completed result to a JSONL checkpoint, and merges in deterministic
// grid order so the final SweepReport is byte-identical to an in-process
// experiments.RunSweep of the same config — regardless of worker count, join
// order, or crash/resume history.
//
// # Lease lifecycle
//
// Every job is in exactly one of three states: queued, leased, or done.
//
//	queued ── worker asks ──▶ leased ── result arrives ──▶ done
//	  ▲                         │
//	  └── connection breaks ────┤
//	  └── lease timeout expires ┘
//
// A lease carries the fully-materialized scenario, so workers never
// enumerate the grid — they dial, say hello, and run whatever arrives.
// The coordinator detects a dead worker two ways: the connection breaks
// (immediate re-queue) or the lease outlives LeaseTimeout (the watchdog
// re-queues it). Both paths can only duplicate work, never corrupt the
// report: results self-identify by (cell, rep), completion is idempotent
// (first result wins, duplicates are counted and dropped), and a replicate's
// statistics are scheduling-independent, so two runs of the same job return
// identical numbers.
//
// # Checkpoint format
//
// The checkpoint is JSON Lines: a header pinning the grid (scenario name,
// seed, axes, replicate count, quick flag), then one result line per
// completed job, appended and fsynced as results land. On resume the header
// must match the grid exactly; completed jobs are trusted and not re-run,
// failed lines (err set) are dropped so transient failures retry, and a torn
// final line from a mid-append crash is tolerated. Because encoding/json
// round-trips float64 bit-exactly, a resumed grid's report matches an
// uninterrupted run byte for byte.
//
// # Determinism contract
//
// Byte-identical output holds because all three layers are
// scheduling-independent:
//
//  1. the grid layout (job → cell, replicate, seed) depends only on the
//     config (experiments.SweepGrid),
//  2. each job's statistics depend only on its scenario and seed
//     (sim.RunContext is deterministic for a fixed seed), and
//  3. the merge folds results in grid order, ignoring arrival order
//     (experiments.SweepGrid.Merge).
//
// The transport can therefore reorder, duplicate, or replay anything
// without observable effect. Only instrumentation (internal/obs spans and
// counters) varies between runs, and obs never touches report bytes.
package dist
