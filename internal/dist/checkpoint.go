package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sync"

	"github.com/oasisfl/oasis/internal/experiments"
)

// The JSONL checkpoint is the sweep's crash-survival format: one header line
// describing the grid, then one result line per completed job, appended (and
// fsynced) as results land. Because a job result carries exactly the
// statistics the deterministic merge consumes — and float64s survive JSON
// round trips bit-exactly — a grid resumed from a checkpoint produces a
// SweepReport byte-identical to one that ran start-to-finish.
//
//	{"type":"header","schema":1,"scenario":"sweep-base","seed":42,...}
//	{"type":"result","cell":0,"rep":0,"attack":"rtf","defense":"none",...}
//	{"type":"result","cell":0,"rep":1,...}

// CheckpointSchema identifies the checkpoint layout; bump when lines change
// meaning.
const CheckpointSchema = 1

// checkpointHeader pins the grid a checkpoint belongs to. Loading validates
// every field against the resumed grid, so results can never silently merge
// into a different sweep.
type checkpointHeader struct {
	Type       string   `json:"type"`
	Schema     int      `json:"schema"`
	Scenario   string   `json:"scenario"`
	Seed       uint64   `json:"seed"`
	Replicates int      `json:"replicates"`
	Attacks    []string `json:"attacks"`
	Defenses   []string `json:"defenses"`
	Quick      bool     `json:"quick"`
}

// checkpointResult is one completed job line.
type checkpointResult struct {
	Type string `json:"type"`
	experiments.SweepJobResult
}

func headerFor(grid *experiments.SweepGrid) checkpointHeader {
	return checkpointHeader{
		Type:       "header",
		Schema:     CheckpointSchema,
		Scenario:   grid.Base.Name,
		Seed:       grid.Base.Seed,
		Replicates: grid.Replicates,
		Attacks:    grid.Attacks,
		Defenses:   grid.Defenses,
		Quick:      grid.Quick,
	}
}

// LoadCheckpoint reads the completed results a previous run left at path.
// A missing file is an empty resume (nil, nil). The header must match the
// grid exactly; a checkpoint from a different grid is an error, not a silent
// partial merge. Failed results (Err != "") are dropped — resume retries
// them. A torn final line (the process died mid-append) is tolerated and
// ignored; corruption anywhere else is an error. When a job appears more
// than once (a duplicate result raced a crash), the first occurrence wins —
// occurrences are identical anyway, by determinism.
func LoadCheckpoint(path string, grid *experiments.SweepGrid) ([]experiments.SweepJobResult, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: checkpoint: %w", err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	// Trim trailing empty line(s) from the final newline.
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Type != "header" {
		return nil, fmt.Errorf("dist: checkpoint %s: first line is not a valid header", path)
	}
	if hdr.Schema != CheckpointSchema {
		return nil, fmt.Errorf("dist: checkpoint %s: schema %d, want %d", path, hdr.Schema, CheckpointSchema)
	}
	if want := headerFor(grid); !reflect.DeepEqual(hdr, want) {
		return nil, fmt.Errorf("dist: checkpoint %s belongs to a different grid (%s seed %d %v×%v, want %s seed %d %v×%v)",
			path, hdr.Scenario, hdr.Seed, hdr.Attacks, hdr.Defenses,
			want.Scenario, want.Seed, want.Attacks, want.Defenses)
	}
	var out []experiments.SweepJobResult
	seen := make(map[int]bool)
	for i, line := range lines[1:] {
		var res checkpointResult
		if err := json.Unmarshal(line, &res); err != nil || res.Type != "result" {
			if i == len(lines)-2 {
				break // torn final line from a mid-append crash; the job re-runs
			}
			return nil, fmt.Errorf("dist: checkpoint %s: corrupt line %d", path, i+2)
		}
		if err := grid.CheckResult(res.SweepJobResult); err != nil {
			return nil, fmt.Errorf("dist: checkpoint %s line %d: %w", path, i+2, err)
		}
		if res.Err != "" {
			continue
		}
		id := grid.JobID(res.Cell, res.Rep)
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, res.SweepJobResult)
	}
	obsResumed.Add(int64(len(out)))
	return out, nil
}

// Checkpoint appends completed job results to a JSONL file, fsyncing each
// line so a completed cell survives any crash that follows it. Append is
// goroutine-safe.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	werr error
}

// OpenCheckpoint opens (or creates) the checkpoint at path for appending,
// writing the grid header when the file is new. An existing file must carry
// a matching header — pass it through LoadCheckpoint first to both validate
// it and collect its results.
func OpenCheckpoint(path string, grid *experiments.SweepGrid) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: checkpoint: %w", err)
	}
	c := &Checkpoint{f: f}
	if st.Size() == 0 {
		if err := c.writeLine(headerFor(grid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// Append records one completed job. The write is serialized and fsynced;
// the first failure sticks and is re-reported by Close so a sweep cannot
// silently lose its crash protection.
func (c *Checkpoint) Append(r experiments.SweepJobResult) error {
	return c.writeLine(checkpointResult{Type: "result", SweepJobResult: r})
}

func (c *Checkpoint) writeLine(v any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	raw, err := json.Marshal(v)
	if err == nil {
		raw = append(raw, '\n')
		if _, err = c.f.Write(raw); err == nil {
			err = c.f.Sync()
		}
	}
	if err != nil {
		c.werr = fmt.Errorf("dist: checkpoint append: %w", err)
		return c.werr
	}
	return nil
}

// Close releases the file, returning the first append error if any write
// failed.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.f.Close()
	if c.werr != nil {
		return c.werr
	}
	return err
}
