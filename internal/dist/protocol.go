package dist

import (
	"encoding/gob"

	"github.com/oasisfl/oasis/internal/experiments"
	"github.com/oasisfl/oasis/internal/sim"
)

// The coordinator/worker transport speaks a minimal gob protocol over TCP,
// modeled on internal/fl/tcp.go:
//
//	worker → coordinator  wireHello{WorkerID}
//	coordinator → worker  wireCoordMsg{Lease}     (one leased job)
//	worker → coordinator  wireResult{Result}      (the job's outcome)
//	…lease/result repeats…
//	coordinator → worker  wireCoordMsg{Goodbye}   (grid complete)
//
// The exchange alternates strictly: after the hello, every coordinator
// message is a lease or the goodbye, and every worker message is the result
// of some job. A result's job identity travels inside the result itself
// (cell, rep), not positionally — so a result for a job other than the one
// just leased is legal and handled: the coordinator merges it idempotently
// by its own coordinates and immediately re-queues the job it had leased.
//
// gob's stream framing handles message boundaries; per-exchange deadlines
// bound the damage of a stalled peer, and a worker that dies mid-lease is
// detected either by its connection breaking or by lease-timeout expiry —
// both return the job to the queue.

// wireHello introduces a worker. An empty WorkerID is rejected.
type wireHello struct {
	WorkerID string
}

// wireLease hands one job to a worker: the job's grid coordinates plus the
// fully-materialized scenario and run options, so workers stay thin — no
// grid enumeration, no axis validation, just "run this scenario".
type wireLease struct {
	Job      experiments.SweepJob
	Scenario sim.Scenario
	Quick    bool
	Workers  int
}

// wireCoordMsg is the tagged coordinator→worker envelope: one lease, or the
// goodbye that ends the session.
type wireCoordMsg struct {
	Goodbye bool
	Lease   *wireLease
}

// wireResult carries one completed job back. Failures travel in
// Result.Err — they are results, not transport errors.
type wireResult struct {
	Result experiments.SweepJobResult
}

func init() {
	gob.Register(wireHello{})
	gob.Register(wireCoordMsg{})
	gob.Register(wireResult{})
}
