// Package augment defines the image-augmentation policies OASIS uses to
// build the transform set X′_t for every training image x_t (paper §III-B
// and §IV-A "OASIS Implementation"):
//
//   - Major rotation: 90°, 180°, 270° (exact permutations)
//   - Minor rotation: 30°, 45°, 60°
//   - Shearing: factors 0.55, 1.0, 0.9
//   - Horizontal / vertical flip
//   - Compositions (e.g. major rotation + shearing, the strongest defense
//     against the CAH attack in Figure 6)
//
// A Policy is deterministic given its parameters; OASIS optionally
// re-samples minor-rotation angles and shear factors per round so the server
// cannot learn the exact transformation parameters (paper §IV-C notes the
// attacker "does not know the specific parameters of the transformations").
package augment

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/imaging"
)

// Policy produces the augmented counterparts X′_t of one image.
type Policy interface {
	// Expand returns the transformed copies of im (not including im
	// itself). Implementations must not mutate im.
	Expand(im *imaging.Image) []*imaging.Image
	// Name is the short label used in experiment tables (MR, mR, SH, …).
	Name() string
}

// MajorRotation rotates by the three major angles 90°, 180°, 270° (Eq. 2
// with θ ∈ {90°, 180°, 270°}).
type MajorRotation struct{}

var _ Policy = MajorRotation{}

// Expand returns the three major rotations of im.
func (MajorRotation) Expand(im *imaging.Image) []*imaging.Image {
	return []*imaging.Image{imaging.Rotate90(im), imaging.Rotate180(im), imaging.Rotate270(im)}
}

// Name returns "MR".
func (MajorRotation) Name() string { return "MR" }

// MinorRotation rotates by three angles below 90°; the paper uses 30°, 45°
// and 60°.
type MinorRotation struct {
	// Angles in degrees; zero value means the paper's {30, 45, 60}.
	Angles []float64
}

var _ Policy = MinorRotation{}

// Expand returns the minor rotations of im.
func (m MinorRotation) Expand(im *imaging.Image) []*imaging.Image {
	angles := m.Angles
	if len(angles) == 0 {
		angles = []float64{30, 45, 60}
	}
	out := make([]*imaging.Image, 0, len(angles))
	for _, deg := range angles {
		out = append(out, imaging.Rotate(im, deg*degToRad))
	}
	return out
}

// Name returns "mR".
func (MinorRotation) Name() string { return "mR" }

const degToRad = 0.017453292519943295

// Shearing shears by three factors; the paper uses 0.55, 1.0 and 0.9.
type Shearing struct {
	// Factors controlling shear intensity; zero value means the paper's
	// {0.55, 1.0, 0.9}.
	Factors []float64
}

var _ Policy = Shearing{}

// Expand returns the sheared copies of im.
func (s Shearing) Expand(im *imaging.Image) []*imaging.Image {
	factors := s.Factors
	if len(factors) == 0 {
		factors = []float64{0.55, 1.0, 0.9}
	}
	out := make([]*imaging.Image, 0, len(factors))
	for _, mu := range factors {
		out = append(out, imaging.Shear(im, mu))
	}
	return out
}

// Name returns "SH".
func (Shearing) Name() string { return "SH" }

// HFlip mirrors across the vertical axis (Eq. 3).
type HFlip struct{}

var _ Policy = HFlip{}

// Expand returns the horizontal mirror of im.
func (HFlip) Expand(im *imaging.Image) []*imaging.Image {
	return []*imaging.Image{imaging.FlipH(im)}
}

// Name returns "HFlip".
func (HFlip) Name() string { return "HFlip" }

// VFlip mirrors across the horizontal axis (Eq. 4).
type VFlip struct{}

var _ Policy = VFlip{}

// Expand returns the vertical mirror of im.
func (VFlip) Expand(im *imaging.Image) []*imaging.Image {
	return []*imaging.Image{imaging.FlipV(im)}
}

// Name returns "VFlip".
func (VFlip) Name() string { return "VFlip" }

// Compose unions the expansions of several policies; X′_t built "by more
// than one transformation" is the paper's fix for the CAH attack at small
// batch sizes (Figure 6: MR+SH).
type Compose struct {
	Policies []Policy
}

var _ Policy = Compose{}

// NewCompose builds a composition of the given policies.
func NewCompose(policies ...Policy) Compose { return Compose{Policies: policies} }

// Expand concatenates the expansions of all member policies.
func (c Compose) Expand(im *imaging.Image) []*imaging.Image {
	var out []*imaging.Image
	for _, p := range c.Policies {
		out = append(out, p.Expand(im)...)
	}
	return out
}

// Name joins the member names with "+" (e.g. "MR+SH").
func (c Compose) Name() string {
	name := ""
	for i, p := range c.Policies {
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	return name
}

// Randomized wraps a base policy kind with per-call parameter resampling so
// the server cannot assume fixed transformation parameters. Only parametric
// policies (minor rotation, shearing) have anything to resample.
type Randomized struct {
	Kind string // "mR" or "SH"
	N    int    // number of transforms to generate
	Rng  *rand.Rand
}

var _ Policy = (*Randomized)(nil)

// NewRandomized constructs a randomized policy of the given kind ("mR" or
// "SH") generating n transforms per image.
func NewRandomized(kind string, n int, rng *rand.Rand) (*Randomized, error) {
	switch kind {
	case "mR", "SH":
	default:
		return nil, fmt.Errorf("augment: randomized policy kind %q not supported (want mR or SH)", kind)
	}
	if n <= 0 {
		return nil, fmt.Errorf("augment: randomized policy needs n > 0, got %d", n)
	}
	return &Randomized{Kind: kind, N: n, Rng: rng}, nil
}

// Expand samples fresh parameters for each transformed copy.
func (r *Randomized) Expand(im *imaging.Image) []*imaging.Image {
	out := make([]*imaging.Image, 0, r.N)
	for i := 0; i < r.N; i++ {
		switch r.Kind {
		case "mR":
			deg := 15 + r.Rng.Float64()*60 // angle in [15°, 75°)
			out = append(out, imaging.Rotate(im, deg*degToRad))
		case "SH":
			mu := 0.4 + r.Rng.Float64()*0.7 // factor in [0.4, 1.1)
			out = append(out, imaging.Shear(im, mu))
		}
	}
	return out
}

// Name returns the randomized label, e.g. "rand-SH".
func (r *Randomized) Name() string { return "rand-" + r.Kind }

// ByName returns the standard policy for a short label used across the
// experiment tables: WO (nil), MR, mR, SH, HFlip, VFlip, MR+SH.
func ByName(label string) (Policy, error) {
	switch label {
	case "WO":
		return nil, nil
	case "MR":
		return MajorRotation{}, nil
	case "mR":
		return MinorRotation{}, nil
	case "SH":
		return Shearing{}, nil
	case "HFlip":
		return HFlip{}, nil
	case "VFlip":
		return VFlip{}, nil
	case "MR+SH":
		return NewCompose(MajorRotation{}, Shearing{}), nil
	default:
		return nil, fmt.Errorf("augment: unknown policy %q", label)
	}
}
