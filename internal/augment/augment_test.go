package augment

import (
	rand "math/rand/v2"
	"testing"

	"github.com/oasisfl/oasis/internal/imaging"
)

func probeImage(seed uint64) *imaging.Image {
	rng := rand.New(rand.NewPCG(seed, 1))
	im := imaging.NewImage(3, 8, 8)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

func TestExpansionCounts(t *testing.T) {
	im := probeImage(1)
	cases := []struct {
		p    Policy
		want int
	}{
		{MajorRotation{}, 3},
		{MinorRotation{}, 3},
		{Shearing{}, 3},
		{HFlip{}, 1},
		{VFlip{}, 1},
		{NewCompose(MajorRotation{}, Shearing{}), 6},
		{NewCompose(HFlip{}, VFlip{}, MajorRotation{}), 5},
	}
	for _, c := range cases {
		if got := len(c.p.Expand(im)); got != c.want {
			t.Errorf("%s: %d transforms, want %d", c.p.Name(), got, c.want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (MajorRotation{}).Name() != "MR" {
		t.Error("MR name")
	}
	if (MinorRotation{}).Name() != "mR" {
		t.Error("mR name")
	}
	if (Shearing{}).Name() != "SH" {
		t.Error("SH name")
	}
	if NewCompose(MajorRotation{}, Shearing{}).Name() != "MR+SH" {
		t.Error("compose name")
	}
}

func TestByName(t *testing.T) {
	for _, label := range []string{"MR", "mR", "SH", "HFlip", "VFlip", "MR+SH"} {
		p, err := ByName(label)
		if err != nil {
			t.Errorf("ByName(%q): %v", label, err)
			continue
		}
		if p == nil || p.Name() != label {
			t.Errorf("ByName(%q) = %v", label, p)
		}
	}
	if p, err := ByName("WO"); err != nil || p != nil {
		t.Errorf("ByName(WO) = (%v, %v), want (nil, nil)", p, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) did not error")
	}
}

func TestMajorRotationProducesDistinctOrientations(t *testing.T) {
	im := probeImage(2)
	out := MajorRotation{}.Expand(im)
	// 90° then 270° must invert each other back to the original.
	r90, r270 := out[0], out[2]
	back := imaging.Rotate90(r270)
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatal("expansion order is not (90°, 180°, 270°)")
		}
	}
	if imaging.MSE(r90, im) == 0 {
		t.Error("90° rotation equals original on a random image")
	}
}

func TestMinorRotationCustomAngles(t *testing.T) {
	im := probeImage(3)
	p := MinorRotation{Angles: []float64{10, 20}}
	if got := len(p.Expand(im)); got != 2 {
		t.Errorf("custom angles: %d transforms, want 2", got)
	}
}

func TestShearingCustomFactors(t *testing.T) {
	im := probeImage(4)
	p := Shearing{Factors: []float64{0.3}}
	if got := len(p.Expand(im)); got != 1 {
		t.Errorf("custom factors: %d transforms, want 1", got)
	}
}

func TestExpandDoesNotMutateInput(t *testing.T) {
	im := probeImage(5)
	orig := im.Clone()
	for _, p := range []Policy{MajorRotation{}, MinorRotation{}, Shearing{}, HFlip{}, VFlip{}} {
		p.Expand(im)
	}
	for i := range im.Pix {
		if im.Pix[i] != orig.Pix[i] {
			t.Fatal("a policy mutated its input image")
		}
	}
}

func TestRandomizedPolicy(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	p, err := NewRandomized("SH", 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	im := probeImage(6)
	a := p.Expand(im)
	b := p.Expand(im)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("randomized expansion counts: %d, %d", len(a), len(b))
	}
	// Parameters are re-sampled per call, so the two expansions differ.
	same := true
	for i := range a {
		if imaging.MSE(a[i], b[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Error("randomized policy produced identical parameters twice")
	}
	if p.Name() != "rand-SH" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestRandomizedPolicyValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	if _, err := NewRandomized("MR", 2, rng); err == nil {
		t.Error("non-parametric kind accepted")
	}
	if _, err := NewRandomized("SH", 0, rng); err == nil {
		t.Error("n=0 accepted")
	}
}
