package data

import (
	mrand "math/rand"
	rand "math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/oasisfl/oasis/internal/imaging"
)

func TestSynthDeterminism(t *testing.T) {
	ds := NewSynthCIFAR100(42)
	a, la := ds.Sample(17)
	b, lb := ds.Sample(17)
	if la != lb {
		t.Fatalf("labels differ: %d vs %d", la, lb)
	}
	if imaging.MSE(a, b) != 0 {
		t.Fatal("Sample(17) is not deterministic")
	}
	// Different seed ⇒ different images.
	other := NewSynthCIFAR100(43)
	c, _ := other.Sample(17)
	if imaging.MSE(a, c) == 0 {
		t.Fatal("different dataset seeds produced identical images")
	}
}

func TestSynthShapesAndRanges(t *testing.T) {
	cases := []Dataset{
		NewSynthImageNet(1),
		NewSynthCIFAR100(1),
		NewSynthCustom("x", 5, 1, 16, 16, 100, 1),
	}
	for _, ds := range cases {
		c, h, w := ds.Shape()
		im, label := ds.Sample(3)
		if im.C != c || im.H != h || im.W != w {
			t.Errorf("%s: image dims %dx%dx%d != Shape %dx%dx%d", ds.Name(), im.C, im.H, im.W, c, h, w)
		}
		if label < 0 || label >= ds.NumClasses() {
			t.Errorf("%s: label %d out of range", ds.Name(), label)
		}
		for _, v := range im.Pix {
			if v < 0 || v > 1 {
				t.Errorf("%s: pixel %g outside [0,1]", ds.Name(), v)
				break
			}
		}
	}
}

func TestSynthLabelCoverage(t *testing.T) {
	ds := NewSynthCustom("cov", 7, 1, 8, 8, 70, 3)
	counts := make([]int, 7)
	for i := 0; i < ds.Len(); i++ {
		_, y := ds.Sample(i)
		counts[y]++
	}
	for y, c := range counts {
		if c != 10 {
			t.Errorf("class %d has %d samples, want 10", y, c)
		}
	}
}

// TestSynthBrightnessSpread checks the property RTF depends on: distinct
// samples have distinct mean brightness with high probability.
func TestSynthBrightnessSpread(t *testing.T) {
	ds := NewSynthCIFAR100(5)
	rng := rand.New(rand.NewPCG(1, 1))
	seen := map[int64]bool{}
	for _, idx := range rng.Perm(ds.Len())[:64] {
		im, _ := ds.Sample(idx)
		bucket := int64(im.Mean() * 1e4)
		if seen[bucket] {
			t.Fatalf("two of 64 samples share brightness bucket %d — spread too tight", bucket)
		}
		seen[bucket] = true
	}
}

func TestBatchFlattenAnd4D(t *testing.T) {
	ds := NewSynthCustom("b", 4, 3, 6, 6, 64, 9)
	rng := rand.New(rand.NewPCG(2, 2))
	b, err := RandomBatch(ds, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	flat := b.Flatten()
	t4 := b.Tensor4D()
	if flat.Dim(0) != 5 || flat.Dim(1) != 3*6*6 {
		t.Errorf("Flatten shape %v", flat.Shape())
	}
	if t4.Dim(0) != 5 || t4.Dim(1) != 3 || t4.Dim(2) != 6 {
		t.Errorf("Tensor4D shape %v", t4.Shape())
	}
	// Same data, different layout.
	for i := 0; i < flat.Len(); i++ {
		if flat.Data()[i] != t4.Data()[i] {
			t.Fatal("Flatten and Tensor4D disagree")
		}
	}
}

func TestBatchClone(t *testing.T) {
	ds := NewSynthCustom("c", 4, 1, 4, 4, 32, 9)
	b, err := TakeBatch(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cl := b.Clone()
	cl.Images[0].Pix[0] = 99
	cl.Labels[0] = 3
	if b.Images[0].Pix[0] == 99 || b.Labels[0] == 3 {
		t.Error("Clone shares storage")
	}
}

func TestTakeBatchErrors(t *testing.T) {
	ds := NewSynthCustom("e", 2, 1, 4, 4, 10, 9)
	if _, err := TakeBatch(ds, []int{0, 10}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := TakeBatch(ds, []int{-1}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestRandomBatchSizeValidation(t *testing.T) {
	ds := NewSynthCustom("r", 2, 1, 4, 4, 8, 9)
	rng := rand.New(rand.NewPCG(3, 3))
	if _, err := RandomBatch(ds, rng, 9); err == nil {
		t.Error("oversized batch accepted")
	}
	b, err := RandomBatch(ds, rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 8 {
		t.Errorf("batch size %d", b.Size())
	}
}

func TestRandomBatchNoReplacement(t *testing.T) {
	// Pinned generator: at tiny rasters an unlucky time-seeded dataset seed
	// can saturate two samples to identical images (all-white/all-black),
	// which is noise, not a replacement bug — keep the inputs reproducible.
	cfg := &quick.Config{MaxCount: 5, Rand: mrand.New(mrand.NewSource(11))}
	err := quick.Check(func(seed uint64) bool {
		ds := NewSynthCustom("nr", 4, 1, 8, 8, 20, seed)
		rng := rand.New(rand.NewPCG(seed, 5))
		b, err := RandomBatch(ds, rng, 10)
		if err != nil {
			return false
		}
		// Distinct images (procedural samples differ across indices).
		for i := 0; i < b.Size(); i++ {
			for j := i + 1; j < b.Size(); j++ {
				if imaging.MSE(b.Images[i], b.Images[j]) == 0 {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestUniqueLabelBatch(t *testing.T) {
	ds := NewSynthCIFAR100(7)
	rng := rand.New(rand.NewPCG(4, 4))
	b, err := UniqueLabelBatch(ds, rng, 32)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, y := range b.Labels {
		if seen[y] {
			t.Fatalf("duplicate label %d in unique-label batch", y)
		}
		seen[y] = true
	}
	if _, err := UniqueLabelBatch(ds, rng, 101); err == nil {
		t.Error("batch larger than class count accepted")
	}
}

func TestSplitDisjointAndSized(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	parts, err := Split(100, rng, 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[0]) != 60 || len(parts[1]) != 30 {
		t.Fatalf("split sizes %d/%d", len(parts[0]), len(parts[1]))
	}
	seen := map[int]bool{}
	for _, part := range parts {
		for _, idx := range part {
			if seen[idx] {
				t.Fatalf("index %d in two parts", idx)
			}
			seen[idx] = true
		}
	}
	if _, err := Split(10, rng, 6, 6); err == nil {
		t.Error("oversubscribed split accepted")
	}
}

func TestSubset(t *testing.T) {
	ds := NewSynthCustom("s", 4, 1, 4, 4, 40, 11)
	sub := NewSubset(ds, []int{5, 6, 7}, "sub")
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	want, wantY := ds.Sample(6)
	got, gotY := sub.Sample(1)
	if wantY != gotY || imaging.MSE(want, got) != 0 {
		t.Error("subset index mapping broken")
	}
	if sub.NumClasses() != ds.NumClasses() {
		t.Error("subset class count")
	}
}

func TestBatchAppend(t *testing.T) {
	b := &Batch{}
	im := imaging.NewImage(1, 2, 2)
	b.Append(im, 3)
	if b.Size() != 1 || b.Labels[0] != 3 {
		t.Error("Append failed")
	}
}
