package data

import (
	"fmt"
	"math"
	rand "math/rand/v2"
	"sort"
)

// LazyPartition is the deferred form of a Partitioner's result: it performs
// every keyed draw the eager Partition would — permutations, Dirichlet
// proportions, log-normal weights, rebalancing — once, up front, but stores
// only the shuffled sample pools plus per-shard offset tables instead of n
// materialized [][]int shards. Shard(k) then reconstructs client k's exact
// eager shard on demand, without touching shards 0..k-1, so a
// million-client population costs O(samples) to describe and O(cohort) to
// materialize per round.
//
// The equivalence contract — Shard(k) == Partition(...)[k] element for
// element, for every partitioner and every population size — is pinned by
// the differential tests in lazy_test.go.
type LazyPartition struct {
	name string
	n    int
	// pools are the shuffled sample pools the policy drew (one for iid and
	// quantity, one per class for dirichlet); offsets[p] holds n+1 prefix
	// offsets, so pool p's slice of shard k is pools[p][offsets[p][k]:
	// offsets[p][k+1]]. Shard k is the concatenation of its pool slices in
	// pool order, which is exactly the eager append order.
	pools   [][]int32
	offsets [][]int32
	// lens are the final shard lengths after rebalancing.
	lens []int32
	// donated / received replay rebalanceEmpty without materializing: shard
	// k's base slice loses its donated[k] trailing elements, and an
	// originally-empty shard holds exactly the received[k] sample index
	// (-1 = none). Both are nil when no shard came up empty.
	donated  []int32
	received []int32
}

// Name labels the policy that produced the partition (e.g. "dirichlet:0.1").
func (lp *LazyPartition) Name() string { return lp.name }

// Shards returns the number of client shards n.
func (lp *LazyPartition) Shards() int { return lp.n }

// ShardLen returns shard k's size without materializing it.
func (lp *LazyPartition) ShardLen(k int) int { return int(lp.lens[k]) }

// Shard materializes client k's index shard, identical to the eager
// Partition result. The caller owns the returned slice.
func (lp *LazyPartition) Shard(k int) []int {
	base := 0
	for p := range lp.pools {
		base += int(lp.offsets[p][k+1] - lp.offsets[p][k])
	}
	out := make([]int, 0, max(base, 1))
	for p, pool := range lp.pools {
		for _, v := range pool[lp.offsets[p][k]:lp.offsets[p][k+1]] {
			out = append(out, int(v))
		}
	}
	if lp.donated != nil && lp.donated[k] > 0 {
		out = out[:len(out)-int(lp.donated[k])]
	}
	if lp.received != nil && lp.received[k] >= 0 {
		out = append(out, int(lp.received[k]))
	}
	return out
}

// Stats summarizes the shard sizes without materializing any shard.
func (lp *LazyPartition) Stats() (minLen, maxLen int, mean float64) {
	minLen = math.MaxInt
	total := 0
	for _, l := range lp.lens {
		if int(l) < minLen {
			minLen = int(l)
		}
		if int(l) > maxLen {
			maxLen = int(l)
		}
		total += int(l)
	}
	if lp.n == 0 {
		return 0, 0, 0
	}
	return minLen, maxLen, float64(total) / float64(lp.n)
}

// elementAt returns shard k's base element at position pos (pool
// concatenation order, before rebalancing edits).
func (lp *LazyPartition) elementAt(k, pos int) int32 {
	for p, pool := range lp.pools {
		span := int(lp.offsets[p][k+1] - lp.offsets[p][k])
		if pos < span {
			return pool[int(lp.offsets[p][k])+pos]
		}
		pos -= span
	}
	panic("data: lazy partition rebalance position out of range")
}

// rebalance replays rebalanceEmpty on the offset tables: the same
// lowest-indexed-largest donor gives its current last element to each empty
// shard in index order, recorded as (donated count, received sample) edits
// instead of slice mutations.
func (lp *LazyPartition) rebalance() {
	empty := false
	for _, l := range lp.lens {
		if l == 0 {
			empty = true
			break
		}
	}
	if !empty {
		return
	}
	baseLens := append([]int32(nil), lp.lens...)
	lp.donated = make([]int32, lp.n)
	lp.received = make([]int32, lp.n)
	for i := range lp.received {
		lp.received[i] = -1
	}
	for i := 0; i < lp.n; i++ {
		if lp.lens[i] > 0 {
			continue
		}
		donor, best := -1, int32(1)
		for j := range lp.lens {
			if lp.lens[j] > best {
				donor, best = j, lp.lens[j]
			}
		}
		if donor < 0 {
			continue // nothing to donate; caller guaranteed len ≥ n, unreachable
		}
		pos := int(baseLens[donor] - 1 - lp.donated[donor])
		lp.received[i] = lp.elementAt(donor, pos)
		lp.donated[donor]++
		lp.lens[donor]--
		lp.lens[i] = 1
	}
}

// LazyPartitioner is implemented by partitioners that can build the deferred
// form directly from their keyed stream. All built-in policies qualify;
// PartitionLazy falls back to eager materialization for any that do not.
type LazyPartitioner interface {
	Partitioner
	PartitionLazy(ds Dataset, n int, rng *rand.Rand) (*LazyPartition, error)
}

// PartitionLazy resolves p's partition in deferred form. Policies
// implementing LazyPartitioner consume exactly the rng draws their eager
// Partition would, so the two forms describe the same population bit for
// bit; other policies are materialized eagerly and wrapped, preserving
// correctness at eager memory cost.
func PartitionLazy(p Partitioner, ds Dataset, n int, rng *rand.Rand) (*LazyPartition, error) {
	if lazy, ok := p.(LazyPartitioner); ok {
		return lazy.PartitionLazy(ds, n, rng)
	}
	parts, err := p.Partition(ds, n, rng)
	if err != nil {
		return nil, err
	}
	pool := make([]int32, 0, ds.Len())
	offsets := make([]int32, n+1)
	lens := make([]int32, n)
	for k, shard := range parts {
		for _, v := range shard {
			pool = append(pool, int32(v))
		}
		offsets[k+1] = int32(len(pool))
		lens[k] = int32(len(shard))
	}
	return &LazyPartition{
		name: p.Name(), n: n,
		pools: [][]int32{pool}, offsets: [][]int32{offsets}, lens: lens,
	}, nil
}

// toInt32 narrows an index slice for compact pool storage.
func toInt32(idx []int) []int32 {
	out := make([]int32, len(idx))
	for i, v := range idx {
		out[i] = int32(v)
	}
	return out
}

// PartitionLazy stores the single permutation and slices it by offsets.
func (IID) PartitionLazy(ds Dataset, n int, rng *rand.Rand) (*LazyPartition, error) {
	if err := checkPartitionArgs(ds, n); err != nil {
		return nil, err
	}
	pool := toInt32(rng.Perm(ds.Len()))
	per, rem := ds.Len()/n, ds.Len()%n
	offsets := make([]int32, n+1)
	lens := make([]int32, n)
	for k := 0; k < n; k++ {
		size := per
		if k < rem {
			size++
		}
		lens[k] = int32(size)
		offsets[k+1] = offsets[k] + int32(size)
	}
	return &LazyPartition{
		name: IID{}.Name(), n: n,
		pools: [][]int32{pool}, offsets: [][]int32{offsets}, lens: lens,
	}, nil
}

// PartitionLazy keeps one shuffled pool and offset row per class; the draws
// (per-class shuffle, Dirichlet proportions, apportionment, rebalancing)
// mirror the eager Partition operation for operation.
func (d Dirichlet) PartitionLazy(ds Dataset, n int, rng *rand.Rand) (*LazyPartition, error) {
	if err := checkPartitionArgs(ds, n); err != nil {
		return nil, err
	}
	if d.Alpha <= 0 {
		return nil, fmt.Errorf("data: dirichlet alpha must be > 0, got %g", d.Alpha)
	}
	byClass, order := classIndex(ds)
	lp := &LazyPartition{name: d.Name(), n: n, lens: make([]int32, n)}
	for _, y := range order {
		idx := byClass[y]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		props := dirichletDraw(rng, d.Alpha, n)
		counts := apportion(props, len(idx))
		offsets := make([]int32, n+1)
		for c, k := range counts {
			offsets[c+1] = offsets[c] + int32(k)
			lp.lens[c] += int32(k)
		}
		lp.pools = append(lp.pools, toInt32(idx))
		lp.offsets = append(lp.offsets, offsets)
	}
	lp.rebalance()
	return lp, nil
}

// PartitionLazy draws the weights then the permutation, in the eager order,
// and stores the permutation sliced by the apportioned counts.
func (q Quantity) PartitionLazy(ds Dataset, n int, rng *rand.Rand) (*LazyPartition, error) {
	if err := checkPartitionArgs(ds, n); err != nil {
		return nil, err
	}
	if q.Sigma < 0 {
		return nil, fmt.Errorf("data: quantity sigma must be ≥ 0, got %g", q.Sigma)
	}
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64() * q.Sigma)
		total += weights[i]
	}
	props := make([]float64, n)
	for i, w := range weights {
		props[i] = w / total
	}
	counts := apportion(props, ds.Len())
	pool := toInt32(rng.Perm(ds.Len()))
	offsets := make([]int32, n+1)
	lens := make([]int32, n)
	for k, c := range counts {
		lens[k] = int32(c)
		offsets[k+1] = offsets[k] + int32(c)
	}
	lp := &LazyPartition{
		name: q.Name(), n: n,
		pools: [][]int32{pool}, offsets: [][]int32{offsets}, lens: lens,
	}
	lp.rebalance()
	return lp, nil
}

var (
	_ LazyPartitioner = IID{}
	_ LazyPartitioner = Dirichlet{}
	_ LazyPartitioner = Quantity{}
)

// classIndex groups the dataset's sample indices by label, with the labels
// in sorted order — the shared first step of both Dirichlet forms.
func classIndex(ds Dataset) (byClass map[int][]int, order []int) {
	byClass = make(map[int][]int)
	for i := 0; i < ds.Len(); i++ {
		y := sampleLabel(ds, i)
		if _, ok := byClass[y]; !ok {
			order = append(order, y)
		}
		byClass[y] = append(byClass[y], i)
	}
	sort.Ints(order)
	return byClass, order
}

// sampleLabel reads sample i's label, through the Labeler fast path when the
// dataset offers one — label-skew partitioning over a procedural
// million-sample dataset must not render every image just to learn its
// class.
func sampleLabel(ds Dataset, i int) int {
	if l, ok := ds.(Labeler); ok {
		return l.Label(i)
	}
	_, y := ds.Sample(i)
	return y
}
