package data

import (
	"math"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/imaging"
)

// Synth is a deterministic procedural image dataset. Sample(i) derives its
// own PCG stream from (seed, i), so the dataset behaves like a fixed on-disk
// corpus: the same index always yields the same image, with no ordering or
// caching effects.
//
// Class structure: each class owns a palette and a pattern family (stripes,
// checkers, rings, radial gradient, blobs) with class-specific frequency and
// orientation. Per-sample jitter moves phase/position/scale, adds pixel
// noise, and shifts global brightness — the brightness spread is what gives
// the RTF attack's mean-brightness bins their resolving power, mirroring
// natural image statistics.
type Synth struct {
	name    string
	classes int
	c, h, w int
	n       int
	seed    uint64
	noise   float64
}

var _ Dataset = (*Synth)(nil)

// NewSynthImageNet returns the stand-in for the paper's 10-class ImageNet
// subset (imagenette classes) at 64×64×3.
func NewSynthImageNet(seed uint64) *Synth {
	return &Synth{name: "synth-imagenet", classes: 10, c: 3, h: 64, w: 64, n: 4096, seed: seed, noise: 0.04}
}

// NewSynthCIFAR100 returns the stand-in for CIFAR100 at 32×32×3 with 100
// classes.
func NewSynthCIFAR100(seed uint64) *Synth {
	return &Synth{name: "synth-cifar100", classes: 100, c: 3, h: 32, w: 32, n: 8192, seed: seed, noise: 0.05}
}

// NewSynthCustom builds a synthetic dataset with explicit geometry; used by
// tests and the example scenarios (e.g. 1-channel "medical scans").
func NewSynthCustom(name string, classes, c, h, w, n int, seed uint64) *Synth {
	return &Synth{name: name, classes: classes, c: c, h: h, w: w, n: n, seed: seed, noise: 0.04}
}

// Name returns the dataset identifier.
func (s *Synth) Name() string { return s.name }

// NumClasses returns the label cardinality.
func (s *Synth) NumClasses() int { return s.classes }

// Shape returns (channels, height, width).
func (s *Synth) Shape() (int, int, int) { return s.c, s.h, s.w }

// Len returns the virtual dataset size.
func (s *Synth) Len() int { return s.n }

// Label returns sample i's class without rendering the image; it matches the
// label Sample(i) produces.
func (s *Synth) Label(i int) int { return i % s.classes }

// Sample deterministically generates the image and label for index i.
func (s *Synth) Sample(i int) (*imaging.Image, int) {
	rng := rand.New(rand.NewPCG(s.seed, uint64(i)*0x9e3779b97f4a7c15+1))
	label := i % s.classes
	im := s.render(label, rng)
	return im, label
}

// render paints one sample of the given class.
func (s *Synth) render(label int, rng *rand.Rand) *imaging.Image {
	im := imaging.NewImage(s.c, s.h, s.w)
	// Class-invariant style parameters, derived only from the label.
	crng := rand.New(rand.NewPCG(s.seed^0xabcdef, uint64(label)+1))
	palette := make([][3]float64, 3)
	for p := range palette {
		hue := math.Mod(float64(label)*0.61803398875+float64(p)*0.31, 1.0)
		palette[p] = hueToRGB(hue, 0.55+0.3*crng.Float64(), 0.35+0.3*crng.Float64())
	}
	family := label % 5
	freq := 1.5 + float64((label/5)%4)
	baseAngle := crng.Float64() * math.Pi

	// Per-sample jitter.
	phase := rng.Float64() * 2 * math.Pi
	angle := baseAngle + (rng.Float64()-0.5)*0.6
	cx := 0.3 + 0.4*rng.Float64()
	cy := 0.3 + 0.4*rng.Float64()
	scale := 0.8 + 0.4*rng.Float64()
	brightness := (rng.Float64() - 0.5) * 0.5 // wide mean-brightness spread
	cosA, sinA := math.Cos(angle), math.Sin(angle)

	for y := 0; y < s.h; y++ {
		fy := float64(y) / float64(s.h-1)
		for x := 0; x < s.w; x++ {
			fx := float64(x) / float64(s.w-1)
			// Rotate coordinates for oriented patterns.
			u := (fx-0.5)*cosA - (fy-0.5)*sinA
			v := (fx-0.5)*sinA + (fy-0.5)*cosA
			var t float64 // pattern coordinate in [0,1]
			switch family {
			case 0: // stripes
				t = 0.5 + 0.5*math.Sin(2*math.Pi*freq*u*scale+phase)
			case 1: // checkers
				a := math.Sin(2*math.Pi*freq*u*scale + phase)
				b := math.Sin(2 * math.Pi * freq * v * scale)
				t = 0.5 + 0.5*a*b
			case 2: // rings
				r := math.Hypot(fx-cx, fy-cy)
				t = 0.5 + 0.5*math.Sin(2*math.Pi*freq*2*r*scale+phase)
			case 3: // radial gradient
				r := math.Hypot(fx-cx, fy-cy) * scale
				t = math.Max(0, 1-1.6*r)
			default: // soft blobs
				t = 0.5*blob(fx, fy, cx, cy, 0.18*scale) +
					0.5*blob(fx, fy, 1-cx, 1-cy, 0.22*scale)
			}
			// Two-color mix plus a low-frequency background wash.
			bg := 0.15 * math.Sin(2*math.Pi*(fx+fy)+phase)
			for ch := 0; ch < s.c; ch++ {
				c0 := palette[0][ch%3]
				c1 := palette[1][ch%3]
				val := c0*(1-t) + c1*t + bg*palette[2][ch%3]
				val += brightness + rng.NormFloat64()*s.noise
				im.Set(ch, y, x, clamp01(val))
			}
		}
	}
	return im
}

func blob(x, y, cx, cy, sigma float64) float64 {
	d2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
	return math.Exp(-d2 / (2 * sigma * sigma))
}

// hueToRGB converts HSL-ish coordinates to RGB in [0,1].
func hueToRGB(h, s, l float64) [3]float64 {
	c := (1 - math.Abs(2*l-1)) * s
	hp := h * 6
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := l - c/2
	return [3]float64{clamp01(r + m), clamp01(g + m), clamp01(b + m)}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
