package data

import (
	"fmt"
	rand "math/rand/v2"
	"reflect"
	"testing"
)

// lazyCases crosses every built-in policy with ragged population sizes,
// including combinations chosen to force the empty-shard rebalance path
// (many clients vs few samples with heavy skew).
var lazyCases = []struct {
	spec    string
	samples int
	clients []int
}{
	{"iid", 101, []int{1, 3, 7, 12, 97, 101}},
	{"dirichlet:0.5", 101, []int{1, 4, 10, 33}},
	{"dirichlet:0.1", 64, []int{5, 17, 50}}, // alpha 0.1 + n≈len forces rebalancing
	{"dirichlet:0.05", 60, []int{48, 60}},   // extreme skew: many empty draws
	{"quantity:0.5", 101, []int{2, 9, 25}},
	{"quantity:1", 50, []int{7, 40, 50}}, // sigma 1 + n≈len forces rebalancing
	{"quantity:0", 30, []int{4, 30}},
}

// TestLazyShardMatchesEager is the differential proof behind the
// lazy-materialization engine: for every policy and every shard k,
// Shard(k) must equal the eager Partition(...)[k] element for element,
// with ShardLen and Stats agreeing — including populations where the
// empty-shard rebalance rewrites donor shards.
func TestLazyShardMatchesEager(t *testing.T) {
	for _, tc := range lazyCases {
		for _, n := range tc.clients {
			t.Run(fmt.Sprintf("%s/n=%d", tc.spec, n), func(t *testing.T) {
				p, err := NewPartitioner(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				ds := NewSynthCustom("lazy-diff", 10, 1, 4, 4, tc.samples, 7)
				eager, err := p.Partition(ds, n, rand.New(rand.NewPCG(99, 0x5c3a)))
				if err != nil {
					t.Fatal(err)
				}
				lazy, err := PartitionLazy(p, ds, n, rand.New(rand.NewPCG(99, 0x5c3a)))
				if err != nil {
					t.Fatal(err)
				}
				if lazy.Name() != p.Name() || lazy.Shards() != n {
					t.Fatalf("lazy identity = (%q, %d), want (%q, %d)", lazy.Name(), lazy.Shards(), p.Name(), n)
				}
				rebalanced := false
				eMin, eMax, eTotal := tc.samples, 0, 0
				for k := range eager {
					if got := lazy.Shard(k); !reflect.DeepEqual(got, eager[k]) {
						t.Fatalf("shard %d diverged:\n lazy: %v\neager: %v", k, got, eager[k])
					}
					if got := lazy.ShardLen(k); got != len(eager[k]) {
						t.Fatalf("ShardLen(%d) = %d, want %d", k, got, len(eager[k]))
					}
					if len(eager[k]) == 1 {
						rebalanced = true // possible donation target; not conclusive alone
					}
					eMin = min(eMin, len(eager[k]))
					eMax = max(eMax, len(eager[k]))
					eTotal += len(eager[k])
				}
				_ = rebalanced
				gotMin, gotMax, gotMean := lazy.Stats()
				if gotMin != eMin || gotMax != eMax || gotMean != float64(eTotal)/float64(n) {
					t.Fatalf("Stats() = (%d, %d, %g), want (%d, %d, %g)",
						gotMin, gotMax, gotMean, eMin, eMax, float64(eTotal)/float64(n))
				}
			})
		}
	}
}

// TestLazyRebalanceActuallyExercised guards the test matrix itself: at least
// one case must hit the empty-shard rebalance, otherwise the donated /
// received replay in LazyPartition is dead code under test.
func TestLazyRebalanceActuallyExercised(t *testing.T) {
	hit := false
	for _, tc := range lazyCases {
		for _, n := range tc.clients {
			p, err := NewPartitioner(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			ds := NewSynthCustom("lazy-diff", 10, 1, 4, 4, tc.samples, 7)
			lazy, err := PartitionLazy(p, ds, n, rand.New(rand.NewPCG(99, 0x5c3a)))
			if err != nil {
				t.Fatal(err)
			}
			if lazy.donated != nil {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatal("no lazy case triggered empty-shard rebalancing; widen lazyCases")
	}
}

// eagerOnly hides the LazyPartitioner refinement so the fallback path of the
// package-level PartitionLazy is reachable.
type eagerOnly struct{ IID }

func (e eagerOnly) Partition(ds Dataset, n int, rng *rand.Rand) ([][]int, error) {
	return e.IID.Partition(ds, n, rng)
}

// TestLazyFallbackMaterializesEagerly pins the compatibility path: a
// partitioner without PartitionLazy is materialized eagerly and wrapped,
// with identical shards.
func TestLazyFallbackMaterializesEagerly(t *testing.T) {
	ds := NewSynthCustom("lazy-fallback", 10, 1, 4, 4, 23, 7)
	eager, err := eagerOnly{}.Partition(ds, 5, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := PartitionLazy(eagerOnly{}, ds, 5, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	for k := range eager {
		if got := lazy.Shard(k); !reflect.DeepEqual(got, eager[k]) {
			t.Fatalf("fallback shard %d = %v, want %v", k, got, eager[k])
		}
	}
}

// TestIIDShardPrefixStability pins the keyed-stream property the virtual
// engine's determinism rests on: the permutation underlying IID depends only
// on (dataset, seed), never on the client count, so growing the population
// re-slices the same stream instead of reshuffling it. Concatenating all
// shards must therefore yield the identical sequence for every n.
func TestIIDShardPrefixStability(t *testing.T) {
	ds := NewSynthCustom("lazy-prefix", 10, 1, 4, 4, 60, 7)
	flatten := func(n int) []int {
		lazy, err := PartitionLazy(IID{}, ds, n, rand.New(rand.NewPCG(11, 0x5c3a)))
		if err != nil {
			t.Fatal(err)
		}
		var all []int
		for k := 0; k < n; k++ {
			all = append(all, lazy.Shard(k)...)
		}
		return all
	}
	base := flatten(4)
	for _, n := range []int{5, 12, 60} {
		if got := flatten(n); !reflect.DeepEqual(got, base) {
			t.Fatalf("underlying IID stream changed when growing clients 4→%d", n)
		}
	}
}

// TestLazyPartitionErrors mirrors the eager validation: bad arguments fail
// identically through the lazy entry point.
func TestLazyPartitionErrors(t *testing.T) {
	ds := NewSynthCustom("lazy-err", 10, 1, 4, 4, 5, 7)
	rng := func() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }
	if _, err := PartitionLazy(IID{}, ds, 0, rng()); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := PartitionLazy(IID{}, ds, 6, rng()); err == nil {
		t.Error("n > len should fail")
	}
	if _, err := PartitionLazy(Dirichlet{Alpha: -1}, ds, 2, rng()); err == nil {
		t.Error("negative alpha should fail")
	}
	if _, err := PartitionLazy(Quantity{Sigma: -1}, ds, 2, rng()); err == nil {
		t.Error("negative sigma should fail")
	}
}

// TestSynthLabelMatchesSample pins the Labeler fast path against the
// rendering path.
func TestSynthLabelMatchesSample(t *testing.T) {
	ds := NewSynthCustom("label-check", 7, 1, 4, 4, 29, 3)
	for i := 0; i < ds.Len(); i++ {
		_, want := ds.Sample(i)
		if got := ds.Label(i); got != want {
			t.Fatalf("Label(%d) = %d, Sample label = %d", i, got, want)
		}
	}
}
