package data

import (
	"math"
	rand "math/rand/v2"
	"reflect"
	"testing"
)

func partitionTestDataset() Dataset {
	return NewSynthCustom("part", 10, 1, 8, 8, 400, 7)
}

// checkCover asserts the shards are non-empty, disjoint, and cover every
// index exactly once.
func checkCover(t *testing.T, ds Dataset, parts [][]int, n int) {
	t.Helper()
	if len(parts) != n {
		t.Fatalf("got %d shards, want %d", len(parts), n)
	}
	seen := make(map[int]bool, ds.Len())
	for i, p := range parts {
		if len(p) == 0 {
			t.Fatalf("shard %d is empty", i)
		}
		for _, idx := range p {
			if idx < 0 || idx >= ds.Len() {
				t.Fatalf("shard %d holds out-of-range index %d", i, idx)
			}
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != ds.Len() {
		t.Fatalf("%d of %d indices covered", len(seen), ds.Len())
	}
}

func TestPartitionersDisjointCoverage(t *testing.T) {
	ds := partitionTestDataset()
	for _, p := range []Partitioner{IID{}, Dirichlet{Alpha: 0.1}, Dirichlet{Alpha: 100}, Quantity{Sigma: 1}} {
		for _, n := range []int{1, 3, 17, 64} {
			parts, err := p.Partition(ds, n, rand.New(rand.NewPCG(1, 2)))
			if err != nil {
				t.Fatalf("%s n=%d: %v", p.Name(), n, err)
			}
			checkCover(t, ds, parts, n)
		}
	}
}

func TestPartitionerDeterminism(t *testing.T) {
	ds := partitionTestDataset()
	for _, spec := range []string{"iid", "dirichlet:0.1", "quantity:1"} {
		p, err := NewPartitioner(spec)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Partition(ds, 12, rand.New(rand.NewPCG(5, 6)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Partition(ds, 12, rand.New(rand.NewPCG(5, 6)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different partitions", spec)
		}
		c, err := p.Partition(ds, 12, rand.New(rand.NewPCG(5, 7)))
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical partitions", spec)
		}
	}
}

// maxClassShare returns the mean (over shards) of the largest single-class
// share within each shard — 1/classes for perfectly balanced shards, →1 as
// each shard collapses onto one class.
func maxClassShare(ds Dataset, parts [][]int) float64 {
	total := 0.0
	for _, p := range parts {
		counts := map[int]int{}
		for _, idx := range p {
			_, y := ds.Sample(idx)
			counts[y]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		total += float64(best) / float64(len(p))
	}
	return total / float64(len(parts))
}

func TestDirichletSkewScalesWithAlpha(t *testing.T) {
	ds := partitionTestDataset()
	share := func(alpha float64) float64 {
		parts, err := Dirichlet{Alpha: alpha}.Partition(ds, 10, rand.New(rand.NewPCG(3, 4)))
		if err != nil {
			t.Fatal(err)
		}
		return maxClassShare(ds, parts)
	}
	skewed, balanced := share(0.1), share(100)
	if skewed <= balanced {
		t.Fatalf("alpha=0.1 max-class share %.3f not above alpha=100 share %.3f", skewed, balanced)
	}
	// alpha=100 should be close to the IID floor (1/10 classes), alpha=0.1
	// should concentrate most of a shard on few classes.
	if balanced > 0.35 {
		t.Errorf("alpha=100 share %.3f; want near-IID (≤0.35)", balanced)
	}
	if skewed < 0.5 {
		t.Errorf("alpha=0.1 share %.3f; want concentrated (≥0.5)", skewed)
	}
}

func TestQuantitySkewScalesWithSigma(t *testing.T) {
	ds := partitionTestDataset()
	spread := func(sigma float64) float64 {
		parts, err := Quantity{Sigma: sigma}.Partition(ds, 10, rand.New(rand.NewPCG(8, 9)))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := math.Inf(1), 0.0
		for _, p := range parts {
			lo = math.Min(lo, float64(len(p)))
			hi = math.Max(hi, float64(len(p)))
		}
		return hi / lo
	}
	if s0 := spread(0); s0 > 1.01 {
		t.Errorf("sigma=0 size ratio %.2f; want equal shards", s0)
	}
	if s1 := spread(1.5); s1 < 2 {
		t.Errorf("sigma=1.5 size ratio %.2f; want strongly skewed (≥2)", s1)
	}
}

func TestPartitionErrors(t *testing.T) {
	ds := NewSynthCustom("tiny", 2, 1, 4, 4, 5, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	for _, p := range []Partitioner{IID{}, Dirichlet{Alpha: 1}, Quantity{Sigma: 1}} {
		if _, err := p.Partition(ds, 6, rng); err == nil {
			t.Errorf("%s: expected error for more clients than samples", p.Name())
		}
		if _, err := p.Partition(ds, 0, rng); err == nil {
			t.Errorf("%s: expected error for zero clients", p.Name())
		}
	}
}

func TestNewPartitionerSpecs(t *testing.T) {
	for spec, want := range map[string]string{
		"iid":           "iid",
		"dirichlet":     "dirichlet:0.5",
		"dirichlet:0.1": "dirichlet:0.1",
		"quantity:2":    "quantity:2",
	} {
		p, err := NewPartitioner(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if p.Name() != want {
			t.Errorf("%s: Name() = %s, want %s", spec, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "zipf", "dirichlet:x", "dirichlet:-1", "quantity:-2", "iid:3"} {
		if _, err := NewPartitioner(bad); err == nil {
			t.Errorf("NewPartitioner(%q): expected error", bad)
		}
	}
}
