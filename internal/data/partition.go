package data

import (
	"fmt"
	"math"
	rand "math/rand/v2"
	"sort"
	"strconv"
	"strings"
)

// Partitioner splits a dataset's index space [0, ds.Len()) into n disjoint
// client shards that together cover every sample exactly once. It is how a
// simulated FL population decides who owns which data.
//
// Contract:
//
//   - Every index appears in exactly one shard (disjointness + coverage).
//   - Every shard is non-empty; implementations rebalance if a draw would
//     leave a client with no data (an empty shard cannot train).
//   - The result depends only on (ds.Len(), labels, n, rng state), so a
//     fixed seed reproduces the same population bit for bit.
type Partitioner interface {
	// Name labels the policy for logs and reports (e.g. "dirichlet:0.1").
	Name() string
	// Partition returns n index shards over ds.
	Partition(ds Dataset, n int, rng *rand.Rand) ([][]int, error)
}

// NewPartitioner resolves a partitioning policy from its textual spec:
//
//	iid               equal-size random shards (remainders distributed)
//	dirichlet[:a]     label skew: per class, client shares ~ Dirichlet(a·1);
//	                  a defaults to 0.5, smaller a = more skew
//	quantity[:s]      size skew: shard sizes ~ LogNormal(0, s); s defaults
//	                  to 0.5, larger s = more unequal shards
func NewPartitioner(spec string) (Partitioner, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	parse := func(def float64) (float64, error) {
		if !hasArg {
			return def, nil
		}
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return 0, fmt.Errorf("data: partitioner %q: bad parameter %q", spec, arg)
		}
		return v, nil
	}
	switch name {
	case "iid":
		if hasArg {
			return nil, fmt.Errorf("data: partitioner iid takes no parameter, got %q", spec)
		}
		return IID{}, nil
	case "dirichlet":
		a, err := parse(0.5)
		if err != nil {
			return nil, err
		}
		if a <= 0 {
			return nil, fmt.Errorf("data: dirichlet alpha must be > 0, got %g", a)
		}
		return Dirichlet{Alpha: a}, nil
	case "quantity":
		s, err := parse(0.5)
		if err != nil {
			return nil, err
		}
		if s < 0 {
			return nil, fmt.Errorf("data: quantity sigma must be ≥ 0, got %g", s)
		}
		return Quantity{Sigma: s}, nil
	default:
		return nil, fmt.Errorf("data: unknown partitioner %q (want iid, dirichlet[:alpha], quantity[:sigma])", spec)
	}
}

// PartitionerNames lists the textual specs NewPartitioner accepts.
func PartitionerNames() []string { return []string{"iid", "dirichlet:<alpha>", "quantity:<sigma>"} }

// checkPartitionArgs validates the shared preconditions of all partitioners.
func checkPartitionArgs(ds Dataset, n int) error {
	if n <= 0 {
		return fmt.Errorf("data: cannot partition into %d shards", n)
	}
	if n > ds.Len() {
		return fmt.Errorf("data: cannot partition %s (%d samples) across %d clients: need at least one sample per client",
			ds.Name(), ds.Len(), n)
	}
	return nil
}

// IID shards uniformly at random into near-equal sizes: the first
// len%n shards receive one extra sample, so no index is ever dropped.
type IID struct{}

var _ Partitioner = IID{}

// Name returns "iid".
func (IID) Name() string { return "iid" }

// Partition permutes the index space and slices it into near-equal shards.
func (IID) Partition(ds Dataset, n int, rng *rand.Rand) ([][]int, error) {
	if err := checkPartitionArgs(ds, n); err != nil {
		return nil, err
	}
	perm := rng.Perm(ds.Len())
	per, rem := ds.Len()/n, ds.Len()%n
	out := make([][]int, n)
	off := 0
	for i := range out {
		size := per
		if i < rem {
			size++
		}
		out[i] = append([]int(nil), perm[off:off+size]...)
		off += size
	}
	return out, nil
}

// Dirichlet is the standard label-skew partitioner of the non-IID FL
// literature (Hsu et al., arXiv:1909.06335): for every class, the class's
// samples are divided among the n clients according to proportions drawn
// from Dirichlet(Alpha·1ₙ). Small Alpha (e.g. 0.1) concentrates each class
// on a few clients; large Alpha approaches IID.
type Dirichlet struct {
	Alpha float64
}

var _ Partitioner = Dirichlet{}

// Name returns "dirichlet:<alpha>".
func (d Dirichlet) Name() string { return fmt.Sprintf("dirichlet:%g", d.Alpha) }

// Partition splits each class's samples by Dirichlet-drawn proportions, then
// rebalances so every client ends up with at least one sample.
func (d Dirichlet) Partition(ds Dataset, n int, rng *rand.Rand) ([][]int, error) {
	if err := checkPartitionArgs(ds, n); err != nil {
		return nil, err
	}
	if d.Alpha <= 0 {
		return nil, fmt.Errorf("data: dirichlet alpha must be > 0, got %g", d.Alpha)
	}
	byClass, order := classIndex(ds)
	out := make([][]int, n)
	for _, y := range order {
		idx := byClass[y]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		props := dirichletDraw(rng, d.Alpha, n)
		counts := apportion(props, len(idx))
		off := 0
		for c, k := range counts {
			out[c] = append(out[c], idx[off:off+k]...)
			off += k
		}
	}
	rebalanceEmpty(out)
	return out, nil
}

// Quantity is the size-skew partitioner: shard sizes are proportional to
// LogNormal(0, Sigma) draws (class balance stays roughly IID). Sigma = 0
// degenerates to equal sizes; Sigma ≈ 1 yields order-of-magnitude spread.
type Quantity struct {
	Sigma float64
}

var _ Partitioner = Quantity{}

// Name returns "quantity:<sigma>".
func (q Quantity) Name() string { return fmt.Sprintf("quantity:%g", q.Sigma) }

// Partition draws per-client log-normal weights, apportions the index space
// by them, and slices a random permutation accordingly.
func (q Quantity) Partition(ds Dataset, n int, rng *rand.Rand) ([][]int, error) {
	if err := checkPartitionArgs(ds, n); err != nil {
		return nil, err
	}
	if q.Sigma < 0 {
		return nil, fmt.Errorf("data: quantity sigma must be ≥ 0, got %g", q.Sigma)
	}
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64() * q.Sigma)
		total += weights[i]
	}
	props := make([]float64, n)
	for i, w := range weights {
		props[i] = w / total
	}
	counts := apportion(props, ds.Len())
	perm := rng.Perm(ds.Len())
	out := make([][]int, n)
	off := 0
	for i, k := range counts {
		out[i] = append([]int(nil), perm[off:off+k]...)
		off += k
	}
	rebalanceEmpty(out)
	return out, nil
}

// dirichletDraw samples a probability vector from Dirichlet(alpha·1ₙ) via
// normalized Gamma(alpha, 1) draws.
func dirichletDraw(rng *rand.Rand, alpha float64, n int) []float64 {
	g := make([]float64, n)
	total := 0.0
	for i := range g {
		g[i] = gammaDraw(rng, alpha)
		total += g[i]
	}
	if total == 0 { // vanishingly unlikely underflow for tiny alpha
		for i := range g {
			g[i] = 1 / float64(n)
		}
		return g
	}
	for i := range g {
		g[i] /= total
	}
	return g
}

// gammaDraw samples Gamma(alpha, 1) by Marsaglia–Tsang squeeze, with the
// standard U^(1/alpha) boost for alpha < 1.
func gammaDraw(rng *rand.Rand, alpha float64) float64 {
	if alpha < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// apportion converts fractional proportions into integer counts summing
// exactly to total (largest-remainder method, ties broken by index).
func apportion(props []float64, total int) []int {
	counts := make([]int, len(props))
	type frac struct {
		i int
		f float64
	}
	rem := total
	fracs := make([]frac, len(props))
	for i, p := range props {
		exact := p * float64(total)
		counts[i] = int(math.Floor(exact))
		rem -= counts[i]
		fracs[i] = frac{i: i, f: exact - math.Floor(exact)}
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for k := 0; k < rem; k++ {
		counts[fracs[k%len(fracs)].i]++
	}
	return counts
}

// rebalanceEmpty moves one sample from the currently largest shard into each
// empty shard, so every client can train. Deterministic: the donor is the
// lowest-indexed largest shard, and the moved sample is its last element.
func rebalanceEmpty(parts [][]int) {
	for i := range parts {
		if len(parts[i]) > 0 {
			continue
		}
		donor, best := -1, 1
		for j := range parts {
			if len(parts[j]) > best {
				donor, best = j, len(parts[j])
			}
		}
		if donor < 0 {
			continue // nothing to donate; caller guaranteed len ≥ n, unreachable
		}
		last := len(parts[donor]) - 1
		parts[i] = append(parts[i], parts[donor][last])
		parts[donor] = parts[donor][:last]
	}
}
