// Package data defines the dataset abstraction and batches used by the FL
// clients, plus deterministic synthetic stand-ins for the paper's ImageNet
// (10-class subset) and CIFAR100 evaluation sets.
//
// Real ImageNet/CIFAR100 are unavailable offline; per the substitution rule
// the generators below produce procedural images with (a) class-dependent
// structure so classification is learnable (Table I), and (b) per-sample
// continuous variation in mean brightness, which is the scalar statistic the
// RTF attack bins on — natural images have exactly this property.
package data

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Dataset is an indexable, deterministic collection of labeled images.
type Dataset interface {
	// Name is a short identifier used in experiment tables.
	Name() string
	// NumClasses returns the label cardinality.
	NumClasses() int
	// Shape returns the image dimensions (channels, height, width).
	Shape() (c, h, w int)
	// Len returns the number of samples.
	Len() int
	// Sample returns the image and label at index i. Implementations
	// return a fresh image the caller may mutate.
	Sample(i int) (*imaging.Image, int)
}

// Labeler is an optional Dataset refinement for corpora that can report a
// sample's label without rendering the sample. Label(i) must equal the label
// Sample(i) returns. Label-skew partitioners use it so that partitioning a
// procedural million-sample dataset does not generate every image.
type Labeler interface {
	Label(i int) int
}

// Batch is an ordered set of images with labels — the local training batch D
// of one FL client.
type Batch struct {
	Images []*imaging.Image
	Labels []int
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return len(b.Images) }

// Clone deep-copies the batch.
func (b *Batch) Clone() *Batch {
	out := &Batch{
		Images: make([]*imaging.Image, len(b.Images)),
		Labels: append([]int(nil), b.Labels...),
	}
	for i, im := range b.Images {
		out.Images[i] = im.Clone()
	}
	return out
}

// Append adds a sample to the batch.
func (b *Batch) Append(im *imaging.Image, label int) {
	b.Images = append(b.Images, im)
	b.Labels = append(b.Labels, label)
}

// Flatten returns the batch as a [B, C*H*W] matrix — the input format of the
// fully-connected malicious layer.
func (b *Batch) Flatten() *tensor.Tensor {
	if len(b.Images) == 0 {
		panic("data: Flatten of empty batch")
	}
	d := len(b.Images[0].Pix)
	out := tensor.New(len(b.Images), d)
	for i, im := range b.Images {
		if len(im.Pix) != d {
			panic(fmt.Sprintf("data: batch image %d has %d pixels, want %d", i, len(im.Pix), d))
		}
		out.SetRow(i, im.Pix)
	}
	return out
}

// Tensor4D returns the batch as a [B, C, H, W] tensor for convolutional
// models.
func (b *Batch) Tensor4D() *tensor.Tensor {
	if len(b.Images) == 0 {
		panic("data: Tensor4D of empty batch")
	}
	c, h, w := b.Images[0].C, b.Images[0].H, b.Images[0].W
	out := tensor.New(len(b.Images), c, h, w)
	od := out.Data()
	for i, im := range b.Images {
		copy(od[i*c*h*w:(i+1)*c*h*w], im.Pix)
	}
	return out
}

// TakeBatch builds a batch from the dataset samples at the given indices.
func TakeBatch(ds Dataset, indices []int) (*Batch, error) {
	b := &Batch{}
	for _, i := range indices {
		if i < 0 || i >= ds.Len() {
			return nil, fmt.Errorf("data: index %d out of range for %s (len %d)", i, ds.Name(), ds.Len())
		}
		im, y := ds.Sample(i)
		b.Append(im, y)
	}
	return b, nil
}

// RandomBatch draws size samples without replacement using rng.
func RandomBatch(ds Dataset, rng *rand.Rand, size int) (*Batch, error) {
	if size > ds.Len() {
		return nil, fmt.Errorf("data: batch size %d exceeds dataset %s length %d", size, ds.Name(), ds.Len())
	}
	perm := rng.Perm(ds.Len())
	return TakeBatch(ds, perm[:size])
}

// UniqueLabelBatch draws one sample per distinct label for the first size
// labels — the restrictive setting of the paper's linear-model attack (§IV-D:
// "the images in each training batch are assumed to have unique labels").
func UniqueLabelBatch(ds Dataset, rng *rand.Rand, size int) (*Batch, error) {
	if size > ds.NumClasses() {
		return nil, fmt.Errorf("data: unique-label batch of %d exceeds %d classes", size, ds.NumClasses())
	}
	want := make(map[int]bool, size)
	for _, c := range rng.Perm(ds.NumClasses())[:size] {
		want[c] = true
	}
	b := &Batch{}
	for _, i := range rng.Perm(ds.Len()) {
		im, y := ds.Sample(i)
		if want[y] {
			delete(want, y)
			b.Append(im, y)
			if b.Size() == size {
				return b, nil
			}
		}
	}
	return nil, fmt.Errorf("data: dataset %s lacks samples for %d distinct labels", ds.Name(), size)
}

// Split partitions indices [0, n) into parts of the given sizes drawn from a
// seeded permutation; used for train/test splits and for sharding data
// across FL clients.
func Split(n int, rng *rand.Rand, sizes ...int) ([][]int, error) {
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total > n {
		return nil, fmt.Errorf("data: split sizes sum to %d > %d", total, n)
	}
	perm := rng.Perm(n)
	out := make([][]int, len(sizes))
	off := 0
	for i, s := range sizes {
		out[i] = append([]int(nil), perm[off:off+s]...)
		off += s
	}
	return out, nil
}

// Subset exposes a fixed index subset of a dataset as a Dataset.
type Subset struct {
	Base    Dataset
	Indices []int
	Label   string
}

var _ Dataset = (*Subset)(nil)

// NewSubset wraps base restricted to indices.
func NewSubset(base Dataset, indices []int, label string) *Subset {
	return &Subset{Base: base, Indices: indices, Label: label}
}

// Name returns the subset label.
func (s *Subset) Name() string { return s.Label }

// NumClasses returns the base dataset's class count.
func (s *Subset) NumClasses() int { return s.Base.NumClasses() }

// Shape returns the base dataset's image shape.
func (s *Subset) Shape() (int, int, int) { return s.Base.Shape() }

// Len returns the subset size.
func (s *Subset) Len() int { return len(s.Indices) }

// Sample resolves through the index mapping.
func (s *Subset) Sample(i int) (*imaging.Image, int) { return s.Base.Sample(s.Indices[i]) }
