package experiments

import (
	"fmt"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// PreserveMean ablates this implementation's one deliberate design choice on
// top of the paper (DESIGN.md §1): OASIS restores each transformed copy's
// mean pixel value. The paper's §IV-B mechanism — transforms must "impose
// minimal change" to the scalar quantity RTF's neurons measure — only binds
// geometric transforms that vacate pixels (shearing, minor rotation) if the
// photometric statistic is restored. The ablation runs RTF against SH and mR
// with restoration on and off:
//
//   - ON: transformed copies share their source's brightness bin, every bin
//     inverts to a blend, no verbatim recoveries;
//   - OFF: zero-fill transforms drop into darker bins, originals remain
//     alone in theirs, and RTF recovers them verbatim — the defense fails.
//
// Exact transforms (major rotation, flips) preserve the mean by construction
// and are unaffected; they are included as controls.
func PreserveMean(cfg Config) (*Result, error) {
	ds := data.NewSynthCIFAR100(cfg.Seed)
	c, h, w := ds.Shape()
	dims := attack.ImageDims{C: c, H: h, W: w}
	b, n, trials := 8, 400, 3
	if cfg.Quick {
		n, trials = 150, 1
	}
	rng := nn.RandSource(cfg.Seed^0x9e4e, 1)
	rtf, err := attack.NewRTF(dims, ds.NumClasses(), n, ds, rng, 256)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Ablation: mean restoration in OASIS transforms (RTF, B=8, synth-cifar100)",
		"policy", "preserve_mean", "mean_psnr_dB", "max_psnr_dB", "verbatim_recoveries")
	res := &Result{ID: "pm"}
	for _, polName := range []string{"SH", "mR", "MR"} {
		pol, err := augment.ByName(polName)
		if err != nil {
			return nil, err
		}
		for _, preserve := range []bool{true, false} {
			def := core.New(pol)
			def.PreserveMean = preserve
			var psnrs []float64
			maxPSNR := 0.0
			verbatim := 0
			for tr := 0; tr < trials; tr++ {
				batch, err := data.RandomBatch(ds, rng, b)
				if err != nil {
					return nil, err
				}
				defended, err := def.Apply(batch)
				if err != nil {
					return nil, err
				}
				ev, _, err := rtf.Run(defended, batch.Images, rng)
				if err != nil {
					return nil, err
				}
				psnrs = append(psnrs, ev.PSNRs...)
				if m := ev.MaxPSNR(); m > maxPSNR {
					maxPSNR = m
				}
				for _, p := range ev.PerOriginalBest {
					if p > 100 {
						verbatim++
					}
				}
			}
			t.AddRow(polName, fmt.Sprintf("%v", preserve),
				fmt.Sprintf("%.2f", metrics.Mean(psnrs)),
				fmt.Sprintf("%.2f", maxPSNR),
				fmt.Sprintf("%d", verbatim))
			cfg.logf("pm %s preserve=%v mean=%.2f verbatim=%d", polName, preserve, metrics.Mean(psnrs), verbatim)
		}
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"MR rows are controls: exact rotations preserve the mean regardless of the flag.")
	if err := res.saveCSV(cfg, "preserve_mean.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}
