package experiments

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// fig5Policies are the transformations of Figure 5 (RTF).
var fig5Policies = []string{"WO", "MR", "mR", "SH", "HFlip", "VFlip"}

// fig6Policies are the transformations of Figure 6 (CAH).
var fig6Policies = []string{"WO", "SH", "MR", "MR+SH"}

// psnrBoxHeader is the column layout of the box-plot tables.
var psnrBoxHeader = []string{"dataset", "B", "n", "policy", "count", "mean", "median", "q1", "q3", "min", "max"}

// Fig5 measures RTF reconstruction quality per transformation at the
// per-dataset optimal (B, n) pairs from Figure 3.
func Fig5(cfg Config) (*Result, error) {
	return transformExperiment(cfg, "fig5", fig5Policies, false)
}

// Fig6 measures CAH reconstruction quality per transformation at the
// per-dataset optimal (B, n) pairs from Figure 4, including the MR+SH
// integration that rescues the B=8 case.
func Fig6(cfg Config) (*Result, error) {
	return transformExperiment(cfg, "fig6", fig6Policies, true)
}

func transformExperiment(cfg Config, id string, policies []string, useCAH bool) (*Result, error) {
	res := &Result{ID: id}
	trials := 3
	probe := 256
	if cfg.Quick {
		trials, probe = 1, 64
	}
	t := metrics.NewTable(figTitle(id, useCAH), psnrBoxHeader...)
	for _, set := range datasets(cfg) {
		pairs := set.rtfPairs
		if useCAH {
			pairs = set.cahPairs
		}
		if !cfg.Quick && set.dims.Dim() > 10000 {
			trials = 2 // the 64×64 set is ~4× the work per sample
		}
		for _, pair := range pairs {
			b, n := pair[0], pair[1]
			stats := newPolicyPSNRStats()
			for _, polName := range policies {
				rng := nn.RandSource(cfg.Seed^hashLabel(id+polName), uint64(b*10000+n))
				atk, err := buildAttack(set, n, b, useCAH, probe, rng)
				if err != nil {
					return nil, err
				}
				for tr := 0; tr < trials; tr++ {
					batch, err := data.RandomBatch(set.ds, rng, b)
					if err != nil {
						return nil, err
					}
					client, err := applyPolicy(batch, polName)
					if err != nil {
						return nil, err
					}
					ev, _, err := atk.Run(client, batch.Images, rng)
					if err != nil {
						return nil, err
					}
					stats.add(polName, ev.PSNRs)
				}
				cfg.logf("%s %s (B=%d,n=%d) %s mean=%.2f", id, set.ds.Name(), b, n, polName, stats.mean(polName))
			}
			stats.rows(t, set.ds.Name(), fmt.Sprintf("%d", b), fmt.Sprintf("%d", n))
		}
	}
	res.Tables = append(res.Tables, t)
	if err := res.saveCSV(cfg, id+".csv", t); err != nil {
		return nil, err
	}
	return res, nil
}

func figTitle(id string, useCAH bool) string {
	if useCAH {
		return "Figure 6: PSNR of CAH reconstructions per transformation (green-triangle mean = 'mean' column)"
	}
	return "Figure 5: PSNR of RTF reconstructions per transformation (green-triangle mean = 'mean' column)"
}

// buildAttack constructs the calibrated attack for one table cell. CAH traps
// are calibrated for the attacker's fixed anticipated batch regardless of
// the victim's true batch size (see cahAnticipatedBatch).
func buildAttack(set evalSet, n, _ int, useCAH bool, probe int, rng *rand.Rand) (gridAttack, error) {
	if useCAH {
		return attack.NewCAH(set.dims, set.ds.NumClasses(), n, set.ds, rng, probe, cahAnticipatedBatch)
	}
	return attack.NewRTF(set.dims, set.ds.NumClasses(), n, set.ds, rng, probe)
}

// applyPolicy expands the batch under the named OASIS policy ("WO" passes
// the batch through untouched).
func applyPolicy(batch *data.Batch, polName string) (*data.Batch, error) {
	pol, err := augment.ByName(polName)
	if err != nil {
		return nil, err
	}
	if pol == nil {
		return batch, nil
	}
	return core.New(pol).Apply(batch)
}

// hashLabel derives a stable seed perturbation from a label.
func hashLabel(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
