package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/oasisfl/oasis/internal/obs"
)

// goldenSweepConfig is the exact grid the committed golden file was generated
// from (before the observability instrumentation existed). Do not change it
// without regenerating the golden.
func goldenSweepConfig() SweepConfig {
	return SweepConfig{
		Attacks:    []string{"rtf"},
		Defenses:   []string{"none", "prune:0.3"},
		Replicates: 2,
		Quick:      true,
	}
}

// TestSweepGoldenBytes pins the sweep half of the determinism contract: with
// no obs session enabled, the grid's JSON must be byte-identical to the
// golden generated pre-instrumentation.
func TestSweepGoldenBytes(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden-sweep-report.json"))
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunSweep(goldenSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, golden) {
		t.Errorf("sweep JSON diverged from the pre-instrumentation golden:\n got %d bytes\nwant %d bytes\n%s",
			len(raw), len(golden), raw)
	}
}

// TestSweepBytesTraceOnVsOff is the sweep differential: a live obs session —
// spans and metrics firing from the grid pool, the round engine, and the
// tensor kernels at once — must not change RunSweep's JSON by a byte.
func TestSweepBytesTraceOnVsOff(t *testing.T) {
	cfg := goldenSweepConfig()
	runJSON := func() []byte {
		report, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	off := runJSON()
	var trace bytes.Buffer
	if _, err := obs.Enable(obs.Config{Program: "sweep-test", Trace: &trace}); err != nil {
		t.Fatal(err)
	}
	on := runJSON()
	sum, err := obs.Disable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off, on) {
		t.Errorf("sweep JSON differs with tracing enabled:\n on: %s\noff: %s", on, off)
	}
	if sum == nil || len(sum.Phases) == 0 {
		t.Fatal("traced sweep produced no phase summary")
	}
	events, err := obs.ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.SpanTreeValid(events); err != nil {
		t.Error(err)
	}
}

// TestSweepTraceRace hammers the obs layer from a full-width cell pool: every
// worker emits cell/lease/round/kernel spans and metric updates into one
// session concurrently. Run under -race this is the data-race acceptance test
// for the observability tentpole; CellWorkers spans {1, NumCPU} to cover the
// serialized and saturated pool shapes.
func TestSweepTraceRace(t *testing.T) {
	for _, cw := range []int{1, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("cell-workers-%d", cw), func(t *testing.T) {
			var trace bytes.Buffer
			if _, err := obs.Enable(obs.Config{Program: "race-test", Trace: &trace}); err != nil {
				t.Fatal(err)
			}
			cfg := goldenSweepConfig()
			cfg.CellWorkers = cw
			_, runErr := RunSweep(cfg)
			if _, err := obs.Disable(); err != nil {
				t.Fatal(err)
			}
			if runErr != nil {
				t.Fatal(runErr)
			}
			events, err := obs.ReadTrace(&trace)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := obs.SpanTreeValid(events); err != nil {
				t.Error(err)
			}
		})
	}
}
