package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/obs"
	"github.com/oasisfl/oasis/internal/sim"
)

// DefaultSweepDefenses is the defense axis of the attack×defense grid: the
// undefended baseline, one representative of each §V defense family (noise,
// sparsification, transformation replacement), and one composed pipeline —
// OASIS augmentation stacked with DP noise — the layered deployment the
// paper argues population-scale attacks must be met with.
func DefaultSweepDefenses() []string {
	return []string{"none", "dpsgd:1,0.1", "prune:0.3", "ats:MR", "oasis:MR|dpsgd:1,0.1"}
}

// SweepConfig shapes an attack×defense grid evaluation. Every cell runs the
// same base scenario with only the attack kind, defense spec, and replicate
// seed overridden, so the grid isolates the attack/defense interaction from
// population effects.
type SweepConfig struct {
	// Base is the scenario every cell runs; its Attack schedule (neurons,
	// rounds) is kept and only Attack.Kind is overridden per cell. Zero
	// Base means DefaultSweepScenario().
	Base sim.Scenario
	// Attacks lists the attack kinds of the grid rows (default: every
	// registered family, attack.Names()).
	Attacks []string
	// Defenses lists the defense pipeline specs of the grid columns —
	// arbitrary '|'-chains resolved by the defense registry, e.g.
	// "oasis:MR|dpsgd:1,0.1"; "none" (or "") is the undefended baseline
	// (default: DefaultSweepDefenses()).
	Defenses []string
	// Replicates re-runs every (attack, defense) cell at this many derived
	// seeds (ReplicateSeeds), turning single-seed point estimates into
	// mean±std over independent populations. ≤1 means one run at the base
	// seed.
	Replicates int
	// Workers bounds client concurrency inside each cell's scenario run
	// (sim.Options.Workers) — the inner, per-cell knob.
	Workers int
	// CellWorkers bounds how many cell×replicate runs execute concurrently —
	// the outer, grid-level knob (0 = NumCPU, 1 = sequential). Results merge
	// in deterministic grid order, so the report is byte-identical for every
	// value.
	CellWorkers int
	// Quick caps each cell's scenario for CI (sim.Options.Quick).
	Quick bool
	// Log receives per-run progress lines; nil discards them. Writes are
	// serialized, so any io.Writer is safe under cell concurrency.
	Log io.Writer
	// OnResult, when set, receives every freshly-completed job result —
	// success or failure — as it lands. Calls are serialized, so a
	// checkpoint writer needs no locking of its own. Preloaded results are
	// not replayed through it (they are already on disk).
	OnResult func(SweepJobResult)
	// Preloaded carries results trusted from a previous run (a JSONL
	// checkpoint): their jobs are not re-run, and the final report is
	// byte-identical to a run that computed them fresh. Failed results
	// (Err != "") are ignored — resume retries failures. Every entry is
	// validated against the grid; a mismatch aborts before any cell runs.
	Preloaded []SweepJobResult
}

// SweepCell is one (attack, defense) grid entry, aggregated over the
// replicate seeds: capture/reconstruction totals and mean±std of the
// per-replicate attack PSNR, SSIM, and final accuracy.
type SweepCell struct {
	Attack          string  `json:"attack"`
	Defense         string  `json:"defense"`
	Captures        int     `json:"captures"`
	Reconstructions int     `json:"reconstructions"`
	MeanPSNR        float64 `json:"mean_psnr"`
	StdPSNR         float64 `json:"std_psnr"`
	MeanSSIM        float64 `json:"mean_ssim"`
	StdSSIM         float64 `json:"std_ssim"`
	MeanAccuracy    float64 `json:"mean_accuracy"`
	StdAccuracy     float64 `json:"std_accuracy"`
	// FailedReplicates counts replicates that errored; the cell's statistics
	// are over the completed ones only. Zero on the success path (and then
	// omitted from JSON, so fully-successful sweep reports keep their
	// historical bytes).
	FailedReplicates int `json:"failed_replicates,omitempty"`
}

// SweepReport is the structured outcome of an attack×defense sweep. For a
// fixed base scenario seed it is byte-identical across SweepConfig.Workers
// and SweepConfig.CellWorkers values.
type SweepReport struct {
	Scenario   string      `json:"scenario"`
	Seed       uint64      `json:"seed"`
	Replicates int         `json:"replicates"`
	Seeds      []uint64    `json:"seeds"`
	Attacks    []string    `json:"attacks"`
	Defenses   []string    `json:"defenses"`
	Cells      []SweepCell `json:"cells"`

	// Trace is the sweep's observability summary. RunSweep never sets it —
	// only CLIs do, and only when tracing was requested — so sweep JSON is
	// byte-identical to older builds whenever observability is off.
	Trace *obs.TraceSummary `json:"trace,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *SweepReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// cellKey indexes a report's cells by grid coordinates.
func cellKey(attack, defense string) string { return attack + "\x00" + defense }

// Table renders the grid as one metrics table: a row per attack, a
// "PSNR dB / SSIM" cell per defense (each "mean±std" when the sweep ran more
// than one replicate). Absent cells — a partial report after a failed cell,
// or a hand-trimmed cell list — render as "—" instead of masquerading as a
// measured 0.0 / 0.000.
func (r *SweepReport) Table() *metrics.Table {
	header := append([]string{"attack"}, r.Defenses...)
	t := metrics.NewTable(
		fmt.Sprintf("Attack × defense sweep over scenario %q (per-cell mean PSNR dB / SSIM, %d replicate(s))",
			r.Scenario, max(r.Replicates, 1)),
		header...)
	byKey := make(map[string]SweepCell, len(r.Cells))
	for _, c := range r.Cells {
		byKey[cellKey(c.Attack, c.Defense)] = c
	}
	for _, a := range r.Attacks {
		row := []string{a}
		for _, d := range r.Defenses {
			c, ok := byKey[cellKey(a, d)]
			switch {
			case !ok:
				row = append(row, "—")
			case r.Replicates > 1:
				row = append(row, fmt.Sprintf("%.1f±%.1f / %.3f±%.3f",
					c.MeanPSNR, c.StdPSNR, c.MeanSSIM, c.StdSSIM))
			default:
				row = append(row, fmt.Sprintf("%.1f / %.3f", c.MeanPSNR, c.MeanSSIM))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// CellTable renders the flat per-cell detail (one row per grid entry), with
// the replicate spread only when one was actually measured (Replicates > 1),
// matching Table().
func (r *SweepReport) CellTable() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Sweep cells for scenario %q over %d replicate(s)", r.Scenario, max(r.Replicates, 1)),
		"attack", "defense", "captures", "recon", "PSNR", "SSIM", "accuracy")
	for _, c := range r.Cells {
		psnr, ssim, acc := fmt.Sprintf("%.1f", c.MeanPSNR),
			fmt.Sprintf("%.3f", c.MeanSSIM), fmt.Sprintf("%.3f", c.MeanAccuracy)
		if r.Replicates > 1 {
			psnr = fmt.Sprintf("%s±%.1f", psnr, c.StdPSNR)
			ssim = fmt.Sprintf("%s±%.3f", ssim, c.StdSSIM)
			acc = fmt.Sprintf("%s±%.3f", acc, c.StdAccuracy)
		}
		t.AddRow(c.Attack, c.Defense,
			fmt.Sprintf("%d", c.Captures),
			fmt.Sprintf("%d", c.Reconstructions),
			psnr, ssim, acc)
	}
	return t
}

// DefaultSweepScenario is the base population the sweep grid runs when the
// caller supplies none: small enough that the full 4×5 grid finishes in CI
// time, reliable (no dropout/stragglers) so every cell's PSNR measures the
// attack/defense interaction and nothing else.
func DefaultSweepScenario() sim.Scenario {
	return sim.Scenario{
		Name:        "sweep-base",
		Description: "Attack×defense grid base: 12 reliable IID clients, one early strike round.",
		Seed:        42,
		Clients:     12, Rounds: 3, ClientsPerRound: 6, BatchSize: 4,
		Dataset:     sim.DatasetSpec{Classes: 4, Channels: 1, Height: 8, Width: 8, Samples: 240},
		Partition:   "iid",
		Attack:      sim.AttackSpec{Neurons: 32, AnticipatedBatch: 4, Rounds: []int{1}},
		Model:       sim.ArchSpec{Kind: "mlp", Hidden: 16},
		TestSamples: 64,
	}
}

// replicateSeedSalt keys the dedicated stream replicate seeds derive from.
// The stream exists so the derivation can never collide with any scenario-
// internal stream (which are all keyed off the scenario seed with their own
// salts) and stays stable as those streams evolve.
const replicateSeedSalt = 0x4e91_c0de

// ReplicateSeeds derives the scenario seed for each of n replicates from the
// base seed: replicate 0 runs the base seed itself (so Replicates:1
// reproduces a plain single-seed sweep) and later replicates draw distinct
// seeds from a dedicated keyed stream. The sequence is stable — growing n
// extends it without changing earlier seeds.
func ReplicateSeeds(base uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	seeds := make([]uint64, n)
	seeds[0] = base
	seen := map[uint64]bool{base: true}
	rng := nn.RandSource(base, replicateSeedSalt)
	for i := 1; i < n; i++ {
		s := rng.Uint64()
		for seen[s] { // astronomically rare; dedup keeps populations independent
			s = rng.Uint64()
		}
		seen[s] = true
		seeds[i] = s
	}
	return seeds
}

// RunSweep evaluates the attack×defense grid: every registered attack (or
// cfg.Attacks) against every defense spec (or DefaultSweepDefenses), one
// scenario run per (cell, replicate), aggregated to mean±std per cell.
// Cell×replicate runs dispatch onto a bounded pool of cfg.CellWorkers and
// merge in deterministic grid order (SweepGrid.Merge), so the report is
// byte-identical for every CellWorkers (and per-cell Workers) value — and to
// a distributed run of the same grid, which shares this job layer.
//
// On a cell failure the error is returned together with the partial report
// holding every fully-completed cell in grid order, so callers can dump
// finished work before exiting.
func RunSweep(cfg SweepConfig) (*SweepReport, error) {
	grid, err := NewSweepGrid(cfg)
	if err != nil {
		return nil, err
	}
	ctx, runSpan := obs.Start(context.Background(), "sweep.run",
		obs.String("scenario", grid.Base.Name), obs.Uint64("seed", grid.Base.Seed))
	defer runSpan.End()

	// Seed the result table with checkpointed work, then dispatch only the
	// remaining jobs onto the bounded cell-level pool. Each job owns a deep
	// scenario copy (WithSeed), writes to its own result slot, and
	// serializes progress/OnResult calls, so jobs never share mutable state.
	nJobs := grid.NumJobs()
	results := make([]*SweepJobResult, nJobs)
	for _, pre := range cfg.Preloaded {
		if err := grid.CheckResult(pre); err != nil {
			return nil, err
		}
		if pre.Err != "" {
			continue // resume retries failed jobs
		}
		pre := pre
		results[grid.JobID(pre.Cell, pre.Rep)] = &pre
	}
	todo := make([]int, 0, nJobs)
	for id := 0; id < nJobs; id++ {
		if results[id] == nil {
			todo = append(todo, id)
		}
	}
	workers := cfg.CellWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	workers = min(workers, max(len(todo), 1))
	obsCellWorkers.Set(float64(workers))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var logMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				// The lease span measures how long this worker sat idle
				// waiting for the feeder — grid-level pool utilization.
				_, lease := obs.Start(ctx, "sweep.lease", obs.Int("worker", worker))
				id, ok := <-jobs
				lease.End()
				if !ok {
					return
				}
				res := grid.RunJob(ctx, id)
				results[id] = &res
				logMu.Lock()
				if cfg.OnResult != nil {
					cfg.OnResult(res)
				}
				if cfg.Log != nil && res.Err == "" {
					fmt.Fprintf(cfg.Log, "sweep %s × %s [seed %d]: %d recon, PSNR %.1f dB, SSIM %.3f\n",
						res.Attack, res.Defense, res.Seed, res.Reconstructions, res.PSNR, res.SSIM)
				}
				logMu.Unlock()
			}
		}(w)
	}
	for _, id := range todo {
		jobs <- id
	}
	close(jobs)
	wg.Wait()

	// Merge in deterministic grid order: cell content depends only on its
	// own seeded runs, so the report is independent of scheduling. Every
	// completed replicate is drained into the partial report — a cell with
	// failures still aggregates its finished runs (FailedReplicates records
	// the gap) and is omitted only when nothing completed, so a crash under
	// high CellWorkers never discards work that was already done. The first
	// failure in grid order becomes the returned error.
	_, mergeSpan := obs.Start(ctx, "sweep.merge", obs.Int("cells", grid.NumCells()))
	defer mergeSpan.End()
	return grid.Merge(results)
}

// Sweep runs the attack×defense grid as a registry experiment, emitting the
// grid table, the per-cell table, and (with an OutDir) sweep.csv/sweep.json.
func Sweep(cfg Config) (*Result, error) {
	base := DefaultSweepScenario()
	if cfg.Seed != 0 {
		base.Seed = cfg.Seed
	}
	rep, err := RunSweep(SweepConfig{Base: base, Workers: cfg.Workers, Quick: cfg.Quick, Log: cfg.Log})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "sweep"}
	grid := rep.Table()
	res.Tables = append(res.Tables, grid, rep.CellTable())
	res.Notes = append(res.Notes,
		"grid JSON is bit-identical across -workers and -cell-workers for a fixed seed; 'none' is the undefended ceiling")
	if err := res.saveCSV(cfg, "sweep.csv", grid); err != nil {
		return nil, err
	}
	if cfg.OutDir != "" {
		raw, err := rep.JSON()
		if err != nil {
			return nil, err
		}
		path := filepath.Join(cfg.OutDir, "sweep.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		res.Artifacts = append(res.Artifacts, path)
	}
	return res, nil
}
