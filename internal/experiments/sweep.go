package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/sim"
)

// DefaultSweepDefenses is the defense axis of the attack×defense grid: the
// undefended baseline, one representative of each §V defense family (noise,
// sparsification, transformation replacement), and one composed pipeline —
// OASIS augmentation stacked with DP noise — the layered deployment the
// paper argues population-scale attacks must be met with.
func DefaultSweepDefenses() []string {
	return []string{"none", "dpsgd:1,0.1", "prune:0.3", "ats:MR", "oasis:MR|dpsgd:1,0.1"}
}

// SweepConfig shapes an attack×defense grid evaluation. Every cell runs the
// same base scenario with only the attack kind and defense spec overridden,
// so the grid isolates the attack/defense interaction from population
// effects.
type SweepConfig struct {
	// Base is the scenario every cell runs; its Attack schedule (neurons,
	// rounds) is kept and only Attack.Kind is overridden per cell. Zero
	// Base means DefaultSweepScenario().
	Base sim.Scenario
	// Attacks lists the attack kinds of the grid rows (default: every
	// registered family, attack.Names()).
	Attacks []string
	// Defenses lists the defense pipeline specs of the grid columns —
	// arbitrary '|'-chains resolved by the defense registry, e.g.
	// "oasis:MR|dpsgd:1,0.1"; "none" (or "") is the undefended baseline
	// (default: DefaultSweepDefenses()).
	Defenses []string
	// Workers bounds client concurrency inside each cell's scenario run;
	// the report is bit-identical for every value (the PR2 guarantee holds
	// cell-wise, and cells are evaluated in deterministic grid order).
	Workers int
	// Quick caps each cell's scenario for CI (sim.Options.Quick).
	Quick bool
	// Log receives per-cell progress lines; nil discards them.
	Log io.Writer
}

// SweepCell is one (attack, defense) grid entry.
type SweepCell struct {
	Attack          string  `json:"attack"`
	Defense         string  `json:"defense"`
	Captures        int     `json:"captures"`
	Reconstructions int     `json:"reconstructions"`
	MeanPSNR        float64 `json:"mean_psnr"`
	MeanSSIM        float64 `json:"mean_ssim"`
	FinalAccuracy   float64 `json:"final_accuracy"`
}

// SweepReport is the structured outcome of an attack×defense sweep. For a
// fixed base scenario seed it is bit-identical across SweepConfig.Workers
// values.
type SweepReport struct {
	Scenario string      `json:"scenario"`
	Seed     uint64      `json:"seed"`
	Attacks  []string    `json:"attacks"`
	Defenses []string    `json:"defenses"`
	Cells    []SweepCell `json:"cells"`
}

// JSON renders the report as indented JSON.
func (r *SweepReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Table renders the grid as one metrics table: a row per attack, a
// "PSNR dB / SSIM" cell per defense.
func (r *SweepReport) Table() *metrics.Table {
	header := append([]string{"attack"}, r.Defenses...)
	t := metrics.NewTable(
		fmt.Sprintf("Attack × defense sweep over scenario %q (per-cell mean PSNR dB / SSIM)", r.Scenario),
		header...)
	byKey := make(map[string]SweepCell, len(r.Cells))
	for _, c := range r.Cells {
		byKey[c.Attack+"\x00"+c.Defense] = c
	}
	for _, a := range r.Attacks {
		row := []string{a}
		for _, d := range r.Defenses {
			c := byKey[a+"\x00"+d]
			row = append(row, fmt.Sprintf("%.1f / %.3f", c.MeanPSNR, c.MeanSSIM))
		}
		t.AddRow(row...)
	}
	return t
}

// CellTable renders the flat per-cell detail (one row per grid entry).
func (r *SweepReport) CellTable() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Sweep cells for scenario %q", r.Scenario),
		"attack", "defense", "captures", "recon", "mean PSNR", "mean SSIM", "final acc")
	for _, c := range r.Cells {
		t.AddRow(c.Attack, c.Defense,
			fmt.Sprintf("%d", c.Captures),
			fmt.Sprintf("%d", c.Reconstructions),
			fmt.Sprintf("%.1f", c.MeanPSNR),
			fmt.Sprintf("%.3f", c.MeanSSIM),
			fmt.Sprintf("%.3f", c.FinalAccuracy))
	}
	return t
}

// DefaultSweepScenario is the base population the sweep grid runs when the
// caller supplies none: small enough that the full 4×4 grid finishes in CI
// time, reliable (no dropout/stragglers) so every cell's PSNR measures the
// attack/defense interaction and nothing else.
func DefaultSweepScenario() sim.Scenario {
	return sim.Scenario{
		Name:        "sweep-base",
		Description: "Attack×defense grid base: 12 reliable IID clients, one early strike round.",
		Seed:        42,
		Clients:     12, Rounds: 3, ClientsPerRound: 6, BatchSize: 4,
		Dataset:     sim.DatasetSpec{Classes: 4, Channels: 1, Height: 8, Width: 8, Samples: 240},
		Partition:   "iid",
		Attack:      sim.AttackSpec{Neurons: 32, AnticipatedBatch: 4, Rounds: []int{1}},
		Model:       sim.ArchSpec{Kind: "mlp", Hidden: 16},
		TestSamples: 64,
	}
}

// RunSweep evaluates the attack×defense grid: every registered attack (or
// cfg.Attacks) against every defense spec (or DefaultSweepDefenses), one
// scenario run per cell, reported as PSNR/SSIM per cell. Cells run in
// deterministic grid order and each scenario run is itself bit-identical
// across worker counts, so the whole report is too.
func RunSweep(cfg SweepConfig) (*SweepReport, error) {
	base := cfg.Base
	if base.Clients == 0 {
		base = DefaultSweepScenario()
	}
	attacks := cfg.Attacks
	if len(attacks) == 0 {
		attacks = attack.Names()
	}
	defenses := cfg.Defenses
	if len(defenses) == 0 {
		defenses = DefaultSweepDefenses()
	}
	report := &SweepReport{
		Scenario: base.Name,
		Seed:     base.Seed,
		Attacks:  attacks,
		Defenses: defenses,
	}
	// Validate both axes before the first cell runs, so a typo at the end of
	// a list cannot discard minutes of completed grid work. Defense columns
	// are arbitrary pipeline specs resolved by the defense registry.
	for _, atk := range attacks {
		if !attack.Known(atk) {
			return nil, fmt.Errorf("experiments: sweep: unknown attack kind %q (want one of %s)",
				atk, strings.Join(attack.Names(), ", "))
		}
	}
	for _, def := range defenses {
		if def == "none" || def == "" {
			continue
		}
		if _, err := defense.NewPipeline(def, defense.Config{}); err != nil {
			return nil, fmt.Errorf("experiments: sweep: %w", err)
		}
	}
	for _, atk := range attacks {
		for _, def := range defenses {
			sc := base
			sc.Attack.Kind = atk
			if def == "none" || def == "" {
				sc.Defense = sim.DefenseSpec{}
			} else {
				sc.Defense = sim.DefenseSpec{Kind: def, Fraction: 1}
			}
			rep, err := sim.Run(sc, sim.Options{Quick: cfg.Quick, Workers: cfg.Workers})
			if err != nil {
				return nil, fmt.Errorf("experiments: sweep cell %s×%s: %w", atk, def, err)
			}
			report.Cells = append(report.Cells, SweepCell{
				Attack:          atk,
				Defense:         def,
				Captures:        rep.AttackCaptures,
				Reconstructions: rep.AttackReconstructions,
				MeanPSNR:        rep.AttackMeanPSNR,
				MeanSSIM:        rep.AttackMeanSSIM,
				FinalAccuracy:   rep.FinalAccuracy,
			})
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "sweep %s × %s: %d recon, PSNR %.1f dB, SSIM %.3f\n",
					atk, def, rep.AttackReconstructions, rep.AttackMeanPSNR, rep.AttackMeanSSIM)
			}
		}
	}
	return report, nil
}

// Sweep runs the attack×defense grid as a registry experiment, emitting the
// grid table, the per-cell table, and (with an OutDir) sweep.csv/sweep.json.
func Sweep(cfg Config) (*Result, error) {
	base := DefaultSweepScenario()
	if cfg.Seed != 0 {
		base.Seed = cfg.Seed
	}
	rep, err := RunSweep(SweepConfig{Base: base, Workers: cfg.Workers, Quick: cfg.Quick, Log: cfg.Log})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "sweep"}
	grid := rep.Table()
	res.Tables = append(res.Tables, grid, rep.CellTable())
	res.Notes = append(res.Notes,
		"grid JSON is bit-identical across -workers for a fixed seed; 'none' is the undefended ceiling")
	if err := res.saveCSV(cfg, "sweep.csv", grid); err != nil {
		return nil, err
	}
	if cfg.OutDir != "" {
		raw, err := rep.JSON()
		if err != nil {
			return nil, err
		}
		path := filepath.Join(cfg.OutDir, "sweep.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		res.Artifacts = append(res.Artifacts, path)
	}
	return res, nil
}
