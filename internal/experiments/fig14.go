package experiments

import (
	"path/filepath"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// Fig14 reproduces the comparison against the ATS defense of Gao et al.
// [41]: replacing each image with a transformed copy (instead of adding the
// copies alongside, as OASIS does) does not address the attack principle —
// a neuron activated solely by the transformed image still reconstructs it
// verbatim, revealing the content. The table contrasts the PSNR of the RTF
// reconstruction against the *client batch actually used for training* (what
// the attacker extracts) under ATS vs OASIS.
func Fig14(cfg Config) (*Result, error) {
	ds := data.NewSynthImageNet(cfg.Seed)
	c, h, w := ds.Shape()
	dims := attack.ImageDims{C: c, H: h, W: w}
	b, n := 8, 400
	trials := 3
	if cfg.Quick {
		n, trials = 150, 1
	}
	rng := nn.RandSource(cfg.Seed^0xf16_14, 1)
	rtf, err := attack.NewRTF(dims, ds.NumClasses(), n, ds, rng, 128)
	if err != nil {
		return nil, err
	}
	ats, err := defense.NewATS(augment.MajorRotation{}, rng)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Figure 14: RTF vs ATS replacement defense (PSNR against the images used for training)",
		"defense", "mean_psnr_dB", "max_psnr_dB", "verbatim_recoveries")
	res := &Result{ID: "fig14"}

	type variant struct {
		name  string
		apply func(*data.Batch) (*data.Batch, []*imaging.Image, error)
	}
	variants := []variant{
		{"ats(MR)", func(batch *data.Batch) (*data.Batch, []*imaging.Image, error) {
			// ATS trains on the replaced images; those are the secrets.
			replaced := ats.Apply(batch)
			return replaced, replaced.Images, nil
		}},
		{"oasis(MR)", func(batch *data.Batch) (*data.Batch, []*imaging.Image, error) {
			expanded, err := applyPolicy(batch, "MR")
			if err != nil {
				return nil, nil, err
			}
			return expanded, batch.Images, nil
		}},
	}

	var atsRecons []*imaging.Image
	var atsTraining []*imaging.Image
	for _, v := range variants {
		var psnrs []float64
		verbatim := 0
		for tr := 0; tr < trials; tr++ {
			batch, err := data.RandomBatch(ds, rng, b)
			if err != nil {
				return nil, err
			}
			client, secrets, err := v.apply(batch)
			if err != nil {
				return nil, err
			}
			ev, recons, err := rtf.Run(client, secrets, rng)
			if err != nil {
				return nil, err
			}
			psnrs = append(psnrs, ev.PSNRs...)
			for _, p := range ev.PerOriginalBest {
				if p > 100 {
					verbatim++
				}
			}
			if v.name == "ats(MR)" && tr == 0 {
				atsRecons = recons
				atsTraining = secrets
			}
		}
		s := metrics.Summarize(psnrs)
		t.AddRowf(v.name, s.Mean, s.Max, verbatim)
		cfg.logf("fig14 %s mean=%.2f max=%.2f verbatim=%d", v.name, s.Mean, s.Max, verbatim)
	}
	res.Tables = append(res.Tables, t)

	if cfg.OutDir != "" && len(atsRecons) > 0 {
		tiles := make([]*imaging.Image, 0, 2*len(atsTraining))
		for _, orig := range atsTraining {
			tiles = append(tiles, orig.Clone().Clamp(), bestReconFor(orig, atsRecons))
		}
		m, err := imaging.Montage(tiles, 2)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(cfg.OutDir, "fig14_ats.png")
		if err := m.WritePNG(path); err != nil {
			return nil, err
		}
		res.Artifacts = append(res.Artifacts, path)
	}
	res.Notes = append(res.Notes,
		"ATS row: the attacker recovers the replaced training images verbatim — content revealed (Fig. 14).",
		"OASIS row: every reconstruction is a transform blend; nothing is recovered verbatim.")
	if err := res.saveCSV(cfg, "fig14.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}
