package experiments

import (
	"context"
	"fmt"

	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/fl"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// robustAggregators names the aggregation policies the scenario sweeps; each
// is resolved by fl.NewAggregatorByName, so this table doubles as a check
// that the policy names stay wired end to end.
var robustAggregators = []string{"mean", "median", "trimmed:0.2", "normclip:1"}

// poisoningClient wraps an honest client and scales its uploaded gradients
// by a large factor — the classic magnitude-poisoning attacker that robust
// aggregation is designed to neutralize.
type poisoningClient struct {
	inner fl.Client
	scale float64
}

func (p *poisoningClient) ID() string { return p.inner.ID() }

func (p *poisoningClient) HandleRound(ctx context.Context, req fl.RoundRequest) (fl.Update, error) {
	u, err := p.inner.HandleRound(ctx, req)
	if err != nil {
		return u, err
	}
	for _, g := range u.Grads {
		g.ScaleInPlace(p.scale)
	}
	return u, nil
}

// Robust runs many-client FedSGD rounds with one magnitude-poisoning client
// and compares the selectable aggregation policies: the plain mean is blown
// up by the poisoned updates while median, trimmed mean and norm clipping
// keep training. This scenario exercises the concurrent round engine (it
// runs with cfg.Workers) and is the robust-aggregation counterpart the
// many-client attack papers (LOKI, ARES) assume as a baseline.
func Robust(cfg Config) (*Result, error) {
	clients, rounds := 10, 12
	if cfg.Quick {
		clients, rounds = 8, 6
	}

	res := &Result{ID: "robust"}
	t := metrics.NewTable("Scenario: final loss per aggregation policy, honest vs 1 poisoning client",
		"aggregator", "poisoned", "first loss", "final loss", "final ‖ḡ‖")
	for _, aggName := range robustAggregators {
		for _, poisoned := range []bool{false, true} {
			hist, err := runRobustScenario(cfg, aggName, clients, rounds, poisoned)
			if err != nil {
				return nil, err
			}
			last := hist.Rounds[len(hist.Rounds)-1]
			t.AddRow(aggName, fmt.Sprintf("%v", poisoned),
				fmt.Sprintf("%.4f", hist.Rounds[0].MeanLoss),
				fmt.Sprintf("%.4f", hist.FinalLoss()),
				fmt.Sprintf("%.4f", last.GradNorm),
			)
			cfg.logf("robust %s poisoned=%v done (final loss %.4f)", aggName, poisoned, hist.FinalLoss())
		}
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"one client scales its gradient ×50; robust policies (median, trimmed, normclip) should stay close to their honest-run loss while the mean degrades")
	if err := res.saveCSV(cfg, "robust.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}

// runRobustScenario trains one (aggregator, poisoned?) cell and returns the
// run history.
func runRobustScenario(cfg Config, aggName string, clients, rounds int, poisoned bool) (fl.History, error) {
	ds := data.NewSynthCustom("robust-fl", 4, 1, 8, 8, 64*clients, cfg.Seed)
	rng := nn.RandSource(cfg.Seed, hashLabel("robust"))
	sizes := make([]int, clients)
	for i := range sizes {
		sizes[i] = 64
	}
	parts, err := data.Split(ds.Len(), rng, sizes...)
	if err != nil {
		return fl.History{}, err
	}
	roster := fl.NewMemoryRoster()
	for i, idx := range parts {
		shard := data.NewSubset(ds, idx, fmt.Sprintf("robust-shard-%d", i))
		var c fl.Client = fl.NewLocalClient(fmt.Sprintf("c%d", i), shard, 16, nn.RandSource(cfg.Seed+1, uint64(i)))
		if poisoned && i == 0 {
			c = &poisoningClient{inner: c, scale: 50}
		}
		roster.Add(c)
	}

	model := nn.NewSequential(
		nn.NewLinear("fc1", 64, 16, nn.RandSource(cfg.Seed+2, 1)),
		nn.NewReLU("relu"),
		nn.NewLinear("fc2", 16, 4, nn.RandSource(cfg.Seed+2, 2)),
	)
	server := fl.NewServer(fl.ServerConfig{
		Rounds: rounds, LearningRate: 0.05, Seed: cfg.Seed, Workers: cfg.Workers,
	}, model, roster)
	agg, err := fl.NewAggregatorByName(aggName)
	if err != nil {
		return fl.History{}, err
	}
	server.Aggregator = agg
	return server.Run(context.Background())
}
