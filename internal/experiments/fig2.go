package experiments

import (
	"fmt"
	"path/filepath"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// Fig2 reproduces the PSNR illustration: the same image reconstructed by the
// RTF attack without OASIS (essentially a verbatim copy, PSNR at the cap)
// and with OASIS major rotation (an unrecognizable overlap, PSNR an order of
// magnitude lower in dB).
func Fig2(cfg Config) (*Result, error) {
	ds := data.NewSynthImageNet(cfg.Seed)
	c, h, w := ds.Shape()
	dims := attack.ImageDims{C: c, H: h, W: w}
	rng := nn.RandSource(cfg.Seed^0xf16_2, 1)

	rtf, err := attack.NewRTF(dims, ds.NumClasses(), 300, ds, rng, 128)
	if err != nil {
		return nil, err
	}
	batch, err := data.RandomBatch(ds, rng, 4)
	if err != nil {
		return nil, err
	}
	target := batch.Images[0]

	// Without OASIS.
	evRaw, reconsRaw, err := rtf.Run(batch, batch.Images, rng)
	if err != nil {
		return nil, err
	}
	// With OASIS (major rotation).
	defended, err := core.New(augment.MajorRotation{}).Apply(batch)
	if err != nil {
		return nil, err
	}
	_, reconsDef, err := rtf.Run(defended, batch.Images, rng)
	if err != nil {
		return nil, err
	}
	bestRaw := bestReconFor(target, reconsRaw)
	bestDef := bestReconFor(target, reconsDef)

	t := metrics.NewTable("Figure 2: PSNR illustration", "variant", "psnr_dB")
	t.AddRowf("reconstruction w/o OASIS", imaging.PSNR(bestRaw, target))
	t.AddRowf("reconstruction with OASIS", imaging.PSNR(bestDef, target))
	res := &Result{ID: "fig2", Tables: []*metrics.Table{t}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("undefended mean PSNR over batch: %.2f dB", evRaw.MeanPSNR()))

	if cfg.OutDir != "" {
		m, err := imaging.Montage([]*imaging.Image{target.Clone().Clamp(), bestRaw, bestDef}, 3)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(cfg.OutDir, "fig2_psnr_illustration.png")
		if err := m.WritePNG(path); err != nil {
			return nil, err
		}
		res.Artifacts = append(res.Artifacts, path)
	}
	if err := res.saveCSV(cfg, "fig2.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}

// bestReconFor returns the reconstruction with the highest PSNR against ref,
// or a black image if none exist.
func bestReconFor(ref *imaging.Image, recons []*imaging.Image) *imaging.Image {
	best := imaging.NewImage(ref.C, ref.H, ref.W)
	bestPSNR := -1.0
	for _, r := range recons {
		if !r.SameDims(ref) {
			continue
		}
		if p := imaging.PSNR(r, ref); p > bestPSNR {
			best, bestPSNR = r, p
		}
	}
	return best
}
