// Package experiments contains one runner per table and figure in the
// paper's evaluation (§IV), plus three mechanism ablations. Every runner
// prints the same rows/series the paper reports (PSNR per batch-size ×
// attacked-neurons grid, PSNR per transformation, accuracy per
// transformation, …) and can optionally emit CSV and PNG artifacts.
//
// Absolute values differ from the paper — the substrate is a pure-Go
// simulator over synthetic datasets, not a GPU testbed over ImageNet (see
// DESIGN.md) — but the comparative shape is reproduced and asserted by the
// test suite: who wins, the ordering of transforms, and where single
// transforms fail.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/metrics"
)

// Config controls experiment scale and output.
type Config struct {
	// Quick selects reduced grids sized for CI and testing.B; the full
	// grids match the paper's sweep structure.
	Quick bool
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// OutDir, when non-empty, receives CSV tables and PNG figures.
	OutDir string
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// Workers bounds client concurrency in FL-round experiments (0 =
	// NumCPU); results are bit-identical across worker counts.
	Workers int
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Result is what an experiment hands back: printable tables, free-form
// notes, and any files written.
type Result struct {
	ID        string
	Tables    []*metrics.Table
	Notes     []string
	Artifacts []string
}

// String renders all tables and notes.
func (r *Result) String() string {
	out := ""
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// saveCSV writes a table as CSV into cfg.OutDir (no-op without an OutDir).
func (r *Result) saveCSV(cfg Config, name string, t *metrics.Table) error {
	if cfg.OutDir == "" {
		return nil
	}
	path := filepath.Join(cfg.OutDir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	r.Artifacts = append(r.Artifacts, path)
	return nil
}

// Spec describes a runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Result, error)
}

// Registry returns all experiments in paper order.
func Registry() []Spec {
	return []Spec{
		{ID: "fig2", Title: "Figure 2: PSNR illustration (perfect vs OASIS reconstruction)", Run: Fig2},
		{ID: "fig3", Title: "Figure 3: RTF avg PSNR vs batch size × attacked neurons", Run: Fig3},
		{ID: "fig4", Title: "Figure 4: CAH avg PSNR vs batch size × attacked neurons", Run: Fig4},
		{ID: "fig5", Title: "Figure 5: RTF PSNR per transformation", Run: Fig5},
		{ID: "fig6", Title: "Figure 6: CAH PSNR per transformation", Run: Fig6},
		{ID: "visual", Title: "Figures 7-12: visual reconstructions per transformation", Run: Visual},
		{ID: "fig13", Title: "Figure 13: linear-model gradient inversion per transformation", Run: Fig13},
		{ID: "fig14", Title: "Figure 14: RTF against the ATS replacement defense", Run: Fig14},
		{ID: "table1", Title: "Table I: model accuracy with and without OASIS", Run: Table1},
		{ID: "prop1", Title: "Ablation: Proposition-1 activation-set analysis", Run: Prop1},
		{ID: "dp", Title: "Ablation: DP noise vs reconstruction and utility (§V)", Run: DPTradeoff},
		{ID: "pm", Title: "Ablation: mean restoration in OASIS transforms", Run: PreserveMean},
		{ID: "robust", Title: "Scenario: robust aggregation under a poisoning client", Run: Robust},
		{ID: "scenario", Title: "Scenario: declarative large-scale FL populations (internal/sim presets)", Run: ScenarioSim},
		{ID: "sweep", Title: "Sweep: attack × defense grid (registry attacks × §V defenses, PSNR/SSIM per cell)", Run: Sweep},
	}
}

// ByID finds an experiment by identifier.
func ByID(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns the registry identifiers in order.
func IDs() []string {
	specs := Registry()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// evalSet lists the two evaluation datasets with the attack hyperparameters
// the paper pins per dataset.
type evalSet struct {
	ds   data.Dataset
	dims attack.ImageDims
	// (B, n) pairs for Fig 5 (RTF) and Fig 6 (CAH), from the paper.
	rtfPairs [][2]int
	cahPairs [][2]int
}

func datasets(cfg Config) []evalSet {
	imnet := data.NewSynthImageNet(cfg.Seed)
	cifar := data.NewSynthCIFAR100(cfg.Seed)
	mk := func(ds data.Dataset) attack.ImageDims {
		c, h, w := ds.Shape()
		return attack.ImageDims{C: c, H: h, W: w}
	}
	sets := []evalSet{
		{
			ds: imnet, dims: mk(imnet),
			rtfPairs: [][2]int{{8, 900}, {64, 800}},
			cahPairs: [][2]int{{8, 100}, {64, 700}},
		},
		{
			ds: cifar, dims: mk(cifar),
			rtfPairs: [][2]int{{8, 500}, {64, 600}},
			cahPairs: [][2]int{{8, 300}, {64, 600}},
		},
	}
	if cfg.Quick {
		// Quick mode keeps both datasets but shrinks the pinned pairs.
		sets[0].rtfPairs = [][2]int{{8, 200}}
		sets[0].cahPairs = [][2]int{{8, 100}}
		sets[1].rtfPairs = [][2]int{{8, 200}}
		sets[1].cahPairs = [][2]int{{8, 150}}
	}
	return sets
}

// policyPSNRStats pools PSNR samples per policy and renders box-plot rows.
type policyPSNRStats struct {
	order []string
	pools map[string][]float64
}

func newPolicyPSNRStats() *policyPSNRStats {
	return &policyPSNRStats{pools: make(map[string][]float64)}
}

func (p *policyPSNRStats) add(policy string, psnrs []float64) {
	if _, ok := p.pools[policy]; !ok {
		p.order = append(p.order, policy)
	}
	p.pools[policy] = append(p.pools[policy], psnrs...)
}

func (p *policyPSNRStats) rows(t *metrics.Table, prefix ...string) {
	for _, name := range p.order {
		s := metrics.Summarize(p.pools[name])
		cells := append([]string(nil), prefix...)
		cells = append(cells, name,
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", s.Median),
			fmt.Sprintf("%.2f", s.Q1),
			fmt.Sprintf("%.2f", s.Q3),
			fmt.Sprintf("%.2f", s.Min),
			fmt.Sprintf("%.2f", s.Max),
		)
		t.AddRow(cells...)
	}
}

func (p *policyPSNRStats) mean(policy string) float64 {
	return metrics.Mean(p.pools[policy])
}
