package experiments

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/opt"
)

// Table1 reproduces the model-utility comparison: a residual classifier is
// trained under identical budgets with every OASIS transformation and
// without OASIS, and test accuracy is compared. The paper trains ResNet-18
// on ImageNet/CIFAR100 with Adam (lr 1e-3); this runner trains ResNet-lite
// on reduced-resolution synthetic variants with the same optimizer family —
// the comparison of interest (OASIS ≈ WO accuracy) is preserved because all
// rows share dataset, architecture and budget. See DESIGN.md.
func Table1(cfg Config) (*Result, error) {
	type setCfg struct {
		ds     data.Dataset
		train  int
		test   int
		epochs int
		batch  int
		width  int
	}
	var sets []setCfg
	var policies []string
	if cfg.Quick {
		sets = []setCfg{{
			ds:    data.NewSynthCustom("synth-imagenet-t1", 6, 3, 16, 16, 1024, cfg.Seed),
			train: 120, test: 48, epochs: 4, batch: 24, width: 4,
		}}
		policies = []string{"WO", "MR"}
	} else {
		sets = []setCfg{
			{
				ds:    data.NewSynthCustom("synth-imagenet-t1", 10, 3, 24, 24, 2048, cfg.Seed),
				train: 240, test: 120, epochs: 8, batch: 24, width: 6,
			},
			{
				ds:    data.NewSynthCustom("synth-cifar100-t1", 20, 3, 24, 24, 2048, cfg.Seed),
				train: 280, test: 140, epochs: 8, batch: 24, width: 6,
			},
		}
		policies = []string{"MR", "mR", "SH", "HFlip", "VFlip", "MR+SH", "WO"}
	}

	res := &Result{ID: "table1"}
	t := metrics.NewTable("Table I: test accuracy (%) when training with and without OASIS",
		"transformation", "dataset", "accuracy_%", "final_train_loss")
	for _, sc := range sets {
		rng := nn.RandSource(cfg.Seed^0x7ab1e1, hashLabel(sc.ds.Name()))
		splits, err := data.Split(sc.ds.Len(), rng, sc.train, sc.test)
		if err != nil {
			return nil, err
		}
		trainSet := data.NewSubset(sc.ds, splits[0], sc.ds.Name()+"-train")
		testSet := data.NewSubset(sc.ds, splits[1], sc.ds.Name()+"-test")
		for _, polName := range policies {
			// Identical weight initialization and batch order across
			// policies: rows differ only in the augmentation applied, which
			// is the comparison Table I makes.
			initRng := nn.RandSource(cfg.Seed^0x7ab1e1f, hashLabel(sc.ds.Name()))
			c, _, _ := sc.ds.Shape()
			net := nn.NewResNetLite(nn.ResNetLiteConfig{
				InChannels: c, NumClasses: sc.ds.NumClasses(), Width: sc.width,
			}, initRng)
			trRng := nn.RandSource(cfg.Seed^0x7ab1e2f, hashLabel(sc.ds.Name()))
			acc, loss, err := trainAndEvaluate(net, trainSet, testSet, polName, sc.epochs, sc.batch, trRng)
			if err != nil {
				return nil, err
			}
			t.AddRowf(polName, sc.ds.Name(), acc*100, loss)
			cfg.logf("table1 %s %s acc=%.1f%% loss=%.3f", sc.ds.Name(), polName, acc*100, loss)
		}
	}
	res.Tables = append(res.Tables, t)
	if err := res.saveCSV(cfg, "table1.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}

// trainAndEvaluate runs the fixed training budget and returns test accuracy
// and the final epoch's mean training loss.
func trainAndEvaluate(net *nn.Sequential, trainSet, testSet data.Dataset, polName string, epochs, batchSize int, rng *rand.Rand) (float64, float64, error) {
	pol, err := policyFor(polName)
	if err != nil {
		return 0, 0, err
	}
	optimizer := opt.NewAdam(1e-3, 1e-4) // paper: Adam, lr 1e-3, weight decay
	loss := nn.SoftmaxCrossEntropy{}
	lastLoss := 0.0
	n := trainSet.Len()
	for ep := 0; ep < epochs; ep++ {
		perm := rng.Perm(n)
		epochLoss, steps := 0.0, 0
		for off := 0; off+batchSize <= n; off += batchSize {
			batch, err := data.TakeBatch(trainSet, perm[off:off+batchSize])
			if err != nil {
				return 0, 0, err
			}
			if pol != nil {
				batch, err = pol.Apply(batch)
				if err != nil {
					return 0, 0, err
				}
			}
			net.ZeroGrad()
			logits := net.Forward(batch.Tensor4D(), true)
			l, g := loss.Compute(logits, batch.Labels)
			net.Backward(g)
			optimizer.Step(net.Params())
			epochLoss += l
			steps++
		}
		if steps > 0 {
			lastLoss = epochLoss / float64(steps)
		}
	}
	acc, err := evaluateAccuracy(net, testSet, batchSize)
	return acc, lastLoss, err
}

// policyFor resolves a label into an OASIS defense (nil for WO).
func policyFor(polName string) (*core.Defense, error) {
	if polName == "WO" {
		return nil, nil
	}
	p, err := augment.ByName(polName)
	if err != nil {
		return nil, err
	}
	return core.New(p), nil
}

// evaluateAccuracy computes mean accuracy over the full test set in
// inference mode.
func evaluateAccuracy(net *nn.Sequential, testSet data.Dataset, batchSize int) (float64, error) {
	correctWeighted, total := 0.0, 0
	for off := 0; off < testSet.Len(); off += batchSize {
		end := min(off+batchSize, testSet.Len())
		idx := make([]int, 0, end-off)
		for i := off; i < end; i++ {
			idx = append(idx, i)
		}
		batch, err := data.TakeBatch(testSet, idx)
		if err != nil {
			return 0, err
		}
		logits := net.Forward(batch.Tensor4D(), false)
		correctWeighted += nn.Accuracy(logits, batch.Labels) * float64(batch.Size())
		total += batch.Size()
	}
	if total == 0 {
		return 0, fmt.Errorf("experiments: empty test set %s", testSet.Name())
	}
	return correctWeighted / float64(total), nil
}
