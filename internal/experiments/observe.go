package experiments

import "github.com/oasisfl/oasis/internal/obs"

// Sweep-grid instruments. Self-gated on the obs session like every other
// instrument in the tree; see internal/obs for the determinism contract.
var (
	obsSweepJobs        = obs.NewCounter("sweep_jobs_total", "cell×replicate scenario runs dispatched")
	obsSweepJobFailures = obs.NewCounter("sweep_job_failures_total", "cell×replicate runs that returned an error")
	obsCellWorkers      = obs.NewGauge("sweep_cell_workers", "grid-level worker-pool size of the most recent sweep")
)
