package experiments

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/opt"
	"github.com/oasisfl/oasis/internal/tensor"
)

// DPTradeoff quantifies the §V discussion. For each DPSGD noise multiplier
// σ (noise std = σ·clip applied after clipping the update to norm clip) it
// reports:
//
//   - the mean PSNR of RTF reconstructions for two dishonest servers: a
//     plain victim (head gain 1) and one that amplifies its malicious head
//     ×64 hoping to out-shout the noise;
//   - the test accuracy of a classifier trained under the same (clip, σ).
//
// Two findings. First, a negative result for the attacker: update clipping
// neutralizes head amplification — scaling the malicious gradients scales
// the update norm equally, so the post-clip per-bin bias gradient (the Eq. 6
// denominator) is unchanged, and both gain columns die at the same σ.
// Second, the trade-off the paper argues about (§V): in this substrate the
// σ that blinds RTF sits well below the σ that destroys accuracy, so
// clipped DPSGD is a workable defense here — at GPU scale ([17], [18]) the
// utility penalty bites much earlier, which is the paper's position. Either
// way OASIS (Figures 5/6) reaches comparable or lower PSNR with zero noise
// and zero accuracy cost (Table I).
func DPTradeoff(cfg Config) (*Result, error) {
	ds := data.NewSynthCustom("synth-dp", 10, 3, 24, 24, 2048, cfg.Seed)
	c, h, w := ds.Shape()
	dims := attack.ImageDims{C: c, H: h, W: w}
	sigmas := []float64{0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	neurons, trials := 300, 3
	trainN, testN, epochs := 240, 120, 6
	if cfg.Quick {
		sigmas = []float64{0, 1e-5, 1e-1}
		neurons, trials = 120, 1
		trainN, testN, epochs = 120, 48, 4
	}
	rng := nn.RandSource(cfg.Seed^0xd9, 1)
	rtf, err := attack.NewRTF(dims, ds.NumClasses(), neurons, ds, rng, 128)
	if err != nil {
		return nil, err
	}
	malW, malB := rtf.Layer()
	plain, err := attack.NewVictimGain(dims, ds.NumClasses(), malW, malB, rng, 1)
	if err != nil {
		return nil, err
	}
	amplified, err := attack.NewVictimGain(dims, ds.NumClasses(), malW, malB, rng, 64)
	if err != nil {
		return nil, err
	}
	splits, err := data.Split(ds.Len(), rng, trainN, testN)
	if err != nil {
		return nil, err
	}
	trainSet := data.NewSubset(ds, splits[0], "dp-train")
	testSet := data.NewSubset(ds, splits[1], "dp-test")

	t := metrics.NewTable("DP trade-off (§V): DPSGD noise vs RTF reconstruction and utility (best PSNR per original)",
		"sigma", "psnr_gain1_dB", "psnr_gain64_dB", "test_accuracy_%")
	res := &Result{ID: "dp"}
	const clip = 1.0
	for _, sigma := range sigmas {
		psnrPlain, err := dpAttackPSNR(ds, rtf, plain, clip, sigma, trials, rng)
		if err != nil {
			return nil, err
		}
		psnrAmp, err := dpAttackPSNR(ds, rtf, amplified, clip, sigma, trials, rng)
		if err != nil {
			return nil, err
		}
		acc, err := trainWithDP(trainSet, testSet, clip, sigma, epochs, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%g", sigma),
			fmt.Sprintf("%.2f", psnrPlain),
			fmt.Sprintf("%.2f", psnrAmp),
			fmt.Sprintf("%.1f", acc*100))
		cfg.logf("dp σ=%g plain=%.2f amp=%.2f acc=%.1f%%", sigma, psnrPlain, psnrAmp, acc*100)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"gain64 ≈ gain1 at every σ: update clipping neutralizes head amplification (post-clip bias-gradient share is scale-invariant)",
		"compare with fig5/fig6: OASIS reaches comparable or lower PSNR with zero noise and zero accuracy cost (Table I)")
	if err := res.saveCSV(cfg, "dp.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}

// dpAttackPSNR measures the privacy leak as the mean over originals of the
// best reconstruction PSNR each original suffered. (A plain mean over all
// reconstructions would be meaningless under noise: noise turns every empty
// bin difference nonzero, flooding the output with garbage images an
// attacker trivially discards; best-per-original is what the victim cares
// about.)
func dpAttackPSNR(ds data.Dataset, rtf *attack.RTF, victim *attack.Victim, clip, sigma float64, trials int, rng *rand.Rand) (float64, error) {
	var best []float64
	for tr := 0; tr < trials; tr++ {
		batch, err := data.RandomBatch(ds, rng, 8)
		if err != nil {
			return 0, err
		}
		gw, gb, _ := victim.Gradients(batch)
		if sigma > 0 {
			dp, err := defense.NewDPSGD(clip, sigma, rng)
			if err != nil {
				return 0, err
			}
			dp.Apply([]*tensor.Tensor{gw, gb})
		}
		ev := attack.Evaluate(rtf.Reconstruct(gw, gb), batch.Images)
		best = append(best, ev.PerOriginalBest...)
	}
	return metrics.Mean(best), nil
}

// trainWithDP trains a compact CNN with DPSGD-perturbed gradients and
// returns test accuracy. Initialization and batch order are pinned so σ is
// the only variable across rows.
func trainWithDP(trainSet, testSet data.Dataset, clip, sigma float64, epochs int, rng *rand.Rand) (float64, error) {
	c, _, _ := trainSet.Shape()
	initRng := nn.RandSource(0xdb0, 7)
	net := nn.NewResNetLite(nn.ResNetLiteConfig{InChannels: c, NumClasses: trainSet.NumClasses(), Width: 4}, initRng)
	optimizer := opt.NewAdam(1e-3, 1e-4)
	loss := nn.SoftmaxCrossEntropy{}
	batchSize := 24
	var dp *defense.DPSGD
	if sigma > 0 {
		var err error
		dp, err = defense.NewDPSGD(clip, sigma, rng)
		if err != nil {
			return 0, err
		}
	}
	n := trainSet.Len()
	trainRng := nn.RandSource(0xdb1, 8)
	for ep := 0; ep < epochs; ep++ {
		perm := trainRng.Perm(n)
		for off := 0; off+batchSize <= n; off += batchSize {
			batch, err := data.TakeBatch(trainSet, perm[off:off+batchSize])
			if err != nil {
				return 0, err
			}
			net.ZeroGrad()
			logits := net.Forward(batch.Tensor4D(), true)
			_, g := loss.Compute(logits, batch.Labels)
			net.Backward(g)
			if dp != nil {
				grads := make([]*tensor.Tensor, 0, len(net.Params()))
				for _, p := range net.Params() {
					grads = append(grads, p.G)
				}
				dp.Apply(grads)
			}
			optimizer.Step(net.Params())
		}
	}
	return evaluateAccuracy(net, testSet, batchSize)
}
