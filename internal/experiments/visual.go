package experiments

import (
	"fmt"
	"path/filepath"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// Visual regenerates Figures 7–12: side-by-side montages of raw input images
// (left column) and their reconstructions under each OASIS transformation
// (right column). Figures 7–11 use the RTF attack with MR, mR, SH, HFlip and
// VFlip; Figure 12 uses the CAH attack with MR+SH.
func Visual(cfg Config) (*Result, error) {
	ds := data.NewSynthImageNet(cfg.Seed)
	c, h, w := ds.Shape()
	dims := attack.ImageDims{C: c, H: h, W: w}
	numImages := 4
	neurons := 400
	if cfg.Quick {
		numImages, neurons = 2, 150
	}

	figures := []struct {
		fig    string
		policy string
		useCAH bool
	}{
		{"fig7", "MR", false},
		{"fig8", "mR", false},
		{"fig9", "SH", false},
		{"fig10", "HFlip", false},
		{"fig11", "VFlip", false},
		{"fig12", "MR+SH", true},
	}

	res := &Result{ID: "visual"}
	t := metrics.NewTable("Figures 7-12: visual reconstructions", "figure", "attack", "policy", "mean_psnr_dB", "artifact")
	for _, f := range figures {
		rng := nn.RandSource(cfg.Seed^hashLabel(f.fig), 5)
		atk, err := buildAttack(evalSet{ds: ds, dims: dims}, neurons, numImages, f.useCAH, 128, rng)
		if err != nil {
			return nil, err
		}
		batch, err := data.RandomBatch(ds, rng, numImages)
		if err != nil {
			return nil, err
		}
		client, err := applyPolicy(batch, f.policy)
		if err != nil {
			return nil, err
		}
		ev, recons, err := atk.Run(client, batch.Images, rng)
		if err != nil {
			return nil, err
		}
		artifact := ""
		if cfg.OutDir != "" {
			tiles := make([]*imaging.Image, 0, 2*numImages)
			for _, orig := range batch.Images {
				tiles = append(tiles, orig.Clone().Clamp(), bestReconFor(orig, recons))
			}
			m, err := imaging.Montage(tiles, 2)
			if err != nil {
				return nil, err
			}
			artifact = filepath.Join(cfg.OutDir, fmt.Sprintf("%s_%s.png", f.fig, sanitize(f.policy)))
			if err := m.WritePNG(artifact); err != nil {
				return nil, err
			}
			res.Artifacts = append(res.Artifacts, artifact)
		}
		name := "RTF"
		if f.useCAH {
			name = "CAH"
		}
		t.AddRowf(f.fig, name, f.policy, ev.MeanPSNR(), artifact)
		cfg.logf("visual %s (%s/%s) mean PSNR %.2f", f.fig, name, f.policy, ev.MeanPSNR())
	}
	res.Tables = append(res.Tables, t)
	if err := res.saveCSV(cfg, "visual.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '+', '/', ' ':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
