package experiments

import (
	"fmt"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Prop1 is a mechanism ablation this repository adds on top of the paper's
// figures: it directly measures the Proposition-1 condition per transform
// against the real malicious layers. Three statistics per (attack, policy):
//
//   - same-set: fraction of originals with a transform activating *exactly*
//     the same malicious neurons (Proposition 1's hypothesis);
//   - jaccard: mean best activation-set overlap between an original and its
//     transforms;
//   - solo: fraction of originals that remain the sole activator of some
//     neuron — exactly when Eq. 6 leaks them verbatim.
//
// The table explains Figures 5/6: transforms with high same-set/low solo are
// the ones with low PSNR, and CAH's trap layer needs composed transforms to
// push solo down.
func Prop1(cfg Config) (*Result, error) {
	ds := data.NewSynthCIFAR100(cfg.Seed)
	c, h, w := ds.Shape()
	dims := attack.ImageDims{C: c, H: h, W: w}
	batchSize := 8
	rtfNeurons, cahNeurons, probe, trials := 400, 300, 128, 3
	if cfg.Quick {
		rtfNeurons, cahNeurons, probe, trials = 150, 100, 48, 1
	}
	policies := []string{"WO", "MR", "mR", "SH", "HFlip", "VFlip", "MR+SH"}

	rng := nn.RandSource(cfg.Seed^0x9601, 1)
	rtf, err := attack.NewRTF(dims, ds.NumClasses(), rtfNeurons, ds, rng, probe)
	if err != nil {
		return nil, err
	}
	cah, err := attack.NewCAH(dims, ds.NumClasses(), cahNeurons, ds, rng, probe, batchSize)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Proposition-1 activation-set analysis (B=8, synth-cifar100)",
		"attack", "policy", "same_set_frac", "mean_jaccard", "solo_neuron_frac")
	res := &Result{ID: "prop1"}
	rtfW, rtfB := rtf.Layer()
	cahW, cahB := cah.Layer()
	layers := []struct {
		name string
		w, b *tensor.Tensor
	}{
		{"RTF", rtfW, rtfB},
		{"CAH", cahW, cahB},
	}

	for _, layer := range layers {
		for _, polName := range policies {
			var def *core.Defense
			if polName == "WO" {
				def = &core.Defense{} // nil policy: analyze the raw batch
			} else {
				p, err := augment.ByName(polName)
				if err != nil {
					return nil, err
				}
				def = core.New(p)
			}
			agg := core.Prop1Report{Policy: polName}
			for tr := 0; tr < trials; tr++ {
				batch, err := data.RandomBatch(ds, rng, batchSize)
				if err != nil {
					return nil, err
				}
				rep, err := core.AnalyzeProp1(def, batch, layer.w, layer.b)
				if err != nil {
					return nil, err
				}
				agg.SameSetFraction += rep.SameSetFraction
				agg.MeanJaccard += rep.MeanJaccard
				agg.SoloNeuronFraction += rep.SoloNeuronFraction
			}
			inv := 1.0 / float64(trials)
			t.AddRow(layer.name, polName,
				fmt.Sprintf("%.3f", agg.SameSetFraction*inv),
				fmt.Sprintf("%.3f", agg.MeanJaccard*inv),
				fmt.Sprintf("%.3f", agg.SoloNeuronFraction*inv))
		}
		cfg.logf("prop1 %s done", layer.name)
	}
	res.Tables = append(res.Tables, t)
	if err := res.saveCSV(cfg, "prop1.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}
