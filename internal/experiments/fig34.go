package experiments

import (
	"fmt"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// Figures 3 and 4 are the attacker's hyperparameter search: average PSNR of
// undefended reconstructions over a grid of batch sizes and attacked-neuron
// counts, per dataset. The paper uses the per-dataset optima from these grids
// as the attack settings for Figures 5 and 6.

func gridSizes(cfg Config) (batches, neurons []int, trials int) {
	if cfg.Quick {
		return []int{8, 32}, []int{100, 300}, 1
	}
	return []int{8, 16, 32, 64, 128, 256},
		[]int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
		2
}

// Fig3 sweeps the RTF attack.
func Fig3(cfg Config) (*Result, error) {
	return gridExperiment(cfg, "fig3", "RTF", func(set evalSet, n int, rng *rand.Rand) (gridAttack, error) {
		probeSize := 256
		if cfg.Quick {
			probeSize = 64
		}
		rtf, err := attack.NewRTF(set.dims, set.ds.NumClasses(), n, set.ds, rng, probeSize)
		if err != nil {
			return nil, err
		}
		return rtf, nil
	})
}

// cahAnticipatedBatch is the batch size CAH calibrates its trap biases for.
// The attacker fixes the trap scale a priori — it cannot know the victim's
// real batch size — which is what makes the attack degrade as B grows
// (Figure 4's declining rows).
const cahAnticipatedBatch = 16

// Fig4 sweeps the CAH attack. Calibration is hoisted: one max-width trap
// layer per dataset is sliced per neuron count and reused across batch sizes.
func Fig4(cfg Config) (*Result, error) {
	batches, neurons, trials := gridSizes(cfg)
	maxN := neurons[len(neurons)-1]
	probeSize := 128
	if cfg.Quick {
		probeSize = 48
	}
	res := &Result{ID: "fig4"}
	for _, set := range datasets(cfg) {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 4 (%s): CAH avg PSNR, rows = batch size, cols = attacked neurons", set.ds.Name()),
			append([]string{"B\\n"}, intHeaders(neurons)...)...)
		calRng := nn.RandSource(cfg.Seed^0xf16_4, hashLabel(set.ds.Name()))
		base, err := attack.NewCAH(set.dims, set.ds.NumClasses(), maxN, set.ds, calRng, probeSize, cahAnticipatedBatch)
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			rng := nn.RandSource(cfg.Seed^0xf16_4, uint64(b))
			row := []string{fmt.Sprintf("%d", b)}
			for _, n := range neurons {
				cah, err := base.Slice(n)
				if err != nil {
					return nil, err
				}
				mean, err := gridCell(set, cah, b, trials, rng)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.2f", mean))
			}
			t.AddRow(row...)
			cfg.logf("fig4 %s B=%d done", set.ds.Name(), b)
		}
		res.Tables = append(res.Tables, t)
		if err := res.saveCSV(cfg, fmt.Sprintf("fig4_%s.csv", set.ds.Name()), t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// gridAttack is the common surface of RTF and CAH used by the sweep.
type gridAttack interface {
	Run(clientBatch *data.Batch, originals []*imaging.Image, rng *rand.Rand) (attack.Evaluation, []*imaging.Image, error)
}

func gridExperiment(cfg Config, id, label string, build func(set evalSet, n int, rng *rand.Rand) (gridAttack, error)) (*Result, error) {
	batches, neurons, trials := gridSizes(cfg)
	res := &Result{ID: id}
	for _, set := range datasets(cfg) {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 3 (%s): %s avg PSNR, rows = batch size, cols = attacked neurons", set.ds.Name(), label),
			append([]string{"B\\n"}, intHeaders(neurons)...)...)
		for _, b := range batches {
			rng := nn.RandSource(cfg.Seed^0xf16_3, uint64(b))
			row := []string{fmt.Sprintf("%d", b)}
			for _, n := range neurons {
				atk, err := build(set, n, rng)
				if err != nil {
					return nil, err
				}
				mean, err := gridCell(set, atk, b, trials, rng)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.2f", mean))
			}
			t.AddRow(row...)
			cfg.logf("%s %s B=%d done", id, set.ds.Name(), b)
		}
		res.Tables = append(res.Tables, t)
		if err := res.saveCSV(cfg, fmt.Sprintf("%s_%s.csv", id, set.ds.Name()), t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// gridCell measures the mean PSNR of undefended reconstructions over trials.
func gridCell(set evalSet, atk gridAttack, batchSize, trials int, rng *rand.Rand) (float64, error) {
	total, count := 0.0, 0
	for tr := 0; tr < trials; tr++ {
		batch, err := data.RandomBatch(set.ds, rng, batchSize)
		if err != nil {
			return 0, err
		}
		ev, _, err := atk.Run(batch, batch.Images, rng)
		if err != nil {
			return 0, err
		}
		for _, p := range ev.PSNRs {
			total += p
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}

func intHeaders(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("%d", n)
	}
	return out
}
