package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/defense"
)

// TestSweepGoldenDeterminism is the acceptance bar for the sweep harness,
// matching the PR2 scenario-engine guarantee: a fixed seed must yield a
// byte-identical JSON report for worker counts 1, 4, and NumCPU.
func TestSweepGoldenDeterminism(t *testing.T) {
	cfg := SweepConfig{Quick: true}
	if testing.Short() {
		// Short mode trims the grid, not the guarantee: 2 attacks × 2
		// defenses across all three worker counts. One column stays a
		// composed pipeline so the layered-defense cell is held to the same
		// byte-identical bar.
		cfg.Attacks = []string{"rtf", "qbi"}
		cfg.Defenses = []string{"none", "oasis:MR|dpsgd:1,0.1"}
	}
	var golden []byte
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		cfg.Workers = workers
		rep, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = raw
			continue
		}
		if !bytes.Equal(golden, raw) {
			t.Fatalf("sweep JSON diverges at workers=%d:\n%s\nvs golden:\n%s", workers, raw, golden)
		}
	}
}

// TestSweepGridShape runs the full default grid once and checks every
// (attack, defense) cell is present with a scored PSNR, and that the
// undefended column is the per-attack ceiling the defenses pull down from.
func TestSweepGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4×4 grid; run without -short")
	}
	rep, err := RunSweep(SweepConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	attacks := attack.Names()
	defenses := DefaultSweepDefenses()
	if len(rep.Cells) != len(attacks)*len(defenses) {
		t.Fatalf("%d cells, want %d×%d", len(rep.Cells), len(attacks), len(defenses))
	}
	none := make(map[string]float64)
	for _, c := range rep.Cells {
		if c.Reconstructions == 0 {
			t.Errorf("cell %s×%s reconstructed nothing", c.Attack, c.Defense)
		}
		if c.Defense == "none" {
			if c.MeanPSNR < 40 {
				t.Errorf("undefended %s mean PSNR %.1f dB; expected near-verbatim leakage", c.Attack, c.MeanPSNR)
			}
			none[c.Attack] = c.MeanPSNR
		}
	}
	for _, c := range rep.Cells {
		if c.Defense == "none" {
			continue
		}
		if c.MeanPSNR >= none[c.Attack] {
			t.Errorf("defense %s did not lower %s PSNR (%.1f ≥ %.1f)",
				c.Defense, c.Attack, c.MeanPSNR, none[c.Attack])
		}
	}
	// The grid table carries one row per attack and one column per defense.
	tbl := rep.Table()
	if len(tbl.Rows) != len(attacks) {
		t.Errorf("grid table has %d rows, want %d", len(tbl.Rows), len(attacks))
	}
	if len(tbl.Header) != len(defenses)+1 {
		t.Errorf("grid table has %d columns, want %d", len(tbl.Header), len(defenses)+1)
	}
}

// TestSweepRejectsUnknownAttack keeps the axis validation wired to the
// registry.
func TestSweepRejectsUnknownAttack(t *testing.T) {
	_, err := RunSweep(SweepConfig{Attacks: []string{"definitely-not-real"}, Quick: true})
	if err == nil {
		t.Fatal("unknown attack kind accepted")
	}
	for _, kind := range attack.Names() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not list registered kind %q", err, kind)
		}
	}
}

// TestSweepRejectsBadDefenseUpFront: a malformed defense pipeline at the end
// of the column list must fail before any cell runs, naming the offending
// segment.
func TestSweepRejectsBadDefenseUpFront(t *testing.T) {
	_, err := RunSweep(SweepConfig{
		Attacks:  []string{"rtf"},
		Defenses: []string{"none", "oasis:MR|tinfoil"},
		Quick:    true,
	})
	if err == nil {
		t.Fatal("malformed defense pipeline accepted")
	}
	if !strings.Contains(err.Error(), "segment 2") {
		t.Errorf("error %q does not name the offending segment", err)
	}
	for _, kind := range defense.Names() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not list registered defense kind %q", err, kind)
		}
	}
}

// TestSweepExperimentRegistered drives the registry entry end to end in
// quick mode and checks the artifacts land in OutDir.
func TestSweepExperimentRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid via the experiment wrapper; run without -short")
	}
	spec, ok := ByID("sweep")
	if !ok {
		t.Fatal("sweep experiment not registered")
	}
	res, err := spec.Run(Config{Quick: true, Seed: 42, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Errorf("%d tables, want grid + cells", len(res.Tables))
	}
	if len(res.Artifacts) != 2 {
		t.Errorf("%d artifacts, want sweep.csv + sweep.json: %v", len(res.Artifacts), res.Artifacts)
	}
}
