package experiments

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/nn"
)

// TestSweepGoldenDeterminism is the acceptance bar for the parallel sweep
// engine: with Replicates ≥ 2, a fixed seed must yield a byte-identical JSON
// report for cell-level worker counts 1, 4, and NumCPU.
func TestSweepGoldenDeterminism(t *testing.T) {
	cfg := SweepConfig{Quick: true, Replicates: 2, Workers: 2}
	if testing.Short() {
		// Short mode trims the grid, not the guarantee: 2 attacks × 2
		// defenses across all three cell-worker counts. One column stays a
		// composed pipeline so the layered-defense cell is held to the same
		// byte-identical bar.
		cfg.Attacks = []string{"rtf", "qbi"}
		cfg.Defenses = []string{"none", "oasis:MR|dpsgd:1,0.1"}
	} else {
		cfg.Attacks = []string{"rtf", "cah", "qbi", "loki"}
	}
	var golden []byte
	for _, cellWorkers := range []int{1, 4, runtime.NumCPU()} {
		cfg.CellWorkers = cellWorkers
		rep, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("cell-workers=%d: %v", cellWorkers, err)
		}
		raw, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = raw
			continue
		}
		if !bytes.Equal(golden, raw) {
			t.Fatalf("sweep JSON diverges at cell-workers=%d:\n%s\nvs golden:\n%s", cellWorkers, raw, golden)
		}
	}
}

// TestReplicateSeeds pins the replicate-seed derivation: the base seed leads,
// every seed is distinct, the sequence is stable, and growing the replicate
// count extends it without rewriting earlier seeds.
func TestReplicateSeeds(t *testing.T) {
	seeds := ReplicateSeeds(42, 5)
	if len(seeds) != 5 {
		t.Fatalf("%d seeds, want 5", len(seeds))
	}
	if seeds[0] != 42 {
		t.Errorf("replicate 0 seed = %d, want the base seed 42", seeds[0])
	}
	seen := map[uint64]bool{}
	for i, s := range seeds {
		if seen[s] {
			t.Errorf("seed %d repeats at replicate %d", s, i)
		}
		seen[s] = true
	}
	again := ReplicateSeeds(42, 5)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatalf("derivation unstable at replicate %d: %d vs %d", i, seeds[i], again[i])
		}
	}
	prefix := ReplicateSeeds(42, 3)
	for i := range prefix {
		if prefix[i] != seeds[i] {
			t.Errorf("ReplicateSeeds(42, 3)[%d] = %d, not a prefix of ReplicateSeeds(42, 5) (%d)",
				i, prefix[i], seeds[i])
		}
	}
	if one := ReplicateSeeds(7, 1); len(one) != 1 || one[0] != 7 {
		t.Errorf("ReplicateSeeds(7, 1) = %v, want [7]", one)
	}
	other := ReplicateSeeds(43, 5)
	if other[1] == seeds[1] {
		t.Error("different base seeds derived the same replicate-1 seed")
	}
}

// TestSweepTableRendersMissingCells: a partial cell list (a failed cell, or a
// hand-trimmed report) must render absent cells as "—", never as a fake
// measured 0.0 / 0.000.
func TestSweepTableRendersMissingCells(t *testing.T) {
	rep := &SweepReport{
		Scenario:   "partial",
		Replicates: 1,
		Attacks:    []string{"rtf", "cah"},
		Defenses:   []string{"none", "prune:0.3"},
		Cells: []SweepCell{
			{Attack: "rtf", Defense: "none", MeanPSNR: 101.5, MeanSSIM: 0.9},
		},
	}
	tbl := rep.Table()
	if got := tbl.Rows[0][1]; got != "101.5 / 0.900" {
		t.Errorf("present cell rendered %q", got)
	}
	if got := tbl.Rows[0][2]; got != "—" {
		t.Errorf("missing rtf×prune cell rendered %q, want —", got)
	}
	for col := 1; col <= 2; col++ {
		if got := tbl.Rows[1][col]; got != "—" {
			t.Errorf("missing cah cell (col %d) rendered %q, want —", col, got)
		}
	}
	if s := tbl.String(); strings.Contains(s, "0.0 / 0.000") {
		t.Errorf("table still renders zero-value placeholders:\n%s", s)
	}
}

// TestSweepTableMeanStd: with more than one replicate the grid cells carry
// the spread, rendered as mean±std.
func TestSweepTableMeanStd(t *testing.T) {
	rep := &SweepReport{
		Scenario:   "spread",
		Replicates: 3,
		Attacks:    []string{"rtf"},
		Defenses:   []string{"none"},
		Cells: []SweepCell{
			{Attack: "rtf", Defense: "none", MeanPSNR: 100.25, StdPSNR: 1.5, MeanSSIM: 0.9, StdSSIM: 0.05},
		},
	}
	if got, want := rep.Table().Rows[0][1], "100.2±1.5 / 0.900±0.050"; got != want {
		t.Errorf("mean±std cell rendered %q, want %q", got, want)
	}
}

// TestSweepReplicatesAggregate runs a tiny 1×2 grid at two replicates and
// checks the aggregation: totals sum over replicates and a defended cell's
// replicate spread is finite (std ≥ 0, means inside the replicate range is
// implied by construction).
func TestSweepReplicatesAggregate(t *testing.T) {
	rep, err := RunSweep(SweepConfig{
		Attacks:    []string{"rtf"},
		Defenses:   []string{"none", "prune:0.3"},
		Replicates: 2,
		Quick:      true,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicates != 2 || len(rep.Seeds) != 2 {
		t.Fatalf("report replicates/seeds = %d/%d, want 2/2", rep.Replicates, len(rep.Seeds))
	}
	if rep.Seeds[0] != rep.Seed {
		t.Errorf("replicate 0 seed %d is not the base seed %d", rep.Seeds[0], rep.Seed)
	}
	for _, c := range rep.Cells {
		if c.Reconstructions == 0 {
			t.Errorf("cell %s×%s reconstructed nothing over 2 replicates", c.Attack, c.Defense)
		}
		if c.StdPSNR < 0 || c.StdSSIM < 0 || c.StdAccuracy < 0 {
			t.Errorf("cell %s×%s has negative spread: %+v", c.Attack, c.Defense, c)
		}
	}
	// A single-replicate run of the same grid must report zero spread.
	single, err := RunSweep(SweepConfig{
		Attacks: []string{"rtf"}, Defenses: []string{"none"}, Quick: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := single.Cells[0]; c.StdPSNR != 0 || c.StdSSIM != 0 || c.StdAccuracy != 0 {
		t.Errorf("single replicate reported nonzero spread: %+v", c)
	}
}

// TestSweepGridShape runs the full built-in grid once and checks every
// (attack, defense) cell is present with a scored PSNR, and that the
// undefended column is the per-attack ceiling the defenses pull down from.
func TestSweepGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4×5 grid; run without -short")
	}
	// The attack axis is pinned to the built-in families so test-registered
	// kinds (e.g. the failing one below) never leak into this grid.
	attacks := []string{"cah", "loki", "qbi", "rtf"}
	rep, err := RunSweep(SweepConfig{Attacks: attacks, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	defenses := DefaultSweepDefenses()
	if len(rep.Cells) != len(attacks)*len(defenses) {
		t.Fatalf("%d cells, want %d×%d", len(rep.Cells), len(attacks), len(defenses))
	}
	none := make(map[string]float64)
	for _, c := range rep.Cells {
		if c.Reconstructions == 0 {
			t.Errorf("cell %s×%s reconstructed nothing", c.Attack, c.Defense)
		}
		if c.Defense == "none" {
			if c.MeanPSNR < 40 {
				t.Errorf("undefended %s mean PSNR %.1f dB; expected near-verbatim leakage", c.Attack, c.MeanPSNR)
			}
			none[c.Attack] = c.MeanPSNR
		}
	}
	for _, c := range rep.Cells {
		if c.Defense == "none" {
			continue
		}
		if c.MeanPSNR >= none[c.Attack] {
			t.Errorf("defense %s did not lower %s PSNR (%.1f ≥ %.1f)",
				c.Defense, c.Attack, c.MeanPSNR, none[c.Attack])
		}
	}
	// The grid table carries one row per attack and one column per defense.
	tbl := rep.Table()
	if len(tbl.Rows) != len(attacks) {
		t.Errorf("grid table has %d rows, want %d", len(tbl.Rows), len(attacks))
	}
	if len(tbl.Header) != len(defenses)+1 {
		t.Errorf("grid table has %d columns, want %d", len(tbl.Header), len(defenses)+1)
	}
}

// TestSweepRejectsUnknownAttack keeps the axis validation wired to the
// registry.
func TestSweepRejectsUnknownAttack(t *testing.T) {
	_, err := RunSweep(SweepConfig{Attacks: []string{"definitely-not-real"}, Quick: true})
	if err == nil {
		t.Fatal("unknown attack kind accepted")
	}
	for _, kind := range []string{"rtf", "cah", "qbi", "loki"} {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not list registered kind %q", err, kind)
		}
	}
}

// TestSweepRejectsBadDefenseUpFront: a malformed defense pipeline at the end
// of the column list must fail before any cell runs, naming the offending
// segment.
func TestSweepRejectsBadDefenseUpFront(t *testing.T) {
	_, err := RunSweep(SweepConfig{
		Attacks:  []string{"rtf"},
		Defenses: []string{"none", "oasis:MR|tinfoil"},
		Quick:    true,
	})
	if err == nil {
		t.Fatal("malformed defense pipeline accepted")
	}
	if !strings.Contains(err.Error(), "segment 2") {
		t.Errorf("error %q does not name the offending segment", err)
	}
	for _, kind := range defense.Names() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not list registered defense kind %q", err, kind)
		}
	}
}

// TestSweepPartialReportOnError: a cell that fails mid-grid must surface its
// error AND the partial report carrying every fully-completed cell in grid
// order, so callers can dump finished work before exiting. The failing cell
// is driven by a test-registered defense kind that passes parse-only
// validation (nil Rng) but fails per-client construction inside the run —
// the default defense axis is a fixed list, so the extra kind leaks nowhere.
func TestSweepPartialReportOnError(t *testing.T) {
	if !defense.Known("sweep-test-explode") {
		err := defense.Register("sweep-test-explode", func(arg string, cfg defense.Config) (defense.Defense, error) {
			if cfg.Rng == nil {
				p, err := defense.NewPipeline("prune:0.5", defense.Config{})
				return p, err
			}
			return nil, errors.New("intentional construction failure")
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := RunSweep(SweepConfig{
		Attacks:     []string{"rtf"},
		Defenses:    []string{"none", "prune:0.3", "sweep-test-explode"},
		Replicates:  2,
		CellWorkers: 4,
		Quick:       true,
		Workers:     2,
	})
	if err == nil {
		t.Fatal("failing defense cell did not error")
	}
	if !strings.Contains(err.Error(), "sweep cell rtf×sweep-test-explode") {
		t.Errorf("error %q does not name the failing cell", err)
	}
	if rep == nil {
		t.Fatal("no partial report attached to the cell failure")
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("partial report carries %d cells, want the 2 completed ones", len(rep.Cells))
	}
	for i, def := range []string{"none", "prune:0.3"} {
		if rep.Cells[i].Attack != "rtf" || rep.Cells[i].Defense != def {
			t.Errorf("partial cell %d = %s×%s, want rtf×%s (grid order)",
				i, rep.Cells[i].Attack, rep.Cells[i].Defense, def)
		}
	}
	// The grid table over the partial report renders the failed cell as —.
	tbl := rep.Table()
	if got := tbl.Rows[0][3]; got != "—" {
		t.Errorf("failed cell rendered %q, want —", got)
	}
}

// sweepTestFlakyOn arms the "sweep-test-flaky" attack constructor. The
// attack axis defaults to every registered kind, so the registration leaks
// into any later test sweeping the dynamic axis — disarmed, the kind is
// just rtf under another name and those sweeps still succeed.
var sweepTestFlakyOn atomic.Bool

// TestSweepDrainsPartialCellReplicates is the regression test for the drain
// bugfix: under high CellWorkers a replicate failure used to discard every
// other replicate of that cell — including ones that had already finished.
// A test-registered attack whose constructor fails on a seed-keyed coin flip
// makes some replicates of one cell fail while others complete; the cell
// must still appear with its completed replicates aggregated and the failed
// count recorded, byte-identically to a serial (CellWorkers=1) run.
func TestSweepDrainsPartialCellReplicates(t *testing.T) {
	if !attack.Known("sweep-test-flaky") {
		err := attack.Register("sweep-test-flaky", func(cfg attack.Config) (attack.Attack, error) {
			if sweepTestFlakyOn.Load() && cfg.Rng.Uint64()%2 == 1 {
				return nil, errors.New("intentional flaky calibration failure")
			}
			return attack.New("rtf", cfg)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sweepTestFlakyOn.Store(true)
	defer sweepTestFlakyOn.Store(false)
	// Predict each replicate's fate from the exact keyed stream the sim hands
	// the attack constructor, and insist the outcomes are mixed — an all-pass
	// or all-fail draw would make this test vacuous.
	const replicates = 3
	seeds := ReplicateSeeds(DefaultSweepScenario().Seed, replicates)
	wantFailed := 0
	for _, s := range seeds {
		if nn.RandSource(s+3, 0xa77ac).Uint64()%2 == 1 {
			wantFailed++
		}
	}
	if wantFailed == 0 || wantFailed == replicates {
		t.Fatalf("replicate outcomes not mixed (%d/%d fail); pick different seeds", wantFailed, replicates)
	}

	run := func(cellWorkers int) (*SweepReport, error) {
		return RunSweep(SweepConfig{
			Attacks:     []string{"rtf", "sweep-test-flaky"},
			Defenses:    []string{"none"},
			Replicates:  replicates,
			CellWorkers: cellWorkers,
			Quick:       true,
			Workers:     2,
		})
	}
	rep, err := run(runtime.NumCPU())
	if err == nil {
		t.Fatal("flaky cell did not surface its replicate failures")
	}
	if !strings.Contains(err.Error(), "sweep cell sweep-test-flaky×none") {
		t.Errorf("error %q does not name the flaky cell", err)
	}
	if rep == nil {
		t.Fatal("no partial report attached to the replicate failure")
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("partial report carries %d cells, want both (flaky cell has completed replicates)", len(rep.Cells))
	}
	if rep.Cells[0].Attack != "rtf" || rep.Cells[1].Attack != "sweep-test-flaky" {
		t.Fatalf("cells out of grid order: %s then %s", rep.Cells[0].Attack, rep.Cells[1].Attack)
	}
	clean, flaky := rep.Cells[0], rep.Cells[1]
	if clean.FailedReplicates != 0 {
		t.Errorf("rtf×none reports %d failed replicates, want 0", clean.FailedReplicates)
	}
	if flaky.FailedReplicates != wantFailed {
		t.Errorf("flaky cell reports %d failed replicates, want %d", flaky.FailedReplicates, wantFailed)
	}
	if flaky.Reconstructions == 0 {
		t.Error("flaky cell's completed replicates were dropped: no reconstructions aggregated")
	}

	// The drained partial report must be deterministic across cell-worker
	// counts, same as the success path.
	serial, serr := run(1)
	if serr == nil || serial == nil {
		t.Fatalf("serial rerun: err=%v rep=%v", serr, serial)
	}
	want, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("partial report diverges across cell-worker counts:\n%s\nvs serial:\n%s", got, want)
	}
}

// TestSweepExperimentRegistered drives the registry entry end to end in
// quick mode and checks the artifacts land in OutDir.
func TestSweepExperimentRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid via the experiment wrapper; run without -short")
	}
	spec, ok := ByID("sweep")
	if !ok {
		t.Fatal("sweep experiment not registered")
	}
	res, err := spec.Run(Config{Quick: true, Seed: 42, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Errorf("%d tables, want grid + cells", len(res.Tables))
	}
	if len(res.Artifacts) != 2 {
		t.Errorf("%d artifacts, want sweep.csv + sweep.json: %v", len(res.Artifacts), res.Artifacts)
	}
}
