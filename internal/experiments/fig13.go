package experiments

import (
	"fmt"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/nn"
)

// Fig13 reproduces the gradient-inversion attack on linear models (§IV-D):
// a single-layer logistic model, batches with unique labels, B ∈ {8, 64},
// per transformation. The B=64 unique-label requirement needs ≥ 64 classes;
// the 10-class synthetic ImageNet is therefore paired with a 100-class
// variant at the same resolution for this experiment (substitution recorded
// in EXPERIMENTS.md — the paper's full ImageNet has 1000 classes, so unique
// labels were free).
func Fig13(cfg Config) (*Result, error) {
	imnet := data.NewSynthCustom("synth-imagenet-100c", 100, 3, 64, 64, 4096, cfg.Seed)
	cifar := data.NewSynthCIFAR100(cfg.Seed)
	batchSizes := []int{8, 64}
	trials := 3
	if cfg.Quick {
		batchSizes = []int{8}
		trials = 1
	}

	res := &Result{ID: "fig13"}
	t := metrics.NewTable("Figure 13: PSNR of linear-model gradient inversion per transformation", psnrBoxHeader...)
	for _, ds := range []data.Dataset{imnet, cifar} {
		c, h, w := ds.Shape()
		dims := attack.ImageDims{C: c, H: h, W: w}
		atk := attack.NewLinearInversion(dims, ds.NumClasses())
		for _, b := range batchSizes {
			stats := newPolicyPSNRStats()
			for _, polName := range fig5Policies {
				rng := nn.RandSource(cfg.Seed^hashLabel("fig13"+polName), uint64(b))
				for tr := 0; tr < trials; tr++ {
					batch, err := data.UniqueLabelBatch(ds, rng, b)
					if err != nil {
						return nil, err
					}
					client, err := applyPolicy(batch, polName)
					if err != nil {
						return nil, err
					}
					ev, _, err := atk.Run(client, batch.Images, rng)
					if err != nil {
						return nil, err
					}
					stats.add(polName, ev.PSNRs)
				}
			}
			stats.rows(t, ds.Name(), fmt.Sprintf("%d", b), fmt.Sprintf("%d", ds.NumClasses()))
			cfg.logf("fig13 %s B=%d done", ds.Name(), b)
		}
	}
	res.Tables = append(res.Tables, t)
	if err := res.saveCSV(cfg, "fig13.csv", t); err != nil {
		return nil, err
	}
	return res, nil
}
