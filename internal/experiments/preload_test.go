package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// preloadTestConfig is the tiny grid the preload/OnResult tests run: 2×2
// cells × 2 replicates = 8 jobs.
func preloadTestConfig() SweepConfig {
	return SweepConfig{
		Attacks:    []string{"rtf", "qbi"},
		Defenses:   []string{"none", "prune:0.3"},
		Replicates: 2,
		Workers:    1,
		Quick:      true,
	}
}

// TestSweepOnResultAndPreload checks the checkpoint extension points:
// OnResult sees every fresh job exactly once, a fully-preloaded sweep runs
// nothing and still produces byte-identical JSON, and a half-preloaded sweep
// re-runs exactly the missing jobs.
func TestSweepOnResultAndPreload(t *testing.T) {
	cfg := preloadTestConfig()
	var streamed []SweepJobResult
	cfg.OnResult = func(r SweepJobResult) { streamed = append(streamed, r) }
	rep, err := RunSweep(cfg)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	golden, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewSweepGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != grid.NumJobs() {
		t.Fatalf("OnResult saw %d results, want %d", len(streamed), grid.NumJobs())
	}
	seen := map[int]bool{}
	for _, r := range streamed {
		id := grid.JobID(r.Cell, r.Rep)
		if seen[id] {
			t.Fatalf("OnResult saw job %d twice", id)
		}
		seen[id] = true
	}

	// Fully preloaded: no job runs, the report is byte-identical anyway.
	full := preloadTestConfig()
	full.Preloaded = streamed
	ran := 0
	full.OnResult = func(SweepJobResult) { ran++ }
	rep2, err := RunSweep(full)
	if err != nil {
		t.Fatalf("fully-preloaded RunSweep: %v", err)
	}
	if ran != 0 {
		t.Fatalf("fully-preloaded sweep ran %d jobs, want 0", ran)
	}
	raw2, _ := rep2.JSON()
	if !bytes.Equal(golden, raw2) {
		t.Fatalf("fully-preloaded report diverges:\n%s\nvs\n%s", raw2, golden)
	}

	// Half preloaded: exactly the missing jobs run, bytes still identical.
	half := preloadTestConfig()
	half.Preloaded = streamed[:len(streamed)/2]
	ran = 0
	half.OnResult = func(SweepJobResult) { ran++ }
	rep3, err := RunSweep(half)
	if err != nil {
		t.Fatalf("half-preloaded RunSweep: %v", err)
	}
	if want := grid.NumJobs() - len(half.Preloaded); ran != want {
		t.Fatalf("half-preloaded sweep ran %d jobs, want %d", ran, want)
	}
	raw3, _ := rep3.JSON()
	if !bytes.Equal(golden, raw3) {
		t.Fatalf("half-preloaded report diverges:\n%s\nvs\n%s", raw3, golden)
	}
}

// TestSweepPreloadValidation checks that preloaded results are validated
// against the grid before anything runs, and that failed preloads are
// retried rather than trusted.
func TestSweepPreloadValidation(t *testing.T) {
	cfg := preloadTestConfig()
	grid, err := NewSweepGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := SweepJobResult{Cell: 0, Rep: 0, Attack: "rtf", Defense: "none", Seed: grid.Seeds[0]}

	tampered := good
	tampered.Seed++
	cfg.Preloaded = []SweepJobResult{tampered}
	if _, err := RunSweep(cfg); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("tampered preload: err %v, want a grid-mismatch rejection", err)
	}

	outside := good
	outside.Cell = grid.NumCells()
	cfg.Preloaded = []SweepJobResult{outside}
	if _, err := RunSweep(cfg); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range preload: err %v, want an out-of-grid rejection", err)
	}

	// A failed preload is ignored: its job re-runs instead.
	failed := good
	failed.Err = "transient node loss"
	cfg.Preloaded = []SweepJobResult{failed}
	reran := 0
	cfg.OnResult = func(SweepJobResult) { reran++ }
	if _, err := RunSweep(cfg); err != nil {
		t.Fatalf("failed-preload RunSweep: %v", err)
	}
	if reran != grid.NumJobs() {
		t.Fatalf("sweep with one failed preload ran %d jobs, want all %d", reran, grid.NumJobs())
	}
}
