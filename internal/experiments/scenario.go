package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/sim"
)

// ScenarioSim runs the declarative scenario engine's presets through the
// experiment harness, so `oasis-bench -run scenario` exercises large
// heterogeneous populations next to the paper experiments. Quick mode runs
// only the tiny smoke preset; the full run sweeps every preset.
func ScenarioSim(cfg Config) (*Result, error) {
	names := sim.PresetNames()
	if cfg.Quick {
		names = []string{"smoke"}
	}
	res := &Result{ID: "scenario"}
	summary := metrics.NewTable("Scenario presets: population, participation, utility, attack exposure",
		"scenario", "clients", "rounds", "partition", "participation", "final acc", "attack", "recon", "mean PSNR")
	for _, name := range names {
		sc, ok := sim.Preset(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scenario preset %q", name)
		}
		if cfg.Seed != 0 {
			sc.Seed = cfg.Seed
		}
		rep, err := sim.Run(sc, sim.Options{Quick: cfg.Quick, Workers: cfg.Workers, Log: cfg.Log})
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", name, err)
		}
		summary.AddRow(
			rep.Scenario,
			fmt.Sprintf("%d", rep.Clients),
			fmt.Sprintf("%d", len(rep.Rounds)),
			rep.Partition,
			fmt.Sprintf("%.1f%%", 100*rep.MeanParticipation),
			fmt.Sprintf("%.3f", rep.FinalAccuracy),
			orDash(rep.Attack),
			fmt.Sprintf("%d", rep.AttackReconstructions),
			fmt.Sprintf("%.1f", rep.AttackMeanPSNR),
		)
		perRound := rep.Table()
		res.Tables = append(res.Tables, perRound)
		if err := res.saveCSV(cfg, fmt.Sprintf("scenario_%s.csv", name), perRound); err != nil {
			return nil, err
		}
		if cfg.OutDir != "" {
			raw, err := rep.JSON()
			if err != nil {
				return nil, err
			}
			path := filepath.Join(cfg.OutDir, fmt.Sprintf("scenario_%s.json", name))
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			res.Artifacts = append(res.Artifacts, path)
		}
		cfg.logf("scenario %s done (participation %.1f%%, final acc %.3f)",
			name, 100*rep.MeanParticipation, rep.FinalAccuracy)
	}
	res.Tables = append([]*metrics.Table{summary}, res.Tables...)
	res.Notes = append(res.Notes,
		"reports are bit-identical across -workers for a fixed seed; dropped/late clients degrade rounds instead of stalling them")
	if err := res.saveCSV(cfg, "scenario_summary.csv", summary); err != nil {
		return nil, err
	}
	return res, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
