package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/oasisfl/oasis/internal/attack"
	"github.com/oasisfl/oasis/internal/defense"
	"github.com/oasisfl/oasis/internal/metrics"
	"github.com/oasisfl/oasis/internal/obs"
	"github.com/oasisfl/oasis/internal/sim"
)

// The sweep grid's job layer. A sweep is a flat list of (cell, replicate)
// jobs whose layout depends only on the axes and the replicate count — never
// on scheduling — so the same enumeration, execution, and merge code backs
// the in-process pool (RunSweep), checkpoint resume, and the internal/dist
// coordinator/worker scale-out. Merge folds any assignment of job results
// back in deterministic grid order, which is what makes the final report
// byte-identical across worker counts, processes, and crash/resume
// histories.

// SweepJob identifies one (cell, replicate) scenario run of a sweep grid.
type SweepJob struct {
	// ID is the job's dense index: Cell*Replicates + Rep.
	ID int `json:"id"`
	// Cell is the grid-order cell index: attackIdx*len(Defenses)+defenseIdx.
	Cell int `json:"cell"`
	// Rep is the replicate index within the cell.
	Rep     int    `json:"rep"`
	Attack  string `json:"attack"`
	Defense string `json:"defense"`
	// Seed is the derived scenario seed the replicate runs at.
	Seed uint64 `json:"seed"`
}

// SweepJobResult is the complete outcome of one sweep job — exactly the
// per-replicate statistics the grid merge consumes, so a result can cross a
// process boundary (gob) or a restart (JSONL checkpoint) without changing
// the final report by a byte. Float64 fields survive a JSON round trip
// bit-exactly (encoding/json emits the shortest representation that parses
// back to the same value).
type SweepJobResult struct {
	Cell            int     `json:"cell"`
	Rep             int     `json:"rep"`
	Attack          string  `json:"attack"`
	Defense         string  `json:"defense"`
	Seed            uint64  `json:"seed"`
	Captures        int     `json:"captures"`
	Reconstructions int     `json:"reconstructions"`
	PSNR            float64 `json:"psnr"`
	SSIM            float64 `json:"ssim"`
	Accuracy        float64 `json:"accuracy"`
	// Err carries a failed run's error text; empty means success. A failed
	// result still merges (the cell records a FailedReplicate) — it is a
	// deterministic outcome, not a transport problem.
	Err string `json:"err,omitempty"`
}

// SweepGrid is a resolved sweep configuration: validated axes, derived
// replicate seeds, and the per-job scenario recipe. It is immutable after
// NewSweepGrid, so any number of goroutines (or processes holding an
// identical config) can enumerate and run jobs against it.
type SweepGrid struct {
	Base       sim.Scenario
	Attacks    []string
	Defenses   []string
	Replicates int
	Seeds      []uint64
	Quick      bool
	Workers    int
}

// NewSweepGrid resolves a SweepConfig into its grid: defaults applied, both
// axes validated up front (so a typo at the end of a list cannot discard
// minutes of completed work), and replicate seeds derived.
func NewSweepGrid(cfg SweepConfig) (*SweepGrid, error) {
	base := cfg.Base
	if base.Clients == 0 {
		base = DefaultSweepScenario()
	}
	attacks := cfg.Attacks
	if len(attacks) == 0 {
		attacks = attack.Names()
	}
	defenses := cfg.Defenses
	if len(defenses) == 0 {
		defenses = DefaultSweepDefenses()
	}
	for _, atk := range attacks {
		if !attack.Known(atk) {
			return nil, fmt.Errorf("experiments: sweep: unknown attack kind %q (want one of %s)",
				atk, strings.Join(attack.Names(), ", "))
		}
	}
	for _, def := range defenses {
		if def == "none" || def == "" {
			continue
		}
		if _, err := defense.NewPipeline(def, defense.Config{}); err != nil {
			return nil, fmt.Errorf("experiments: sweep: %w", err)
		}
	}
	replicates := max(cfg.Replicates, 1)
	return &SweepGrid{
		Base:       base,
		Attacks:    attacks,
		Defenses:   defenses,
		Replicates: replicates,
		Seeds:      ReplicateSeeds(base.Seed, replicates),
		Quick:      cfg.Quick,
		Workers:    cfg.Workers,
	}, nil
}

// NumCells is the grid size: len(Attacks) × len(Defenses).
func (g *SweepGrid) NumCells() int { return len(g.Attacks) * len(g.Defenses) }

// NumJobs is the total job count: NumCells × Replicates.
func (g *SweepGrid) NumJobs() int { return g.NumCells() * g.Replicates }

// JobID maps grid coordinates to the dense job index.
func (g *SweepGrid) JobID(cell, rep int) int { return cell*g.Replicates + rep }

// Job returns the job at the given dense index.
func (g *SweepGrid) Job(id int) SweepJob {
	cell, rep := id/g.Replicates, id%g.Replicates
	return SweepJob{
		ID:      id,
		Cell:    cell,
		Rep:     rep,
		Attack:  g.Attacks[cell/len(g.Defenses)],
		Defense: g.Defenses[cell%len(g.Defenses)],
		Seed:    g.Seeds[rep],
	}
}

// JobScenario builds the isolated scenario a job runs: a deep copy of the
// base at the replicate's derived seed with only the attack kind and defense
// spec overridden.
func (g *SweepGrid) JobScenario(id int) sim.Scenario {
	job := g.Job(id)
	sc := g.Base.WithSeed(job.Seed)
	sc.Attack.Kind = job.Attack
	if job.Defense == "none" || job.Defense == "" {
		sc.Defense = sim.DefenseSpec{}
	} else {
		sc.Defense = sim.DefenseSpec{Kind: job.Defense, Fraction: 1}
	}
	return sc
}

// RunJob executes one job's scenario under the grid's options and packages
// the outcome. Failures land in the result's Err field rather than an error
// return — a job result is always mergeable.
func (g *SweepGrid) RunJob(ctx context.Context, id int) SweepJobResult {
	return RunSweepJob(ctx, g.Job(id), g.JobScenario(id), sim.Options{Quick: g.Quick, Workers: g.Workers})
}

// RunSweepJob runs one already-materialized sweep job: the scenario executes
// under a "sweep.cell" obs span and the report's attack/accuracy statistics
// are extracted into the transportable result. The in-process pool and the
// dist worker both run jobs through here, so a cell computes identically no
// matter which process it lands in.
func RunSweepJob(ctx context.Context, job SweepJob, sc sim.Scenario, opts sim.Options) SweepJobResult {
	jctx, cell := obs.Start(ctx, "sweep.cell",
		obs.String("attack", job.Attack), obs.String("defense", job.Defense),
		obs.Int("replicate", job.Rep), obs.Uint64("seed", sc.Seed))
	obsSweepJobs.Inc()
	rep, err := sim.RunContext(jctx, sc, opts)
	cell.SetAttr(obs.Bool("ok", err == nil))
	cell.End()
	res := SweepJobResult{
		Cell: job.Cell, Rep: job.Rep,
		Attack: job.Attack, Defense: job.Defense, Seed: sc.Seed,
	}
	if err != nil {
		obsSweepJobFailures.Inc()
		res.Err = err.Error()
		return res
	}
	res.Captures = rep.AttackCaptures
	res.Reconstructions = rep.AttackReconstructions
	res.PSNR = rep.AttackMeanPSNR
	res.SSIM = rep.AttackMeanSSIM
	res.Accuracy = rep.FinalAccuracy
	return res
}

// CheckResult validates that a result (from a checkpoint file or a remote
// worker) belongs to this grid: coordinates in range and attack, defense, and
// seed matching the job at those coordinates. It guards the determinism
// contract — a stale checkpoint or a confused worker must never silently
// merge into the wrong cell.
func (g *SweepGrid) CheckResult(r SweepJobResult) error {
	if r.Cell < 0 || r.Cell >= g.NumCells() || r.Rep < 0 || r.Rep >= g.Replicates {
		return fmt.Errorf("experiments: sweep result (cell %d, rep %d) outside the %d×%d grid",
			r.Cell, r.Rep, g.NumCells(), g.Replicates)
	}
	job := g.Job(g.JobID(r.Cell, r.Rep))
	if r.Attack != job.Attack || r.Defense != job.Defense || r.Seed != job.Seed {
		return fmt.Errorf("experiments: sweep result (cell %d, rep %d) claims %s×%s seed %d, grid has %s×%s seed %d",
			r.Cell, r.Rep, r.Attack, r.Defense, r.Seed, job.Attack, job.Defense, job.Seed)
	}
	return nil
}

// Merge folds job results into the final report in deterministic grid order.
// results is indexed by job ID; a nil slot is a job that never ran (an
// interrupted grid) and contributes nothing. Cells aggregate their completed
// replicates (mean±std), record failed ones in FailedReplicates, and are
// omitted entirely when nothing completed. The first failure in grid order
// becomes the returned error, with the partial report alongside — exactly
// RunSweep's historical contract, because RunSweep merges through here.
func (g *SweepGrid) Merge(results []*SweepJobResult) (*SweepReport, error) {
	report := &SweepReport{
		Scenario:   g.Base.Name,
		Seed:       g.Base.Seed,
		Replicates: g.Replicates,
		Seeds:      g.Seeds,
		Attacks:    g.Attacks,
		Defenses:   g.Defenses,
	}
	var firstErr error
	for c := 0; c < g.NumCells(); c++ {
		atk := g.Attacks[c/len(g.Defenses)]
		def := g.Defenses[c%len(g.Defenses)]
		cell := SweepCell{Attack: atk, Defense: def}
		psnrs := make([]float64, 0, g.Replicates)
		ssims := make([]float64, 0, g.Replicates)
		accs := make([]float64, 0, g.Replicates)
		for r := 0; r < g.Replicates; r++ {
			res := results[g.JobID(c, r)]
			if res == nil {
				continue // never ran; an interrupted grid's gap
			}
			if res.Err != "" {
				cell.FailedReplicates++
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: sweep cell %s×%s (seed %d): %s", atk, def, g.Seeds[r], res.Err)
				}
				continue
			}
			cell.Captures += res.Captures
			cell.Reconstructions += res.Reconstructions
			psnrs = append(psnrs, res.PSNR)
			ssims = append(ssims, res.SSIM)
			accs = append(accs, res.Accuracy)
		}
		if len(psnrs) == 0 {
			continue // nothing completed; the cell renders as absent
		}
		cell.MeanPSNR, cell.StdPSNR = metrics.Mean(psnrs), metrics.Std(psnrs)
		cell.MeanSSIM, cell.StdSSIM = metrics.Mean(ssims), metrics.Std(ssims)
		cell.MeanAccuracy, cell.StdAccuracy = metrics.Mean(accs), metrics.Std(accs)
		report.Cells = append(report.Cells, cell)
	}
	if firstErr != nil {
		return report, firstErr
	}
	return report, nil
}
