package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// quickCfg is the reduced-scale configuration shared by the smoke tests.
func quickCfg() Config { return Config{Quick: true, Seed: 42} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "visual", "fig13", "fig14", "table1", "prop1", "dp", "pm", "robust", "scenario", "sweep"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := ByID("fig5"); !ok {
		t.Error("ByID(fig5) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) found")
	}
}

// meanFor extracts the mean-PSNR cell for a (dataset, policy) row of a
// box-stats table (columns: dataset, B, n, policy, count, mean, …).
func meanFor(t *testing.T, res *Result, dataset, policy string) float64 {
	t.Helper()
	for _, tb := range res.Tables {
		for _, row := range tb.Rows {
			if len(row) >= 6 && strings.HasPrefix(row[0], dataset) && row[3] == policy {
				v, err := strconv.ParseFloat(row[5], 64)
				if err != nil {
					t.Fatalf("bad mean cell %q: %v", row[5], err)
				}
				return v
			}
		}
	}
	t.Fatalf("no row for %s/%s", dataset, policy)
	return 0
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; smoke tier covers the scenario preset")
	}
	res, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"synth-imagenet", "synth-cifar100"} {
		wo := meanFor(t, res, ds, "WO")
		mr := meanFor(t, res, ds, "MR")
		if wo < 100 {
			t.Errorf("%s: undefended RTF mean %.1f dB, want ≈ perfect (>100)", ds, wo)
		}
		// Every transform must collapse the mean PSNR (paper Fig. 5).
		for _, pol := range []string{"MR", "mR", "SH", "HFlip", "VFlip"} {
			if m := meanFor(t, res, ds, pol); m > 45 {
				t.Errorf("%s: %s mean PSNR %.1f dB, want < 45", ds, pol, m)
			}
		}
		// Flips are the weakest transforms (mirror reveals content, and a
		// 2-image blend keeps more signal than a 4-image blend).
		if hf := meanFor(t, res, ds, "HFlip"); hf <= mr {
			t.Errorf("%s: HFlip (%.1f) not above MR (%.1f) — paper's ordering lost", ds, hf, mr)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; smoke tier covers the scenario preset")
	}
	res, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"synth-imagenet", "synth-cifar100"} {
		wo := meanFor(t, res, ds, "WO")
		mrsh := meanFor(t, res, ds, "MR+SH")
		if mrsh >= wo {
			t.Errorf("%s: MR+SH (%.1f) did not beat WO (%.1f)", ds, mrsh, wo)
		}
		// The integration beats each single transform (paper Fig. 6).
		for _, pol := range []string{"SH", "MR"} {
			if single := meanFor(t, res, ds, pol); mrsh > single {
				t.Errorf("%s: MR+SH (%.1f) worse than %s (%.1f)", ds, mrsh, pol, single)
			}
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; smoke tier covers the scenario preset")
	}
	res, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"synth-imagenet-100c", "synth-cifar100"} {
		wo := meanFor(t, res, ds, "WO")
		for _, pol := range []string{"MR", "mR", "SH", "HFlip", "VFlip"} {
			if m := meanFor(t, res, ds, pol); m >= wo {
				t.Errorf("%s: %s (%.1f) not below WO (%.1f)", ds, pol, m, wo)
			}
		}
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var ats, oasisMean float64
	var atsVerbatim, oasisVerbatim int
	for _, row := range res.Tables[0].Rows {
		mean, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasPrefix(row[0], "ats"):
			ats, atsVerbatim = mean, n
		case strings.HasPrefix(row[0], "oasis"):
			oasisMean, oasisVerbatim = mean, n
		}
	}
	if ats < 100 {
		t.Errorf("ATS mean PSNR %.1f — RTF should defeat the replacement defense", ats)
	}
	if atsVerbatim == 0 {
		t.Error("ATS produced no verbatim recoveries; Figure 14 expects content revealed")
	}
	if oasisMean > 40 || oasisVerbatim != 0 {
		t.Errorf("OASIS row mean %.1f verbatim %d — defense should hold", oasisMean, oasisVerbatim)
	}
}

func TestFig3GridMonotoneInBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; smoke tier covers the scenario preset")
	}
	res, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Quick grid rows: B=8 and B=32; PSNR must not increase with B for
	// every neuron column (paper Fig. 3 trend).
	for _, tb := range res.Tables {
		if len(tb.Rows) != 2 {
			t.Fatalf("quick grid has %d rows", len(tb.Rows))
		}
		for col := 1; col < len(tb.Rows[0]); col++ {
			small, err1 := strconv.ParseFloat(tb.Rows[0][col], 64)
			large, err2 := strconv.ParseFloat(tb.Rows[1][col], 64)
			if err1 != nil || err2 != nil {
				t.Fatal("bad grid cells")
			}
			if large > small+1 { // +1 dB tolerance for trial noise
				t.Errorf("%s col %d: PSNR grew with batch size (%.1f → %.1f)", tb.Title, col, small, large)
			}
		}
	}
}

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; smoke tier covers the scenario preset")
	}
	res, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) == 0 {
		t.Fatal("table1 produced no rows")
	}
	for _, row := range res.Tables[0].Rows {
		acc, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0 || acc > 100 {
			t.Errorf("accuracy %s out of range", row[2])
		}
	}
}

func TestProp1Shape(t *testing.T) {
	res, err := Prop1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string][]string{}
	for _, row := range res.Tables[0].Rows {
		cells[row[0]+"/"+row[1]] = row
	}
	// RTF with mean-preserving transforms satisfies Proposition 1 exactly.
	for _, pol := range []string{"MR", "mR", "SH", "HFlip", "VFlip", "MR+SH"} {
		row, ok := cells["RTF/"+pol]
		if !ok {
			t.Fatalf("missing RTF/%s row", pol)
		}
		if row[2] != "1.000" {
			t.Errorf("RTF/%s same-set = %s, want 1.000", pol, row[2])
		}
		if row[4] != "0.000" {
			t.Errorf("RTF/%s solo = %s, want 0.000", pol, row[4])
		}
	}
	// CAH: the MR+SH integration must reduce solo leakage below WO.
	woSolo, err1 := strconv.ParseFloat(cells["CAH/WO"][4], 64)
	mrshSolo, err2 := strconv.ParseFloat(cells["CAH/MR+SH"][4], 64)
	if err1 != nil || err2 != nil {
		t.Fatal("bad solo cells")
	}
	if mrshSolo >= woSolo {
		t.Errorf("CAH solo fraction: MR+SH %.3f !< WO %.3f", mrshSolo, woSolo)
	}
}

func TestDPTradeoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; smoke tier covers the scenario preset")
	}
	res, err := DPTradeoff(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) < 2 {
		t.Fatal("dp table too short")
	}
	first, err1 := strconv.ParseFloat(rows[0][1], 64)
	last, err2 := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if err1 != nil || err2 != nil {
		t.Fatal("bad psnr cells")
	}
	if first < 100 {
		t.Errorf("σ=0 RTF mean PSNR %.1f, want ≈ perfect", first)
	}
	if last >= first {
		t.Errorf("largest σ did not reduce PSNR (%.1f → %.1f)", first, last)
	}
	// The amplified server must survive noise at least as well as the
	// plain one at every σ (the arms-race column).
	for _, row := range rows {
		plain, err1 := strconv.ParseFloat(row[1], 64)
		amp, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatal("bad gain cells")
		}
		if amp+5 < plain { // 5 dB slack for trial noise
			t.Errorf("σ=%s: amplified server (%.1f dB) below plain (%.1f dB)", row[0], amp, plain)
		}
	}
}

func TestPreserveMeanAblationShape(t *testing.T) {
	res, err := PreserveMean(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range res.Tables[0].Rows {
		rows[row[0]+"/"+row[1]] = row
	}
	// With restoration on, shearing holds: no verbatim recoveries.
	if rows["SH/true"][4] != "0" {
		t.Errorf("SH with preserve-mean leaked %s images", rows["SH/true"][4])
	}
	// With it off, zero-fill shearing fails against RTF.
	if rows["SH/false"][4] == "0" {
		t.Error("SH without preserve-mean leaked nothing — ablation lost its point")
	}
	onMean, err1 := strconv.ParseFloat(rows["SH/true"][2], 64)
	offMean, err2 := strconv.ParseFloat(rows["SH/false"][2], 64)
	if err1 != nil || err2 != nil {
		t.Fatal("bad mean cells")
	}
	if onMean >= offMean {
		t.Errorf("preserve-mean did not lower PSNR: %.1f vs %.1f", onMean, offMean)
	}
}

func TestArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Quick: true, Seed: 42, OutDir: dir}
	res, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Artifacts) == 0 {
		t.Fatal("fig2 wrote no artifacts")
	}
	for _, a := range res.Artifacts {
		if _, err := os.Stat(a); err != nil {
			t.Errorf("artifact %s missing: %v", a, err)
		}
	}
	png := filepath.Join(dir, "fig2_psnr_illustration.png")
	if _, err := os.Stat(png); err != nil {
		t.Errorf("PNG missing: %v", err)
	}
}

func TestVisualRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; smoke tier covers the scenario preset")
	}
	res, err := Visual(Config{Quick: true, Seed: 42, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Artifacts) < 6 {
		t.Errorf("visual wrote %d artifacts, want ≥ 6 (figs 7–12)", len(res.Artifacts))
	}
}

// robustCells indexes the robust table rows by "aggregator/poisoned".
func robustCells(t *testing.T, res *Result) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for _, row := range res.Tables[0].Rows {
		out[row[0]+"/"+row[1]] = row
	}
	return out
}

func TestRobustShape(t *testing.T) {
	res, err := Robust(Config{Quick: true, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := robustCells(t, res)
	finalLoss := func(key string) float64 {
		row, ok := rows[key]
		if !ok {
			t.Fatalf("missing row %s", key)
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad final-loss cell %q", row[3])
		}
		return v
	}
	meanPoisoned := finalLoss("mean/true")
	meanHonest := finalLoss("mean/false")
	// The poisoning client (×50 gradients) must hurt the plain mean…
	if meanPoisoned <= meanHonest {
		t.Errorf("poisoning did not degrade the mean: %.4f vs honest %.4f", meanPoisoned, meanHonest)
	}
	// …while every robust policy stays strictly better than the poisoned mean.
	for _, agg := range []string{"median", "trimmed:0.2", "normclip:1"} {
		if r := finalLoss(agg + "/true"); r >= meanPoisoned {
			t.Errorf("%s (%.4f) not better than poisoned mean (%.4f)", agg, r, meanPoisoned)
		}
	}
}

// TestScenarioExperiment runs the registry's scenario entry (the smoke
// preset in quick mode) and checks its summary table shape.
func TestScenarioExperiment(t *testing.T) {
	res, err := ScenarioSim(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) < 2 {
		t.Fatalf("want summary + per-round tables, got %d", len(res.Tables))
	}
	summary := res.Tables[0]
	if len(summary.Rows) != 1 || summary.Rows[0][0] != "smoke" {
		t.Fatalf("quick scenario summary rows %v, want one smoke row", summary.Rows)
	}
	part := strings.TrimSuffix(summary.Rows[0][4], "%")
	v, err := strconv.ParseFloat(part, 64)
	if err != nil || v <= 0 || v > 100 {
		t.Errorf("participation cell %q out of range", summary.Rows[0][4])
	}
}
