// Package opt provides the optimizers used to train models in this
// repository: plain SGD (the federated-averaging server step) and Adam (the
// local training recipe of the paper's Table I experiment).
package opt

import (
	"math"

	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using each parameter's current gradient.
	Step(params []*nn.Param)
	Name() string
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies w ← w − lr·(g + wd·w) with optional momentum.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		g := p.G
		if s.WeightDecay != 0 {
			g = g.Clone().AddScaledInPlace(s.WeightDecay, p.W)
		}
		if s.Momentum != 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.W.Shape()...)
				s.velocity[p] = v
			}
			v.ScaleInPlace(s.Momentum).AddInPlace(g)
			g = v
		}
		p.W.AddScaledInPlace(-s.LR, g)
	}
}

// Name identifies the optimizer.
func (s *SGD) Name() string { return "sgd" }

// Adam is the Adam optimizer (Kingma & Ba) with decoupled weight decay,
// matching the paper's Table I training recipe (Adam, lr 1e-3, weight decay).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*nn.Param]*tensor.Tensor
	v map[*nn.Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam constructs an Adam optimizer with the usual β defaults.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*nn.Param]*tensor.Tensor),
		v: make(map[*nn.Param]*tensor.Tensor),
	}
}

// Step applies one Adam update with bias correction.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Shape()...)
		}
		v := a.v[p]
		gd := p.G.Data()
		md, vd, wd := m.Data(), v.Data(), p.W.Data()
		for i, g := range gd {
			if a.WeightDecay != 0 {
				g += a.WeightDecay * wd[i]
			}
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*g*g
			mh := md[i] / c1
			vh := vd[i] / c2
			wd[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// Name identifies the optimizer.
func (a *Adam) Name() string { return "adam" }
