package opt

import (
	"math"
	"testing"

	"github.com/oasisfl/oasis/internal/nn"
	"github.com/oasisfl/oasis/internal/tensor"
)

// quadParam builds a single scalar parameter for minimizing f(w) = ½w².
func quadParam(w0 float64) *nn.Param {
	return &nn.Param{
		Name: "w",
		W:    tensor.MustFromSlice([]float64{w0}, 1),
		G:    tensor.New(1),
	}
}

// stepQuad sets g = w (gradient of ½w²) and applies one optimizer step.
func stepQuad(o Optimizer, p *nn.Param) {
	p.G.Data()[0] = p.W.Data()[0]
	o.Step([]*nn.Param{p})
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadParam(10)
	o := NewSGD(0.1, 0, 0)
	for i := 0; i < 200; i++ {
		stepQuad(o, p)
	}
	if w := math.Abs(p.W.Data()[0]); w > 1e-6 {
		t.Errorf("SGD did not converge: |w| = %g", w)
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	plain, mom := quadParam(10), quadParam(10)
	oPlain := NewSGD(0.02, 0, 0)
	oMom := NewSGD(0.02, 0.9, 0)
	for i := 0; i < 60; i++ {
		stepQuad(oPlain, plain)
		stepQuad(oMom, mom)
	}
	if math.Abs(mom.W.Data()[0]) >= math.Abs(plain.W.Data()[0]) {
		t.Errorf("momentum (%g) not faster than plain (%g) on quadratic",
			mom.W.Data()[0], plain.W.Data()[0])
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := quadParam(1)
	o := NewSGD(0.1, 0, 0.5)
	p.G.Zero() // zero loss gradient: only decay acts
	o.Step([]*nn.Param{p})
	if w := p.W.Data()[0]; math.Abs(w-0.95) > 1e-12 {
		t.Errorf("w after decay = %g, want 0.95", w)
	}
}

func TestSGDExactStep(t *testing.T) {
	p := quadParam(2)
	o := NewSGD(0.25, 0, 0)
	stepQuad(o, p) // w ← 2 − 0.25·2 = 1.5
	if w := p.W.Data()[0]; math.Abs(w-1.5) > 1e-12 {
		t.Errorf("w = %g, want 1.5", w)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := quadParam(10)
	o := NewAdam(0.5, 0)
	for i := 0; i < 300; i++ {
		stepQuad(o, p)
	}
	if w := math.Abs(p.W.Data()[0]); w > 1e-3 {
		t.Errorf("Adam did not converge: |w| = %g", w)
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ lr.
	p := quadParam(10)
	o := NewAdam(0.1, 0)
	stepQuad(o, p)
	if d := math.Abs(10 - p.W.Data()[0]); math.Abs(d-0.1) > 1e-6 {
		t.Errorf("first Adam step size = %g, want ≈ 0.1", d)
	}
}

func TestAdamStatePerParam(t *testing.T) {
	// Two parameters with different gradient scales must keep separate
	// moment estimates.
	p1, p2 := quadParam(1), quadParam(1000)
	o := NewAdam(0.1, 0)
	p1.G.Data()[0] = p1.W.Data()[0]
	p2.G.Data()[0] = p2.W.Data()[0]
	o.Step([]*nn.Param{p1, p2})
	// Adam's first step is gradient-scale invariant: both parameters move
	// by ≈ lr despite gradients differing by 1000×.
	d1 := 1 - p1.W.Data()[0]
	d2 := 1000 - p2.W.Data()[0]
	if math.Abs(d1-d2) > 1e-6 {
		t.Errorf("Adam first steps differ across scales: %g vs %g", d1, d2)
	}
}

func TestOptimizerNames(t *testing.T) {
	if NewSGD(0.1, 0, 0).Name() != "sgd" {
		t.Error("SGD name")
	}
	if NewAdam(0.1, 0).Name() != "adam" {
		t.Error("Adam name")
	}
}

// TestTrainingEndToEnd trains a tiny network on a linearly separable
// problem and requires convergence with both optimizers.
func TestTrainingEndToEnd(t *testing.T) {
	for _, mk := range []func() Optimizer{
		func() Optimizer { return NewSGD(0.5, 0.9, 0) },
		func() Optimizer { return NewAdam(0.05, 0) },
	} {
		rng := nn.RandSource(13, 17)
		net := nn.NewSequential(
			nn.NewLinear("fc1", 2, 8, rng),
			nn.NewReLU("relu"),
			nn.NewLinear("fc2", 8, 2, rng),
		)
		o := mk()
		// XOR-ish separable data.
		x := tensor.MustFromSlice([]float64{
			0.9, 0.8,
			-0.7, -0.9,
			0.8, -0.85,
			-0.9, 0.75,
		}, 4, 2)
		labels := []int{0, 0, 1, 1}
		var loss float64
		for i := 0; i < 400; i++ {
			net.ZeroGrad()
			out := net.Forward(x, true)
			var g *tensor.Tensor
			loss, g = nn.SoftmaxCrossEntropy{}.Compute(out, labels)
			net.Backward(g)
			o.Step(net.Params())
		}
		if loss > 0.05 {
			t.Errorf("%s: final loss %g, want < 0.05", o.Name(), loss)
		}
	}
}

func TestConstSchedule(t *testing.T) {
	s := ConstSchedule{Rate: 0.1}
	if s.LR(0) != 0.1 || s.LR(100) != 0.1 {
		t.Error("const schedule varies")
	}
}

func TestStepSchedule(t *testing.T) {
	s, err := NewStepSchedule(1.0, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]float64{0: 1, 2: 1, 3: 0.5, 5: 0.5, 6: 0.25, 9: 0.125}
	for epoch, want := range cases {
		if got := s.LR(epoch); math.Abs(got-want) > 1e-12 {
			t.Errorf("LR(%d) = %g, want %g", epoch, got, want)
		}
	}
	if _, err := NewStepSchedule(0, 0.5, 3); err == nil {
		t.Error("zero base accepted")
	}
	if _, err := NewStepSchedule(1, 1.5, 3); err == nil {
		t.Error("gamma > 1 accepted")
	}
}

func TestApplySchedule(t *testing.T) {
	sgd := NewSGD(1, 0, 0)
	adam := NewAdam(1, 0)
	s, err := NewStepSchedule(0.2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplySchedule(sgd, s, 1); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sgd.LR-0.02) > 1e-12 {
		t.Errorf("sgd LR = %g", sgd.LR)
	}
	if err := ApplySchedule(adam, s, 0); err != nil {
		t.Fatal(err)
	}
	if adam.LR != 0.2 {
		t.Errorf("adam LR = %g", adam.LR)
	}
	if err := ApplySchedule(fakeOpt{}, s, 0); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

type fakeOpt struct{}

func (fakeOpt) Step([]*nn.Param) {}
func (fakeOpt) Name() string     { return "fake" }
