package opt

import "fmt"

// Schedule maps an epoch index to a learning rate; optimizers are updated
// between epochs via Apply.
type Schedule interface {
	// LR returns the learning rate for the given zero-based epoch.
	LR(epoch int) float64
	Name() string
}

// ConstSchedule keeps the learning rate fixed.
type ConstSchedule struct {
	Rate float64
}

var _ Schedule = ConstSchedule{}

// LR returns the fixed rate.
func (c ConstSchedule) LR(int) float64 { return c.Rate }

// Name identifies the schedule.
func (c ConstSchedule) Name() string { return fmt.Sprintf("const(%g)", c.Rate) }

// StepSchedule decays the base rate by Gamma every StepSize epochs — the
// standard recipe for the longer training runs of the Table I experiment.
type StepSchedule struct {
	Base     float64
	Gamma    float64
	StepSize int
}

var _ Schedule = StepSchedule{}

// NewStepSchedule validates and builds a step-decay schedule.
func NewStepSchedule(base, gamma float64, stepSize int) (StepSchedule, error) {
	if base <= 0 || gamma <= 0 || gamma > 1 || stepSize <= 0 {
		return StepSchedule{}, fmt.Errorf("opt: invalid step schedule (base=%g gamma=%g step=%d)", base, gamma, stepSize)
	}
	return StepSchedule{Base: base, Gamma: gamma, StepSize: stepSize}, nil
}

// LR returns base·gamma^⌊epoch/step⌋.
func (s StepSchedule) LR(epoch int) float64 {
	rate := s.Base
	for i := 0; i < epoch/s.StepSize; i++ {
		rate *= s.Gamma
	}
	return rate
}

// Name identifies the schedule.
func (s StepSchedule) Name() string {
	return fmt.Sprintf("step(%g,×%g/%d)", s.Base, s.Gamma, s.StepSize)
}

// ApplySchedule sets the optimizer's learning rate for the given epoch.
// SGD and Adam are supported; unknown optimizers are left untouched and
// reported.
func ApplySchedule(o Optimizer, sched Schedule, epoch int) error {
	lr := sched.LR(epoch)
	switch v := o.(type) {
	case *SGD:
		v.LR = lr
	case *Adam:
		v.LR = lr
	default:
		return fmt.Errorf("opt: cannot schedule optimizer %T", o)
	}
	return nil
}
