package defense

import (
	"math"
	rand "math/rand/v2"
	"sort"
	"testing"

	"github.com/oasisfl/oasis/internal/tensor"
)

// sortApply is the pre-quickselect reference implementation: full sort of
// every coordinate magnitude per call. Kept here as the oracle the
// quickselect path must match exactly, and as the benchmark baseline.
func sortApply(keep float64, grads []*tensor.Tensor) {
	if keep >= 1 {
		return
	}
	total := 0
	for _, g := range grads {
		total += g.Len()
	}
	mags := make([]float64, 0, total)
	for _, g := range grads {
		for _, v := range g.Data() {
			mags = append(mags, math.Abs(v))
		}
	}
	sort.Float64s(mags)
	cut := mags[int(float64(total)*(1-keep))]
	for _, g := range grads {
		gd := g.Data()
		for i, v := range gd {
			if math.Abs(v) < cut {
				gd[i] = 0
			}
		}
	}
}

// TestPruningMatchesSortReference: for random gradients across many keep
// fractions, the quickselect threshold must reproduce the sort-based output
// coordinate for coordinate.
func TestPruningMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 20))
	for _, keep := range []float64{0.05, 0.25, 0.5, 0.75, 0.99} {
		a := tensor.New(37, 13)
		a.FillRandn(rng, 1)
		b := tensor.New(101)
		b.FillRandn(rng, 0.1)
		want := []*tensor.Tensor{a.Clone(), b.Clone()}
		sortApply(keep, want)

		p, err := NewPruning(keep)
		if err != nil {
			t.Fatal(err)
		}
		got := []*tensor.Tensor{a, b}
		p.Apply(got)
		for i := range got {
			if !got[i].EqualApprox(want[i], 0) {
				t.Errorf("keep=%g tensor %d: quickselect output diverges from sort reference", keep, i)
			}
		}
	}
}

// TestPruningTieAtCut: when many coordinates share the exact cut magnitude,
// the strict |v| < cut rule keeps every tied coordinate — identical to the
// sorted-threshold behavior it replaced.
func TestPruningTieAtCut(t *testing.T) {
	// Sorted magnitudes: [1 1 2 2 2 2 3 3]; keep=0.5 → cut index 4 → cut=2.
	// Everything < 2 is zeroed, every tied 2 (and above) survives.
	g := tensor.MustFromSlice([]float64{2, -1, 2, 3, -2, 1, -3, 2}, 8)
	p, err := NewPruning(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.Apply([]*tensor.Tensor{g})
	want := []float64{2, 0, 2, 3, -2, 0, -3, 2}
	for i, v := range g.Data() {
		if v != want[i] {
			t.Fatalf("tie handling diverged at %d: got %v, want %v", i, g.Data(), want)
		}
	}

	// All-equal magnitudes: cut equals every entry, nothing is zeroed.
	eq := tensor.MustFromSlice([]float64{4, -4, 4, -4, 4, -4}, 6)
	p2, err := NewPruning(0.3)
	if err != nil {
		t.Fatal(err)
	}
	p2.Apply([]*tensor.Tensor{eq})
	for i, v := range eq.Data() {
		if v == 0 {
			t.Fatalf("all-ties input lost coordinate %d", i)
		}
	}
}

// TestPruningEdgeInputs: a keep fraction so small that 1−keep rounds to 1.0,
// and an empty gradient set, must not panic.
func TestPruningEdgeInputs(t *testing.T) {
	p, err := NewPruning(1e-17) // in (0,1], but 1-keep == 1.0 in float64
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.MustFromSlice([]float64{3, -1, 2}, 3)
	p.Apply([]*tensor.Tensor{g}) // must keep only the largest magnitude
	if d := g.Data(); d[0] != 3 || d[1] != 0 || d[2] != 0 {
		t.Errorf("tiny keep fraction: got %v, want only the max kept", d)
	}
	p.Apply(nil)
	p.Apply([]*tensor.Tensor{})
}

// benchGrads builds an MLP-shaped gradient set (~210k coordinates).
func benchGrads(rng *rand.Rand) []*tensor.Tensor {
	w1 := tensor.New(256, 768)
	w1.FillRandn(rng, 1)
	b1 := tensor.New(256)
	b1.FillRandn(rng, 1)
	w2 := tensor.New(64, 256)
	w2.FillRandn(rng, 1)
	return []*tensor.Tensor{w1, b1, w2}
}

// BenchmarkPruningApply measures the quickselect path.
func BenchmarkPruningApply(b *testing.B) {
	rng := rand.New(rand.NewPCG(21, 21))
	orig := benchGrads(rng)
	p, err := NewPruning(0.3)
	if err != nil {
		b.Fatal(err)
	}
	work := make([]*tensor.Tensor, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range orig {
			work[j] = orig[j].Clone()
		}
		b.StartTimer()
		p.Apply(work)
	}
}

// BenchmarkPruningApplySortBaseline measures the replaced full-sort path on
// identical inputs; compare with BenchmarkPruningApply for the win.
func BenchmarkPruningApplySortBaseline(b *testing.B) {
	rng := rand.New(rand.NewPCG(21, 21))
	orig := benchGrads(rng)
	work := make([]*tensor.Tensor, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range orig {
			work[j] = orig[j].Clone()
		}
		b.StartTimer()
		sortApply(0.3, work)
	}
}
