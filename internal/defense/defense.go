package defense

import (
	"errors"
	"fmt"
	"math"
	rand "math/rand/v2"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/tensor"
)

// GradientDefense post-processes a client's gradient tensors before upload.
type GradientDefense interface {
	// Apply transforms the gradients in place.
	Apply(grads []*tensor.Tensor)
	Name() string
}

// DPSGD clips the global gradient norm to Clip and adds Gaussian noise with
// standard deviation Sigma·Clip to every coordinate.
type DPSGD struct {
	Clip  float64
	Sigma float64
	Rng   *rand.Rand
}

var _ GradientDefense = (*DPSGD)(nil)

// NewDPSGD constructs the defense; clip and sigma must be positive.
func NewDPSGD(clip, sigma float64, rng *rand.Rand) (*DPSGD, error) {
	if clip <= 0 || sigma < 0 {
		return nil, fmt.Errorf("defense: DPSGD needs clip > 0 and sigma ≥ 0, got clip=%g sigma=%g", clip, sigma)
	}
	return &DPSGD{Clip: clip, Sigma: sigma, Rng: rng}, nil
}

// Apply clips the joint norm and perturbs every gradient coordinate.
func (d *DPSGD) Apply(grads []*tensor.Tensor) {
	norm := 0.0
	for _, g := range grads {
		n := g.L2Norm()
		norm += n * n
	}
	norm = math.Sqrt(norm)
	scale := 1.0
	if norm > d.Clip {
		scale = d.Clip / norm
	}
	std := d.Sigma * d.Clip
	for _, g := range grads {
		gd := g.Data()
		for i := range gd {
			gd[i] = gd[i]*scale + d.Rng.NormFloat64()*std
		}
	}
}

// Name returns a label including the noise multiplier.
func (d *DPSGD) Name() string { return fmt.Sprintf("dpsgd(σ=%g)", d.Sigma) }

// Pruning zeroes all but the largest-magnitude fraction Keep of gradient
// coordinates (global top-k sparsification).
type Pruning struct {
	Keep float64 // fraction of coordinates kept, in (0, 1]
}

var _ GradientDefense = (*Pruning)(nil)

// NewPruning constructs the defense; keep must be in (0, 1].
func NewPruning(keep float64) (*Pruning, error) {
	if keep <= 0 || keep > 1 {
		return nil, fmt.Errorf("defense: pruning keep fraction %g outside (0,1]", keep)
	}
	return &Pruning{Keep: keep}, nil
}

// Apply zeroes every coordinate below the global magnitude threshold. The
// threshold is the k-th smallest magnitude (k = total·(1−Keep)), found by
// quickselect in O(total) instead of a full O(total·log total) sort — the
// same cut a sort would yield, so the output is identical.
func (p *Pruning) Apply(grads []*tensor.Tensor) {
	if p.Keep >= 1 {
		return
	}
	total := 0
	for _, g := range grads {
		total += g.Len()
	}
	if total == 0 {
		return
	}
	mags := make([]float64, 0, total)
	for _, g := range grads {
		for _, v := range g.Data() {
			mags = append(mags, math.Abs(v))
		}
	}
	// A Keep small enough that 1−Keep rounds to 1.0 would index past the
	// end; clamping keeps the largest coordinate as the cut instead.
	k := min(int(float64(total)*(1-p.Keep)), total-1)
	cut := quickselect(mags, k)
	for _, g := range grads {
		gd := g.Data()
		for i, v := range gd {
			if math.Abs(v) < cut {
				gd[i] = 0
			}
		}
	}
}

// quickselect returns the k-th smallest element (0-indexed) of a, partially
// reordering it in place. Median-of-three pivoting keeps the deterministic
// adversarial shapes (sorted, reversed, constant) near O(n), and the
// three-way partition collapses the massive magnitude ties that pruned or
// sparse gradients produce in a single round.
func quickselect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j, n := lo, lo, hi
		for j <= n {
			switch {
			case a[j] < pivot:
				a[i], a[j] = a[j], a[i]
				i++
				j++
			case a[j] > pivot:
				a[j], a[n] = a[n], a[j]
				n--
			default:
				j++
			}
		}
		// a[i..n] all equal pivot now; recurse into one side only.
		switch {
		case k < i:
			hi = i - 1
		case k > n:
			lo = n + 1
		default:
			return pivot
		}
	}
	return a[lo]
}

// Name returns a label including the keep fraction.
func (p *Pruning) Name() string { return fmt.Sprintf("prune(keep=%g)", p.Keep) }

// ErrNoPolicy is returned when ATS is constructed without a policy.
var ErrNoPolicy = errors.New("defense: ATS requires an augmentation policy")

// ATS is the transformation-replacement defense of Gao et al. [41]: every
// image in the batch is replaced with one transformed version of itself.
// Unlike OASIS it does not add the original alongside, so a malicious neuron
// activated solely by the transformed image still reconstructs it perfectly
// (Figure 14).
type ATS struct {
	Policy augment.Policy
	Rng    *rand.Rand
}

// NewATS constructs the replacement defense.
func NewATS(policy augment.Policy, rng *rand.Rand) (*ATS, error) {
	if policy == nil {
		return nil, ErrNoPolicy
	}
	return &ATS{Policy: policy, Rng: rng}, nil
}

// Apply returns a new batch where each image is one randomly chosen
// transform of the original.
func (a *ATS) Apply(b *data.Batch) *data.Batch {
	out := &data.Batch{}
	for i, im := range b.Images {
		variants := a.Policy.Expand(im)
		pick := variants[a.Rng.IntN(len(variants))]
		out.Append(pick, b.Labels[i])
	}
	return out
}

// Name returns the defense label.
func (a *ATS) Name() string { return "ats(" + a.Policy.Name() + ")" }
