// Package defense implements the non-OASIS baseline defenses the paper
// compares against (§V):
//
//   - DPSGD: per-example gradient clipping plus Gaussian noise (Abadi et
//     al.). The paper notes that noise strong enough to hide content also
//     destroys model utility.
//   - Gradient pruning/sparsification (Zhu et al. [38], Sun et al. [37]):
//     zeroing small-magnitude gradients; [17] shows data remains
//     recognizable even with most gradients pruned.
//   - ATS-style transformation replacement (Gao et al. [41]): each image is
//     *replaced* by one transformed copy instead of being *accompanied* by
//     transforms. Figure 14 demonstrates the attack principle still applies:
//     a neuron activated only by the transformed image reconstructs it
//     verbatim.
package defense

import (
	"errors"
	"fmt"
	"math"
	rand "math/rand/v2"
	"sort"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/tensor"
)

// GradientDefense post-processes a client's gradient tensors before upload.
type GradientDefense interface {
	// Apply transforms the gradients in place.
	Apply(grads []*tensor.Tensor)
	Name() string
}

// DPSGD clips the global gradient norm to Clip and adds Gaussian noise with
// standard deviation Sigma·Clip to every coordinate.
type DPSGD struct {
	Clip  float64
	Sigma float64
	Rng   *rand.Rand
}

var _ GradientDefense = (*DPSGD)(nil)

// NewDPSGD constructs the defense; clip and sigma must be positive.
func NewDPSGD(clip, sigma float64, rng *rand.Rand) (*DPSGD, error) {
	if clip <= 0 || sigma < 0 {
		return nil, fmt.Errorf("defense: DPSGD needs clip > 0 and sigma ≥ 0, got clip=%g sigma=%g", clip, sigma)
	}
	return &DPSGD{Clip: clip, Sigma: sigma, Rng: rng}, nil
}

// Apply clips the joint norm and perturbs every gradient coordinate.
func (d *DPSGD) Apply(grads []*tensor.Tensor) {
	norm := 0.0
	for _, g := range grads {
		n := g.L2Norm()
		norm += n * n
	}
	norm = math.Sqrt(norm)
	scale := 1.0
	if norm > d.Clip {
		scale = d.Clip / norm
	}
	std := d.Sigma * d.Clip
	for _, g := range grads {
		gd := g.Data()
		for i := range gd {
			gd[i] = gd[i]*scale + d.Rng.NormFloat64()*std
		}
	}
}

// Name returns a label including the noise multiplier.
func (d *DPSGD) Name() string { return fmt.Sprintf("dpsgd(σ=%g)", d.Sigma) }

// Pruning zeroes all but the largest-magnitude fraction Keep of gradient
// coordinates (global top-k sparsification).
type Pruning struct {
	Keep float64 // fraction of coordinates kept, in (0, 1]
}

var _ GradientDefense = (*Pruning)(nil)

// NewPruning constructs the defense; keep must be in (0, 1].
func NewPruning(keep float64) (*Pruning, error) {
	if keep <= 0 || keep > 1 {
		return nil, fmt.Errorf("defense: pruning keep fraction %g outside (0,1]", keep)
	}
	return &Pruning{Keep: keep}, nil
}

// Apply zeroes every coordinate below the global magnitude threshold.
func (p *Pruning) Apply(grads []*tensor.Tensor) {
	if p.Keep >= 1 {
		return
	}
	total := 0
	for _, g := range grads {
		total += g.Len()
	}
	mags := make([]float64, 0, total)
	for _, g := range grads {
		for _, v := range g.Data() {
			mags = append(mags, math.Abs(v))
		}
	}
	sort.Float64s(mags)
	cut := mags[int(float64(total)*(1-p.Keep))]
	for _, g := range grads {
		gd := g.Data()
		for i, v := range gd {
			if math.Abs(v) < cut {
				gd[i] = 0
			}
		}
	}
}

// Name returns a label including the keep fraction.
func (p *Pruning) Name() string { return fmt.Sprintf("prune(keep=%g)", p.Keep) }

// ErrNoPolicy is returned when ATS is constructed without a policy.
var ErrNoPolicy = errors.New("defense: ATS requires an augmentation policy")

// ATS is the transformation-replacement defense of Gao et al. [41]: every
// image in the batch is replaced with one transformed version of itself.
// Unlike OASIS it does not add the original alongside, so a malicious neuron
// activated solely by the transformed image still reconstructs it perfectly
// (Figure 14).
type ATS struct {
	Policy augment.Policy
	Rng    *rand.Rand
}

// NewATS constructs the replacement defense.
func NewATS(policy augment.Policy, rng *rand.Rand) (*ATS, error) {
	if policy == nil {
		return nil, ErrNoPolicy
	}
	return &ATS{Policy: policy, Rng: rng}, nil
}

// Apply returns a new batch where each image is one randomly chosen
// transform of the original.
func (a *ATS) Apply(b *data.Batch) *data.Batch {
	out := &data.Batch{}
	for i, im := range b.Images {
		variants := a.Policy.Expand(im)
		pick := variants[a.Rng.IntN(len(variants))]
		out.Append(pick, b.Labels[i])
	}
	return out
}

// Name returns the defense label.
func (a *ATS) Name() string { return "ats(" + a.Policy.Name() + ")" }
