package defense

import (
	"fmt"
	rand "math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/core"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/tensor"
)

// Defense is the unified two-stage contract every registered defense
// implements. A defense may rewrite the training batch before gradients are
// computed (ApplyBatch), post-process the gradients before upload
// (ApplyGrads), or both; the unused stage is the identity. The split mirrors
// where the paper's countermeasures act: OASIS and ATS are batch-stage,
// DPSGD and pruning are gradient-stage, and a Pipeline stacks any of them.
type Defense interface {
	// Name returns the resolved label shown in reports, e.g. "oasis(MR)" or
	// "dpsgd(σ=0.1)"; a Pipeline joins its stages with "|".
	Name() string
	// ApplyBatch rewrites the local batch D before gradient computation.
	// Batch-neutral defenses return b unchanged. Implementations must not
	// mutate b.
	ApplyBatch(b *data.Batch) *data.Batch
	// ApplyGrads transforms the uploaded gradients in place.
	// Gradient-neutral defenses are a no-op.
	ApplyGrads(grads []*tensor.Tensor)
}

// Config carries everything a registered constructor may need. The zero
// value is valid for parse-only validation.
type Config struct {
	// Rng seeds stochastic stages (DPSGD noise, ATS transform choice). Give
	// every client its own stream: stateful stages must not be shared across
	// concurrently-trained clients. NewPipeline splits one child stream off
	// per stage, so appending a stage never perturbs the draws of the stages
	// before it. A nil Rng is accepted for validation; applying a stochastic
	// stage then panics.
	Rng *rand.Rand
}

// split derives an independent per-stage stream from the Config's Rng.
func (c Config) split() Config {
	if c.Rng == nil {
		return c
	}
	return Config{Rng: rand.New(rand.NewPCG(c.Rng.Uint64(), c.Rng.Uint64()))}
}

// Constructor builds one defense family from its spec argument (the part
// after the first ':') and a resolved Config.
type Constructor func(arg string, cfg Config) (Defense, error)

// registry maps defense kinds to their constructors, guarded by registryMu
// so Register is safe against concurrent New/Names/Known lookups (scenario
// validation may run while a library user registers a custom family).
var registryMu sync.RWMutex

var registry = map[string]Constructor{
	"oasis": newOASISStage,
	"dpsgd": newDPSGDStage,
	"prune": newPruneStage,
	"ats":   newATSStage,
}

// Register adds a defense family to the registry; it then becomes a valid
// scenario defense kind, sweep grid column, and pipeline segment. It errors
// on empty or duplicate kinds so callers cannot silently shadow a built-in,
// and on kinds containing the ':' or '|' metacharacters of the spec syntax.
func Register(kind string, ctor Constructor) error {
	if kind == "" || ctor == nil {
		return fmt.Errorf("defense: Register needs a non-empty kind and constructor")
	}
	if strings.ContainsAny(kind, ":|") {
		return fmt.Errorf("defense: kind %q must not contain ':' or '|'", kind)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		return fmt.Errorf("defense: kind %q already registered", kind)
	}
	registry[kind] = ctor
	return nil
}

// Names lists the registered defense kinds in sorted order.
func Names() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// Known reports whether kind is a registered defense family.
func Known(kind string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[kind]
	return ok
}

// New constructs a single defense from a "kind[:arg]" spec. Unknown kinds
// error with the full list of registered families, so validation messages
// never go stale.
func New(spec string, cfg Config) (Defense, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	registryMu.RLock()
	ctor, ok := registry[kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("defense: unknown kind %q (want one of %s)",
			kind, strings.Join(Names(), ", "))
	}
	return ctor(arg, cfg)
}

// Pipeline chains registered defenses in order: every stage's batch rewrite
// feeds the next, and gradient stages run in the same order after training.
// It implements Defense, so pipelines nest anywhere a single defense goes.
type Pipeline struct {
	stages []Defense
}

var _ Defense = (*Pipeline)(nil)

// NewPipeline parses a '|'-separated spec ("oasis:MR|dpsgd:1,0.1") into an
// ordered chain. Every segment must be a valid "kind[:arg]" spec; malformed
// specs error naming the offending segment. Each stage receives its own
// random stream split off cfg.Rng.
func NewPipeline(spec string, cfg Config) (*Pipeline, error) {
	segs := strings.Split(spec, "|")
	p := &Pipeline{stages: make([]Defense, 0, len(segs))}
	for i, seg := range segs {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("defense: pipeline %q: segment %d is empty", spec, i+1)
		}
		d, err := New(seg, cfg.split())
		if err != nil {
			if len(segs) == 1 {
				return nil, err // no chain context to add
			}
			return nil, fmt.Errorf("defense: pipeline %q: segment %d: %w", spec, i+1, err)
		}
		p.stages = append(p.stages, d)
	}
	return p, nil
}

// Compose builds a pipeline directly from constructed defenses.
func Compose(stages ...Defense) *Pipeline {
	return &Pipeline{stages: append([]Defense(nil), stages...)}
}

// Name returns the deterministic composite label: the stage names joined
// with "|" in application order, e.g. "oasis(MR)|dpsgd(σ=0.1)".
func (p *Pipeline) Name() string {
	names := p.StageNames()
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, "|")
}

// Stages returns the chain in application order.
func (p *Pipeline) Stages() []Defense { return append([]Defense(nil), p.stages...) }

// StageNames returns each stage's resolved label in application order.
func (p *Pipeline) StageNames() []string {
	names := make([]string, len(p.stages))
	for i, s := range p.stages {
		names[i] = s.Name()
	}
	return names
}

// ApplyBatch threads the batch through every stage in order.
func (p *Pipeline) ApplyBatch(b *data.Batch) *data.Batch {
	for _, s := range p.stages {
		b = s.ApplyBatch(b)
	}
	return b
}

// ApplyGrads applies every stage's gradient transform in order.
func (p *Pipeline) ApplyGrads(grads []*tensor.Tensor) {
	for _, s := range p.stages {
		s.ApplyGrads(grads)
	}
}

// --- Built-in stages -------------------------------------------------------

// oasisStage adapts the OASIS batch expansion (internal/core) to the
// two-stage contract.
type oasisStage struct {
	def *core.Defense
}

func newOASISStage(arg string, _ Config) (Defense, error) {
	p, err := augment.ByName(arg)
	if err != nil {
		return nil, fmt.Errorf("defense: oasis:%s: %w", arg, err)
	}
	if p == nil {
		return nil, fmt.Errorf("defense: %q is the no-defense baseline; omit the defense instead", "oasis:"+arg)
	}
	return oasisStage{def: core.New(p)}, nil
}

func (s oasisStage) Name() string { return "oasis(" + s.def.Name() + ")" }

func (s oasisStage) ApplyBatch(b *data.Batch) *data.Batch {
	out, err := s.def.Apply(b)
	if err != nil {
		// Unreachable: the constructor guarantees a policy, the only Apply
		// failure mode. Returning b keeps the stage total.
		return b
	}
	return out
}

func (s oasisStage) ApplyGrads([]*tensor.Tensor) {}

// gradStage adapts a GradientDefense (DPSGD, pruning) to the two-stage
// contract; the batch stage is the identity.
type gradStage struct {
	GradientDefense
}

func (s gradStage) ApplyBatch(b *data.Batch) *data.Batch { return b }

func (s gradStage) ApplyGrads(grads []*tensor.Tensor) { s.GradientDefense.Apply(grads) }

func newDPSGDStage(arg string, cfg Config) (Defense, error) {
	clipStr, sigmaStr, ok := strings.Cut(arg, ",")
	if !ok {
		return nil, fmt.Errorf("defense: %q: want dpsgd:<clip>,<sigma>", "dpsgd:"+arg)
	}
	clip, err1 := strconv.ParseFloat(clipStr, 64)
	sigma, err2 := strconv.ParseFloat(sigmaStr, 64)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("defense: %q: want dpsgd:<clip>,<sigma> with numeric parameters", "dpsgd:"+arg)
	}
	d, err := NewDPSGD(clip, sigma, cfg.Rng)
	if err != nil {
		return nil, err
	}
	return gradStage{d}, nil
}

func newPruneStage(arg string, _ Config) (Defense, error) {
	keep, err := strconv.ParseFloat(arg, 64)
	if err != nil {
		return nil, fmt.Errorf("defense: %q: want prune:<keep> with keep in (0, 1]", "prune:"+arg)
	}
	d, err := NewPruning(keep)
	if err != nil {
		return nil, err
	}
	return gradStage{d}, nil
}

// atsStage adapts the ATS replacement defense to the two-stage contract.
type atsStage struct {
	ats *ATS
}

func newATSStage(arg string, cfg Config) (Defense, error) {
	p, err := augment.ByName(arg)
	if err != nil {
		return nil, fmt.Errorf("defense: ats:%s: %w", arg, err)
	}
	if p == nil {
		return nil, fmt.Errorf("defense: %q needs a transformation policy to replace with", "ats:"+arg)
	}
	d, err := NewATS(p, cfg.Rng)
	if err != nil {
		return nil, err
	}
	return atsStage{ats: d}, nil
}

func (s atsStage) Name() string                         { return s.ats.Name() }
func (s atsStage) ApplyBatch(b *data.Batch) *data.Batch { return s.ats.Apply(b) }
func (s atsStage) ApplyGrads([]*tensor.Tensor)          {}

// --- Protocol adapters ------------------------------------------------------

// BatchAdapter exposes a Defense's batch stage in the fl.BatchPreprocessor
// shape (Apply with error) without this package importing the protocol layer.
type BatchAdapter struct {
	D Defense
}

// Apply runs the defense's batch stage; it never fails.
func (a BatchAdapter) Apply(b *data.Batch) (*data.Batch, error) { return a.D.ApplyBatch(b), nil }

// Name labels the wrapped defense.
func (a BatchAdapter) Name() string { return a.D.Name() }

// GradAdapter exposes a Defense's gradient stage in the fl.GradientDefense
// shape.
type GradAdapter struct {
	D Defense
}

// Apply runs the defense's gradient stage in place.
func (a GradAdapter) Apply(grads []*tensor.Tensor) { a.D.ApplyGrads(grads) }

// Name labels the wrapped defense.
func (a GradAdapter) Name() string { return a.D.Name() }
