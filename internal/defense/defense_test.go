package defense

import (
	"math"
	rand "math/rand/v2"
	"testing"

	"github.com/oasisfl/oasis/internal/augment"
	"github.com/oasisfl/oasis/internal/data"
	"github.com/oasisfl/oasis/internal/imaging"
	"github.com/oasisfl/oasis/internal/tensor"
)

func grads(rng *rand.Rand, scale float64) []*tensor.Tensor {
	a := tensor.New(10, 20)
	a.FillRandn(rng, scale)
	b := tensor.New(10)
	b.FillRandn(rng, scale)
	return []*tensor.Tensor{a, b}
}

func totalNorm(gs []*tensor.Tensor) float64 {
	s := 0.0
	for _, g := range gs {
		n := g.L2Norm()
		s += n * n
	}
	return math.Sqrt(s)
}

func TestDPSGDClipsWithoutNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	d, err := NewDPSGD(1.0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := grads(rng, 5) // norm >> clip
	d.Apply(gs)
	if n := totalNorm(gs); math.Abs(n-1.0) > 1e-9 {
		t.Errorf("clipped norm = %g, want 1", n)
	}
}

func TestDPSGDLeavesSmallGradientsUnclipped(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	d, err := NewDPSGD(100, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := grads(rng, 0.1)
	before := totalNorm(gs)
	d.Apply(gs)
	if after := totalNorm(gs); math.Abs(after-before) > 1e-9 {
		t.Errorf("small gradients were rescaled: %g → %g", before, after)
	}
}

func TestDPSGDNoisePerturbsEveryTensor(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	d, err := NewDPSGD(1.0, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := grads(rng, 0.001)
	orig := []*tensor.Tensor{gs[0].Clone(), gs[1].Clone()}
	d.Apply(gs)
	for i := range gs {
		if gs[i].EqualApprox(orig[i], 1e-6) {
			t.Errorf("tensor %d unchanged by σ=0.5 noise", i)
		}
	}
}

func TestDPSGDValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	if _, err := NewDPSGD(0, 0.1, rng); err == nil {
		t.Error("clip=0 accepted")
	}
	if _, err := NewDPSGD(1, -1, rng); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestPruningZeroesFraction(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	p, err := NewPruning(0.25)
	if err != nil {
		t.Fatal(err)
	}
	gs := grads(rng, 1)
	total := gs[0].Len() + gs[1].Len()
	p.Apply(gs)
	zeros := 0
	for _, g := range gs {
		for _, v := range g.Data() {
			if v == 0 {
				zeros++
			}
		}
	}
	want := int(float64(total) * 0.75)
	if math.Abs(float64(zeros-want)) > 2 {
		t.Errorf("pruned %d of %d, want ≈ %d", zeros, total, want)
	}
}

func TestPruningKeepsLargest(t *testing.T) {
	g := tensor.MustFromSlice([]float64{0.1, -5, 0.2, 4, -0.05}, 5)
	p, err := NewPruning(0.4)
	if err != nil {
		t.Fatal(err)
	}
	p.Apply([]*tensor.Tensor{g})
	d := g.Data()
	if d[1] != -5 || d[3] != 4 {
		t.Errorf("large entries pruned: %v", d)
	}
	if d[0] != 0 || d[2] != 0 || d[4] != 0 {
		t.Errorf("small entries kept: %v", d)
	}
}

func TestPruningKeepOneIsNoop(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	p, err := NewPruning(1)
	if err != nil {
		t.Fatal(err)
	}
	gs := grads(rng, 1)
	orig := gs[0].Clone()
	p.Apply(gs)
	if !gs[0].EqualApprox(orig, 0) {
		t.Error("keep=1 modified gradients")
	}
}

func TestPruningValidation(t *testing.T) {
	if _, err := NewPruning(0); err == nil {
		t.Error("keep=0 accepted")
	}
	if _, err := NewPruning(1.5); err == nil {
		t.Error("keep>1 accepted")
	}
}

func TestATSReplacesInsteadOfExpanding(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	a, err := NewATS(augment.MajorRotation{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := &data.Batch{}
	for i := 0; i < 4; i++ {
		im := imaging.NewImage(1, 6, 6)
		for j := range im.Pix {
			im.Pix[j] = rng.Float64()
		}
		b.Append(im, i)
	}
	out := a.Apply(b)
	if out.Size() != b.Size() {
		t.Fatalf("ATS changed batch size: %d → %d (it must replace, not expand)", b.Size(), out.Size())
	}
	for i := range out.Images {
		if out.Labels[i] != b.Labels[i] {
			t.Errorf("ATS changed label %d", i)
		}
		if imaging.MSE(out.Images[i], b.Images[i]) == 0 {
			t.Errorf("ATS left image %d untransformed", i)
		}
	}
}

func TestATSRequiresPolicy(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	if _, err := NewATS(nil, rng); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestNames(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	d, _ := NewDPSGD(1, 0.5, rng)
	if d.Name() != "dpsgd(σ=0.5)" {
		t.Errorf("DPSGD name = %q", d.Name())
	}
	p, _ := NewPruning(0.1)
	if p.Name() != "prune(keep=0.1)" {
		t.Errorf("pruning name = %q", p.Name())
	}
	a, _ := NewATS(augment.Shearing{}, rng)
	if a.Name() != "ats(SH)" {
		t.Errorf("ATS name = %q", a.Name())
	}
}
